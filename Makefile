# treebench — reproduction of "Benchmarking Queries over Trees" (SIGMOD 2000)

GO ?= go

.PHONY: all build test race bench bench-fork bench-snap bench-query bench-vector bench-dist bench-index bench-cache experiments experiments-full plots cover fuzz smoke snap-smoke dist-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency gate: the parallel experiment scheduler and every shared
# cache under it must stay race-clean.
race:
	$(GO) test -race ./...

# Regenerate every paper table/figure through the bench harness.
bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot-fork cost: generation happens once, each iteration forks a full
# session. Watch ns/op and allocs/op — fork must stay O(catalog).
bench-fork:
	$(GO) test -run 'TestNothing^' -bench BenchmarkSessionFork -benchmem ./internal/session

# Warm boot vs cold boot: loading the paper-scale 2000×1000 Derby snapshot
# from disk against generating it from scratch (EXPERIMENTS.md records the
# speedup).
bench-snap:
	$(GO) test -run 'TestNothing^' -bench 'BenchmarkSnapshot(Generate|Load)' -benchmem ./internal/persist

# Intra-query parallel speedup: the identical cold PHJ tree query at one
# worker vs four over one shared snapshot. Writes BENCH_query.json; on a
# machine with at least 4 CPUs the run fails if four workers buy less than
# MIN_SPEEDUP (default 1.5×). Simulated numbers are asserted identical at
# both settings inside the benchmark itself.
bench-query:
	./scripts/bench_query.sh

# Vectorization speedup: the identical cold PHJ tree query at batch size 1
# (legacy scalar operators) vs the engine default 1024, both single-
# threaded. Writes BENCH_vector.json; fails below MIN_SPEEDUP (default
# 1.3×) on every machine — the gain is per-batch amortization, not
# parallelism, so even a 1-CPU runner must show it. Simulated numbers are
# asserted identical at both settings inside the benchmark itself.
bench-vector:
	./scripts/bench_vector.sh

# Sharded scatter-gather speedup: the identical cold PHJ tree query through
# treebench-coord over 1, 2 and 4 single-worker treebenchd shards, all
# warm-booting from one content-addressed snapshot cache. Writes
# BENCH_dist.json; on a machine with at least 4 CPUs the run fails if four
# shards buy less than MIN_SPEEDUP (default 1.3×). Rendered results are
# byte-identical at every cluster size (dist-smoke pins that).
bench-dist:
	./scripts/bench_dist.sh

# WAL group-commit throughput: durable update-wave commits through a
# writable treebenchd at 1, 4 and 16 concurrent writers, fresh store per
# writer count. Writes BENCH_wal.json with commits/s and the group-commit
# ratio; on a machine with at least 4 CPUs the run fails if 16 writers buy
# less than MIN_SPEEDUP (default 2.0×) over one.
bench-wal:
	./scripts/bench_wal.sh

# Index-backend ablation: the B1 experiment (in-memory B+-tree vs paged
# on-disk B+-tree vs LSM-tree with bloom filters) recorded as
# BENCH_index.json. Enforced on every runner — the numbers are simulated
# page counts: LSM update waves must write fewer pages than the B+-tree's
# (write absorption), LSM post-wave point scans must read more (read
# amplification), and bloom probes must skip at least MIN_BLOOM_SKIP%
# (default 50) of candidate SSTables.
bench-index:
	./scripts/bench_index.sh

# Shared buffer pool: cold vs warm repeated work, readahead vs none on
# cold sequential scans (direct I/O where the filesystem supports it),
# and 8-session RSS under a bounded pool vs the legacy unbounded cache.
# Writes BENCH_cache.json and enforces the three gates (warm >= 2x,
# readahead >= 1.3x on true-cold scans, pooled RSS below unbounded).
bench-cache:
	./scripts/bench_cache.sh

# The experiment CLI (scale factor 10 by default; SF=1 is paper scale).
experiments:
	$(GO) run ./cmd/treebench -all

experiments-full:
	$(GO) run ./cmd/treebench -all -sf 1

# Gnuplot data + scripts for every experiment, into ./plots.
plots:
	$(GO) run ./cmd/treebench -all -gnuplot plots

cover:
	$(GO) test -cover ./...

# Continuous fuzzing entry points (interrupt when satisfied).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/oql
	$(GO) test -fuzz FuzzPageOps -fuzztime 30s ./internal/storage
	$(GO) test -fuzz FuzzDecodeFrame -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzLoadSnapshot -fuzztime 30s ./internal/persist

# End-to-end query-server smoke: treebenchd + oqlload vs oqlsh.
smoke:
	./scripts/server_smoke.sh

# Snapshot-store smoke: save/verify/corrupt/reload plus a two-boot
# treebenchd warm start from one snapshot directory.
snap-smoke:
	./scripts/snap_smoke.sh

# Distributed smoke: 3 treebenchd shards + treebench-coord from one shared
# snapshot cache, byte-diffed against the local shell, cluster stats, and a
# mid-run shard kill surfacing the typed shard error.
dist-smoke:
	./scripts/dist_smoke.sh

# Write-path smoke: writable treebenchd, commits under query load, kill -9
# mid-storm, torn WAL tail, offline fsck, reboot recovery byte-diffed
# against a clean run with the same commit count.
wal-smoke:
	./scripts/wal_smoke.sh

clean:
	rm -rf plots results.csv test_output.txt bench_output.txt
