package treebench

// The benchmark harness: one testing.B benchmark per reproduced table and
// figure of the paper. Each benchmark regenerates its table against the
// simulated engine and prints it once, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation section. The default scale factor is 10
// (databases and memory 1/10 of the paper's, every ratio preserved); set
// TREEBENCH_SF=1 for full paper scale. Simulated seconds per experiment are
// reported as the custom metric sim-s.
//
// Databases and cold join runs are cached across benchmarks (Figure 15
// reuses the Figure 11–14 runs), so run the benchmarks in one process.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"
)

var benchVerbose = flag.Bool("bench.verbose", false, "stream per-run progress during benchmarks")

var (
	benchRunnerOnce sync.Once
	benchRunner     *Runner
	benchRunnerErr  error

	printedMu sync.Mutex
	printed   = map[string]bool{}
)

func sharedRunner() (*Runner, error) {
	benchRunnerOnce.Do(func() {
		cfg := RunnerConfigFromEnv()
		if *benchVerbose {
			cfg.Verbose = os.Stderr
		}
		benchRunner, benchRunnerErr = NewRunner(cfg)
	})
	return benchRunner, benchRunnerErr
}

// simSeconds sums the simulated time column(s) of a table for the custom
// metric. Tables differ in layout, so it just takes the experiment's total
// recorded stats delta instead; here we approximate with wall-measured
// runs: the metric reported is the experiment's wall time, and the table
// itself carries the simulated numbers.
func benchExperiment(b *testing.B, id string) {
	r, err := sharedRunner()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var table *ResultTable
	start := time.Now()
	for i := 0; i < b.N; i++ {
		table, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start)
	_ = wall
	printedMu.Lock()
	if !printed[id] {
		printed[id] = true
		fmt.Println()
		table.Format(os.Stdout)
	}
	printedMu.Unlock()
}

// BenchmarkFig6Selection regenerates the §4.2 selection experiment:
// unclustered index vs no index across selectivities.
func BenchmarkFig6Selection(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkFig7SortedIndexScan regenerates Figure 7: sorted unclustered
// index vs no index.
func BenchmarkFig7SortedIndexScan(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkFig9CostBreakdown regenerates Figure 9: the standard-scan vs
// sorted-index-scan cost decomposition.
func BenchmarkFig9CostBreakdown(b *testing.B) { benchExperiment(b, "F9") }

// BenchmarkFig10HashTableSizes regenerates Figure 10: hash-table sizes.
func BenchmarkFig10HashTableSizes(b *testing.B) { benchExperiment(b, "F10") }

// BenchmarkFig11ClassCluster1to1000 regenerates Figure 11.
func BenchmarkFig11ClassCluster1to1000(b *testing.B) { benchExperiment(b, "F11") }

// BenchmarkFig12ClassCluster1to3 regenerates Figure 12.
func BenchmarkFig12ClassCluster1to3(b *testing.B) { benchExperiment(b, "F12") }

// BenchmarkFig13CompCluster1to1000 regenerates Figure 13.
func BenchmarkFig13CompCluster1to1000(b *testing.B) { benchExperiment(b, "F13") }

// BenchmarkFig14CompCluster1to3 regenerates Figure 14.
func BenchmarkFig14CompCluster1to3(b *testing.B) { benchExperiment(b, "F14") }

// BenchmarkFig15Summary regenerates Figure 15: winning algorithms across
// the three physical organizations (adds the random-organization runs).
func BenchmarkFig15Summary(b *testing.B) { benchExperiment(b, "F15") }

// BenchmarkLoadingAblations regenerates the §3.2 loading experiments.
func BenchmarkLoadingAblations(b *testing.B) { benchExperiment(b, "L1") }

// BenchmarkHandleAblations regenerates the §4.4 handle-management proposal
// as a measured fat-vs-slim ablation.
func BenchmarkHandleAblations(b *testing.B) { benchExperiment(b, "H1") }

// BenchmarkSortJoinAblation measures the sort-merge pointer join the paper
// tried and dropped against the best hash join.
func BenchmarkSortJoinAblation(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkOptimizerAccuracy scores the cost-based and heuristic optimizer
// strategies against the measured winners — the paper's original goal.
func BenchmarkOptimizerAccuracy(b *testing.B) { benchExperiment(b, "O1") }

// BenchmarkDoctorRetires measures §4.4's header-driven index maintenance.
func BenchmarkDoctorRetires(b *testing.B) { benchExperiment(b, "D1") }

// BenchmarkPrefetch measures scan-driven read-ahead (RPC batching).
func BenchmarkPrefetch(b *testing.B) { benchExperiment(b, "P1") }

// BenchmarkRidsOrHandles measures §4.1's hash-table entry choice.
func BenchmarkRidsOrHandles(b *testing.B) { benchExperiment(b, "R1") }

// BenchmarkClusteredIndex contrasts clustered and unclustered index
// selections.
func BenchmarkClusteredIndex(b *testing.B) { benchExperiment(b, "S1") }

// BenchmarkWarmCold contrasts the paper's cold methodology with warm
// reruns.
func BenchmarkWarmCold(b *testing.B) { benchExperiment(b, "W1") }

// BenchmarkPointerVsValue contrasts pointer-based navigation with
// value-based foreign-key resolution ([14]).
func BenchmarkPointerVsValue(b *testing.B) { benchExperiment(b, "V1") }

// BenchmarkMeasureElapsed validates §3.5: elapsed time tracks I/Os except
// where there is "a good reason".
func BenchmarkMeasureElapsed(b *testing.B) { benchExperiment(b, "M1") }

// runAllSeqSecs is the sequential baseline's per-op wall time, captured by
// BenchmarkRunAllSequential so BenchmarkRunAllParallel (registered after
// it) can report the wall-clock speedup as a custom metric.
var runAllSeqSecs float64

// benchRunAll measures a complete RunAll — every experiment, fresh runner
// per iteration so no caches carry over — at the given worker count, and
// returns the per-op wall seconds.
func benchRunAll(b *testing.B, jobs int) float64 {
	cfg := RunnerConfigFromEnv()
	cfg.Jobs = jobs
	b.ReportAllocs()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r, err := NewRunner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	wall := time.Since(start).Seconds() / float64(b.N)
	b.ReportMetric(wall, "wall-s/op")
	return wall
}

// BenchmarkRunAllSequential is the full evaluation on one worker — the
// pre-scheduler behavior, and the baseline for the speedup metric.
func BenchmarkRunAllSequential(b *testing.B) { runAllSeqSecs = benchRunAll(b, 1) }

// BenchmarkRunAllParallel is the full evaluation under the parallel
// scheduler. When run together with BenchmarkRunAllSequential (any -bench
// pattern matching both), it reports the wall-clock speedup as the custom
// metric "speedup"; the tables themselves are byte-identical by
// construction (simulated clocks).
func BenchmarkRunAllParallel(b *testing.B) {
	jobs := DefaultJobs()
	if jobs < 4 {
		jobs = 4 // keep the schedule parallel even on small CI machines
	}
	wall := benchRunAll(b, jobs)
	if runAllSeqSecs > 0 && wall > 0 {
		b.ReportMetric(runAllSeqSecs/wall, "speedup")
	}
}
