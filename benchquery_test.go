package treebench

// benchquery_test.go measures what intra-query parallelism buys in wall
// time — the only clock it is allowed to touch. BenchmarkQuerySequential
// and BenchmarkQueryParallel run the identical cold PHJ tree query (90%
// children, 90% parents — the paper's heavy hash-join point) over one
// shared frozen snapshot; the only difference is the worker count, so
// ns/op(Sequential) / ns/op(Parallel) is the intra-query speedup.
// scripts/bench_query.sh turns the ratio into BENCH_query.json and CI
// fails if four workers buy less than 1.5×. Simulated results are
// asserted identical across both benchmarks on every iteration.

import (
	"sync"
	"testing"

	"treebench/internal/derby"
	"treebench/internal/join"
)

var (
	bqOnce sync.Once
	bqSnap *derby.Snapshot
	bqErr  error

	bqMu       sync.Mutex
	bqTuples   = -1
	bqElapsedN int64
)

// querySnapshot generates the benchmark database once per process:
// SF=10 of the paper's Figure 11 configuration (2000 providers, 1:100 —
// 2×10⁵ patients), or 200×200 under -short. Both sizes decompose into the
// maximum 8 chunks, so the short run still exercises full fan-out.
func querySnapshot(b *testing.B) *derby.Snapshot {
	bqOnce.Do(func() {
		providers, avg := 2000, 100
		if testing.Short() {
			providers, avg = 200, 200
		}
		var d *derby.Dataset
		if d, bqErr = derby.Generate(derby.DefaultConfig(providers, avg, derby.ClassCluster)); bqErr != nil {
			return
		}
		bqSnap, bqErr = d.Freeze()
	})
	if bqErr != nil {
		b.Fatal(bqErr)
	}
	return bqSnap
}

// benchQueryAtJobs forks a fresh cold session per iteration (fork is
// O(catalog), noise next to the join) and runs the PHJ tree query with
// the given worker count, asserting the simulated result never moves.
func benchQueryAtJobs(b *testing.B, jobs int) {
	sn := querySnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := sn.Fork()
		f.DB.SetQueryJobs(jobs)
		env := join.EnvForDerby(f)
		env.DB.ColdRestart()
		res, err := join.Run(env, join.PHJ, env.BySelectivity(90, 90))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		bqMu.Lock()
		if bqTuples == -1 {
			bqTuples, bqElapsedN = res.Tuples, int64(res.Elapsed)
		} else if res.Tuples != bqTuples || int64(res.Elapsed) != bqElapsedN {
			bqMu.Unlock()
			b.Fatalf("qj=%d: simulated result moved: %d tuples %v, want %d tuples %v",
				jobs, res.Tuples, res.Elapsed, bqTuples, bqElapsedN)
		}
		bqMu.Unlock()
		b.StartTimer()
	}
}

func BenchmarkQuerySequential(b *testing.B) { benchQueryAtJobs(b, 1) }
func BenchmarkQueryParallel(b *testing.B)   { benchQueryAtJobs(b, 4) }
