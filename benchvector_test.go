package treebench

// benchvector_test.go measures what vectorized execution buys in wall
// time — the only clock it is allowed to touch. BenchmarkQueryScalar and
// BenchmarkQueryBatched run the identical cold PHJ tree query (90%
// children, 90% parents) on ONE worker over one shared frozen snapshot;
// the only difference is the batch size (1 = the legacy scalar operators
// vs the engine default, 1024), so ns/op(Scalar) / ns/op(Batched) is the
// vectorization speedup — CPU-count independent, since both runs are
// single-threaded. scripts/bench_vector.sh turns the ratio into
// BENCH_vector.json and CI fails below 1.3× on any runner, 1-CPU
// included. Simulated results are asserted identical across both
// benchmarks (and against the parallelism benchmarks next door) on every
// iteration.

import (
	"testing"

	"treebench/internal/join"
)

// benchQueryAtBatch is benchQueryAtJobs with the batch size pinned too.
func benchQueryAtBatch(b *testing.B, batch int) {
	sn := querySnapshot(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := sn.Fork()
		f.DB.SetQueryJobs(1)
		f.DB.SetBatch(batch)
		env := join.EnvForDerby(f)
		env.DB.ColdRestart()
		res, err := join.Run(env, join.PHJ, env.BySelectivity(90, 90))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		bqMu.Lock()
		if bqTuples == -1 {
			bqTuples, bqElapsedN = res.Tuples, int64(res.Elapsed)
		} else if res.Tuples != bqTuples || int64(res.Elapsed) != bqElapsedN {
			bqMu.Unlock()
			b.Fatalf("batch=%d: simulated result moved: %d tuples %v, want %d tuples %v",
				batch, res.Tuples, res.Elapsed, bqTuples, bqElapsedN)
		}
		bqMu.Unlock()
		b.StartTimer()
	}
}

func BenchmarkQueryScalar(b *testing.B)  { benchQueryAtBatch(b, 1) }
func BenchmarkQueryBatched(b *testing.B) { benchQueryAtBatch(b, 0) } // 0 = engine default, 1024
