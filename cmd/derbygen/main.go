// Command derbygen builds a Derby database and reports the §3.2 loading
// statistics: elapsed simulated time, commits, relocations, page and RPC
// traffic, and the resulting file layout.
//
// Usage:
//
//	derbygen -providers 1000 -avg 3 -clustering class
//	derbygen -providers 200 -avg 1000 -clustering composition -txn standard
//	derbygen -providers 1000 -avg 3 -index-after   # the relocation storm
package main

import (
	"flag"
	"fmt"
	"os"

	"treebench"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

func main() {
	var (
		providers  = flag.Int("providers", 1000, "number of providers")
		avg        = flag.Int("avg", 3, "average patients per provider")
		clustering = flag.String("clustering", "class", "physical organization: class, random, composition")
		txnMode    = flag.String("txn", "off", "loading transaction mode: off, standard")
		indexAfter = flag.Bool("index-after", false, "create indexes after the load (§3.2's blunder)")
		budget     = flag.Int("budget", 10000, "objects per transaction in standard mode")
		seed       = flag.Int("seed", 1997, "generator seed")
		verify     = flag.Bool("verify", false, "run integrity checks on the generated database")
	)
	flag.Parse()

	var cl treebench.Clustering
	switch *clustering {
	case "class":
		cl = treebench.ClassCluster
	case "random":
		cl = treebench.RandomOrg
	case "composition":
		cl = treebench.CompositionCluster
	default:
		fatal(fmt.Errorf("unknown clustering %q", *clustering))
	}

	cfg := treebench.DerbyConfig(*providers, *avg, cl)
	cfg.Seed = int32(*seed)
	cfg.IndexBeforeLoad = !*indexAfter
	cfg.CreateBudget = *budget
	if *txnMode == "standard" {
		cfg.TxnMode = txn.Standard
	} else if *txnMode != "off" {
		fatal(fmt.Errorf("unknown transaction mode %q", *txnMode))
	}

	d, err := treebench.GenerateDerby(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("built %d providers × %d patients (%s), %s clustering, %s loading\n",
		d.NumProviders, d.NumPatients, d.Relationship(), cl, cfg.TxnMode)
	fmt.Printf("load time (simulated): %.2fs  commits: %d  relocations: %d\n",
		d.Load.Elapsed.Seconds(), d.Load.Commits, d.Load.Relocations)
	n := d.Load.Counters
	fmt.Printf("traffic: %d pages written, %d log pages, %d RPCs (%.1f MB)\n",
		n.DiskWrites, n.LogPages, n.RPCs, float64(n.RPCBytes)/(1<<20))

	fmt.Println("\nfiles:")
	total := 0
	for _, name := range d.DB.Store.Files() {
		f, err := d.DB.Store.File(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-10s %7d pages  %6.1f MB\n", name, f.NumPages(),
			float64(f.NumPages())*storage.PageSize/(1<<20))
		total += f.NumPages()
	}
	fmt.Printf("  %-10s %7d pages  %6.1f MB (disk total %d pages)\n", "TOTAL",
		total, float64(total)*storage.PageSize/(1<<20), d.DB.Store.Disk.NumPages())

	fmt.Println("\nindexes:")
	for _, extName := range d.DB.Extents() {
		ext, _ := d.DB.Extent(extName)
		for _, ix := range ext.Indexes() {
			kind := "unclustered"
			if ix.Clustered {
				kind = "clustered"
			}
			fmt.Printf("  %s.%s: %d entries, %d pages, height %d (%s)\n",
				extName, ix.Attr, ix.Backend.Len(), ix.Backend.Pages(), ix.Backend.Height(), kind)
		}
	}

	if *verify {
		fmt.Println("\nverifying:")
		if err := runVerify(d); err != nil {
			fatal(err)
		}
		fmt.Println("  all checks passed")
	}
}

// runVerify checks structural invariants of the generated database: index
// consistency, extent counts, and agreement of both relationship sides.
func runVerify(d *treebench.Dataset) error {
	db := d.DB
	// Index structure and cardinality.
	for _, extName := range db.Extents() {
		ext, err := db.Extent(extName)
		if err != nil {
			return err
		}
		for _, ix := range ext.Indexes() {
			if err := ix.Backend.Validate(db.Client); err != nil {
				return fmt.Errorf("index %s.%s: %w", extName, ix.Attr, err)
			}
			if ix.Backend.Len() != ext.Count {
				return fmt.Errorf("index %s.%s holds %d entries for %d objects",
					extName, ix.Attr, ix.Backend.Len(), ext.Count)
			}
		}
		fmt.Printf("  %s: %d objects, %d indexes consistent\n", extName, ext.Count, len(ext.Indexes()))
	}
	// Relationship agreement via a throwaway declared relationship.
	rel, err := db.DefineRelationship(d.Providers, "clients", d.Patients, "primary_care_provider")
	if err != nil {
		return err
	}
	if err := rel.VerifyConsistency(db); err != nil {
		return err
	}
	fmt.Printf("  clients ↔ primary_care_provider agree for %d patients\n", d.NumPatients)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "derbygen:", err)
	os.Exit(1)
}
