// Command oqlload is a closed-loop load generator for treebenchd: C
// clients each issue Q queries back-to-back over their own connection, and
// the run reports aggregate throughput, wall-clock latency percentiles,
// and the server's own counters — the multi-client measurement the OCB
// line of benchmarks asks for and a single in-process shell cannot give.
//
// Usage:
//
//	oqlload [-addr 127.0.0.1:8629] -c 8 -n 20 [-e '<stmt;>'] [-f queries.oql]
//	        [-warm] [-heuristic] [-maxrows 10] [-retries 20] [-coord] [-mix F]
//	oqlload -once -e '<stmt;> [<stmt;> ...]'   # run once, print like oqlsh -e
//
// -mix F makes fraction F of each client's operations commits instead of
// queries (the read/write workload axis): a commit asks the daemon to
// apply and durably log its next update wave — reassignments, scalar
// overwrites, and on growth waves the relocation storm. The daemon must
// be running with -wal; commit wall latency (which includes the shared
// WAL fsync) is reported separately from query latency, along with the
// server's chain and WAL counters. Which ops are commits is decided by
// deterministic error diffusion per client, not a coin flip, so the same
// flags always issue the same operation sequence.
//
// With -f, statements (semicolon-terminated) are read from the file and
// issued round-robin. -once runs every statement sequentially on one
// connection (so -warm exercises the session's warm-cache discipline) and
// renders each result through the same renderer oqlsh uses — its output is
// byte-identical to the local shell, and that equivalence is what CI diffs.
//
// With -coord, -addr names a treebench-coord instead of a treebenchd: the
// post-run report additionally fetches the cluster view — the
// deterministic shard map plus each shard's own served/latency counters
// and wall/simulated histograms, so per-shard load skew is visible at a
// glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"treebench/internal/client"
	"treebench/internal/session"
	"treebench/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8629", "treebenchd address")
		clients   = flag.Int("c", 8, "concurrent clients")
		perClient = flag.Int("n", 20, "queries per client")
		stmtFlag  = flag.String("e", "", "semicolon-terminated statement(s) to issue")
		file      = flag.String("f", "", "file of semicolon-terminated statements, issued round-robin")
		once      = flag.Bool("once", false, "run each statement once on one connection and print the results (for diffing against oqlsh -e)")
		warm      = flag.Bool("warm", false, "keep each session's caches warm between its queries")
		heuristic = flag.Bool("heuristic", false, "use the legacy heuristic optimizer")
		maxRows   = flag.Int("maxrows", 10, "sample rows fetched and printed per query")
		retries   = flag.Int("retries", 20, "connect retries (the daemon may still be generating)")
		ioTimeout = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		coord     = flag.Bool("coord", false, "-addr is a treebench-coord: also report the shard map and per-shard stats")
		mix       = flag.Float64("mix", 0, "fraction of operations that are commits (0 = read-only, 1 = all writes; needs a -wal daemon)")
	)
	flag.Parse()
	if *mix < 0 || *mix > 1 {
		fatal(fmt.Errorf("-mix %v: want a fraction in [0,1]", *mix))
	}

	stmts, err := statements(*stmtFlag, *file)
	if err != nil {
		fatal(err)
	}
	opts := client.Options{RetryAttempts: *retries, IOTimeout: *ioTimeout}
	qopts := client.QueryOptions{Warm: *warm, Heuristic: *heuristic, MaxRows: *maxRows}

	if *once {
		c, err := client.Dial(*addr, opts)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		for _, stmt := range stmts {
			res, err := c.Query(stmt, qopts)
			if err != nil {
				fatal(err)
			}
			session.WriteResult(os.Stdout, res, *maxRows)
		}
		return
	}

	if *clients < 1 || *perClient < 1 {
		fatal(fmt.Errorf("-c %d -n %d: both must be at least 1", *clients, *perClient))
	}

	type clientReport struct {
		ok, failed   int
		latencies    []time.Duration
		simTotal     time.Duration
		wok, wfailed int
		wlatencies   []time.Duration
		firstErr     error
	}
	reports := make([]clientReport, *clients)
	var label string
	var labelOnce sync.Once

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rep := &reports[id]
			c, err := client.Dial(*addr, opts)
			if err != nil {
				rep.failed = *perClient
				rep.firstErr = err
				return
			}
			defer c.Close()
			labelOnce.Do(func() { label = c.Label() })
			writes := 0
			for j := 0; j < *perClient; j++ {
				// Error diffusion: commit whenever the running write
				// ratio is below the target, so every client issues
				// exactly the requested fraction, deterministically.
				if float64(writes) < *mix*float64(j+1) {
					writes++
					t0 := time.Now()
					if _, err := c.Commit(); err != nil {
						rep.wfailed++
						if rep.firstErr == nil {
							rep.firstErr = err
						}
						continue
					}
					rep.wok++
					rep.wlatencies = append(rep.wlatencies, time.Since(t0))
					continue
				}
				stmt := stmts[(id**perClient+j)%len(stmts)]
				t0 := time.Now()
				res, err := c.Query(stmt, qopts)
				if err != nil {
					rep.failed++
					if rep.firstErr == nil {
						rep.firstErr = err
					}
					continue
				}
				rep.ok++
				rep.latencies = append(rep.latencies, time.Since(t0))
				rep.simTotal += res.Elapsed
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	var ok, failed, wok, wfailed int
	var all, wlat []time.Duration
	var simTotal time.Duration
	var firstErr error
	for i := range reports {
		ok += reports[i].ok
		failed += reports[i].failed
		wok += reports[i].wok
		wfailed += reports[i].wfailed
		all = append(all, reports[i].latencies...)
		wlat = append(wlat, reports[i].wlatencies...)
		simTotal += reports[i].simTotal
		if firstErr == nil {
			firstErr = reports[i].firstErr
		}
	}

	mixNote := ""
	if *mix > 0 {
		mixNote = fmt.Sprintf(", write mix %.0f%%", 100**mix)
	}
	fmt.Printf("oqlload: %d clients × %d ops against %s (db %s%s)\n",
		*clients, *perClient, *addr, label, mixNote)
	fmt.Printf("queries %d ok %d failed %d in %.2fs wall → %.1f q/s\n",
		ok+failed, ok, failed, wall.Seconds(), float64(ok)/wall.Seconds())
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Printf("wall latency   p50 %s  p95 %s  p99 %s  max %s\n",
			pct(all, 50), pct(all, 95), pct(all, 99), all[len(all)-1].Round(time.Microsecond))
		fmt.Printf("simulated time %.2fs total, %.2fs mean per query\n",
			simTotal.Seconds(), simTotal.Seconds()/float64(ok))
	}
	if wok+wfailed > 0 {
		fmt.Printf("commits %d ok %d failed %d → %.1f commits/s\n",
			wok+wfailed, wok, wfailed, float64(wok)/wall.Seconds())
		if len(wlat) > 0 {
			sort.Slice(wlat, func(i, j int) bool { return wlat[i] < wlat[j] })
			fmt.Printf("commit latency p50 %s  p95 %s  p99 %s  max %s\n",
				pct(wlat, 50), pct(wlat, 95), pct(wlat, 99), wlat[len(wlat)-1].Round(time.Microsecond))
		}
	}
	if firstErr != nil {
		fmt.Printf("first error: %v\n", firstErr)
	}

	// The server's own view: admission and latency counters.
	if c, err := client.Dial(*addr, opts); err == nil {
		if st, err := c.Stats(); err == nil {
			fmt.Printf("server: served %d (errors %d) rejected %d timeouts %d, sessions %d, queue %d, executing %d/%d, snapshot %d pages (%.1f MiB shared)\n",
				st.Served, st.QueryErrors, st.Rejected, st.TimedOut,
				st.ActiveSessions, st.QueueDepth, st.BusySessions, st.Sessions,
				st.SnapshotPages, float64(st.SnapshotBytes)/(1<<20))
			if st.SnapshotSource != "" {
				fmt.Printf("server snapshot source: %s\n", st.SnapshotSource)
			}
			if total := st.PlanCacheHits + st.PlanCacheMisses; total > 0 {
				fmt.Printf("server plan cache: %d hits / %d lookups (%.0f%%)\n",
					st.PlanCacheHits, total, 100*float64(st.PlanCacheHits)/float64(total))
			}
			if st.PlansCost+st.PlansHeuristic > 0 {
				fmt.Printf("server plans: %d cost-based, %d heuristic, batch %d, last operator %s\n",
					st.PlansCost, st.PlansHeuristic, st.BatchSize, st.LastOperator)
			}
			if st.IndexBackend != "" {
				fmt.Printf("server index backend: %s (bloom %d hits / %d misses, sstables read %d, compactions %d, pages written %d)\n",
					st.IndexBackend, st.BackendBloomHits, st.BackendBloomMisses,
					st.BackendSSTablesRead, st.BackendCompactions, st.BackendPagesWritten)
			}
			if st.PoolHits+st.PoolMisses > 0 || st.PoolCapacityPages > 0 {
				hitRate := 0.0
				if t := st.PoolHits + st.PoolMisses; t > 0 {
					hitRate = 100 * float64(st.PoolHits) / float64(t)
				}
				fmt.Printf("server pool:  %d hits / %d misses (%.0f%%), %d evictions, readahead %d issued / %d used / %d wasted, %d/%d pages resident\n",
					st.PoolHits, st.PoolMisses, hitRate, st.PoolEvictions,
					st.PoolReadaheadIssued, st.PoolReadaheadUsed, st.PoolReadaheadWasted,
					st.PoolResidentPages, st.PoolCapacityPages)
			}
			fmt.Printf("server wall   p50 %dµs p95 %dµs p99 %dµs  hist %s\n",
				st.WallP50us, st.WallP95us, st.WallP99us, st.WallHist)
			fmt.Printf("server simed  p50 %dms p95 %dms p99 %dms  hist %s\n",
				st.SimP50ms, st.SimP95ms, st.SimP99ms, st.SimHist)
			if st.HeadVersion > 0 || st.Commits > 0 {
				fmt.Printf("server chain: head v%d over base v%d, %d live versions, %d commits, %d compactions\n",
					st.HeadVersion, st.BaseVersion, st.Versions, st.Commits, st.Compactions)
				ratio := float64(st.WalRecords)
				if st.WalSyncs > 0 {
					ratio = float64(st.WalRecords) / float64(st.WalSyncs)
				}
				fmt.Printf("server wal:   %d records (%.1f KiB) in %d syncs (group commit ×%.1f), tail at %d\n",
					st.WalRecords, float64(st.WalBytes)/1024, st.WalSyncs, ratio, st.WalTail)
			}
		}
		if *coord {
			if cs, err := c.ClusterStats(); err != nil {
				fmt.Printf("cluster stats: %v\n", err)
			} else {
				printCluster(cs)
			}
		}
		c.Close()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// printCluster renders the coordinator's per-shard view: the deterministic
// shard map, then one block per shard with its own admission counters and
// latency histograms (a down shard prints as such instead of numbers).
func printCluster(cs *wire.ClusterStats) {
	fmt.Print(cs.Map)
	for _, sh := range cs.Shards {
		if !sh.Up || sh.Stats == nil {
			fmt.Printf("shard %d @ %s: DOWN\n", sh.Idx, sh.Addr)
			continue
		}
		st := sh.Stats
		fmt.Printf("shard %d @ %s: served %d (errors %d) rejected %d timeouts %d, sessions %d, last operator %s\n",
			sh.Idx, sh.Addr, st.Served, st.QueryErrors, st.Rejected, st.TimedOut,
			st.ActiveSessions, st.LastOperator)
		fmt.Printf("  wall   p50 %dµs p95 %dµs p99 %dµs  hist %s\n",
			st.WallP50us, st.WallP95us, st.WallP99us, st.WallHist)
		fmt.Printf("  simed  p50 %dms p95 %dms p99 %dms  hist %s\n",
			st.SimP50ms, st.SimP95ms, st.SimP99ms, st.SimHist)
	}
}

// pct reads the nearest-rank percentile from sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1].Round(time.Microsecond)
}

// statements resolves the query list from -e and/or -f; the default is the
// paper's canonical tree query.
func statements(inline, file string) ([]string, error) {
	text := inline
	if file != "" {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		if text != "" {
			text += ";"
		}
		text += string(b)
	}
	if strings.TrimSpace(text) == "" {
		text = `select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 10`
	}
	var stmts []string
	for _, s := range strings.Split(text, ";") {
		if s = strings.TrimSpace(s); s != "" {
			stmts = append(stmts, s)
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("no statements to run")
	}
	return stmts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oqlload:", err)
	os.Exit(1)
}
