// Command oqlsh is an interactive OQL shell over a generated Derby
// database. Queries run against the simulated engine; each result is
// reported with its plan, the considered alternatives, sample rows,
// simulated elapsed time, and the Figure 3 counters.
//
// Usage:
//
//	oqlsh [-providers 200] [-avg 50] [-clustering class] [-strategy cost]
//	      [-index-backend btree|disk|lsm]   # falls back to TREEBENCH_INDEX_BACKEND
//	oqlsh -e 'select ... ;'   # non-interactive: run statements, then exit
//	oqlsh -f script.oql       # non-interactive: run a script file
//	oqlsh -warm -e '...'      # keep caches warm between statements
//	oqlsh -coord ADDR -e '...' # run remotely against a treebench-coord
//	                           # (or treebenchd) instead of in-process
//
// In -e/-f mode only query output reaches stdout (progress goes to
// stderr), the first failing statement stops the run, and the exit status
// is non-zero on error — so shell output can be diffed against a
// treebenchd server session in CI.
//
// With -coord the statements are sent over the wire instead of executed
// in-process: results render through the same renderer, so a cluster's
// output diffs byte-for-byte against the local shell (that equivalence is
// what scripts/dist_smoke.sh pins). -coord requires -e or -f.
//
// Shell commands:
//
//	select ... ;         run an OQL query (newlines allowed, end with ';')
//	.explain select ...  plan a query without running it
//	.cold                cold-restart the caches (default before each query)
//	.warm                keep caches warm between queries
//	.schema              show extents, attributes and indexes
//	.stats               show index histograms
//	.strategy cost|heur  switch optimizer strategy
//	.help                this text
//	.quit                exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"treebench"
	"treebench/internal/bufpool"
	"treebench/internal/client"
	"treebench/internal/oql"
	"treebench/internal/session"
	"treebench/internal/shell"
)

func main() {
	var (
		providers  = flag.Int("providers", 200, "number of providers")
		avg        = flag.Int("avg", 50, "average patients per provider")
		clustering = flag.String("clustering", "class", "class, random, composition")
		strategy   = flag.String("strategy", "cost", "optimizer strategy: cost, heuristic")
		stmts      = flag.String("e", "", "run these semicolon-terminated statements and exit")
		script     = flag.String("f", "", "run this script file and exit")
		warm       = flag.Bool("warm", false, "keep caches warm between statements (like the .warm command)")
		coord      = flag.String("coord", "", "run statements remotely against this treebench-coord (or treebenchd) address; requires -e or -f")
		maxRows    = flag.Int("maxrows", 10, "sample rows printed per query in -coord mode")
		qjobs      = flag.Int("qj", 0, "intra-query workers (default from TREEBENCH_QUERY_JOBS or min(NumCPU, 4); output identical at any setting)")
		batch      = flag.Int("batch", 0, "vectorized-execution batch size (default from TREEBENCH_BATCH or 1024; 1 = scalar operators; output identical at any setting)")
		ixBackend  = flag.String("index-backend", "", "index backend: btree, disk, or lsm (default from TREEBENCH_INDEX_BACKEND or btree; output identical across backends)")
		poolMB     = flag.Int("bufpool-mb", bufpool.CapacityMBFromEnv(bufpool.DefaultCapacityMB), "shared buffer pool size in MB for snapshot-backed databases (also TREEBENCH_BUFPOOL_MB; 0 disables the pool; output identical at any setting)")
		rahead     = flag.Int("readahead", bufpool.ReadaheadFromEnv(bufpool.DefaultReadahead), "buffer-pool readahead window in pages (also TREEBENCH_READAHEAD; 0 disables prefetch; output identical at any setting)")
	)
	flag.Parse()
	bufpool.Setup(*poolMB, *rahead)
	scripted := *stmts != "" || *script != ""

	if *coord != "" {
		if !scripted {
			fmt.Fprintln(os.Stderr, "oqlsh: -coord requires -e or -f (no interactive remote mode)")
			os.Exit(2)
		}
		if err := runRemote(*coord, *stmts, *script, *strategy, *warm, *maxRows); err != nil {
			fmt.Fprintln(os.Stderr, "oqlsh:", err)
			os.Exit(1)
		}
		return
	}

	var cl treebench.Clustering
	switch *clustering {
	case "class":
		cl = treebench.ClassCluster
	case "random":
		cl = treebench.RandomOrg
	case "composition":
		cl = treebench.CompositionCluster
	default:
		fmt.Fprintf(os.Stderr, "oqlsh: unknown clustering %q\n", *clustering)
		os.Exit(2)
	}

	kind := *ixBackend
	if kind == "" {
		kind = treebench.IndexBackendFromEnv("")
	}
	if kind != "" {
		if err := treebench.CheckIndexBackend(kind); err != nil {
			fmt.Fprintln(os.Stderr, "oqlsh:", err)
			os.Exit(2)
		}
	}

	// Progress stays off stdout in scripted mode so stdout is exactly the
	// query output.
	progress := io.Writer(os.Stdout)
	if scripted {
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "generating %d providers × %d patients (%s clustering)...\n",
		*providers, (*providers)*(*avg), cl)
	dcfg := treebench.DerbyConfig(*providers, *avg, cl)
	dcfg.IndexBackend = kind
	d, err := treebench.GenerateDerby(dcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oqlsh:", err)
		os.Exit(1)
	}
	qj := *qjobs
	if qj == 0 {
		qj = treebench.QueryJobsFromEnv(0)
	}
	b := *batch
	if b == 0 {
		b = treebench.BatchFromEnv(0)
	}
	sh := shell.NewWith(d.DB, session.Config{
		QueryJobs:    qj,
		Batch:        b,
		PlanCache:    oql.NewPlanCache(0),
		IndexBackend: kind,
	})
	if strings.HasPrefix(*strategy, "heur") {
		sh.Planner.Strategy = oql.Heuristic
	}
	if *warm {
		sh.Cold = false
	}

	if scripted {
		sh.Prompt = ""
		if *stmts != "" {
			src := *stmts
			if !strings.HasSuffix(strings.TrimSpace(src), ";") {
				src += ";"
			}
			if err := sh.Script(strings.NewReader(src), os.Stdout); err != nil {
				os.Exit(1)
			}
		}
		if *script != "" {
			f, err := os.Open(*script)
			if err != nil {
				fmt.Fprintln(os.Stderr, "oqlsh:", err)
				os.Exit(1)
			}
			err = sh.Script(f, os.Stdout)
			f.Close()
			if err != nil {
				os.Exit(1)
			}
		}
		return
	}

	fmt.Println(`ready; try: select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 10;`)
	fmt.Println(`type .help for commands`)
	if err := sh.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oqlsh:", err)
		os.Exit(1)
	}
}

// runRemote sends the scripted statements to a coordinator (or daemon) and
// renders each result exactly as the local shell would.
func runRemote(addr, inline, script, strategy string, warm bool, maxRows int) error {
	text := inline
	if script != "" {
		b, err := os.ReadFile(script)
		if err != nil {
			return err
		}
		if text != "" {
			text += ";"
		}
		text += string(b)
	}
	var stmtList []string
	for _, s := range strings.Split(text, ";") {
		if s = strings.TrimSpace(s); s != "" {
			stmtList = append(stmtList, s)
		}
	}
	if len(stmtList) == 0 {
		return fmt.Errorf("no statements to run")
	}
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "connected to %s (db %s)\n", addr, c.Label())
	opts := client.QueryOptions{
		Warm:      warm,
		Heuristic: strings.HasPrefix(strategy, "heur"),
		MaxRows:   maxRows,
	}
	for _, stmt := range stmtList {
		res, err := c.Query(stmt, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
		session.WriteResult(os.Stdout, res, maxRows)
	}
	return nil
}
