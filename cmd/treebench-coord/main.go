// Command treebench-coord is the scatter-gather coordinator for a sharded
// treebench cluster: it speaks the same wire protocol as treebenchd, plans
// each incoming statement locally, fans distributable operators (full
// scans; NL/PHJ/CHJ tree joins) out to N treebenchd shards as
// chunk-ownership slices, and merges the partial results in shard-index
// order — producing rendered tables and meter totals byte-identical to a
// single-node run. Non-distributable operators are routed whole to one
// shard; the merged output is still exact.
//
// Usage:
//
//	treebench-coord -shards 127.0.0.1:8630,127.0.0.1:8631,127.0.0.1:8632
//	                [-addr 127.0.0.1:8629] [-providers 200] [-avg 50]
//	                [-clustering class] [-seed 1997]
//	                [-snapshot-dir DIR] [-save-snapshot]
//	                [-bufpool-mb N] [-readahead N] [-pprof ADDR]
//	                [-query-timeout 60s] [-v]
//
// -bufpool-mb/-readahead size the coordinator's own shared buffer pool
// (its planning snapshot reads through it; also TREEBENCH_BUFPOOL_MB /
// TREEBENCH_READAHEAD; 0 disables). -pprof ADDR serves net/http/pprof
// on ADDR for profiling the scatter-gather and pool hot paths.
//
// The shard list is positional: the i-th address must be a treebenchd
// started with -shard i/N over the SAME -providers/-avg/-clustering/-seed.
// The coordinator holds a copy of the snapshot itself (from the same
// content-addressed cache the shards use) for planning and for the shard
// map; it verifies each shard's announced identity and snapshot key at
// dial time and fails queries over a mismatched or unreachable shard with
// a typed shard error rather than merging wrong answers.
//
// Only cold queries are accepted: warm-cache sequences are a property of
// one session's history and cannot be sliced deterministically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"treebench/internal/bufpool"
	"treebench/internal/core"
	"treebench/internal/derby"
	"treebench/internal/dist"
	"treebench/internal/persist"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8629", "listen address")
		shards     = flag.String("shards", "", "comma-separated shard addresses, in shard-index order (required)")
		providers  = flag.Int("providers", 200, "number of providers (must match the shards)")
		avg        = flag.Int("avg", 50, "average patients per provider (must match the shards)")
		clustering = flag.String("clustering", "class", "class, random, composition (must match the shards)")
		seed       = flag.Int("seed", 1997, "data generator seed (must match the shards)")
		timeout    = flag.Duration("query-timeout", 60*time.Second, "per-query budget across the whole scatter-gather")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight queries")
		snapDir    = flag.String("snapshot-dir", os.Getenv(core.SnapshotDirEnvVar), "snapshot cache directory (also TREEBENCH_SNAPSHOT_DIR; empty disables)")
		saveSnap   = flag.Bool("save-snapshot", false, "cache the planning snapshot even without -snapshot-dir")
		bufpoolMB  = flag.Int("bufpool-mb", bufpool.CapacityMBFromEnv(bufpool.DefaultCapacityMB), "shared buffer pool size in MB (also TREEBENCH_BUFPOOL_MB; 0 disables the pool)")
		readahead  = flag.Int("readahead", bufpool.ReadaheadFromEnv(bufpool.DefaultReadahead), "buffer-pool readahead window in pages (also TREEBENCH_READAHEAD; 0 disables prefetch)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6061; empty disables)")
		verbose    = flag.Bool("v", false, "log shard dials and lifecycle to stderr")
	)
	flag.Parse()
	bufpool.Setup(*bufpoolMB, *readahead)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "treebench-coord: pprof: %v\n", err)
			}
		}()
	}

	addrs := splitAddrs(*shards)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-shards is required (comma-separated, shard-index order)"))
	}

	cl, err := parseClustering(*clustering)
	if err != nil {
		fatal(err)
	}
	cfg := derby.DefaultConfig(*providers, *avg, cl)
	cfg.Seed = int32(*seed)
	label := fmt.Sprintf("%dx%d %s × %d shards", *providers, (*providers)*(*avg), cl, len(addrs))

	dcfg := dist.Config{
		ShardAddrs:   addrs,
		Source:       snapshotSource(cfg, *snapDir, *saveSnap),
		Label:        label,
		SnapshotKey:  persist.KeyFor(cfg),
		QueryTimeout: *timeout,
	}
	if *verbose {
		dcfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "treebench-coord: "+format+"\n", args...)
		}
	}
	co, err := dist.New(dcfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("treebench-coord: preparing %s planning snapshot...\n", label)
	if err := co.Warm(); err != nil {
		fatal(err)
	}

	errc := make(chan error, 1)
	go func() { errc <- co.ListenAndServe(*addr) }()
	fmt.Printf("treebench-coord: serving %s on %s\n", label, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != dist.ErrCoordClosed {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Printf("treebench-coord: %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Println("treebench-coord: drained, bye")
	}
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// snapshotSource mirrors treebenchd's: straight generation when caching is
// off, the content-addressed cache otherwise — so a coordinator co-located
// with a shard shares its cached snapshot file.
func snapshotSource(cfg derby.Config, dir string, save bool) func() (*derby.Snapshot, string, error) {
	if dir == "" && !save {
		return func() (*derby.Snapshot, string, error) {
			d, err := derby.Generate(cfg)
			if err != nil {
				return nil, "", err
			}
			sn, err := d.Freeze()
			if err != nil {
				return nil, "", err
			}
			return sn, "generated", nil
		}
	}
	return func() (*derby.Snapshot, string, error) {
		cache, err := persist.Open(dir)
		if err != nil {
			return nil, "", err
		}
		sn, out, err := cache.GetOrGenerate(cfg)
		if err != nil {
			return nil, "", err
		}
		return sn, fmt.Sprintf("%s (%s)", out.Source, out.Path), nil
	}
}

func parseClustering(s string) (derby.Clustering, error) {
	switch s {
	case "class":
		return derby.ClassCluster, nil
	case "random":
		return derby.RandomOrg, nil
	case "composition":
		return derby.CompositionCluster, nil
	default:
		return 0, fmt.Errorf("unknown clustering %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treebench-coord:", err)
	os.Exit(1)
}
