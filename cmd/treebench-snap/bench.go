package main

import (
	"bytes"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"treebench/internal/bufpool"
	"treebench/internal/derby"
	"treebench/internal/persist"
	"treebench/internal/session"
	"treebench/internal/storage"
)

// cmdBench is the measurement driver behind scripts/bench_cache.sh: it
// loads a snapshot file under a chosen buffer-pool configuration and
// times repeated rounds of real work against it — either an OQL
// statement on forked sessions (mode=query) or a raw sequential page
// sweep of the backing image (mode=sweep). Round 1 always runs against
// an empty pool (cold), later rounds against whatever the earlier rounds
// left resident (warm), so one invocation yields a cold/warm pair; the
// readahead and RSS comparisons come from separate invocations with
// different knobs (each process gets a fresh pool).
//
// Output is one key=value record per line, consumed by the script:
//
//	round=1 wall_ms=412.8
//	round=2 wall_ms=97.3
//	result_crc=1a2b3c4d        (byte-identity oracle across configs)
//	pool hits=... misses=... evictions=... ra_issued=... ra_used=... ra_wasted=... resident=... capacity=...
//	vm_rss_kb=180424 vm_hwm_kb=203112
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	file := fs.String("file", "", "snapshot file to benchmark against (required)")
	mode := fs.String("mode", "query", "query (OQL statement on forked sessions) or sweep (sequential page sweep)")
	stmt := fs.String("stmt", "select count(*) from pa in Patients where pa.age < 40", "OQL statement for mode=query")
	sessions := fs.Int("sessions", 1, "concurrent sessions per round (each forks privately and runs the statement once)")
	rounds := fs.Int("rounds", 2, "measurement rounds; round 1 is cold, later rounds are pool-warm")
	poolMB := fs.Int("bufpool-mb", bufpool.CapacityMBFromEnv(bufpool.DefaultCapacityMB), "shared buffer pool size in MB (0 disables the pool)")
	readahead := fs.Int("readahead", bufpool.ReadaheadFromEnv(bufpool.DefaultReadahead), "readahead window in pages (0 disables prefetch)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the measured rounds to this file")
	direct := fs.Bool("direct", false, "open the snapshot with O_DIRECT (Linux): misses bypass the OS page cache, so cold means cold storage; silently buffered where unsupported")
	versus := fs.Bool("versus", false, "A/B the configured readahead against -readahead=0 within one process: each round reloads on a fresh pool (always cold) alternating configs, reporting per-config minima — immune to machine-speed drift between processes")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("bench wants -file FILE")
	}
	if *sessions < 1 || *rounds < 1 {
		return fmt.Errorf("bench wants -sessions ≥ 1 and -rounds ≥ 1")
	}

	if *direct {
		os.Setenv(persist.DirectIOEnvVar, "1")
	}
	fmt.Printf("direct=%v\n", *direct && persist.DirectIOSupported(*file))

	if *versus {
		return benchVersus(*file, *mode, *stmt, *sessions, *rounds, *poolMB, *readahead)
	}

	bufpool.Setup(*poolMB, *readahead)
	snap, err := persist.Load(*file)
	if err != nil {
		return err
	}
	fmt.Printf("file=%s pages=%d bufpool_mb=%d readahead=%d mode=%s sessions=%d\n",
		*file, snap.Engine.Pages(), *poolMB, *readahead, *mode, *sessions)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var resultCRC uint32
	for r := 1; r <= *rounds; r++ {
		start := time.Now()
		crc, err := runRound(snap, *mode, *stmt, *sessions)
		if err != nil {
			return err
		}
		if r == 1 {
			resultCRC = crc
		} else if crc != resultCRC {
			return fmt.Errorf("round %d produced different output (crc %08x, want %08x): warm pool changed results", r, crc, resultCRC)
		}
		fmt.Printf("round=%d wall_ms=%.2f\n", r, float64(time.Since(start).Microseconds())/1000)
	}
	fmt.Printf("result_crc=%08x\n", resultCRC)

	if p := bufpool.Active(); p != nil {
		st := p.Stats()
		fmt.Printf("pool hits=%d misses=%d evictions=%d ra_issued=%d ra_used=%d ra_wasted=%d resident=%d capacity=%d\n",
			st.Hits, st.Misses, st.Evictions, st.ReadaheadIssued, st.ReadaheadUsed,
			st.ReadaheadWasted, st.ResidentPages, st.CapacityPages)
	} else {
		fmt.Println("pool disabled")
	}
	// Release all garbage to the OS, then read RSS with the snapshot still
	// live: what remains is the steady-state working set — the bounded
	// pool, or (pool disabled) every page the legacy per-snapshot cache
	// materialized. KeepAlive pins the snapshot past the reading; without
	// it liveness analysis would let the collector free the caches being
	// measured.
	debug.FreeOSMemory()
	rss, hwm := readRSS()
	fmt.Printf("vm_rss_kb=%d vm_hwm_kb=%d\n", rss, hwm)
	runtime.KeepAlive(snap)
	return nil
}

// runRound executes one measured round in the chosen mode.
func runRound(snap *derby.Snapshot, mode, stmt string, sessions int) (uint32, error) {
	switch mode {
	case "query":
		return queryRound(snap, stmt, sessions)
	case "sweep":
		return sweepRound(snap.Engine.Base(), sessions)
	default:
		return 0, fmt.Errorf("unknown -mode %q (query or sweep)", mode)
	}
}

// benchVersus interleaves cold rounds of the two readahead configs in
// one process: Setup replaces the global pool before each round, and the
// snapshot is reloaded so every round faults from scratch. Machine-speed
// drift (a noisy neighbor, thermal throttling) hits both configs
// equally; the per-config minimum estimates the undisturbed cost.
func benchVersus(file, mode, stmt string, sessions, rounds, poolMB, readahead int) error {
	if readahead <= 0 {
		return fmt.Errorf("-versus wants -readahead > 0 (it compares against 0 itself)")
	}
	var raMS, noraMS []float64
	var resultCRC uint32
	first := true
	for r := 1; r <= rounds; r++ {
		for _, cfg := range []int{readahead, 0} {
			bufpool.Setup(poolMB, cfg)
			snap, err := persist.Load(file)
			if err != nil {
				return err
			}
			if first {
				fmt.Printf("file=%s pages=%d bufpool_mb=%d mode=%s sessions=%d versus readahead %d vs 0\n",
					file, snap.Engine.Pages(), poolMB, mode, sessions, readahead)
			}
			runtime.GC()
			start := time.Now()
			crc, err := runRound(snap, mode, stmt, sessions)
			if err != nil {
				return err
			}
			ms := float64(time.Since(start).Microseconds()) / 1000
			if first {
				resultCRC = crc
				first = false
			} else if crc != resultCRC {
				return fmt.Errorf("readahead=%d produced different output (crc %08x, want %08x)", cfg, crc, resultCRC)
			}
			if cfg == 0 {
				noraMS = append(noraMS, ms)
			} else {
				raMS = append(raMS, ms)
			}
			fmt.Printf("round=%d readahead=%d wall_ms=%.2f\n", r, cfg, ms)
		}
	}
	raBest, noraBest := minOf(raMS), minOf(noraMS)
	fmt.Printf("result_crc=%08x\n", resultCRC)
	fmt.Printf("ra_min_ms=%.2f nora_min_ms=%.2f ra_speedup=%.3f\n", raBest, noraBest, noraBest/raBest)
	debug.FreeOSMemory()
	rss, hwm := readRSS()
	fmt.Printf("vm_rss_kb=%d vm_hwm_kb=%d\n", rss, hwm)
	return nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// queryRound forks `sessions` private sessions concurrently, runs stmt
// once in each, and returns the CRC of the rendered table — identical
// across sessions and rounds by the determinism invariant, which this
// checks as it goes.
func queryRound(snap *derby.Snapshot, stmt string, sessions int) (uint32, error) {
	crcs := make([]uint32, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := session.New(snap.Fork().DB)
			res, err := s.Execute(stmt)
			if err != nil {
				errs[i] = err
				return
			}
			var buf bytes.Buffer
			session.WriteResult(&buf, session.ToWire(res, 5), 5)
			crcs[i] = crc32.ChecksumIEEE(buf.Bytes())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	for _, c := range crcs[1:] {
		if c != crcs[0] {
			return 0, fmt.Errorf("concurrent sessions rendered different tables under one pool")
		}
	}
	return crcs[0], nil
}

// sweepRound reads every page of the image sequentially on `workers`
// goroutines (disjoint contiguous slices) and returns a CRC over a
// per-page XOR digest — order-independent across workers, so the value
// is comparable at any worker count.
func sweepRound(base *storage.Base, workers int) (uint32, error) {
	n := base.NumPages()
	if workers > n {
		workers = n
	}
	digest := make([]byte, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				buf, err := base.Page(storage.PageID(i))
				if err != nil {
					errs[w] = err
					return
				}
				// Sample the page at a coarse stride: content-sensitive
				// enough for the identity oracle without the digest compute
				// swamping the I/O path being measured.
				var x byte
				for off := 0; off < len(buf); off += 512 {
					x ^= buf[off]
				}
				digest[i] = x
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return crc32.ChecksumIEEE(digest), nil
}

// readRSS parses VmRSS and VmHWM (KiB) from /proc/self/status; zero on
// platforms without procfs.
func readRSS() (rss, hwm int64) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		var dst *int64
		switch {
		case strings.HasPrefix(line, "VmRSS:"):
			dst = &rss
		case strings.HasPrefix(line, "VmHWM:"):
			dst = &hwm
		default:
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			if v, err := strconv.ParseInt(f[1], 10, 64); err == nil {
				*dst = v
			}
		}
	}
	return rss, hwm
}
