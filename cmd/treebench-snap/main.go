// Command treebench-snap manages persisted Derby snapshots: the versioned
// on-disk files (DESIGN.md, "On-disk snapshot format") behind the
// content-addressed cache that treebenchd and the experiment scheduler
// warm-boot from.
//
// Usage:
//
//	treebench-snap save   [-providers N] [-avg N] [-clustering C] [-seed N] [-o FILE]
//	treebench-snap load   FILE
//	treebench-snap verify FILE...
//	treebench-snap ls     [-dir DIR]
//	treebench-snap rm     [-dir DIR] [-all] [KEY|FILE ...]
//
// save generates the configured database and writes it — to -o, or into
// the cache directory under its content address. load rebuilds a snapshot
// from a file and proves it serves queries (a dry run of treebenchd's
// warm boot). verify checks every section checksum without loading. ls
// lists the cache; rm removes entries by key prefix or path.
//
// The cache directory is -dir, else $TREEBENCH_SNAPSHOT_DIR, else the
// user cache directory (persist.DefaultDir).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"treebench/internal/derby"
	"treebench/internal/persist"
	"treebench/internal/session"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "rm":
		err = cmdRm(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "treebench-snap: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treebench-snap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  treebench-snap save   [-providers N] [-avg N] [-clustering C] [-seed N] [-o FILE]
  treebench-snap load   FILE
  treebench-snap verify FILE...
  treebench-snap ls     [-dir DIR]
  treebench-snap rm     [-dir DIR] [-all] [KEY|FILE ...]`)
}

func dirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", "", "snapshot cache directory (default $TREEBENCH_SNAPSHOT_DIR or the user cache dir)")
}

func resolveDir(dir string) (string, error) {
	if dir != "" {
		return dir, nil
	}
	return persist.DefaultDir()
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	providers := fs.Int("providers", 200, "number of providers")
	avg := fs.Int("avg", 50, "average patients per provider")
	clustering := fs.String("clustering", "class", "class, random, composition")
	seed := fs.Int("seed", 1997, "data generator seed")
	out := fs.String("o", "", "output file (default: cache dir under the content address)")
	dir := dirFlag(fs)
	fs.Parse(args)

	cl, err := parseClustering(*clustering)
	if err != nil {
		return err
	}
	cfg := derby.DefaultConfig(*providers, *avg, cl)
	cfg.Seed = int32(*seed)

	path := *out
	if path == "" {
		d, err := resolveDir(*dir)
		if err != nil {
			return err
		}
		path = filepath.Join(d, persist.KeyFor(cfg)+".tbsp")
	}
	fmt.Printf("generating %d×%d %s database...\n", *providers, (*providers)*(*avg), cl)
	ds, err := derby.Generate(cfg)
	if err != nil {
		return err
	}
	snap, err := ds.Freeze()
	if err != nil {
		return err
	}
	if err := persist.Save(path, snap); err != nil {
		return err
	}
	fi, _ := os.Stat(path)
	fmt.Printf("saved %s (%d pages, %d bytes)\n", path, snap.Engine.Pages(), fi.Size())
	return nil
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("load wants exactly one FILE")
	}
	path := fs.Arg(0)
	snap, err := persist.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d pages (%.1f MiB)\n", path, snap.Engine.Pages(),
		float64(snap.Engine.Bytes())/(1<<20))
	// Prove the catalog is live: fork a session and run one query — the
	// same dry run treebenchd's warm boot amounts to.
	s := session.New(snap.Fork().DB)
	res, err := s.Execute("select count(*) from pa in Patients")
	if err != nil {
		return fmt.Errorf("probe query: %w", err)
	}
	session.WriteResult(os.Stdout, session.ToWire(res, 1), 1)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("verify wants at least one FILE")
	}
	for _, path := range fs.Args() {
		m, err := persist.Verify(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (v%d, %d pages, %d×%d %s)\n",
			path, m.Version, m.Pages, m.Providers, m.Patients, m.Clustering)
		for _, s := range m.Sections {
			fmt.Printf("  %-11s %12d bytes  crc %08x\n", s.Name, s.Length, s.CRC)
		}
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := dirFlag(fs)
	fs.Parse(args)
	d, err := resolveDir(*dir)
	if err != nil {
		return err
	}
	entries, err := filepath.Glob(filepath.Join(d, "*.tbsp"))
	if err != nil {
		return err
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		fmt.Printf("%s: no snapshots\n", d)
		return nil
	}
	for _, path := range entries {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		m, err := persist.Inspect(path)
		if err != nil {
			fmt.Printf("%-16s  %10d  (unreadable: %v)\n", filepath.Base(path), fi.Size(), err)
			continue
		}
		key := strings.TrimSuffix(filepath.Base(path), ".tbsp")
		fmt.Printf("%-16s  %10d bytes  v%d  %d pages  %d×%d %s\n",
			key[:min(16, len(key))], fi.Size(), m.Version, m.Pages, m.Providers, m.Patients, m.Clustering)
	}
	return nil
}

func cmdRm(args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	dir := dirFlag(fs)
	all := fs.Bool("all", false, "remove every snapshot in the cache directory")
	fs.Parse(args)
	d, err := resolveDir(*dir)
	if err != nil {
		return err
	}
	var victims []string
	if *all {
		victims, err = filepath.Glob(filepath.Join(d, "*.tbsp"))
		if err != nil {
			return err
		}
	} else if fs.NArg() == 0 {
		return fmt.Errorf("rm wants KEY or FILE arguments (or -all)")
	}
	for _, arg := range fs.Args() {
		if strings.ContainsRune(arg, os.PathSeparator) || strings.HasSuffix(arg, ".tbsp") {
			victims = append(victims, arg)
			continue
		}
		// A key prefix: match cache entries.
		matches, _ := filepath.Glob(filepath.Join(d, arg+"*.tbsp"))
		if len(matches) == 0 {
			return fmt.Errorf("no snapshot matches %q in %s", arg, d)
		}
		victims = append(victims, matches...)
	}
	for _, path := range victims {
		if err := os.Remove(path); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", path)
	}
	return nil
}

func parseClustering(s string) (derby.Clustering, error) {
	switch s {
	case "class":
		return derby.ClassCluster, nil
	case "random":
		return derby.RandomOrg, nil
	case "composition":
		return derby.CompositionCluster, nil
	default:
		return 0, fmt.Errorf("unknown clustering %q", s)
	}
}
