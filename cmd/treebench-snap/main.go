// Command treebench-snap manages persisted Derby snapshots: the versioned
// on-disk files (DESIGN.md, "On-disk snapshot format") behind the
// content-addressed cache that treebenchd and the experiment scheduler
// warm-boot from.
//
// Usage:
//
//	treebench-snap save   [-providers N] [-avg N] [-clustering C] [-seed N] [-index-backend K] [-o FILE]
//	treebench-snap load   FILE
//	treebench-snap verify FILE...
//	treebench-snap chain  DIR
//	treebench-snap bench  -file FILE [-mode query|sweep] [-sessions N] [-bufpool-mb N] [-readahead N] [-direct] [-versus]
//	treebench-snap ls     [-dir DIR]
//	treebench-snap rm     [-dir DIR] [-all] [KEY|FILE ...]
//
// save generates the configured database and writes it — to -o, or into
// the cache directory under its content address. load rebuilds a snapshot
// from a file and proves it serves queries (a dry run of treebenchd's
// warm boot). verify checks every section checksum without loading; for a
// snapshot committed by the write path it also prints the lineage section
// (chain version, parent, delta pages, WAL offset). ls lists the cache,
// with lineage columns for chain-committed entries; rm removes entries by
// key prefix or path.
//
// chain walks a treebenchd -wal store directory read-only: it verifies
// the base snapshot's checksums, then scans the write-ahead log record by
// record — CRCs, version continuity from the base, decodable commit
// bodies — printing one line per commit and reporting (without
// truncating) a torn tail. It is the offline fsck for the write path.
//
// bench times repeated rounds of real work against a snapshot file under
// a chosen buffer-pool configuration (see bench.go); it is the driver
// behind scripts/bench_cache.sh.
//
// The cache directory is -dir, else $TREEBENCH_SNAPSHOT_DIR, else the
// user cache directory (persist.DefaultDir).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"treebench/internal/backend"
	"treebench/internal/core"
	"treebench/internal/derby"
	"treebench/internal/persist"
	"treebench/internal/session"
	"treebench/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "chain":
		err = cmdChain(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "ls":
		err = cmdLs(os.Args[2:])
	case "rm":
		err = cmdRm(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "treebench-snap: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "treebench-snap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  treebench-snap save   [-providers N] [-avg N] [-clustering C] [-seed N] [-index-backend K] [-o FILE]
  treebench-snap load   FILE
  treebench-snap verify FILE...
  treebench-snap chain  DIR
  treebench-snap bench  -file FILE [-mode query|sweep] [-stmt OQL] [-sessions N] [-rounds N] [-bufpool-mb N] [-readahead N] [-direct] [-versus]
  treebench-snap ls     [-dir DIR]
  treebench-snap rm     [-dir DIR] [-all] [KEY|FILE ...]`)
}

func dirFlag(fs *flag.FlagSet) *string {
	return fs.String("dir", "", "snapshot cache directory (default $TREEBENCH_SNAPSHOT_DIR or the user cache dir)")
}

func resolveDir(dir string) (string, error) {
	if dir != "" {
		return dir, nil
	}
	return persist.DefaultDir()
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	providers := fs.Int("providers", 200, "number of providers")
	avg := fs.Int("avg", 50, "average patients per provider")
	clustering := fs.String("clustering", "class", "class, random, composition")
	seed := fs.Int("seed", 1997, "data generator seed")
	ixBackend := fs.String("index-backend", "", "index backend: btree, disk, or lsm (default from TREEBENCH_INDEX_BACKEND or btree)")
	out := fs.String("o", "", "output file (default: cache dir under the content address)")
	dir := dirFlag(fs)
	fs.Parse(args)

	cl, err := parseClustering(*clustering)
	if err != nil {
		return err
	}
	kind := *ixBackend
	if kind == "" {
		kind = core.IndexBackendFromEnv("")
	}
	if kind != "" {
		if err := backend.CheckKind(kind); err != nil {
			return err
		}
	}
	cfg := derby.DefaultConfig(*providers, *avg, cl)
	cfg.Seed = int32(*seed)
	cfg.IndexBackend = kind

	path := *out
	if path == "" {
		d, err := resolveDir(*dir)
		if err != nil {
			return err
		}
		path = filepath.Join(d, persist.KeyFor(cfg)+".tbsp")
	}
	fmt.Printf("generating %d×%d %s database...\n", *providers, (*providers)*(*avg), cl)
	ds, err := derby.Generate(cfg)
	if err != nil {
		return err
	}
	snap, err := ds.Freeze()
	if err != nil {
		return err
	}
	if err := persist.Save(path, snap); err != nil {
		return err
	}
	fi, _ := os.Stat(path)
	fmt.Printf("saved %s (%d pages, %d bytes)\n", path, snap.Engine.Pages(), fi.Size())
	return nil
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("load wants exactly one FILE")
	}
	path := fs.Arg(0)
	snap, err := persist.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d pages (%.1f MiB)\n", path, snap.Engine.Pages(),
		float64(snap.Engine.Bytes())/(1<<20))
	// Prove the catalog is live: fork a session and run one query — the
	// same dry run treebenchd's warm boot amounts to.
	s := session.New(snap.Fork().DB)
	res, err := s.Execute("select count(*) from pa in Patients")
	if err != nil {
		return fmt.Errorf("probe query: %w", err)
	}
	session.WriteResult(os.Stdout, session.ToWire(res, 1), 1)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("verify wants at least one FILE")
	}
	for _, path := range fs.Args() {
		m, err := persist.Verify(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok (v%d, %d pages, %d×%d %s, backend %s)\n",
			path, m.Version, m.Pages, m.Providers, m.Patients, m.Clustering, m.Backend)
		if m.Chain.Version > 0 {
			fmt.Printf("  chain v%d ← v%d, %d delta pages, wal offset %d\n",
				m.Chain.Version, m.Chain.Parent, m.Chain.DeltaPages, m.Chain.WalOff)
		}
		for _, s := range m.Sections {
			fmt.Printf("  %-11s %12d bytes  crc %08x\n", s.Name, s.Length, s.CRC)
		}
	}
	return nil
}

// cmdChain is the offline fsck for a -wal store directory: verify the
// base snapshot, then walk the WAL read-only, checking each commit record
// decodes and the version sequence is contiguous from the base. Records
// at or below the base version are compaction leftovers (a crash between
// base publish and WAL reset) and count as skipped, exactly as boot-time
// recovery treats them.
func cmdChain(args []string) error {
	fs := flag.NewFlagSet("chain", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("chain wants exactly one store DIR")
	}
	dir := fs.Arg(0)
	base := filepath.Join(dir, "base.tbsp")
	m, err := persist.Verify(base)
	if err != nil {
		return fmt.Errorf("%s: %w", base, err)
	}
	fmt.Printf("%s: ok (base v%d, %d pages, %d×%d %s)\n",
		base, m.Chain.Version, m.Pages, m.Providers, m.Patients, m.Clustering)

	cur := m.Chain.Version
	skipped := 0
	walPath := filepath.Join(dir, "wal")
	rec, err := wal.Scan(walPath, func(off int64, payload []byte) error {
		r, err := persist.DecodeCommit(payload)
		if err != nil {
			return err
		}
		if r.Version <= m.Chain.Version {
			skipped++
			fmt.Printf("  wal@%-8d v%-4d wave %-4d %4d delta pages  (≤ base, skipped)\n",
				off, r.Version, r.Wave, len(r.OverlayIDs)+len(r.AppendedPages))
			return nil
		}
		if r.Version != cur+1 {
			return fmt.Errorf("commit v%d follows v%d: chain gap", r.Version, cur)
		}
		cur = r.Version
		evolved := ""
		if r.State != nil && len(r.AppendedPages) > 0 {
			evolved = "  (growth wave)"
		}
		fmt.Printf("  wal@%-8d v%-4d wave %-4d %4d delta pages%s\n",
			off, r.Version, r.Wave, len(r.OverlayIDs)+len(r.AppendedPages), evolved)
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s: %w", walPath, err)
	}
	fmt.Printf("%s: %d commits (%d skipped), head v%d, tail at %d\n",
		walPath, rec.Records, skipped, cur, rec.Tail)
	if rec.Torn != nil {
		fmt.Printf("torn tail (would be truncated on next boot): %v\n", rec.Torn)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := dirFlag(fs)
	fs.Parse(args)
	d, err := resolveDir(*dir)
	if err != nil {
		return err
	}
	entries, err := filepath.Glob(filepath.Join(d, "*.tbsp"))
	if err != nil {
		return err
	}
	sort.Strings(entries)
	if len(entries) == 0 {
		fmt.Printf("%s: no snapshots\n", d)
		return nil
	}
	for _, path := range entries {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		m, err := persist.Inspect(path)
		if err != nil {
			fmt.Printf("%-16s  %10d  (unreadable: %v)\n", filepath.Base(path), fi.Size(), err)
			continue
		}
		key := strings.TrimSuffix(filepath.Base(path), ".tbsp")
		lineage := ""
		if m.Chain.Version > 0 {
			lineage = fmt.Sprintf("  chain v%d←v%d Δ%dp wal@%d",
				m.Chain.Version, m.Chain.Parent, m.Chain.DeltaPages, m.Chain.WalOff)
		}
		fmt.Printf("%-16s  %10d bytes  v%d  %d pages  %d×%d %s  %s%s\n",
			key[:min(16, len(key))], fi.Size(), m.Version, m.Pages, m.Providers, m.Patients, m.Clustering, m.Backend, lineage)
	}
	return nil
}

func cmdRm(args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	dir := dirFlag(fs)
	all := fs.Bool("all", false, "remove every snapshot in the cache directory")
	fs.Parse(args)
	d, err := resolveDir(*dir)
	if err != nil {
		return err
	}
	var victims []string
	if *all {
		victims, err = filepath.Glob(filepath.Join(d, "*.tbsp"))
		if err != nil {
			return err
		}
	} else if fs.NArg() == 0 {
		return fmt.Errorf("rm wants KEY or FILE arguments (or -all)")
	}
	for _, arg := range fs.Args() {
		if strings.ContainsRune(arg, os.PathSeparator) || strings.HasSuffix(arg, ".tbsp") {
			victims = append(victims, arg)
			continue
		}
		// A key prefix: match cache entries.
		matches, _ := filepath.Glob(filepath.Join(d, arg+"*.tbsp"))
		if len(matches) == 0 {
			return fmt.Errorf("no snapshot matches %q in %s", arg, d)
		}
		victims = append(victims, matches...)
	}
	for _, path := range victims {
		if err := os.Remove(path); err != nil {
			return err
		}
		fmt.Printf("removed %s\n", path)
	}
	return nil
}

func parseClustering(s string) (derby.Clustering, error) {
	switch s {
	case "class":
		return derby.ClassCluster, nil
	case "random":
		return derby.RandomOrg, nil
	case "composition":
		return derby.CompositionCluster, nil
	default:
		return 0, fmt.Errorf("unknown clustering %q", s)
	}
}
