// Command treebench runs the paper's experiments and prints the reproduced
// tables.
//
// Usage:
//
//	treebench -list
//	treebench -run F12,F15 [-sf 10] [-j 4] [-v] [-hhj] [-csv results.csv] [-gnuplot plots/]
//	treebench -all [-sf 1] [-j 8]
//
// The scale factor divides the paper's database cardinalities and the
// machine's memory sizes (every ratio preserved); -sf 1 reproduces the full
// 2,000×1,000 and 1,000,000×3 databases. Every measured run is also
// recorded in the Figure 3 results database; -csv exports it.
//
// Independent experiments run concurrently on -j workers (default
// min(NumCPU, 8), overridable with TREEBENCH_JOBS). Elapsed time is
// simulated per database, so the tables are byte-identical at any -j;
// only the wall clock changes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"treebench"
	"treebench/internal/bufpool"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		run     = flag.String("run", "", "comma-separated experiment ids to run")
		all     = flag.Bool("all", false, "run every experiment")
		sf      = flag.Int("sf", 0, "scale factor (default from TREEBENCH_SF or 10; 1 = paper scale)")
		jobs    = flag.Int("j", 0, "concurrent experiments (default from TREEBENCH_JOBS or min(NumCPU, 8))")
		qjobs   = flag.Int("qj", 0, "intra-query workers per experiment (default from TREEBENCH_QUERY_JOBS or min(NumCPU, 4); results identical at any setting)")
		batch   = flag.Int("batch", 0, "vectorized-execution batch size (default from TREEBENCH_BATCH or 1024; 1 = scalar operators; results identical at any setting)")
		seed    = flag.Int("seed", 1997, "data generator seed")
		verbose = flag.Bool("v", false, "stream per-run progress")
		hhj     = flag.Bool("hhj", false, "include the hybrid-hash extension in the join experiments")
		ixBack  = flag.String("index-backend", "", "index backend: btree, disk, or lsm (default from TREEBENCH_INDEX_BACKEND or btree; results identical across backends)")
		snapDir = flag.String("snapshot-dir", "", "cache generated databases as snapshots in this directory (default from TREEBENCH_SNAPSHOT_DIR; empty disables)")
		csvPath = flag.String("csv", "", "export the results database as CSV to this file")
		gnuplot = flag.String("gnuplot", "", "write <id>.dat and <id>.gp gnuplot files for each experiment into this directory")
		poolMB  = flag.Int("bufpool-mb", bufpool.CapacityMBFromEnv(bufpool.DefaultCapacityMB), "shared buffer pool size in MB for snapshot-backed runs (also TREEBENCH_BUFPOOL_MB; 0 disables the pool; results identical at any setting)")
		rahead  = flag.Int("readahead", bufpool.ReadaheadFromEnv(bufpool.DefaultReadahead), "buffer-pool readahead window in pages (also TREEBENCH_READAHEAD; 0 disables prefetch; results identical at any setting)")
	)
	flag.Parse()
	bufpool.Setup(*poolMB, *rahead)

	if *list {
		fmt.Println("experiments:")
		for _, e := range treebench.ExperimentList() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := treebench.RunnerConfigFromEnv()
	if *sf > 0 {
		cfg.SF = *sf
	}
	jSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "j" {
			jSet = true
		}
	})
	if jSet {
		if *jobs < 1 {
			fatal(fmt.Errorf("-j %d: must be at least 1", *jobs))
		}
		cfg.Jobs = *jobs
	}
	if *qjobs != 0 {
		if *qjobs < 1 {
			fatal(fmt.Errorf("-qj %d: must be at least 1", *qjobs))
		}
		cfg.QueryJobs = *qjobs
	}
	if *batch != 0 {
		if *batch < 1 {
			fatal(fmt.Errorf("-batch %d: must be at least 1", *batch))
		}
		cfg.Batch = *batch
	}
	if *ixBack != "" {
		cfg.IndexBackend = *ixBack
	}
	if cfg.IndexBackend != "" {
		if err := treebench.CheckIndexBackend(cfg.IndexBackend); err != nil {
			fatal(err)
		}
	}
	cfg.Seed = int32(*seed)
	cfg.EnableHHJ = *hhj
	if *snapDir != "" {
		cfg.SnapshotDir = *snapDir
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}
	runner, err := treebench.NewRunner(cfg)
	if err != nil {
		fatal(err)
	}

	var ids []string
	switch {
	case *all:
		ids = treebench.ExperimentIDs()
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("treebench: scale factor %d (databases %d×1000 and %d×3), seed %d\n\n",
		cfg.SF, 2000/cfg.SF, 1_000_000/cfg.SF, cfg.Seed)
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	// Tables are emitted in the requested order as experiments complete on
	// cfg.Jobs workers; the simulated clocks keep the output identical to a
	// sequential run.
	err = runner.RunMany(ids, cfg.Jobs, func(table *treebench.ResultTable) error {
		table.Format(os.Stdout)
		fmt.Println()
		if *gnuplot == "" {
			return nil
		}
		if err := os.MkdirAll(*gnuplot, 0o755); err != nil {
			return err
		}
		datName := table.ID + ".dat"
		if err := os.WriteFile(filepath.Join(*gnuplot, datName),
			[]byte(table.GnuplotData()), 0o644); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*gnuplot, table.ID+".gp"),
			[]byte(table.GnuplotScript(datName)), 0o644)
	})
	if err != nil {
		fatal(err)
	}
	if *gnuplot != "" {
		fmt.Printf("wrote gnuplot data and scripts to %s (render with: gnuplot %s/<id>.gp)\n", *gnuplot, *gnuplot)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := runner.Stats.ExportCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d measured runs to %s\n", runner.Stats.Len(), *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treebench:", err)
	os.Exit(1)
}
