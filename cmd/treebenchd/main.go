// Command treebenchd is the treebench query daemon: it serves one
// generated Derby database over TCP to concurrent OQL clients, restoring
// the client–server boundary the paper's O2 had (the engine itself stays
// simulated and deterministic).
//
// Usage:
//
//	treebenchd [-addr 127.0.0.1:8629] [-providers 200] [-avg 50]
//	           [-clustering class] [-seed 1997] [-sessions N] [-qj N] [-batch N]
//	           [-index-backend btree|disk|lsm]
//	           [-bufpool-mb N] [-readahead N] [-pprof ADDR]
//	           [-max-concurrent N] [-max-queue 64] [-query-timeout 30s]
//	           [-snapshot-dir DIR] [-save-snapshot] [-shard i/N] [-v]
//	           [-wal DIR] [-compact-every N]
//	           [-wave-reassign N] [-wave-scalar N] [-wave-grow-every N] [-wave-upgrades N]
//
// -wal DIR makes the daemon writable: the database lives in DIR as a base
// snapshot (base.tbsp) plus a write-ahead log (wal), opened as an MVCC
// chain store. Commit frames apply the next update wave and group-commit
// it to the WAL; on boot the daemon replays the WAL tail over the base
// (crash recovery), truncating a torn tail if the last run died
// mid-append. The -wave-* flags set the update-workload knobs and must be
// kept identical across restarts of the same DIR — the wave sequence is a
// pure function of (seed, spec), which is what makes recovery
// byte-identical. -compact-every N folds the chain into a fresh base
// snapshot and truncates the WAL whenever the head runs N commits ahead
// of the base (0 disables compaction).
//
// -sessions, -qj and -batch fall back to the TREEBENCH_JOBS,
// TREEBENCH_QUERY_JOBS and TREEBENCH_BATCH environment variables when left
// at 0; all three change wall-clock speed only, never a reported number.
//
// -index-backend selects the pluggable index structure ("btree", "disk",
// "lsm"), falling back to TREEBENCH_INDEX_BACKEND when left empty; an
// unknown kind is rejected at startup with the valid list. Backends change
// physical layout and page-granular cost accounting, never query results.
//
// -bufpool-mb sizes the process-wide shared buffer pool every session and
// chain store reads snapshot-file pages through (default 256, also
// TREEBENCH_BUFPOOL_MB; 0 disables the pool and falls back to unbounded
// per-snapshot page caching). -readahead sets the pool's asynchronous
// prefetch window in pages for sequential scans (default 32, also
// TREEBENCH_READAHEAD; 0 disables prefetch). Both change real wall clock
// and real RSS only — simulated meters and query tables are byte-identical
// at every setting.
//
// -pprof ADDR serves net/http/pprof on ADDR (e.g. 127.0.0.1:6060) so the
// buffer-pool and readahead hot paths can be profiled under oqlload.
//
// -shard i/N runs the daemon as shard i of an N-shard cluster behind
// cmd/treebench-coord: it still serves plain queries exactly as a
// standalone daemon would, and additionally accepts Scatter requests
// addressed to shard i/N, executing them under the chunk-ownership mask.
// Every shard of a cluster must be started with the same -providers/-avg/
// -clustering/-seed; the coordinator verifies that via the snapshot's
// content-addressed key, which the daemon announces in its handshake.
//
// The daemon obtains the configured database once — loading it from the
// snapshot cache when -snapshot-dir (or TREEBENCH_SNAPSHOT_DIR) has a
// matching entry, generating and caching it otherwise — freezes it into an
// immutable shared snapshot, and forks a private per-connection session
// (caches, meter, handles) from it in O(1) — so N sessions execute truly
// concurrently over one copy of the data; admission control bounds
// executing queries and rejects past the bounded queue. SIGINT/SIGTERM
// drain gracefully: in-flight queries finish and flush before the process
// exits.
//
// A warm boot from the cache performs zero dataset generation: the second
// start of the same configuration is O(catalog), with data pages streamed
// from the snapshot file on first touch. The Stats response reports the
// snapshot's provenance.
//
// Query it with cmd/oqlload, or any internal/client user. Cold queries
// (the default) return byte-identical output to the same statement in
// `oqlsh -e` over the same database configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"treebench"
	"treebench/internal/bufpool"
	"treebench/internal/core"
	"treebench/internal/derby"
	"treebench/internal/persist"
	"treebench/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8629", "listen address")
		providers  = flag.Int("providers", 200, "number of providers")
		avg        = flag.Int("avg", 50, "average patients per provider")
		clustering = flag.String("clustering", "class", "class, random, composition")
		seed       = flag.Int("seed", 1997, "data generator seed")
		sessions   = flag.Int("sessions", 0, "concurrently executing sessions (default from TREEBENCH_JOBS or min(NumCPU, 8))")
		replicas   = flag.Int("replicas", 0, "removed; use -sessions")
		shard      = flag.String("shard", "", "run as shard i/N of a treebench-coord cluster (e.g. -shard 0/3)")
		maxConc    = flag.Int("max-concurrent", 0, "admission limit on executing queries (default sessions)")
		maxQueue   = flag.Int("max-queue", 64, "queries allowed to wait for admission before rejection")
		qjobs      = flag.Int("qj", 0, "intra-query workers per session (default from TREEBENCH_QUERY_JOBS or min(NumCPU, 4); results identical at any setting)")
		batch      = flag.Int("batch", 0, "vectorized-execution batch size per session (default from TREEBENCH_BATCH or 1024; 1 = scalar operators; results identical at any setting)")
		ixBackend  = flag.String("index-backend", "", "index backend: btree, disk, or lsm (default from TREEBENCH_INDEX_BACKEND or btree; results identical across backends)")
		bufpoolMB  = flag.Int("bufpool-mb", bufpool.CapacityMBFromEnv(bufpool.DefaultCapacityMB), "shared buffer pool size in MB (also TREEBENCH_BUFPOOL_MB; 0 disables the pool; results identical at any setting)")
		readahead  = flag.Int("readahead", bufpool.ReadaheadFromEnv(bufpool.DefaultReadahead), "buffer-pool readahead window in pages (also TREEBENCH_READAHEAD; 0 disables prefetch; results identical at any setting)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables)")
		timeout    = flag.Duration("query-timeout", 30*time.Second, "per-query wall-clock budget (queue wait + execution)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight queries")
		snapDir    = flag.String("snapshot-dir", os.Getenv(core.SnapshotDirEnvVar), "snapshot cache directory for instant warm boots (also TREEBENCH_SNAPSHOT_DIR; empty disables)")
		saveSnap   = flag.Bool("save-snapshot", false, "cache the generated snapshot even without -snapshot-dir (uses the default cache directory)")
		walDir     = flag.String("wal", "", "writable mode: directory holding the chain base snapshot and write-ahead log (empty = read-only)")
		compactN   = flag.Int("compact-every", 0, "fold the chain into a fresh base whenever the head is this many commits ahead (0 disables)")
		wReassign  = flag.Int("wave-reassign", derby.DefaultWaveSpec().Reassign, "patient reassignments per update wave")
		wScalar    = flag.Int("wave-scalar", derby.DefaultWaveSpec().Scalar, "scalar overwrites per update wave")
		wGrowEvery = flag.Int("wave-grow-every", derby.DefaultWaveSpec().GrowEvery, "every Nth wave is a schema-growth wave (0 disables growth)")
		wUpgrades  = flag.Int("wave-upgrades", derby.DefaultWaveSpec().Upgrades, "objects re-encoded per schema-growth wave")
		verbose    = flag.Bool("v", false, "log sessions and lifecycle to stderr")
	)
	flag.Parse()
	if *replicas != 0 {
		fatal(fmt.Errorf("-replicas was removed after its deprecation cycle; " +
			"replace it with -sessions (same meaning, same value)"))
	}
	// Configure the shared buffer pool before anything loads a snapshot.
	bufpool.Setup(*bufpoolMB, *readahead)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "treebenchd: pprof: %v\n", err)
			}
		}()
	}

	cl, err := parseClustering(*clustering)
	if err != nil {
		fatal(err)
	}
	cfg := derby.DefaultConfig(*providers, *avg, cl)
	cfg.Seed = int32(*seed)
	kind := *ixBackend
	if kind == "" {
		kind = core.IndexBackendFromEnv("")
	}
	if kind != "" {
		if err := treebench.CheckIndexBackend(kind); err != nil {
			fatal(err)
		}
		cfg.IndexBackend = kind
	}
	label := fmt.Sprintf("%dx%d %s", *providers, (*providers)*(*avg), cl)

	n := *sessions
	if n == 0 {
		n = core.JobsFromEnv(core.DefaultJobs())
	}
	qj := *qjobs
	if qj == 0 {
		qj = core.QueryJobsFromEnv(0)
	}
	b := *batch
	if b == 0 {
		b = core.BatchFromEnv(0)
	}
	scfg := server.Config{
		Label:         label,
		Sessions:      n,
		MaxConcurrent: *maxConc,
		MaxQueue:      *maxQueue,
		QueryJobs:     qj,
		Batch:         b,
		QueryTimeout:  *timeout,
	}
	var store *persist.ChainStore
	if *walDir != "" {
		if *shard != "" {
			fatal(fmt.Errorf("-wal and -shard are mutually exclusive: the write path is single-node"))
		}
		spec := derby.WaveSpec{
			Reassign: *wReassign, Scalar: *wScalar,
			GrowEvery: *wGrowEvery, Upgrades: *wUpgrades,
			Seed: cfg.Seed,
		}
		store, err = openChainStore(cfg, *walDir, spec)
		if err != nil {
			fatal(err)
		}
		scfg.Store = store
		label += " writable"
		scfg.Label = label
	} else {
		scfg.Source = snapshotSource(cfg, *snapDir, *saveSnap)
	}
	if *shard != "" {
		idx, cnt, err := parseShard(*shard)
		if err != nil {
			fatal(err)
		}
		scfg.ShardIdx = idx
		scfg.ShardCnt = cnt
		// The content-addressed snapshot key doubles as the cluster's
		// identity check: the coordinator refuses a shard whose key differs,
		// so mismatched -providers/-avg/-seed across shards fail fast
		// instead of silently merging results over different data.
		scfg.SnapshotKey = persist.KeyFor(cfg)
		label = fmt.Sprintf("%s shard %d/%d", label, idx, cnt)
		scfg.Label = label
	}
	if *verbose {
		scfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "treebenchd: "+format+"\n", args...)
		}
	}
	srv, err := server.New(scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("treebenchd: preparing %s snapshot (%d sessions fork from it)...\n", label, n)
	if err := srv.Warm(); err != nil {
		fatal(err)
	}

	if store != nil && *compactN > 0 {
		go compactor(store, *compactN, *verbose)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	// The listener line comes from the server's log; print a stable ready
	// line on stdout for scripts to wait on.
	fmt.Printf("treebenchd: serving %s on %s\n", label, *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	case sig := <-sigc:
		fmt.Printf("treebenchd: %s, draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Println("treebenchd: drained, bye")
	}
}

// openChainStore opens (or initializes) the writable chain store in dir:
// a base snapshot file plus a write-ahead log, replaying the WAL tail
// over the base on boot. A missing base is generated from cfg and saved
// first — the write-path analogue of the read-only cache's cold boot.
func openChainStore(cfg derby.Config, dir string, spec derby.WaveSpec) (*persist.ChainStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	base := filepath.Join(dir, "base.tbsp")
	if _, err := os.Stat(base); err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		fmt.Printf("treebenchd: initializing chain base %s...\n", base)
		d, err := derby.Generate(cfg)
		if err != nil {
			return nil, err
		}
		sn, err := d.Freeze()
		if err != nil {
			return nil, err
		}
		if err := persist.Save(base, sn); err != nil {
			return nil, err
		}
	}
	store, rec, err := persist.OpenChainStore(base, filepath.Join(dir, "wal"), spec)
	if err != nil {
		return nil, err
	}
	st := store.Stats()
	torn := ""
	if rec.Torn != nil {
		torn = fmt.Sprintf(" (torn tail truncated: %v)", rec.Torn)
	}
	fmt.Printf("treebenchd: wal replayed %d commits, head v%d over base v%d%s\n",
		rec.Records, st.HeadVersion, st.BaseVersion, torn)
	return store, nil
}

// compactor folds the chain into a fresh base whenever the head runs n
// commits ahead, then truncates the WAL — the background compaction that
// keeps recovery time bounded. It polls; compaction timing never affects
// data (the head is a pure function of commit count).
func compactor(store *persist.ChainStore, n int, verbose bool) {
	for range time.Tick(time.Second) {
		st := store.Stats()
		if st.HeadVersion-st.BaseVersion < uint64(n) {
			continue
		}
		v, err := store.Compact()
		if err != nil {
			fmt.Fprintf(os.Stderr, "treebenchd: compaction: %v\n", err)
			return
		}
		if verbose {
			fmt.Fprintf(os.Stderr, "treebenchd: compacted chain into base v%d (%d versions reclaimed)\n", v, store.GC())
		}
	}
}

// snapshotSource builds the server's snapshot source: straight generation
// when caching is off, the content-addressed cache otherwise. With a
// warm cache the daemon boots without generating anything; the returned
// provenance string surfaces in Stats.
func snapshotSource(cfg derby.Config, dir string, save bool) func() (*derby.Snapshot, string, error) {
	if dir == "" && !save {
		return func() (*derby.Snapshot, string, error) {
			d, err := derby.Generate(cfg)
			if err != nil {
				return nil, "", err
			}
			sn, err := d.Freeze()
			if err != nil {
				return nil, "", err
			}
			return sn, "generated", nil
		}
	}
	return func() (*derby.Snapshot, string, error) {
		cache, err := persist.Open(dir) // "" selects the default directory
		if err != nil {
			return nil, "", err
		}
		sn, out, err := cache.GetOrGenerate(cfg)
		if err != nil {
			return nil, "", err
		}
		return sn, fmt.Sprintf("%s (%s)", out.Source, out.Path), nil
	}
}

// parseShard parses the -shard value, "i/N" with 0 <= i < N.
func parseShard(s string) (idx, cnt int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &cnt); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/N, e.g. 0/3", s)
	}
	if cnt < 1 || idx < 0 || idx >= cnt {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", s, cnt)
	}
	return idx, cnt, nil
}

func parseClustering(s string) (derby.Clustering, error) {
	switch s {
	case "class":
		return derby.ClassCluster, nil
	case "random":
		return derby.RandomOrg, nil
	case "composition":
		return derby.CompositionCluster, nil
	default:
		return 0, fmt.Errorf("unknown clustering %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treebenchd:", err)
	os.Exit(1)
}
