package treebench_test

// Runnable, tested documentation examples (go test executes these and
// checks the Output comments; godoc renders them).

import (
	"fmt"

	"treebench"
)

// Example builds a small custom database and runs OQL through the
// cost-based optimizer, the library's basic loop.
func Example() {
	db := treebench.New(treebench.DefaultMachine(), treebench.DefaultCostModel(), treebench.NoTransaction)
	books := treebench.NewClass("Book", []treebench.Attr{
		{Name: "title", Kind: treebench.KindString, StrLen: 16},
		{Name: "year", Kind: treebench.KindInt},
	})
	ext, err := db.CreateExtent("Books", books, "books")
	if err != nil {
		panic(err)
	}
	if _, _, err := db.CreateIndex(ext, "year", true); err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Insert(nil, ext, []treebench.Value{
			treebench.StringValue("book"), treebench.IntValue(int64(1900 + i%120)),
		}); err != nil {
			panic(err)
		}
	}
	planner := treebench.NewPlanner(db, treebench.CostBased)
	db.ColdRestart()
	res, err := planner.Query(`select count(*) from b in Books where b.year >= 2000`)
	if err != nil {
		panic(err)
	}
	fmt.Println("books from 2000 on:", res.Rows)
	// Output: books from 2000 on: 160
}

// ExampleGenerateDerby reproduces one cell of the paper's Figure 11 grid:
// the deterministic generator and simulated clock make the comparison
// exact on every machine.
func ExampleGenerateDerby() {
	d, err := treebench.GenerateDerby(
		treebench.DerbyConfig(50, 100, treebench.ClassCluster))
	if err != nil {
		panic(err)
	}
	env := treebench.DerbyJoinEnv(d)
	q := env.BySelectivity(10, 10)
	for _, algo := range []treebench.Algorithm{treebench.PHJ, treebench.NL} {
		d.DB.ColdRestart()
		res, err := treebench.RunJoin(env, algo, q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d tuples\n", algo, res.Tuples)
	}
	// Output:
	// PHJ: 51 tuples
	// NL: 51 tuples
}

// ExampleParseOQL shows the parser round-tripping the paper's §5 query.
func ExampleParseOQL() {
	q, err := treebench.ParseOQL(`select p.name, pa.age
		from p in Providers, pa in p.clients
		where pa.mrn < 100 and p.upin < 50`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output: select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 50
}
