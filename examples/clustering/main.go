// clustering shows how the three physical organizations of Figure 2 change
// the I/O of the very same logical queries: a simple selection and the
// tree query, each run cold on class-clustered, random, and
// composition-clustered copies of one database.
package main

import (
	"fmt"
	"log"

	"treebench"
)

const (
	providers = 100
	avg       = 100
)

func main() {
	clusterings := []treebench.Clustering{
		treebench.ClassCluster, treebench.RandomOrg, treebench.CompositionCluster,
	}

	fmt.Println("same database, three physical organizations (Figure 2)")
	fmt.Printf("%d providers × %d avg patients\n\n", providers, avg)

	fmt.Println("query 1: select pa.name, pa.age from pa in Patients where pa.mrn < 10% — cost-based plan")
	for _, cl := range clusterings {
		d, err := treebench.GenerateDerby(treebench.DerbyConfig(providers, avg, cl))
		if err != nil {
			log.Fatal(err)
		}
		planner := treebench.NewPlanner(d.DB, treebench.CostBased)
		d.DB.ColdRestart()
		res, err := planner.Query(fmt.Sprintf(
			"select pa.name, pa.age from pa in Patients where pa.mrn < %d", d.NumPatients/10+1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.2fs simulated  %6d pages read  via %s\n",
			cl, res.Elapsed.Seconds(), res.Counters.DiskReads, res.Selection.Access)
	}

	fmt.Println("\nquery 2: the §5 tree query at sel(pat)=10%, sel(prov)=10% — cost-based plan")
	for _, cl := range clusterings {
		d, err := treebench.GenerateDerby(treebench.DerbyConfig(providers, avg, cl))
		if err != nil {
			log.Fatal(err)
		}
		planner := treebench.NewPlanner(d.DB, treebench.CostBased)
		d.DB.ColdRestart()
		res, err := planner.Query(fmt.Sprintf(
			"select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < %d and p.upin < %d",
			d.NumPatients/10+1, d.NumProviders/10+1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.2fs simulated  %6d pages read  via %s\n",
			cl, res.Elapsed.Seconds(), res.Counters.DiskReads, res.Plan.Algorithm)
	}

	fmt.Println(`
the paper's lesson (§5.3): composition clustering makes navigation (NL)
unbeatable on the hierarchy but taxes simple selections, because every page
of selected patients drags unselected neighbours and their provider along;
the class-clustered selection reads the fewest pages.`)
}
