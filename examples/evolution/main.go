// evolution demonstrates the §4.4 feature set whose per-object bookkeeping
// the paper blames for O2's fat Handles: object versioning, dynamic class
// evolution with lazy record upgrades (and the relocation storm an eager
// upgrade causes), and persistence by reachability with index-maintaining
// garbage collection.
package main

import (
	"fmt"
	"log"

	"treebench"
)

func main() {
	db := treebench.New(treebench.DefaultMachine(), treebench.DefaultCostModel(), treebench.NoTransaction)
	cls := treebench.NewClass("Doc", []treebench.Attr{
		{Name: "id", Kind: treebench.KindInt},
		{Name: "revision", Kind: treebench.KindInt},
	})
	docs, err := db.CreateExtent("Docs", cls, "docs")
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.CreateIndex(docs, "revision", false); err != nil {
		log.Fatal(err)
	}
	var first treebench.Rid
	for i := 0; i < 2000; i++ {
		rid, err := db.Insert(nil, docs, []treebench.Value{
			treebench.IntValue(int64(i)), treebench.IntValue(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			first = rid
		}
	}

	// --- Versioning ("a pointer to some structure representing the
	// version to which the object belongs").
	if _, err := db.CreateVersion(nil, docs, first); err != nil {
		log.Fatal(err)
	}
	if err := db.UpdateAttr(nil, docs, first, "revision", treebench.IntValue(2)); err != nil {
		log.Fatal(err)
	}
	versions, err := db.Versions(first)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := db.ReadVersionAttr(docs, versions[0], "revision")
	fmt.Printf("versioning: live revision=2, snapshot v%d still reads revision=%d\n",
		versions[0].Number, v.Int)

	// --- Dynamic class evolution ("some information about the schema
	// update history of the object class").
	if err := db.EvolveClass(docs, treebench.Attr{Name: "wordcount", Kind: treebench.KindInt},
		treebench.IntValue(0)); err != nil {
		log.Fatal(err)
	}
	planner := treebench.NewPlanner(db, treebench.CostBased)
	db.ColdRestart()
	res, err := planner.Query(`select count(*) from d in Docs where d.wordcount = 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolution: %d old records answer the new attribute with its default, unrewritten\n", res.Rows)

	db.Meter.Reset()
	upgraded, relocated, err := db.UpgradeExtent(nil, docs)
	if err != nil {
		log.Fatal(err)
	}
	db.Client.Flush() // push the rewritten pages down, like a commit would
	fmt.Printf("eager upgrade: %d records rewritten, %d relocated, %d pages written (%.2fs simulated) — the §3.2 storm mechanics\n",
		upgraded, relocated, db.Meter.N.DiskWrites, db.Meter.Elapsed().Seconds())

	// --- Persistence by reachability. Root a folder holding the first
	// 1500 docs; the rest become garbage.
	folderCls := treebench.NewClass("Folder", []treebench.Attr{
		{Name: "name", Kind: treebench.KindString, StrLen: 16},
		{Name: "entries", Kind: treebench.KindSet},
	})
	folders, err := db.CreateExtent("Folders", folderCls, "folders")
	if err != nil {
		log.Fatal(err)
	}
	var members []treebench.Rid
	count := 0
	if err := docs.File.Scan(db.Client, func(rid treebench.Rid, rec []byte) (bool, error) {
		if count < 1500 {
			members = append(members, rid)
			count++
		}
		return count < 1500, nil
	}); err != nil {
		log.Fatal(err)
	}
	head, err := treebench.CreateCollection(db.Client, folders.File, members)
	if err != nil {
		log.Fatal(err)
	}
	folderRid, err := db.Insert(nil, folders, []treebench.Value{
		treebench.StringValue("kept"), treebench.SetValue(head),
	})
	if err != nil {
		log.Fatal(err)
	}
	db.SetRoot("archive", folderRid)
	rep, err := db.CollectGarbage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachability GC: %d reachable, %d collected, %d index entries removed via the objects' header membership lists\n",
		rep.Reachable, rep.Collected, rep.IndexEntriesRemoved)
	fmt.Printf("extent now holds %d docs; the revision index stayed consistent\n", docs.Count)
}
