// joinstrategies runs the paper's §5 tree query with all four evaluation
// strategies (plus the hybrid-hash extension) on both Derby databases and
// prints a Figure 11/12-style comparison — the headline experiment of the
// reproduction, in miniature.
package main

import (
	"fmt"
	"log"
	"sort"

	"treebench"
)

func main() {
	configs := []struct {
		label     string
		providers int
		avg       int
	}{
		{"1:1000 (few big parents)", 50, 1000},
		{"1:3 (many small parents)", 20000, 3},
	}
	selectivities := [][2]int{{10, 10}, {10, 90}, {90, 10}, {90, 90}}
	algorithms := []treebench.Algorithm{
		treebench.PHJ, treebench.CHJ, treebench.NOJOIN, treebench.NL,
		treebench.HHJ, treebench.SMJ, treebench.VNOJOIN,
	}

	for _, cfg := range configs {
		fmt.Printf("\n=== %s: %d providers × %d avg patients, class clustering ===\n",
			cfg.label, cfg.providers, cfg.avg)
		d, err := treebench.GenerateDerby(
			treebench.DerbyConfig(cfg.providers, cfg.avg, treebench.ClassCluster))
		if err != nil {
			log.Fatal(err)
		}
		// Shrink the hash budget with the data so tables can outgrow it,
		// as the paper's 1:3 tables outgrew the Sparc 20 (the harness in
		// internal/core does this scaling for the real experiments).
		d.DB.Machine.HashBudget /= 40

		env := treebench.DerbyJoinEnv(d)
		for _, sel := range selectivities {
			q := env.BySelectivity(sel[0], sel[1])
			type row struct {
				algo    treebench.Algorithm
				seconds float64
				note    string
			}
			var rows []row
			for _, algo := range algorithms {
				d.DB.ColdRestart()
				res, err := treebench.RunJoin(env, algo, q)
				if err != nil {
					log.Fatal(err)
				}
				note := ""
				if res.Swapped {
					note = fmt.Sprintf("table %.1fMB swaps", float64(res.HashTableBytes)/(1<<20))
				}
				if res.SpillPartitions > 1 {
					note = fmt.Sprintf("%d spill partitions", res.SpillPartitions)
				}
				rows = append(rows, row{algo, res.Elapsed.Seconds(), note})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].seconds < rows[j].seconds })
			fmt.Printf("\n  sel(patients)=%d%% sel(providers)=%d%%\n", sel[0], sel[1])
			for _, r := range rows {
				fmt.Printf("    %-7s %8.2fs  (%.2fx)  %s\n",
					r.algo, r.seconds, r.seconds/rows[0].seconds, r.note)
			}
		}
	}
	fmt.Println("\npaper's shape: hash joins win under class clustering; NOJOIN stays competitive")
	fmt.Println("when parents are few; swapped tables hand the win to navigation; HHJ (the")
	fmt.Println("extension the paper calls for) dodges the swap with sequential spills;")
	fmt.Println("SMJ shows why sorting was dropped; VNOJOIN shows why physical ids won.")
}
