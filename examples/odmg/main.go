// odmg demonstrates the ODMG model features the paper credits (and debits)
// O2 for: class inheritance with polymorphic extents, declared 1-n
// relationships whose two sides the engine maintains together, and
// reference-keyed indexes — wrapped up in a hospital that actually runs
// the §4.4 retire-a-doctor update correctly.
package main

import (
	"fmt"
	"log"

	"treebench"
)

func main() {
	db := treebench.New(treebench.DefaultMachine(), treebench.DefaultCostModel(), treebench.NoTransaction)

	// Inheritance: specialists are doctors.
	doctor := treebench.NewClass("Doctor", []treebench.Attr{
		{Name: "id", Kind: treebench.KindInt},
		{Name: "patients", Kind: treebench.KindSet},
	})
	specialist, err := treebench.NewSubclass("Specialist", doctor, []treebench.Attr{
		{Name: "field", Kind: treebench.KindString, StrLen: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	patient := treebench.NewClass("Patient", []treebench.Attr{
		{Name: "id", Kind: treebench.KindInt},
		{Name: "doctor", Kind: treebench.KindRef},
	})

	doctors, err := db.CreateExtent("Doctors", doctor, "doctors")
	if err != nil {
		log.Fatal(err)
	}
	patients, err := db.CreateExtent("Patients", patient, "patients")
	if err != nil {
		log.Fatal(err)
	}
	// Reference-keyed index: patients by their doctor (§4.4's example).
	if _, _, err := db.CreateIndex(patients, "doctor", false); err != nil {
		log.Fatal(err)
	}
	// The declared relationship keeps both sides consistent.
	rel, err := db.DefineRelationship(doctors, "patients", patients, "doctor")
	if err != nil {
		log.Fatal(err)
	}

	// A polymorphic ward: plain doctors and specialists in one extent.
	var docRids []treebench.Rid
	for i := 0; i < 4; i++ {
		var rid treebench.Rid
		if i%2 == 0 {
			rid, err = db.Insert(nil, doctors, []treebench.Value{
				treebench.IntValue(int64(i)), treebench.SetValue(treebench.NilRid),
			})
		} else {
			rid, err = db.InsertAs(nil, doctors, specialist, []treebench.Value{
				treebench.IntValue(int64(i)), treebench.SetValue(treebench.NilRid),
				treebench.StringValue("cardiology"),
			})
		}
		if err != nil {
			log.Fatal(err)
		}
		docRids = append(docRids, rid)
	}
	var patRids []treebench.Rid
	for i := 0; i < 200; i++ {
		rid, err := db.Insert(nil, patients, []treebench.Value{
			treebench.IntValue(int64(i)), treebench.RefValue(treebench.NilRid),
		})
		if err != nil {
			log.Fatal(err)
		}
		patRids = append(patRids, rid)
		// One SetParent maintains the reference, the doctor's set, and
		// the reference index together.
		if err := rel.SetParent(db, nil, rid, docRids[i%4]); err != nil {
			log.Fatal(err)
		}
	}
	if err := rel.VerifyConsistency(db); err != nil {
		log.Fatal(err)
	}
	fmt.Println("populated: 4 doctors (2 specialists) sharing one polymorphic extent, 200 patients")
	for i, d := range docRids {
		kids, _ := rel.Children(db, d)
		fmt.Printf("  doctor %d: %d patients\n", i, len(kids))
	}

	// The §4.4 update, done right: doctor 0 retires; every patient moves
	// to doctor 1 with sets, references and the index maintained.
	db.Meter.Reset()
	kids, err := rel.Children(db, docRids[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range kids {
		if err := rel.SetParent(db, nil, k, docRids[1]); err != nil {
			log.Fatal(err)
		}
	}
	if err := rel.VerifyConsistency(db); err != nil {
		log.Fatal(err)
	}
	after0, _ := rel.Children(db, docRids[0])
	after1, _ := rel.Children(db, docRids[1])
	fmt.Printf("\ndoctor 0 retires: %d patients transferred in %.3fs simulated\n",
		len(kids), db.Meter.Elapsed().Seconds())
	fmt.Printf("  doctor 0 now has %d patients, doctor 1 has %d; relationship verified consistent\n",
		len(after0), len(after1))

	// The reference index answers "who sees doctor 1" without a scan.
	ix := db.IndexOn("Patients", "doctor")
	rids, err := ix.Backend.Lookup(db.Client, treebench.RefIndexKey(docRids[1]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ref-index lookup for doctor 1: %d patients\n", len(rids))
}
