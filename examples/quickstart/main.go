// Quickstart: define a schema, load objects, create an index, and run OQL
// — all against the simulated engine, so the reported times are the
// deterministic simulated costs, not wall-clock.
package main

import (
	"fmt"
	"log"

	"treebench"
)

func main() {
	// A database on the paper's tuned Sparc 20 model, loading without
	// transactions (the §3.2 bulk-load mode).
	db := treebench.New(treebench.DefaultMachine(), treebench.DefaultCostModel(), treebench.NoTransaction)

	// A small schema: one class of books.
	books := treebench.NewClass("Book", []treebench.Attr{
		{Name: "title", Kind: treebench.KindString, StrLen: 16},
		{Name: "year", Kind: treebench.KindInt},
		{Name: "pages", Kind: treebench.KindInt},
	})
	ext, err := db.CreateExtent("Books", books, "books")
	if err != nil {
		log.Fatal(err)
	}

	// Index first, then load: objects are born with header slots, so no
	// §3.2 relocation storm.
	if _, _, err := db.CreateIndex(ext, "year", true); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		_, err := db.Insert(nil, ext, []treebench.Value{
			treebench.StringValue(fmt.Sprintf("book-%04d", i)),
			treebench.IntValue(int64(1900 + i%126)),
			treebench.IntValue(int64(100 + i%400)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d books into %d pages (%.2fs simulated)\n",
		ext.Count, ext.File.NumPages(), db.Meter.Elapsed().Seconds())

	// Query it cold, the paper's methodology.
	planner := treebench.NewPlanner(db, treebench.CostBased)
	db.ColdRestart()
	res, err := planner.Query(`select b.title, b.pages from b in Books where b.year >= 1990 and b.year < 2000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Plan.Explain())
	fmt.Printf("%d books from the 90s in %.3fs simulated (%d pages read)\n",
		res.Rows, res.Elapsed.Seconds(), res.Counters.DiskReads)

	// Freeze the built database into an immutable snapshot, then fork
	// per-session execution state (caches, meter, handles) from it in
	// O(1): concurrent sessions share one page image, and a fresh fork's
	// cold numbers match the builder's exactly.
	snap, err := db.Freeze()
	if err != nil {
		log.Fatal(err)
	}
	// A fresh fork is semantically a ColdRestart of the builder (the
	// builder's very first run also paid the one-time ANALYZE scan that
	// built the index histogram, which the snapshot now carries), so the
	// reference numbers come from a cold rerun.
	db.ColdRestart()
	ref, err := planner.Query(`select b.title, b.pages from b in Books where b.year >= 1990 and b.year < 2000`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sess := snap.Fork()
		forked, err := treebench.NewPlanner(sess, treebench.CostBased).
			Query(`select b.title, b.pages from b in Books where b.year >= 1990 and b.year < 2000`)
		if err != nil {
			log.Fatal(err)
		}
		if forked.Elapsed != ref.Elapsed || forked.Counters != ref.Counters {
			log.Fatalf("fork %d diverged from the builder: %v vs %v", i, forked.Elapsed, ref.Elapsed)
		}
	}
	fmt.Printf("3 sessions forked from one %d-page snapshot, each byte-identical to the builder\n",
		snap.Pages())
}
