// resultsdb demonstrates §3.3's advice — "Large Benchmark Equals Many
// Numbers: Why Not Use a Database?" — using the reproduction's own engine
// as the results store: run a few measured experiments, record them in the
// Figure 3 schema, query them back in OQL, and export CSV for plotting.
package main

import (
	"fmt"
	"log"
	"os"

	"treebench"
)

func main() {
	// A small Derby database to measure.
	d, err := treebench.GenerateDerby(treebench.DerbyConfig(100, 50, treebench.ClassCluster))
	if err != nil {
		log.Fatal(err)
	}
	env := treebench.DerbyJoinEnv(d)

	// The results database, itself running on the engine (Figure 3).
	results, err := treebench.OpenStats()
	if err != nil {
		log.Fatal(err)
	}

	for _, sel := range [][2]int{{10, 10}, {90, 90}} {
		for _, algo := range []treebench.Algorithm{treebench.PHJ, treebench.CHJ, treebench.NOJOIN, treebench.NL} {
			d.DB.ColdRestart()
			res, err := treebench.RunJoin(env, algo, env.BySelectivity(sel[0], sel[1]))
			if err != nil {
				log.Fatal(err)
			}
			entry := treebench.StatEntry{
				Cold:            true,
				ProjectionType:  "attributes",
				Selectivity:     sel[0],
				Text:            "select p.name, pa.age from p in Providers, pa in p.clients where ...",
				Database:        "100x50",
				Cluster:         "class",
				Algo:            string(algo),
				ServerCacheSize: d.DB.Machine.ServerCache,
				ClientCacheSize: d.DB.Machine.ClientCache,
				SameWorkstation: true,
			}
			entry.FromCounters(res.Elapsed, res.Counters)
			if _, err := results.Record(entry); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("recorded %d measurements in the Figure 3 results database\n\n", results.Len())

	// "a query language can be used to extract the information you are
	// looking for" — OQL over the results themselves.
	results.Engine.ColdRestart()
	q := `select s.ElapsedTimeMs from s in Stats where s.ElapsedTimeMs > 10000`
	res, err := results.OQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OQL  %s\n  → %d runs took over 10 simulated seconds\n\n", q, res.Rows)

	// Every entry, decoded back through the engine.
	all, err := results.All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("test  algo     sel%  elapsed   pages  cc-miss%")
	for _, e := range all {
		fmt.Printf("%4d  %-7s  %3d  %7.2fs  %6d  %7d\n",
			e.NumTest, e.Algo, e.Selectivity, e.Elapsed.Seconds(), e.D2SCReadPages, e.CCMissRate)
	}

	// CSV for gnuplot, as the authors converted via YAT.
	fmt.Println("\nCSV export:")
	if err := results.ExportCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
