// sessions demonstrates the shared-snapshot architecture: one Derby
// database is generated and frozen once, then many concurrent sessions
// fork from the snapshot — each with private caches, meter and handle
// table over the same physical pages — and a copy-on-write fork takes
// updates without disturbing anybody. This is how treebenchd serves N
// clients for the price of one database copy.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"treebench"
)

func main() {
	// Generate once. This is the only time the data is built or stored.
	d, err := treebench.GenerateDerby(
		treebench.DerbyConfig(200, 50, treebench.ClassCluster))
	if err != nil {
		log.Fatal(err)
	}
	snap, err := treebench.FreezeDerby(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frozen snapshot: %d pages (%.1f MiB) shared by every session\n",
		snap.Engine.Pages(), float64(snap.Engine.Bytes())/(1<<20))

	// Fork 8 concurrent read-only sessions. Each runs the paper's tree
	// query on its own cold caches; the simulated numbers must agree
	// exactly, because sessions share pages but never state.
	const sessions = 8
	query := `select p.name, pa.age from p in Providers, pa in p.clients
		where pa.mrn < 1000 and p.upin < 21`
	elapsed := make([]time.Duration, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fork := snap.Fork() // O(catalog): microseconds, not a rebuild
			planner := treebench.NewPlanner(fork.DB, treebench.CostBased)
			res, err := planner.Query(query)
			if err != nil {
				log.Fatal(err)
			}
			elapsed[i] = res.Elapsed
		}(i)
	}
	wg.Wait()
	for i := 1; i < sessions; i++ {
		if elapsed[i] != elapsed[0] {
			log.Fatalf("session %d saw %v, session 0 saw %v — state bled between forks",
				i, elapsed[i], elapsed[0])
		}
	}
	fmt.Printf("%d concurrent sessions, every one measured %.2fs simulated — identical\n",
		sessions, elapsed[0].Seconds())

	// A mutable fork takes writes through a private copy-on-write overlay:
	// the update below never reaches the snapshot or the other sessions.
	mut := snap.ForkMutable()
	if err := mut.DB.UpdateAttr(nil, mut.Patients, mut.PatientRids[0],
		"age", treebench.IntValue(99)); err != nil {
		log.Fatal(err)
	}
	check := snap.Fork()
	h, err := check.DB.Handles.Get(check.PatientRids[0])
	if err != nil {
		log.Fatal(err)
	}
	v, err := check.DB.Handles.AttrByName(h, "age")
	if err != nil {
		log.Fatal(err)
	}
	if v.Int == 99 {
		log.Fatal("copy-on-write leaked into the shared snapshot")
	}
	fmt.Println("copy-on-write fork updated a patient privately; the snapshot is untouched")
}
