// xmltree exercises the paper's opening motivation — "Hierarchical and
// graph structures are very popular nowadays, thanks to XML" — on a schema
// of its own: documents over sections, queried both ways the intro names:
// by navigation ("access the title of the first section of a given
// document") and associatively ("find the titles of a large collection of
// documents"). The generic tree-query machinery runs unchanged on this
// non-Derby hierarchy.
package main

import (
	"fmt"
	"log"

	"treebench"
)

const (
	numDocs        = 2000
	avgSectionsPer = 8
)

func main() {
	db := treebench.New(treebench.DefaultMachine(), treebench.DefaultCostModel(), treebench.NoTransaction)

	document := treebench.NewClass("Document", []treebench.Attr{
		{Name: "title", Kind: treebench.KindString, StrLen: 16},
		{Name: "docid", Kind: treebench.KindInt},
		{Name: "sections", Kind: treebench.KindSet},
	})
	section := treebench.NewClass("Section", []treebench.Attr{
		{Name: "heading", Kind: treebench.KindString, StrLen: 16},
		{Name: "secid", Kind: treebench.KindInt},
		{Name: "words", Kind: treebench.KindInt},
		{Name: "doc", Kind: treebench.KindRef},
	})
	docs, err := db.CreateExtent("Documents", document, "documents")
	if err != nil {
		log.Fatal(err)
	}
	secs, err := db.CreateExtent("Sections", section, "sections")
	if err != nil {
		log.Fatal(err)
	}
	// Indexes first (the §3.2 lesson), then load.
	if _, _, err := db.CreateIndex(docs, "docid", true); err != nil {
		log.Fatal(err)
	}
	if _, _, err := db.CreateIndex(secs, "secid", true); err != nil {
		log.Fatal(err)
	}
	rel, err := db.DefineRelationship(docs, "sections", secs, "doc")
	if err != nil {
		log.Fatal(err)
	}

	secID := 1
	var firstDoc treebench.Rid
	for d := 0; d < numDocs; d++ {
		docRid, err := db.Insert(nil, docs, []treebench.Value{
			treebench.StringValue(fmt.Sprintf("doc-%05d", d)),
			treebench.IntValue(int64(d + 1)),
			treebench.SetValue(treebench.NilRid),
		})
		if err != nil {
			log.Fatal(err)
		}
		if d == 0 {
			firstDoc = docRid
		}
		n := 1 + (d*7)%((avgSectionsPer-1)*2) // 1..14, mean ≈ 8
		for s := 0; s < n; s++ {
			secRid, err := db.Insert(nil, secs, []treebench.Value{
				treebench.StringValue(fmt.Sprintf("sec-%d.%d", d, s)),
				treebench.IntValue(int64(secID)),
				treebench.IntValue(int64((secID * 37) % 2000)),
				treebench.RefValue(treebench.NilRid),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := rel.SetParent(db, nil, secRid, docRid); err != nil {
				log.Fatal(err)
			}
			secID++
		}
	}
	fmt.Printf("loaded %d documents with %d sections (%.2fs simulated)\n",
		docs.Count, secs.Count, db.Meter.Elapsed().Seconds())

	// Navigation, the intro's first access pattern: the first section of
	// one given document. One object, two page accesses.
	db.ColdRestart()
	kids, err := rel.Children(db, firstDoc)
	if err != nil || len(kids) == 0 {
		log.Fatal("no sections: ", err)
	}
	h, err := db.Handles.Get(kids[0])
	if err != nil {
		log.Fatal(err)
	}
	heading, _ := db.Handles.AttrByName(h, "heading")
	db.Handles.Unref(h)
	fmt.Printf("\nnavigation: first section of doc 0 is %s (%.3fs simulated, %d pages)\n",
		heading, db.Meter.Elapsed().Seconds(), db.Meter.N.DiskReads)

	// Associative, the intro's second pattern: a large query over the
	// whole hierarchy, planned by the cost-based optimizer.
	planner := treebench.NewPlanner(db, treebench.CostBased)
	db.ColdRestart()
	res, err := planner.Query(fmt.Sprintf(
		`select d.title, s.heading from d in Documents, s in d.sections where s.secid < %d and d.docid < %d`,
		secs.Count/2, docs.Count/2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassociative: %s\n%d (document, section) pairs in %.2fs simulated\n",
		res.Plan.Explain(), res.Rows, res.Elapsed.Seconds())

	// The same query on each §5.1 algorithm, by hand.
	env := &treebench.JoinEnv{
		DB: db, Parent: docs, Child: secs,
		SetAttr: "sections", ParentRefAttr: "doc",
		ParentKeyAttr: "docid", ChildKeyAttr: "secid",
		ParentProj: "title", ChildProj: "heading",
		NumParents: docs.Count, NumChildren: secs.Count,
	}
	fmt.Println("\nall strategies, sel(sections)=50% sel(documents)=50%:")
	for _, algo := range []treebench.Algorithm{treebench.PHJ, treebench.CHJ, treebench.NOJOIN, treebench.NL} {
		db.ColdRestart()
		jr, err := treebench.RunJoin(env, algo, env.BySelectivity(50, 50))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %7.2fs simulated, %d pairs\n", algo, jr.Elapsed.Seconds(), jr.Tuples)
	}
}
