package treebench_test

// Runtime smoke tests for the example programs, guarded behind an
// environment variable because each example builds and runs a real
// workload (`TREEBENCH_EXAMPLES=1 go test -run TestExamples .`).

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if os.Getenv("TREEBENCH_EXAMPLES") == "" {
		t.Skip("set TREEBENCH_EXAMPLES=1 to execute every example program")
	}
	cases := map[string]string{
		"./examples/quickstart":     "forked from one",
		"./examples/sessions":       "identical",
		"./examples/clustering":     "composition",
		"./examples/resultsdb":      "recorded 8 measurements",
		"./examples/evolution":      "reachability GC",
		"./examples/odmg":           "relationship verified consistent",
		"./examples/xmltree":        "associative",
		"./examples/joinstrategies": "spill partitions",
	}
	for dir, want := range cases {
		dir, want := dir, want
		t.Run(strings.TrimPrefix(dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("%s output missing %q:\n%s", dir, want, out)
			}
		})
	}
}
