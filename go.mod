module treebench

go 1.22
