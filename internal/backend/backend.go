// Package backend registers the pluggable index implementations behind
// the index.Backend interface: the in-memory B+-tree (the meter oracle
// every other backend must match table-for-table), a paged on-disk
// B+-tree whose metadata page participates in .tbsp persistence, and an
// LSM-tree with a memtable, bloom-filtered SSTables and deterministic
// size-tiered compaction.
//
// All three deliver entries in the same ascending (key, rid) order, so
// query tables are byte-identical across backends; what differs — and
// what the B1 ablation measures — is the page-granular cost each charges
// through the pager it is handed.
package backend

import (
	"fmt"
	"strings"

	"treebench/internal/index"
	"treebench/internal/storage"
)

// The registered backend kinds. KindBTree is the default and the
// pre-refactor oracle: its adapter delegates to index.Tree without
// adding a single charge.
const (
	KindBTree = "btree"
	KindDisk  = "disk"
	KindLSM   = "lsm"

	DefaultKind = KindBTree
)

// Kinds returns the registered backend names in presentation order.
func Kinds() []string { return []string{KindBTree, KindDisk, KindLSM} }

// Normalize maps the zero value to the default kind; every entry point
// (engine, persist cache key, CLI flags) funnels through it so "" and
// "btree" name the same dataset.
func Normalize(kind string) string {
	if kind == "" {
		return DefaultKind
	}
	return kind
}

// Valid reports whether kind names a registered backend ("" counts as
// the default).
func Valid(kind string) bool {
	switch Normalize(kind) {
	case KindBTree, KindDisk, KindLSM:
		return true
	}
	return false
}

// ErrUnknownKind is wrapped by every unknown-backend failure so CLIs can
// exit with the hint listing valid names.
var ErrUnknownKind = fmt.Errorf("backend: unknown index backend")

func unknownKind(kind string) error {
	return fmt.Errorf("%w %q (valid: %s)", ErrUnknownKind, kind, strings.Join(Kinds(), ", "))
}

// CheckKind validates a user-supplied backend name, returning the
// hint-bearing error CLIs print before exiting.
func CheckKind(kind string) error {
	if !Valid(kind) {
		return unknownKind(kind)
	}
	return nil
}

// New creates an empty index of the given kind over p.
func New(kind string, p storage.Pager, id uint32, name string) (index.Backend, error) {
	switch Normalize(kind) {
	case KindBTree:
		return newBTree(p, id, name)
	case KindDisk:
		return newDisk(p, id, name)
	case KindLSM:
		return newLSM(id, name), nil
	}
	return nil, unknownKind(kind)
}

// Build bulk-loads an index of the given kind from entries (not
// necessarily sorted).
func Build(kind string, p storage.Pager, id uint32, name string, entries []index.Entry) (index.Backend, error) {
	switch Normalize(kind) {
	case KindBTree:
		return buildBTree(p, id, name, entries)
	case KindDisk:
		return buildDisk(p, id, name, entries)
	case KindLSM:
		return buildLSM(p, id, name, entries)
	}
	return nil, unknownKind(kind)
}

// Restore rebuilds a backend from its serialized state over an existing
// page image of numPages pages. The state may come from an untrusted
// snapshot file: structural impossibilities fail with an error, never a
// panic.
func Restore(st index.BackendState, numPages int) (index.Backend, error) {
	switch Normalize(st.Kind) {
	case KindBTree:
		return restoreBTree(st, numPages)
	case KindDisk:
		return restoreDisk(st, numPages)
	case KindLSM:
		return restoreLSM(st, numPages)
	}
	return nil, unknownKind(st.Kind)
}
