package backend

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"treebench/internal/index"
	"treebench/internal/storage"
)

func ridFor(i int) storage.Rid {
	return storage.Rid{Page: storage.PageID(i / 50), Slot: uint16(i % 50)}
}

func collect(t *testing.T, b index.Backend, p storage.Pager, lo, hi int64) []index.Entry {
	t.Helper()
	var out []index.Entry
	if err := b.Scan(p, lo, hi, func(e index.Entry) (bool, error) {
		out = append(out, e)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func collectBatched(t *testing.T, b index.Backend, p storage.Pager, lo, hi int64, cap int) []index.Entry {
	t.Helper()
	var out []index.Entry
	if err := b.ScanBatched(p, lo, hi, cap, func(batch []index.Entry) (bool, error) {
		out = append(out, batch...)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBackendsMatchOracle drives every backend through the same random
// build + insert + delete history and requires identical answers from
// scans (scalar and batched, full and ranged) and lookups. The in-memory
// B+-tree is the oracle: the other two must match it entry for entry.
func TestBackendsMatchOracle(t *testing.T) {
	for _, seed := range []int64{1, 7, 1997} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type inst struct {
				kind string
				p    storage.Pager
				b    index.Backend
			}
			rng := rand.New(rand.NewSource(seed))
			n := 2000 + rng.Intn(2000)
			built := make([]index.Entry, n)
			for i := range built {
				built[i] = index.Entry{Key: int64(rng.Intn(500)), Rid: ridFor(i)}
			}
			var insts []*inst
			for _, kind := range Kinds() {
				s := storage.NewStore(0)
				b, err := Build(kind, s.Disk, 1, "num", built)
				if err != nil {
					t.Fatalf("%s: build: %v", kind, err)
				}
				insts = append(insts, &inst{kind: kind, p: s.Disk, b: b})
			}
			// A mixed mutation history: inserts of fresh and duplicate keys,
			// deletes of live entries and of entries that never existed.
			for i := 0; i < 1500; i++ {
				k := int64(rng.Intn(600))
				switch rng.Intn(3) {
				case 0, 1:
					e := index.Entry{Key: k, Rid: ridFor(100000 + i)}
					for _, in := range insts {
						if err := in.b.Insert(in.p, e); err != nil {
							t.Fatalf("%s: insert %d: %v", in.kind, i, err)
						}
					}
				case 2:
					e := index.Entry{Key: k, Rid: ridFor(rng.Intn(n))}
					var want bool
					for j, in := range insts {
						ok, err := in.b.Delete(in.p, e)
						if err != nil {
							t.Fatalf("%s: delete %d: %v", in.kind, i, err)
						}
						if j == 0 {
							want = ok
						} else if ok != want {
							t.Fatalf("%s: delete %d = %v, oracle says %v", in.kind, i, ok, want)
						}
					}
				}
			}
			oracle := insts[0]
			wantFull := collect(t, oracle.b, oracle.p, -1<<62, 1<<62)
			for _, in := range insts[1:] {
				if err := in.b.Validate(in.p); err != nil {
					t.Fatalf("%s: validate: %v", in.kind, err)
				}
				if in.b.Len() != oracle.b.Len() {
					t.Fatalf("%s: Len = %d, oracle %d", in.kind, in.b.Len(), oracle.b.Len())
				}
				if got := collect(t, in.b, in.p, -1<<62, 1<<62); !reflect.DeepEqual(got, wantFull) {
					t.Fatalf("%s: full scan disagrees with oracle (%d vs %d entries)",
						in.kind, len(got), len(wantFull))
				}
				for _, r := range [][2]int64{{0, 50}, {100, 101}, {250, 600}, {700, 900}} {
					want := collect(t, oracle.b, oracle.p, r[0], r[1])
					if got := collect(t, in.b, in.p, r[0], r[1]); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: range [%d,%d) disagrees with oracle", in.kind, r[0], r[1])
					}
					for _, cap := range []int{1, 7, 1024} {
						if got := collectBatched(t, in.b, in.p, r[0], r[1], cap); !reflect.DeepEqual(got, want) {
							t.Fatalf("%s: batched range [%d,%d) cap %d disagrees", in.kind, r[0], r[1], cap)
						}
					}
				}
				for k := int64(0); k < 600; k += 13 {
					want, err := oracle.b.Lookup(oracle.p, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := in.b.Lookup(in.p, k)
					if err != nil {
						t.Fatalf("%s: lookup %d: %v", in.kind, k, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: Lookup(%d) = %d rids, oracle %d", in.kind, k, len(got), len(want))
					}
				}
				wantMin, okMin, _ := oracle.b.MinKey(oracle.p)
				gotMin, gokMin, err := in.b.MinKey(in.p)
				if err != nil || gotMin != wantMin || gokMin != okMin {
					t.Fatalf("%s: MinKey = (%d,%v,%v), oracle (%d,%v)", in.kind, gotMin, gokMin, err, wantMin, okMin)
				}
				wantMax, okMax, _ := oracle.b.MaxKey(oracle.p)
				gotMax, gokMax, err := in.b.MaxKey(in.p)
				if err != nil || gotMax != wantMax || gokMax != okMax {
					t.Fatalf("%s: MaxKey = (%d,%v,%v), oracle (%d,%v)", in.kind, gotMax, gokMax, err, wantMax, okMax)
				}
			}
		})
	}
}

// TestScanEarlyStop pins the half-open range contract and the early-stop
// protocol on every backend.
func TestScanEarlyStop(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			s := storage.NewStore(0)
			entries := make([]index.Entry, 3000)
			for i := range entries {
				entries[i] = index.Entry{Key: int64(i), Rid: ridFor(i)}
			}
			b, err := Build(kind, s.Disk, 1, "num", entries)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			if err := b.Scan(s.Disk, 0, 3000, func(index.Entry) (bool, error) {
				count++
				return count < 10, nil
			}); err != nil {
				t.Fatal(err)
			}
			if count != 10 {
				t.Fatalf("early stop at %d", count)
			}
			if got := collect(t, b, s.Disk, 500, 500); len(got) != 0 {
				t.Fatal("empty range returned entries")
			}
			if got := collect(t, b, s.Disk, 100, 200); len(got) != 100 || got[0].Key != 100 || got[99].Key != 199 {
				t.Fatalf("range [100,200): %d entries", len(got))
			}
		})
	}
}

// TestCloneIsolation: a clone over a copy-on-write fork of the page
// image (exactly how the engine forks a snapshot into a mutable session)
// must see the original's entries, and mutations on it must not leak
// back to a read-only fork of the same frozen base.
func TestCloneIsolation(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			s := storage.NewStore(0)
			entries := make([]index.Entry, 500)
			for i := range entries {
				entries[i] = index.Entry{Key: int64(i), Rid: ridFor(i)}
			}
			b, err := Build(kind, s.Disk, 1, "num", entries)
			if err != nil {
				t.Fatal(err)
			}
			base, err := s.Disk.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			ro, mw := base.Fork(), base.ForkMutable()
			before := collect(t, b, ro, -1<<62, 1<<62)
			cl := b.Clone()
			if cl.Len() != b.Len() {
				t.Fatalf("clone Len = %d, want %d", cl.Len(), b.Len())
			}
			if got := collect(t, cl, mw, -1<<62, 1<<62); !reflect.DeepEqual(got, before) {
				t.Fatal("clone scan differs from original")
			}
			// Mutate the clone through the COW fork; the original, read
			// through the read-only fork, must be unaffected.
			for i := 0; i < 100; i++ {
				if err := cl.Insert(mw, index.Entry{Key: 1000 + int64(i), Rid: ridFor(9000 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := cl.Delete(mw, index.Entry{Key: 3, Rid: ridFor(3)}); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, b, ro, -1<<62, 1<<62); !reflect.DeepEqual(got, before) {
				t.Fatalf("%s: mutating a clone changed the original", kind)
			}
			// Counters are private per clone.
			if c := cl.Counters(); c == (index.BackendCounters{}) && kind == KindLSM {
				t.Fatal("clone mutations recorded no counters")
			}
		})
	}
}

// TestRestoreRoundTrip pins State → Restore: the restored backend over
// the same page image must answer exactly like the one that was saved,
// including LSM memtable records and tombstones that have not flushed.
func TestRestoreRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			s := storage.NewStore(0)
			entries := make([]index.Entry, 4000)
			for i := range entries {
				entries[i] = index.Entry{Key: int64(i % 700), Rid: ridFor(i)}
			}
			b, err := Build(kind, s.Disk, 1, "num", entries)
			if err != nil {
				t.Fatal(err)
			}
			// Leave unflushed state behind: inserts and a few tombstones.
			for i := 0; i < 300; i++ {
				if err := b.Insert(s.Disk, index.Entry{Key: int64(i), Rid: ridFor(50000 + i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				if _, err := b.Delete(s.Disk, index.Entry{Key: int64(i % 700), Rid: ridFor(i)}); err != nil {
					t.Fatal(err)
				}
			}
			want := collect(t, b, s.Disk, -1<<62, 1<<62)

			st := b.State()
			if st.Kind != Normalize(kind) {
				t.Fatalf("State kind = %q", st.Kind)
			}
			re, err := Restore(st, s.Disk.NumPages())
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := re.Validate(s.Disk); err != nil {
				t.Fatalf("restored validate: %v", err)
			}
			if re.Len() != b.Len() {
				t.Fatalf("restored Len = %d, want %d", re.Len(), b.Len())
			}
			if got := collect(t, re, s.Disk, -1<<62, 1<<62); !reflect.DeepEqual(got, want) {
				t.Fatal("restored scan differs")
			}
		})
	}
}

// TestRestoreRejectsImpossibleState: serialized state arrives from
// untrusted snapshot files; structural impossibilities must error, never
// panic.
func TestRestoreRejectsImpossibleState(t *testing.T) {
	s := storage.NewStore(0)
	entries := make([]index.Entry, 3000)
	for i := range entries {
		entries[i] = index.Entry{Key: int64(i), Rid: ridFor(i)}
	}
	b, err := Build(KindLSM, s.Disk, 1, "num", entries)
	if err != nil {
		t.Fatal(err)
	}
	good := b.State()
	mutations := map[string]func(*index.BackendState){
		"negative len":     func(st *index.BackendState) { st.LSM.Len = -1 },
		"no lsm body":      func(st *index.BackendState) { st.LSM = nil },
		"pages beyond img": func(st *index.BackendState) { st.LSM.Tabs[0].Start = 1 << 30 },
		"fence mismatch":   func(st *index.BackendState) { st.LSM.Tabs[0].Fences = st.LSM.Tabs[0].Fences[:1] },
		"seq above next":   func(st *index.BackendState) { st.LSM.Tabs[0].Seq = st.LSM.Seq + 1 },
		"empty bloom":      func(st *index.BackendState) { st.LSM.Tabs[0].Bloom = nil },
		"unknown kind":     func(st *index.BackendState) { st.Kind = "hash" },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			st := good
			if st.LSM != nil {
				lsCopy := *st.LSM
				lsCopy.Tabs = append([]index.SSTableState(nil), st.LSM.Tabs...)
				st.LSM = &lsCopy
			}
			mutate(&st)
			if _, err := Restore(st, s.Disk.NumPages()); err == nil {
				t.Fatal("impossible state restored without error")
			}
		})
	}
}

// TestCompactionDeterminism: the LSM structure after N mutations is a
// pure function of the mutation sequence — same flush points, same
// compactions, same serialized state — never of wall clock or scheduling.
func TestCompactionDeterminism(t *testing.T) {
	run := func() (index.BackendState, index.BackendCounters) {
		s := storage.NewStore(0)
		b, err := Build(KindLSM, s.Disk, 1, "num", nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 6000; i++ {
			if err := b.Insert(s.Disk, index.Entry{Key: int64(rng.Intn(10000)), Rid: ridFor(i)}); err != nil {
				t.Fatal(err)
			}
		}
		return b.State(), b.Counters()
	}
	st1, c1 := run()
	st2, c2 := run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatal("identical mutation sequences produced different LSM state")
	}
	if c1 != c2 {
		t.Fatalf("identical mutation sequences produced different counters: %+v vs %+v", c1, c2)
	}
	if c1.Compactions < 1 {
		t.Fatalf("6000 inserts tripped %d compactions, want at least 1", c1.Compactions)
	}
}

// TestBloomSkipGate is the enforced bloom-savings gate: on a point-lookup
// workload over a multi-table LSM, at least half of the candidate
// SSTables must be skipped by bloom probe instead of read. The numbers
// are simulated and deterministic, so the gate holds on every runner.
func TestBloomSkipGate(t *testing.T) {
	s := storage.NewStore(0)
	b, err := Build(KindLSM, s.Disk, 1, "num", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert even keys in a deterministic shuffle: every flushed table
	// spans the whole key range, so range checks alone cannot skip any.
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 3000)
	for i := range keys {
		keys[i] = int64(2 * (i + 1))
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if err := b.Insert(s.Disk, index.Entry{Key: k, Rid: ridFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c0 := b.Counters()
	// The point-lookup workload: half present (even) keys, half absent
	// (odd) — the checks-for-missing-keys mix blooms exist for.
	for i := 0; i < 500; i++ {
		for _, k := range []int64{int64(2 * (i*6 + 1)), int64(2*(i*6+1)) + 1} {
			if _, err := b.Lookup(s.Disk, k); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := b.Counters()
	hits := c.BloomHits - c0.BloomHits
	misses := c.BloomMisses - c0.BloomMisses
	probes := hits + misses
	if probes == 0 {
		t.Fatal("no bloom probes on a multi-table lookup workload")
	}
	skip := 100 * float64(misses) / float64(probes)
	t.Logf("bloom probes: %d, skipped %d (%.0f%%), sstables read %d",
		probes, misses, skip, c.SSTablesRead-c0.SSTablesRead)
	if skip < 50 {
		t.Fatalf("bloom skip %.0f%% below the 50%% gate", skip)
	}
}

// TestCountersChargePages: SSTable writes from flushes and compactions
// must surface in PagesWritten, and a skipped table must cost a probe,
// not a read (SSTablesRead stays put when the bloom says no).
func TestCountersChargePages(t *testing.T) {
	s := storage.NewStore(0)
	b, err := Build(KindLSM, s.Disk, 1, "num", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := b.Insert(s.Disk, index.Entry{Key: int64(i), Rid: ridFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := b.Counters()
	if c.PagesWritten < int64(b.Pages()) {
		t.Fatalf("PagesWritten = %d, below the %d live pages", c.PagesWritten, b.Pages())
	}
	if c.Compactions < 1 {
		t.Fatalf("Compactions = %d after 5000 inserts", c.Compactions)
	}
	// An absent key far outside every range costs nothing; an absent key
	// inside the range costs probes only.
	pre := b.Counters()
	if _, err := b.Lookup(s.Disk, 1<<40); err != nil {
		t.Fatal(err)
	}
	post := b.Counters()
	if post.SSTablesRead != pre.SSTablesRead {
		t.Fatal("out-of-range lookup read an sstable")
	}
}
