package backend

// Bloom filters over SSTable keys. One filter per table, sized at build
// time from the entry count (about 10 bits per key, 4 hash functions:
// ~2% false positives), queried before any page of the table is read. A
// negative probe proves the key absent and skips the table entirely —
// the probe is charged as a hash probe, never as a read — which is the
// entire economic argument for the LSM backend's read path.
//
// Hashing is splitmix64 double hashing: deterministic, allocation-free,
// and independent of anything but the key bits, so filter contents are
// a pure function of the table's keys (the determinism invariant).

const (
	bloomBitsPerKey = 10
	bloomHashes     = 4
)

type bloom struct {
	bits []uint64
}

func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	words := (n*bloomBitsPerKey + 63) / 64
	return &bloom{bits: make([]uint64, words)}
}

// restoreBloom wraps persisted filter words (shared, not copied: filters
// are immutable once their table is written).
func restoreBloom(words []uint64) *bloom { return &bloom{bits: words} }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (b *bloom) add(key int64) {
	m := uint64(len(b.bits) * 64)
	h1 := splitmix64(uint64(key))
	h2 := splitmix64(h1) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

// may reports whether key might be present (false = definitely absent).
func (b *bloom) may(key int64) bool {
	m := uint64(len(b.bits) * 64)
	h1 := splitmix64(uint64(key))
	h2 := splitmix64(h1) | 1
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
