package backend

import (
	"treebench/internal/index"
	"treebench/internal/storage"
)

// btree adapts the in-memory B+-tree to the Backend interface by pure
// delegation: it adds no page touches and no CPU charges, so a session
// on the "btree" backend reproduces the pre-refactor meters exactly —
// it is the oracle the other backends' tables are diffed against.
// Mutations run through a countingPager only to surface PagesWritten;
// the wrapper forwards every call, so the cache hierarchy charges the
// identical sequence of events.
type btree struct {
	t   *index.Tree
	ctr *counters
}

func newBTree(p storage.Pager, id uint32, name string) (*btree, error) {
	b := &btree{ctr: &counters{}}
	t, err := index.New(countingPager{p, &b.ctr.pagesWritten}, id, name)
	if err != nil {
		return nil, err
	}
	b.t = t
	return b, nil
}

func buildBTree(p storage.Pager, id uint32, name string, entries []index.Entry) (*btree, error) {
	b := &btree{ctr: &counters{}}
	t, err := index.Build(countingPager{p, &b.ctr.pagesWritten}, id, name, entries)
	if err != nil {
		return nil, err
	}
	b.t = t
	return b, nil
}

func restoreBTree(st index.BackendState, numPages int) (*btree, error) {
	t, err := index.Restore(st.Tree, numPages)
	if err != nil {
		return nil, err
	}
	return &btree{t: t, ctr: &counters{}}, nil
}

func (b *btree) Kind() string { return KindBTree }
func (b *btree) ID() uint32   { return b.t.ID }
func (b *btree) Name() string { return b.t.Name }
func (b *btree) Len() int     { return b.t.Len() }
func (b *btree) Pages() int   { return b.t.Pages() }
func (b *btree) Height() int  { return b.t.Height() }

func (b *btree) Scan(p storage.Pager, lo, hi int64, fn func(index.Entry) (bool, error)) error {
	return b.t.Scan(p, lo, hi, fn)
}

func (b *btree) ScanBatched(p storage.Pager, lo, hi int64, capacity int, fn func([]index.Entry) (bool, error)) error {
	return b.t.ScanBatched(p, lo, hi, capacity, fn)
}

func (b *btree) Lookup(p storage.Pager, key int64) ([]storage.Rid, error) {
	return b.t.Lookup(p, key)
}

func (b *btree) Insert(p storage.Pager, e index.Entry) error {
	return b.t.Insert(countingPager{p, &b.ctr.pagesWritten}, e)
}

func (b *btree) Delete(p storage.Pager, e index.Entry) (bool, error) {
	return b.t.Delete(countingPager{p, &b.ctr.pagesWritten}, e)
}

func (b *btree) MinKey(p storage.Pager) (int64, bool, error) { return b.t.MinKey(p) }
func (b *btree) MaxKey(p storage.Pager) (int64, bool, error) { return b.t.MaxKey(p) }
func (b *btree) Validate(p storage.Pager) error              { return b.t.Validate(p) }

func (b *btree) Clone() index.Backend {
	return &btree{t: b.t.Clone(), ctr: &counters{}}
}

func (b *btree) Counters() index.BackendCounters { return b.ctr.snapshot() }

func (b *btree) State() index.BackendState {
	return index.BackendState{Kind: KindBTree, Tree: b.t.State(), Meta: storage.InvalidPage}
}
