package backend

import (
	"sync/atomic"

	"treebench/internal/index"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// counters is the atomic backing store behind Backend.Counters. One
// instance is shared by every chunk fork driving the same Backend
// (ReadFork shares the catalog), so all increments are atomic; Clone
// starts a fresh block — counters describe one session's activity, not
// the lineage's.
type counters struct {
	bloomHits    atomic.Int64
	bloomMisses  atomic.Int64
	sstablesRead atomic.Int64
	compactions  atomic.Int64
	pagesWritten atomic.Int64
}

func (c *counters) snapshot() index.BackendCounters {
	return index.BackendCounters{
		BloomHits:    c.bloomHits.Load(),
		BloomMisses:  c.bloomMisses.Load(),
		SSTablesRead: c.sstablesRead.Load(),
		Compactions:  c.compactions.Load(),
		PagesWritten: c.pagesWritten.Load(),
	}
}

// countingPager wraps the pager handed to a mutation so page writes and
// allocations issued by the inner structure surface as PagesWritten. It
// forwards everything else untouched — the cache hierarchy still does
// all the charging, so wrapping adds no simulated cost.
type countingPager struct {
	p     storage.Pager
	wrote *atomic.Int64
}

func (c countingPager) Read(id storage.PageID) ([]byte, error) { return c.p.Read(id) }

func (c countingPager) Write(id storage.PageID) error {
	if err := c.p.Write(id); err != nil {
		return err
	}
	c.wrote.Add(1)
	return nil
}

// Alloc is forwarded uncounted: every allocated page is subsequently
// written, and counting both would double-bill it.
func (c countingPager) Alloc() (storage.PageID, []byte, error) {
	return c.p.Alloc()
}

// Costs forwards the CostSource hook so CPU-level charges keep flowing
// to the driving fork's meter through the wrapper.
func (c countingPager) Costs() *sim.Meter { return index.MeterOf(c.p) }
