package backend

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/index"
	"treebench/internal/storage"
)

// disk is the paged on-disk B+-tree: the same node pages and algorithms
// as the in-memory oracle, plus a metadata page (the goDB idiom: magic,
// root, height, page and entry counts) that makes the structure
// self-describing on disk. Every operation reads the metadata page
// through the pager before touching a node — warm that is one client
// hit, cold it is a real fault — so the disk backend's point reads are
// honestly one page costlier than the oracle's, which keeps its
// descriptor in session memory for free.
//
// An in-memory mirror of the descriptor serves the pager-less interface
// methods (Len, Pages, Height — the planner's cost arithmetic) and is
// only written by mutations, which are never concurrent with reads on
// the same fork; the pager-driven read path trusts the page, not the
// mirror.
type disk struct {
	mirror *index.Tree
	meta   storage.PageID
	ctr    *counters
}

// Metadata page layout (little-endian, like the node pages):
//
//	0..4    magic "BTPG"
//	4..8    index id
//	8..12   root page
//	12..16  height
//	16..20  node pages (excluding this one)
//	20..28  entry count
const diskMagic = 0x42545047 // "BTPG"

func newDisk(p storage.Pager, id uint32, name string) (*disk, error) {
	d := &disk{ctr: &counters{}}
	t, err := index.New(countingPager{p, &d.ctr.pagesWritten}, id, name)
	if err != nil {
		return nil, err
	}
	return d.init(p, t)
}

func buildDisk(p storage.Pager, id uint32, name string, entries []index.Entry) (*disk, error) {
	d := &disk{ctr: &counters{}}
	t, err := index.Build(countingPager{p, &d.ctr.pagesWritten}, id, name, entries)
	if err != nil {
		return nil, err
	}
	return d.init(p, t)
}

// init allocates and writes the metadata page for a freshly built tree.
func (d *disk) init(p storage.Pager, t *index.Tree) (*disk, error) {
	meta, buf, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	d.mirror, d.meta = t, meta
	encodeDiskMeta(buf, t.State())
	if err := p.Write(meta); err != nil {
		return nil, err
	}
	d.ctr.pagesWritten.Add(1)
	return d, nil
}

func restoreDisk(st index.BackendState, numPages int) (*disk, error) {
	if int(st.Meta) >= numPages {
		return nil, fmt.Errorf("backend: %s metadata page %d beyond image (%d pages)",
			st.Tree.Name, st.Meta, numPages)
	}
	t, err := index.Restore(st.Tree, numPages)
	if err != nil {
		return nil, err
	}
	return &disk{mirror: t, meta: st.Meta, ctr: &counters{}}, nil
}

func encodeDiskMeta(buf []byte, st index.TreeState) {
	binary.LittleEndian.PutUint32(buf[0:4], diskMagic)
	binary.LittleEndian.PutUint32(buf[4:8], st.ID)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(st.Root))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(st.Height))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(st.Pages))
	binary.LittleEndian.PutUint64(buf[20:28], uint64(st.Len))
}

// load reads and decodes the metadata page, returning the descriptor the
// node-level operations run against. Name travels in the catalog, not
// the page; the mirror supplies it.
func (d *disk) load(p storage.Pager) (*index.Tree, error) {
	buf, err := p.Read(d.meta)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != diskMagic {
		return nil, fmt.Errorf("backend: %s metadata page %d has bad magic", d.mirror.Name, d.meta)
	}
	if got := binary.LittleEndian.Uint32(buf[4:8]); got != d.mirror.ID {
		return nil, fmt.Errorf("backend: %s metadata page %d names index %d, want %d",
			d.mirror.Name, d.meta, got, d.mirror.ID)
	}
	return index.FromState(index.TreeState{
		ID:     d.mirror.ID,
		Name:   d.mirror.Name,
		Root:   storage.PageID(binary.LittleEndian.Uint32(buf[8:12])),
		Height: int(binary.LittleEndian.Uint32(buf[12:16])),
		Pages:  int(binary.LittleEndian.Uint32(buf[16:20])),
		Len:    int(binary.LittleEndian.Uint64(buf[20:28])),
	}), nil
}

// store writes the post-mutation descriptor back to the metadata page
// and refreshes the mirror.
func (d *disk) store(p storage.Pager, t *index.Tree) error {
	buf, err := p.Read(d.meta)
	if err != nil {
		return err
	}
	encodeDiskMeta(buf, t.State())
	if err := p.Write(d.meta); err != nil {
		return err
	}
	d.ctr.pagesWritten.Add(1)
	d.mirror = t
	return nil
}

func (d *disk) Kind() string { return KindDisk }
func (d *disk) ID() uint32   { return d.mirror.ID }
func (d *disk) Name() string { return d.mirror.Name }
func (d *disk) Len() int     { return d.mirror.Len() }

// Pages counts the metadata page alongside the nodes.
func (d *disk) Pages() int  { return d.mirror.Pages() + 1 }
func (d *disk) Height() int { return d.mirror.Height() }

func (d *disk) Scan(p storage.Pager, lo, hi int64, fn func(index.Entry) (bool, error)) error {
	t, err := d.load(p)
	if err != nil {
		return err
	}
	return t.Scan(p, lo, hi, fn)
}

func (d *disk) ScanBatched(p storage.Pager, lo, hi int64, capacity int, fn func([]index.Entry) (bool, error)) error {
	t, err := d.load(p)
	if err != nil {
		return err
	}
	return t.ScanBatched(p, lo, hi, capacity, fn)
}

func (d *disk) Lookup(p storage.Pager, key int64) ([]storage.Rid, error) {
	t, err := d.load(p)
	if err != nil {
		return nil, err
	}
	return t.Lookup(p, key)
}

func (d *disk) Insert(p storage.Pager, e index.Entry) error {
	t, err := d.load(p)
	if err != nil {
		return err
	}
	if err := t.Insert(countingPager{p, &d.ctr.pagesWritten}, e); err != nil {
		return err
	}
	return d.store(p, t)
}

func (d *disk) Delete(p storage.Pager, e index.Entry) (bool, error) {
	t, err := d.load(p)
	if err != nil {
		return false, err
	}
	ok, err := t.Delete(countingPager{p, &d.ctr.pagesWritten}, e)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	return true, d.store(p, t)
}

func (d *disk) MinKey(p storage.Pager) (int64, bool, error) {
	t, err := d.load(p)
	if err != nil {
		return 0, false, err
	}
	return t.MinKey(p)
}

func (d *disk) MaxKey(p storage.Pager) (int64, bool, error) {
	t, err := d.load(p)
	if err != nil {
		return 0, false, err
	}
	return t.MaxKey(p)
}

func (d *disk) Validate(p storage.Pager) error {
	t, err := d.load(p)
	if err != nil {
		return err
	}
	if t.State() != d.mirror.State() {
		return fmt.Errorf("backend: %s metadata page disagrees with catalog (%+v vs %+v)",
			d.mirror.Name, t.State(), d.mirror.State())
	}
	return t.Validate(p)
}

func (d *disk) Clone() index.Backend {
	return &disk{mirror: d.mirror.Clone(), meta: d.meta, ctr: &counters{}}
}

func (d *disk) Counters() index.BackendCounters { return d.ctr.snapshot() }

func (d *disk) State() index.BackendState {
	return index.BackendState{Kind: KindDisk, Tree: d.mirror.State(), Meta: d.meta}
}
