package backend

import (
	"bytes"
	"testing"

	"treebench/internal/storage"
)

// FuzzSSTableDecode hammers the SSTable page decoder with arbitrary
// bytes: it must reject anything a correct writer could not have
// produced, re-encode anything it accepts to exactly the accepted bytes,
// and never panic — snapshot files are untrusted input.
func FuzzSSTableDecode(f *testing.F) {
	// Seed corpus: a well-formed page, a page with tombstones, an empty
	// page, and near-miss corruptions of each interesting field.
	page := func(entries []sstEntry) []byte {
		buf := make([]byte, storage.PageSize)
		encodeSSTablePage(buf, entries)
		return buf
	}
	valid := page([]sstEntry{
		{key: 1, rid: ridFor(1)},
		{key: 1, rid: ridFor(2)},
		{key: 7, rid: ridFor(3), tomb: true},
		{key: 9, rid: ridFor(4)},
	})
	f.Add(valid)
	f.Add(page(nil))
	full := make([]sstEntry, sstFanout)
	for i := range full {
		full[i] = sstEntry{key: int64(i), rid: ridFor(i)}
	}
	f.Add(page(full))

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	badCount := append([]byte(nil), valid...)
	badCount[4], badCount[5] = 0xFF, 0xFF
	f.Add(badCount)
	badTomb := append([]byte(nil), valid...)
	badTomb[sstHeaderLen+16] = 2
	f.Add(badTomb)
	outOfOrder := page([]sstEntry{{key: 5, rid: ridFor(1)}, {key: 4, rid: ridFor(2)}})
	// encodeSSTablePage writes what it is given; the decoder must reject.
	f.Add(outOfOrder)
	f.Add([]byte{})
	f.Add(valid[:sstHeaderLen-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeSSTablePage(data)
		if err != nil {
			return
		}
		if len(entries) > sstFanout {
			t.Fatalf("decoder accepted %d records, max is %d", len(entries), sstFanout)
		}
		for i := 1; i < len(entries); i++ {
			if !entries[i-1].less(entries[i]) {
				t.Fatalf("decoder accepted out-of-order records at %d", i)
			}
		}
		// Round-trip: what decodes must re-encode to the bytes accepted.
		if len(data) >= storage.PageSize {
			buf := make([]byte, storage.PageSize)
			encodeSSTablePage(buf, entries)
			used := sstHeaderLen + len(entries)*sstEntryLen
			if !bytes.Equal(buf[:used], data[:used]) {
				t.Fatal("accepted page does not round-trip")
			}
		}
	})
}
