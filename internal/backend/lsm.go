package backend

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"treebench/internal/index"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// lsm is the log-structured merge backend: writes land in a sorted
// in-memory memtable and cost no page I/O at all (write absorption);
// every memtableCap-th record the memtable flushes to an immutable
// tier-0 SSTable, and whenever compactionFanout tables share a tier the
// oldest four merge into one table a tier up. Reads pay for that
// absorption — a point lookup may consult the memtable and every table
// — except where a bloom filter proves a table cannot contain the key
// and its pages are skipped for the price of a hash probe.
//
// Determinism rules (the repo-wide invariant): flushes trigger on entry
// count and compactions on table count — never on wall clock, sizes in
// bytes, or anything a scheduler could perturb — so the structure after
// N update waves is a pure function of the wave spec and N. Compaction
// I/O flows through the pager of the mutation that tripped it: the wave
// that causes a merge is the wave that pays for it.
//
// Fork semantics: Clone is only ever called on a frozen snapshot's
// backend (read-only by the engine's guard), shares the memtable slice
// zero-copy and marks the clone copy-on-write; the first mutation on a
// mutable fork copies the memtable (≤ memtableCap records), never the
// tables — those are immutable and their pages COW at the storage
// layer.
type lsm struct {
	id   uint32
	name string
	n    int    // live entries, net of tombstones
	seq  uint32 // next SSTable sequence number

	mem       []sstEntry // sorted by (key, rid); one record per (key, rid)
	memShared bool       // set on clones: copy before first mutation

	tables []*sstable // seq-ascending (oldest first)

	ctr *counters
}

const (
	// memtableCap is the flush threshold in records. 1024 absorbs ~21
	// default update waves (48 index maintenance records each) per
	// flushed page run.
	memtableCap = 1024
	// compactionFanout is the size-tiered merge width.
	compactionFanout = 4
)

func newLSM(id uint32, name string) *lsm {
	return &lsm{id: id, name: name, ctr: &counters{}}
}

func buildLSM(p storage.Pager, id uint32, name string, entries []index.Entry) (*lsm, error) {
	l := newLSM(id, name)
	if len(entries) == 0 {
		return l, nil
	}
	recs := make([]sstEntry, len(entries))
	for i, e := range entries {
		recs[i] = sstEntry{key: e.Key, rid: e.Rid}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].less(recs[j]) })
	tab, err := writeSSTable(p, recs, l.seq, 0, l.ctr)
	if err != nil {
		return nil, err
	}
	l.seq++
	l.tables = append(l.tables, tab)
	l.n = len(recs)
	return l, nil
}

func restoreLSM(st index.BackendState, numPages int) (*lsm, error) {
	ls := st.LSM
	if ls == nil {
		return nil, fmt.Errorf("backend: lsm state for %q has no lsm section", st.Kind)
	}
	l := &lsm{id: ls.ID, name: ls.Name, n: ls.Len, seq: ls.Seq, ctr: &counters{}}
	if l.n < 0 {
		return nil, fmt.Errorf("backend: %s has impossible entry count %d", l.name, l.n)
	}
	for i, m := range ls.Mem {
		rec := sstEntry{key: m.Key, rid: m.Rid, tomb: m.Tomb}
		if i > 0 && !l.mem[i-1].less(rec) {
			return nil, fmt.Errorf("backend: %s memtable out of order at %d", l.name, i)
		}
		l.mem = append(l.mem, rec)
	}
	for _, ts := range ls.Tabs {
		if ts.Pages < 1 || ts.Count < 1 || ts.MinKey > ts.MaxKey ||
			len(ts.Fences) != ts.Pages || len(ts.Bloom) == 0 {
			return nil, fmt.Errorf("backend: %s sstable %d has impossible shape", l.name, ts.Seq)
		}
		if int(ts.Start)+ts.Pages > numPages {
			return nil, fmt.Errorf("backend: %s sstable %d pages %d..%d beyond image (%d pages)",
				l.name, ts.Seq, ts.Start, int(ts.Start)+ts.Pages, numPages)
		}
		if ts.Seq >= l.seq {
			return nil, fmt.Errorf("backend: %s sstable seq %d not below next seq %d", l.name, ts.Seq, l.seq)
		}
		tab := &sstable{
			seq: ts.Seq, tier: ts.Tier, start: ts.Start, pages: ts.Pages, count: ts.Count,
			minKey: ts.MinKey, maxKey: ts.MaxKey, fences: ts.Fences, filter: restoreBloom(ts.Bloom),
		}
		if len(l.tables) > 0 && l.tables[len(l.tables)-1].seq >= tab.seq {
			return nil, fmt.Errorf("backend: %s sstables out of sequence order", l.name)
		}
		l.tables = append(l.tables, tab)
	}
	return l, nil
}

func (l *lsm) Kind() string { return KindLSM }
func (l *lsm) ID() uint32   { return l.id }
func (l *lsm) Name() string { return l.name }
func (l *lsm) Len() int     { return l.n }

func (l *lsm) Pages() int {
	n := 0
	for _, t := range l.tables {
		n += t.pages
	}
	return n
}

// Height is the memtable plus the number of distinct occupied tiers —
// the worst-case number of structures a point lookup may descend.
func (l *lsm) Height() int {
	tiers := map[int]bool{}
	for _, t := range l.tables {
		tiers[t.tier] = true
	}
	return 1 + len(tiers)
}

// chargeSearch bills a binary search over n elements as its comparison
// count. The B+-tree oracle charges nothing CPU-wise inside the index —
// its node searches ride on the page reads — but the LSM's memtable has
// no pages to pay for, so its searches are accounted explicitly.
func chargeSearch(p storage.Pager, n int) {
	if n <= 0 {
		return
	}
	if m := index.MeterOf(p); m != nil {
		m.Compares(int64(bits.Len(uint(n))))
	}
}

func chargeMeter(p storage.Pager, fn func(*sim.Meter)) {
	if m := index.MeterOf(p); m != nil {
		fn(m)
	}
}

// memFind locates rec's (key, rid) slot in the memtable: the insertion
// position and whether a record with that exact (key, rid) is there.
func (l *lsm) memFind(rec sstEntry) (int, bool) {
	pos := sort.Search(len(l.mem), func(i int) bool { return !l.mem[i].less(rec) })
	return pos, pos < len(l.mem) && l.mem[pos].same(rec)
}

// ownMem makes the memtable private before a mutation (clones share it
// copy-on-write).
func (l *lsm) ownMem() {
	if l.memShared {
		l.mem = append([]sstEntry(nil), l.mem...)
		l.memShared = false
	}
}

// memUpsert installs rec, replacing any existing record for its
// (key, rid): an insert cancels a tombstone and vice versa, so the
// memtable holds at most one verdict per (key, rid).
func (l *lsm) memUpsert(rec sstEntry) {
	l.ownMem()
	pos, found := l.memFind(rec)
	if found {
		l.mem[pos] = rec
		return
	}
	l.mem = append(l.mem, sstEntry{})
	copy(l.mem[pos+1:], l.mem[pos:])
	l.mem[pos] = rec
}

// Insert lands in the memtable only: no page is touched, which is the
// write absorption the B1 ablation measures. The flush that eventually
// realizes the I/O bills to whichever insert trips the threshold.
func (l *lsm) Insert(p storage.Pager, e index.Entry) error {
	chargeSearch(p, len(l.mem))
	l.memUpsert(sstEntry{key: e.Key, rid: e.Rid})
	l.n++
	return l.maybeFlush(p)
}

// Delete verifies the entry actually exists (a real, charged read —
// the honest price of not having the B+-tree's authoritative leaves)
// and then writes a tombstone over it.
func (l *lsm) Delete(p storage.Pager, e index.Entry) (bool, error) {
	rec := sstEntry{key: e.Key, rid: e.Rid}
	exists, err := l.contains(p, rec)
	if err != nil || !exists {
		return false, err
	}
	rec.tomb = true
	l.memUpsert(rec)
	l.n--
	return true, l.maybeFlush(p)
}

// contains reports whether a live record for rec's (key, rid) exists,
// consulting components newest-first so the most recent verdict wins.
func (l *lsm) contains(p storage.Pager, rec sstEntry) (bool, error) {
	chargeSearch(p, len(l.mem))
	if pos, found := l.memFind(rec); found {
		return !l.mem[pos].tomb, nil
	}
	for i := len(l.tables) - 1; i >= 0; i-- {
		found, hit, err := l.searchTable(p, l.tables[i], rec)
		if err != nil {
			return false, err
		}
		if found {
			return !hit.tomb, nil
		}
	}
	return false, nil
}

// searchTable point-searches one SSTable for rec's (key, rid): range
// check, bloom probe (a miss skips the table for the price of the
// probe), fence search, then targeted page reads.
func (l *lsm) searchTable(p storage.Pager, t *sstable, rec sstEntry) (bool, sstEntry, error) {
	chargeMeter(p, func(m *sim.Meter) { m.Compares(2) })
	if rec.key < t.minKey || rec.key > t.maxKey {
		return false, sstEntry{}, nil
	}
	chargeMeter(p, func(m *sim.Meter) { m.HashProbe() })
	if !t.filter.may(rec.key) {
		l.ctr.bloomMisses.Add(1)
		return false, sstEntry{}, nil
	}
	l.ctr.bloomHits.Add(1)
	l.ctr.sstablesRead.Add(1)
	chargeSearch(p, t.pages)
	for pg := t.findPage(rec.key); pg < t.pages; pg++ {
		ents, err := t.readPage(p, pg)
		if err != nil {
			return false, sstEntry{}, err
		}
		for _, e := range ents {
			if e.key > rec.key || (e.key == rec.key && rec.rid.Less(e.rid)) {
				return false, sstEntry{}, nil
			}
			if e.same(rec) {
				return true, e, nil
			}
		}
	}
	return false, sstEntry{}, nil
}

// Lookup collects the live rids for key across all components,
// newest verdict per rid winning, in ascending rid order — the exact
// sequence the B+-tree's leaf scan yields.
func (l *lsm) Lookup(p storage.Pager, key int64) ([]storage.Rid, error) {
	type verdict struct {
		rid  storage.Rid
		tomb bool
	}
	var verdicts []verdict
	record := func(rid storage.Rid, tomb bool) {
		for _, v := range verdicts {
			if v.rid == rid {
				return // an older component cannot override
			}
		}
		verdicts = append(verdicts, verdict{rid, tomb})
	}

	chargeSearch(p, len(l.mem))
	lo := sort.Search(len(l.mem), func(i int) bool { return l.mem[i].key >= key })
	for i := lo; i < len(l.mem) && l.mem[i].key == key; i++ {
		record(l.mem[i].rid, l.mem[i].tomb)
	}
	for i := len(l.tables) - 1; i >= 0; i-- {
		t := l.tables[i]
		chargeMeter(p, func(m *sim.Meter) { m.Compares(2) })
		if key < t.minKey || key > t.maxKey {
			continue
		}
		chargeMeter(p, func(m *sim.Meter) { m.HashProbe() })
		if !t.filter.may(key) {
			l.ctr.bloomMisses.Add(1)
			continue
		}
		l.ctr.bloomHits.Add(1)
		l.ctr.sstablesRead.Add(1)
		chargeSearch(p, t.pages)
	pages:
		for pg := t.findPage(key); pg < t.pages; pg++ {
			ents, err := t.readPage(p, pg)
			if err != nil {
				return nil, err
			}
			for _, e := range ents {
				if e.key > key {
					break pages
				}
				if e.key == key {
					record(e.rid, e.tomb)
				}
			}
		}
	}
	var rids []storage.Rid
	for _, v := range verdicts {
		if !v.tomb {
			rids = append(rids, v.rid)
		}
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
	return rids, nil
}

// errStopScan aborts the merge when the caller's fn asks to stop.
var errStopScan = errors.New("backend: stop scan")

// lsmCursor walks one component (memtable or SSTable) in (key, rid)
// order over [lo, hi). Table cursors load pages lazily through the
// pager, calling beforeLoad first — that is the hook ScanBatched uses
// to flush a pending batch before any component page read, which keeps
// the scalar and batched charge sequences identical.
type lsmCursor struct {
	lo, hi int64
	cur    sstEntry
	ok     bool

	mem    []sstEntry // memtable component (nil for tables)
	memPos int

	tab     *sstable // SSTable component (nil for the memtable)
	pageIdx int
	page    []sstEntry
	pagePos int
	started bool
}

func (c *lsmCursor) next(p storage.Pager, beforeLoad func() error) error {
	c.ok = false
	if c.tab == nil {
		if c.memPos < len(c.mem) && c.mem[c.memPos].key < c.hi {
			c.cur = c.mem[c.memPos]
			c.memPos++
			c.ok = true
		}
		return nil
	}
	for {
		if c.pagePos >= len(c.page) {
			if !c.started {
				c.started = true
				c.pageIdx = c.tab.findPage(c.lo)
			}
			if c.pageIdx >= c.tab.pages {
				return nil
			}
			if beforeLoad != nil {
				if err := beforeLoad(); err != nil {
					return err
				}
			}
			ents, err := c.tab.readPage(p, c.pageIdx)
			if err != nil {
				return err
			}
			c.pageIdx++
			c.page, c.pagePos = ents, 0
			continue
		}
		e := c.page[c.pagePos]
		c.pagePos++
		if e.key < c.lo {
			continue // leading entries of the fence page
		}
		if e.key >= c.hi {
			return nil
		}
		c.cur, c.ok = e, true
		return nil
	}
}

// merge k-way merges every component over [lo, hi) in (key, rid) order,
// resolving duplicates newest-component-first and suppressing
// tombstones, and hands each surviving entry to emit. beforeLoad runs
// before every SSTable page read.
func (l *lsm) merge(p storage.Pager, lo, hi int64, beforeLoad func() error, emit func(index.Entry) error) error {
	// Cursors in recency order: memtable first, then tables newest to
	// oldest, so on a (key, rid) tie the lowest cursor index wins.
	var cursors []*lsmCursor
	if len(l.mem) > 0 {
		chargeSearch(p, len(l.mem))
		pos := sort.Search(len(l.mem), func(i int) bool { return l.mem[i].key >= lo })
		cursors = append(cursors, &lsmCursor{lo: lo, hi: hi, mem: l.mem, memPos: pos})
	}
	for i := len(l.tables) - 1; i >= 0; i-- {
		t := l.tables[i]
		chargeMeter(p, func(m *sim.Meter) { m.Compares(2) })
		if !t.overlaps(lo, hi) {
			continue
		}
		chargeSearch(p, t.pages)
		cursors = append(cursors, &lsmCursor{lo: lo, hi: hi, tab: t})
	}
	for _, c := range cursors {
		if err := c.next(p, beforeLoad); err != nil {
			return err
		}
	}
	for {
		win := -1
		for i, c := range cursors {
			if c.ok && (win < 0 || c.cur.less(cursors[win].cur)) {
				win = i
			}
		}
		if win < 0 {
			return nil
		}
		rec := cursors[win].cur
		// Consume this (key, rid) from every component; the winner (the
		// newest, thanks to cursor order) decided the verdict.
		for _, c := range cursors {
			if c.ok && c.cur.same(rec) {
				if err := c.next(p, beforeLoad); err != nil {
					return err
				}
			}
		}
		if rec.tomb {
			continue
		}
		if err := emit(index.Entry{Key: rec.key, Rid: rec.rid}); err != nil {
			return err
		}
	}
}

func (l *lsm) Scan(p storage.Pager, lo, hi int64, fn func(index.Entry) (bool, error)) error {
	err := l.merge(p, lo, hi, nil, func(e index.Entry) error {
		more, err := fn(e)
		if err != nil {
			return err
		}
		if !more {
			return errStopScan
		}
		return nil
	})
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}

func (l *lsm) ScanBatched(p storage.Pager, lo, hi int64, capacity int, fn func([]index.Entry) (bool, error)) error {
	if capacity < 1 {
		capacity = 1
	}
	batch := make([]index.Entry, 0, capacity)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		more, err := fn(batch)
		batch = batch[:0]
		if err != nil {
			return err
		}
		if !more {
			return errStopScan
		}
		return nil
	}
	err := l.merge(p, lo, hi, flush, func(e index.Entry) error {
		batch = append(batch, e)
		if len(batch) == capacity {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if errors.Is(err, errStopScan) {
		return nil
	}
	return err
}

func (l *lsm) MinKey(p storage.Pager) (int64, bool, error) {
	var k int64
	found := false
	err := l.Scan(p, -1<<62, 1<<62, func(e index.Entry) (bool, error) {
		k, found = e.Key, true
		return false, nil
	})
	return k, found, err
}

// MaxKey scans the whole structure: with tombstones possibly shadowing
// every component's last key there is no cheaper honest answer. The
// planner only falls back to it when histograms are missing.
func (l *lsm) MaxKey(p storage.Pager) (int64, bool, error) {
	var k int64
	found := false
	err := l.Scan(p, -1<<62, 1<<62, func(e index.Entry) (bool, error) {
		k, found = e.Key, true
		return true, nil
	})
	return k, found, err
}

func (l *lsm) maybeFlush(p storage.Pager) error {
	if len(l.mem) < memtableCap {
		return nil
	}
	return l.flush(p)
}

// flush writes the memtable as a tier-0 SSTable (tombstones included —
// they must keep shadowing older tables) and then compacts. The caller
// whose mutation tripped the threshold pays for all of it.
func (l *lsm) flush(p storage.Pager) error {
	if len(l.mem) == 0 {
		return nil
	}
	tab, err := writeSSTable(p, l.mem, l.seq, 0, l.ctr)
	if err != nil {
		return err
	}
	l.seq++
	l.tables = append(l.tables, tab)
	l.mem, l.memShared = nil, false
	return l.compact(p)
}

// compact runs size-tiered merges until no tier holds compactionFanout
// tables: the oldest four of the lowest such tier merge into one table
// a tier up. Scheduling depends only on table counts — commit counts,
// transitively — never on wall clock.
func (l *lsm) compact(p storage.Pager) error {
	for {
		tier := -1
		for _, t := range l.tables {
			n := 0
			for _, u := range l.tables {
				if u.tier == t.tier {
					n++
				}
			}
			if n >= compactionFanout && (tier < 0 || t.tier < tier) {
				tier = t.tier
			}
		}
		if tier < 0 {
			return nil
		}
		var inputs []*sstable
		for _, t := range l.tables { // seq-ascending: oldest first
			if t.tier == tier && len(inputs) < compactionFanout {
				inputs = append(inputs, t)
			}
		}
		if err := l.mergeTables(p, inputs, tier+1); err != nil {
			return err
		}
	}
}

// mergeTables reads every input page (billed to the triggering pager),
// merges newest-wins, and writes one output table at outTier. Tombstones
// drop only when the inputs are the entire table set and the memtable
// is empty — then nothing older can resurrect. Input pages become dead
// space in the page image, like the B+-tree's lazily deleted nodes.
func (l *lsm) mergeTables(p storage.Pager, inputs []*sstable, outTier int) error {
	type seqRec struct {
		rec sstEntry
		seq uint32
	}
	var all []seqRec
	for _, t := range inputs {
		for pg := 0; pg < t.pages; pg++ {
			ents, err := t.readPage(p, pg)
			if err != nil {
				return err
			}
			for _, e := range ents {
				all = append(all, seqRec{e, t.seq})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].rec.same(all[j].rec) {
			return all[i].rec.less(all[j].rec)
		}
		return all[i].seq > all[j].seq // newest verdict first within a (key, rid)
	})
	full := len(inputs) == len(l.tables) && len(l.mem) == 0
	var merged []sstEntry
	for i, r := range all {
		if i > 0 && r.rec.same(all[i-1].rec) {
			continue // older verdict for the same (key, rid)
		}
		if r.rec.tomb && full {
			continue
		}
		merged = append(merged, r.rec)
	}
	rest := l.tables[:0]
	for _, t := range l.tables {
		keep := true
		for _, in := range inputs {
			if t == in {
				keep = false
			}
		}
		if keep {
			rest = append(rest, t)
		}
	}
	l.tables = rest
	if len(merged) > 0 {
		out, err := writeSSTable(p, merged, l.seq, outTier, l.ctr)
		if err != nil {
			return err
		}
		l.seq++
		l.tables = append(l.tables, out)
	}
	l.ctr.compactions.Add(1)
	return nil
}

func (l *lsm) Validate(p storage.Pager) error {
	for i := 1; i < len(l.mem); i++ {
		if !l.mem[i-1].less(l.mem[i]) {
			return fmt.Errorf("backend: %s memtable out of order at %d", l.name, i)
		}
	}
	live := 0
	for i, t := range l.tables {
		if i > 0 && l.tables[i-1].seq >= t.seq {
			return fmt.Errorf("backend: %s tables out of sequence order at %d", l.name, i)
		}
		count := 0
		var prev sstEntry
		for pg := 0; pg < t.pages; pg++ {
			ents, err := t.readPage(p, pg)
			if err != nil {
				return fmt.Errorf("backend: %s sstable %d: %w", l.name, t.seq, err)
			}
			if len(ents) == 0 || ents[0].key != t.fences[pg] {
				return fmt.Errorf("backend: %s sstable %d page %d disagrees with fence", l.name, t.seq, pg)
			}
			if count > 0 && !prev.less(ents[0]) {
				return fmt.Errorf("backend: %s sstable %d out of order across page %d", l.name, t.seq, pg)
			}
			count += len(ents)
			prev = ents[len(ents)-1]
		}
		if count != t.count {
			return fmt.Errorf("backend: %s sstable %d holds %d records, descriptor says %d",
				l.name, t.seq, count, t.count)
		}
	}
	err := l.Scan(p, -1<<62, 1<<62, func(index.Entry) (bool, error) {
		live++
		return true, nil
	})
	if err != nil {
		return err
	}
	if live != l.n {
		return fmt.Errorf("backend: %s has %d live records, bookkeeping says %d", l.name, live, l.n)
	}
	return nil
}

// Clone shares the memtable copy-on-write and the immutable table
// descriptors outright. The receiver must be frozen (it is: the engine
// only clones snapshot catalogs, whose sessions are read-only), so
// marking just the clone shared is safe and keeps Clone write-free —
// snapshots are forked concurrently.
func (l *lsm) Clone() index.Backend {
	return &lsm{
		id: l.id, name: l.name, n: l.n, seq: l.seq,
		mem: l.mem, memShared: true,
		tables: append([]*sstable(nil), l.tables...),
		ctr:    &counters{},
	}
}

func (l *lsm) Counters() index.BackendCounters { return l.ctr.snapshot() }

func (l *lsm) State() index.BackendState {
	ls := &index.LSMState{ID: l.id, Name: l.name, Len: l.n, Seq: l.seq}
	for _, m := range l.mem {
		ls.Mem = append(ls.Mem, index.MemEntryState{Key: m.key, Rid: m.rid, Tomb: m.tomb})
	}
	for _, t := range l.tables {
		ls.Tabs = append(ls.Tabs, index.SSTableState{
			Seq: t.seq, Tier: t.tier, Start: t.start, Pages: t.pages, Count: t.count,
			MinKey: t.minKey, MaxKey: t.maxKey, Fences: t.fences, Bloom: t.filter.bits,
		})
	}
	return index.BackendState{
		Kind: KindLSM,
		// A synthesized TreeState keeps the positionally aligned trees
		// section well-formed for the LSM's slot.
		Tree: index.TreeState{ID: l.id, Name: l.name, Root: 0, Height: 1, Pages: 1, Len: l.n},
		Meta: storage.InvalidPage,
		LSM:  ls,
	}
}
