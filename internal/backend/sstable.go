package backend

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/storage"
)

// SSTable pages. An SSTable is an immutable sorted run of (key, rid,
// tombstone) records packed into contiguous pages, written once by a
// memtable flush or a compaction and never touched again. Page layout
// (little-endian, like the B+-tree nodes):
//
//	0..4   magic "LSMB"
//	4..6   count  uint16
//	6..8   reserved
//	8..    count × (key int64 + Rid + tombstone byte) = 17 bytes each
//
// Records within a page — and across the pages of one table — are
// strictly ascending by (key, rid): decodeSSTablePage enforces it, so a
// corrupted or adversarial page fails decode instead of corrupting a
// merge.
const (
	sstMagic     = 0x4c534d42 // "LSMB"
	sstHeaderLen = 8
	sstEntryLen  = 8 + storage.EncodedRidLen + 1
	sstFanout    = (storage.PageSize - sstHeaderLen) / sstEntryLen
)

// sstEntry is one LSM record: an index entry plus its tombstone flag.
type sstEntry struct {
	key  int64
	rid  storage.Rid
	tomb bool
}

// less orders records by (key, rid) — the shared delivery order of every
// backend.
func (e sstEntry) less(o sstEntry) bool {
	if e.key != o.key {
		return e.key < o.key
	}
	return e.rid.Less(o.rid)
}

func (e sstEntry) same(o sstEntry) bool { return e.key == o.key && e.rid == o.rid }

func encodeSSTablePage(buf []byte, entries []sstEntry) {
	for i := range buf[:sstHeaderLen] {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], sstMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(entries)))
	off := sstHeaderLen
	for _, e := range entries {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(e.key))
		e.rid.Encode(buf[off+8 : off+8 : off+8+storage.EncodedRidLen])
		if e.tomb {
			buf[off+16] = 1
		} else {
			buf[off+16] = 0
		}
		off += sstEntryLen
	}
}

// decodeSSTablePage parses one SSTable page, rejecting anything a
// correct writer could not have produced: bad magic, impossible counts,
// out-of-order records, tombstone bytes other than 0/1. It is the
// FuzzSSTableDecode target and must never panic on arbitrary input.
func decodeSSTablePage(buf []byte) ([]sstEntry, error) {
	if len(buf) < sstHeaderLen {
		return nil, fmt.Errorf("backend: sstable page truncated (%d bytes)", len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != sstMagic {
		return nil, fmt.Errorf("backend: sstable page has bad magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint16(buf[4:6]))
	if n > sstFanout || sstHeaderLen+n*sstEntryLen > len(buf) {
		return nil, fmt.Errorf("backend: sstable page claims %d records", n)
	}
	entries := make([]sstEntry, 0, n)
	off := sstHeaderLen
	for i := 0; i < n; i++ {
		e := sstEntry{key: int64(binary.LittleEndian.Uint64(buf[off : off+8]))}
		e.rid, _ = storage.DecodeRid(buf[off+8:])
		switch buf[off+16] {
		case 0:
		case 1:
			e.tomb = true
		default:
			return nil, fmt.Errorf("backend: sstable record %d has tombstone byte %d", i, buf[off+16])
		}
		if i > 0 && !entries[i-1].less(e) {
			return nil, fmt.Errorf("backend: sstable records out of order at %d", i)
		}
		entries = append(entries, e)
		off += sstEntryLen
	}
	return entries, nil
}

// sstable is the in-memory descriptor of one run: where its pages live,
// its key range, the per-page fence keys (first key of each page) and
// its bloom filter. Descriptors persist whole in the backend section, so
// a loaded snapshot answers bloom probes and fence searches without any
// page I/O — exactly like the session that saved it.
type sstable struct {
	seq    uint32 // creation order, newest wins on duplicate (key, rid)
	tier   int    // size-tiered level: flushes are tier 0, compactions tier+1
	start  storage.PageID
	pages  int
	count  int
	minKey int64
	maxKey int64
	fences []int64
	filter *bloom
}

// writeSSTable packs entries (strictly ascending by (key, rid)) into
// freshly allocated contiguous pages. Flushes and compactions are the
// only callers and allocate with nothing interleaved, which is what
// keeps the pages contiguous from start.
func writeSSTable(p storage.Pager, entries []sstEntry, seq uint32, tier int, ctr *counters) (*sstable, error) {
	s := &sstable{
		seq:    seq,
		tier:   tier,
		count:  len(entries),
		minKey: entries[0].key,
		maxKey: entries[len(entries)-1].key,
		filter: newBloom(len(entries)),
	}
	for _, e := range entries {
		s.filter.add(e.key)
	}
	for len(entries) > 0 {
		n := len(entries)
		if n > sstFanout {
			n = sstFanout
		}
		id, buf, err := p.Alloc()
		if err != nil {
			return nil, err
		}
		if s.pages == 0 {
			s.start = id
		} else if id != s.start+storage.PageID(s.pages) {
			return nil, fmt.Errorf("backend: sstable page %d not contiguous (got %d, want %d)",
				s.pages, id, s.start+storage.PageID(s.pages))
		}
		encodeSSTablePage(buf, entries[:n])
		if err := p.Write(id); err != nil {
			return nil, err
		}
		ctr.pagesWritten.Add(1)
		s.fences = append(s.fences, entries[0].key)
		s.pages++
		entries = entries[n:]
	}
	return s, nil
}

// readPage decodes page i of the table through the pager.
func (s *sstable) readPage(p storage.Pager, i int) ([]sstEntry, error) {
	buf, err := p.Read(s.start + storage.PageID(i))
	if err != nil {
		return nil, err
	}
	return decodeSSTablePage(buf)
}

// findPage returns the index of the first page that may contain key: the
// last page whose fence (first key) is strictly below it. When the next
// page's fence equals key, duplicates of key may still end the page
// before — starting there costs at most one extra page and never skips
// an entry.
func (s *sstable) findPage(key int64) int {
	lo, hi := 0, len(s.fences)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.fences[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// overlaps reports whether the table's key range intersects [lo, hi).
func (s *sstable) overlaps(lo, hi int64) bool {
	return s.minKey < hi && s.maxKey >= lo
}
