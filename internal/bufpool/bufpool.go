// Package bufpool implements the process-wide shared page buffer pool:
// one bounded, concurrency-safe cache of backing-file pages shared by
// every session, fork, and shard in the process. It sits under the
// *real* I/O path — storage.Base faulting pages out of a persisted
// snapshot file — and is invisible to the simulated meters: the paper's
// two-level client/server caches in internal/cache keep deciding what is
// a simulated hit or miss, while the pool decides what is physically
// resident. Simulated tables and counters are therefore byte-identical
// at every pool size and readahead setting; only wall clock and RSS
// move.
//
// Eviction is sharded 2Q (a scan-resistant LRU variant): a page's first
// touch admits it to a probationary queue, a second touch promotes it to
// the protected queue, and eviction drains probation first. A cold
// sequential scan therefore streams through probation without displacing
// the hot index/root pages that earned protection, which is exactly the
// drift between scan-heavy and point-heavy phases that makes plain LRU
// thrash.
//
// Frames are not recycled: evicting a frame drops the pool's reference
// and the garbage collector reclaims the buffer once the last reader's
// alias dies. That is what makes eviction safe under the engine's
// pervasive buffer aliasing (record slices, simulated cache entries, COW
// copies all alias page buffers) — an evicted frame's content can never
// be scribbled over. Pin/Unpin refcounts additionally exempt a frame
// from eviction entirely, so repeat Gets of a pinned page are guaranteed
// pool hits (the WAL-replay warm set and the snap tool's page sweep pin
// their working set this way).
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Source supplies page contents for one registered backing file.
// ReadPage fills dst (one page) with page i's content; it must be safe
// for concurrent use. It mirrors storage.PageSource so a snapshot file's
// reader plugs in unchanged.
type Source interface {
	ReadPage(i int, dst []byte) error
}

// RangeSource is the optional Source capability the readahead pipeline
// prefers: one positioned read covering len(dst)/pageSize consecutive
// pages starting at lo. A snapshot file implements it with a single
// ReadAt, which is what turns a cold scan's page-per-syscall faulting
// into one syscall per readahead window.
type RangeSource interface {
	Source
	ReadPageRange(lo int, dst []byte) error
}

// VectorSource is the strongest Source capability: one positioned
// vectored read scattering consecutive pages starting at lo into the
// caller's separate buffers. The readahead paths use it to fill page
// frames DIRECTLY — one syscall per window and no staging copy, where
// the RangeSource path reads into scratch and pays a memmove per page.
// A snapshot file implements it with preadv(2) on Linux.
type VectorSource interface {
	Source
	ReadPageVec(lo int, bufs [][]byte) error
}

// Stats is a point-in-time snapshot of the pool's counters.
type Stats struct {
	Hits      int64 // Gets served from a resident frame
	Misses    int64 // Gets that faulted from the backing source
	Evictions int64 // frames dropped by capacity pressure

	ReadaheadIssued int64 // pages prefetched by the background fetchers
	ReadaheadUsed   int64 // prefetched pages later consumed by a Get
	ReadaheadWasted int64 // prefetched pages evicted before any Get

	ResidentPages int64 // frames resident right now
	CapacityPages int64 // frame capacity (0 = unbounded)
	Sources       int64 // backing files registered
}

// HitRate returns hits/(hits+misses) in percent, 0 when idle.
func (s Stats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return 100 * float64(s.Hits) / float64(t)
	}
	return 0
}

const (
	numShards = 16

	// seqThreshold is how many consecutive page accesses a handle must
	// see before the readahead pipeline engages. Below it, point lookups
	// and tree descents never trigger speculative I/O.
	seqThreshold = 4

	// minShardFrames keeps a tiny pool functional: each shard can always
	// hold a few frames, so even -bufpool-mb 1 makes progress (just with
	// brutal eviction pressure — the equivalence tests run there on
	// purpose).
	minShardFrames = 8
)

// key identifies one page of one registered source.
type key struct {
	src  uint64
	page uint32
}

// frame is one resident page.
type frame struct {
	key key
	buf []byte

	pins int32 // eviction exemption refcount; guarded by the shard mutex

	// prefetched marks a frame admitted by the readahead pipeline and
	// not yet consumed; the first Get clears it (readahead used), an
	// eviction while still set counts as readahead wasted.
	prefetched bool

	hot        bool // protected (true) or probationary (false) queue
	prev, next *frame
}

// list is an intrusive LRU queue: head is LRU (eviction end), tail MRU.
type list struct {
	head, tail *frame
	n          int
}

func (l *list) pushMRU(f *frame) {
	f.prev, f.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = f
	} else {
		l.head = f
	}
	l.tail = f
	l.n++
}

func (l *list) remove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		l.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		l.tail = f.prev
	}
	f.prev, f.next = nil, nil
	l.n--
}

// inflight tracks one page read in progress, so concurrent faulters of
// the same page share one backing read instead of issuing duplicates.
type inflight struct {
	done chan struct{}
	buf  []byte
	err  error
}

// shard is one lock domain of the pool.
type shard struct {
	mu        sync.Mutex
	frames    map[key]*frame
	inflight  map[key]*inflight
	probation list // first-touch pages; evicted first (scan resistance)
	protected list // pages touched at least twice
	capFrames int  // 0 = unbounded
}

// Pool is the shared buffer pool. Construct with New; the process-wide
// instance lives in this package's global registry (see Setup/Active).
type Pool struct {
	pageSize  int
	readahead int
	shards    [numShards]shard
	nextSrc   atomic.Uint64

	hits, misses, evictions    atomic.Int64
	raIssued, raUsed, raWasted atomic.Int64

	fetchOnce sync.Once
	fetchQ    chan fetchReq
	qmu       sync.RWMutex
	closed    bool

	// rangeScratch recycles the window-sized staging buffers of batched
	// demand faults; without it a long cold scan churns one readahead
	// window of garbage per window of progress.
	rangeScratch sync.Pool
}

// New returns a pool of capacityBytes (0 = unbounded) over pageSize
// frames. readahead is the prefetch window in pages (0 disables the
// readahead pipeline; detection and fetchers then never run).
func New(capacityBytes int64, pageSize, readahead int) *Pool {
	if pageSize < 1 {
		panic("bufpool: page size < 1")
	}
	if readahead < 0 {
		readahead = 0
	}
	p := &Pool{pageSize: pageSize, readahead: readahead}
	if readahead > 0 {
		p.rangeScratch.New = func() any {
			b := make([]byte, readahead*pageSize)
			return &b
		}
	}
	capFrames := 0
	if capacityBytes > 0 {
		capFrames = int(capacityBytes) / pageSize
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sizeHint := 0
		if capFrames > 0 {
			sh.capFrames = capFrames / numShards
			if sh.capFrames < minShardFrames {
				sh.capFrames = minShardFrames
			}
			// Pre-size toward capacity so a filling scan doesn't pay
			// incremental map rehashes on the fault path (capped: a large
			// pool may never fill).
			sizeHint = sh.capFrames
			if sizeHint > 1024 {
				sizeHint = 1024
			}
		}
		sh.frames = make(map[key]*frame, sizeHint)
		sh.inflight = make(map[key]*inflight)
	}
	return p
}

// PageSize returns the pool's frame size.
func (p *Pool) PageSize() int { return p.pageSize }

// Readahead returns the configured prefetch window in pages.
func (p *Pool) Readahead() int { return p.readahead }

// Register adds a backing file of numPages pages and returns its handle.
// If src also implements RangeSource the readahead pipeline batches its
// prefetches into single range reads.
func (p *Pool) Register(src Source, numPages int) *Handle {
	h := &Handle{
		pool:     p,
		id:       p.nextSrc.Add(1),
		src:      src,
		numPages: numPages,
	}
	h.rs, _ = src.(RangeSource)
	h.vec, _ = src.(VectorSource)
	h.ra.last = -2 // so page 0 never looks like the successor of a previous access
	return h
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Hits:            p.hits.Load(),
		Misses:          p.misses.Load(),
		Evictions:       p.evictions.Load(),
		ReadaheadIssued: p.raIssued.Load(),
		ReadaheadUsed:   p.raUsed.Load(),
		ReadaheadWasted: p.raWasted.Load(),
		Sources:         int64(p.nextSrc.Load()),
	}
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		s.ResidentPages += int64(len(sh.frames))
		s.CapacityPages += int64(sh.capFrames)
		sh.mu.Unlock()
	}
	return s
}

// Close stops the background fetchers. Handles stay usable (fault paths
// are synchronous); further prefetch requests are dropped. It exists so
// tests can reconfigure the global pool without leaking goroutines.
func (p *Pool) Close() {
	p.qmu.Lock()
	defer p.qmu.Unlock()
	if !p.closed {
		p.closed = true
		if p.fetchQ != nil {
			close(p.fetchQ)
		}
	}
}

func (p *Pool) shardFor(k key) *shard {
	// Mix source and page so consecutive pages of one file spread over
	// shards (a sequential scan would otherwise convoy on one mutex).
	h := k.src*0x9E3779B97F4A7C15 + uint64(k.page)*0xBF58476D1CE4E5B9
	return &p.shards[(h^(h>>29))%numShards]
}

// touchLocked records a hit on f: probation promotes to protected,
// protected moves to MRU, and a prefetched frame graduates to consumed.
// Caller holds the shard mutex.
func (sh *shard) touchLocked(p *Pool, f *frame) {
	if f.prefetched {
		f.prefetched = false
		p.raUsed.Add(1)
	}
	if f.hot {
		sh.protected.remove(f)
		sh.protected.pushMRU(f)
		return
	}
	sh.probation.remove(f)
	f.hot = true
	sh.protected.pushMRU(f)
	// Keep the protected queue from monopolizing the shard: demote its
	// LRU back to probation-MRU past 3/4 of capacity, where eviction can
	// reach it if it stays cold.
	if sh.capFrames > 0 {
		protCap := sh.capFrames * 3 / 4
		if protCap < 1 {
			protCap = 1
		}
		for sh.protected.n > protCap && sh.protected.head != nil {
			d := sh.protected.head
			sh.protected.remove(d)
			d.hot = false
			sh.probation.pushMRU(d)
		}
	}
}

// admitLocked inserts a new frame in probation and evicts past capacity.
// Caller holds the shard mutex; the key must not be resident.
func (sh *shard) admitLocked(p *Pool, k key, buf []byte, prefetched bool) *frame {
	f := &frame{key: k, buf: buf, prefetched: prefetched}
	sh.frames[k] = f
	sh.probation.pushMRU(f)
	sh.evictLocked(p)
	return f
}

// evictLocked drops frames until the shard is within capacity, draining
// probation before protected and skipping pinned frames. If every frame
// is pinned the shard runs over capacity rather than blocking.
func (sh *shard) evictLocked(p *Pool) {
	if sh.capFrames == 0 {
		return
	}
	for len(sh.frames) > sh.capFrames {
		v := victim(&sh.probation)
		if v == nil {
			v = victim(&sh.protected)
		}
		if v == nil {
			return // everything pinned
		}
		if v.hot {
			sh.protected.remove(v)
		} else {
			sh.probation.remove(v)
		}
		delete(sh.frames, v.key)
		p.evictions.Add(1)
		if v.prefetched {
			p.raWasted.Add(1)
		}
	}
}

// victim returns the least-recently-used unpinned frame of l, nil if all
// are pinned (or the list is empty).
func victim(l *list) *frame {
	for f := l.head; f != nil; f = f.next {
		if f.pins == 0 {
			return f
		}
	}
	return nil
}

// Handle is one registered backing file's view of the pool. It is safe
// for concurrent use; every session and fork reading the same snapshot
// file shares one handle (and therefore one copy of every resident
// page).
type Handle struct {
	pool     *Pool
	id       uint64
	src      Source
	rs       RangeSource
	vec      VectorSource
	numPages int

	ra struct {
		sync.Mutex
		last   int // last page accessed
		streak int // consecutive sequential accesses
		next   int // first page not yet scheduled for prefetch
	}

	// raNext mirrors ra.next so the hit path can skip the ra mutex
	// entirely while deep inside a scheduled window (see noteAccess).
	raNext atomic.Int64
}

// NumPages returns the registered page count.
func (h *Handle) NumPages() int { return h.numPages }

// Pool returns the pool this handle belongs to.
func (h *Handle) Pool() *Pool { return h.pool }

// Get returns page's content, from a resident frame or by faulting it
// in. The returned buffer is the shared resident copy — callers must
// not mutate it. Concurrent Gets of one page share a single backing
// read.
func (h *Handle) Get(page int) ([]byte, error) {
	if page < 0 || page >= h.numPages {
		return nil, fmt.Errorf("bufpool: page %d out of range (%d pages)", page, h.numPages)
	}
	k := key{h.id, uint32(page)}
	sh := h.pool.shardFor(k)
	sh.mu.Lock()
	if f := sh.frames[k]; f != nil {
		sh.touchLocked(h.pool, f)
		buf := f.buf
		sh.mu.Unlock()
		h.pool.hits.Add(1)
		h.noteAccess(page)
		return buf, nil
	}
	sh.mu.Unlock()
	h.pool.misses.Add(1)
	buf, err := h.fault(sh, k)
	if err != nil {
		return nil, err
	}
	h.noteAccess(page)
	return buf, nil
}

// GetPage implements storage.PageCache.
func (h *Handle) GetPage(i int) ([]byte, error) { return h.Get(i) }

// fault reads page k from the backing source, deduplicating concurrent
// faulters through the shard's in-flight table, and admits the result.
//
// When the miss continues an established sequential streak on a
// RangeSource-backed handle, the fault reads the whole readahead window
// in ONE positioned read and admits every page of it (batched demand
// fault). Unlike the asynchronous fetchers this helps even on a single
// CPU — a cold sequential scan pays one syscall per window instead of
// one per page — and it cannot fall behind the consumer, because the
// consumer is the one doing it.
func (h *Handle) fault(sh *shard, k key) ([]byte, error) {
	sh.mu.Lock()
	if f := sh.frames[k]; f != nil { // raced in (another faulter or the prefetcher)
		sh.touchLocked(h.pool, f)
		buf := f.buf
		sh.mu.Unlock()
		return buf, nil
	}
	if c := sh.inflight[k]; c != nil {
		sh.mu.Unlock()
		<-c.done
		return c.buf, c.err
	}
	c := &inflight{done: make(chan struct{})}
	sh.inflight[k] = c
	sh.mu.Unlock()

	var buf []byte
	var err error
	if hi := h.batchSpan(int(k.page)); hi > int(k.page)+1 {
		buf, err = h.faultRange(k, hi)
	} else {
		buf = make([]byte, h.pool.pageSize)
		err = h.src.ReadPage(int(k.page), buf)
	}

	sh.mu.Lock()
	delete(sh.inflight, k)
	if err == nil {
		if f := sh.frames[k]; f == nil {
			sh.admitLocked(h.pool, k, buf, false)
		} else {
			buf = f.buf // a prefetch admitted it while we read; share its frame
		}
	}
	sh.mu.Unlock()
	c.buf, c.err = buf, err
	close(c.done)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// batchSpan decides whether the miss on page should fault a whole window:
// it returns the half-open end of the span to read (page+1 — i.e. no
// batching — unless the handle has a RangeSource, readahead is on, and
// this access continues a sequential streak past the threshold). The span
// is clipped at the file end and at the first already-resident page, and
// ra.next advances past it so the async scheduler doesn't re-request the
// same pages.
func (h *Handle) batchSpan(page int) int {
	p := h.pool
	if (h.rs == nil && h.vec == nil) || p.readahead <= 0 {
		return page + 1
	}
	hi := page + 1
	h.ra.Lock()
	if page == h.ra.last+1 && h.ra.streak+1 >= seqThreshold {
		hi = page + p.readahead
		if hi > h.numPages {
			hi = h.numPages
		}
		if h.ra.next < hi {
			h.ra.next = hi
			h.raNext.Store(int64(hi))
		}
	}
	h.ra.Unlock()
	// Clip the span at resident pages, probing at a coarse stride: on a
	// cold scan (nothing resident — the common case) this costs a few
	// shard locks per window instead of one per page; on a half-warm
	// pool a hit at a probe point narrows to a fine scan, bounding read
	// amplification to one stride's worth of already-resident pages.
	const probeStride = 8
	for j := page + probeStride; j < hi; j += probeStride {
		if h.resident(j) {
			for f := j - probeStride + 1; f <= j; f++ {
				if h.resident(f) {
					return f
				}
			}
		}
	}
	return hi
}

// faultRange reads pages [k.page, hi) with one positioned read, admits
// the tail pages as prefetched, and returns the demand page's buffer for
// the caller (who holds the in-flight slot for it) to admit normally.
// With a VectorSource the pages scatter straight into their frames; the
// RangeSource fallback stages through recycled scratch and copies out.
func (h *Handle) faultRange(k key, hi int) ([]byte, error) {
	p := h.pool
	n := hi - int(k.page)
	if h.vec != nil {
		frames := make([][]byte, n)
		for i := range frames {
			frames[i] = make([]byte, p.pageSize)
		}
		if err := h.vec.ReadPageVec(int(k.page), frames); err == nil {
			for i := 1; i < n; i++ {
				p.admitPrefetchedOwned(h, int(k.page)+i, frames[i])
			}
			return frames[0], nil
		}
		// Fall through to the staged path (and ultimately the single-page
		// path) rather than failing the demand read on a vec error.
	}
	sp := p.rangeScratch.Get().(*[]byte)
	defer p.rangeScratch.Put(sp)
	big := (*sp)[:n*p.pageSize]
	if err := h.rs.ReadPageRange(int(k.page), big); err != nil {
		// Fall back to the single-page path: the range may fail (short
		// file tail) where the demand page alone would not.
		buf := make([]byte, p.pageSize)
		return buf, h.src.ReadPage(int(k.page), buf)
	}
	for i := 1; i < n; i++ {
		p.admitPrefetched(h, int(k.page)+i, big[i*p.pageSize:(i+1)*p.pageSize])
	}
	buf := make([]byte, p.pageSize)
	copy(buf, big[:p.pageSize])
	return buf, nil
}

// Pin returns page's content and exempts its frame from eviction until
// a matching Unpin. Pins nest (refcounted). Use it for a working set
// that must stay resident under pressure — e.g. the WAL-replay page set
// during a chain boot.
func (h *Handle) Pin(page int) ([]byte, error) {
	k := key{h.id, uint32(page)}
	sh := h.pool.shardFor(k)
	for {
		sh.mu.Lock()
		if f := sh.frames[k]; f != nil {
			f.pins++
			sh.touchLocked(h.pool, f)
			buf := f.buf
			sh.mu.Unlock()
			return buf, nil
		}
		sh.mu.Unlock()
		if _, err := h.Get(page); err != nil {
			return nil, err
		}
		// Loop: the freshly admitted frame could in principle be evicted
		// between Get and re-lock; the retry pins it before that window
		// can recur.
	}
}

// Unpin releases one Pin of page. Unpinning a non-resident or unpinned
// page is a no-op (the frame may have been evicted while pinned count
// was zero — never while it was held).
func (h *Handle) Unpin(page int) {
	k := key{h.id, uint32(page)}
	sh := h.pool.shardFor(k)
	sh.mu.Lock()
	if f := sh.frames[k]; f != nil && f.pins > 0 {
		f.pins--
	}
	sh.mu.Unlock()
}

// resident reports whether page is resident, without touching recency.
func (h *Handle) resident(page int) bool {
	k := key{h.id, uint32(page)}
	sh := h.pool.shardFor(k)
	sh.mu.Lock()
	_, ok := sh.frames[k]
	sh.mu.Unlock()
	return ok
}
