package bufpool

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource serves deterministic page content and counts backing reads.
type fakeSource struct {
	pages int
	reads atomic.Int64
	fail  int32 // page that errors, -1 for none
}

func newFakeSource(pages int) *fakeSource { return &fakeSource{pages: pages, fail: -1} }

func fill(dst []byte, page int) {
	binary.LittleEndian.PutUint64(dst, uint64(page)*0x1234567+1)
	for i := 8; i < len(dst); i++ {
		dst[i] = byte(page + i)
	}
}

func (s *fakeSource) ReadPage(i int, dst []byte) error {
	if int32(i) == s.fail {
		return fmt.Errorf("fake: page %d failed", i)
	}
	s.reads.Add(1)
	fill(dst, i)
	return nil
}

// rangeSource adds the batched-read capability.
type rangeSource struct {
	fakeSource
	rangeReads atomic.Int64
}

func newRangeSource(pages int) *rangeSource {
	return &rangeSource{fakeSource: fakeSource{pages: pages, fail: -1}}
}

func (s *rangeSource) ReadPageRange(lo int, dst []byte) error {
	s.rangeReads.Add(1)
	const ps = 4096
	for i := 0; i*ps < len(dst); i++ {
		fill(dst[i*ps:(i+1)*ps], lo+i)
	}
	return nil
}

func wantPage(t *testing.T, buf []byte, page int) {
	t.Helper()
	want := make([]byte, len(buf))
	fill(want, page)
	if !bytes.Equal(buf, want) {
		t.Fatalf("page %d content mismatch", page)
	}
}

func TestGetHitMiss(t *testing.T) {
	src := newFakeSource(10)
	p := New(0, 4096, 0)
	h := p.Register(src, 10)
	for i := 0; i < 10; i++ {
		buf, err := h.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, i)
	}
	if got := src.reads.Load(); got != 10 {
		t.Fatalf("backing reads = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := h.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.reads.Load(); got != 10 {
		t.Fatalf("warm re-read hit backing store: reads = %d, want 10", got)
	}
	st := p.Stats()
	if st.Hits != 10 || st.Misses != 10 || st.ResidentPages != 10 {
		t.Fatalf("stats = %+v, want 10 hits / 10 misses / 10 resident", st)
	}
	if _, err := h.Get(10); err == nil {
		t.Fatal("out-of-range Get succeeded")
	}
	if _, err := h.Get(-1); err == nil {
		t.Fatal("negative Get succeeded")
	}
}

func TestReadError(t *testing.T) {
	src := newFakeSource(4)
	src.fail = 2
	p := New(0, 4096, 0)
	h := p.Register(src, 4)
	if _, err := h.Get(2); err == nil {
		t.Fatal("Get of failing page succeeded")
	}
	if st := p.Stats(); st.ResidentPages != 0 {
		t.Fatalf("failed read left %d resident frames", st.ResidentPages)
	}
	src.fail = -1
	buf, err := h.Get(2)
	if err != nil {
		t.Fatalf("Get after transient error: %v", err)
	}
	wantPage(t, buf, 2)
}

// TestScanResistance pins the 2Q property the pool exists for: a hot set
// touched twice survives a cold sequential sweep much larger than the
// pool.
func TestScanResistance(t *testing.T) {
	const numPages = 4096
	src := newFakeSource(numPages)
	// 16 shards × minShardFrames(8) = 128 frames minimum pool.
	p := New(128*4096, 4096, 0)
	h := p.Register(src, numPages)

	// Establish a hot set: touch twice so every page reaches protected.
	hot := []int{0, 7, 19, 100, 256, 511}
	for pass := 0; pass < 2; pass++ {
		for _, pg := range hot {
			if _, err := h.Get(pg); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Cold streaming sweep over everything else, once each.
	for pg := 600; pg < numPages; pg++ {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	reads := src.reads.Load()
	for _, pg := range hot {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.reads.Load(); got != reads {
		t.Fatalf("cold sweep evicted %d hot pages (plain LRU would evict all)", got-reads)
	}
	if st := p.Stats(); st.Evictions == 0 {
		t.Fatal("sweep caused no evictions — pool not under pressure, test is vacuous")
	}
}

func TestPinSurvivesPressure(t *testing.T) {
	const numPages = 2048
	src := newFakeSource(numPages)
	p := New(128*4096, 4096, 0)
	h := p.Register(src, numPages)

	pinned := []int{3, 42, 999}
	for _, pg := range pinned {
		buf, err := h.Pin(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	for pg := 1000; pg < numPages; pg++ {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	reads := src.reads.Load()
	for _, pg := range pinned {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.reads.Load(); got != reads {
		t.Fatalf("pressure evicted %d pinned pages", got-reads)
	}
	for _, pg := range pinned {
		h.Unpin(pg)
	}
	// Unpinning an unpinned or absent page must be harmless.
	h.Unpin(3)
	h.Unpin(numPages - 1)
}

func TestCapacityBounded(t *testing.T) {
	const numPages = 8192
	src := newFakeSource(numPages)
	p := New(128*4096, 4096, 0)
	h := p.Register(src, numPages)
	for pg := 0; pg < numPages; pg++ {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.CapacityPages == 0 {
		t.Fatal("bounded pool reports unbounded capacity")
	}
	if st.ResidentPages > st.CapacityPages {
		t.Fatalf("resident %d exceeds capacity %d", st.ResidentPages, st.CapacityPages)
	}
	if st.Evictions == 0 {
		t.Fatal("full sweep over 64× capacity caused no evictions")
	}
}

func TestReadaheadSequential(t *testing.T) {
	const numPages = 1024
	src := newRangeSource(numPages)
	p := New(0, 4096, 32)
	defer p.Close()
	h := p.Register(src, numPages)

	// Walk far enough to establish a streak (threshold 4). The miss that
	// completes the streak faults its whole window in one range read
	// (batched demand fault), so [3, 35) is resident synchronously —
	// deterministic at any GOMAXPROCS, no polling for background work.
	for pg := 0; pg <= 7; pg++ {
		buf, err := h.Get(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	if !h.resident(20) || !h.resident(34) {
		t.Fatal("batched demand fault did not land the readahead window")
	}
	st := p.Stats()
	if st.ReadaheadIssued == 0 {
		t.Fatal("sequential scan triggered no readahead")
	}
	if src.rangeReads.Load() == 0 {
		t.Fatal("RangeSource capability unused")
	}
	// Resume the scan: the prefetched window must serve as pool hits.
	for pg := 8; pg < 35; pg++ {
		buf, err := h.Get(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	st = p.Stats()
	if st.ReadaheadUsed == 0 {
		t.Fatal("no prefetched page was consumed")
	}
	if st.Hits == 0 {
		t.Fatal("scan with readahead produced zero pool hits")
	}
	// Finish the file to exercise the re-arm path end to end.
	for pg := 35; pg < numPages; pg++ {
		buf, err := h.Get(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	if st := p.Stats(); st.Misses >= numPages/4 {
		t.Fatalf("sequential scan with readahead still missed %d of %d pages", st.Misses, numPages)
	}
}

// TestReadaheadAsync pins GOMAXPROCS above one so noteAccess schedules
// the background fetchers (on a single CPU it relies on the batched
// demand fault alone) and checks they land pages ahead of the cursor.
func TestReadaheadAsync(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	const numPages = 4096
	src := newRangeSource(numPages)
	p := New(0, 4096, 32)
	defer p.Close()
	h := p.Register(src, numPages)
	for pg := 0; pg < numPages; pg++ {
		buf, err := h.Get(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	st := p.Stats()
	if st.ReadaheadIssued == 0 {
		t.Fatal("async scan triggered no readahead")
	}
	if st.ReadaheadUsed == 0 {
		t.Fatal("no prefetched page was consumed")
	}
	if st.Misses >= numPages/4 {
		t.Fatalf("scan with async readahead still missed %d of %d pages", st.Misses, numPages)
	}
}

func TestReadaheadDisabled(t *testing.T) {
	src := newRangeSource(256)
	p := New(0, 4096, 0)
	h := p.Register(src, 256)
	for pg := 0; pg < 256; pg++ {
		if _, err := h.Get(pg); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if st := p.Stats(); st.ReadaheadIssued != 0 {
		t.Fatalf("readahead=0 still prefetched %d pages", st.ReadaheadIssued)
	}
}

func TestRandomAccessNoReadahead(t *testing.T) {
	src := newRangeSource(1024)
	p := New(0, 4096, 32)
	defer p.Close()
	h := p.Register(src, 1024)
	// Strided access never forms a streak of seqThreshold.
	for i := 0; i < 300; i++ {
		if _, err := h.Get((i * 37) % 1024); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if st := p.Stats(); st.ReadaheadIssued != 0 {
		t.Fatalf("random access triggered %d prefetches", st.ReadaheadIssued)
	}
}

func TestWarm(t *testing.T) {
	src := newRangeSource(512)
	p := New(0, 4096, 0)
	defer p.Close()
	h := p.Register(src, 512)
	pages := []int{1, 2, 3, 4, 10, 11, 12, 100}
	h.Warm(pages)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, pg := range pages {
			if !h.resident(pg) {
				all = false
				break
			}
		}
		if all {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	reads := src.reads.Load() + src.rangeReads.Load()
	for _, pg := range pages {
		buf, err := h.Get(pg)
		if err != nil {
			t.Fatal(err)
		}
		wantPage(t, buf, pg)
	}
	if got := src.reads.Load() + src.rangeReads.Load(); got != reads {
		t.Fatalf("warmed pages still faulted: %d extra backing reads", got-reads)
	}
}

// TestConcurrentSharedHandle hammers one handle from many goroutines
// mixing scans and point reads; run under -race this is the pool's core
// concurrency oracle.
func TestConcurrentSharedHandle(t *testing.T) {
	const numPages = 2048
	src := newRangeSource(numPages)
	p := New(256*4096, 4096, 16)
	defer p.Close()
	h := p.Register(src, numPages)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 { // scanner
				for pg := 0; pg < numPages; pg++ {
					buf, err := h.Get(pg)
					if err != nil {
						errs <- err
						return
					}
					if binary.LittleEndian.Uint64(buf) != uint64(pg)*0x1234567+1 {
						errs <- fmt.Errorf("goroutine %d: page %d corrupt", g, pg)
						return
					}
				}
			} else { // point reader
				for i := 0; i < numPages; i++ {
					pg := (i*131 + g*17) % numPages
					buf, err := h.Get(pg)
					if err != nil {
						errs <- err
						return
					}
					if binary.LittleEndian.Uint64(buf) != uint64(pg)*0x1234567+1 {
						errs <- fmt.Errorf("goroutine %d: page %d corrupt", g, pg)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentFaultDedupe verifies concurrent cold faults of the same
// page share one backing read.
func TestConcurrentFaultDedupe(t *testing.T) {
	src := newFakeSource(1)
	p := New(0, 4096, 0)
	h := p.Register(src, 1)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := h.Get(0); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := src.reads.Load(); got != 1 {
		t.Fatalf("32 concurrent faulters issued %d backing reads, want 1", got)
	}
}

func TestSetupActive(t *testing.T) {
	t.Cleanup(func() { Setup(DefaultCapacityMB, DefaultReadahead) })
	Setup(8, 4)
	p := Active()
	if p == nil {
		t.Fatal("Active returned nil after Setup(8, 4)")
	}
	if p.Readahead() != 4 {
		t.Fatalf("readahead = %d, want 4", p.Readahead())
	}
	if st := p.Stats(); st.CapacityPages == 0 {
		t.Fatal("8MB pool reports unbounded")
	}
	Setup(0, 0)
	if Active() != nil {
		t.Fatal("Active returned a pool after Setup(0, 0) disabled it")
	}
	Setup(16, 8)
	if Active() == nil {
		t.Fatal("re-enable after disable failed")
	}
}
