package bufpool

import (
	"os"
	"strconv"
	"sync"
)

// The process-wide pool. Every snapshot file opened by persist registers
// with the active pool, so all sessions, forks, daemons' chain stores,
// and shards in one process share frames — that is the whole point: a
// page is resident once per machine, not once per session.

// Defaults when neither Setup nor the environment configured the pool.
const (
	DefaultCapacityMB = 256
	DefaultReadahead  = 32
)

// Environment knobs, honored by the lazy default (flags override them
// via Setup in every cmd main).
const (
	CapacityEnvVar  = "TREEBENCH_BUFPOOL_MB"
	ReadaheadEnvVar = "TREEBENCH_READAHEAD"
)

var (
	gmu         sync.Mutex
	gpool       *Pool
	gdisabled   bool
	gconfigured bool
)

// Setup configures the process-wide pool: capacityMB of frames and a
// readahead window in pages. capacityMB <= 0 disables the pool entirely
// — lazy bases fall back to their legacy unbounded per-base cells (the
// RSS baseline mode the cache benchmark compares against). Call it once
// at process start, before snapshots load; a later call replaces the
// pool for *new* registrations only (existing handles keep the old one).
func Setup(capacityMB, readahead int) {
	gmu.Lock()
	defer gmu.Unlock()
	if gpool != nil {
		gpool.Close()
		gpool = nil
	}
	gconfigured = true
	if capacityMB <= 0 {
		gdisabled = true
		return
	}
	gdisabled = false
	gpool = New(int64(capacityMB)<<20, defaultPageSize, readahead)
}

// Active returns the process-wide pool, creating it on first use from
// the environment (TREEBENCH_BUFPOOL_MB / TREEBENCH_READAHEAD) or the
// defaults. Returns nil when the pool is disabled.
func Active() *Pool {
	gmu.Lock()
	defer gmu.Unlock()
	if gdisabled {
		return nil
	}
	if gpool == nil {
		capMB, ra := DefaultCapacityMB, DefaultReadahead
		if !gconfigured {
			capMB = envInt(CapacityEnvVar, capMB)
			ra = envInt(ReadaheadEnvVar, ra)
		}
		gconfigured = true
		if capMB <= 0 {
			gdisabled = true
			return nil
		}
		gpool = New(int64(capMB)<<20, defaultPageSize, ra)
	}
	return gpool
}

// CapacityMBFromEnv returns TREEBENCH_BUFPOOL_MB's value, or def when
// unset or malformed. Used by cmd mains as the flag default.
func CapacityMBFromEnv(def int) int { return envInt(CapacityEnvVar, def) }

// ReadaheadFromEnv returns TREEBENCH_READAHEAD's value, or def when
// unset or malformed.
func ReadaheadFromEnv(def int) int { return envInt(ReadaheadEnvVar, def) }

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// defaultPageSize mirrors storage.PageSize; bufpool cannot import
// storage (storage imports bufpool's consumers) so the constant is
// duplicated and asserted equal by an equivalence test in persist.
const defaultPageSize = 4096
