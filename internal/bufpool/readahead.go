// Asynchronous readahead: per-handle sequential-access detection feeding
// a small pool of background fetchers that pull upcoming pages into
// frames before the consumer asks for them.
//
// Detection is deliberately simple and cheap — a streak counter on
// consecutive page numbers per handle. Tree descents and point lookups
// jump around and never reach the threshold; Extent.Partition and
// ScanBatched walk extent files page by page and trip it within four
// accesses. Once a streak is established, the handle schedules a window
// of pages ahead of the cursor and re-arms at the window's midpoint, so
// the fetchers stay roughly half a window ahead of the consumer
// (pipelining, not one stall per window).
//
// Fetchers prefer RangeSource: one positioned read covering the whole
// window into a scratch buffer, then a per-page copy into individual
// frames. Pages that became resident while the request sat in the queue
// are skipped; pages a consumer faults concurrently are admitted
// first-wins (content is identical — the backing file is immutable).
//
// Readahead has a synchronous half too: a demand miss that continues an
// established streak faults the whole window in one positioned read
// (Handle.faultRange). On machines with spare CPUs the async fetchers
// usually get there first and the batched fault never triggers; on a
// single CPU — where a background goroutine can never outrun the
// consumer — the batched fault is what delivers the sequential-scan win,
// by syscall amortization instead of overlap.
package bufpool

import "runtime"

// numFetchers is the size of the background fetcher pool. Two is enough
// to overlap one range read with one copy-out on small machines while
// keeping speculative I/O from swamping real faults.
const numFetchers = 2

// fetchQueueLen bounds queued prefetch requests; when the queue is full
// new requests are dropped (the consumer's synchronous fault path is
// always correct, readahead is purely advisory).
const fetchQueueLen = 64

type fetchReq struct {
	h      *Handle
	lo, hi int // half-open page range
}

// noteAccess advances the handle's sequential detector and schedules
// prefetch when a streak is established. Called on every Get, hit or
// miss — a scan over a half-warm pool still wants the cold tail
// prefetched.
func (h *Handle) noteAccess(page int) {
	p := h.pool
	if p.readahead <= 0 {
		return
	}
	// Fast path, no lock: deep inside an already-scheduled window there
	// is nothing to schedule and re-arm is far away — skip the mutex the
	// hit path would otherwise take on every sequential Get. ra.last
	// goes stale while skipping; the streak simply re-establishes (four
	// hits on resident pages) once the cursor nears the frontier.
	if n := h.raNext.Load(); n > 0 && int64(page) < n-int64(p.readahead/2) {
		return
	}
	async := runtime.GOMAXPROCS(0) > 1
	var req fetchReq
	h.ra.Lock()
	switch {
	case page == h.ra.last+1:
		h.ra.streak++
	case page == h.ra.last:
		// Re-read of the same page: neither extends nor breaks a streak.
	default:
		h.ra.streak = 1
		h.ra.next = 0
		h.raNext.Store(0)
	}
	h.ra.last = page
	if h.ra.streak >= seqThreshold {
		start := page + 1
		if start < h.ra.next {
			// Already scheduled ahead; re-arm only once the cursor is
			// within half a window of the prefetch frontier.
			if h.ra.next-start >= p.readahead/2 {
				h.ra.Unlock()
				return
			}
			start = h.ra.next
		}
		end := start + p.readahead
		if end > h.numPages {
			end = h.numPages
		}
		if start < end {
			h.ra.next = end
			h.raNext.Store(int64(end))
			req = fetchReq{h: h, lo: start, hi: end}
		}
	}
	h.ra.Unlock()
	// With a single CPU a background fetcher can never outrun the
	// consumer — it would only re-read (or bookkeep) pages the batched
	// demand fault is already bringing in. Streak tracking above still
	// runs: it is what arms the batched fault.
	if req.h != nil && async {
		p.enqueue(req)
	}
}

// Warm asynchronously loads the given pages into the pool. Pages are
// coalesced into maximal consecutive runs so a RangeSource-backed handle
// warms with few large reads. The page list must be sorted ascending; it
// is used by ChainStore boot to pre-fault the WAL-replay page set.
// Warming is advisory like all prefetch — under eviction pressure the
// pool keeps whatever 2Q decides (pin explicitly if residency must be
// guaranteed).
func (h *Handle) Warm(pages []int) {
	if len(pages) == 0 {
		return
	}
	lo := pages[0]
	prev := pages[0]
	flush := func(lo, hi int) {
		for s := lo; s < hi; s += warmChunk {
			e := s + warmChunk
			if e > hi {
				e = hi
			}
			h.pool.enqueue(fetchReq{h: h, lo: s, hi: e})
		}
	}
	for _, pg := range pages[1:] {
		if pg == prev || pg == prev+1 {
			prev = pg
			continue
		}
		flush(lo, prev+1)
		lo, prev = pg, pg
	}
	flush(lo, prev+1)
}

// warmChunk caps one warm request's range so scratch buffers stay small
// and requests interleave fairly with demand readahead.
const warmChunk = 64

// enqueue hands a prefetch request to the fetcher pool, starting it on
// first use. Requests are dropped when the queue is full or the pool is
// closed — prefetch is advisory.
func (p *Pool) enqueue(req fetchReq) {
	p.fetchOnce.Do(func() {
		p.qmu.Lock()
		if !p.closed {
			p.fetchQ = make(chan fetchReq, fetchQueueLen)
			for i := 0; i < numFetchers; i++ {
				go p.fetcher()
			}
		}
		p.qmu.Unlock()
	})
	p.qmu.RLock()
	if !p.closed && p.fetchQ != nil {
		select {
		case p.fetchQ <- req:
		default:
		}
	}
	p.qmu.RUnlock()
}

func (p *Pool) fetcher() {
	var scratch []byte
	for req := range p.fetchQ {
		scratch = p.prefetch(req, scratch)
	}
}

// prefetch materializes one request: trim pages already resident at the
// head and tail of the range, claim an in-flight slot for each remaining
// page (so a concurrent demand fault WAITS for this read instead of
// issuing its own), read the claimed pages (one range read when the
// source supports it, per-page reads otherwise), and admit them.
// Returns the (possibly grown) scratch buffer for reuse.
func (p *Pool) prefetch(req fetchReq, scratch []byte) []byte {
	h := req.h
	lo, hi := req.lo, req.hi
	for lo < hi && h.resident(lo) {
		lo++
	}
	for hi > lo && h.resident(hi-1) {
		hi--
	}
	if lo >= hi {
		return scratch
	}

	// Claim in-flight slots. Pages already resident or already being
	// read (by a faulter or another fetcher) are skipped — first wins.
	// One done channel covers the whole batch: every claim resolves when
	// the one backing read (and its admits) completes.
	type claim struct {
		pg int
		c  *inflight
	}
	done := make(chan struct{})
	claims := make([]claim, 0, hi-lo)
	for pg := lo; pg < hi; pg++ {
		k := key{h.id, uint32(pg)}
		sh := p.shardFor(k)
		sh.mu.Lock()
		if sh.frames[k] == nil && sh.inflight[k] == nil {
			c := &inflight{done: done}
			sh.inflight[k] = c
			claims = append(claims, claim{pg, c})
		}
		sh.mu.Unlock()
	}
	if len(claims) == 0 {
		return scratch
	}

	// Read and admit the claims one contiguous run at a time. A
	// VectorSource scatters each run straight into its frames (one
	// syscall, no staging copy); a RangeSource stages through scratch;
	// a plain Source reads page by page.
	for start := 0; start < len(claims); {
		end := start + 1
		for end < len(claims) && claims[end].pg == claims[end-1].pg+1 {
			end++
		}
		run := claims[start:end]
		start = end

		switch {
		case h.vec != nil:
			frames := make([][]byte, len(run))
			for i := range frames {
				frames[i] = make([]byte, p.pageSize)
			}
			err := h.vec.ReadPageVec(run[0].pg, frames)
			for i, cl := range run {
				if err != nil {
					p.completeClaim(h, cl.pg, cl.c, nil, err)
				} else {
					p.completeClaim(h, cl.pg, cl.c, frames[i], nil)
				}
			}
		case h.rs != nil:
			need := len(run) * p.pageSize
			if cap(scratch) < need {
				scratch = make([]byte, need)
			}
			buf := scratch[:need]
			err := h.rs.ReadPageRange(run[0].pg, buf)
			for i, cl := range run {
				var fb []byte
				if err == nil {
					fb = make([]byte, p.pageSize)
					copy(fb, buf[i*p.pageSize:])
				}
				p.completeClaim(h, cl.pg, cl.c, fb, err)
			}
		default:
			for _, cl := range run {
				fb := make([]byte, p.pageSize)
				err := h.src.ReadPage(cl.pg, fb)
				if err != nil {
					fb = nil
				}
				p.completeClaim(h, cl.pg, cl.c, fb, err)
			}
		}
	}
	close(done)
	return scratch
}

// completeClaim resolves one claimed in-flight slot: on success the page
// is admitted as prefetched and waiters get the frame's buffer; on error
// waiters get the error (exactly like a failed demand fault). The shared
// done channel is closed by the caller after every claim resolves —
// waiters on an early page block a little longer than strictly needed,
// which is harmless (the content is already admitted by then).
func (p *Pool) completeClaim(h *Handle, page int, c *inflight, buf []byte, err error) {
	k := key{h.id, uint32(page)}
	sh := p.shardFor(k)
	sh.mu.Lock()
	delete(sh.inflight, k)
	if err == nil {
		if f := sh.frames[k]; f == nil {
			sh.admitLocked(p, k, buf, true)
			p.raIssued.Add(1)
		} else {
			buf = f.buf
		}
	}
	sh.mu.Unlock()
	c.buf, c.err = buf, err
}

// admitPrefetched copies src into a fresh frame and admits it, unless
// the page is already resident or a demand fault for it is in flight.
// Used by the batched demand-fault path for the window's tail pages.
func (p *Pool) admitPrefetched(h *Handle, page int, src []byte) {
	k := key{h.id, uint32(page)}
	sh := p.shardFor(k)
	sh.mu.Lock()
	if sh.frames[k] == nil && sh.inflight[k] == nil {
		fb := make([]byte, p.pageSize)
		copy(fb, src)
		sh.admitLocked(p, k, fb, true)
		p.raIssued.Add(1)
	}
	sh.mu.Unlock()
}

// admitPrefetchedOwned admits buf directly (caller hands over ownership
// — a vectored read already landed the bytes in their final frame).
func (p *Pool) admitPrefetchedOwned(h *Handle, page int, buf []byte) {
	k := key{h.id, uint32(page)}
	sh := p.shardFor(k)
	sh.mu.Lock()
	if sh.frames[k] == nil && sh.inflight[k] == nil {
		sh.admitLocked(p, k, buf, true)
		p.raIssued.Add(1)
	}
	sh.mu.Unlock()
}
