package cache

import (
	"sync"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

// Server is the server-side page cache in front of the disk. It implements
// storage.Pager.
//
// A Server may be shared by concurrent readers (parallel query chunks, or
// several clients of one daemon): mu serializes every public method, since
// even a read hit mutates LRU recency, and the meter charges happen under
// the same lock. The Client below stays single-owner — each session or
// chunk fork builds its own.
type Server struct {
	disk  *storage.Disk
	meter *sim.Meter
	mu    sync.Mutex
	lru   *lru
}

// NewServer returns a server cache of capacityBytes over disk, charging
// events to meter.
func NewServer(disk *storage.Disk, meter *sim.Meter, capacityBytes int64) *Server {
	return &Server{
		disk:  disk,
		meter: meter,
		lru:   newLRU(int(capacityBytes / storage.PageSize)),
	}
}

// Read implements storage.Pager: a hit is free, a miss reads from disk.
// The returned buffer is always the canonical storage-layer copy; on a
// hit it is re-fetched meter-free (the entries are bufferless — see the
// package comment), which on a pool-backed base may transparently
// re-fault an evicted page at real-I/O cost only.
func (s *Server) Read(id storage.PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.lru.get(id); e != nil {
		s.meter.ServerHit()
		return s.disk.Read(id)
	}
	buf, err := s.disk.Read(id)
	if err != nil {
		return nil, err
	}
	s.meter.DiskRead()
	s.admit(id, false)
	return buf, nil
}

// Buffer returns page id's canonical buffer without charging the meter
// or touching recency — the data path behind a simulated *client* hit,
// where the traffic model says nothing moved but the caller still needs
// the bytes.
func (s *Server) Buffer(id storage.PageID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk.Read(id)
}

// Write implements storage.Pager: marks the page dirty in the cache.
func (s *Server) Write(id storage.PageID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.lru.peek(id); e != nil {
		e.dirty = true
		return nil
	}
	// Page not resident (e.g. handed straight down from a client
	// eviction): pull it in dirty.
	if _, err := s.disk.Read(id); err != nil {
		return err
	}
	s.admit(id, true)
	return nil
}

// Alloc implements storage.Pager. The fresh page is resident and dirty.
func (s *Server) Alloc() (storage.PageID, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, buf, err := s.disk.Alloc()
	if err != nil {
		return 0, nil, err
	}
	s.admit(id, true)
	return id, buf, nil
}

func (s *Server) admit(id storage.PageID, dirty bool) {
	if evicted := s.lru.put(id, dirty); evicted != nil && evicted.dirty {
		s.meter.DiskWrite()
	}
}

// Flush writes every dirty resident page to disk, leaving the cache warm.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lru.each(func(e *lruEntry) {
		if e.dirty {
			e.dirty = false
			s.meter.DiskWrite()
		}
	})
}

// Shutdown flushes and empties the cache (the paper's cold restart between
// measured queries).
func (s *Server) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.lru.drain() {
		if e.dirty {
			s.meter.DiskWrite()
		}
	}
}

// Resident returns the number of cached pages.
func (s *Server) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.len()
}

// Client is the client-side page cache. Every miss is one RPC to the
// server carrying one page back; scan operators can additionally batch
// their upcoming pages into one RPC via Prefetch. It implements
// storage.Pager and is what the object layer and indexes run on.
type Client struct {
	server *Server
	meter  *sim.Meter
	lru    *lru

	// readAhead is the batch size Prefetch-aware scans use; 1 disables
	// prefetching.
	readAhead int
}

// NewClient returns a client cache of capacityBytes over srv.
func NewClient(srv *Server, meter *sim.Meter, capacityBytes int64) *Client {
	return &Client{
		server:    srv,
		meter:     meter,
		lru:       newLRU(int(capacityBytes / storage.PageSize)),
		readAhead: 1,
	}
}

// SetReadAhead sets the batch size Prefetch-aware scans use (n ≤ 1
// disables prefetching). O2 itself fetched page by page; batching is the
// obvious follow-up to the paper's observation that cache tuning "reduces
// both IOs and RPCs".
func (c *Client) SetReadAhead(n int) {
	if n < 1 {
		n = 1
	}
	c.readAhead = n
}

// ReadAheadBatch reports the configured prefetch batch size (≥1); scan
// operators use it to size their Prefetch calls.
func (c *Client) ReadAheadBatch() int { return c.readAhead }

// Prefetch pulls the non-resident pages of ids into the cache with a
// single RPC. Scan operators call it with the pages they are about to
// read; unlike blind sequential read-ahead, nothing is fetched that the
// caller did not ask for.
func (c *Client) Prefetch(ids []storage.PageID) {
	fetched := 0
	for _, id := range ids {
		if c.lru.peek(id) != nil {
			continue
		}
		if _, err := c.server.Read(id); err != nil {
			continue
		}
		c.meter.ServerToClient()
		c.admit(id, false)
		fetched++
	}
	if fetched > 0 {
		c.meter.RPC(fetched * storage.PageSize)
	}
}

// Costs exposes the session meter this client charges, so structures
// driven through the Pager interface (index backends) can charge
// CPU-level events — comparisons, bloom probes — to the same fork that
// pays for the page I/O (the index.CostSource hook).
func (c *Client) Costs() *sim.Meter { return c.meter }

// Read implements storage.Pager. Like the server, a hit returns the
// canonical storage-layer buffer fetched meter-free; only the simulated
// traffic differs between hit and miss.
func (c *Client) Read(id storage.PageID) ([]byte, error) {
	if e := c.lru.get(id); e != nil {
		c.meter.ClientHit()
		return c.server.Buffer(id)
	}
	c.meter.ClientFault()
	c.meter.RPC(storage.PageSize)
	buf, err := c.server.Read(id)
	if err != nil {
		return nil, err
	}
	c.meter.ServerToClient()
	c.admit(id, false)
	return buf, nil
}

// Write implements storage.Pager: marks the page dirty client-side. The
// write travels to the server when the page is evicted or flushed.
func (c *Client) Write(id storage.PageID) error {
	if e := c.lru.peek(id); e != nil {
		e.dirty = true
		return nil
	}
	// Not resident: fetch, then dirty.
	if _, err := c.Read(id); err != nil {
		return err
	}
	c.lru.peek(id).dirty = true
	return nil
}

// Alloc implements storage.Pager.
func (c *Client) Alloc() (storage.PageID, []byte, error) {
	c.meter.RPC(64) // allocation request
	id, buf, err := c.server.Alloc()
	if err != nil {
		return 0, nil, err
	}
	c.admit(id, true)
	return id, buf, nil
}

func (c *Client) admit(id storage.PageID, dirty bool) {
	if evicted := c.lru.put(id, dirty); evicted != nil && evicted.dirty {
		c.writeBack(evicted)
	}
}

func (c *Client) writeBack(e *lruEntry) {
	c.meter.RPC(storage.PageSize)
	// Data is shared in-process; only the traffic is simulated. The
	// server's Write pulls the page into its cache dirty if needed.
	_ = c.server.Write(e.id)
}

// Flush pushes every dirty client page to the server and flushes the
// server to disk.
func (c *Client) Flush() {
	c.lru.each(func(e *lruEntry) {
		if e.dirty {
			e.dirty = false
			c.writeBack(e)
		}
	})
	c.server.Flush()
}

// Shutdown flushes and empties both cache levels (cold restart).
func (c *Client) Shutdown() {
	for _, e := range c.lru.drain() {
		if e.dirty {
			c.writeBack(e)
		}
	}
	c.server.Shutdown()
}

// Resident returns the number of client-resident pages.
func (c *Client) Resident() int { return c.lru.len() }

// Hierarchy builds the standard disk→server→client stack for one session.
func Hierarchy(disk *storage.Disk, meter *sim.Meter, machine sim.Machine) (*Server, *Client) {
	srv := NewServer(disk, meter, machine.ServerCache)
	cli := NewClient(srv, meter, machine.ClientCache)
	return srv, cli
}
