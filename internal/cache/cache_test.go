package cache

import (
	"testing"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

func newStack(t *testing.T, serverBytes, clientBytes int64) (*storage.Disk, *sim.Meter, *Server, *Client) {
	t.Helper()
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv := NewServer(disk, meter, serverBytes)
	cli := NewClient(srv, meter, clientBytes)
	return disk, meter, srv, cli
}

func allocPages(t *testing.T, p storage.Pager, n int) []storage.PageID {
	t.Helper()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, buf, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := p.Write(id); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

func TestClientHitAvoidsRPC(t *testing.T) {
	_, meter, _, cli := newStack(t, 4*storage.PageSize, 4*storage.PageSize)
	ids := allocPages(t, cli, 1)
	meter.Reset()
	for i := 0; i < 10; i++ {
		if _, err := cli.Read(ids[0]); err != nil {
			t.Fatal(err)
		}
	}
	if meter.N.ClientHits != 10 || meter.N.ClientFaults != 0 || meter.N.RPCs != 0 {
		t.Fatalf("unexpected counters: %+v", meter.N)
	}
	if meter.Elapsed() != 0 {
		t.Fatalf("client hits should be free, took %v", meter.Elapsed())
	}
}

func TestMissPathChargesEveryLevel(t *testing.T) {
	_, meter, _, cli := newStack(t, 4*storage.PageSize, 4*storage.PageSize)
	ids := allocPages(t, cli, 1)
	cli.Shutdown() // cold caches
	meter.Reset()
	if _, err := cli.Read(ids[0]); err != nil {
		t.Fatal(err)
	}
	n := meter.N
	if n.ClientFaults != 1 || n.RPCs != 1 || n.DiskReads != 1 || n.ServerToClient != 1 {
		t.Fatalf("cold read counters: %+v", n)
	}
	// Warm at server only: shut down just the client by evicting.
	if got := meter.Model.PageRead + meter.Model.RPC; meter.Elapsed() != got {
		t.Fatalf("cold read cost %v, want %v", meter.Elapsed(), got)
	}
}

func TestServerHitAfterClientEviction(t *testing.T) {
	// Client holds 2 pages, server holds 8: a page evicted from the
	// client should still hit the server cache (SC2CC without disk I/O).
	_, meter, _, cli := newStack(t, 8*storage.PageSize, 2*storage.PageSize)
	ids := allocPages(t, cli, 3)
	cli.Flush()
	meter.Reset()
	// Touch all three in a cycle; client capacity 2 forces misses, but
	// all pages stay resident at the server.
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			if _, err := cli.Read(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if meter.N.DiskReads != 0 {
		t.Fatalf("server-resident pages hit the disk: %+v", meter.N)
	}
	if meter.N.ServerHits == 0 || meter.N.RPCs == 0 {
		t.Fatalf("expected server hits over RPC: %+v", meter.N)
	}
}

func TestDirtyEvictionWritesThrough(t *testing.T) {
	disk, meter, srv, cli := newStack(t, storage.PageSize, storage.PageSize)
	_ = disk
	// Two pages through a 1-page client and 1-page server: every dirty
	// eviction must charge an RPC, and server evictions must write to disk.
	allocPages(t, cli, 2)
	cli.Flush()
	if meter.N.DiskWrites == 0 {
		t.Fatalf("dirty pages never reached the disk: %+v", meter.N)
	}
	if srv.Resident() > 1 || cli.Resident() > 1 {
		t.Fatalf("capacity exceeded: srv=%d cli=%d", srv.Resident(), cli.Resident())
	}
}

func TestShutdownColdRestart(t *testing.T) {
	_, meter, srv, cli := newStack(t, 8*storage.PageSize, 8*storage.PageSize)
	ids := allocPages(t, cli, 4)
	cli.Shutdown()
	if srv.Resident() != 0 || cli.Resident() != 0 {
		t.Fatalf("caches not empty after shutdown: srv=%d cli=%d", srv.Resident(), cli.Resident())
	}
	meter.Reset()
	for _, id := range ids {
		if _, err := cli.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	if meter.N.DiskReads != 4 {
		t.Fatalf("cold reads hit disk %d times, want 4", meter.N.DiskReads)
	}
}

func TestDataSurvivesEvictionChurn(t *testing.T) {
	// Write distinct bytes to 50 pages through a tiny cache stack, then
	// read them all back cold and verify contents.
	_, _, _, cli := newStack(t, 2*storage.PageSize, 2*storage.PageSize)
	ids := allocPages(t, cli, 50)
	cli.Shutdown()
	for i, id := range ids {
		buf, err := cli.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("page %d content = %d, want %d", i, buf[0], i)
		}
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := newLRU(2)
	l.put(1, false)
	l.put(2, false)
	l.get(1) // 2 is now LRU
	if ev := l.put(3, false); ev == nil || ev.id != 2 {
		t.Fatalf("evicted %v, want page 2", ev)
	}
	if l.peek(1) == nil || l.peek(3) == nil || l.peek(2) != nil {
		t.Fatal("wrong residency after eviction")
	}
}

func TestLRUDrainOrder(t *testing.T) {
	l := newLRU(3)
	l.put(1, false)
	l.put(2, false)
	l.put(3, false)
	l.get(1)
	got := l.drain()
	if len(got) != 3 || got[0].id != 2 || got[1].id != 3 || got[2].id != 1 {
		t.Fatalf("drain order: %v,%v,%v", got[0].id, got[1].id, got[2].id)
	}
	if l.len() != 0 {
		t.Fatalf("len after drain = %d", l.len())
	}
}

func TestScanMissRateMatchesCacheGeometry(t *testing.T) {
	// Sequentially scanning a file much larger than the client cache
	// twice must miss on every page both times (LRU pessimal case),
	// reproducing the paper's cold + repeat scan behaviour.
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv := NewServer(disk, meter, 10*storage.PageSize)
	cli := NewClient(srv, meter, 20*storage.PageSize)
	ids := allocPages(t, cli, 100)
	cli.Shutdown()
	meter.Reset()
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			if _, err := cli.Read(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if meter.N.ClientFaults != 200 {
		t.Fatalf("faults = %d, want 200 (sequential flooding defeats LRU)", meter.N.ClientFaults)
	}
	if got := meter.N.ClientMissRate(); got != 100 {
		t.Fatalf("miss rate = %v%%, want 100%%", got)
	}
}

func TestHierarchyGeometry(t *testing.T) {
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv, cli := Hierarchy(disk, meter, sim.DefaultMachine())
	if srv.lru.capacity != 1024 {
		t.Fatalf("server capacity = %d pages, want 1024 (4MB)", srv.lru.capacity)
	}
	if cli.lru.capacity != 8192 {
		t.Fatalf("client capacity = %d pages, want 8192 (32MB: 'it can hold 8000 pages')", cli.lru.capacity)
	}
}

func TestPrefetchBatchesRPCs(t *testing.T) {
	_, meter, _, cli := newStack(t, 256*storage.PageSize, 256*storage.PageSize)
	ids := allocPages(t, cli, 64)
	cli.Shutdown()
	cli.SetReadAhead(8)
	if cli.ReadAheadBatch() != 8 {
		t.Fatal("batch size not stored")
	}
	meter.Reset()
	for i := 0; i < len(ids); i += 8 {
		cli.Prefetch(ids[i : i+8])
		for _, id := range ids[i : i+8] {
			if _, err := cli.Read(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 8 batched RPCs instead of 64; all page traffic unchanged.
	if meter.N.RPCs != 8 {
		t.Fatalf("RPCs = %d, want 8", meter.N.RPCs)
	}
	if meter.N.DiskReads != 64 || meter.N.ServerToClient != 64 {
		t.Fatalf("page traffic wrong: %+v", meter.N)
	}
	// Prefetched pages never fault.
	if meter.N.ClientFaults != 0 {
		t.Fatalf("faults = %d", meter.N.ClientFaults)
	}
}

func TestPrefetchSkipsResidentAndBadPages(t *testing.T) {
	_, meter, _, cli := newStack(t, 256*storage.PageSize, 256*storage.PageSize)
	ids := allocPages(t, cli, 4)
	// All resident: a prefetch is free.
	meter.Reset()
	cli.Prefetch(ids)
	if meter.N.RPCs != 0 {
		t.Fatalf("resident prefetch charged %d RPCs", meter.N.RPCs)
	}
	// Unallocated pages are skipped quietly.
	cli.Shutdown()
	meter.Reset()
	cli.Prefetch([]storage.PageID{ids[0], storage.PageID(9999)})
	if meter.N.RPCs != 1 || meter.N.DiskReads != 1 {
		t.Fatalf("bad-page prefetch: %+v", meter.N)
	}
}

func TestFileScanUsesPrefetch(t *testing.T) {
	// A file scan through a prefetch-enabled client collapses its RPC
	// count by the batch size.
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv := NewServer(disk, meter, 256*storage.PageSize)
	cli := NewClient(srv, meter, 256*storage.PageSize)
	f := &storage.File{Name: "f"}
	for i := 0; i < 2000; i++ {
		if _, err := f.Append(cli, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	scan := func() int64 {
		cli.Shutdown()
		meter.Reset()
		if err := f.Scan(cli, func(storage.Rid, []byte) (bool, error) { return true, nil }); err != nil {
			t.Fatal(err)
		}
		return meter.N.RPCs
	}
	cli.SetReadAhead(1)
	plain := scan()
	cli.SetReadAhead(16)
	batched := scan()
	if batched*8 > plain {
		t.Fatalf("prefetch scan RPCs %d vs plain %d: no batching", batched, plain)
	}
}
