package cache

// LRU is a generic fixed-capacity least-recently-used map: the backbone of
// the page caches below and of the query-plan cache in internal/oql. Not
// safe for concurrent use on its own; wrap it in a lock when callers share
// it (see oql.PlanCache).
type LRU[K comparable, V any] struct {
	capacity   int
	entries    map[K]*lruNode[K, V]
	head, tail *lruNode[K, V] // head = most recently used
}

type lruNode[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruNode[K, V]
}

// NewLRU returns an empty LRU holding at most capacity entries (minimum 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{capacity: capacity, entries: make(map[K]*lruNode[K, V], capacity)}
}

// Get returns the value for k and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	if n := l.entries[k]; n != nil {
		l.moveToFront(n)
		return n.val, true
	}
	var zero V
	return zero, false
}

// Peek returns the value for k without touching recency.
func (l *LRU[K, V]) Peek(k K) (V, bool) {
	if n := l.entries[k]; n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces k's value and marks it most recently used. When
// the insert evicts the least recently used entry, its key and value are
// returned with evicted == true so the caller can dispose of it (the page
// caches flush dirty pages down a level).
func (l *LRU[K, V]) Put(k K, v V) (evKey K, evVal V, evicted bool) {
	if n := l.entries[k]; n != nil {
		n.val = v
		l.moveToFront(n)
		return
	}
	if len(l.entries) >= l.capacity {
		ev := l.tail
		l.remove(ev)
		evKey, evVal, evicted = ev.key, ev.val, true
	}
	n := &lruNode[K, V]{key: k, val: v}
	l.pushFront(n)
	l.entries[k] = n
	return
}

// Remove deletes k, reporting whether it was present.
func (l *LRU[K, V]) Remove(k K) bool {
	n := l.entries[k]
	if n == nil {
		return false
	}
	l.remove(n)
	return true
}

// Len returns the number of entries.
func (l *LRU[K, V]) Len() int { return len(l.entries) }

// Cap returns the capacity.
func (l *LRU[K, V]) Cap() int { return l.capacity }

// Each calls fn on every entry, least recently used first, without
// touching recency. fn must not add or remove entries.
func (l *LRU[K, V]) Each(fn func(K, V)) {
	for n := l.tail; n != nil; n = n.prev {
		fn(n.key, n.val)
	}
}

// Drain removes and returns all values, least recently used first.
func (l *LRU[K, V]) Drain() []V {
	out := make([]V, 0, len(l.entries))
	for l.tail != nil {
		n := l.tail
		l.remove(n)
		out = append(out, n.val)
	}
	return out
}

func (l *LRU[K, V]) remove(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	delete(l.entries, n.key)
}

func (l *LRU[K, V]) pushFront(n *lruNode[K, V]) {
	n.next = l.head
	n.prev = nil
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU[K, V]) moveToFront(n *lruNode[K, V]) {
	if l.head == n {
		return
	}
	l.remove(n)
	l.pushFront(n)
	l.entries[n.key] = n
}
