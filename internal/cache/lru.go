// Package cache implements O2's two-level buffer management: a server page
// cache in front of the disk and a client page cache in front of the
// server, talking over a metered RPC boundary (§2 runs both on one
// machine, so an RPC is cheap but counted).
//
// The caches simulate traffic, not buffer copies: entries alias the disk's
// page buffers, and the meter records the events the paper's Figure 3
// schema reports (client faults, RPC count and volume, server-to-client and
// disk-to-server page movements, miss rates). Eviction of a dirty page
// charges the write path below it.
package cache

import "treebench/internal/storage"

// lruEntry is a node of the intrusive LRU list.
type lruEntry struct {
	id         storage.PageID
	buf        []byte
	dirty      bool
	prev, next *lruEntry
}

// lru is a fixed-capacity page LRU. Not safe for concurrent use; the engine
// is single-session like the paper's setup ("only one client running").
type lru struct {
	capacity int
	entries  map[storage.PageID]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{capacity: capacity, entries: make(map[storage.PageID]*lruEntry, capacity)}
}

func (l *lru) get(id storage.PageID) *lruEntry {
	e := l.entries[id]
	if e != nil {
		l.moveToFront(e)
	}
	return e
}

// peek returns the entry without touching recency.
func (l *lru) peek(id storage.PageID) *lruEntry { return l.entries[id] }

// put inserts a page, evicting the LRU entry if needed. The evicted entry
// (nil if none) is returned so the caller can propagate dirty data down.
func (l *lru) put(id storage.PageID, buf []byte, dirty bool) (evicted *lruEntry) {
	if e := l.entries[id]; e != nil {
		e.buf = buf
		e.dirty = e.dirty || dirty
		l.moveToFront(e)
		return nil
	}
	if len(l.entries) >= l.capacity {
		evicted = l.tail
		l.remove(evicted)
	}
	e := &lruEntry{id: id, buf: buf, dirty: dirty}
	l.pushFront(e)
	l.entries[id] = e
	return evicted
}

func (l *lru) remove(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(l.entries, e.id)
}

func (l *lru) pushFront(e *lruEntry) {
	e.next = l.head
	e.prev = nil
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lru) moveToFront(e *lruEntry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
	l.entries[e.id] = e
}

func (l *lru) len() int { return len(l.entries) }

// drain removes and returns all entries, LRU first.
func (l *lru) drain() []*lruEntry {
	out := make([]*lruEntry, 0, len(l.entries))
	for l.tail != nil {
		e := l.tail
		l.remove(e)
		out = append(out, e)
	}
	return out
}
