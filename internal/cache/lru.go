// Package cache implements O2's two-level buffer management: a server page
// cache in front of the disk and a client page cache in front of the
// server, talking over a metered RPC boundary (§2 runs both on one
// machine, so an RPC is cheap but counted).
//
// The caches simulate traffic, not buffer copies: the meter records the
// events the paper's Figure 3 schema reports (client faults, RPC count
// and volume, server-to-client and disk-to-server page movements, miss
// rates). Entries hold no buffers at all — they are pure
// residency/recency bookkeeping; a hit re-fetches the canonical buffer
// from the storage layer below, meter-free. Keeping the entries
// bufferless is what lets the process-wide buffer pool (internal/bufpool)
// actually bound RSS: if every session's simulated LRU aliased page
// buffers, an evicted pool frame would stay referenced and the GC could
// never reclaim it. Eviction of a dirty page charges the write path
// below it.
package cache

import "treebench/internal/storage"

// lruEntry is one cached page: the unit the two page caches move around.
type lruEntry struct {
	id    storage.PageID
	dirty bool
}

// lru is a fixed-capacity page LRU over the generic LRU. Not safe for
// concurrent use on its own; the Server wraps its instance in a lock so
// parallel query chunks can share it.
type lru struct {
	capacity int
	m        *LRU[storage.PageID, *lruEntry]
}

func newLRU(capacity int) *lru {
	m := NewLRU[storage.PageID, *lruEntry](capacity)
	return &lru{capacity: m.Cap(), m: m}
}

func (l *lru) get(id storage.PageID) *lruEntry {
	e, _ := l.m.Get(id)
	return e
}

// peek returns the entry without touching recency.
func (l *lru) peek(id storage.PageID) *lruEntry {
	e, _ := l.m.Peek(id)
	return e
}

// put inserts a page, evicting the LRU entry if needed. The evicted entry
// (nil if none) is returned so the caller can propagate dirty data down.
func (l *lru) put(id storage.PageID, dirty bool) (evicted *lruEntry) {
	if e, ok := l.m.Peek(id); ok {
		e.dirty = e.dirty || dirty
		l.m.Get(id) // touch recency
		return nil
	}
	_, evicted, _ = l.m.Put(id, &lruEntry{id: id, dirty: dirty})
	return evicted
}

func (l *lru) len() int { return l.m.Len() }

// each visits all entries, LRU first, without touching recency.
func (l *lru) each(fn func(*lruEntry)) {
	l.m.Each(func(_ storage.PageID, e *lruEntry) { fn(e) })
}

// drain removes and returns all entries, LRU first.
func (l *lru) drain() []*lruEntry { return l.m.Drain() }
