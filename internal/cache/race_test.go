package cache

import (
	"sync"
	"testing"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

// TestServerConcurrentReaders is the shared-server race gate (run with
// -race): one Server fronts many private Clients reading the same pages
// concurrently — the chunk-worker topology, where per-worker client
// caches all fault through the session's single server cache. Even a pure
// read workload mutates the server's LRU recency list and its meter, so
// every public Server method must serialize; this test fails under -race
// if any path escapes the lock.
func TestServerConcurrentReaders(t *testing.T) {
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv := NewServer(disk, meter, 8*storage.PageSize)

	setup := NewClient(srv, meter, 4*storage.PageSize)
	const pages = 32
	ids := make([]storage.PageID, pages)
	for i := range ids {
		id, buf, err := setup.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := setup.Write(id); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	setup.Flush()

	const readers = 8
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Each reader owns a private client and meter; the server
			// below is shared and charges its own meter under its lock.
			m := sim.NewMeter(sim.DefaultCostModel())
			cli := NewClient(srv, m, 4*storage.PageSize)
			for pass := 0; pass < 4; pass++ {
				for i := 0; i < pages; i++ {
					// Stagger start offsets so readers collide on
					// different pages at the same time.
					id := ids[(i+r*4)%pages]
					buf, err := cli.Read(id)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
					if buf[0] != byte((i+r*4)%pages) {
						t.Errorf("reader %d: page %v corrupted", r, id)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if srv.Resident() == 0 {
		t.Fatal("server cache empty after concurrent reads")
	}
}
