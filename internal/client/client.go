// Package client is the Go client for treebenchd: connect (with retry),
// speak the internal/wire protocol, and get back typed results, server
// stats, and errors. cmd/oqlload drives it; tests use it to pin down
// remote/local result equivalence.
package client

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"treebench/internal/wire"
)

// Options tune a connection.
type Options struct {
	// ConnectTimeout bounds each dial attempt (default 5s).
	ConnectTimeout time.Duration
	// RetryAttempts is how many times to retry a failed dial or handshake
	// before giving up (default 0: fail on the first error). Retries make
	// "start the daemon, immediately run the client" scripts reliable
	// while the daemon is still generating its first replica.
	RetryAttempts int
	// RetryDelay separates attempts (default 250ms).
	RetryDelay time.Duration
	// IOTimeout bounds each request/response exchange; 0 disables
	// deadlines (a slow query then blocks until the server answers).
	IOTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.ConnectTimeout == 0 {
		o.ConnectTimeout = 5 * time.Second
	}
	if o.RetryDelay == 0 {
		o.RetryDelay = 250 * time.Millisecond
	}
	return o
}

// QueryOptions tune one query.
type QueryOptions struct {
	// Warm keeps the session's replica caches warm instead of the paper's
	// default cold restart.
	Warm bool
	// Heuristic selects the legacy optimizer instead of the cost-based one.
	Heuristic bool
	// MaxRows caps the sample rows shipped back (default 10).
	MaxRows int
}

// ServerError is a typed error response from the daemon.
type ServerError struct {
	Code byte
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server error (%s): %s", codeName(e.Code), e.Msg)
}

func codeName(c byte) string {
	switch c {
	case wire.CodeQuery:
		return "query"
	case wire.CodeBusy:
		return "busy"
	case wire.CodeTimeout:
		return "timeout"
	case wire.CodeShutdown:
		return "shutdown"
	case wire.CodeProto:
		return "protocol"
	case wire.CodeShard:
		return "shard"
	case wire.CodeReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("code %d", c)
	}
}

// Client is one connection to a treebenchd.
type Client struct {
	conn     net.Conn
	bw       *bufio.Writer
	opts     Options
	label    string
	shardIdx uint32
	shardCnt uint32
	snapKey  string
}

// Dial connects and handshakes, retrying per opts.
func Dial(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	var lastErr error
	for attempt := 0; attempt <= opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(opts.RetryDelay)
		}
		c, err := dialOnce(addr, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: connect %s: %w", addr, lastErr)
}

func dialOnce(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.ConnectTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, bw: bufio.NewWriter(conn), opts: opts}
	conn.SetDeadline(time.Now().Add(opts.ConnectTimeout))
	typ, payload, err := c.roundTrip(wire.TypeHello, (&wire.Hello{Version: wire.Version}).Encode())
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	if typ != wire.TypeServerHello {
		conn.Close()
		return nil, asServerError(typ, payload)
	}
	h, err := wire.DecodeServerHello(payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.label = h.Label
	c.shardIdx, c.shardCnt = h.ShardIdx, h.ShardCnt
	c.snapKey = h.SnapshotKey
	return c, nil
}

// Label names the database the server serves.
func (c *Client) Label() string { return c.label }

// Shard returns the server's shard identity from the handshake;
// (0, 0) for a standalone single-node server.
func (c *Client) Shard() (idx, cnt uint32) { return c.shardIdx, c.shardCnt }

// SnapshotKey returns the content-addressed key of the snapshot
// configuration the server serves ("" when unknown).
func (c *Client) SnapshotKey() string { return c.snapKey }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return wire.ReadFrame(c.conn)
}

// request sends one frame and reads the response under IOTimeout.
func (c *Client) request(typ byte, payload []byte) (byte, []byte, error) {
	if c.opts.IOTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	return c.roundTrip(typ, payload)
}

func asServerError(typ byte, payload []byte) error {
	if typ != wire.TypeError {
		return fmt.Errorf("client: unexpected frame type %d", typ)
	}
	e, err := wire.DecodeError(payload)
	if err != nil {
		return err
	}
	return &ServerError{Code: e.Code, Msg: e.Msg}
}

// Query executes one OQL statement remotely. A failed query returns a
// *ServerError with CodeQuery; admission rejection and timeouts come back
// as CodeBusy and CodeTimeout.
func (c *Client) Query(stmt string, opts QueryOptions) (*wire.Result, error) {
	if opts.MaxRows == 0 {
		opts.MaxRows = 10
	}
	q := &wire.Query{Stmt: stmt, Warm: opts.Warm, MaxRows: uint32(opts.MaxRows)}
	if opts.Heuristic {
		q.Strategy = wire.StrategyHeuristic
	}
	typ, payload, err := c.request(wire.TypeQuery, q.Encode())
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeResult {
		return nil, asServerError(typ, payload)
	}
	return wire.DecodeResult(payload)
}

// Scatter asks a shard to execute its slice of one OQL statement and
// returns the mergeable partial result. Failures surface like Query's.
func (c *Client) Scatter(s *wire.Scatter) (*wire.Partial, error) {
	typ, payload, err := c.request(wire.TypeScatter, s.Encode())
	if err != nil {
		return nil, err
	}
	if typ != wire.TypePartial {
		return nil, asServerError(typ, payload)
	}
	return wire.DecodePartial(payload)
}

// Commit asks the server to apply and durably commit the next update
// wave on its MVCC chain. The frame carries no payload: which wave runs
// is the server's decision (always head.version+1), which is what keeps
// replay deterministic. A read-only server answers with CodeReadOnly.
func (c *Client) Commit() (*wire.CommitResult, error) {
	typ, payload, err := c.request(wire.TypeCommit, nil)
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeCommitResult {
		return nil, asServerError(typ, payload)
	}
	return wire.DecodeCommitResult(payload)
}

// ClusterStats fetches a coordinator's per-shard stats view. Against a
// plain treebenchd the server answers with a protocol error.
func (c *Client) ClusterStats() (*wire.ClusterStats, error) {
	typ, payload, err := c.request(wire.TypeClusterStatsReq, nil)
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeClusterStats {
		return nil, asServerError(typ, payload)
	}
	return wire.DecodeClusterStats(payload)
}

// Stats fetches the server's counters snapshot.
func (c *Client) Stats() (*wire.Stats, error) {
	typ, payload, err := c.request(wire.TypeStatsReq, nil)
	if err != nil {
		return nil, err
	}
	if typ != wire.TypeStats {
		return nil, asServerError(typ, payload)
	}
	return wire.DecodeStats(payload)
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	typ, payload, err := c.request(wire.TypePing, nil)
	if err != nil {
		return err
	}
	if typ != wire.TypePong {
		return asServerError(typ, payload)
	}
	return nil
}
