package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"treebench/internal/wire"
)

// serveHandshake accepts one connection on ln and answers its Hello.
func serveHandshake(t *testing.T, ln net.Listener, label string) {
	t.Helper()
	c, err := ln.Accept()
	if err != nil {
		return
	}
	defer c.Close()
	typ, payload, err := wire.ReadFrame(c)
	if err != nil || typ != wire.TypeHello {
		t.Errorf("handshake: type %d, %v", typ, err)
		return
	}
	if _, err := wire.DecodeHello(payload); err != nil {
		t.Errorf("handshake: %v", err)
		return
	}
	sh := &wire.ServerHello{Version: wire.Version, Label: label}
	if err := wire.WriteFrame(c, wire.TypeServerHello, sh.Encode()); err != nil {
		t.Errorf("handshake: %v", err)
	}
}

// TestDialRetriesUntilServerUp pins the startup race the retry knob exists
// for: the client starts dialing before anything listens, and succeeds once
// the server comes up on the same address.
func TestDialRetriesUntilServerUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here — yet

	ready := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		late, err := net.Listen("tcp", addr)
		if err != nil {
			t.Errorf("relisten: %v", err)
			close(ready)
			return
		}
		defer late.Close()
		close(ready)
		serveHandshake(t, late, "late db")
	}()

	cl, err := Dial(addr, Options{RetryAttempts: 40, RetryDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial with retries: %v", err)
	}
	defer cl.Close()
	<-ready
	if cl.Label() != "late db" {
		t.Fatalf("label = %q, want %q", cl.Label(), "late db")
	}
}

// TestDialFailsWithoutRetries checks the default is fail-fast.
func TestDialFailsWithoutRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{ConnectTimeout: 500 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded with no listener")
	}
}

// TestDialRejectsWrongGreeting checks a server speaking garbage is reported
// as a protocol error, not accepted.
func TestDialRejectsWrongGreeting(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		wire.ReadFrame(c)
		wire.WriteFrame(c, wire.TypeError, (&wire.Error{Code: wire.CodeProto, Msg: "go away"}).Encode())
	}()
	_, err = Dial(ln.Addr().String(), Options{ConnectTimeout: time.Second})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeProto {
		t.Fatalf("want protocol ServerError, got %v", err)
	}
}
