package collection

import "treebench/internal/storage"

// ScanBatched visits the collection's elements in insertion order,
// delivered in slices of at most capacity rids. Page traffic is identical
// to Scan: one record read per chunk, and a sub-batch never spans a chunk
// boundary, so each delivery happens with no pager activity since its
// chunk's read. The slice passed to fn is reused between calls; fn
// returning false stops the scan.
func ScanBatched(p storage.Pager, head storage.Rid, capacity int, fn func([]storage.Rid) (bool, error)) error {
	if capacity < 1 {
		capacity = 1
	}
	batch := make([]storage.Rid, 0, capacity)
	for cur := head; !cur.IsNil(); {
		rec, err := storage.Get(p, cur)
		if err != nil {
			return err
		}
		next, elems, err := decodeChunk(rec)
		if err != nil {
			return err
		}
		for off := 0; off < len(elems); off += storage.EncodedRidLen {
			r, err := storage.DecodeRid(elems[off:])
			if err != nil {
				return err
			}
			batch = append(batch, r)
			if len(batch) >= capacity {
				ok, err := fn(batch)
				if err != nil || !ok {
					return err
				}
				batch = batch[:0]
			}
		}
		// Chunk boundary: flush before the next chunk's record read.
		if len(batch) > 0 {
			ok, err := fn(batch)
			if err != nil || !ok {
				return err
			}
			batch = batch[:0]
		}
		cur = next
	}
	return nil
}
