// Package collection implements persistent sets of object references.
//
// A collection is a chain of chunk records, each holding up to ChunkElems
// Rids. Where the chunks live reproduces O2's placement rule from §2: a
// set whose encoding fits in a page is stored as a record in the same file
// as its owner ("although, in reality, not always right next to them"),
// while larger sets — the 1:1000 clients sets — are "always stored in a
// separate file".
package collection

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/storage"
)

// chunk layout: next Rid (8 bytes) | count uint16 | count × Rid.
const chunkHeaderLen = storage.EncodedRidLen + 2

// ChunkElems is the maximum elements per chunk: chosen so a full chunk
// (8 + 2 + 420×8 = 3370 bytes) fits a heap page with its reserve.
const ChunkElems = 420

// InlineThreshold is the element count up to which a set is placed in its
// owner's file. Beyond it the encoded set would approach the page size, so
// it goes to a separate file (§2's 4K rule).
const InlineThreshold = ChunkElems

// Create writes rids as a new collection into file f and returns the Rid of
// the head chunk. An empty collection is a single empty chunk, so the head
// Rid always exists.
func Create(p storage.Pager, f *storage.File, rids []storage.Rid) (storage.Rid, error) {
	nChunks := (len(rids) + ChunkElems - 1) / ChunkElems
	if nChunks == 0 {
		nChunks = 1
	}
	// Write chunks back to front so each can point at its successor.
	next := storage.NilRid
	var head storage.Rid
	for c := nChunks - 1; c >= 0; c-- {
		lo := c * ChunkElems
		hi := lo + ChunkElems
		if hi > len(rids) {
			hi = len(rids)
		}
		part := rids[lo:hi]
		rec := make([]byte, 0, chunkHeaderLen+len(part)*storage.EncodedRidLen)
		rec = next.Encode(rec)
		var cnt [2]byte
		binary.LittleEndian.PutUint16(cnt[:], uint16(len(part)))
		rec = append(rec, cnt[:]...)
		for _, r := range part {
			rec = r.Encode(rec)
		}
		rid, err := f.Append(p, rec)
		if err != nil {
			return storage.Rid{}, err
		}
		next = rid
		head = rid
	}
	return head, nil
}

// decodeChunk splits a chunk record into its next pointer and elements.
func decodeChunk(rec []byte) (next storage.Rid, elems []byte, err error) {
	if len(rec) < chunkHeaderLen {
		return storage.Rid{}, nil, fmt.Errorf("collection: short chunk (%d bytes)", len(rec))
	}
	next, err = storage.DecodeRid(rec)
	if err != nil {
		return storage.Rid{}, nil, err
	}
	count := int(binary.LittleEndian.Uint16(rec[storage.EncodedRidLen:]))
	body := rec[chunkHeaderLen:]
	if len(body) < count*storage.EncodedRidLen {
		return storage.Rid{}, nil, fmt.Errorf("collection: chunk claims %d elements in %d bytes", count, len(body))
	}
	return next, body[:count*storage.EncodedRidLen], nil
}

// Scan calls fn for each element, in insertion order, following the chunk
// chain. Chunk reads are charged through the pager like any record access.
func Scan(p storage.Pager, head storage.Rid, fn func(storage.Rid) (bool, error)) error {
	for cur := head; !cur.IsNil(); {
		rec, err := storage.Get(p, cur)
		if err != nil {
			return err
		}
		next, elems, err := decodeChunk(rec)
		if err != nil {
			return err
		}
		for off := 0; off < len(elems); off += storage.EncodedRidLen {
			r, err := storage.DecodeRid(elems[off:])
			if err != nil {
				return err
			}
			ok, err := fn(r)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		cur = next
	}
	return nil
}

// Elems reads the whole collection into a slice.
func Elems(p storage.Pager, head storage.Rid) ([]storage.Rid, error) {
	var out []storage.Rid
	err := Scan(p, head, func(r storage.Rid) (bool, error) {
		out = append(out, r)
		return true, nil
	})
	return out, err
}

// Len returns the number of elements, reading only chunk headers (it still
// pages in each chunk, as the real system would).
func Len(p storage.Pager, head storage.Rid) (int, error) {
	total := 0
	for cur := head; !cur.IsNil(); {
		rec, err := storage.Get(p, cur)
		if err != nil {
			return 0, err
		}
		next, elems, err := decodeChunk(rec)
		if err != nil {
			return 0, err
		}
		total += len(elems) / storage.EncodedRidLen
		cur = next
	}
	return total, nil
}

// EncodedSize returns the total bytes a collection of n elements occupies,
// used by the database generator to apply the §2 placement rule.
func EncodedSize(n int) int {
	chunks := (n + ChunkElems - 1) / ChunkElems
	if chunks == 0 {
		chunks = 1
	}
	return chunks*chunkHeaderLen + n*storage.EncodedRidLen
}

// Add appends one element to the collection whose head chunk is at head.
// The element goes into the first chunk with room (chunks grow in place
// while their page has space, exactly the "growing collections" the page
// reserve exists for); a full chain gains a new chunk in file f.
func Add(p storage.Pager, f *storage.File, head storage.Rid, elem storage.Rid) error {
	cur := head
	for {
		rec, err := storage.Get(p, cur)
		if err != nil {
			return err
		}
		next, elems, err := decodeChunk(rec)
		if err != nil {
			return err
		}
		count := len(elems) / storage.EncodedRidLen
		if count < ChunkElems {
			// Grow this chunk in place (the record gets 8 bytes longer;
			// the page reserve usually absorbs it, relocation otherwise).
			grown := make([]byte, 0, len(rec)+storage.EncodedRidLen)
			grown = append(grown, rec[:chunkHeaderLen+len(elems)]...)
			grown = elem.Encode(grown)
			grown = append(grown, rec[chunkHeaderLen+len(elems):]...)
			binary.LittleEndian.PutUint16(grown[storage.EncodedRidLen:], uint16(count+1))
			_, err := f.Update(p, cur, grown)
			return err
		}
		if next.IsNil() {
			// Chain a fresh chunk holding the element.
			newHead, err := Create(p, f, []storage.Rid{elem})
			if err != nil {
				return err
			}
			patched := make([]byte, len(rec))
			copy(patched, rec)
			newHead.Encode(patched[:0:storage.EncodedRidLen])
			_, err = f.Update(p, cur, patched)
			return err
		}
		cur = next
	}
}

// Remove deletes one occurrence of elem from the collection, compacting
// the chunk it came from. It reports whether the element was found.
func Remove(p storage.Pager, f *storage.File, head storage.Rid, elem storage.Rid) (bool, error) {
	for cur := head; !cur.IsNil(); {
		rec, err := storage.Get(p, cur)
		if err != nil {
			return false, err
		}
		next, elems, err := decodeChunk(rec)
		if err != nil {
			return false, err
		}
		for off := 0; off < len(elems); off += storage.EncodedRidLen {
			r, err := storage.DecodeRid(elems[off:])
			if err != nil {
				return false, err
			}
			if r != elem {
				continue
			}
			count := len(elems) / storage.EncodedRidLen
			shrunk := make([]byte, 0, len(rec)-storage.EncodedRidLen)
			shrunk = append(shrunk, rec[:chunkHeaderLen+off]...)
			shrunk = append(shrunk, rec[chunkHeaderLen+off+storage.EncodedRidLen:chunkHeaderLen+len(elems)]...)
			binary.LittleEndian.PutUint16(shrunk[storage.EncodedRidLen:], uint16(count-1))
			if _, err := f.Update(p, cur, shrunk); err != nil {
				return false, err
			}
			return true, nil
		}
		cur = next
	}
	return false, nil
}

// Contains reports whether elem occurs in the collection.
func Contains(p storage.Pager, head storage.Rid, elem storage.Rid) (bool, error) {
	found := false
	err := Scan(p, head, func(r storage.Rid) (bool, error) {
		if r == elem {
			found = true
			return false, nil
		}
		return true, nil
	})
	return found, err
}
