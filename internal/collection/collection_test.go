package collection

import (
	"testing"
	"testing/quick"

	"treebench/internal/storage"
)

func rids(n int) []storage.Rid {
	out := make([]storage.Rid, n)
	for i := range out {
		out[i] = storage.Rid{Page: storage.PageID(i / 7), Slot: uint16(i % 7)}
	}
	return out
}

func TestCreateAndScanSmall(t *testing.T) {
	s := storage.NewStore(0)
	f, _ := s.CreateFile("owners")
	want := rids(3)
	head, err := Create(s.Disk, f, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Elems(s.Disk, head)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], want[i])
		}
	}
	if n, _ := Len(s.Disk, head); n != 3 {
		t.Fatalf("Len = %d", n)
	}
}

func TestEmptyCollection(t *testing.T) {
	s := storage.NewStore(0)
	f, _ := s.CreateFile("owners")
	head, err := Create(s.Disk, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if head.IsNil() {
		t.Fatal("empty collection must still have a head chunk")
	}
	got, err := Elems(s.Disk, head)
	if err != nil || len(got) != 0 {
		t.Fatalf("Elems = %v (%v)", got, err)
	}
}

func TestLargeCollectionChains(t *testing.T) {
	s := storage.NewStore(0)
	big, _ := s.CreateFile("bigsets")
	want := rids(1000) // the paper's 1:1000 clients set
	head, err := Create(s.Disk, big, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Elems(s.Disk, head)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d mismatch", i)
		}
	}
	// 1000 elements at 420/chunk = 3 chunks; each is its own record but
	// chunks share pages.
	if n := big.NumPages(); n < 3 {
		t.Fatalf("1000-element set occupies %d pages", n)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := storage.NewStore(0)
	f, _ := s.CreateFile("f")
	head, _ := Create(s.Disk, f, rids(900))
	count := 0
	err := Scan(s.Disk, head, func(storage.Rid) (bool, error) {
		count++
		return count < 500, nil
	})
	if err != nil || count != 500 {
		t.Fatalf("count=%d err=%v", count, err)
	}
}

func TestEncodedSizePlacementRule(t *testing.T) {
	// 3 elements: 10 + 24 = 34 bytes — inline in the owner's file.
	if got := EncodedSize(3); got != 34 {
		t.Fatalf("EncodedSize(3) = %d, want 34", got)
	}
	// 1000 elements must exceed a page, forcing the separate file.
	if got := EncodedSize(1000); got <= storage.PageSize {
		t.Fatalf("EncodedSize(1000) = %d, want > %d", got, storage.PageSize)
	}
	if EncodedSize(0) != chunkHeaderLen {
		t.Fatalf("EncodedSize(0) = %d", EncodedSize(0))
	}
}

// Property: round trip of arbitrary-size collections preserves order and
// content across chunk boundaries.
func TestRoundTripProperty(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n % 1500)
		s := storage.NewStore(0)
		file, _ := s.CreateFile("f")
		want := rids(size)
		head, err := Create(s.Disk, file, want)
		if err != nil {
			return false
		}
		got, err := Elems(s.Disk, head)
		if err != nil || len(got) != size {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		ln, err := Len(s.Disk, head)
		return err == nil && ln == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAddGrowsChunksAndChains(t *testing.T) {
	s := storage.NewStore(0)
	f, _ := s.CreateFile("f")
	head, err := Create(s.Disk, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = ChunkElems*2 + 50 // forces two chained chunk extensions
	for i := 0; i < n; i++ {
		if err := Add(s.Disk, f, head, rids(i + 1)[i]); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	got, err := Elems(s.Disk, head)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	want := rids(n)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v", i, got[i], want[i])
		}
	}
	if ln, _ := Len(s.Disk, head); ln != n {
		t.Fatalf("Len = %d", ln)
	}
}

func TestRemoveAndContains(t *testing.T) {
	s := storage.NewStore(0)
	f, _ := s.CreateFile("f")
	all := rids(900) // spans 3 chunks
	head, _ := Create(s.Disk, f, all)
	victim := all[500]
	ok, err := Contains(s.Disk, head, victim)
	if err != nil || !ok {
		t.Fatalf("Contains before: %v %v", ok, err)
	}
	ok, err = Remove(s.Disk, f, head, victim)
	if err != nil || !ok {
		t.Fatalf("Remove: %v %v", ok, err)
	}
	ok, _ = Contains(s.Disk, head, victim)
	if ok {
		t.Fatal("element survives removal")
	}
	if ln, _ := Len(s.Disk, head); ln != 899 {
		t.Fatalf("Len = %d", ln)
	}
	// Removing again fails gracefully.
	ok, err = Remove(s.Disk, f, head, victim)
	if err != nil || ok {
		t.Fatalf("double remove: %v %v", ok, err)
	}
	// Every other element intact.
	got, _ := Elems(s.Disk, head)
	seen := map[storage.Rid]bool{}
	for _, r := range got {
		seen[r] = true
	}
	for i, r := range all {
		if i == 500 {
			continue
		}
		if !seen[r] {
			t.Fatalf("lost element %d", i)
		}
	}
}

func TestAddRemoveChurnProperty(t *testing.T) {
	// Random add/remove churn against a shadow multiset.
	s := storage.NewStore(0)
	f, _ := s.CreateFile("f")
	head, _ := Create(s.Disk, f, nil)
	shadow := map[storage.Rid]int{}
	rid := func(i int) storage.Rid {
		return storage.Rid{Page: storage.PageID(i), Slot: uint16(i % 7)}
	}
	for step := 0; step < 2000; step++ {
		i := step * 31 % 400
		if step%3 == 2 && shadow[rid(i)] > 0 {
			ok, err := Remove(s.Disk, f, head, rid(i))
			if err != nil || !ok {
				t.Fatalf("remove step %d: %v %v", step, ok, err)
			}
			shadow[rid(i)]--
		} else {
			if err := Add(s.Disk, f, head, rid(i)); err != nil {
				t.Fatalf("add step %d: %v", step, err)
			}
			shadow[rid(i)]++
		}
	}
	got, _ := Elems(s.Disk, head)
	counts := map[storage.Rid]int{}
	for _, r := range got {
		counts[r]++
	}
	for r, want := range shadow {
		if counts[r] != want {
			t.Fatalf("element %v count %d, want %d", r, counts[r], want)
		}
	}
}
