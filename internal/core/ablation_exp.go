package core

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/join"
	"treebench/internal/selection"
	"treebench/internal/txn"
)

// Loading reproduces the §3.2 loading experiments on the 10⁶×3 database:
// the tuned configuration against each blunder the authors worked through
// — standard transactions, indexing after the load (the relocation storm),
// and the default 4 MB client cache.
func (r *Runner) Loading() (*Table, error) {
	p, a := r.bigScale()
	t := &Table{
		ID:    "L1",
		Title: fmt.Sprintf("Loading the %s database (class clustering)", dbLabel(p, a)),
		Columns: []string{"configuration", "load time (sec)", "commits", "relocations",
			"pages written", "log pages", "RPCs"},
	}
	base := func() derby.Config {
		cfg := derby.DefaultConfig(p, a, derby.ClassCluster)
		cfg.Seed = r.Config.Seed
		cfg.Machine = MachineForSF(r.Config.SF)
		cfg.SkipNumIndex = true
		return cfg
	}
	run := func(label string, cfg derby.Config) error {
		r.logf("  loading: %s ...", label)
		d, err := derby.Generate(cfg)
		if err != nil {
			return err
		}
		t.AddRow(label, d.Load.Elapsed.Seconds(), d.Load.Commits, d.Load.Relocations,
			d.Load.Counters.DiskWrites, d.Load.Counters.LogPages, d.Load.Counters.RPCs)
		return nil
	}

	tuned := base()
	if err := run("tuned: txn-off, index first, 32MB client cache", tuned); err != nil {
		return nil, err
	}

	std := base()
	std.TxnMode = txn.Standard
	if err := run("standard transactions (10k objects/commit)", std); err != nil {
		return nil, err
	}

	late := base()
	late.IndexBeforeLoad = false
	if err := run("indexes created after load (relocation storm)", late); err != nil {
		return nil, err
	}

	// The client-cache lesson needs a load that revisits pages. The
	// class-clustered 1:3 load streams, but the 2,000×1,000 database
	// maintains the unclustered num index during the load: every insert
	// descends to a random leaf, and those leaves only stay resident when
	// the client cache is big enough.
	sp, sa := r.smallScale()
	cacheBase := func() derby.Config {
		cfg := derby.DefaultConfig(sp, sa, derby.ClassCluster)
		cfg.Seed = r.Config.Seed
		cfg.Machine = MachineForSF(r.Config.SF)
		return cfg
	}
	bigCache := cacheBase()
	if err := run(fmt.Sprintf("%s DB (num index), tuned 32MB client cache", dbLabel(sp, sa)), bigCache); err != nil {
		return nil, err
	}
	smallCache := cacheBase()
	smallCache.Machine.ClientCache = 4 << 20 / int64(r.Config.SF)
	if err := run(fmt.Sprintf("%s DB (num index), default 4MB client cache", dbLabel(sp, sa)), smallCache); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"the paper went from 12h to 5h by fixing exactly these: transaction-off loading, first index before load, 32MB client cache (§3.2)")
	return t, nil
}

// Handles reproduces the §4.4 proposal as a measured ablation: the same
// workloads under O2's fat 60-byte handles and under the proposed compact
// handles with bulk allocation. Cold associative scans speed up by the
// handle residue; navigation workloads are unharmed.
func (r *Runner) Handles() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "H1",
		Title:   "Fat vs slim handles (§4.4 proposal), 2x10^3 Providers database",
		Columns: []string{"workload", "fat handles (sec)", "slim handles (sec)", "speedup"},
	}
	type workload struct {
		label string
		run   func() (float64, error)
	}
	runSelection := func(permille int, access selection.Access) func() (float64, error) {
		return func() (float64, error) {
			res, err := r.coldSelection(d, permille, access)
			if err != nil {
				return 0, err
			}
			return res.Elapsed.Seconds(), nil
		}
	}
	runJoin := func(selPat, selProv int, algo join.Algorithm) func() (float64, error) {
		return func() (float64, error) {
			// Bypass the run cache: both handle modes must execute.
			env := join.EnvForDerby(d)
			d.DB.ColdRestart()
			res, err := join.Run(env, algo, env.BySelectivity(selPat, selProv))
			if err != nil {
				return 0, err
			}
			return res.Elapsed.Seconds(), nil
		}
	}
	workloads := []workload{
		{"cold full scan, 90% selection", runSelection(900, selection.FullScan)},
		{"cold sorted index scan, 90% selection", runSelection(900, selection.SortedIndexScan)},
		{"NOJOIN navigation (10%,10%)", runJoin(10, 10, join.NOJOIN)},
		{"NL navigation (10%,10%)", runJoin(10, 10, join.NL)},
	}
	for _, w := range workloads {
		d.DB.Meter.SetSlimHandles(false)
		fat, err := w.run()
		if err != nil {
			return nil, err
		}
		d.DB.Meter.SetSlimHandles(true)
		slim, err := w.run()
		d.DB.Meter.SetSlimHandles(false)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.label, fat, slim, fmt.Sprintf("%.2fx", fat/slim))
	}
	t.Notes = append(t.Notes,
		"the proposal fixes associative accesses 'without hurting those of main memory navigation': the scan speedup is large, the navigation change is dominated by I/O")
	return t, nil
}
