package core

import (
	"fmt"

	"treebench/internal/backend"
	"treebench/internal/derby"
	"treebench/internal/index"
	"treebench/internal/selection"
)

// The B1 ablation: the same database and workload under each pluggable
// index backend. The paper's figures assume one physical index — the B1
// table asks what changes when that assumption moves: an LSM absorbs the
// update waves' index maintenance in its memtable (write absorption),
// and pays for it on reads, where a range or point scan must merge every
// SSTable overlapping the key range (read amplification) — except where
// a bloom filter proves a table irrelevant for the price of a hash
// probe. Query results are byte-identical across backends by
// construction; only the cost accounting moves.

// backendWaves is how many update waves the ablation applies before the
// post-wave read phase. 128 waves at the default spec push ~6,100 index
// maintenance records through each backend: enough to flush the LSM
// memtable several times and trip at least one size-tiered compaction,
// so the post-wave reads face a multi-table structure, not a freshly
// bulk-loaded one. Wave contents are a pure function of (spec, wave), so
// the resulting structure is identical on every run.
const backendWaves = 128

// backendPointReads is how many point reads the post-wave read phase
// issues, spread evenly over the key domain.
const backendPointReads = 64

// backendSnapshot generates (or reuses) the selection database under one
// specific index backend. Each backend gets its own dataset key, so one
// Runner holds all three generations side by side.
func (r *Runner) backendSnapshot(kind string) (*derby.Snapshot, error) {
	p, a := r.smallScale()
	key := r.dsKeyFor(p, a, derby.ClassCluster)
	key.backend = backend.Normalize(kind)
	return r.snapshot(key)
}

// pointKeys spreads n point-read keys over the dense 1..max num domain.
func pointKeys(maxKey, n int) []int64 {
	keys := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, 1+int64(i)*int64(maxKey)/int64(n))
	}
	return keys
}

// Backends reproduces the indexed-selection experiment under each index
// backend and adds the update-wave ablation: pages written by the waves,
// then cold point reads over the post-wave structure — once through the
// query path (an Eq index scan, which merges components and cannot use
// blooms) and once through the point-lookup path (which can).
func (r *Runner) Backends() (*Table, error) {
	t := &Table{
		ID: "B1",
		Title: fmt.Sprintf("Index backends on the %s database: write absorption vs read amplification (%d waves, %d point reads)",
			dbLabel(r.smallScale()), backendWaves, backendPointReads),
		Columns: []string{"backend", "sel 5% pages", "sel 5% time", "wave write pages",
			"compactions", "point scans pages", "point lookups pages", "bloom skip%"},
	}
	for _, kind := range backend.Kinds() {
		row, err := r.backendRow(kind)
		if err != nil {
			return nil, fmt.Errorf("backend %s: %w", kind, err)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"query results are byte-identical across backends; only where the pages and probes land differs",
		"wave write pages: data+log+index pages written by the update waves — the LSM's memtable absorbs index maintenance the B+-trees pay per update",
		"point scans (the Eq query path) merge every overlapping SSTable, so the LSM's post-wave read amplification is honestly higher; point lookups may skip tables by bloom probe",
	)
	return t, nil
}

// backendRow measures one backend: fresh-database indexed selection,
// update waves on a mutable fork, then cold post-wave point reads on
// that fork.
func (r *Runner) backendRow(kind string) ([]any, error) {
	sn, err := r.backendSnapshot(kind)
	if err != nil {
		return nil, err
	}

	// Fresh database: the §4.2 cold indexed selection at 5%.
	d := sn.Fork()
	d.DB.SetQueryJobs(r.queryJobs())
	d.DB.SetBatch(r.Config.Batch)
	sel, err := r.coldSelection(d, 50, selection.IndexScan)
	if err != nil {
		return nil, err
	}

	// Update waves on a mutable fork. DiskWrites+LogPages is the full
	// write bill: data pages, log pages, and — through each backend's
	// cost source — index pages, flushes and compactions, billed to the
	// wave that tripped them.
	md := sn.ForkMutable()
	md.DB.SetQueryJobs(r.queryJobs())
	md.DB.SetBatch(r.Config.Batch)
	spec := derby.DefaultWaveSpec()
	before := md.DB.Meter.Snapshot()
	bcBefore := md.DB.BackendCounters()
	for w := uint64(1); w <= backendWaves; w++ {
		if _, err := derby.ApplyWave(md, w, spec); err != nil {
			return nil, err
		}
	}
	after := md.DB.Meter.Snapshot()
	wrote := (after.DiskWrites - before.DiskWrites) + (after.LogPages - before.LogPages)
	bcWaves := backendCountersDelta(bcBefore, md.DB.BackendCounters())
	r.logf("  %-5s waves: %d pages written, %d compactions, %d backend pages",
		kind, wrote, bcWaves.Compactions, bcWaves.PagesWritten)

	ix := md.DB.IndexOn("Patients", "num")
	if ix == nil {
		return nil, fmt.Errorf("no index on Patients.num")
	}
	keys := pointKeys(md.NumPatients, backendPointReads)

	// Post-wave cold point reads, query path: an Eq predicate runs as an
	// index scan over [k, k+1), which merges every component overlapping
	// the key — blooms cannot help a range cursor.
	md.DB.ColdRestart()
	for _, k := range keys {
		if err := ix.Backend.Scan(md.DB.Client, k, k+1, func(index.Entry) (bool, error) {
			return true, nil
		}); err != nil {
			return nil, err
		}
	}
	scanPages := md.DB.Meter.Snapshot().DiskReads

	// Post-wave cold point reads, lookup path: the write path's existence
	// checks and navigations go through Lookup, where a bloom probe can
	// skip an SSTable for the price of the probe.
	md.DB.ColdRestart()
	c0 := md.DB.BackendCounters()
	for _, k := range keys {
		if _, err := ix.Backend.Lookup(md.DB.Client, k); err != nil {
			return nil, err
		}
	}
	lookupPages := md.DB.Meter.Snapshot().DiskReads
	c1 := backendCountersDelta(c0, md.DB.BackendCounters())
	skip := "-"
	if probes := c1.BloomHits + c1.BloomMisses; probes > 0 {
		skip = fmt.Sprintf("%.0f%%", 100*float64(c1.BloomMisses)/float64(probes))
	}
	r.logf("  %-5s post-wave: %d scan pages, %d lookup pages, bloom skip %s",
		kind, scanPages, lookupPages, skip)

	return []any{kind, sel.Counters.DiskReads, sel.Elapsed.Seconds(),
		wrote, bcWaves.Compactions, scanPages, lookupPages, skip}, nil
}

// backendCountersDelta subtracts two backend-counter snapshots.
func backendCountersDelta(before, after index.BackendCounters) index.BackendCounters {
	return index.BackendCounters{
		BloomHits:    after.BloomHits - before.BloomHits,
		BloomMisses:  after.BloomMisses - before.BloomMisses,
		SSTablesRead: after.SSTablesRead - before.SSTablesRead,
		Compactions:  after.Compactions - before.Compactions,
		PagesWritten: after.PagesWritten - before.PagesWritten,
	}
}
