// Package core is the benchmark itself: the paper's primary contribution
// reproduced as runnable experiments. Each experiment regenerates one table
// or figure of the paper (see DESIGN.md's per-experiment index) against the
// simulated O2-like engine, at a configurable scale factor.
package core

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"treebench/internal/derby"
	"treebench/internal/join"
	"treebench/internal/sim"
	"treebench/internal/stats"
)

// Config parameterizes a benchmark session.
type Config struct {
	// SF divides the paper's database cardinalities and the machine's
	// memory sizes, preserving every data-to-memory ratio. SF=1 is the
	// paper's full scale (2,000×1,000 and 1,000,000×3); the default 10
	// runs the same shapes in about a tenth of the wall-clock time.
	SF int
	// Seed drives the deterministic data generator.
	Seed int32
	// EnableHHJ adds the hybrid-hash extension as an extra column in the
	// join experiments.
	EnableHHJ bool
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultSF is the default scale divisor.
const DefaultSF = 10

// ScaleEnvVar overrides the scale factor (TREEBENCH_SF=1 reproduces paper
// scale).
const ScaleEnvVar = "TREEBENCH_SF"

// ConfigFromEnv builds the default config, honoring ScaleEnvVar.
func ConfigFromEnv() Config {
	cfg := Config{SF: DefaultSF, Seed: 1997}
	if v := os.Getenv(ScaleEnvVar); v != "" {
		if sf, err := strconv.Atoi(v); err == nil && sf >= 1 {
			cfg.SF = sf
		}
	}
	return cfg
}

// MachineForSF scales the paper's Sparc 20 memory geography down with the
// data, so cache-to-data and budget-to-table ratios match the paper's at
// any scale factor.
func MachineForSF(sf int) sim.Machine {
	m := sim.DefaultMachine()
	m.RAM /= int64(sf)
	m.ServerCache /= int64(sf)
	m.ClientCache /= int64(sf)
	m.HashBudget /= int64(sf)
	return m
}

// Table is one reproduced paper table/figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

// dsKey identifies a generated database.
type dsKey struct {
	providers int
	avg       int
	cl        derby.Clustering
}

// joinKey identifies one cold join run for cross-experiment reuse
// (Figure 15 re-reports Figure 11–14 numbers).
type joinKey struct {
	ds   dsKey
	sel  [2]int // patients, providers
	algo join.Algorithm
}

// Runner executes experiments, caching generated databases and join runs.
type Runner struct {
	Config Config
	// Stats records every measured run in the §3.3 results database.
	Stats *stats.DB

	datasets map[dsKey]*derby.Dataset
	joinRuns map[joinKey]*join.Result
}

// NewRunner returns a runner with an empty cache and a fresh results DB.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.SF < 1 {
		return nil, fmt.Errorf("core: scale factor %d < 1", cfg.SF)
	}
	sdb, err := stats.Open()
	if err != nil {
		return nil, err
	}
	return &Runner{
		Config:   cfg,
		Stats:    sdb,
		datasets: make(map[dsKey]*derby.Dataset),
		joinRuns: make(map[joinKey]*join.Result),
	}, nil
}

// logf writes progress when verbose.
func (r *Runner) logf(format string, args ...any) {
	if r.Config.Verbose != nil {
		fmt.Fprintf(r.Config.Verbose, format+"\n", args...)
	}
}

// The paper's two databases, scaled.
func (r *Runner) smallScale() (providers, avg int) { return 2000 / r.Config.SF, 1000 }
func (r *Runner) bigScale() (providers, avg int)   { return 1_000_000 / r.Config.SF, 3 }

// bothScales lists the two database scales in the paper's order.
func (r *Runner) bothScales() [][2]int {
	p1, a1 := r.smallScale()
	p2, a2 := r.bigScale()
	return [][2]int{{p1, a1}, {p2, a2}}
}

// dbLabel names a database like the paper ("2x10^3 Providers").
func dbLabel(providers, avg int) string {
	return fmt.Sprintf("%dx%d", providers, avg)
}

// dataset builds (or reuses) a database.
func (r *Runner) dataset(providers, avg int, cl derby.Clustering) (*derby.Dataset, error) {
	key := dsKey{providers, avg, cl}
	if d, ok := r.datasets[key]; ok {
		return d, nil
	}
	r.logf("generating %s database, %s clustering ...", dbLabel(providers, avg), cl)
	cfg := derby.DefaultConfig(providers, avg, cl)
	cfg.Seed = r.Config.Seed
	cfg.Machine = MachineForSF(r.Config.SF)
	// The 1:3 databases never use the num index; skipping it matches the
	// paper's patient size there and halves generation time.
	cfg.SkipNumIndex = avg < 100
	d, err := derby.Generate(cfg)
	if err != nil {
		return nil, err
	}
	r.datasets[key] = d
	return d, nil
}

// coldJoin runs one algorithm cold, reusing a cached result if this exact
// run happened before, and records it in the stats database.
func (r *Runner) coldJoin(d *derby.Dataset, key dsKey, selPat, selProv int, algo join.Algorithm) (*join.Result, error) {
	jk := joinKey{ds: key, sel: [2]int{selPat, selProv}, algo: algo}
	if res, ok := r.joinRuns[jk]; ok {
		return res, nil
	}
	env := join.EnvForDerby(d)
	q := env.BySelectivity(selPat, selProv)
	d.DB.ColdRestart()
	res, err := join.Run(env, algo, q)
	if err != nil {
		return nil, err
	}
	r.joinRuns[jk] = res
	r.logf("  %-6s sel(pat=%d%%, prov=%d%%) %-11s t=%.2fs tuples=%d",
		d.Clustering, selPat, selProv, algo, res.Elapsed.Seconds(), res.Tuples)
	if r.Stats != nil {
		e := stats.Entry{
			Cold:            true,
			ProjectionType:  "attributes",
			Selectivity:     selPat,
			Text:            "select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < k1 and p.upin < k2",
			Database:        dbLabel(d.NumProviders, d.NumPatients/max(d.NumProviders, 1)),
			Cluster:         d.Clustering.String(),
			Algo:            string(algo),
			ServerCacheSize: d.DB.Machine.ServerCache,
			ClientCacheSize: d.DB.Machine.ClientCache,
			SameWorkstation: true,
		}
		e.FromCounters(res.Elapsed, res.Counters)
		if _, err := r.Stats.Record(e); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
