// Package core is the benchmark itself: the paper's primary contribution
// reproduced as runnable experiments. Each experiment regenerates one table
// or figure of the paper (see DESIGN.md's per-experiment index) against the
// simulated O2-like engine, at a configurable scale factor.
package core

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"treebench/internal/backend"
	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/join"
	"treebench/internal/persist"
	"treebench/internal/sim"
	"treebench/internal/stats"
)

// Config parameterizes a benchmark session.
type Config struct {
	// SF divides the paper's database cardinalities and the machine's
	// memory sizes, preserving every data-to-memory ratio. SF=1 is the
	// paper's full scale (2,000×1,000 and 1,000,000×3); the default 10
	// runs the same shapes in about a tenth of the wall-clock time.
	SF int
	// Seed drives the deterministic data generator.
	Seed int32
	// EnableHHJ adds the hybrid-hash extension as an extra column in the
	// join experiments.
	EnableHHJ bool
	// Jobs bounds how many experiments the scheduler runs concurrently.
	// Zero means DefaultJobs(); elapsed time is simulated per dataset, so
	// results are bit-identical at any setting.
	Jobs int
	// QueryJobs bounds how many goroutines serve one query's chunks
	// (intra-query parallelism). Zero means the engine default,
	// min(NumCPU, 4). Under the parallel scheduler the effective width is
	// divided by the scheduler's worker count so the two levels compose to
	// roughly Jobs×QueryJobs goroutines, never Jobs·QueryJobs each.
	// Simulated numbers are identical at any setting.
	QueryJobs int
	// Batch sets the vectorized-execution batch size. Zero means the
	// engine default (1024); 1 runs the legacy scalar operators. Like
	// QueryJobs it changes wall-clock time only — simulated numbers are
	// identical at any setting.
	Batch int
	// IndexBackend selects the pluggable index structure ("btree", "disk",
	// "lsm"; empty means the in-memory B+-tree default). It changes
	// physical layout and page-granular cost accounting, never query
	// results — the B1 ablation quantifies the difference.
	IndexBackend string
	// SnapshotDir, when non-empty, backs dataset generation with the
	// content-addressed snapshot cache at that directory: each distinct
	// parameter set is generated at most once ever, then loaded. Results
	// are bit-identical either way (snapshots are cached unprimed,
	// straight after Freeze). Empty disables on-disk caching; generation
	// is still singleflighted in-process.
	SnapshotDir string
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultSF is the default scale divisor.
const DefaultSF = 10

// ScaleEnvVar overrides the scale factor (TREEBENCH_SF=1 reproduces paper
// scale).
const ScaleEnvVar = "TREEBENCH_SF"

// JobsEnvVar overrides the scheduler's worker count (TREEBENCH_JOBS=1
// forces sequential execution).
const JobsEnvVar = "TREEBENCH_JOBS"

// QueryJobsEnvVar overrides the intra-query worker count
// (TREEBENCH_QUERY_JOBS=1 forces sequential chunk execution; results are
// byte-identical either way).
const QueryJobsEnvVar = "TREEBENCH_QUERY_JOBS"

// BatchEnvVar overrides the vectorized-execution batch size
// (TREEBENCH_BATCH=1 forces the legacy scalar operators; results are
// byte-identical at any setting).
const BatchEnvVar = "TREEBENCH_BATCH"

// IndexBackendEnvVar overrides the index backend
// (TREEBENCH_INDEX_BACKEND=lsm; results are byte-identical across
// backends, only the cost accounting changes).
const IndexBackendEnvVar = "TREEBENCH_INDEX_BACKEND"

// SnapshotDirEnvVar enables the on-disk snapshot cache
// (TREEBENCH_SNAPSHOT_DIR=~/.cache/treebench). persist.DefaultDir reads
// the same variable, so every tool agrees on the directory.
const SnapshotDirEnvVar = "TREEBENCH_SNAPSHOT_DIR"

// DefaultJobs is the default scheduler width: one worker per CPU, capped
// at 8 (diminishing returns: experiments share one generation per database
// and fan out cheap session forks).
func DefaultJobs() int {
	if n := runtime.NumCPU(); n < 8 {
		return n
	}
	return 8
}

// JobsFromEnv resolves a worker/replica count from JobsEnvVar, returning
// def when the variable is unset, non-numeric, or below 1. Every component
// that sizes a concurrent pool (the experiment scheduler, treebenchd's
// replica pool) resolves through this one helper.
func JobsFromEnv(def int) int {
	if v := os.Getenv(JobsEnvVar); v != "" {
		if j, err := strconv.Atoi(v); err == nil && j >= 1 {
			return j
		}
	}
	return def
}

// QueryJobsFromEnv resolves an intra-query worker count from
// QueryJobsEnvVar, returning def when the variable is unset, non-numeric,
// or below 1.
func QueryJobsFromEnv(def int) int {
	if v := os.Getenv(QueryJobsEnvVar); v != "" {
		if j, err := strconv.Atoi(v); err == nil && j >= 1 {
			return j
		}
	}
	return def
}

// BatchFromEnv resolves a vectorized-execution batch size from
// BatchEnvVar, returning def when the variable is unset, non-numeric, or
// below 1.
func BatchFromEnv(def int) int {
	if v := os.Getenv(BatchEnvVar); v != "" {
		if b, err := strconv.Atoi(v); err == nil && b >= 1 {
			return b
		}
	}
	return def
}

// IndexBackendFromEnv resolves an index-backend kind from
// IndexBackendEnvVar, returning def when the variable is unset. An
// invalid value is returned as-is so the caller's CheckKind rejects it
// with a hint instead of it being silently ignored.
func IndexBackendFromEnv(def string) string {
	if v := os.Getenv(IndexBackendEnvVar); v != "" {
		return v
	}
	return def
}

// ConfigFromEnv builds the default config, honoring ScaleEnvVar,
// JobsEnvVar, QueryJobsEnvVar and BatchEnvVar. Values below 1 (or
// non-numeric) are rejected and the default kept.
func ConfigFromEnv() Config {
	cfg := Config{
		SF:           DefaultSF,
		Seed:         1997,
		Jobs:         JobsFromEnv(DefaultJobs()),
		QueryJobs:    QueryJobsFromEnv(0),
		Batch:        BatchFromEnv(0),
		IndexBackend: IndexBackendFromEnv(""),
		SnapshotDir:  os.Getenv(SnapshotDirEnvVar),
	}
	if v := os.Getenv(ScaleEnvVar); v != "" {
		if sf, err := strconv.Atoi(v); err == nil && sf >= 1 {
			cfg.SF = sf
		}
	}
	return cfg
}

// jobs resolves the configured worker count.
func (c Config) jobs() int {
	if c.Jobs >= 1 {
		return c.Jobs
	}
	return DefaultJobs()
}

// MachineForSF scales the paper's Sparc 20 memory geography down with the
// data, so cache-to-data and budget-to-table ratios match the paper's at
// any scale factor.
func MachineForSF(sf int) sim.Machine {
	m := sim.DefaultMachine()
	m.RAM /= int64(sf)
	m.ServerCache /= int64(sf)
	m.ClientCache /= int64(sf)
	m.HashBudget /= int64(sf)
	return m
}

// Table is one reproduced paper table/figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table with aligned columns.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

// dsKey identifies a generated database, index backend included: the B1
// ablation holds several backends' datasets in one Runner.
type dsKey struct {
	providers int
	avg       int
	cl        derby.Clustering
	backend   string // normalized kind, "btree" when unset
}

// dsKeyFor builds a dataset key under the runner's configured backend.
func (r *Runner) dsKeyFor(providers, avg int, cl derby.Clustering) dsKey {
	return dsKey{providers: providers, avg: avg, cl: cl,
		backend: backend.Normalize(r.Config.IndexBackend)}
}

// joinKey identifies one cold join run for cross-experiment reuse
// (Figure 15 re-reports Figure 11–14 numbers).
type joinKey struct {
	ds   dsKey
	sel  [2]int // patients, providers
	algo join.Algorithm
}

// runnerState is the cross-experiment shared state, split out so the
// scheduler can hand each experiment a shallow per-experiment Runner view
// (for log prefixes) over the same caches. Both caches are Flights:
// generation and each distinct cold join run happen exactly once however
// many experiments need them, with no run locks — every experiment works
// on its own session forked from the shared frozen snapshot.
type runnerState struct {
	logMu sync.Mutex

	snapshots Flight[dsKey, *derby.Snapshot]
	joinRuns  Flight[joinKey, *join.Result]

	// cache is the on-disk snapshot store, opened once on first use when
	// Config.SnapshotDir is set (nil otherwise).
	cacheOnce sync.Once
	cache     *persist.Cache
	cacheErr  error
}

// Runner executes experiments, caching generated databases and join runs.
// A Runner is safe for concurrent use: the parallel scheduler (RunMany)
// runs independent experiments on separate goroutines.
type Runner struct {
	Config Config
	// Stats records every measured run in the §3.3 results database.
	Stats *stats.DB

	// expID prefixes verbose log lines when the scheduler interleaves
	// several experiments' output ("" outside the scheduler).
	expID string
	// jobsInUse is how many scheduler workers run concurrently with this
	// view (0 or 1 outside RunMany). Intra-query parallelism divides by it
	// so the two levels compose instead of multiplying.
	jobsInUse int

	shared *runnerState
}

// NewRunner returns a runner with an empty cache and a fresh results DB.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.SF < 1 {
		return nil, fmt.Errorf("core: scale factor %d < 1", cfg.SF)
	}
	if cfg.Jobs < 0 {
		return nil, fmt.Errorf("core: jobs %d < 1", cfg.Jobs)
	}
	sdb, err := stats.Open()
	if err != nil {
		return nil, err
	}
	return &Runner{
		Config: cfg,
		Stats:  sdb,
		shared: &runnerState{},
	}, nil
}

// withExperiment returns a view of r that tags verbose output with the
// experiment id. The view shares r's caches, locks and stats.
func (r *Runner) withExperiment(id string) *Runner {
	view := *r
	view.expID = id
	return &view
}

// logf writes progress when verbose. Lines from concurrent experiments are
// serialized and carry the experiment-id prefix.
func (r *Runner) logf(format string, args ...any) {
	if r.Config.Verbose == nil {
		return
	}
	r.shared.logMu.Lock()
	defer r.shared.logMu.Unlock()
	if r.expID != "" {
		fmt.Fprintf(r.Config.Verbose, "[%s] "+format+"\n", append([]any{r.expID}, args...)...)
	} else {
		fmt.Fprintf(r.Config.Verbose, format+"\n", args...)
	}
}

// The paper's two databases, scaled.
func (r *Runner) smallScale() (providers, avg int) { return 2000 / r.Config.SF, 1000 }
func (r *Runner) bigScale() (providers, avg int)   { return 1_000_000 / r.Config.SF, 3 }

// bothScales lists the two database scales in the paper's order.
func (r *Runner) bothScales() [][2]int {
	p1, a1 := r.smallScale()
	p2, a2 := r.bigScale()
	return [][2]int{{p1, a1}, {p2, a2}}
}

// dbLabel names a database like the paper ("2x10^3 Providers").
func dbLabel(providers, avg int) string {
	return fmt.Sprintf("%dx%d", providers, avg)
}

// snapshot generates (or reuses) a frozen database snapshot. Generation is
// singleflight per key: under the parallel scheduler, experiments that
// need the same database share one generation while different databases
// generate concurrently. The result is immutable; every experiment works
// on a session forked from it.
func (r *Runner) snapshot(key dsKey) (*derby.Snapshot, error) {
	return r.shared.snapshots.Do(key, func() (*derby.Snapshot, error) {
		cfg := derby.DefaultConfig(key.providers, key.avg, key.cl)
		cfg.Seed = r.Config.Seed
		cfg.Machine = MachineForSF(r.Config.SF)
		cfg.IndexBackend = key.backend
		// The 1:3 databases never use the num index; skipping it matches the
		// paper's patient size there and halves generation time.
		cfg.SkipNumIndex = key.avg < 100
		if cache := r.snapshotCache(); cache != nil {
			sn, out, err := cache.GetOrGenerate(cfg)
			if err != nil {
				return nil, err
			}
			r.logf("%s database, %s clustering: %s (%s)",
				dbLabel(key.providers, key.avg), key.cl, out.Source, out.Path)
			return sn, nil
		}
		r.logf("generating %s database, %s clustering ...", dbLabel(key.providers, key.avg), key.cl)
		d, err := derby.Generate(cfg)
		if err != nil {
			return nil, err
		}
		return d.Freeze()
	})
}

// snapshotCache lazily opens the on-disk cache named by
// Config.SnapshotDir. An open failure disables caching for the run (with
// one log line) rather than failing every experiment: the cache is an
// accelerator, not a correctness dependency.
func (r *Runner) snapshotCache() *persist.Cache {
	if r.Config.SnapshotDir == "" {
		return nil
	}
	s := r.shared
	s.cacheOnce.Do(func() {
		s.cache, s.cacheErr = persist.Open(r.Config.SnapshotDir)
		if s.cacheErr != nil {
			r.logf("snapshot cache disabled: %v", s.cacheErr)
		}
	})
	return s.cache
}

// dataset returns a fresh read-only session over the (singleflight-
// generated) database. Forks are cold and private — meter, caches and
// handle table belong to the caller alone — so experiments need no run
// locks and report exactly what a private copy would.
func (r *Runner) dataset(providers, avg int, cl derby.Clustering) (*derby.Dataset, error) {
	sn, err := r.snapshot(r.dsKeyFor(providers, avg, cl))
	if err != nil {
		return nil, err
	}
	d := sn.Fork()
	d.DB.SetQueryJobs(r.queryJobs())
	d.DB.SetBatch(r.Config.Batch)
	return d, nil
}

// queryJobs resolves the intra-query worker count for this runner view:
// the configured (or engine-default) width, divided by the number of
// scheduler workers running alongside so total goroutines stay near
// Jobs×queryJobs. Worker counts never touch chunk decomposition, so every
// reported number is identical at any resolution of this knob.
func (r *Runner) queryJobs() int {
	qj := r.Config.QueryJobs
	if qj < 1 {
		qj = engine.DefaultQueryJobs()
	}
	if r.jobsInUse > 1 {
		qj /= r.jobsInUse
	}
	if qj < 1 {
		qj = 1
	}
	return qj
}

// mutableDataset returns a fresh writable (copy-on-write) session over the
// shared snapshot, for experiments that update the database in place.
func (r *Runner) mutableDataset(providers, avg int, cl derby.Clustering) (*derby.Dataset, error) {
	sn, err := r.snapshot(r.dsKeyFor(providers, avg, cl))
	if err != nil {
		return nil, err
	}
	d := sn.ForkMutable()
	d.DB.SetQueryJobs(r.queryJobs())
	d.DB.SetBatch(r.Config.Batch)
	return d, nil
}

// withDataset runs fn over a fresh read-only fork of the database.
func (r *Runner) withDataset(providers, avg int, cl derby.Clustering, fn func(d *derby.Dataset) error) error {
	d, err := r.dataset(providers, avg, cl)
	if err != nil {
		return err
	}
	return fn(d)
}

// joinRunCount reports how many distinct cold join runs the memo holds.
func (r *Runner) joinRunCount() int {
	return r.shared.joinRuns.Len()
}

// coldJoin runs one algorithm cold on the caller's session, memoized
// singleflight per (database, selectivities, algorithm) — Figure 15
// re-reports Figure 11–14 numbers without rerunning them, and concurrent
// experiments needing the same run share one execution. Cold runs on
// identical forks are deterministic, so whichever caller's session
// executes first produces the canonical result. The winning run is also
// recorded in the stats database, exactly once.
func (r *Runner) coldJoin(d *derby.Dataset, key dsKey, selPat, selProv int, algo join.Algorithm) (*join.Result, error) {
	jk := joinKey{ds: key, sel: [2]int{selPat, selProv}, algo: algo}
	return r.shared.joinRuns.Do(jk, func() (*join.Result, error) {
		env := join.EnvForDerby(d)
		q := env.BySelectivity(selPat, selProv)
		d.DB.ColdRestart()
		res, err := join.Run(env, algo, q)
		if err != nil {
			return nil, err
		}
		r.logf("  %-6s sel(pat=%d%%, prov=%d%%) %-11s t=%.2fs tuples=%d",
			d.Clustering, selPat, selProv, algo, res.Elapsed.Seconds(), res.Tuples)
		if r.Stats != nil {
			e := stats.Entry{
				Cold:            true,
				ProjectionType:  "attributes",
				Selectivity:     selPat,
				Text:            "select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < k1 and p.upin < k2",
				Database:        dbLabel(d.NumProviders, d.NumPatients/max(d.NumProviders, 1)),
				Cluster:         d.Clustering.String(),
				Algo:            string(algo),
				ServerCacheSize: d.DB.Machine.ServerCache,
				ClientCacheSize: d.DB.Machine.ClientCache,
				SameWorkstation: true,
			}
			e.FromCounters(res.Elapsed, res.Counters)
			if _, err := r.Stats.Record(e); err != nil {
				return nil, err
			}
		}
		return res, nil
	})
}
