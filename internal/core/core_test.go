package core

import (
	"strconv"
	"strings"
	"testing"
)

// testRunner uses SF=40 (50×1000 and 25,000×3): every memory ratio is
// preserved, so the paper's shapes must hold while tests stay fast.
func testRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(Config{SF: 40, Seed: 1997})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestMachineForSFPreservesRatios(t *testing.T) {
	m1 := MachineForSF(1)
	m10 := MachineForSF(10)
	if m10.ClientCache != m1.ClientCache/10 || m10.HashBudget != m1.HashBudget/10 ||
		m10.ServerCache != m1.ServerCache/10 {
		t.Fatalf("scaling broken: %+v vs %+v", m1, m10)
	}
}

func TestConfigFromEnv(t *testing.T) {
	t.Setenv(ScaleEnvVar, "25")
	if cfg := ConfigFromEnv(); cfg.SF != 25 {
		t.Fatalf("SF = %d", cfg.SF)
	}
	t.Setenv(ScaleEnvVar, "junk")
	if cfg := ConfigFromEnv(); cfg.SF != DefaultSF {
		t.Fatalf("bad env: SF = %d", cfg.SF)
	}
	if _, err := NewRunner(Config{SF: 0}); err == nil {
		t.Fatal("SF=0 accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run("F99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"F6", "F7", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "L1", "H1", "A1", "B1", "O1", "M1", "D1", "P1", "R1", "S1", "V1", "W1"}
	got := ExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("registry: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Full-scan pages constant across selectivities.
	first := cell(t, tab, 0, 2)
	for i := range tab.Rows {
		if cell(t, tab, i, 2) != first {
			t.Fatalf("full-scan pages vary: row %d", i)
		}
	}
	// At 0.1% the index reads far fewer pages than the scan; at 90% more.
	if cell(t, tab, 0, 4) >= first {
		t.Fatal("index at 0.1% should read fewer pages than the scan")
	}
	last := len(tab.Rows) - 1
	if cell(t, tab, last, 4) <= first {
		t.Fatal("index at 90% should read more pages than the scan (re-reads)")
	}
	// Crossover threshold note matches the paper's 1–5% bracket.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "selectivity") && strings.Contains(n, "threshold") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing crossover note: %v", tab.Notes)
	}
}

func TestFig7SortedIndexAlwaysWins(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		sorted, full := cell(t, tab, i, 1), cell(t, tab, i, 2)
		if sorted >= full {
			t.Fatalf("row %v: sorted index (%v) not faster than scan (%v)", tab.Rows[i][0], sorted, full)
		}
	}
	// Both columns grow with selectivity.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, 1) <= cell(t, tab, i-1, 1) || cell(t, tab, i, 2) <= cell(t, tab, i-1, 2) {
			t.Fatal("times not monotone in selectivity")
		}
	}
}

func TestFig9Breakdown(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	// The standard scan steps the cursor over the whole collection, the
	// index scan never does.
	steps := byName["scan cursor steps"]
	if steps == nil || steps[2] != "0" || steps[1] == "0" {
		t.Fatalf("cursor steps: %v", steps)
	}
	// Handles: 100% vs 90% of the collection.
	scanH, _ := strconv.Atoi(byName["handles got+unref"][1])
	idxH, _ := strconv.Atoi(byName["handles got+unref"][2])
	if idxH >= scanH || idxH*10 < scanH*8 {
		t.Fatalf("handles: scan=%d idx=%d (want idx ≈ 90%% of scan)", scanH, idxH)
	}
	if byName["rids sorted"][2] == "0" {
		t.Fatal("sorted scan sorted no rids")
	}
}

func TestFig10Shapes(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		algo, rel, swapped := row[0], row[2], row[7]
		formula, measured := cell(t, tab, i, 5), cell(t, tab, i, 6)
		if algo == "PHJ" && measured != formula {
			t.Fatalf("row %d: PHJ measured %.4f != formula %.4f", i, measured, formula)
		}
		if algo == "CHJ" && measured > formula+0.01 {
			t.Fatalf("row %d: CHJ measured %.4f exceeds formula %.4f", i, measured, formula)
		}
		// The paper's swap commentary: 1:1000 tables never swap; the 1:3
		// tables swap at (90,90) for both algorithms.
		if rel == "1:1000" && swapped != "false" {
			t.Fatalf("row %d: 1:1000 table swapped", i)
		}
		if rel == "1:3" && row[3] == "90" && swapped != "true" {
			t.Fatalf("row %d: 1:3 (90,90) table did not swap", i)
		}
	}
}

// winners extracts the per-grid-cell winner of a Figure 11–14 table.
func winners(tab *Table) map[[2]string]string {
	out := map[[2]string]string{}
	for _, row := range tab.Rows {
		key := [2]string{row[0], row[1]}
		if _, seen := out[key]; !seen {
			out[key] = row[2] // rows are ranked; first is the winner
		}
	}
	return out
}

func TestFig11Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	w := winners(tab)
	// Hash joins or NOJOIN win everywhere; NL never does and is dreadful
	// except at small provider selectivity.
	for key, algo := range w {
		if algo == "NL" {
			t.Fatalf("NL won %v under class clustering 1:1000", key)
		}
	}
	// NL's ratio at (10,90) is catastrophic (paper: 80x).
	var nlRatio float64
	for i, row := range tab.Rows {
		if row[0] == "10" && row[1] == "90" && row[2] == "NL" {
			nlRatio = cell(t, tab, i, 3)
		}
	}
	if nlRatio < 20 {
		t.Fatalf("NL ratio at (10,90) = %.1f, want catastrophic (paper 80x)", nlRatio)
	}
}

func TestFig12RowWinnersMatchPaper(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	w := winners(tab)
	// Paper's winners: (10,10) PHJ (CHJ within 10%), (10,90) CHJ,
	// (90,10) PHJ, (90,90) NOJOIN.
	if got := w[[2]string{"10", "10"}]; got != "PHJ" && got != "CHJ" {
		t.Fatalf("(10,10) winner = %s", got)
	}
	if got := w[[2]string{"10", "90"}]; got != "CHJ" {
		t.Fatalf("(10,90) winner = %s, want CHJ (PHJ swaps)", got)
	}
	if got := w[[2]string{"90", "10"}]; got != "PHJ" {
		t.Fatalf("(90,10) winner = %s, want PHJ (CHJ swaps)", got)
	}
	if got := w[[2]string{"90", "90"}]; got != "NOJOIN" {
		t.Fatalf("(90,90) winner = %s, want NOJOIN (both hash tables swap)", got)
	}
}

func TestFig13And14NavigationWins(t *testing.T) {
	r := testRunner(t)
	for _, run := range []func() (*Table, error){r.Fig13, r.Fig14} {
		tab, err := run()
		if err != nil {
			t.Fatal(err)
		}
		w := winners(tab)
		nl := 0
		for key, algo := range w {
			if algo != "NL" && algo != "NOJOIN" {
				t.Fatalf("%s: %v won under composition clustering", tab.ID, key)
			}
			if algo == "NL" {
				nl++
			}
		}
		if nl < 3 {
			t.Fatalf("%s: NL won only %d/4 cells", tab.ID, nl)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	var sumRandom, sumClass float64
	for i, row := range tab.Rows {
		// Composition winner is navigation in every configuration.
		if comp := row[7]; comp != "NL" && comp != "NOJOIN" {
			t.Fatalf("row %d: composition winner %s", i, comp)
		}
		// Random organization never beats class clustering by more than
		// noise (its winners pay interleaving dilution).
		tRandom, tClass := cell(t, tab, i, 4), cell(t, tab, i, 6)
		if tRandom < tClass*0.99 {
			t.Fatalf("row %d: random (%.1fs) beat class (%.1fs)", i, tRandom, tClass)
		}
		sumRandom += tRandom
		sumClass += tClass
	}
	// And in aggregate it is clearly slower (the paper's "factor of 1.5
	// to 2" shows in the 1:3 rows; the 1:1000 rows dilute little).
	if sumRandom < sumClass*1.1 {
		t.Fatalf("random org total (%.1fs) not clearly slower than class (%.1fs)", sumRandom, sumClass)
	}
	// 1:1000 class/random winners are hash joins.
	for i := 0; i < 4; i++ {
		for _, col := range []int{3, 5} {
			if a := tab.Rows[i][col]; a != "PHJ" && a != "CHJ" {
				t.Fatalf("1:1000 row %d col %d winner %s, want a hash join", i, col, a)
			}
		}
	}
}

func TestLoadingAblations(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Loading()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	tuned := cell(t, tab, 0, 1)
	for i := 1; i < 3; i++ {
		if got := cell(t, tab, i, 1); got <= tuned {
			t.Fatalf("config %q (%.1fs) not slower than tuned (%.1fs)", tab.Rows[i][0], got, tuned)
		}
	}
	// The 4MB client cache slows the index-maintaining load (random
	// B+-tree leaf descents revisit pages) and costs extra RPC traffic.
	if small, big := cell(t, tab, 4, 1), cell(t, tab, 3, 1); small <= big {
		t.Fatalf("4MB cache load (%.1fs) not slower than 32MB (%.1fs)", small, big)
	}
	if smallRPC, bigRPC := cell(t, tab, 4, 6), cell(t, tab, 3, 6); smallRPC <= bigRPC {
		t.Fatalf("4MB cache RPCs (%v) not above 32MB (%v)", smallRPC, bigRPC)
	}
	// Only the index-after-load configuration relocates objects.
	for i, row := range tab.Rows {
		reloc := cell(t, tab, i, 3)
		if strings.Contains(row[0], "after load") {
			if reloc == 0 {
				t.Fatal("relocation storm did not relocate")
			}
		} else if reloc != 0 {
			t.Fatalf("config %q relocated %v objects", row[0], reloc)
		}
	}
	// Only standard transactions write log pages.
	for i, row := range tab.Rows {
		logs := cell(t, tab, i, 5)
		if strings.Contains(row[0], "standard") != (logs > 0) {
			t.Fatalf("config %q log pages = %v", row[0], logs)
		}
	}
}

func TestHandleAblations(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Handles()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	speedup := func(i int) float64 {
		s := strings.TrimSuffix(tab.Rows[i][3], "x")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("speedup cell %q", tab.Rows[i][3])
		}
		return v
	}
	// The cold full scan speeds up substantially; all workloads at least
	// do not regress; navigation gains less than the scan (the paper's
	// "without hurting navigation").
	if speedup(0) < 1.2 {
		t.Fatalf("full-scan speedup only %.2fx", speedup(0))
	}
	for i := range tab.Rows {
		if speedup(i) < 0.99 {
			t.Fatalf("workload %q regressed: %.2fx", tab.Rows[i][0], speedup(i))
		}
	}
	for _, navRow := range []int{2, 3} {
		if speedup(navRow) > speedup(0) {
			t.Fatalf("navigation gained more (%.2fx) than the scan (%.2fx)", speedup(navRow), speedup(0))
		}
	}
}

func TestStatsRecorded(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Fig7(); err != nil {
		t.Fatal(err)
	}
	if r.Stats.Len() == 0 {
		t.Fatal("no stats recorded")
	}
	all, err := r.Stats.All()
	if err != nil {
		t.Fatal(err)
	}
	if !all[0].Cold || all[0].Database == "" {
		t.Fatalf("stat entry: %+v", all[0])
	}
}

func TestJoinRunCacheReused(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Fig11(); err != nil {
		t.Fatal(err)
	}
	runs := r.joinRunCount()
	if _, err := r.Fig11(); err != nil {
		t.Fatal(err)
	}
	if r.joinRunCount() != runs {
		t.Fatalf("re-running Fig11 added runs: %d → %d", runs, r.joinRunCount())
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{ID: "T", Title: "title", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow(1, 2.5)
	out := tab.String()
	for _, want := range []string{"T — title", "a", "bb", "2.50", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSortJoinsAblation(t *testing.T) {
	r := testRunner(t)
	tab, err := r.SortJoins()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		hash, smj := cell(t, tab, i, 4), cell(t, tab, i, 5)
		if row[7] == "false" && smj <= hash {
			t.Fatalf("row %d: in-memory SMJ (%.2fs) not slower than hash (%.2fs)", i, smj, hash)
		}
	}
}

func TestOptimizerAccuracy(t *testing.T) {
	r := testRunner(t)
	tab, err := r.OptimizerAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 24 { // 2 scales × 3 clusterings × 4 cells
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	costHits, heurHits := 0, 0
	for _, row := range tab.Rows {
		if row[6] == "✓" {
			costHits++
		}
		if row[8] == "✓" {
			heurHits++
		}
	}
	// The cost model must clearly beat the navigation-biased heuristic
	// and get a solid majority of cells right.
	if costHits <= heurHits {
		t.Fatalf("cost-based hits %d not above heuristic %d", costHits, heurHits)
	}
	if costHits < len(tab.Rows)*8/10 {
		t.Fatalf("cost-based only %d/%d", costHits, len(tab.Rows))
	}
}

func TestClusteredIndexExperiment(t *testing.T) {
	r := testRunner(t)
	tab, err := r.ClusteredIndex()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		cluPages := cell(t, tab, i, 2)
		uncPages := cell(t, tab, i, 4)
		srtPages := cell(t, tab, i, 6)
		if cluPages >= uncPages {
			t.Fatalf("row %d: clustered read %v pages vs unclustered %v", i, cluPages, uncPages)
		}
		if srtPages > uncPages {
			t.Fatalf("row %d: sorted unclustered read more than unsorted", i)
		}
	}
	// Clustered pages grow roughly linearly with selectivity: 90% reads
	// ~90x the pages of 1%.
	lo, hi := cell(t, tab, 0, 2), cell(t, tab, 3, 2)
	if hi < lo*50 || hi > lo*130 {
		t.Fatalf("clustered scaling: %v pages at 1%%, %v at 90%%", lo, hi)
	}
}

func TestWarmColdExperiment(t *testing.T) {
	r := testRunner(t)
	tab, err := r.WarmCold()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	ratios := map[string]float64{}
	for i, row := range tab.Rows {
		cold, warm := cell(t, tab, i, 1), cell(t, tab, i, 2)
		if warm >= cold {
			t.Fatalf("%s: warm (%v) not faster than cold (%v)", row[0], warm, cold)
		}
		ratios[row[0]] = cold / warm
	}
	// The hash joins' working set (10% of the patients, sequential) fits
	// the client cache, so they benefit from warmth far more than NL,
	// whose random navigation floods the cache either way.
	if ratios["PHJ"] <= ratios["NL"] {
		t.Fatalf("warmth ratios: PHJ %.2f not above NL %.2f", ratios["PHJ"], ratios["NL"])
	}
}

func TestRidsOrHandles(t *testing.T) {
	r := testRunner(t)
	tab, err := r.RidsOrHandles()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		ridT, hT := cell(t, tab, i, 2), cell(t, tab, i, 4)
		if hT <= ridT {
			t.Fatalf("row %d: handle table (%.2fs) not slower than rid table (%.2fs)", i, hT, ridT)
		}
		ridMB, hMB := cell(t, tab, i, 3), cell(t, tab, i, 5)
		if hMB < ridMB*7 {
			t.Fatalf("row %d: handle table %.3fMB not ~7.5x rid table %.3fMB", i, hMB, ridMB)
		}
	}
}

func TestPrefetchExperiment(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Prefetch()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Within each workload block, RPCs drop sharply with batch size and
	// elapsed time never grows.
	for block := 0; block < 2; block++ {
		base := block * 3
		rpc1, rpc8, rpc32 := cell(t, tab, base, 3), cell(t, tab, base+1, 3), cell(t, tab, base+2, 3)
		// The sorted scan's index-leaf reads stay unbatched, so require a
		// 3x collapse rather than the full batch factor.
		if rpc8 > rpc1/3 || rpc32 > rpc8 {
			t.Fatalf("block %d: RPCs %v → %v → %v did not collapse", block, rpc1, rpc8, rpc32)
		}
		t1, t32 := cell(t, tab, base, 2), cell(t, tab, base+2, 2)
		if t32 > t1 {
			t.Fatalf("block %d: read-ahead slowed the workload (%v → %v)", block, t1, t32)
		}
	}
}

func TestDoctorRetires(t *testing.T) {
	r := testRunner(t)
	tab, err := r.DoctorRetires()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		actual, naive := cell(t, tab, i, 2), cell(t, tab, i, 4)
		if naive < actual*10 {
			t.Fatalf("row %d: naive (%v) not clearly worse than header-driven (%v)", i, naive, actual)
		}
		if updates := cell(t, tab, i, 1); updates <= 0 {
			t.Fatalf("row %d: no updates", i)
		}
	}
}

func TestPointerVsValue(t *testing.T) {
	r := testRunner(t)
	tab, err := r.PointerVsValue()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		ratio := cell(t, tab, i, 5)
		switch row[2] {
		case "90": // parents needed anyway: pointer join never loses
			if ratio < 0.995 {
				t.Fatalf("row %d: value join won at sel(prov)=90 (ratio %.3f)", i, ratio)
			}
		case "10": // selective key filter: value join never loses badly
			if ratio > 1.0 {
				t.Fatalf("row %d: value join lost at sel(prov)=10 (ratio %.3f)", i, ratio)
			}
		}
	}
}

func TestMeasureElapsed(t *testing.T) {
	r := testRunner(t)
	tab, err := r.MeasureElapsed()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 32 { // 2 DBs × 4 cells × 4 algorithms
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	divergentWithoutReason := 0
	swapsFlagged := 0
	for i, row := range tab.Rows {
		ratio := cell(t, tab, i, 6)
		if ratio > 2 && row[7] == "" {
			divergentWithoutReason++
		}
		if strings.Contains(row[7], "swapped") {
			swapsFlagged++
		}
	}
	if divergentWithoutReason != 0 {
		t.Fatalf("%d divergent runs without a reason", divergentWithoutReason)
	}
	// The 1:3 grid swaps several hash tables; they must be flagged.
	if swapsFlagged < 3 {
		t.Fatalf("only %d swapped runs flagged", swapsFlagged)
	}
}
