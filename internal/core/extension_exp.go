package core

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/join"
	"treebench/internal/oql"
)

// SortJoins reproduces the decision the paper reports in one line —
// "We started testing sort-based algorithms but they proved to be worse
// than hash-based ones and we dropped them" (§5.1) — by running the
// sort-merge pointer join against the best hash join over the Figure 11/12
// grids.
func (r *Runner) SortJoins() (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: "Sort-merge pointer join vs the best hash join (why the paper dropped sorting)",
		Columns: []string{"database", "sel pat%", "sel prov%",
			"best hash", "t hash", "t SMJ", "SMJ ratio", "SMJ spilled"},
	}
	scales := r.bothScales()

	for _, sc := range scales {
		key := r.dsKeyFor(sc[0], sc[1], derby.ClassCluster)
		err := r.withDataset(sc[0], sc[1], derby.ClassCluster, func(d *derby.Dataset) error {
			for _, sel := range selGrid {
				bestAlgo := join.Algorithm("")
				bestSec := 0.0
				for _, algo := range []join.Algorithm{join.PHJ, join.CHJ} {
					res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
					if err != nil {
						return err
					}
					if bestAlgo == "" || res.Elapsed.Seconds() < bestSec {
						bestAlgo, bestSec = algo, res.Elapsed.Seconds()
					}
				}
				smj, err := r.coldJoin(d, key, sel[0], sel[1], join.SMJ)
				if err != nil {
					return err
				}
				t.AddRow(dbLabel(sc[0], sc[1]), sel[0], sel[1],
					string(bestAlgo), bestSec, smj.Elapsed.Seconds(),
					smj.Elapsed.Seconds()/bestSec, smj.Swapped)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"in-memory cells: SMJ pays the sort on top of hash-equivalent work and always loses — the paper's reason for dropping it",
		"swapped cells: SMJ's external sort is sequential, so (like HHJ) it dodges the random-fault thrashing the in-memory hash joins suffer")
	return t, nil
}

// OptimizerAccuracy measures what the paper set out to build and never
// finished: a cost model accurate enough to drive the search strategy. For
// every grid cell of every database/clustering, the cost-based and
// heuristic strategies' predicted winners are scored against the measured
// winner (near-ties within 10% count as hits for whichever of the pair was
// picked).
func (r *Runner) OptimizerAccuracy() (*Table, error) {
	t := &Table{
		ID:    "O1",
		Title: "Optimizer strategies vs measured winners (the paper's unreached goal)",
		Columns: []string{"database", "clustering", "sel pat%", "sel prov%",
			"measured best", "cost-based pick", "ok", "heuristic pick", "ok"},
	}
	scales := r.bothScales()

	costHits, heurHits, cells := 0, 0, 0
	for _, sc := range scales {
		for _, cl := range []derby.Clustering{derby.ClassCluster, derby.RandomOrg, derby.CompositionCluster} {
			key := r.dsKeyFor(sc[0], sc[1], cl)
			err := r.withDataset(sc[0], sc[1], cl, func(d *derby.Dataset) error {
				for _, sel := range selGrid {
					// Measure all four algorithms (cached across experiments).
					times := map[join.Algorithm]float64{}
					best := join.Algorithm("")
					for _, algo := range join.Algorithms() {
						res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
						if err != nil {
							return err
						}
						times[algo] = res.Elapsed.Seconds()
						if best == "" || times[algo] < times[best] {
							best = algo
						}
					}
					// Ask both strategies.
					env := join.EnvForDerby(d)
					q := env.BySelectivity(sel[0], sel[1])
					src := fmt.Sprintf(
						"select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < %d and p.upin < %d",
						q.K1, q.K2)
					ast, err := oql.Parse(src)
					if err != nil {
						return err
					}
					pick := func(s oql.Strategy) (join.Algorithm, error) {
						pl := &oql.Planner{DB: d.DB, Strategy: s}
						plan, err := pl.Plan(ast)
						if err != nil {
							return "", err
						}
						return plan.Algorithm, nil
					}
					costPick, err := pick(oql.CostBased)
					if err != nil {
						return err
					}
					heurPick, err := pick(oql.Heuristic)
					if err != nil {
						return err
					}
					// A pick is a hit when it lands within 10% of the best.
					hit := func(algo join.Algorithm) string {
						if times[algo] <= times[best]*1.10 {
							return "✓"
						}
						return fmt.Sprintf("✗ %.1fx", times[algo]/times[best])
					}
					ch, hh := hit(costPick), hit(heurPick)
					if ch == "✓" {
						costHits++
					}
					if hh == "✓" {
						heurHits++
					}
					cells++
					t.AddRow(dbLabel(sc[0], sc[1]), cl.String(), sel[0], sel[1],
						string(best), string(costPick), ch, string(heurPick), hh)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cost-based strategy within 10%% of the measured best in %d/%d cells; the navigation-biased heuristic in %d/%d", costHits, cells, heurHits, cells),
		"§2: the heuristic optimizer's \"best\" is \"sometimes rather bad\"; the cost model closes most of that gap")
	return t, nil
}
