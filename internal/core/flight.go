package core

import "sync"

// Flight is a keyed singleflight memo: the first Do for a key runs fn
// exactly once, every concurrent or later Do for the same key waits for
// (or immediately gets) that one result. It unifies the scheduler's three
// former hand-rolled disciplines — the dataset memo, the per-dataset run
// locks, and the query server's per-replica sync.Once — into one helper:
// both the runner's snapshot cache and the server's snapshot generation
// now go through a Flight.
//
// Results (including errors) are cached forever; Flight keys must
// therefore be deterministic configurations whose outcome never changes
// between calls, which is exactly what frozen dataset snapshots are.
type Flight[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]
}

type flightCall[V any] struct {
	once sync.Once
	v    V
	err  error
}

// Do returns the singleflight result of fn for key.
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*flightCall[V])
	}
	c, ok := f.calls[key]
	if !ok {
		c = &flightCall[V]{}
		f.calls[key] = c
	}
	f.mu.Unlock()
	c.once.Do(func() { c.v, c.err = fn() })
	return c.v, c.err
}

// Len returns the number of keys ever flown (completed or in flight).
func (f *Flight[K, V]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
