package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightSingleflight hammers one key from many goroutines: fn runs
// exactly once, everyone gets its result, and distinct keys fly
// separately.
func TestFlightSingleflight(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int32
	const callers = 32
	results := make([]int, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = f.Do("k", func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d got (%d, %v)", i, results[i], errs[i])
		}
	}
	if _, err := f.Do("other", func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
}

// TestFlightCachesErrors pins the documented contract: a failed flight is
// remembered, not retried — keys must be deterministic configurations.
func TestFlightCachesErrors(t *testing.T) {
	var f Flight[int, string]
	calls := 0
	boom := fmt.Errorf("generation failed")
	for i := 0; i < 3; i++ {
		_, err := f.Do(1, func() (string, error) {
			calls++
			return "", boom
		})
		if err != boom {
			t.Fatalf("call %d: err = %v, want the original error", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failed fn retried %d times, want cached after 1", calls)
	}
}
