package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Gnuplot support: the authors thank Jérôme Siméon "for giving us a hand
// in using YAT to convert data from O2 to Gnuplot"; this is that
// converter, built in. Each experiment table renders to a whitespace
// .dat file and a .gp script that plots its numeric columns.

// isNumeric reports whether every non-empty cell of column c parses as a
// number.
func (t *Table) isNumeric(c int) bool {
	any := false
	for _, row := range t.Rows {
		if c >= len(row) || row[c] == "" {
			continue
		}
		if _, err := strconv.ParseFloat(row[c], 64); err != nil {
			return false
		}
		any = true
	}
	return any
}

// GnuplotData renders the table as a gnuplot .dat file: a comment header
// naming the columns, then whitespace-separated rows (non-numeric cells
// are quoted, embedded spaces replaced so columns stay aligned).
func (t *Table) GnuplotData() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	b.WriteString("#")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, " %d:%s", i+1, sanitizeToken(c))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if _, err := strconv.ParseFloat(cell, 64); err == nil {
				b.WriteString(cell)
			} else {
				b.WriteString(`"` + sanitizeToken(cell) + `"`)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// GnuplotScript renders a .gp script plotting every numeric column of the
// table against the first numeric column (or the row number when there is
// only one). datFile is the data file name the script references.
func (t *Table) GnuplotScript(datFile string) string {
	var numeric []int
	for c := range t.Columns {
		if t.isNumeric(c) {
			numeric = append(numeric, c)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# gnuplot script for %s\n", t.ID)
	fmt.Fprintf(&b, "set title %q\n", t.ID+" — "+t.Title)
	fmt.Fprintf(&b, "set terminal svg size 900,540\n")
	fmt.Fprintf(&b, "set output %q\n", strings.TrimSuffix(datFile, ".dat")+".svg")
	b.WriteString("set key outside\nset grid\n")
	if len(numeric) < 2 {
		// Nothing meaningful to plot against; emit a bar of the single
		// numeric column by row index.
		if len(numeric) == 1 {
			fmt.Fprintf(&b, "set style data histogram\n")
			fmt.Fprintf(&b, "plot %q using %d title %q\n", datFile, numeric[0]+1, t.Columns[numeric[0]])
		} else {
			b.WriteString("# table has no numeric columns to plot\n")
		}
		return b.String()
	}
	x := numeric[0]
	fmt.Fprintf(&b, "set xlabel %q\n", t.Columns[x])
	b.WriteString("plot ")
	first := true
	for _, c := range numeric[1:] {
		if !first {
			b.WriteString(", \\\n     ")
		}
		first = false
		fmt.Fprintf(&b, "%q using %d:%d with linespoints title %q",
			datFile, x+1, c+1, t.Columns[c])
	}
	b.WriteString("\n")
	return b.String()
}

// sanitizeToken makes a string safe as a single gnuplot token.
func sanitizeToken(s string) string {
	s = strings.ReplaceAll(s, `"`, "'")
	return strings.ReplaceAll(s, " ", "_")
}
