package core

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "sample",
		Columns: []string{"selectivity%", "algorithm", "time (sec)"},
	}
	t.AddRow(10, "PHJ", 1.5)
	t.AddRow(90, "NL", 80.25)
	return t
}

func TestGnuplotData(t *testing.T) {
	tab := sampleTable()
	dat := tab.GnuplotData()
	lines := strings.Split(strings.TrimSpace(dat), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %d\n%s", len(lines), dat)
	}
	if !strings.HasPrefix(lines[0], "# T1") || !strings.Contains(lines[1], "3:time_(sec)") {
		t.Fatalf("header:\n%s", dat)
	}
	if lines[2] != `10  "PHJ"  1.50` {
		t.Fatalf("row: %q", lines[2])
	}
}

func TestGnuplotScriptPlotsNumericColumns(t *testing.T) {
	tab := sampleTable()
	gp := tab.GnuplotScript("t1.dat")
	for _, want := range []string{
		`set xlabel "selectivity%"`,
		`"t1.dat" using 1:3 with linespoints title "time (sec)"`,
		`set output "t1.svg"`,
	} {
		if !strings.Contains(gp, want) {
			t.Fatalf("script missing %q:\n%s", want, gp)
		}
	}
	// The non-numeric algorithm column must not be plotted.
	if strings.Contains(gp, "using 1:2") {
		t.Fatalf("plotted a string column:\n%s", gp)
	}
}

func TestGnuplotScriptDegenerate(t *testing.T) {
	one := &Table{ID: "X", Title: "one numeric", Columns: []string{"label", "v"}}
	one.AddRow("a", 1)
	gp := one.GnuplotScript("x.dat")
	if !strings.Contains(gp, "histogram") {
		t.Fatalf("single-column fallback missing:\n%s", gp)
	}
	none := &Table{ID: "Y", Title: "no numerics", Columns: []string{"label"}}
	none.AddRow("only-text")
	gp = none.GnuplotScript("y.dat")
	if !strings.Contains(gp, "no numeric columns") {
		t.Fatalf("no-numeric fallback missing:\n%s", gp)
	}
}

func TestGnuplotOnRealExperiment(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	dat := tab.GnuplotData()
	if len(strings.Split(strings.TrimSpace(dat), "\n")) != 2+len(tab.Rows) {
		t.Fatalf("F7 dat malformed:\n%s", dat)
	}
	gp := tab.GnuplotScript("F7.dat")
	if !strings.Contains(gp, "using 1:2") || !strings.Contains(gp, "using 1:3") {
		t.Fatalf("F7 script incomplete:\n%s", gp)
	}
}
