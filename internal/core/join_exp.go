package core

import (
	"fmt"
	"sort"

	"treebench/internal/derby"
	"treebench/internal/join"
)

// selGrid is the paper's 2×2 selectivity grid, in its row order:
// (pat, prov) ∈ (10,10), (10,90), (90,10), (90,90).
var selGrid = [][2]int{{10, 10}, {10, 90}, {90, 10}, {90, 90}}

// Fig10 reproduces Figure 10: the hash-table sizes for PHJ and CHJ on both
// databases at the grid's corner selectivities. The paper's approximation
// (64 B per parent entry; a 60 B slot per provider plus 8 B per selected
// patient for CHJ) is printed next to the bytes our tables actually
// allocate.
func (r *Runner) Fig10() (*Table, error) {
	t := &Table{
		ID:    "F10",
		Title: "Approximation of the hash table sizes",
		Columns: []string{"algorithm", "providers", "relationship", "sel pat%", "sel prov%",
			"paper formula (MB)", "measured (MB)", "swapped"},
	}
	scales := r.bothScales()

	for _, algo := range []join.Algorithm{join.PHJ, join.CHJ} {
		for _, sc := range scales {
			key := r.dsKeyFor(sc[0], sc[1], derby.ClassCluster)
			err := r.withDataset(sc[0], sc[1], derby.ClassCluster, func(d *derby.Dataset) error {
				for _, sel := range [][2]int{{10, 10}, {90, 90}} {
					res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
					if err != nil {
						return err
					}
					var formula float64
					if algo == join.PHJ {
						formula = float64(d.NumProviders) * float64(sel[1]) / 100 * 64
					} else {
						formula = float64(d.NumProviders)*60 + float64(d.NumPatients)*float64(sel[0])/100*8
					}
					t.AddRow(string(algo), d.NumProviders, d.Relationship(), sel[0], sel[1],
						formula/(1<<20), float64(res.HashTableBytes)/(1<<20), res.Swapped)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper formula preallocates a 60B slot for every provider; the implementation grows groups lazily, so CHJ at low patient selectivity measures smaller than the approximation",
		fmt.Sprintf("sizes scale with 1/SF (SF=%d); the memory budget scales identically, so swap behaviour matches the paper's", r.Config.SF))
	return t, nil
}

// joinGrid runs the four §5.1 algorithms over the full selectivity grid on
// one database and renders a Figure 11–14 style table: per grid cell, the
// algorithms ranked by time with their ratio to the winner.
func (r *Runner) joinGrid(id, title string, providers, avg int, cl derby.Clustering) (*Table, error) {
	key := r.dsKeyFor(providers, avg, cl)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"sel pat%", "sel prov%", "algorithm", "time ratio", "time (sec)"},
	}
	algos := join.Algorithms()
	if r.Config.EnableHHJ {
		algos = append(algos, join.HHJ)
	}
	err := r.withDataset(providers, avg, cl, func(d *derby.Dataset) error {
		for _, sel := range selGrid {
			type row struct {
				algo join.Algorithm
				sec  float64
			}
			var rows []row
			for _, algo := range algos {
				res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
				if err != nil {
					return err
				}
				rows = append(rows, row{algo, res.Elapsed.Seconds()})
			}
			sort.SliceStable(rows, func(i, j int) bool { return rows[i].sec < rows[j].sec })
			best := rows[0].sec
			for _, rw := range rows {
				t.AddRow(sel[0], sel[1], string(rw.algo), rw.sec/best, rw.sec)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig11 reproduces Figure 11: class clustering, 2×10³ providers × 1:1000.
func (r *Runner) Fig11() (*Table, error) {
	p, a := r.smallScale()
	return r.joinGrid("F11",
		fmt.Sprintf("One file per Class, %s (Providers × avg patients)", dbLabel(p, a)),
		p, a, derby.ClassCluster)
}

// Fig12 reproduces Figure 12: class clustering, 10⁶ providers × 1:3.
func (r *Runner) Fig12() (*Table, error) {
	p, a := r.bigScale()
	return r.joinGrid("F12",
		fmt.Sprintf("One file per Class, %s (Providers × avg patients)", dbLabel(p, a)),
		p, a, derby.ClassCluster)
}

// Fig13 reproduces Figure 13: composition clustering, 2×10³ × 1:1000.
func (r *Runner) Fig13() (*Table, error) {
	p, a := r.smallScale()
	return r.joinGrid("F13",
		fmt.Sprintf("Composition Cluster, %s (Providers × avg patients)", dbLabel(p, a)),
		p, a, derby.CompositionCluster)
}

// Fig14 reproduces Figure 14: composition clustering, 10⁶ × 1:3.
func (r *Runner) Fig14() (*Table, error) {
	p, a := r.bigScale()
	return r.joinGrid("F14",
		fmt.Sprintf("Composition Cluster, %s (Providers × avg patients)", dbLabel(p, a)),
		p, a, derby.CompositionCluster)
}

// Fig15 reproduces Figure 15: the winning algorithm and its time for every
// (relationship, sel pat, sel prov) under the random, class and composition
// organizations. The class and composition numbers reuse the Figure 11–14
// runs; the random-organization runs are its own contribution.
func (r *Runner) Fig15() (*Table, error) {
	t := &Table{
		ID:    "F15",
		Title: "Summarizing Results: Winning Algorithms",
		Columns: []string{"rel", "sel pat%", "sel prov%",
			"best (random)", "t random", "best (class)", "t class", "best (comp)", "t comp"},
	}
	scales := r.bothScales()

	winner := func(providers, avg int, cl derby.Clustering, sel [2]int) (join.Algorithm, float64, error) {
		key := r.dsKeyFor(providers, avg, cl)
		bestAlgo := join.Algorithm("")
		bestSec := 0.0
		err := r.withDataset(providers, avg, cl, func(d *derby.Dataset) error {
			for _, algo := range join.Algorithms() {
				res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
				if err != nil {
					return err
				}
				if bestAlgo == "" || res.Elapsed.Seconds() < bestSec {
					bestAlgo, bestSec = algo, res.Elapsed.Seconds()
				}
			}
			return nil
		})
		if err != nil {
			return "", 0, err
		}
		return bestAlgo, bestSec, nil
	}

	for _, sc := range scales {
		rel := fmt.Sprintf("1:%d", sc[1])
		for _, sel := range selGrid {
			var cells []any
			cells = append(cells, rel, sel[0], sel[1])
			for _, cl := range []derby.Clustering{derby.RandomOrg, derby.ClassCluster, derby.CompositionCluster} {
				algo, sec, err := winner(sc[0], sc[1], cl, sel)
				if err != nil {
					return nil, err
				}
				cells = append(cells, string(algo), sec)
			}
			t.AddRow(cells...)
		}
	}
	t.Notes = append(t.Notes,
		"expected shapes: hash joins win under random/class organization, navigation under composition; random is 1.5–2x slower than class for the same winner")
	return t, nil
}
