package core

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/join"
)

// MeasureElapsed validates §3.5's measurement lesson — "we discovered that
// elapsed time was as good a measure as anything else. In most cases, it
// evolved similarly to the number of RPCs and IOs. When this was not the
// case, there was always a good reason, e.g., a hash on a very large table
// implying a lot of memory swap" — by decomposing every Figure 11/12 run's
// elapsed time into its I/O-predicted share and flagging the divergent
// runs, which are exactly the swapped ones.
func (r *Runner) MeasureElapsed() (*Table, error) {
	t := &Table{
		ID:    "M1",
		Title: "Does elapsed time track I/Os? (§3.5) — divergences and their reasons",
		Columns: []string{"database", "sel pat%", "sel prov%", "algorithm",
			"elapsed (sec)", "I/O share", "elapsed/I/O", "reason if divergent"},
	}
	divergent, swaps := 0, 0
	for _, sc := range r.bothScales() {
		key := r.dsKeyFor(sc[0], sc[1], derby.ClassCluster)
		err := r.withDataset(sc[0], sc[1], derby.ClassCluster, func(d *derby.Dataset) error {
			for _, sel := range selGrid {
				for _, algo := range join.Algorithms() {
					res, err := r.coldJoin(d, key, sel[0], sel[1], algo)
					if err != nil {
						return err
					}
					ioSec := float64(res.Counters.DiskReads) * d.DB.Meter.Model.PageRead.Seconds()
					elapsed := res.Elapsed.Seconds()
					ratio := elapsed / ioSec
					reason := ""
					// "Similar" means I/O-dominated: past 2x, something else
					// (swap, result build, handle churn) is the story.
					if ratio > 2 {
						divergent++
						if res.Swapped {
							swaps++
							reason = fmt.Sprintf("hash table %.1fMB swapped", float64(res.HashTableBytes)/(1<<20))
						} else if res.Counters.ResultAppends > res.Counters.DiskReads*10 {
							reason = "result construction dominates"
						} else {
							reason = "per-object CPU dominates"
						}
					}
					t.AddRow(dbLabel(sc[0], sc[1]), sel[0], sel[1], string(algo),
						elapsed, ioSec, ratio, reason)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of %d runs diverge from their I/O share by over 2x; %d of those are swapped hash tables — §3.5's 'always a good reason'", divergent, len(t.Rows), swaps),
		"the Figure 3 schema records elapsed time, RPCs and I/Os side by side for exactly this cross-check")
	return t, nil
}
