package core

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/join"
	"treebench/internal/selection"
)

// ClusteredIndex contrasts the clustered mrn index with the unclustered num
// index at the same selectivities — the distinction §4.2 opens with ("an
// index may be clustered or not") and the reason the authors were surprised
// an unclustered index could stay useful once sorted.
func (r *Runner) ClusteredIndex() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "S1",
		Title: "Clustered (mrn) vs unclustered (num) index selections on Patients",
		Columns: []string{"selectivity%",
			"clustered time", "clustered pages",
			"unclustered time", "unclustered pages",
			"unclustered+sort time", "unclustered+sort pages"},
	}
	n := d.NumPatients
	for _, pct := range []int{1, 10, 50, 90} {
		// Clustered access: mrn < k.
		d.DB.ColdRestart()
		clu, err := selection.Run(d.DB, selection.Request{
			Extent:   d.Patients,
			Where:    selection.Pred{Attr: "mrn", Op: selection.Lt, K: int64(n*pct/100) + 1},
			Projects: []string{"age"},
		}, selection.IndexScan)
		if err != nil {
			return nil, err
		}
		// Unclustered access: num > k, plain and sorted.
		unc, err := r.coldSelection(d, pct*10, selection.IndexScan)
		if err != nil {
			return nil, err
		}
		srt, err := r.coldSelection(d, pct*10, selection.SortedIndexScan)
		if err != nil {
			return nil, err
		}
		t.AddRow(pct,
			clu.Elapsed.Seconds(), clu.Counters.DiskReads,
			unc.Elapsed.Seconds(), unc.Counters.DiskReads,
			srt.Elapsed.Seconds(), srt.Counters.DiskReads)
	}
	t.Notes = append(t.Notes,
		"the clustered index reads only the selected fraction of the pages at any selectivity",
		"sorting the unclustered index's Rids recovers the one-read-per-page property but still touches nearly every page once keys are random")
	return t, nil
}

// WarmCold contrasts the paper's cold methodology ("all queries were run
// twice on a cold system; the server was shutdown at the end of each
// evaluation") with warm-cache reruns: which algorithms' costs are cache
// state, and which are CPU.
func (r *Runner) WarmCold() (*Table, error) {
	p, a := r.smallScale()
	d, err := r.dataset(p, a, derby.ClassCluster)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "W1",
		Title:   "Cold vs warm caches, class clustering 1:1000, sel(pat)=10% sel(prov)=10%",
		Columns: []string{"algorithm", "cold (sec)", "warm (sec)", "cold/warm", "warm pages read"},
	}
	env := join.EnvForDerby(d)
	q := env.BySelectivity(10, 10)
	for _, algo := range join.Algorithms() {
		d.DB.ColdRestart()
		cold, err := join.Run(env, algo, q)
		if err != nil {
			return nil, err
		}
		// Re-run with whatever the first execution left cached, measuring
		// from a reset meter (the engine allows this by resetting only
		// the meter, not the caches).
		d.DB.Meter.Reset()
		warm, err := join.Run(env, algo, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(algo),
			cold.Elapsed.Seconds(), warm.Elapsed.Seconds(),
			cold.Elapsed.Seconds()/warm.Elapsed.Seconds(),
			warm.Counters.DiskReads)
		r.logf("  warm/cold %-7s cold=%.2fs warm=%.2fs", algo, cold.Elapsed.Seconds(), warm.Elapsed.Seconds())
	}
	t.Notes = append(t.Notes,
		"the index-driven algorithms' working set (10% of the patients, read sequentially) fits the client cache, so their warm reruns shed nearly all I/O, leaving the §4 per-object CPU",
		fmt.Sprintf("NL's random navigation touches most of the %d patient pages, far beyond the cache, so warmth buys it little — the paper's cold methodology mainly disciplines the index algorithms", d.Patients.File.NumPages()))
	return t, nil
}
