package core

import "treebench/internal/selection"

// Prefetch measures sequential read-ahead in the client cache — the
// engine-level follow-up to §3.2's cache lesson ("by giving more memory to
// the client, you reduce both IOs and RPCs"): batching sequential misses
// reduces the RPC column of the Figure 3 schema directly.
func (r *Runner) Prefetch() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "P1",
		Title:   "Client-cache read-ahead on sequential workloads",
		Columns: []string{"workload", "read-ahead", "time (sec)", "RPCs", "client faults"},
	}
	defer d.DB.Client.SetReadAhead(1)
	for _, ra := range []int{1, 8, 32} {
		d.DB.ColdRestart()
		d.DB.Client.SetReadAhead(ra)
		res, err := selection.Run(d.DB, selection.Request{
			Extent:   d.Patients,
			Where:    selPred(d.NumPatients, 900),
			Projects: []string{"age"},
		}, selection.FullScan)
		if err != nil {
			return nil, err
		}
		t.AddRow("full scan, 90% selection", ra,
			res.Elapsed.Seconds(), res.Counters.RPCs, res.Counters.ClientFaults)
	}
	for _, ra := range []int{1, 8, 32} {
		d.DB.ColdRestart()
		d.DB.Client.SetReadAhead(ra)
		res, err := selection.Run(d.DB, selection.Request{
			Extent:   d.Patients,
			Where:    selPred(d.NumPatients, 900),
			Projects: []string{"age"},
		}, selection.SortedIndexScan)
		if err != nil {
			return nil, err
		}
		t.AddRow("sorted index scan, 90% selection", ra,
			res.Elapsed.Seconds(), res.Counters.RPCs, res.Counters.ClientFaults)
	}
	t.Notes = append(t.Notes,
		"read-ahead collapses the RPC count roughly by its batch size on sequential scans; elapsed time moves only by the per-RPC overhead, because the page reads themselves are unchanged",
		"the paper's Figure 3 schema counts RPCsnumber and RPCstotalsize for exactly this kind of tuning")
	return t, nil
}
