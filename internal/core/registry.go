package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ExperimentInfo describes one runnable experiment for the CLI and docs.
type ExperimentInfo struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Table, error)
}

// Experiments lists every reproduced table/figure plus the ablations, in
// presentation order.
func Experiments() []ExperimentInfo {
	return []ExperimentInfo{
		{"F6", "Selection: unclustered index vs no index across selectivities (§4.2)", (*Runner).Fig6},
		{"F7", "Figure 7: sorted unclustered index vs no index", (*Runner).Fig7},
		{"F9", "Figure 9: standard scan vs sorted index scan cost breakdown", (*Runner).Fig9},
		{"F10", "Figure 10: hash table sizes", (*Runner).Fig10},
		{"F11", "Figure 11: class clustering, 2x10^3 providers, 1:1000", (*Runner).Fig11},
		{"F12", "Figure 12: class clustering, 10^6 providers, 1:3", (*Runner).Fig12},
		{"F13", "Figure 13: composition clustering, 2x10^3 providers, 1:1000", (*Runner).Fig13},
		{"F14", "Figure 14: composition clustering, 10^6 providers, 1:3", (*Runner).Fig14},
		{"F15", "Figure 15: winning algorithms across physical organizations", (*Runner).Fig15},
		{"L1", "§3.2 loading ablations", (*Runner).Loading},
		{"H1", "§4.4 handle-management ablations", (*Runner).Handles},
		{"A1", "sort-merge join vs hash joins (§5.1's dropped alternative)", (*Runner).SortJoins},
		{"B1", "index backends: LSM write absorption vs read amplification", (*Runner).Backends},
		{"O1", "optimizer accuracy: cost-based vs heuristic vs measured", (*Runner).OptimizerAccuracy},
		{"M1", "does elapsed time track I/Os? (§3.5)", (*Runner).MeasureElapsed},
		{"D1", "a doctor retires: header-driven index maintenance (§4.4)", (*Runner).DoctorRetires},
		{"P1", "client-cache read-ahead (RPC batching)", (*Runner).Prefetch},
		{"R1", "hash table of Rids vs Handles (§4.1)", (*Runner).RidsOrHandles},
		{"S1", "clustered vs unclustered index selections (§4.2)", (*Runner).ClusteredIndex},
		{"V1", "pointer-based vs value-based navigation ([14])", (*Runner).PointerVsValue},
		{"W1", "cold vs warm caches (the paper's methodology, §2)", (*Runner).WarmCold},
	}
}

// ExperimentIDs returns the registered ids, sorted by presentation order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// experimentsByID indexes the registry once; the registry is static, so
// repeated Run calls skip the linear scan.
var experimentsByID = sync.OnceValue(func() map[string]ExperimentInfo {
	m := make(map[string]ExperimentInfo, len(Experiments()))
	for _, e := range Experiments() {
		m[e.ID] = e
	}
	return m
})

// sortedKnownIDs renders the known ids, sorted, exactly once for the
// unknown-experiment error.
var sortedKnownIDs = sync.OnceValue(func() string {
	ids := ExperimentIDs()
	sort.Strings(ids)
	return "[" + strings.Join(ids, " ") + "]"
})

// unknownExperiment is the error for an id not in the registry.
func unknownExperiment(id string) error {
	return fmt.Errorf("core: unknown experiment %q (known: %s)", id, sortedKnownIDs())
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Table, error) {
	e, ok := experimentsByID()[id]
	if !ok {
		return nil, unknownExperiment(id)
	}
	return e.Run(r)
}

// RunAll executes every experiment, formatting each table to w in
// presentation order. Independent experiments run concurrently on up to
// Config.Jobs workers (default DefaultJobs()); the simulated clocks make
// the output byte-identical to a sequential run.
func (r *Runner) RunAll(w io.Writer) error {
	return r.RunMany(ExperimentIDs(), r.Config.jobs(), func(t *Table) error {
		t.Format(w)
		_, err := fmt.Fprintln(w)
		return err
	})
}
