package core

import (
	"fmt"

	"treebench/internal/collection"
	"treebench/internal/derby"
	"treebench/internal/object"
	"treebench/internal/storage"
)

// DoctorRetires reproduces §4.4's motivating update scenario: "Suppose
// that we have a collection containing all patients … indexed by their
// primary care provider attribute. Now, suppose that one doctor retires and
// that we want to assign nil to all his/her patients. How will the system
// know which index to update unless each patient carries that
// information?"
//
// The experiment indexes Patients by primary_care_provider, retires a
// fraction of the providers, and measures the header-driven index
// maintenance the engine performs, next to the cost of the alternative the
// paper dismisses — scanning every index on the class per update batch to
// find the entries.
func (r *Runner) DoctorRetires() (*Table, error) {
	// This experiment mutates the database, so it runs on a writable
	// copy-on-write fork of the shared snapshot: the updates stay private
	// to this session while the generation is still shared with every
	// read-only experiment on the same configuration.
	p, a := r.smallScale()
	d, err := r.mutableDataset(p, a, derby.ClassCluster)
	if err != nil {
		return nil, err
	}
	db := d.DB
	// The §4.4 index: patients by their provider.
	pcpIx, _, err := db.CreateIndex(d.Patients, "primary_care_provider", false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "D1",
		Title: "A doctor retires (§4.4): header-driven index maintenance vs scanning all indexes",
		Columns: []string{"retired providers", "patients updated",
			"time (sec)", "pages read", "naive scan-all-indexes estimate (sec)"},
	}

	clientsIdx := d.Providers.Class.AttrIndex("clients")
	// Total leaf pages of every index on Patients — what the naive system
	// would have to scan per update batch to locate memberships.
	allIndexPages := 0
	for _, ix := range d.Patients.Indexes() {
		allIndexPages += ix.Backend.Pages()
	}

	retired := 0
	for _, pct := range []int{1, 5} {
		target := d.NumProviders * pct / 100
		if target <= retired {
			target = retired + 1 // at tiny scales every wave retires someone
		}
		db.ColdRestart()
		updates := 0
		for ; retired < target; retired++ {
			prid := d.ProviderRids[retired]
			rec, err := storage.Get(db.Client, prid)
			if err != nil {
				return nil, err
			}
			v, err := object.DecodeAttr(d.Providers.Class, rec, clientsIdx)
			if err != nil {
				return nil, err
			}
			members, err := collection.Elems(db.Client, v.Ref)
			if err != nil {
				return nil, err
			}
			for _, m := range members {
				if err := db.UpdateAttr(nil, d.Patients, m, "primary_care_provider",
					object.RefValue(storage.NilRid)); err != nil {
					return nil, err
				}
				updates++
			}
		}
		elapsed := db.Meter.Elapsed().Seconds()
		pages := db.Meter.N.DiskReads
		// The dismissed alternative: without per-object membership lists,
		// each update must search every index on the class for entries
		// referencing the object — a full leaf scan per index per update,
		// since an index on an arbitrary collection need not be keyed by
		// anything the update knows.
		naive := elapsed + float64(updates)*float64(allIndexPages)*
			db.Meter.Model.PageRead.Seconds()
		t.AddRow(fmt.Sprintf("%d (%d%%)", target, pct), updates, elapsed, pages, naive)
		r.logf("  retire %d%%: %d updates in %.2fs (naive est %.0fs)", pct, updates, elapsed, naive)
	}
	// Consistency: the nil key now holds every updated patient.
	nilKey := int64(storage.NilRid.Page)<<16 | int64(storage.NilRid.Slot)
	rids, err := pcpIx.Backend.Lookup(db.Client, nilKey)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("after both waves the provider index holds %d patients under nil — maintained entirely through the objects' header membership lists", len(rids)),
		"the naive estimate prices §4.4's dismissed alternative ('we scan all indexes containing patients, but that is obviously not a reasonable solution')")
	return t, nil
}
