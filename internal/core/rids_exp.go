package core

import (
	"treebench/internal/index"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// RidsOrHandles reproduces §4.1's question — "Rid and Handle are two
// internal types of the O2 system … Get the Rids of patients whose mrn ≤ k"
// — as a measured choice: when an operator builds a hash table over
// selected objects, should the entries be bare 8-byte Rids or materialized
// 60-byte Handles?
//
// The Handle variant pays the §4.3 get/unref cost per element and holds
// 7.5× the memory (which can push the table past the budget); the Rid
// variant defers materialization to whoever consumes the table. This is the
// observation that led the authors into §4's Handle investigation.
func (r *Runner) RidsOrHandles() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "R1",
		Title: "Hash table of selected patients: Rids or Handles? (§4.1)",
		Columns: []string{"selectivity%", "entries",
			"rids time", "rids table (MB)",
			"handles time", "handles table (MB)", "handles swapped"},
	}
	ix := d.DB.IndexOn("Patients", "mrn")
	for _, pct := range []int{10, 50, 90} {
		k := int64(d.NumPatients*pct/100) + 1

		run := func(materialize bool) (float64, int64, bool, error) {
			d.DB.ColdRestart()
			meter := d.DB.Meter
			region := sim.NewRegion(meter, d.DB.Machine.HashBudget)
			table := make(map[storage.Rid]struct{})
			entryBytes := int64(storage.EncodedRidLen)
			if materialize {
				entryBytes = 60 // the §4.4 Handle structure
			}
			err := ix.Backend.Scan(d.DB.Client, 1, k, func(e index.Entry) (bool, error) {
				if materialize {
					h, err := d.DB.Handles.Get(e.Rid)
					if err != nil {
						return false, err
					}
					d.DB.Handles.Unref(h)
				}
				meter.HashInsert()
				region.Grow(entryBytes)
				region.RandomWrite()
				table[e.Rid] = struct{}{}
				return true, nil
			})
			if err != nil {
				return 0, 0, false, err
			}
			// One probing pass over the table, as a consumer would.
			for rid := range table {
				meter.HashProbe()
				region.RandomRead()
				_ = rid
			}
			return meter.Elapsed().Seconds(), region.Size(), region.Swapping(), nil
		}

		ridT, ridBytes, _, err := run(false)
		if err != nil {
			return nil, err
		}
		hT, hBytes, hSwap, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(pct, d.NumPatients*pct/100,
			ridT, float64(ridBytes)/(1<<20),
			hT, float64(hBytes)/(1<<20), hSwap)
		r.logf("  rids-vs-handles %d%%: rids=%.1fs handles=%.1fs", pct, ridT, hT)
	}
	t.Notes = append(t.Notes,
		"handle entries are 7.5x the size and pay the §4.3 per-object management cost during the build — the observation that sent the authors into §4",
		"the engine's actual join operators (PHJ/CHJ) therefore store rids plus the projected scalars, not handles")
	return t, nil
}
