package core

import (
	"fmt"
	"sync"
)

// This file is the parallel experiment scheduler. Elapsed time is
// *simulated* — every Dataset carries its own deterministic clock
// (internal/sim) charged per operation, never the wall clock — so running
// experiments concurrently cannot change a single reported number: the
// tables are bit-identical at any worker count. Concurrency is bounded by
// three locks: dataset generation is singleflight per database, a
// per-dataset run lock serializes engine use (meter, caches, disk are
// single-threaded), and the join-run memo is a synchronized map. Tables
// are emitted strictly in the requested order as soon as each experiment
// and all its predecessors have finished.

// outcome is one experiment's result slot.
type outcome struct {
	table *Table
	err   error
}

// RunMany executes the given experiments, at most jobs at a time, calling
// emit exactly once per experiment in the ids' order (each table is
// emitted as soon as it and every earlier table are ready). Unknown ids
// are rejected before anything runs. On an experiment or emit error the
// scheduler stops handing out new work, drains the in-flight experiments,
// and returns the error of the earliest failed id — the same error a
// sequential run would have reported.
func (r *Runner) RunMany(ids []string, jobs int, emit func(*Table) error) error {
	if jobs < 1 {
		return fmt.Errorf("core: jobs %d < 1", jobs)
	}
	exps := make([]ExperimentInfo, len(ids))
	for i, id := range ids {
		e, ok := experimentsByID()[id]
		if !ok {
			return unknownExperiment(id)
		}
		exps[i] = e
	}
	if jobs > len(exps) {
		jobs = len(exps)
	}

	outs := make([]outcome, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	work := make(chan int)
	stop := make(chan struct{})
	var stopOnce sync.Once

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				e := exps[i]
				view := r.withExperiment(e.ID)
				view.jobsInUse = jobs
				t, err := e.Run(view)
				if err != nil {
					err = fmt.Errorf("%s: %w", e.ID, err)
					stopOnce.Do(func() { close(stop) })
				}
				outs[i] = outcome{table: t, err: err}
				close(done[i])
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range exps {
			select {
			case work <- i:
			case <-stop:
				// Close the never-started slots so the emit loop below can
				// drain every index without blocking.
				for ; i < len(exps); i++ {
					close(done[i])
				}
				return
			}
		}
	}()

	var firstErr error
	for i := range exps {
		<-done[i]
		if firstErr != nil {
			continue
		}
		switch {
		case outs[i].err != nil:
			firstErr = outs[i].err
			stopOnce.Do(func() { close(stop) })
		case outs[i].table != nil:
			if err := emit(outs[i].table); err != nil {
				firstErr = err
				stopOnce.Do(func() { close(stop) })
			}
		}
	}
	wg.Wait()
	return firstErr
}
