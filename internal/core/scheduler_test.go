package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"treebench/internal/derby"
)

// runAllBytes runs every registered experiment on a fresh runner with the
// given worker count and returns the concatenated rendered tables.
func runAllBytes(t *testing.T, jobs int) []byte {
	t.Helper()
	r, err := NewRunner(Config{SF: 100, Seed: 1997, Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelRunAllDeterministic is the regression gate for all
// concurrency work: every experiment run once sequentially and once under
// the parallel scheduler must render byte-identical tables, because
// elapsed time is simulated per dataset and never touches the wall clock.
func TestParallelRunAllDeterministic(t *testing.T) {
	seq := runAllBytes(t, 1)
	par := runAllBytes(t, 4)
	if !bytes.Equal(seq, par) {
		line := 1
		for i := range seq {
			if i >= len(par) || seq[i] != par[i] {
				break
			}
			if seq[i] == '\n' {
				line++
			}
		}
		t.Fatalf("parallel (-j 4) output diverges from sequential at line %d\nsequential %d bytes, parallel %d bytes", line, len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("RunAll produced no output")
	}
}

func TestRunManyEmitsInOrder(t *testing.T) {
	r, err := NewRunner(Config{SF: 100, Seed: 1997})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"F7", "F6", "W1"}
	var got []string
	err = r.RunMany(ids, 3, func(tab *Table) error {
		got = append(got, tab.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "F7,F6,W1" {
		t.Fatalf("emit order %v, want the requested order %v", got, ids)
	}
}

func TestRunManyRejectsBadInput(t *testing.T) {
	r, err := NewRunner(Config{SF: 100, Seed: 1997})
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := r.RunMany([]string{"F6", "NOPE"}, 2, func(*Table) error { ran = true; return nil }); err == nil {
		t.Fatal("unknown id accepted")
	} else if !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("unknown-id error does not name the id: %v", err)
	}
	if ran {
		t.Fatal("experiments ran despite an unknown id")
	}
	if err := r.RunMany([]string{"F6"}, 0, func(*Table) error { return nil }); err == nil {
		t.Fatal("jobs 0 accepted")
	}
}

func TestRunManyEmitError(t *testing.T) {
	r, err := NewRunner(Config{SF: 100, Seed: 1997})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("sink full")
	calls := 0
	err = r.RunMany([]string{"F6", "F7", "W1"}, 2, func(*Table) error {
		calls++
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after failing, want 1", calls)
	}
}

// TestSingleflightDatasetGeneration hammers the dataset cache from many
// goroutines: generation is singleflight (every caller's session forks off
// the same frozen snapshot), while the sessions themselves are private.
func TestSingleflightDatasetGeneration(t *testing.T) {
	r, err := NewRunner(Config{SF: 100, Seed: 1997})
	if err != nil {
		t.Fatal(err)
	}
	p, a := r.smallScale()
	const callers = 8
	sessions := make([]*derby.Dataset, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sessions[i], errs[i] = r.dataset(p, a, derby.ClassCluster)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if n := r.shared.snapshots.Len(); n != 1 {
		t.Fatalf("generated %d snapshots for one configuration, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if sessions[i].DB == sessions[0].DB {
			t.Fatalf("callers %d and 0 share an engine session", i)
		}
	}
}

// TestJobsFromEnv checks the exported helper directly: it is the one
// reading of TREEBENCH_JOBS shared by the scheduler and treebenchd's
// replica-count default.
func TestJobsFromEnv(t *testing.T) {
	t.Setenv(JobsEnvVar, "")
	if got := JobsFromEnv(7); got != 7 {
		t.Errorf("unset: JobsFromEnv(7) = %d, want 7", got)
	}
	t.Setenv(JobsEnvVar, "5")
	if got := JobsFromEnv(7); got != 5 {
		t.Errorf("set to 5: JobsFromEnv(7) = %d, want 5", got)
	}
	t.Setenv(JobsEnvVar, "0")
	if got := JobsFromEnv(7); got != 7 {
		t.Errorf("invalid 0: JobsFromEnv(7) = %d, want 7", got)
	}
}

// TestConfigFromEnvJobs checks the TREEBENCH_JOBS validation: values below
// 1 (or garbage) keep the default.
func TestConfigFromEnvJobs(t *testing.T) {
	for _, tc := range []struct {
		env  string
		want int
	}{
		{"3", 3},
		{"1", 1},
		{"0", DefaultJobs()},
		{"-2", DefaultJobs()},
		{"lots", DefaultJobs()},
	} {
		t.Setenv(JobsEnvVar, tc.env)
		if got := ConfigFromEnv().Jobs; got != tc.want {
			t.Errorf("TREEBENCH_JOBS=%q: Jobs = %d, want %d", tc.env, got, tc.want)
		}
	}
}
