package core

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/selection"
	"treebench/internal/stats"
)

// selectionDataset is the database the §4.2 selection experiments run on:
// the 2,000×1,000 class-clustered database, whose Patients extent carries
// the unclustered index on num. Each call returns a fresh private session
// forked from the shared snapshot, so no run lock is needed.
func (r *Runner) selectionDataset() (*derby.Dataset, error) {
	p, a := r.smallScale()
	return r.dataset(p, a, derby.ClassCluster)
}

// selPred builds `num > k` keeping selPermille‰ of the patients (the num
// values are a dense permutation of 1..N).
func selPred(n int, selPermille int) selection.Pred {
	k := int64(n) - int64(n)*int64(selPermille)/1000
	return selection.Pred{Attr: "num", Op: selection.Gt, K: k}
}

// coldSelection runs one access path cold on the caller's session and
// records it.
func (r *Runner) coldSelection(d *derby.Dataset, selPermille int, access selection.Access) (*selection.Result, error) {
	d.DB.ColdRestart()
	req := selection.Request{
		Extent:   d.Patients,
		Where:    selPred(d.NumPatients, selPermille),
		Projects: []string{"age"},
	}
	res, err := selection.Run(d.DB, req, access)
	if err != nil {
		return nil, err
	}
	r.logf("  selection %.1f%% via %-10s t=%.2fs pages=%d",
		float64(selPermille)/10, access, res.Elapsed.Seconds(), res.Counters.DiskReads)
	if r.Stats != nil {
		e := stats.Entry{
			Cold:            true,
			ProjectionType:  "attribute",
			Selectivity:     selPermille / 10,
			Text:            fmt.Sprintf("select pa.age from pa in Patients where pa.num > %d [%s]", req.Where.K, access),
			Database:        dbLabel(d.NumProviders, d.NumPatients/max(d.NumProviders, 1)),
			Cluster:         d.Clustering.String(),
			Algo:            string(access),
			ServerCacheSize: d.DB.Machine.ServerCache,
			ClientCacheSize: d.DB.Machine.ClientCache,
			SameWorkstation: true,
		}
		e.FromCounters(res.Elapsed, res.Counters)
		if _, err := r.Stats.Record(e); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig6 reproduces the §4.2 selection experiment the text walks through:
// selections on Patients at increasing selectivity, with no index and with
// the plain (unsorted) unclustered index. Expected shape: constant I/O for
// the scan, and an index that starts re-reading pages somewhere between 1
// and 5% selectivity, eventually exceeding the scan's page count.
func (r *Runner) Fig6() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F6",
		Title:   "Selection on Patients: unclustered index vs no index (time in sec, pages read)",
		Columns: []string{"selectivity%", "no-index time", "no-index pages", "index time", "index pages"},
	}
	scanPages := int64(-1)
	var crossover float64 = -1
	for _, permille := range []int{1, 10, 50, 100, 300, 600, 900} {
		full, err := r.coldSelection(d, permille, selection.FullScan)
		if err != nil {
			return nil, err
		}
		idx, err := r.coldSelection(d, permille, selection.IndexScan)
		if err != nil {
			return nil, err
		}
		t.AddRow(float64(permille)/10,
			full.Elapsed.Seconds(), full.Counters.DiskReads,
			idx.Elapsed.Seconds(), idx.Counters.DiskReads)
		if scanPages == -1 {
			scanPages = full.Counters.DiskReads
		}
		if crossover < 0 && idx.Counters.DiskReads > full.Counters.DiskReads {
			crossover = float64(permille) / 10
		}
	}
	t.Notes = append(t.Notes,
		"full-scan page count is selectivity-independent (§4.2)",
		fmt.Sprintf("unclustered index exceeds the scan's page count from %.1f%% selectivity (paper: threshold between 1 and 5%%)", crossover))
	return t, nil
}

// Fig7 reproduces Figure 7: the sorted unclustered index scan against the
// no-index scan at 10/30/60/90% selectivity. The sorted index wins at every
// selectivity, even when it reads all collection pages plus the index.
func (r *Runner) Fig7() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F7",
		Title:   "Comparing Sorted Unclustered Index with No Index (time in sec)",
		Columns: []string{"selectivity%", "unclustered index + sort", "no index"},
	}
	for _, pct := range []int{10, 30, 60, 90} {
		sorted, err := r.coldSelection(d, pct*10, selection.SortedIndexScan)
		if err != nil {
			return nil, err
		}
		full, err := r.coldSelection(d, pct*10, selection.FullScan)
		if err != nil {
			return nil, err
		}
		t.AddRow(pct, sorted.Elapsed.Seconds(), full.Elapsed.Seconds())
	}
	return t, nil
}

// Fig9 reproduces Figure 9's cost decomposition of the standard scan vs
// the sorted index scan at 90% selectivity: where does the time that is not
// spent on reads go?
func (r *Runner) Fig9() (*Table, error) {
	d, err := r.selectionDataset()
	if err != nil {
		return nil, err
	}
	scan, err := r.coldSelection(d, 900, selection.FullScan)
	if err != nil {
		return nil, err
	}
	sorted, err := r.coldSelection(d, 900, selection.SortedIndexScan)
	if err != nil {
		return nil, err
	}
	m := d.DB.Meter.Model
	t := &Table{
		ID:      "F9",
		Title:   "Standard Scan vs Sorted Index Scan at 90%: cost difference breakdown",
		Columns: []string{"component", "standard scan", "sorted index scan"},
	}
	ioSec := func(c int64) float64 { return (float64(c) * m.PageRead.Seconds()) }
	t.AddRow("pages read (I/O sec)",
		fmt.Sprintf("%d (%.1fs)", scan.Counters.DiskReads, ioSec(scan.Counters.DiskReads)),
		fmt.Sprintf("%d (%.1fs)", sorted.Counters.DiskReads, ioSec(sorted.Counters.DiskReads)))
	t.AddRow("scan cursor steps", scan.Counters.ScanNexts, sorted.Counters.ScanNexts)
	t.AddRow("handles got+unref", scan.Counters.HandleGets+scan.Counters.HandleUnrefs,
		sorted.Counters.HandleGets+sorted.Counters.HandleUnrefs)
	t.AddRow("rids sorted", 0, sorted.SortedRids)
	t.AddRow("integers compared", scan.Counters.Compares, sorted.Counters.Compares)
	t.AddRow("result appends", scan.Counters.ResultAppends, sorted.Counters.ResultAppends)
	t.AddRow("TOTAL time (sec)", scan.Elapsed.Seconds(), sorted.Elapsed.Seconds())
	nonIO := scan.Elapsed.Seconds() - ioSec(scan.Counters.DiskReads)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"standard scan spends %.1fs not on reads — the per-object handle management of §4.3 (paper: ≈250s at full scale)", nonIO))
	return t, nil
}
