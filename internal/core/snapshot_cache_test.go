package core

import (
	"testing"
)

// TestSnapshotDirRoundTripDeterminism is the scheduler half of the
// persistence invariant: an experiment run against a loaded snapshot must
// render exactly the table a freshly generated run renders. The first
// cached run populates the directory; the second boots entirely from it
// (its runner performs zero dataset generations); all three tables must
// be identical.
func TestSnapshotDirRoundTripDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a database three times")
	}
	const exp = "F6" // one-database experiment: cheap and index-heavy

	run := func(dir string) (string, *Runner) {
		r, err := NewRunner(Config{SF: 40, Seed: 1997, SnapshotDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := r.Run(exp)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String(), r
	}

	plain, _ := run("")
	dir := t.TempDir()
	first, r1 := run(dir)
	second, r2 := run(dir)

	if first != plain {
		t.Errorf("cached run renders differently from uncached:\n--- uncached\n%s--- cached\n%s", plain, first)
	}
	if second != plain {
		t.Errorf("warm-cache run renders differently:\n--- uncached\n%s--- warm\n%s", plain, second)
	}
	if c := r1.snapshotCache(); c == nil || c.Generations() != 1 {
		t.Errorf("first cached run: cache generations = %v, want 1", c.Generations())
	}
	if c := r2.snapshotCache(); c == nil || c.Generations() != 0 {
		t.Errorf("warm run: cache generations = %v, want 0 (booted from disk)", c.Generations())
	}
}
