package core

import (
	"treebench/internal/derby"
	"treebench/internal/join"
)

// PointerVsValue reproduces the comparison the paper builds on rather than
// reruns — "In [14, 4], the authors compare pointer-based against
// value-based algorithms and favors the former" — using the Derby schema's
// own value-based foreign key (random_integer equals the provider's upin):
// NOJOIN dereferences the physical pointer, VNOJOIN resolves the key value
// through the provider index.
func (r *Runner) PointerVsValue() (*Table, error) {
	t := &Table{
		ID:    "V1",
		Title: "Pointer-based (NOJOIN) vs value-based (VNOJOIN) navigation",
		Columns: []string{"database", "sel pat%", "sel prov%",
			"pointer t", "value t", "value/pointer", "pointer pages", "value pages"},
	}
	scales := r.bothScales()
	for _, sc := range scales {
		key := r.dsKeyFor(sc[0], sc[1], derby.ClassCluster)
		err := r.withDataset(sc[0], sc[1], derby.ClassCluster, func(d *derby.Dataset) error {
			for _, sel := range selGrid {
				pres, err := r.coldJoin(d, key, sel[0], sel[1], join.NOJOIN)
				if err != nil {
					return err
				}
				vres, err := r.coldJoin(d, key, sel[0], sel[1], join.VNOJOIN)
				if err != nil {
					return err
				}
				t.AddRow(dbLabel(sc[0], sc[1]), sel[0], sel[1],
					pres.Elapsed.Seconds(), vres.Elapsed.Seconds(),
					vres.Elapsed.Seconds()/pres.Elapsed.Seconds(),
					pres.Counters.DiskReads, vres.Counters.DiskReads)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"at sel(prov)=90% the value join's per-child index descents are pure overhead and the pointer join wins — [14]'s setting, where the parent is needed anyway",
		"at selective parents the value join filters on the key value before resolving and skips parent fetches entirely — the one case value resolution wins")
	return t, nil
}
