package derby

import (
	"fmt"
	"time"

	"treebench/internal/collection"
	"treebench/internal/engine"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// Clustering selects one of the Figure 2 physical organizations.
type Clustering int

const (
	// ClassCluster stores all objects of one class together: a Providers
	// file, a Patients file, and (for 1:1000) a separate Clients file for
	// the over-a-page sets.
	ClassCluster Clustering = iota
	// RandomOrg stores every object in one file, the two classes randomly
	// interleaved — the price one pays after many size-changing updates
	// (§5.2). Each class's objects keep their creation (key) order within
	// the merge: Figure 15's measurements pin this down, since the paper's
	// random organization favours the same algorithms as class clustering
	// at 1.5–2× the cost, which a full permutation of the key order would
	// not (every index scan would degrade ~10×, as composition clustering
	// shows for simple selections).
	RandomOrg
	// CompositionCluster stores each provider followed by its patients
	// (the 1-n relationship order, Figure 2 right).
	CompositionCluster
)

// String names the clustering like the paper's figures do.
func (c Clustering) String() string {
	switch c {
	case ClassCluster:
		return "class"
	case RandomOrg:
		return "random"
	case CompositionCluster:
		return "composition"
	default:
		return fmt.Sprintf("clustering(%d)", int(c))
	}
}

// Config parameterizes a database build.
type Config struct {
	// Providers and AvgPatients set the scale: the paper's two databases
	// are {2000, 1000} and {1000000, 3}. The patient population is
	// Providers×AvgPatients; each patient draws its provider uniformly,
	// so per-provider counts vary around the average as in the paper.
	Providers   int
	AvgPatients int

	Clustering Clustering

	// Seed drives the lrand48 generator (association, num permutation,
	// random organization order).
	Seed int32

	Machine sim.Machine
	Model   sim.CostModel

	// TxnMode selects the loading discipline. NoTransaction is the tuned
	// §3.2 configuration; Standard reproduces the slow first attempt.
	TxnMode txn.Mode
	// CreateBudget caps objects per transaction in Standard mode
	// (default txn.DefaultCreateBudget).
	CreateBudget int

	// IndexBeforeLoad creates the indexes on the empty extents so objects
	// are born with header slots (the fast path). If false, indexes are
	// built after population — §3.2's relocation storm.
	IndexBeforeLoad bool

	// SkipNumIndex omits the unclustered index on Patient.num (only the
	// selection experiments need it, and at 1:3 scale it is never used).
	SkipNumIndex bool

	// IndexBackend selects the pluggable index structure every CreateIndex
	// uses ("btree", "disk", "lsm"; empty means the in-memory B+-tree
	// default). It changes physical layout and cost accounting, never
	// query results.
	IndexBackend string
}

// DefaultConfig returns the tuned loading configuration at the given scale.
func DefaultConfig(providers, avgPatients int, clustering Clustering) Config {
	return Config{
		Providers:       providers,
		AvgPatients:     avgPatients,
		Clustering:      clustering,
		Seed:            1997,
		Machine:         sim.DefaultMachine(),
		Model:           sim.DefaultCostModel(),
		TxnMode:         txn.NoTransaction,
		IndexBeforeLoad: true,
	}
}

// LoadReport summarizes a database build for the §3.2 loading experiments.
type LoadReport struct {
	Elapsed     time.Duration
	Commits     int
	Relocations int // objects moved by post-load index creation
	Counters    sim.Counters
}

// Dataset is a built database plus the handles the experiments need.
type Dataset struct {
	DB        *engine.Database
	Providers *engine.Extent
	Patients  *engine.Extent

	NumProviders int
	NumPatients  int
	Clustering   Clustering

	// ProviderRids and PatientRids map upin-1 / mrn-1 to physical ids
	// (generation bookkeeping; query algorithms never use them).
	ProviderRids []storage.Rid
	PatientRids  []storage.Rid

	Load LoadReport
}

// Relationship renders "1:3"-style labels.
func (d *Dataset) Relationship() string {
	return fmt.Sprintf("1:%d", d.NumPatients/max(d.NumProviders, 1))
}

// Generate builds a database per cfg. The build is deterministic in
// cfg.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Providers <= 0 || cfg.AvgPatients <= 0 {
		return nil, fmt.Errorf("derby: bad scale %d×%d", cfg.Providers, cfg.AvgPatients)
	}
	if cfg.CreateBudget == 0 {
		cfg.CreateBudget = txn.DefaultCreateBudget
	}
	db := engine.New(cfg.Machine, cfg.Model, cfg.TxnMode)
	db.Txns.SetCreateBudget(cfg.CreateBudget)
	if cfg.IndexBackend != "" {
		if err := db.SetIndexBackend(cfg.IndexBackend); err != nil {
			return nil, err
		}
	}

	nProv := cfg.Providers
	nPat := cfg.Providers * cfg.AvgPatients

	// File layout per clustering.
	var provFile, patFile string
	switch cfg.Clustering {
	case ClassCluster:
		provFile, patFile = "Providers", "Patients"
	case RandomOrg:
		provFile, patFile = "Objects", "Objects"
	case CompositionCluster:
		provFile, patFile = "Clustered", "Clustered"
	default:
		return nil, fmt.Errorf("derby: unknown clustering %v", cfg.Clustering)
	}
	providers, err := db.CreateExtent("Providers", ProviderClass(), provFile)
	if err != nil {
		return nil, err
	}
	patients, err := db.CreateExtent("Patients", PatientClass(), patFile)
	if err != nil {
		return nil, err
	}

	// Indexes first (fast path) or last (§3.2 storm), below.
	// upin and mrn scans return Rids in physical order under class
	// clustering AND the random interleave (each class keeps its creation
	// order; the random file merely dilutes it with the other class's
	// pages), so both count as clustered. Composition scatters mrn; num
	// is never clustered.
	clusteredKeys := cfg.Clustering != CompositionCluster
	if cfg.IndexBeforeLoad {
		if _, _, err := db.CreateIndex(providers, "upin", clusteredKeys); err != nil {
			return nil, err
		}
		if _, _, err := db.CreateIndex(patients, "mrn", clusteredKeys); err != nil {
			return nil, err
		}
		if !cfg.SkipNumIndex {
			if _, _, err := db.CreateIndex(patients, "num", false); err != nil {
				return nil, err
			}
		}
	}

	rng := NewLRand48(cfg.Seed)
	// Association: patient j belongs to provider assign[j] (the §3.2
	// random_integer). num is a random permutation of 1..nPat so numeric
	// predicates hit exact selectivities.
	assign := make([]int32, nPat)
	for j := range assign {
		assign[j] = int32(rng.Intn(nProv))
	}
	numPerm := rng.Perm(nPat)
	// Per-provider patient lists, each in a random internal order: a
	// provider's patients have unrelated mrns (under composition
	// clustering they were accumulated over time, not loaded in mrn
	// order), so an mrn index over the composed file is genuinely
	// unclustered.
	group := patientsByProvider(assign, nProv)
	for i := range group {
		g := group[i]
		for k := len(g) - 1; k > 0; k-- {
			l := rng.Intn(k + 1)
			g[k], g[l] = g[l], g[k]
		}
	}

	d := &Dataset{
		DB:           db,
		Providers:    providers,
		Patients:     patients,
		NumProviders: nProv,
		NumPatients:  nPat,
		Clustering:   cfg.Clustering,
		ProviderRids: make([]storage.Rid, nProv),
		PatientRids:  make([]storage.Rid, nPat),
	}

	// Creation order per clustering. Object identity (upin, mrn) is the
	// same in all three; only physical placement differs.
	loader := &loader{db: db, cfg: cfg}
	createProvider := func(i int) error {
		vals := []object.Value{
			object.StringValue(providerName(i)),
			object.IntValue(int64(i + 1)), // upin
			object.StringValue(fmt.Sprintf("addr-%07d", i)),
			object.StringValue(specialties[i%len(specialties)]),
			object.StringValue(fmt.Sprintf("office-%05d", i%1000)),
			object.SetValue(storage.NilRid),
		}
		rid, err := loader.insert(providers, vals)
		if err != nil {
			return err
		}
		d.ProviderRids[i] = rid
		return nil
	}
	createPatient := func(j int, pcp storage.Rid) error {
		vals := []object.Value{
			object.StringValue(patientName(j)),
			object.IntValue(int64(j + 1)), // mrn
			object.IntValue(int64(j % 100)),
			object.CharValue("MF"[j%2]),
			object.IntValue(int64(assign[j]) + 1),
			object.IntValue(int64(numPerm[j]) + 1),
			object.RefValue(pcp),
		}
		rid, err := loader.insert(patients, vals)
		if err != nil {
			return err
		}
		d.PatientRids[j] = rid
		return nil
	}

	switch cfg.Clustering {
	case ClassCluster:
		// All providers, then all patients in mrn order; the association
		// is randomized because assign is.
		for i := 0; i < nProv; i++ {
			if err := createProvider(i); err != nil {
				return nil, err
			}
		}
		for j := 0; j < nPat; j++ {
			if err := createPatient(j, storage.NilRid); err != nil {
				return nil, err
			}
		}
	case RandomOrg:
		// A random interleave of the two creation streams: class tags are
		// shuffled, then each class is created in its own order.
		tags := make([]byte, nProv+nPat)
		for k := nProv; k < len(tags); k++ {
			tags[k] = 1
		}
		for k := len(tags) - 1; k > 0; k-- {
			l := rng.Intn(k + 1)
			tags[k], tags[l] = tags[l], tags[k]
		}
		pi, pj := 0, 0
		for _, tag := range tags {
			if tag == 0 {
				if err := createProvider(pi); err != nil {
					return nil, err
				}
				pi++
			} else {
				if err := createPatient(pj, storage.NilRid); err != nil {
					return nil, err
				}
				pj++
			}
		}
	case CompositionCluster:
		// Providers in upin order, each followed by its patients (in the
		// group's shuffled internal order).
		for i := 0; i < nProv; i++ {
			if err := createProvider(i); err != nil {
				return nil, err
			}
			for _, j := range group[i] {
				if err := createPatient(int(j), d.ProviderRids[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	// Association phase (§3.2: "we need to create all doctors and all
	// patients before we can update the doctor-patients relationship").
	// The paper evaluated a join for this; we use the recorded rids
	// directly — the resulting physical state is identical and the join
	// algorithms are measured in their own experiments.
	pcpIdx := patients.Class.AttrIndex("primary_care_provider")
	clientsIdx := providers.Class.AttrIndex("clients")
	if cfg.Clustering != CompositionCluster {
		for j := 0; j < nPat; j++ {
			rec, err := storage.Get(db.Client, d.PatientRids[j])
			if err != nil {
				return nil, err
			}
			if err := object.EncodeAttrInPlace(patients.Class, rec, pcpIdx, object.RefValue(d.ProviderRids[assign[j]])); err != nil {
				return nil, err
			}
			if err := db.Client.Write(d.PatientRids[j].Page); err != nil {
				return nil, err
			}
			if err := loader.noteUpdate(len(rec)); err != nil {
				return nil, err
			}
		}
	}
	// Clients sets: in the owner's file when small, in a separate file
	// when the encoding exceeds a page (§2). Under composition clustering
	// the sets stay in the single clustered file regardless, right after
	// the population.
	setFile := providers.File
	if cfg.Clustering == ClassCluster && collection.EncodedSize(cfg.AvgPatients) > storage.PageSize {
		setFile, err = db.Store.CreateFile("Clients")
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < nProv; i++ {
		members := make([]storage.Rid, len(group[i]))
		for k, j := range group[i] {
			members[k] = d.PatientRids[j]
		}
		head, err := collection.Create(db.Client, setFile, members)
		if err != nil {
			return nil, err
		}
		rec, err := storage.Get(db.Client, d.ProviderRids[i])
		if err != nil {
			return nil, err
		}
		if err := object.EncodeAttrInPlace(providers.Class, rec, clientsIdx, object.SetValue(head)); err != nil {
			return nil, err
		}
		if err := db.Client.Write(d.ProviderRids[i].Page); err != nil {
			return nil, err
		}
		if err := loader.noteUpdate(len(rec)); err != nil {
			return nil, err
		}
	}

	// Post-load index creation (§3.2's blunder) if requested.
	if !cfg.IndexBeforeLoad {
		var reloc int
		if _, n, err := db.CreateIndex(providers, "upin", clusteredKeys); err != nil {
			return nil, err
		} else {
			reloc += n
		}
		if _, n, err := db.CreateIndex(patients, "mrn", clusteredKeys); err != nil {
			return nil, err
		} else {
			reloc += n
		}
		if !cfg.SkipNumIndex {
			if _, n, err := db.CreateIndex(patients, "num", false); err != nil {
				return nil, err
			} else {
				reloc += n
			}
		}
		d.Load.Relocations = reloc
	}

	if err := loader.finish(); err != nil {
		return nil, err
	}
	d.Load.Elapsed = db.Meter.Elapsed()
	d.Load.Commits = loader.commits
	d.Load.Counters = db.Meter.Snapshot()
	return d, nil
}

// patientsByProvider inverts the assignment into per-provider patient lists
// (patient indexes in mrn order).
func patientsByProvider(assign []int32, nProv int) [][]int32 {
	group := make([][]int32, nProv)
	counts := make([]int32, nProv)
	for _, p := range assign {
		counts[p]++
	}
	for i := range group {
		group[i] = make([]int32, 0, counts[i])
	}
	for j, p := range assign {
		group[p] = append(group[p], int32(j))
	}
	return group
}

// loader batches creations into transactions of the configured budget.
type loader struct {
	db      *engine.Database
	cfg     Config
	tx      *txn.Txn
	inTx    int
	commits int
}

func (l *loader) ensureTx() *txn.Txn {
	if l.tx == nil {
		l.tx = l.db.Txns.Begin()
		l.inTx = 0
	}
	return l.tx
}

func (l *loader) maybeCommit() error {
	// Commit just under the budget: exceeding it is the "out of memory"
	// failure.
	if l.cfg.TxnMode == txn.Standard && l.inTx >= l.cfg.CreateBudget {
		return l.commit()
	}
	return nil
}

func (l *loader) commit() error {
	if l.tx == nil {
		return nil
	}
	err := l.tx.Commit()
	l.tx = nil
	l.commits++
	return err
}

func (l *loader) insert(e *engine.Extent, vals []object.Value) (storage.Rid, error) {
	tx := l.ensureTx()
	rid, err := l.db.Insert(tx, e, vals)
	if err != nil {
		return storage.Rid{}, err
	}
	l.inTx++
	return rid, l.maybeCommit()
}

func (l *loader) noteUpdate(recBytes int) error {
	tx := l.ensureTx()
	if err := tx.NoteUpdate(recBytes); err != nil {
		return err
	}
	l.inTx++
	return l.maybeCommit()
}

func (l *loader) finish() error {
	if err := l.commit(); err != nil {
		return err
	}
	l.db.Client.Flush()
	return nil
}
