package derby

import (
	"testing"

	"treebench/internal/collection"
	"treebench/internal/object"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

func TestLRand48MatchesReference(t *testing.T) {
	// Reference values computed from the POSIX lrand48 definition with
	// srand48(0): X₀ = 0x330E, Xₙ₊₁ = (0x5DEECE66D·Xₙ + 0xB) mod 2⁴⁸,
	// output Xₙ₊₁ >> 17.
	r := NewLRand48(0)
	want := []int64{
		(0x5DEECE66D*0x330E + 0xB) & (1<<48 - 1) >> 17,
	}
	if got := r.Next(); got != want[0] {
		t.Fatalf("first draw = %d, want %d", got, want[0])
	}
	// Determinism: same seed, same stream.
	a, b := NewLRand48(42), NewLRand48(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("stream diverged")
		}
	}
	// Different seeds diverge.
	c := NewLRand48(43)
	same := true
	d := NewLRand48(42)
	for i := 0; i < 10; i++ {
		if c.Next() != d.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced one stream")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewLRand48(7)
	p := r.Perm(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at %d", v)
		}
		seen[v] = true
	}
}

func smallConfig(clustering Clustering) Config {
	cfg := DefaultConfig(50, 4, clustering)
	return cfg
}

func checkDataset(t *testing.T, d *Dataset) {
	t.Helper()
	db := d.DB
	if d.Providers.Count != d.NumProviders || d.Patients.Count != d.NumPatients {
		t.Fatalf("counts: %d/%d providers, %d/%d patients",
			d.Providers.Count, d.NumProviders, d.Patients.Count, d.NumPatients)
	}
	// Every patient's pcp resolves to a provider whose clients set
	// contains the patient.
	pcpIdx := d.Patients.Class.AttrIndex("primary_care_provider")
	clientsIdx := d.Providers.Class.AttrIndex("clients")
	for j, prid := range d.PatientRids {
		rec, err := storage.Get(db.Client, prid)
		if err != nil {
			t.Fatalf("patient %d: %v", j, err)
		}
		v, err := object.DecodeAttr(d.Patients.Class, rec, pcpIdx)
		if err != nil {
			t.Fatal(err)
		}
		if v.Ref.IsNil() {
			t.Fatalf("patient %d has nil provider", j)
		}
		provRec, err := storage.Get(db.Client, v.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if object.ClassID(provRec) != d.Providers.Class.ID {
			t.Fatalf("patient %d pcp is not a Provider", j)
		}
	}
	// Clients sets partition the patients.
	seen := map[storage.Rid]bool{}
	total := 0
	for i, prid := range d.ProviderRids {
		rec, err := storage.Get(db.Client, prid)
		if err != nil {
			t.Fatal(err)
		}
		v, err := object.DecodeAttr(d.Providers.Class, rec, clientsIdx)
		if err != nil {
			t.Fatal(err)
		}
		members, err := collection.Elems(db.Client, v.Ref)
		if err != nil {
			t.Fatalf("provider %d clients: %v", i, err)
		}
		for _, m := range members {
			if seen[m] {
				t.Fatalf("patient %v in two clients sets", m)
			}
			seen[m] = true
			// Back-pointer agreement.
			pr, _ := storage.Get(db.Client, m)
			pv, _ := object.DecodeAttr(d.Patients.Class, pr, pcpIdx)
			if pv.Ref != prid {
				t.Fatalf("clients/pcp disagree for %v", m)
			}
		}
		total += len(members)
	}
	if total != d.NumPatients {
		t.Fatalf("clients sets cover %d patients, want %d", total, d.NumPatients)
	}
	// Indexes exist and are consistent.
	for _, spec := range []struct {
		extent, attr string
		n            int
	}{
		{"Providers", "upin", d.NumProviders},
		{"Patients", "mrn", d.NumPatients},
		{"Patients", "num", d.NumPatients},
	} {
		ix := db.IndexOn(spec.extent, spec.attr)
		if ix == nil {
			t.Fatalf("no index on %s.%s", spec.extent, spec.attr)
		}
		if ix.Backend.Len() != spec.n {
			t.Fatalf("%s.%s index has %d entries, want %d", spec.extent, spec.attr, ix.Backend.Len(), spec.n)
		}
		if err := ix.Backend.Validate(db.Client); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateClassCluster(t *testing.T) {
	d, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	checkDataset(t, d)
	// Class clustering: separate files, patients in mrn order.
	if d.Providers.File == d.Patients.File {
		t.Fatal("class clustering shares a file")
	}
	// mrn order = physical order (clustered index).
	for j := 1; j < len(d.PatientRids); j++ {
		if d.PatientRids[j].Less(d.PatientRids[j-1]) {
			t.Fatal("patients not in physical mrn order")
		}
	}
	if ix := d.DB.IndexOn("Patients", "mrn"); !ix.Clustered {
		t.Fatal("mrn index not marked clustered")
	}
	if ix := d.DB.IndexOn("Patients", "num"); ix.Clustered {
		t.Fatal("num index marked clustered")
	}
}

func TestGenerateRandomOrg(t *testing.T) {
	d, err := Generate(smallConfig(RandomOrg))
	if err != nil {
		t.Fatal(err)
	}
	checkDataset(t, d)
	if d.Providers.File != d.Patients.File {
		t.Fatal("random organization must share one file")
	}
	// Each class keeps its internal creation order within the merge...
	for j := 1; j < len(d.PatientRids); j++ {
		if d.PatientRids[j].Less(d.PatientRids[j-1]) {
			t.Fatal("random organization must preserve per-class order (see RandomOrg doc)")
		}
	}
	// ...but the classes are interleaved: some provider sits between two
	// patients and vice versa.
	interleaved := false
	for i := 1; i < len(d.ProviderRids); i++ {
		lo, hi := d.ProviderRids[i-1], d.ProviderRids[i]
		for _, pr := range d.PatientRids {
			if lo.Less(pr) && pr.Less(hi) {
				interleaved = true
			}
		}
	}
	if !interleaved {
		t.Fatal("random organization did not interleave the classes")
	}
}

func TestGenerateCompositionCluster(t *testing.T) {
	d, err := Generate(smallConfig(CompositionCluster))
	if err != nil {
		t.Fatal(err)
	}
	checkDataset(t, d)
	if d.Providers.File != d.Patients.File {
		t.Fatal("composition clustering must share one file")
	}
	// Each provider's patients sit physically at/after the provider and
	// before the next provider.
	for i := 0; i < d.NumProviders-1; i++ {
		lo, hi := d.ProviderRids[i], d.ProviderRids[i+1]
		rec, _ := storage.Get(d.DB.Client, lo)
		v, _ := object.DecodeAttr(d.Providers.Class, rec, d.Providers.Class.AttrIndex("clients"))
		members, _ := collection.Elems(d.DB.Client, v.Ref)
		for _, m := range members {
			if m.Less(lo) || hi.Less(m) {
				t.Fatalf("provider %d patient %v outside [%v,%v]", i, m, lo, hi)
			}
		}
	}
}

func TestLargeCollectionsGoToSeparateFile(t *testing.T) {
	// With 600 patients per provider the clients sets exceed a page and
	// must live in the Clients file under class clustering.
	cfg := DefaultConfig(5, 600, ClassCluster)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DB.Store.File("Clients"); err != nil {
		t.Fatalf("no Clients file: %v", err)
	}
	checkDataset(t, d)
}

func TestSmallCollectionsStayInline(t *testing.T) {
	d, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DB.Store.File("Clients"); err == nil {
		t.Fatal("small sets created a separate Clients file")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	if a.DB.Store.Disk.NumPages() != b.DB.Store.Disk.NumPages() {
		t.Fatal("page counts differ between identical builds")
	}
	for j := range a.PatientRids {
		if a.PatientRids[j] != b.PatientRids[j] {
			t.Fatalf("patient %d placed differently", j)
		}
	}
	if a.Load.Elapsed != b.Load.Elapsed {
		t.Fatalf("load times differ: %v vs %v", a.Load.Elapsed, b.Load.Elapsed)
	}
}

func TestIndexAfterLoadReportsRelocations(t *testing.T) {
	cfg := smallConfig(ClassCluster)
	cfg.IndexBeforeLoad = false
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Load.Relocations == 0 {
		t.Fatal("post-load indexing reported no relocations")
	}
	checkDataset(t, d)
}

func TestStandardModeLoadsSlower(t *testing.T) {
	fast := smallConfig(ClassCluster)
	slow := smallConfig(ClassCluster)
	slow.TxnMode = txn.Standard
	slow.CreateBudget = 50
	df, err := Generate(fast)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Load.Elapsed <= df.Load.Elapsed {
		t.Fatalf("standard load (%v) not slower than txn-off (%v)", ds.Load.Elapsed, df.Load.Elapsed)
	}
	if ds.Load.Commits == 0 {
		t.Fatal("standard load never committed")
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := smallConfig(Clustering(99))
	if _, err := Generate(cfg); err == nil {
		t.Fatal("unknown clustering accepted")
	}
}

func TestRelationshipLabel(t *testing.T) {
	d, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Relationship(); got != "1:4" {
		t.Fatalf("Relationship = %q", got)
	}
	if ClassCluster.String() != "class" || RandomOrg.String() != "random" ||
		CompositionCluster.String() != "composition" || Clustering(9).String() == "" {
		t.Fatal("clustering names")
	}
}

// TestAssignmentDistribution checks the §2 statistics: each patient draws
// its provider uniformly, so family sizes follow a binomial around the
// average and "an average of 3 patients per doctor" holds exactly in
// expectation.
func TestAssignmentDistribution(t *testing.T) {
	d, err := Generate(DefaultConfig(500, 3, ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	sizes := make(map[int]int) // family size → providers
	clientsIdx := d.Providers.Class.AttrIndex("clients")
	total := 0
	for _, prid := range d.ProviderRids {
		rec, _ := storage.Get(d.DB.Client, prid)
		v, _ := object.DecodeAttr(d.Providers.Class, rec, clientsIdx)
		n, err := collection.Len(d.DB.Client, v.Ref)
		if err != nil {
			t.Fatal(err)
		}
		sizes[n]++
		total += n
	}
	if total != d.NumPatients {
		t.Fatalf("families cover %d patients", total)
	}
	// Binomial(1500, 1/500): mean 3, so sizes 0..8 all occur with real
	// probability; a fixed-3 generator would put everything in sizes[3].
	if sizes[3] > d.NumProviders*9/10 {
		t.Fatalf("family sizes look constant: %v", sizes)
	}
	if sizes[0] == 0 && sizes[1] == 0 {
		t.Fatalf("no small families at all: %v", sizes)
	}
	// And the bulk is near the mean.
	near := sizes[2] + sizes[3] + sizes[4]
	if near < d.NumProviders/3 {
		t.Fatalf("distribution not centered on 3: %v", sizes)
	}
}

// TestNumIsDensePermutation pins the property the selectivity arithmetic
// relies on: num is a permutation of 1..N.
func TestNumIsDensePermutation(t *testing.T) {
	d, err := Generate(smallConfig(ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	numIdx := d.Patients.Class.AttrIndex("num")
	seen := make([]bool, d.NumPatients+1)
	for _, prid := range d.PatientRids {
		rec, _ := storage.Get(d.DB.Client, prid)
		v, _ := object.DecodeAttr(d.Patients.Class, rec, numIdx)
		if v.Int < 1 || v.Int > int64(d.NumPatients) || seen[v.Int] {
			t.Fatalf("num %d out of range or duplicated", v.Int)
		}
		seen[v.Int] = true
	}
}

// TestSeedChangesLayout: a different seed produces a different association.
func TestSeedChangesLayout(t *testing.T) {
	cfg := smallConfig(ClassCluster)
	a, _ := Generate(cfg)
	cfg.Seed = 2024
	b, _ := Generate(cfg)
	pcp := a.Patients.Class.AttrIndex("primary_care_provider")
	diff := 0
	for j := range a.PatientRids {
		ra, _ := storage.Get(a.DB.Client, a.PatientRids[j])
		rb, _ := storage.Get(b.DB.Client, b.PatientRids[j])
		va, _ := object.DecodeAttr(a.Patients.Class, ra, pcp)
		vb, _ := object.DecodeAttr(b.Patients.Class, rb, pcp)
		if va.Ref != vb.Ref {
			diff++
		}
	}
	if diff < len(a.PatientRids)/2 {
		t.Fatalf("only %d/%d assignments changed with the seed", diff, len(a.PatientRids))
	}
}
