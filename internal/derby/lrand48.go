// Package derby builds the paper's databases: the (reduced) 1997 Derby
// schema of providers and patients (§2, Figure 1), populated at 2,000×1,000
// or 1,000,000×3 scale under the three physical organizations of Figure 2,
// with the randomized doctor–patient association of §3.2.
package derby

// LRand48 is a Go port of the Unix lrand48(3) generator the paper used to
// randomize the doctor–patient relationship: the 48-bit linear congruential
// generator X' = (0x5DEECE66D·X + 0xB) mod 2⁴⁸, returning the top 31 bits.
// Using the same generator family keeps the data deterministic and
// documents exactly where the paper's randomness came from.
type LRand48 struct {
	x uint64
}

const (
	lcgA    = 0x5DEECE66D
	lcgC    = 0xB
	lcgMask = 1<<48 - 1
)

// NewLRand48 seeds the generator the way srand48 does: the seed becomes the
// high 32 bits, the low 16 bits are 0x330E.
func NewLRand48(seed int32) *LRand48 {
	return &LRand48{x: uint64(uint32(seed))<<16 | 0x330E}
}

// Next returns the next non-negative 31-bit value, like lrand48.
func (r *LRand48) Next() int64 {
	r.x = (lcgA*r.x + lcgC) & lcgMask
	return int64(r.x >> 17)
}

// Intn returns a value in [0, n). n must be positive.
func (r *LRand48) Intn(n int) int {
	if n <= 0 {
		panic("derby: Intn with non-positive bound")
	}
	return int(r.Next() % int64(n))
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (r *LRand48) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
