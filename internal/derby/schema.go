package derby

import (
	"fmt"

	"treebench/internal/object"
)

// ProviderClass returns the Figure 1 Provider class: name, upin, address,
// specialty, office, clients. Strings are 16 characters, as the paper sizes
// them.
func ProviderClass() *object.Class {
	return object.NewClass("Provider", []object.Attr{
		{Name: "name", Kind: object.KindString, StrLen: 16},
		{Name: "upin", Kind: object.KindInt},
		{Name: "address", Kind: object.KindString, StrLen: 16},
		{Name: "specialty", Kind: object.KindString, StrLen: 16},
		{Name: "office", Kind: object.KindString, StrLen: 16},
		{Name: "clients", Kind: object.KindSet},
	})
}

// PatientClass returns the Figure 1 Patient class: name, mrn, age, sex,
// random_integer, num, primary_care_provider.
func PatientClass() *object.Class {
	return object.NewClass("Patient", []object.Attr{
		{Name: "name", Kind: object.KindString, StrLen: 16},
		{Name: "mrn", Kind: object.KindInt},
		{Name: "age", Kind: object.KindInt},
		{Name: "sex", Kind: object.KindChar},
		{Name: "random_integer", Kind: object.KindInt},
		{Name: "num", Kind: object.KindInt},
		{Name: "primary_care_provider", Kind: object.KindRef},
	})
}

// providerName formats the i-th provider's name within 16 characters.
func providerName(i int) string { return fmt.Sprintf("doc-%08d", i) }

// patientName formats the j-th patient's name within 16 characters.
func patientName(j int) string { return fmt.Sprintf("pat-%08d", j) }

var specialties = [...]string{
	"cardiology", "dermatology", "neurology", "oncology",
	"pediatrics", "radiology", "surgery", "psychiatry",
}
