package derby

import (
	"treebench/internal/engine"
	"treebench/internal/storage"
)

// Snapshot is a frozen Derby database: one immutable engine snapshot plus
// the generation bookkeeping every forked session shares (scale, rid maps,
// the load report). Generate once, Freeze, then Fork a Dataset per session
// — N concurrent sessions cost one generation and one page image, not N.
type Snapshot struct {
	Engine *engine.Snapshot

	numProviders int
	numPatients  int
	clustering   Clustering
	providerRids []storage.Rid
	patientRids  []storage.Rid
	load         LoadReport
}

// Freeze seals the dataset's database into a shareable Snapshot (see
// engine.Session.Freeze). The dataset's own session becomes read-only.
func (d *Dataset) Freeze() (*Snapshot, error) {
	es, err := d.DB.Freeze()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Engine:       es,
		numProviders: d.NumProviders,
		numPatients:  d.NumPatients,
		clustering:   d.Clustering,
		providerRids: d.ProviderRids,
		patientRids:  d.PatientRids,
		load:         d.Load,
	}, nil
}

// Fork returns a read-only Dataset over the snapshot: a fresh cold session
// sharing the frozen pages. A fork behaves exactly like a freshly
// generated private copy after ColdRestart — same extents, same rids, same
// simulated numbers — at O(catalog) cost.
func (s *Snapshot) Fork() *Dataset { return s.bind(s.Engine.Fork()) }

// ForkMutable returns a writable Dataset over the snapshot; writes go to
// the session's private copy-on-write overlay (see
// engine.Snapshot.ForkMutable). The §4.4 retire experiment runs its update
// waves on such a fork without disturbing the shared image.
func (s *Snapshot) ForkMutable() *Dataset { return s.bind(s.Engine.ForkMutable()) }

// WithEngine rebinds the snapshot's generation bookkeeping to another
// engine snapshot of the same database — the next version published by a
// commit, or a version rebuilt by WAL replay. Rids are stable across
// commits (relocated records leave forwarding stubs at their old rid),
// so the rid maps and scale carry over unchanged.
func (s *Snapshot) WithEngine(es *engine.Snapshot) *Snapshot {
	return &Snapshot{
		Engine:       es,
		numProviders: s.numProviders,
		numPatients:  s.numPatients,
		clustering:   s.clustering,
		providerRids: s.providerRids,
		patientRids:  s.patientRids,
		load:         s.load,
	}
}

func (s *Snapshot) bind(db *engine.Session) *Dataset {
	prov, err := db.Extent("Providers")
	if err != nil {
		panic("derby: snapshot lost Providers extent")
	}
	pat, err := db.Extent("Patients")
	if err != nil {
		panic("derby: snapshot lost Patients extent")
	}
	return &Dataset{
		DB:           db,
		Providers:    prov,
		Patients:     pat,
		NumProviders: s.numProviders,
		NumPatients:  s.numPatients,
		Clustering:   s.clustering,
		ProviderRids: s.providerRids,
		PatientRids:  s.patientRids,
		Load:         s.load,
	}
}
