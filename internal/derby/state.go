package derby

import (
	"fmt"

	"treebench/internal/engine"
	"treebench/internal/storage"
)

// SnapshotState is the serializable form of a derby.Snapshot's generation
// bookkeeping, together with the wrapped engine catalog. The page image
// travels separately (it is the bulk of the file and is streamed).
type SnapshotState struct {
	Engine *engine.SnapshotState

	NumProviders int
	NumPatients  int
	Clustering   Clustering
	ProviderRids []storage.Rid
	PatientRids  []storage.Rid
	Load         LoadReport
}

// State exports the snapshot for persistence.
func (s *Snapshot) State() *SnapshotState {
	return &SnapshotState{
		Engine:       s.Engine.State(),
		NumProviders: s.numProviders,
		NumPatients:  s.numPatients,
		Clustering:   s.clustering,
		ProviderRids: s.providerRids,
		PatientRids:  s.patientRids,
		Load:         s.load,
	}
}

// RestoreSnapshot rebuilds a derby.Snapshot over a restored page image.
// Like the engine restore it validates rather than trusts: rid maps that
// point beyond the image or a clustering outside the known enum fail with
// an error, never a panic.
func RestoreSnapshot(base *storage.Base, st *SnapshotState) (*Snapshot, error) {
	if st.Engine == nil {
		return nil, fmt.Errorf("derby: snapshot state has no engine catalog")
	}
	switch st.Clustering {
	case ClassCluster, CompositionCluster, RandomOrg:
	default:
		return nil, fmt.Errorf("derby: unknown clustering %d in snapshot state", st.Clustering)
	}
	if st.NumProviders < 0 || st.NumPatients < 0 {
		return nil, fmt.Errorf("derby: negative scale (%d providers, %d patients) in snapshot state",
			st.NumProviders, st.NumPatients)
	}
	es, err := engine.RestoreSnapshot(base, st.Engine)
	if err != nil {
		return nil, err
	}
	numPages := base.NumPages()
	for _, rid := range st.ProviderRids {
		if int(rid.Page) >= numPages {
			return nil, fmt.Errorf("derby: provider rid %v beyond image (%d pages)", rid, numPages)
		}
	}
	for _, rid := range st.PatientRids {
		if int(rid.Page) >= numPages {
			return nil, fmt.Errorf("derby: patient rid %v beyond image (%d pages)", rid, numPages)
		}
	}
	return &Snapshot{
		Engine:       es,
		numProviders: st.NumProviders,
		numPatients:  st.NumPatients,
		clustering:   st.Clustering,
		providerRids: st.ProviderRids,
		patientRids:  st.PatientRids,
		load:         st.Load,
	}, nil
}
