package derby

import (
	"fmt"

	"treebench/internal/engine"
	"treebench/internal/object"
	"treebench/internal/txn"
)

// Update waves: the deterministic unit of mutation behind the write
// path's `-mix` workload axis. One wave reassigns patients to new
// providers through the ODMG relationship (both sides maintained, the
// §4.4 retire-a-doctor update done correctly), churns the unclustered
// num index with scalar updates, and — every GrowEvery-th wave — evolves
// the Patient class and re-encodes a batch of objects at the new schema
// epoch, forcing the §3.2 relocation storm the paper's loading analysis
// is about, now under live readers.
//
// Wave w over a given parent version is a pure function of (spec, w):
// the PRNG is seeded from spec.Seed and w, never from who executes it.
// The chain store serializes waves in wave order, so the head state
// after N commits is byte-identical no matter how many writers raced to
// produce them — the repo's determinism invariant extended to writes.

// WaveSpec configures the update waves.
type WaveSpec struct {
	// Reassign is the number of patient→provider reassignments per wave,
	// each a relationship-maintaining SetParent (collection remove + ref
	// flip + collection add).
	Reassign int
	// Scalar is the number of patient.num overwrites per wave; num is
	// unclustered-indexed, so each update is an index delete + insert.
	Scalar int
	// GrowEvery makes every GrowEvery-th wave (wave % GrowEvery == 0,
	// wave ≥ 1) a schema-growth wave: the Patient class gains an integer
	// attribute and Upgrades objects are re-encoded at the new epoch.
	// Grown records relocate behind forwarding stubs — the relocation
	// storm. 0 disables growth waves.
	GrowEvery int
	// Upgrades is the number of patients upgraded in a growth wave.
	Upgrades int
	// Seed drives the per-wave PRNG.
	Seed int32
}

// DefaultWaveSpec returns the update-workload knobs oqlload and the
// tooling default to.
func DefaultWaveSpec() WaveSpec {
	return WaveSpec{Reassign: 24, Scalar: 24, GrowEvery: 4, Upgrades: 48, Seed: 1997}
}

// WaveReport says what one wave physically did.
type WaveReport struct {
	Wave       uint64
	Reassigned int  // SetParent calls that moved a patient
	Scalars    int  // num overwrites
	Evolved    bool // this was a schema-growth wave
	Upgraded   int  // objects re-encoded at the new epoch
	Relocated  int  // upgraded objects that no longer fit and moved
}

// waveRNG seeds the wave's private lrand48 stream. Mixing the wave
// number through a Weyl-style odd constant keeps consecutive waves'
// streams unrelated while staying a pure function of (seed, wave).
func waveRNG(seed int32, wave uint64) *LRand48 {
	return NewLRand48(seed ^ int32(wave*0x9E3779B1))
}

// ApplyWave runs update wave `wave` on a mutable dataset fork. Updates
// run under a Standard-mode transaction regardless of how the database
// was loaded — loading is the paper's transaction-off special case;
// online updates pay locks and log like §3.2's first attempt did — so
// every wave charges Lock per operation and LogWrite pages at commit,
// the simulated shadow of the real WAL append the chain store performs.
func ApplyWave(d *Dataset, wave uint64, spec WaveSpec) (*WaveReport, error) {
	if d.NumPatients == 0 || d.NumProviders == 0 {
		return nil, fmt.Errorf("derby: wave over an empty dataset")
	}
	rel, err := clientsRelationship(d)
	if err != nil {
		return nil, err
	}
	mgr := txn.NewManager(d.DB.Meter, d.DB.Client, txn.Standard)
	tx := mgr.Begin()
	rng := waveRNG(spec.Seed, wave)
	rep := &WaveReport{Wave: wave}

	for k := 0; k < spec.Reassign; k++ {
		j := rng.Intn(d.NumPatients)
		i := rng.Intn(d.NumProviders)
		if err := rel.SetParent(d.DB, tx, d.PatientRids[j], d.ProviderRids[i]); err != nil {
			return nil, fmt.Errorf("derby: wave %d reassign %d: %w", wave, k, err)
		}
		rep.Reassigned++
	}
	for k := 0; k < spec.Scalar; k++ {
		j := rng.Intn(d.NumPatients)
		v := int64(rng.Intn(2*d.NumPatients) + 1)
		if err := d.DB.UpdateAttr(tx, d.Patients, d.PatientRids[j], "num", object.IntValue(v)); err != nil {
			return nil, fmt.Errorf("derby: wave %d scalar %d: %w", wave, k, err)
		}
		rep.Scalars++
	}
	if spec.GrowEvery > 0 && wave >= 1 && wave%uint64(spec.GrowEvery) == 0 {
		// A wide attribute, and a *contiguous* run of patients upgraded to
		// carry it: consecutive mrns share pages, so the growth blows
		// through each page's 10% append reserve instead of being absorbed
		// by it — the relocation storm, concentrated the way a drifting
		// hot region concentrates real update load.
		attr := object.Attr{Name: fmt.Sprintf("rev_%d", wave), Kind: object.KindString, StrLen: 96}
		if err := d.DB.EvolveClass(d.Patients, attr, object.StringValue(fmt.Sprintf("schema wave %d", wave))); err != nil {
			return nil, fmt.Errorf("derby: wave %d evolve: %w", wave, err)
		}
		rep.Evolved = true
		start := rng.Intn(d.NumPatients)
		for k := 0; k < spec.Upgrades; k++ {
			j := (start + k) % d.NumPatients
			upgraded, relocated, err := d.DB.UpgradeObject(tx, d.Patients, d.PatientRids[j])
			if err != nil {
				return nil, fmt.Errorf("derby: wave %d upgrade %d: %w", wave, k, err)
			}
			if upgraded {
				rep.Upgraded++
			}
			if relocated {
				rep.Relocated++
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, fmt.Errorf("derby: wave %d commit: %w", wave, err)
	}
	return rep, nil
}

// clientsRelationship returns the Providers.clients ↔
// Patients.primary_care_provider relationship, declaring it on first use
// (the generator wires the two sides by hand; the declaration makes
// SetParent maintain them together from here on).
func clientsRelationship(d *Dataset) (*engine.Relationship, error) {
	for _, rel := range d.DB.Relationships() {
		if rel.Parent.Name == "Providers" && rel.RefAttr == "primary_care_provider" {
			return rel, nil
		}
	}
	return d.DB.DefineRelationship(d.Providers, "clients", d.Patients, "primary_care_provider")
}
