package derby

import (
	"bytes"
	"reflect"
	"testing"

	"treebench/internal/storage"
)

// chainWaves applies waves 1..n as a commit sequence — each wave on a
// mutable fork of the previous version, published and rebound — and
// returns the head snapshot plus the reports.
func chainWaves(t *testing.T, root *Snapshot, spec WaveSpec, n uint64) (*Snapshot, []*WaveReport) {
	t.Helper()
	cur := root
	var reps []*WaveReport
	for w := uint64(1); w <= n; w++ {
		d := cur.ForkMutable()
		rep, err := ApplyWave(d, w, spec)
		if err != nil {
			t.Fatalf("wave %d: %v", w, err)
		}
		es, delta, err := d.DB.Publish()
		if err != nil {
			t.Fatalf("publish wave %d: %v", w, err)
		}
		if delta.Pages() == 0 {
			t.Fatalf("wave %d committed no pages", w)
		}
		cur = cur.WithEngine(es)
		reps = append(reps, rep)
	}
	return cur, reps
}

// TestWaveDeterminism: two independent replays of the same wave sequence
// over the same root produce byte-identical page images and identical
// catalogs — the invariant that makes commits safe to replay from the
// WAL and independent of writer interleaving.
func TestWaveDeterminism(t *testing.T) {
	ds, err := Generate(DefaultConfig(50, 20, ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	root, err := ds.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultWaveSpec()
	const waves = 5

	headA, repsA := chainWaves(t, root, spec, waves)
	headB, repsB := chainWaves(t, root, spec, waves)

	if !reflect.DeepEqual(repsA, repsB) {
		t.Fatalf("wave reports diverged:\n%+v\nvs\n%+v", repsA, repsB)
	}
	var upgraded, relocated int
	for _, r := range repsA {
		upgraded += r.Upgraded
		relocated += r.Relocated
	}
	if upgraded == 0 {
		t.Fatal("no objects upgraded — the growth wave never ran")
	}
	if relocated == 0 {
		t.Fatal("no relocations — the schema-growth storm did not materialize")
	}

	stA, stB := headA.Engine.State(), headB.Engine.State()
	if !reflect.DeepEqual(stA, stB) {
		t.Fatalf("head catalogs diverged")
	}
	bA, bB := headA.Engine.Base(), headB.Engine.Base()
	if bA.NumPages() != bB.NumPages() {
		t.Fatalf("page counts diverged: %d vs %d", bA.NumPages(), bB.NumPages())
	}
	for i := 0; i < bA.NumPages(); i++ {
		pa, err := bA.Page(storage.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := bB.Page(storage.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa, pb) {
			t.Fatalf("page %d diverged between identical wave replays", i)
		}
	}
}

// TestWaveRelationshipConsistency: after a pile of reassignment waves,
// both sides of the clients ↔ primary_care_provider relationship still
// agree — the §4.4 update done correctly, at scale, across commits.
func TestWaveRelationshipConsistency(t *testing.T) {
	ds, err := Generate(DefaultConfig(30, 10, ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	root, err := ds.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	head, _ := chainWaves(t, root, DefaultWaveSpec(), 6)

	db := head.Engine.Fork()
	rels := db.Relationships()
	if len(rels) != 1 {
		t.Fatalf("%d relationships on the head, want 1", len(rels))
	}
	if err := rels[0].VerifyConsistency(db); err != nil {
		t.Fatalf("relationship inconsistent after waves: %v", err)
	}

	// Simulated meter charges accrued: waves run in Standard mode, so
	// locks and log pages must have been paid on the committing forks.
	d := head.ForkMutable()
	before := d.DB.Meter.Snapshot()
	if _, err := ApplyWave(d, 99, DefaultWaveSpec()); err != nil {
		t.Fatal(err)
	}
	after := d.DB.Meter.Snapshot()
	if after.Locks <= before.Locks || after.LogPages <= before.LogPages {
		t.Fatalf("wave charged no txn costs: locks %d→%d log %d→%d",
			before.Locks, after.Locks, before.LogPages, after.LogPages)
	}
}
