package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"sync"
	"time"

	"treebench/internal/client"
	"treebench/internal/core"
	"treebench/internal/derby"
	"treebench/internal/object"
	"treebench/internal/oql"
	"treebench/internal/session"
	"treebench/internal/sim"
	"treebench/internal/wire"
)

// Config parameterizes a Coordinator.
type Config struct {
	// ShardAddrs lists the shard daemons in shard-index order: ShardAddrs[i]
	// must be a treebenchd running with -shard i/N. At least one is required.
	ShardAddrs []string
	// Source produces the coordinator's local snapshot plus a provenance
	// label. The coordinator never executes queries on it — it plans on it
	// (classification, the Explain rendering, order-by metadata) and reads
	// the cost model for the one global sort charge. It must be the same
	// snapshot configuration the shards serve; SnapshotKey proves that.
	Source func() (*derby.Snapshot, string, error)
	// Label names the served database in the handshake.
	Label string
	// SnapshotKey is the content-addressed persist key of the cluster's
	// snapshot configuration. The coordinator refuses shards that announce
	// a different key ("" disables the check).
	SnapshotKey string
	// Dial tunes the coordinator's shard connections (retry/backoff,
	// IO timeout). Zero values take the client defaults.
	Dial client.Options
	// QueryTimeout bounds one distributed query end to end; 0 means 60s
	// (a scatter pays the slowest shard, so the budget is deliberately
	// wider than treebenchd's 30s default).
	QueryTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Coordinator is a treebench-coord instance: it speaks the same wire
// protocol as treebenchd (so oqlsh/oqlload point at it unchanged), plans
// each statement locally, and either scatters it across every shard
// (distributable operators) or routes it whole to one shard (the
// deliberately sequential ones).
type Coordinator struct {
	cfg   Config
	stats coordStats

	// planMu serializes planning on the shared local session (the planner
	// is not concurrency-safe; planning is cheap and plan-cached).
	planMu sync.Mutex

	snapFlight core.Flight[struct{}, *session.Session]

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*coordConn]struct{}
	draining bool

	wg sync.WaitGroup
}

// New validates cfg and returns an unstarted coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.ShardAddrs) == 0 {
		return nil, fmt.Errorf("dist: at least one shard address is required")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("dist: Config.Source is required")
	}
	if cfg.QueryTimeout == 0 {
		cfg.QueryTimeout = 60 * time.Second
	}
	if cfg.Dial.IOTimeout == 0 {
		cfg.Dial.IOTimeout = cfg.QueryTimeout
	}
	return &Coordinator{
		cfg:   cfg,
		conns: make(map[*coordConn]struct{}),
	}, nil
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// planSession returns the coordinator's local planning session, building it
// from the snapshot source exactly once. Planning charges land on the
// session's private meter, which is never reported — the shards' meters are
// the only accounting a client sees.
func (co *Coordinator) planSession() (*session.Session, error) {
	return co.snapFlight.Do(struct{}{}, func() (*session.Session, error) {
		sn, source, err := co.cfg.Source()
		if err != nil {
			return nil, err
		}
		if err := sn.Engine.PrimeStats(); err != nil {
			return nil, err
		}
		co.logf("planning snapshot ready (%s)", source)
		return session.NewWith(sn.Fork().DB, session.Config{
			PlanCache: oql.NewPlanCache(0),
		}), nil
	})
}

// Warm eagerly builds the planning snapshot so a misconfigured source fails
// at startup rather than on the first query.
func (co *Coordinator) Warm() error {
	_, err := co.planSession()
	return err
}

// Shards returns the cluster width.
func (co *Coordinator) Shards() int { return len(co.cfg.ShardAddrs) }

// ListenAndServe listens on addr and serves until Shutdown.
func (co *Coordinator) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return co.Serve(ln)
}

// ErrCoordClosed is returned by Serve after Shutdown.
var ErrCoordClosed = errors.New("dist: coordinator closed")

// Serve accepts sessions on ln until Shutdown.
func (co *Coordinator) Serve(ln net.Listener) error {
	co.mu.Lock()
	if co.draining {
		co.mu.Unlock()
		ln.Close()
		return ErrCoordClosed
	}
	co.ln = ln
	co.mu.Unlock()
	co.logf("coordinating %d shards on %s (db %s)", len(co.cfg.ShardAddrs), ln.Addr(), co.cfg.Label)
	for {
		nc, err := ln.Accept()
		if err != nil {
			if co.isDraining() {
				return ErrCoordClosed
			}
			return err
		}
		c := &coordConn{co: co, c: nc, shards: make([]*client.Client, len(co.cfg.ShardAddrs))}
		co.mu.Lock()
		if co.draining {
			co.mu.Unlock()
			nc.Close()
			continue
		}
		co.conns[c] = struct{}{}
		co.mu.Unlock()
		co.wg.Add(1)
		go c.serve()
	}
}

func (co *Coordinator) isDraining() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.draining
}

// Shutdown drains: stop accepting, disconnect idle sessions, let in-flight
// queries flush, and return when done (or ctx expires).
func (co *Coordinator) Shutdown(ctx context.Context) error {
	co.mu.Lock()
	if !co.draining {
		co.draining = true
		if co.ln != nil {
			co.ln.Close()
		}
		for c := range co.conns {
			if !c.busy {
				c.c.Close()
			}
		}
	}
	co.mu.Unlock()
	done := make(chan struct{})
	go func() {
		co.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		co.logf("drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// coordConn is one accepted session plus its lazily dialed shard
// connections. Requests are handled strictly in order; only the session
// goroutine (and, during one scatter, its per-shard workers on distinct
// slots) touches the shard slice.
type coordConn struct {
	co *Coordinator
	c  net.Conn
	bw *bufio.Writer

	// busy (guarded by co.mu) marks a request in flight; Shutdown only
	// force-closes idle connections.
	busy bool

	shards []*client.Client
}

const handshakeTimeout = 10 * time.Second

func (c *coordConn) serve() {
	co := c.co
	defer co.wg.Done()
	defer func() {
		co.mu.Lock()
		delete(co.conns, c)
		co.mu.Unlock()
		c.c.Close()
		for _, cl := range c.shards {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	co.stats.sessionOpened()
	defer co.stats.sessionClosed()

	c.bw = bufio.NewWriter(c.c)
	if !c.handshake() {
		return
	}
	for {
		typ, payload, err := wire.ReadFrame(c.c)
		if err != nil {
			return
		}
		if !c.beginRequest() {
			c.send(wire.TypeError, (&wire.Error{Code: wire.CodeShutdown, Msg: "coordinator is draining"}).Encode())
			return
		}
		ok := c.handle(typ, payload)
		if !c.endRequest() || !ok {
			return
		}
	}
}

func (c *coordConn) beginRequest() bool {
	co := c.co
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.draining {
		return false
	}
	c.busy = true
	return true
}

func (c *coordConn) endRequest() bool {
	co := c.co
	co.mu.Lock()
	defer co.mu.Unlock()
	c.busy = false
	return !co.draining
}

func (c *coordConn) handshake() bool {
	c.c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := wire.ReadFrame(c.c)
	if err != nil {
		return false
	}
	c.c.SetReadDeadline(time.Time{})
	if typ != wire.TypeHello {
		c.send(wire.TypeError, (&wire.Error{Code: wire.CodeProto, Msg: "expected hello"}).Encode())
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil || h.Version != wire.Version {
		c.send(wire.TypeError, (&wire.Error{Code: wire.CodeProto, Msg: "unsupported protocol version"}).Encode())
		return false
	}
	return c.send(wire.TypeServerHello, (&wire.ServerHello{
		Version:     wire.Version,
		Label:       c.co.cfg.Label,
		SnapshotKey: c.co.cfg.SnapshotKey,
	}).Encode())
}

func (c *coordConn) handle(typ byte, payload []byte) bool {
	switch typ {
	case wire.TypePing:
		return c.send(wire.TypePong, nil)
	case wire.TypeStatsReq:
		return c.send(wire.TypeStats, c.co.Stats().Encode())
	case wire.TypeClusterStatsReq:
		return c.clusterStats()
	case wire.TypeQuery:
		q, err := wire.DecodeQuery(payload)
		if err != nil {
			c.send(wire.TypeError, (&wire.Error{Code: wire.CodeProto, Msg: err.Error()}).Encode())
			return false
		}
		return c.query(q)
	default:
		c.send(wire.TypeError, (&wire.Error{Code: wire.CodeProto, Msg: "unknown frame type"}).Encode())
		return false
	}
}

func (c *coordConn) send(typ byte, payload []byte) bool {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return false
	}
	return c.bw.Flush() == nil
}

func (c *coordConn) sendError(code byte, err error) bool {
	return c.send(wire.TypeError, (&wire.Error{Code: code, Msg: err.Error()}).Encode())
}

// shard returns the connection's client for shard i, dialing (with the
// configured retry/backoff) and verifying the shard's identity and snapshot
// key on first use. Failures come back as *ShardDownError.
func (c *coordConn) shard(i int) (*client.Client, error) {
	if c.shards[i] != nil {
		return c.shards[i], nil
	}
	addr := c.co.cfg.ShardAddrs[i]
	cl, err := client.Dial(addr, c.co.cfg.Dial)
	if err != nil {
		return nil, &ShardDownError{Shard: i, Addr: addr, Err: err}
	}
	idx, cnt := cl.Shard()
	if int(idx) != i || int(cnt) != len(c.co.cfg.ShardAddrs) {
		cl.Close()
		return nil, &ShardDownError{Shard: i, Addr: addr,
			Err: fmt.Errorf("announced shard %d/%d, want %d/%d", idx, cnt, i, len(c.co.cfg.ShardAddrs))}
	}
	if key := c.co.cfg.SnapshotKey; key != "" && cl.SnapshotKey() != "" && cl.SnapshotKey() != key {
		cl.Close()
		return nil, &ShardDownError{Shard: i, Addr: addr,
			Err: fmt.Errorf("snapshot key mismatch: shard serves %.12s…, cluster is %.12s…", cl.SnapshotKey(), key)}
	}
	c.shards[i] = cl
	return cl, nil
}

// dropShard closes and forgets shard i's connection after a transport
// failure, so the next query redials (and the retry/backoff gets a chance
// to find a restarted daemon).
func (c *coordConn) dropShard(i int) {
	if c.shards[i] != nil {
		c.shards[i].Close()
		c.shards[i] = nil
	}
}

// shardFailure converts one shard call's error for the client: server-side
// query errors relay as-is; transport errors become typed shard-down
// failures (and drop the connection for redial).
func (c *coordConn) shardFailure(i int, err error) (byte, error) {
	var se *client.ServerError
	if errors.As(err, &se) {
		return se.Code, err
	}
	c.dropShard(i)
	return wire.CodeShard, &ShardDownError{Shard: i, Addr: c.co.cfg.ShardAddrs[i], Err: err}
}

// query plans one statement locally and either scatters it across every
// shard or routes it whole to one.
func (c *coordConn) query(q *wire.Query) bool {
	co := c.co
	if q.Warm {
		// Distributed execution is cold-only: a warm sequence's numbers
		// depend on one session's private cache history, which has no
		// byte-identical decomposition across shards.
		return c.sendError(wire.CodeQuery, fmt.Errorf("dist: warm queries are not distributable; use a direct shard connection"))
	}
	sess, err := co.planSession()
	if err != nil {
		return c.sendError(wire.CodeQuery, err)
	}
	start := time.Now()
	plan, err := co.plan(sess, q)
	if err != nil {
		co.stats.record(time.Since(start), 0, true)
		return c.sendError(wire.CodeQuery, err)
	}

	var res *wire.Result
	var code byte
	if Distributable(plan) {
		res, code, err = c.scatter(plan, q)
	} else {
		res, code, err = c.route(q)
	}
	if err != nil {
		co.stats.record(time.Since(start), 0, true)
		return c.sendError(code, err)
	}
	operator := string(plan.Access)
	if plan.Kind == oql.PlanTreeJoin {
		operator = string(plan.Algorithm)
	}
	co.stats.recordPlan(plan.Strategy == oql.Heuristic, operator)
	co.stats.record(time.Since(start), res.Elapsed, false)
	if max := int(q.MaxRows); len(res.Sample) > max {
		res.Sample = res.Sample[:max]
	}
	return c.send(wire.TypeResult, res.Encode())
}

// plan compiles the statement on the coordinator's local session under the
// requested strategy. The planner is not concurrency-safe; one lock
// serializes all connections' (cheap, cached) planning.
func (co *Coordinator) plan(sess *session.Session, q *wire.Query) (*oql.Plan, error) {
	co.planMu.Lock()
	defer co.planMu.Unlock()
	if q.Strategy == wire.StrategyHeuristic {
		sess.Planner.Strategy = oql.Heuristic
	} else {
		sess.Planner.Strategy = oql.CostBased
	}
	return sess.Planner.PlanSource(q.Stmt)
}

// route dispatches a non-distributable statement whole to one shard —
// deterministically placed by statement hash, so repeated runs of one
// workload spread while any given query always lands on the same shard —
// and relays the shard's full single-node Result.
func (c *coordConn) route(q *wire.Query) (*wire.Result, byte, error) {
	n := len(c.co.cfg.ShardAddrs)
	h := fnv.New32a()
	h.Write([]byte(q.Stmt))
	target := int(h.Sum32() % uint32(n))
	cl, err := c.shard(target)
	if err != nil {
		return nil, wire.CodeShard, err
	}
	res, err := cl.Query(q.Stmt, client.QueryOptions{
		Heuristic: q.Strategy == wire.StrategyHeuristic,
		MaxRows:   int(q.MaxRows),
	})
	if err != nil {
		code, err := c.shardFailure(target, err)
		return nil, code, err
	}
	return res, 0, nil
}

// scatter fans the statement out to every shard and merges the partials in
// shard-index order. Any shard failure fails the query; the lowest-indexed
// failure wins, so the reported error is deterministic.
func (c *coordConn) scatter(plan *oql.Plan, q *wire.Query) (*wire.Result, byte, error) {
	n := len(c.co.cfg.ShardAddrs)
	parts := make([]*wire.Partial, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := c.shard(i)
			if err != nil {
				errs[i] = err
				return
			}
			parts[i], errs[i] = cl.Scatter(&wire.Scatter{
				Stmt:     q.Stmt,
				Strategy: q.Strategy,
				ShardIdx: uint32(i),
				ShardCnt: uint32(n),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		var sde *ShardDownError
		if errors.As(err, &sde) {
			return nil, wire.CodeShard, err
		}
		code, err := c.shardFailure(i, err)
		return nil, code, err
	}
	sess, err := c.co.planSession()
	if err != nil {
		return nil, wire.CodeQuery, err
	}
	return MergePartials(plan, sess.DB.Meter.Model, parts), 0, nil
}

// MergePartials gathers per-shard partial results into the one Result a
// single node would have produced: rows and meters sum in shard-index order
// (chunk-block concatenation IS chunk order), aggregate states merge then
// finalize, samples concatenate then get the global order-by treatment —
// the sort charge over all matching rows, the stable sort, the hidden
// column strip — exactly once.
func MergePartials(plan *oql.Plan, model sim.CostModel, parts []*wire.Partial) *wire.Result {
	out := &wire.Result{Plan: plan.Explain()}
	var counters sim.Counters
	var elapsed time.Duration
	var aggs []oql.AggPartial
	var sample [][]object.Value
	for i, part := range parts {
		out.Rows += part.Rows
		counters.Add(part.Counters)
		elapsed += part.Elapsed
		cur := make([]oql.AggPartial, len(part.Aggs))
		for j, a := range part.Aggs {
			cur[j] = oql.AggPartial{Agg: oql.Aggregate(a.Agg), Label: a.Label,
				N: a.N, Sum: a.Sum, Min: a.Min, Max: a.Max}
		}
		if i == 0 {
			aggs = cur
		} else {
			aggs = oql.MergeAggPartials(aggs, cur)
		}
		sample = append(sample, part.Sample...)
	}
	// Each shard keeps its first SampleLimit rows — a superset of its
	// contribution to the global first SampleLimit — so the concatenation's
	// prefix matches the single-node sample exactly.
	if len(sample) > oql.SampleLimit {
		sample = sample[:oql.SampleLimit]
	}
	for _, a := range aggs {
		r := a.Finalize()
		out.Aggregates = append(out.Aggregates, wire.Agg{Label: r.Label, Value: r.Value})
	}
	if plan.Kind == oql.PlanSelection && plan.OrderAttr != "" {
		// The sort is charged over ALL matching rows, once, globally — the
		// shards deliberately skipped it (oql.ExecutePartial).
		scratch := sim.NewMeter(model)
		scratch.Sort(out.Rows)
		counters.Add(scratch.Snapshot())
		elapsed += scratch.Elapsed()
		idx := plan.OrderIdx
		sort.SliceStable(sample, func(i, j int) bool {
			if plan.OrderDesc {
				return sample[i][idx].Int > sample[j][idx].Int
			}
			return sample[i][idx].Int < sample[j][idx].Int
		})
		if plan.OrderHidden() {
			for i := range sample {
				sample[i] = sample[i][:len(sample[i])-1]
			}
		}
	}
	out.Elapsed = elapsed
	out.Counters = counters
	out.Sample = sample
	return out
}

// clusterStats answers with the shard map and every shard's Stats snapshot.
// Unreachable shards report Up=false rather than failing the request — the
// stats view is exactly where you look when a shard is down.
func (c *coordConn) clusterStats() bool {
	co := c.co
	msg := &wire.ClusterStats{}
	if sess, err := co.planSession(); err == nil {
		msg.Map = ShardMap(sess.DB, len(co.cfg.ShardAddrs))
	}
	for i, addr := range co.cfg.ShardAddrs {
		st := wire.ShardStat{Idx: uint32(i), Addr: addr}
		if cl, err := c.shard(i); err == nil {
			if s, err := cl.Stats(); err == nil {
				st.Up = true
				st.Stats = s
			} else {
				c.dropShard(i)
			}
		}
		msg.Shards = append(msg.Shards, st)
	}
	return c.send(wire.TypeClusterStats, msg.Encode())
}

// Stats snapshots the coordinator's own counters (the shards' are behind
// ClusterStats).
func (co *Coordinator) Stats() *wire.Stats {
	return co.stats.snapshot(int64(len(co.cfg.ShardAddrs)))
}
