// Package dist is treebench's distributed execution layer: a deterministic
// shard map over the engine's chunk decomposition, and a scatter-gather
// coordinator (treebench-coord) that fans one OQL statement out to N
// treebenchd shards and merges their partial results in shard-index order.
//
// The design exploits the fact that every simulated charge in this system
// is a pure function of the data and the query, never of the machine:
//
//   - Chunk decomposition (engine.ChunksForWork over engine.Extent.Partition
//     page ranges) is already a pure function of the data, so the shard map
//     — shard s of N owns the engine.ShardChunks block of every chunk grid —
//     is too. No node-count-mod placement, no rebalancing state.
//   - Every shard loads the same content-addressed .tbsp snapshot (shards
//     pull or regenerate by SHA-256 key via persist.Cache — provisioning
//     ships the hash, not the data) and executes the statement under its
//     chunk-ownership mask: owned chunks run on their canonical fork
//     indices and charge the meter; unowned chunks either do not run
//     (scans, probes) or run uncharged for their side effects (hash-join
//     build broadcast, engine.RunChunksAll).
//   - The coordinator concatenates per-shard blocks in shard-index order,
//     which is exactly the chunk-index order a single node merges in, then
//     applies the global post-processing (the order-by sort charge over all
//     rows, aggregate finalization) exactly once.
//
// A cluster's rendered tables and meter totals are therefore byte-identical
// to a single-node run — the property TestDistributedDeterministic and the
// dist_smoke.sh CI diff pin down.
package dist

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"treebench/internal/engine"
	"treebench/internal/join"
	"treebench/internal/oql"
	"treebench/internal/selection"
)

// ErrShardDown reports that a shard required by a query is unreachable.
// Errors wrapping it are *ShardDownError values naming the shard.
var ErrShardDown = errors.New("dist: shard down")

// ShardDownError is a query failure caused by one unreachable shard.
type ShardDownError struct {
	Shard int
	Addr  string
	Err   error
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("dist: shard %d (%s) down: %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardDownError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrShardDown) true for every ShardDownError.
func (e *ShardDownError) Is(target error) bool { return target == ErrShardDown }

// Distributable reports whether the plan's operator can be sliced across
// shards by the chunk-ownership mask. Full scans and the chunked join
// algorithms (NL fan-out, PHJ/CHJ with build-side broadcast) distribute;
// the deliberately sequential operators (index scans, whose simulated fault
// pattern depends on one cache's history; NOJOIN/VNOJOIN navigation;
// HHJ/SMJ) run whole on a single shard instead.
func Distributable(p *oql.Plan) bool {
	switch p.Kind {
	case oql.PlanSelection:
		return p.Access == selection.FullScan
	case oql.PlanTreeJoin:
		switch p.Algorithm {
		case join.NL, join.PHJ, join.CHJ:
			return true
		}
	}
	return false
}

// ShardMap renders the cluster's chunk-ownership map over db's extents: for
// each extent, its scan-chunk count and every shard's ShardChunks block.
// The map is a pure function of (data, shard count) — the point of the
// whole design — so any node can render it without coordination.
func ShardMap(db *engine.Database, shards int) string {
	names := db.Extents()
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "shard map (%d shards, chunk-block ownership):\n", shards)
	for _, name := range names {
		e, err := db.Extent(name)
		if err != nil {
			continue
		}
		nc := len(selection.ScanChunks(e))
		fmt.Fprintf(&b, "  %s: %d chunk(s) →", name, nc)
		for s := 0; s < shards; s++ {
			lo, hi := engine.ShardChunks(nc, s, shards)
			fmt.Fprintf(&b, " shard%d=[%d,%d)", s, lo, hi)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
