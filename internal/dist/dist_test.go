package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"treebench/internal/client"
	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/join"
	"treebench/internal/oql"
	"treebench/internal/selection"
	"treebench/internal/server"
	"treebench/internal/session"
	"treebench/internal/wire"
)

// The test database is shaped so the distributed machinery actually
// engages: 1000 providers × ~20 patients ≈ 20000 children fan the patient
// extent out over multiple scan chunks (20000/4096), so a 3-shard split
// gives every shard real work — and, unlike a few-fat-providers shape, the
// cost model can be steered to every join algorithm (PHJ, CHJ, NOJOIN, NL)
// by selectivity alone.
func testConfig() derby.Config {
	return derby.DefaultConfig(1000, 20, derby.ClassCluster)
}

// sharedSnapshot generates and freezes the test database once per test
// binary; every shard server, coordinator, and single-node baseline forks
// from it — in-process, the "content-addressed provisioning" degenerates to
// literal sharing, which is the point of the snapshot design.
var (
	snapOnce sync.Once
	snapVal  *derby.Snapshot
	snapErr  error
)

func sharedSnapshot(t *testing.T) *derby.Snapshot {
	t.Helper()
	snapOnce.Do(func() {
		d, err := derby.Generate(testConfig())
		if err != nil {
			snapErr = err
			return
		}
		sn, err := d.Freeze()
		if err != nil {
			snapErr = err
			return
		}
		snapErr = sn.Engine.PrimeStats()
		snapVal = sn
	})
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	return snapVal
}

const testKey = "test-snapshot-key"

// startShard boots one in-process treebenchd as shard idx of cnt over the
// shared snapshot.
func startShard(t *testing.T, sn *derby.Snapshot, idx, cnt, qj, batch int) string {
	t.Helper()
	srv, err := server.New(server.Config{
		Source:      func() (*derby.Snapshot, string, error) { return sn, "shared", nil },
		Label:       "dist test db",
		Sessions:    4,
		MaxQueue:    64,
		QueryJobs:   qj,
		Batch:       batch,
		ShardIdx:    idx,
		ShardCnt:    cnt,
		SnapshotKey: testKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Warm(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shard %d shutdown: %v", idx, err)
		}
		<-done
	})
	return ln.Addr().String()
}

// startCoord boots a coordinator over the given shard addresses.
func startCoord(t *testing.T, sn *derby.Snapshot, addrs []string) string {
	t.Helper()
	co, err := New(Config{
		ShardAddrs:  addrs,
		Source:      func() (*derby.Snapshot, string, error) { return sn, "shared", nil },
		Label:       "dist test db",
		SnapshotKey: testKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Warm(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- co.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := co.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		<-done
	})
	return ln.Addr().String()
}

// testStatements returns the distributed smoke set plus, via a planning
// grid search over selectivity pairs, one cost-planned statement per hash
// join algorithm. The heuristic strategy always plans NL for tree joins, so
// NL coverage is guaranteed by flagging one statement heuristic.
type distStmt struct {
	src       string
	heuristic bool
	wantOp    string // non-empty: assert the executed operator
}

func testStatements(t *testing.T, sn *derby.Snapshot) []distStmt {
	t.Helper()
	stmts := []distStmt{
		// Full scans: unfiltered, filtered on an unindexed attribute,
		// aggregates, count(*), and an order-by with a hidden sort column.
		{src: "select pa.mrn, pa.age from pa in Patients", wantOp: string(selection.FullScan)},
		{src: "select pa.mrn, pa.age from pa in Patients where pa.age < 40", wantOp: string(selection.FullScan)},
		{src: "select avg(pa.age), min(pa.age), max(pa.age) from pa in Patients where pa.age < 60", wantOp: string(selection.FullScan)},
		{src: "select count(*) from pa in Patients"},
		{src: "select pa.mrn from pa in Patients where pa.age < 40 order by pa.age"},
		{src: "select pa.mrn, pa.age from pa in Patients where pa.age < 50 order by pa.age desc"},
		// Index selection: routed whole to one shard.
		{src: "select pa.age from pa in Patients where pa.mrn < 1000", wantOp: string(selection.IndexScan)},
		// NL via the heuristic strategy (always planned for tree joins).
		{src: treeJoin(sn, 50, 50), heuristic: true, wantOp: string(join.NL)},
	}
	// Grid-search selectivity pairs for cost-planned PHJ and CHJ (and keep
	// one NOJOIN as singleton-join coverage if it shows up).
	sess := session.NewWith(sn.Fork().DB, session.Config{})
	found := map[string]bool{}
	for _, k1pct := range []int{1, 2, 5, 10, 30, 50, 70, 90} {
		for _, k2pct := range []int{5, 10, 30, 50, 70, 90} {
			src := treeJoin(sn, k1pct, k2pct)
			plan, err := sess.Planner.PlanSource(src)
			if err != nil {
				t.Fatalf("planning %q: %v", src, err)
			}
			if plan.Kind != oql.PlanTreeJoin {
				continue
			}
			alg := string(plan.Algorithm)
			switch plan.Algorithm {
			case join.PHJ, join.CHJ, join.NOJOIN:
				if !found[alg] {
					found[alg] = true
					stmts = append(stmts, distStmt{src: src, wantOp: alg})
				}
			}
		}
	}
	for _, alg := range []join.Algorithm{join.PHJ, join.CHJ} {
		if !found[string(alg)] {
			t.Fatalf("no selectivity pair cost-plans %s; grid needs widening", alg)
		}
	}
	return stmts
}

func treeJoin(sn *derby.Snapshot, k1pct, k2pct int) string {
	d := sn.Fork()
	k1 := d.NumPatients * k1pct / 100
	k2 := d.NumProviders * k2pct / 100
	return fmt.Sprintf("select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < %d and p.upin < %d", k1, k2)
}

// TestDistributedDeterministic is the subsystem's acceptance gate: rendered
// tables and meter totals from a 3-shard cluster must be byte-identical to
// a single-node run, for full scans, index selections, and every
// distributed join strategy, across -qj 1/4 × -batch 1/1024.
func TestDistributedDeterministic(t *testing.T) {
	sn := sharedSnapshot(t)
	stmts := testStatements(t, sn)
	for _, cfg := range []struct{ qj, batch int }{
		{1, 1}, {1, 1024}, {4, 1}, {4, 1024},
	} {
		t.Run(fmt.Sprintf("qj%d_batch%d", cfg.qj, cfg.batch), func(t *testing.T) {
			const shards = 3
			addrs := make([]string, shards)
			for i := range addrs {
				addrs[i] = startShard(t, sn, i, shards, cfg.qj, cfg.batch)
			}
			coord := startCoord(t, sn, addrs)
			cl, err := client.Dial(coord, client.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			local := session.NewWith(sn.Fork().DB, session.Config{QueryJobs: cfg.qj, Batch: cfg.batch})
			covered := map[string]bool{}
			for _, st := range stmts {
				local.Planner.Strategy = oql.CostBased
				if st.heuristic {
					local.Planner.Strategy = oql.Heuristic
				}
				want, err := local.Execute(st.src)
				if err != nil {
					t.Fatalf("local %q: %v", st.src, err)
				}
				wantWire := session.ToWire(want, 10)
				got, err := cl.Query(st.src, client.QueryOptions{Heuristic: st.heuristic, MaxRows: 10})
				if err != nil {
					t.Fatalf("distributed %q: %v", st.src, err)
				}
				var wantBuf, gotBuf strings.Builder
				session.WriteResult(&wantBuf, wantWire, 10)
				session.WriteResult(&gotBuf, got, 10)
				if wantBuf.String() != gotBuf.String() {
					t.Fatalf("distributed rendering diverged for %q:\n--- local ---\n%s--- cluster ---\n%s",
						st.src, wantBuf.String(), gotBuf.String())
				}
				if got.Counters != want.Counters {
					t.Fatalf("counters diverged for %q:\nlocal   %+v\ncluster %+v", st.src, want.Counters, got.Counters)
				}
				if got.Elapsed != want.Elapsed {
					t.Fatalf("elapsed diverged for %q: local %v cluster %v", st.src, want.Elapsed, got.Elapsed)
				}
				if st.wantOp != "" {
					if !strings.Contains(got.Plan, "via "+st.wantOp) {
						t.Fatalf("statement %q executed via %q, want operator %s", st.src, got.Plan, st.wantOp)
					}
					covered[st.wantOp] = true
				}
			}
			for _, op := range []string{string(join.NL), string(join.PHJ), string(join.CHJ), string(selection.FullScan), string(selection.IndexScan)} {
				if !covered[op] {
					t.Fatalf("operator %s not covered", op)
				}
			}
		})
	}
}

// TestShardChunksPartition pins the ownership arithmetic: for any (n, N),
// the shard blocks are contiguous, in order, and cover every chunk exactly
// once — the property that makes shard-order merges equal chunk-order
// merges.
func TestShardChunksPartition(t *testing.T) {
	for n := 0; n <= 16; n++ {
		for N := 1; N <= 5; N++ {
			prev := 0
			for s := 0; s < N; s++ {
				lo, hi := engine.ShardChunks(n, s, N)
				if lo != prev {
					t.Fatalf("ShardChunks(%d, %d, %d) = [%d,%d): gap or overlap at %d", n, s, N, lo, hi, prev)
				}
				if hi < lo {
					t.Fatalf("ShardChunks(%d, %d, %d) = [%d,%d): negative block", n, s, N, lo, hi)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("ShardChunks(%d, *, %d) covers [0,%d), want [0,%d)", n, N, prev, n)
			}
		}
	}
	// Degenerate masks own everything.
	if lo, hi := engine.ShardChunks(8, 0, 0); lo != 0 || hi != 8 {
		t.Fatalf("unmasked ShardChunks = [%d,%d), want [0,8)", lo, hi)
	}
}

// TestShardDownTyped pins graceful degradation: with one shard of the
// cluster absent, a distributed query fails with the typed shard error
// naming the shard — it neither hangs nor misreports.
func TestShardDownTyped(t *testing.T) {
	sn := sharedSnapshot(t)
	const shards = 3
	addrs := make([]string, shards)
	for i := 0; i < shards-1; i++ {
		addrs[i] = startShard(t, sn, i, shards, 1, 1024)
	}
	// Shard 2 is a dead address: grab a listener and close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs[shards-1] = ln.Addr().String()
	ln.Close()

	coord := startCoord(t, sn, addrs)
	cl, err := client.Dial(coord, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query("select pa.mrn, pa.age from pa in Patients", client.QueryOptions{})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeShard {
		t.Fatalf("query with a down shard returned %v, want CodeShard server error", err)
	}
	if !strings.Contains(se.Msg, "shard 2") {
		t.Fatalf("shard error does not name the shard: %q", se.Msg)
	}
}

// TestShardDownError pins the typed error's errors.Is/As contract.
func TestShardDownError(t *testing.T) {
	err := fmt.Errorf("scatter: %w", &ShardDownError{Shard: 1, Addr: "x:1", Err: errors.New("refused")})
	if !errors.Is(err, ErrShardDown) {
		t.Fatal("wrapped ShardDownError is not errors.Is(ErrShardDown)")
	}
	var sde *ShardDownError
	if !errors.As(err, &sde) || sde.Shard != 1 {
		t.Fatalf("errors.As failed: %v", err)
	}
}

// TestScatterIdentityValidated pins the shard-side identity check: a
// Scatter addressed to the wrong shard identity is refused with CodeShard,
// never silently executed with the wrong mask.
func TestScatterIdentityValidated(t *testing.T) {
	sn := sharedSnapshot(t)
	addr := startShard(t, sn, 1, 3, 1, 1024)
	cl, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Scatter(&wire.Scatter{Stmt: "select count(*) from pa in Patients", ShardIdx: 0, ShardCnt: 3})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeShard {
		t.Fatalf("misaddressed scatter returned %v, want CodeShard", err)
	}
}

// TestWarmRejected pins the cold-only discipline at the coordinator.
func TestWarmRejected(t *testing.T) {
	sn := sharedSnapshot(t)
	const shards = 2
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = startShard(t, sn, i, shards, 1, 1024)
	}
	coord := startCoord(t, sn, addrs)
	cl, err := client.Dial(coord, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.Query("select count(*) from pa in Patients", client.QueryOptions{Warm: true})
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeQuery {
		t.Fatalf("warm distributed query returned %v, want CodeQuery rejection", err)
	}
}

// TestClusterStats exercises the coordinator's per-shard stats view: the
// shard map renders, every shard reports up with its identity, and the
// coordinator's own stats count the served queries.
func TestClusterStats(t *testing.T) {
	sn := sharedSnapshot(t)
	const shards = 2
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = startShard(t, sn, i, shards, 1, 1024)
	}
	coord := startCoord(t, sn, addrs)
	cl, err := client.Dial(coord, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query("select count(*) from pa in Patients", client.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	cs, err := cl.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.Map, "shard map (2 shards") || !strings.Contains(cs.Map, "Patients") {
		t.Fatalf("shard map rendering: %q", cs.Map)
	}
	if len(cs.Shards) != shards {
		t.Fatalf("cluster stats cover %d shards, want %d", len(cs.Shards), shards)
	}
	for i, s := range cs.Shards {
		if !s.Up || s.Stats == nil {
			t.Fatalf("shard %d reported down: %+v", i, s)
		}
		if s.Stats.ShardIdx != int64(i) || s.Stats.ShardCnt != shards {
			t.Fatalf("shard %d announces identity %d/%d", i, s.Stats.ShardIdx, s.Stats.ShardCnt)
		}
		if s.Stats.Served == 0 {
			t.Fatalf("shard %d served nothing", i)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 1 || st.ShardCnt != shards || st.SnapshotSource != "coordinator" {
		t.Fatalf("coordinator stats: %+v", st)
	}
}
