package dist

import (
	"sort"
	"sync"
	"time"

	"treebench/internal/histogram"
	"treebench/internal/wire"
)

// coordStats is the coordinator's own counters snapshot source: served and
// failed queries, chosen-plan provenance, and end-to-end latency populations
// (wall clock across the whole scatter-gather, plus the merged simulated
// time — which is deterministic per query mix, same as single-node).
type coordStats struct {
	mu          sync.Mutex
	served      int64
	queryErrors int64
	sessions    int64
	plansCost   int64
	plansHeur   int64
	lastOp      string
	wallUs      []int64
	simMs       []int64
}

func (m *coordStats) sessionOpened() {
	m.mu.Lock()
	m.sessions++
	m.mu.Unlock()
}

func (m *coordStats) sessionClosed() {
	m.mu.Lock()
	m.sessions--
	m.mu.Unlock()
}

func (m *coordStats) recordPlan(heuristic bool, operator string) {
	m.mu.Lock()
	if heuristic {
		m.plansHeur++
	} else {
		m.plansCost++
	}
	m.lastOp = operator
	m.mu.Unlock()
}

func (m *coordStats) record(wall, simulated time.Duration, queryErr bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.served++
	if queryErr {
		m.queryErrors++
		return
	}
	m.wallUs = append(m.wallUs, wall.Microseconds())
	m.simMs = append(m.simMs, simulated.Milliseconds())
}

// snapshot renders the coordinator's counters in wire.Stats form. Sessions
// reports the cluster width (the coordinator itself has no execution
// slots); SnapshotSource names the role.
func (m *coordStats) snapshot(shards int64) *wire.Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &wire.Stats{
		Served:         m.served,
		QueryErrors:    m.queryErrors,
		ActiveSessions: m.sessions,
		Sessions:       shards,
		PlansCost:      m.plansCost,
		PlansHeuristic: m.plansHeur,
		LastOperator:   m.lastOp,
		SnapshotSource: "coordinator",
		ShardCnt:       shards,
	}
	s.WallP50us, s.WallP95us, s.WallP99us, s.WallHist = summarize(m.wallUs)
	s.SimP50ms, s.SimP95ms, s.SimP99ms, s.SimHist = summarize(m.simMs)
	return s
}

// summarize computes p50/p95/p99 and an equi-depth histogram over one
// latency population (the same rendering treebenchd's stats use, so
// oqlload's output reads identically against either).
func summarize(pop []int64) (p50, p95, p99 int64, hist string) {
	if len(pop) == 0 {
		return 0, 0, 0, ""
	}
	keys := make([]int64, len(pop))
	copy(keys, pop)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	p50 = percentile(keys, 50)
	p95 = percentile(keys, 95)
	p99 = percentile(keys, 99)
	if h := histogram.Build(keys, 8); h != nil {
		hist = h.String()
	}
	return p50, p95, p99, hist
}

// percentile reads the nearest-rank percentile from sorted keys.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
