package engine

import (
	"fmt"
	"sort"
	"sync"

	"treebench/internal/storage"
)

// MVCC snapshot chain. A Snapshot used to be the end of the line: mutable
// forks were throwaways. Publish turns a mutable fork into the *next*
// version — a new immutable Snapshot over a storage.DeltaBase that layers
// the fork's copy-on-write overlay and appended pages over the version it
// forked from. Readers pin the version they forked and are never blocked:
// a commit builds a new head beside them, sharing every page the commit
// did not touch.

// Publish seals a mutable forked session into a new immutable Snapshot,
// the commit-side sibling of Freeze: the session's private COW overlay
// and appended pages are promoted into a shared DeltaBase (after which
// the session itself is read-only), and the session's catalog — which
// ForkMutable deep-copied precisely so schema evolution could mutate it
// — becomes the new version's catalog. The returned Delta is what the
// commit writes to the WAL.
//
// Publish does not link the snapshot into any chain or assign a version;
// Chain.Commit does both, in commit order.
func (db *Session) Publish() (*Snapshot, *storage.Delta, error) {
	if db.readOnly {
		return nil, nil, ErrReadOnlySession
	}
	if db.Store.Disk.ConcurrentReads() {
		return nil, nil, fmt.Errorf("engine: publish of an exclusive session; use Freeze")
	}
	base, delta, err := db.Store.Disk.Promote()
	if err != nil {
		return nil, nil, err
	}
	db.readOnly = true
	return &Snapshot{
		base:    base,
		store:   db.Store,
		machine: db.Machine,
		model:   db.Meter.Model,
		mode:    db.Txns.Mode(),
		classes: db.Classes,
		extents: db.extents,
		indexes: db.indexes,
		nextIdx: db.nextIdx,
		roots:   db.roots,
		rels:    db.relationships,
	}, delta, nil
}

// Version returns the snapshot's position in its chain (0 for a root or
// any snapshot never committed through a Chain).
func (sn *Snapshot) Version() uint64 { return sn.version }

// ParentVersion returns the version this snapshot was committed over
// (equal to Version for a root).
func (sn *Snapshot) ParentVersion() uint64 {
	if sn.parent == nil {
		return sn.version
	}
	return sn.parent.version
}

// DeltaPages returns the number of pages the snapshot's commit carried
// (0 for a root or a compacted snapshot).
func (sn *Snapshot) DeltaPages() int { return sn.deltaPages }

// WalOff returns the WAL offset of the snapshot's commit record (0 for a
// root or a compacted snapshot).
func (sn *Snapshot) WalOff() int64 { return sn.walOff }

// SetLineage stamps chain metadata on a snapshot restored from disk or
// WAL replay, before it is shared.
func (sn *Snapshot) SetLineage(version uint64, deltaPages int, walOff int64) {
	sn.version, sn.deltaPages, sn.walOff = version, deltaPages, walOff
}

// ChainVersion is one chain entry as reported to stats and tooling.
type ChainVersion struct {
	Version    uint64
	Parent     uint64
	DeltaPages int   // pages the commit shipped (0 for root/compacted)
	WalOff     int64 // offset of the commit record in the WAL
	Pages      int   // total pages visible at this version
	Pins       int   // sessions currently holding the version
	Head       bool
}

// Chain is the live version chain of one database: the head every new
// fork sees, the still-referenced history behind it, and the pin counts
// that keep history alive. Commits are serialized by the chain — version
// numbers are assigned under its lock in commit order, which together
// with the deterministic wave protocol upstream makes the head state a
// pure function of how many commits happened, never of who raced whom.
type Chain struct {
	mu       sync.Mutex
	head     *Snapshot
	versions map[uint64]*Snapshot
	pins     map[uint64]int
}

// NewChain roots a chain at an existing snapshot (freshly frozen, loaded
// from disk, or rebuilt by WAL replay — its stamped version carries
// over).
func NewChain(root *Snapshot) *Chain {
	return &Chain{
		head:     root,
		versions: map[uint64]*Snapshot{root.version: root},
		pins:     map[uint64]int{},
	}
}

// Head returns the current head version.
func (c *Chain) Head() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head
}

// Pin returns the current head and marks it referenced until Unpin. A
// pinned version survives GC even after later commits replace the head:
// this is the reader side of MVCC — fork what you pinned and nothing a
// writer does can reach your pages.
func (c *Chain) Pin() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pins[c.head.version]++
	return c.head
}

// Unpin releases a pin taken with Pin.
func (c *Chain) Unpin(sn *Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.pins[sn.version]; n > 1 {
		c.pins[sn.version] = n - 1
	} else {
		delete(c.pins, sn.version)
	}
}

// Commit publishes a mutable session — which must have been forked from
// the chain's current head — as the next version and installs it as the
// new head. walOff is the commit record's WAL offset, recorded for
// lineage. The caller serializes fork-apply-commit sequences (the chain
// store's apply lock); Commit itself rejects a stale parent rather than
// silently losing the head it would overwrite.
func (c *Chain) Commit(db *Session, parent *Snapshot, walOff int64) (*Snapshot, *storage.Delta, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if parent != c.head {
		return nil, nil, fmt.Errorf("engine: commit against version %d but head is %d", parent.version, c.head.version)
	}
	sn, delta, err := db.Publish()
	if err != nil {
		return nil, nil, err
	}
	sn.version = parent.version + 1
	sn.parent = parent
	sn.deltaPages = delta.Pages()
	sn.walOff = walOff
	c.versions[sn.version] = sn
	c.head = sn
	return sn, delta, nil
}

// Append links an already-built snapshot (WAL replay) as the next
// version. The snapshot's lineage must already be stamped.
func (c *Chain) Append(sn *Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sn.version != c.head.version+1 {
		return fmt.Errorf("engine: append version %d onto head %d", sn.version, c.head.version)
	}
	sn.parent = c.head
	c.versions[sn.version] = sn
	c.head = sn
	return nil
}

// ReplaceHead swaps in a compacted equivalent of the current head: same
// version number, same logical content, flat page image instead of a
// delta chain. Readers pinned on old versions keep them; everyone
// forking after this point gets the compacted image, and once the pins
// drain, GC lets the whole delta chain go.
func (c *Chain) ReplaceHead(sn *Snapshot) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sn.version != c.head.version {
		return fmt.Errorf("engine: compacted snapshot is version %d but head is %d", sn.version, c.head.version)
	}
	// Readers pinned on the old head keep their own pointer to it; their
	// Unpins resolve by version number either way.
	c.versions[sn.version] = sn
	c.head = sn
	return nil
}

// GC drops every version that is neither the head nor pinned nor the
// ancestor of a pinned version, returning how many were dropped. Page
// buffers shared through delta parents stay alive as long as any child
// needs them — GC trims the catalog map so Go's collector can reclaim
// versions no session can reach anymore.
func (c *Chain) GC() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := map[uint64]bool{c.head.version: true}
	for v := range c.pins {
		keep[v] = true
	}
	dropped := 0
	for v := range c.versions {
		if !keep[v] {
			delete(c.versions, v)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of live (un-GC'd) versions.
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.versions)
}

// Versions reports the live chain in ascending version order.
func (c *Chain) Versions() []ChainVersion {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChainVersion, 0, len(c.versions))
	for v, sn := range c.versions {
		out = append(out, ChainVersion{
			Version:    v,
			Parent:     sn.ParentVersion(),
			DeltaPages: sn.deltaPages,
			WalOff:     sn.walOff,
			Pages:      sn.Pages(),
			Pins:       c.pins[v],
			Head:       sn == c.head,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}
