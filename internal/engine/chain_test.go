package engine

import (
	"fmt"
	"sync"
	"testing"

	"treebench/internal/object"
	"treebench/internal/storage"
)

// scanScores reads every item's score through a fresh fork of sn and
// returns them in rid order — the reader-visible table content.
func scanScores(t *testing.T, sn *Snapshot, rids []storage.Rid) []int64 {
	t.Helper()
	db := sn.Fork()
	out := make([]int64, len(rids))
	for i, rid := range rids {
		h, err := db.Handles.Get(rid)
		if err != nil {
			t.Fatalf("get %v: %v", rid, err)
		}
		v, err := db.Handles.AttrByName(h, "score")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v.Int
	}
	return out
}

// commitBump forks the chain head mutably, adds delta to every item's
// score, and commits it as the next version.
func commitBump(t *testing.T, c *Chain, rids []storage.Rid, delta int64) *Snapshot {
	t.Helper()
	parent := c.Head()
	db := parent.ForkMutable()
	e, err := db.Extent("Items")
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range rids {
		h, err := db.Handles.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		v, err := db.Handles.AttrByName(h, "score")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.UpdateAttr(nil, e, rid, "score", object.IntValue(v.Int+delta)); err != nil {
			t.Fatal(err)
		}
	}
	sn, d, err := c.Commit(db, parent, 0)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if d.Pages() == 0 {
		t.Fatal("commit carried no pages")
	}
	return sn
}

func TestChainCommit(t *testing.T) {
	root, rids := buildSnapshot(t, 40)
	c := NewChain(root)
	before := scanScores(t, root, rids)

	v1 := commitBump(t, c, rids, 100)
	if v1.Version() != 1 || v1.ParentVersion() != 0 {
		t.Fatalf("v1 lineage = %d over %d", v1.Version(), v1.ParentVersion())
	}
	if c.Head() != v1 {
		t.Fatal("head not advanced")
	}
	after := scanScores(t, c.Head(), rids)
	for i := range before {
		if after[i] != before[i]+100 {
			t.Fatalf("item %d score %d, want %d", i, after[i], before[i]+100)
		}
	}
	// The root version is untouched.
	again := scanScores(t, root, rids)
	for i := range before {
		if again[i] != before[i] {
			t.Fatalf("root version drifted at item %d: %d != %d", i, again[i], before[i])
		}
	}

	// A commit against a stale parent is rejected, not silently merged.
	stale := root.ForkMutable()
	e, _ := stale.Extent("Items")
	if err := stale.UpdateAttr(nil, e, rids[0], "score", object.IntValue(-1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Commit(stale, root, 0); err == nil {
		t.Fatal("stale-parent commit accepted")
	}

	// Publishing a read-only fork is rejected.
	ro := c.Head().Fork()
	if _, _, err := ro.Publish(); err == nil {
		t.Fatal("published a read-only fork")
	}
}

// TestChainMVCCIsolation is the acceptance gate for reader isolation: a
// reader pins a version and scans it repeatedly — byte-identical values
// and byte-identical simulated meters every pass — while writers commit
// new versions and GC runs concurrently. Run under -race.
func TestChainMVCCIsolation(t *testing.T) {
	root, rids := buildSnapshot(t, 60)
	c := NewChain(root)
	commitBump(t, c, rids, 100) // v1: what readers will pin

	pinned := c.Pin()
	if pinned.Version() != 1 {
		t.Fatalf("pinned version %d", pinned.Version())
	}
	wantScores := scanScores(t, pinned, rids)
	ref := pinned.Fork()
	for _, rid := range rids {
		h, err := ref.Handles.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Handles.AttrByName(h, "score"); err != nil {
			t.Fatal(err)
		}
	}
	wantCounters := ref.Meter.N
	wantElapsed := ref.Meter.Elapsed()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: repeatedly cold-scan fresh forks of the pinned version.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; ; pass++ {
				select {
				case <-stop:
					return
				default:
				}
				db := pinned.Fork()
				for i, rid := range rids {
					h, err := db.Handles.Get(rid)
					if err != nil {
						t.Errorf("pinned read: %v", err)
						return
					}
					v, err := db.Handles.AttrByName(h, "score")
					if err != nil || v.Int != wantScores[i] {
						t.Errorf("pass %d item %d = %d (err %v), want %d", pass, i, v.Int, err, wantScores[i])
						return
					}
				}
				if db.Meter.N != wantCounters || db.Meter.Elapsed() != wantElapsed {
					t.Errorf("pass %d meters diverged under concurrent commits:\n%+v\nvs\n%+v", pass, db.Meter.N, wantCounters)
					return
				}
			}
		}()
	}
	// Writer: a stream of commits advancing the head past the pin.
	for i := 0; i < 8; i++ {
		commitBump(t, c, rids, 1)
		c.GC()
	}
	close(stop)
	wg.Wait()

	// The pin kept v1 alive through GC; unpinning lets it go.
	if _, ok := c.versions[1]; !ok {
		t.Fatal("pinned version GC'd")
	}
	c.Unpin(pinned)
	c.GC()
	if _, ok := c.versions[1]; ok {
		t.Fatal("unpinned version survived GC")
	}
	// A post-commit fork sees the accumulated updates.
	head := c.Head()
	if head.Version() != 9 {
		t.Fatalf("head version %d, want 9", head.Version())
	}
	final := scanScores(t, head, rids)
	for i := range wantScores {
		if final[i] != wantScores[i]+8 {
			t.Fatalf("head item %d = %d, want %d", i, final[i], wantScores[i]+8)
		}
	}
}

func TestChainReplaceHead(t *testing.T) {
	root, rids := buildSnapshot(t, 20)
	c := NewChain(root)
	commitBump(t, c, rids, 7)
	head := c.Head()
	want := scanScores(t, head, rids)

	// Stand-in for compaction: rebuild the head as a flat snapshot via
	// its canonical state over a copied page image.
	base := head.Base()
	pages := make([][]byte, base.NumPages())
	for i := range pages {
		p, err := base.Page(storage.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = append([]byte(nil), p...)
	}
	flat, err := RestoreSnapshot(storage.NewBase(pages, base.CapacityBytes()), head.State())
	if err != nil {
		t.Fatal(err)
	}
	flat.SetLineage(head.Version(), 0, 0)
	if err := c.ReplaceHead(flat); err != nil {
		t.Fatal(err)
	}
	if c.Head() != flat || c.Head().Base().Delta() != nil {
		t.Fatal("compacted head not installed")
	}
	got := scanScores(t, c.Head(), rids)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compacted head item %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Version numbering continues over the compacted image.
	commitBump(t, c, rids, 1)
	if c.Head().Version() != 2 {
		t.Fatalf("post-compaction commit version %d, want 2", c.Head().Version())
	}

	// A mismatched version is rejected.
	if err := c.ReplaceHead(root); err == nil {
		t.Fatal("ReplaceHead accepted a non-head version")
	}
}

func TestChainVersionsReport(t *testing.T) {
	root, rids := buildSnapshot(t, 10)
	c := NewChain(root)
	for i := 0; i < 3; i++ {
		commitBump(t, c, rids, 1)
	}
	vs := c.Versions()
	if len(vs) != 4 {
		t.Fatalf("%d versions, want 4", len(vs))
	}
	for i, v := range vs {
		if v.Version != uint64(i) {
			t.Fatalf("version order: %+v", vs)
		}
		if i > 0 && (v.Parent != uint64(i-1) || v.DeltaPages == 0) {
			t.Fatalf("lineage of v%d: %+v", i, v)
		}
		if v.Head != (i == 3) {
			t.Fatalf("head flag of v%d: %+v", i, v)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := fmt.Sprintf("v%d", vs[3].Version); got != "v3" {
		t.Fatal(got)
	}
}
