// Package engine assembles the storage, cache, object, collection, index
// and transaction layers into a Database: the session-level view the query
// algorithms, the Derby generator and the benchmark harness all share.
package engine

import (
	"errors"
	"fmt"
	"sort"

	"treebench/internal/backend"
	"treebench/internal/cache"
	"treebench/internal/histogram"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// ErrUnknown is returned for lookups of unknown extents or indexes.
var ErrUnknown = errors.New("engine: unknown")

// Extent is a named collection of all objects of one class, stored in one
// file (class clustering) or sharing a file with other extents (random and
// composition organizations).
type Extent struct {
	Name  string
	Class *object.Class
	File  *storage.File

	// IndexedAtCreation makes newly inserted objects carry the 8-slot
	// index header (§3.2: objects born into an indexed collection).
	IndexedAtCreation bool

	// Count is the number of live objects.
	Count int

	indexes []*Index
}

// Indexes returns the indexes defined over the extent.
func (e *Extent) Indexes() []*Index { return e.indexes }

// Index is an index over one integer attribute of an extent. Backend is
// the pluggable structure behind it (in-memory B+-tree by default; see
// internal/backend) — every implementation delivers entries in the same
// (key, rid) order, so which one is plugged in changes costs, never
// results.
type Index struct {
	Backend index.Backend
	Extent  *Extent
	Attr    string
	attrIdx int

	// Clustered records whether the index key order matches the extent's
	// physical order (true for upin/mrn under class and composition
	// clustering; false for num, and for everything under random
	// organization). It is metadata for planners and reports; the actual
	// access pattern emerges from the stored Rids either way.
	Clustered bool

	// stats caches the equi-depth histogram built by Stats; updates
	// invalidate it.
	stats *histogram.Histogram
}

// statsBuckets is the histogram resolution ANALYZE-style statistics use.
const statsBuckets = 64

// Stats returns the index's equi-depth key histogram, building it on first
// use by scanning the leaves (paying index I/O like an ANALYZE would).
// Inserts and deletes through the engine invalidate it.
func (ix *Index) Stats(p storage.Pager) (*histogram.Histogram, error) {
	if ix.stats != nil {
		return ix.stats, nil
	}
	keys := make([]int64, 0, ix.Backend.Len())
	err := ix.Backend.Scan(p, -1<<62, 1<<62, func(e index.Entry) (bool, error) {
		keys = append(keys, e.Key)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	ix.stats = histogram.Build(keys, statsBuckets)
	return ix.stats, nil
}

// InvalidateStats drops the cached histogram (called on index updates).
func (ix *Index) InvalidateStats() { ix.stats = nil }

// Session is one execution context over a database: the page caches, the
// meter, the handle table and transaction state one client pays for, plus
// its private view of the catalog (extents, indexes, roots). A Session
// built by New owns its database exclusively (the paper's setup: a single
// client and its server on one machine); Freeze turns that database into
// an immutable Snapshot from which further Sessions fork in O(1).
type Session struct {
	Store   *storage.Store
	Meter   *sim.Meter
	Machine sim.Machine
	Server  *cache.Server
	Client  *cache.Client
	Classes *object.Registry
	Handles *object.Table
	Txns    *txn.Manager

	extents       map[string]*Extent
	indexes       map[uint32]*Index
	nextIdx       uint32
	roots         map[string]storage.Rid
	relationships []*Relationship

	// indexBackend is the backend kind CreateIndex builds ("" = the
	// default in-memory B+-tree). It is part of the database's identity:
	// Freeze records it and forks inherit it.
	indexBackend string

	// queryJobs is the intra-query worker count (0 = DefaultQueryJobs);
	// chunkForks are the persistent per-chunk execution contexts RunChunks
	// lazily creates — chunk i always runs on fork i, so warm-cache state
	// evolves deterministically. See parallel.go.
	queryJobs  int
	chunkForks []*Session

	// batch is the vectorized-execution batch size (0 = DefaultBatch,
	// 1 = the legacy scalar path kept as the differential-testing
	// oracle). Like queryJobs it shapes wall-clock only — simulated
	// accounting is independent of it — and it survives ColdRestart.
	batch int

	// shardIdx/shardCnt are the session's chunk-ownership mask for
	// distributed execution: when shardCnt > 1, RunChunks executes and
	// charges only the chunks ShardChunks assigns to shardIdx, and
	// RunChunksAll executes every chunk but charges only the owned ones.
	// The default (0, 0) — like (0, 1) — owns everything: single-node
	// behavior is unchanged. Both survive ColdRestart (the mask is part of
	// the session's identity, not its cache state); see parallel.go.
	shardIdx, shardCnt int

	// readOnly marks a session that shares frozen pages it must never
	// mutate: the builder after Freeze, and every Snapshot.Fork. The guard
	// runs before any shared buffer is touched — the storage layer's
	// ErrReadOnly is only the backstop behind it.
	readOnly bool
}

// Database is the session's historical name, kept as an alias so existing
// callers (and the public facade) keep compiling.
type Database = Session

// ErrReadOnlySession is returned by mutating operations on a read-only
// session.
var ErrReadOnlySession = errors.New("engine: read-only session (forked from a snapshot); use Snapshot.ForkMutable for writes")

// ReadOnly reports whether the session rejects mutations.
func (db *Session) ReadOnly() bool { return db.readOnly }

// mutable fails with ErrReadOnlySession on a read-only session. Every
// mutating engine operation calls it first: pages are mutated in place
// before Write is ever called, so the check must run before any buffer is
// handed out.
func (db *Session) mutable() error {
	if db.readOnly {
		return ErrReadOnlySession
	}
	return nil
}

// New creates an empty database with the given hardware model and
// transaction mode.
func New(machine sim.Machine, model sim.CostModel, mode txn.Mode) *Session {
	meter := sim.NewMeter(model)
	store := storage.NewStore(0)
	srv, cli := cache.Hierarchy(store.Disk, meter, machine)
	classes := object.NewRegistry()
	return &Database{
		Store:   store,
		Meter:   meter,
		Machine: machine,
		Server:  srv,
		Client:  cli,
		Classes: classes,
		Handles: object.NewTable(meter, cli, classes),
		Txns:    txn.NewManager(meter, cli, mode),
		extents: make(map[string]*Extent),
		indexes: make(map[uint32]*Index),
		nextIdx: 1,
	}
}

// Pager returns the session's page source (the client cache).
func (db *Session) Pager() storage.Pager { return db.Client }

// ColdRestart empties both caches and the handle-sharing table, simulating
// the paper's server shutdown between measured queries, and resets the
// meter so the next query is measured from zero on a cold system.
func (db *Session) ColdRestart() {
	db.Client.Shutdown()
	db.Handles = object.NewTable(db.Meter, db.Client, db.Classes)
	db.Meter.Reset()
	// Chunk forks hold warm caches of their own; a cold system has none.
	db.chunkForks = nil
}

// CreateExtent registers a class and creates its extent backed by the named
// file. Several extents may share one file (random/composition layouts):
// pass the name of an existing file to join it.
func (db *Session) CreateExtent(name string, class *object.Class, fileName string) (*Extent, error) {
	if err := db.mutable(); err != nil {
		return nil, err
	}
	if _, ok := db.extents[name]; ok {
		return nil, fmt.Errorf("%w: extent %q already exists", ErrUnknown, name)
	}
	if db.Classes.ByName(class.Name) == nil {
		if err := db.Classes.Register(class); err != nil {
			return nil, err
		}
	}
	f, err := db.Store.File(fileName)
	if errors.Is(err, storage.ErrBadFile) {
		f, err = db.Store.CreateFile(fileName)
	}
	if err != nil {
		return nil, err
	}
	e := &Extent{Name: name, Class: class, File: f}
	db.extents[name] = e
	return e, nil
}

// Extent returns the named extent.
func (db *Session) Extent(name string) (*Extent, error) {
	e, ok := db.extents[name]
	if !ok {
		return nil, fmt.Errorf("%w extent %q", ErrUnknown, name)
	}
	return e, nil
}

// Extents returns all extent names, sorted.
func (db *Session) Extents() []string {
	out := make([]string, 0, len(db.extents))
	for n := range db.extents {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Insert appends a new object to the extent, maintaining its indexes. The
// header gets index slots if the extent is (or was made) indexed.
func (db *Session) Insert(tx *txn.Txn, e *Extent, values []object.Value) (storage.Rid, error) {
	return db.InsertAs(tx, e, e.Class, values)
}

// InsertAs appends an object of cls — e.Class or any subclass of it — to
// the extent (extents are polymorphic, per the ODMG model §4.4 implies
// with "exact type (because of inheritance)").
func (db *Session) InsertAs(tx *txn.Txn, e *Extent, cls *object.Class, values []object.Value) (storage.Rid, error) {
	if err := db.mutable(); err != nil {
		return storage.Rid{}, err
	}
	if !cls.IsSubclassOf(e.Class) {
		return storage.Rid{}, fmt.Errorf("engine: class %s is not a kind of %s", cls.Name, e.Class.Name)
	}
	if db.Classes.ByName(cls.Name) == nil {
		if err := db.Classes.Register(cls); err != nil {
			return storage.Rid{}, err
		}
	}
	slots := 0
	if e.IndexedAtCreation || len(e.indexes) > 0 {
		slots = object.DefaultIndexSlots
	}
	rec, err := object.Encode(cls, values, slots)
	if err != nil {
		return storage.Rid{}, err
	}
	// Pre-mark index membership in the header.
	for _, ix := range e.indexes {
		rec, _, err = object.AddIndexRef(rec, ix.Backend.ID())
		if err != nil {
			return storage.Rid{}, err
		}
	}
	rid, err := e.File.Append(db.Client, rec)
	if err != nil {
		return storage.Rid{}, err
	}
	if tx != nil {
		if err := tx.NoteCreate(len(rec)); err != nil {
			return storage.Rid{}, err
		}
	}
	e.Count++
	// Maintain indexes.
	for _, ix := range e.indexes {
		v := values[ix.attrIdx]
		if err := ix.Backend.Insert(db.Client, index.Entry{Key: keyOf(v), Rid: rid}); err != nil {
			return storage.Rid{}, err
		}
		ix.InvalidateStats()
	}
	return rid, nil
}

// keyOf maps an attribute value to its index key. Integer attributes key
// on their value; reference attributes key on the referenced object's
// physical identifier, which is how O2 indexes a collection "by their
// primary care provider attribute" (§4.4).
func keyOf(v object.Value) int64 {
	switch v.Kind {
	case object.KindRef, object.KindSet:
		return int64(v.Ref.Page)<<16 | int64(v.Ref.Slot)
	default:
		return v.Int // KindInt and KindChar carry Int
	}
}

// RefKey returns the index key a reference value maps to, for looking up
// ref-indexed collections.
func RefKey(r storage.Rid) int64 { return int64(r.Page)<<16 | int64(r.Slot) }

// CreateIndex builds an index on an integer attribute of e.
//
// If the extent is empty this is the cheap "first index before load" path:
// the tree is created empty, e is marked indexed, and subsequent inserts
// are born with header slots and maintain the tree incrementally.
//
// If the extent is populated, this is §3.2's expensive path: every object
// must record its index membership, and objects born without header slots
// grow — forcing the system "to reallocate all objects on disk", which both
// takes time and destroys the physical organization. The relocation count
// is returned for the loading experiments.
func (db *Session) CreateIndex(e *Extent, attr string, clustered bool) (*Index, int, error) {
	if err := db.mutable(); err != nil {
		return nil, 0, err
	}
	ai := e.Class.AttrIndex(attr)
	if ai < 0 {
		return nil, 0, fmt.Errorf("%w attribute %s.%s", ErrUnknown, e.Class.Name, attr)
	}
	switch e.Class.Attrs[ai].Kind {
	case object.KindInt, object.KindChar, object.KindRef:
	default:
		return nil, 0, fmt.Errorf("engine: cannot index %s attribute %s.%s", e.Class.Attrs[ai].Kind, e.Class.Name, attr)
	}
	for _, ix := range e.indexes {
		if ix.Attr == attr {
			return nil, 0, fmt.Errorf("engine: %s.%s already indexed", e.Name, attr)
		}
	}
	id := db.nextIdx
	db.nextIdx++

	relocations := 0
	var entries []index.Entry
	if e.Count > 0 {
		type pending struct {
			rid storage.Rid
			rec []byte
		}
		var grew []pending
		err := e.File.Scan(db.Client, func(rid storage.Rid, rec []byte) (bool, error) {
			if !db.Classes.Belongs(object.ClassID(rec), e.Class) {
				return true, nil // shared file: skip other classes' objects
			}
			v, err := object.DecodeAttr(e.Class, rec, ai)
			if err != nil {
				return false, err
			}
			entries = append(entries, index.Entry{Key: keyOf(v), Rid: rid})
			newRec, grown, err := object.AddIndexRef(rec, id)
			if err != nil {
				return false, err
			}
			if grown {
				// Deferred: rewriting during the scan would relocate
				// records into pages the scan has not reached yet and
				// visit them twice.
				cp := make([]byte, len(newRec))
				copy(cp, newRec)
				grew = append(grew, pending{rid, cp})
			} else if err := db.Client.Write(rid.Page); err != nil {
				return false, err
			}
			return true, nil
		})
		if err != nil {
			return nil, 0, err
		}
		for _, g := range grew {
			relocated, err := e.File.Update(db.Client, g.rid, g.rec)
			if err != nil {
				return nil, 0, err
			}
			if relocated {
				relocations++
			}
		}
	}
	be, err := backend.Build(db.indexBackend, db.Client, id, fmt.Sprintf("%s.%s", e.Name, attr), entries)
	if err != nil {
		return nil, 0, err
	}
	ix := &Index{Backend: be, Extent: e, Attr: attr, attrIdx: ai, Clustered: clustered}
	e.indexes = append(e.indexes, ix)
	e.IndexedAtCreation = true
	db.indexes[id] = ix
	return ix, relocations, nil
}

// SetIndexBackend selects the backend kind CreateIndex builds from here
// on ("" or "btree" is the in-memory oracle). It fails before any index
// exists in a different kind: mixing kinds in one database would make
// per-backend accounting ambiguous.
func (db *Session) SetIndexBackend(kind string) error {
	if err := backend.CheckKind(kind); err != nil {
		return err
	}
	db.indexBackend = backend.Normalize(kind)
	return nil
}

// IndexBackend reports the session's backend kind, falling back to the
// kind of an existing index (restored snapshots) and then the default.
func (db *Session) IndexBackend() string {
	if db.indexBackend != "" {
		return db.indexBackend
	}
	for _, ix := range db.indexes {
		return ix.Backend.Kind()
	}
	return backend.DefaultKind
}

// BackendCounters sums the per-backend counters over every index the
// session drives. Addition is commutative, so the map order is
// irrelevant; server metrics record deltas of this around each query.
func (db *Session) BackendCounters() index.BackendCounters {
	var c index.BackendCounters
	for _, ix := range db.indexes {
		c.Add(ix.Backend.Counters())
	}
	return c
}

// IndexOn returns the index over extent.attr, or nil.
func (db *Session) IndexOn(extent, attr string) *Index {
	e, ok := db.extents[extent]
	if !ok {
		return nil
	}
	for _, ix := range e.indexes {
		if ix.Attr == attr {
			return ix
		}
	}
	return nil
}

// IndexByID resolves an index id from an object header.
func (db *Session) IndexByID(id uint32) *Index { return db.indexes[id] }

// UpdateAttr overwrites one attribute of the object at rid, maintaining any
// index on that attribute. This is the §4.4 scenario ("one doctor retires
// and we want to assign nil to all his/her patients"): the object's header
// tells the system which indexes to fix without scanning them all.
func (db *Session) UpdateAttr(tx *txn.Txn, e *Extent, rid storage.Rid, attr string, v object.Value) error {
	if err := db.mutable(); err != nil {
		return err
	}
	ai := e.Class.AttrIndex(attr)
	if ai < 0 {
		return fmt.Errorf("%w attribute %s.%s", ErrUnknown, e.Class.Name, attr)
	}
	rec, err := storage.Get(db.Client, rid)
	if err != nil {
		return err
	}
	old, err := object.DecodeAttr(e.Class, rec, ai)
	if err != nil {
		return err
	}
	// The header's index list tells us which indexes cover this object;
	// fix the ones keyed on attr.
	for _, id := range object.IndexRefs(rec) {
		ix := db.indexes[id]
		if ix == nil || ix.Attr != attr {
			continue
		}
		if _, err := ix.Backend.Delete(db.Client, index.Entry{Key: keyOf(old), Rid: rid}); err != nil {
			return err
		}
		if err := ix.Backend.Insert(db.Client, index.Entry{Key: keyOf(v), Rid: rid}); err != nil {
			return err
		}
		ix.InvalidateStats()
	}
	if err := object.EncodeAttrInPlace(e.Class, rec, ai, v); err != nil {
		return err
	}
	if tx != nil {
		if err := tx.NoteUpdate(len(rec)); err != nil {
			return err
		}
	}
	return db.Client.Write(rid.Page)
}
