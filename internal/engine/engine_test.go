package engine

import (
	"testing"

	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

func itemClass() *object.Class {
	return object.NewClass("Item", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "score", Kind: object.KindInt},
		{Name: "label", Kind: object.KindString, StrLen: 16},
	})
}

func newDB(t *testing.T) *Database {
	t.Helper()
	return New(sim.DefaultMachine(), sim.DefaultCostModel(), txn.NoTransaction)
}

func itemValues(id, score int64, label string) []object.Value {
	return []object.Value{object.IntValue(id), object.IntValue(score), object.StringValue(label)}
}

func TestExtentLifecycle(t *testing.T) {
	db := newDB(t)
	e, err := db.CreateExtent("Items", itemClass(), "items")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateExtent("Items", itemClass(), "items"); err == nil {
		t.Fatal("duplicate extent accepted")
	}
	got, err := db.Extent("Items")
	if err != nil || got != e {
		t.Fatalf("Extent lookup: %v", err)
	}
	if _, err := db.Extent("Nope"); err == nil {
		t.Fatal("unknown extent found")
	}
	if names := db.Extents(); len(names) != 1 || names[0] != "Items" {
		t.Fatalf("Extents = %v", names)
	}
}

func TestSharedFileExtents(t *testing.T) {
	db := newDB(t)
	a, err := db.CreateExtent("A", itemClass(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	other := object.NewClass("Other", []object.Attr{{Name: "x", Kind: object.KindInt}})
	b, err := db.CreateExtent("B", other, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if a.File != b.File {
		t.Fatal("extents did not share the file")
	}
}

func TestInsertAndIndexMaintenance(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	// First index created before load: the cheap path.
	ix, reloc, err := db.CreateIndex(e, "score", false)
	if err != nil || reloc != 0 {
		t.Fatalf("empty-extent index: reloc=%d err=%v", reloc, err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := db.Insert(nil, e, itemValues(int64(i), int64(i%100), "x")); err != nil {
			t.Fatal(err)
		}
	}
	if e.Count != 1000 {
		t.Fatalf("Count = %d", e.Count)
	}
	rids, err := ix.Backend.Lookup(db.Client, 42)
	if err != nil || len(rids) != 10 {
		t.Fatalf("Lookup(42) = %d rids (%v), want 10", len(rids), err)
	}
	if db.IndexOn("Items", "score") != ix || db.IndexOn("Items", "nope") != nil {
		t.Fatal("IndexOn broken")
	}
	if err := ix.Backend.Validate(db.Client); err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexAfterLoadRelocates(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	// Load 2000 objects WITHOUT any index: born with no header slots.
	for i := 0; i < 2000; i++ {
		if _, err := db.Insert(nil, e, itemValues(int64(i), int64(i), "y")); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := e.File.NumPages()
	ix, reloc, err := db.CreateIndex(e, "score", false)
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: growing every header forces a large fraction of the objects
	// to relocate (the page reserve absorbs the first few growths).
	if reloc < 500 {
		t.Fatalf("only %d relocations out of 2000 objects", reloc)
	}
	if e.File.NumPages() <= pagesBefore {
		t.Fatal("relocations did not extend the file")
	}
	// The index is still correct.
	if ix.Backend.Len() != 2000 {
		t.Fatalf("tree has %d entries", ix.Backend.Len())
	}
	rids, _ := ix.Backend.Lookup(db.Client, 1234)
	if len(rids) != 1 {
		t.Fatalf("Lookup = %v", rids)
	}
	rec, err := storage.Get(db.Client, rids[0])
	if err != nil {
		t.Fatal(err)
	}
	v, _ := object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("score"))
	if v.Int != 1234 {
		t.Fatalf("indexed object score = %d", v.Int)
	}
	// Membership is recorded in the (relocated) object's header.
	refs := object.IndexRefs(rec)
	if len(refs) != 1 || refs[0] != ix.Backend.ID() {
		t.Fatalf("IndexRefs = %v", refs)
	}
}

func TestBornIndexedAvoidsRelocation(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	e.IndexedAtCreation = true // objects get slots even before the index exists
	for i := 0; i < 2000; i++ {
		db.Insert(nil, e, itemValues(int64(i), int64(i), "z"))
	}
	_, reloc, err := db.CreateIndex(e, "score", false)
	if err != nil {
		t.Fatal(err)
	}
	if reloc != 0 {
		t.Fatalf("%d relocations despite pre-allocated headers", reloc)
	}
}

func TestSecondIndexIsCheap(t *testing.T) {
	// "It is more efficient to create an index once the collection is
	// populated ... not for the first index": the second index finds
	// header slots already allocated.
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	for i := 0; i < 2000; i++ {
		db.Insert(nil, e, itemValues(int64(i), int64(i), "w"))
	}
	_, reloc1, _ := db.CreateIndex(e, "score", false)
	if reloc1 < 500 {
		t.Fatalf("first index relocated only %d", reloc1)
	}
	_, reloc2, err := db.CreateIndex(e, "id", false)
	if err != nil {
		t.Fatal(err)
	}
	if reloc2 != 0 {
		t.Fatalf("second index relocated %d objects", reloc2)
	}
}

func TestDuplicateIndexRejected(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	if _, _, err := db.CreateIndex(e, "score", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.CreateIndex(e, "score", false); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, _, err := db.CreateIndex(e, "label", false); err == nil {
		t.Fatal("string index accepted")
	}
	if _, _, err := db.CreateIndex(e, "missing", false); err == nil {
		t.Fatal("index on missing attribute accepted")
	}
}

func TestUpdateAttrMaintainsIndexViaHeader(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	db.CreateIndex(e, "score", false)
	rid, err := db.Insert(nil, e, itemValues(1, 50, "q"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateAttr(nil, e, rid, "score", object.IntValue(99)); err != nil {
		t.Fatal(err)
	}
	ix := db.IndexOn("Items", "score")
	if rids, _ := ix.Backend.Lookup(db.Client, 50); len(rids) != 0 {
		t.Fatal("old key still indexed")
	}
	if rids, _ := ix.Backend.Lookup(db.Client, 99); len(rids) != 1 || rids[0] != rid {
		t.Fatal("new key not indexed")
	}
	// Non-indexed attribute updates don't touch the tree.
	if err := db.UpdateAttr(nil, e, rid, "id", object.IntValue(7)); err != nil {
		t.Fatal(err)
	}
}

func TestColdRestartClearsState(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	rid, _ := db.Insert(nil, e, itemValues(1, 2, "r"))
	h, err := db.Handles.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	db.ColdRestart()
	if db.Client.Resident() != 0 || db.Server.Resident() != 0 {
		t.Fatal("caches warm after cold restart")
	}
	if db.Handles.Live() != 0 {
		t.Fatal("handles survived restart")
	}
	if db.Meter.Elapsed() != 0 {
		t.Fatal("meter not reset")
	}
	// Data survives.
	h2, err := db.Handles.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := db.Handles.AttrByName(h2, "label")
	if v.Str != "r" {
		t.Fatalf("label = %q", v.Str)
	}
	if db.Meter.N.DiskReads == 0 {
		t.Fatal("cold read did not hit the disk")
	}
}

func TestInsertWithTxnBudget(t *testing.T) {
	db := New(sim.DefaultMachine(), sim.DefaultCostModel(), txn.Standard)
	db.Txns.SetCreateBudget(10)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	tx := db.Txns.Begin()
	var lastErr error
	for i := 0; i < 20; i++ {
		if _, err := db.Insert(tx, e, itemValues(int64(i), 0, "t")); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		t.Fatal("creation budget never enforced")
	}
}

func TestEngineAccessors(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	ix, _, err := db.CreateIndex(e, "score", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Indexes(); len(got) != 1 || got[0] != ix {
		t.Fatalf("Indexes: %v", got)
	}
	if db.IndexByID(ix.Backend.ID()) != ix || db.IndexByID(9999) != nil {
		t.Fatal("IndexByID broken")
	}
	if db.Pager() != storage.Pager(db.Client) {
		t.Fatal("Pager broken")
	}
	for i := 0; i < 100; i++ {
		db.Insert(nil, e, itemValues(int64(i), int64(i%10), "x"))
	}
	h, err := ix.Stats(db.Client)
	if err != nil || h == nil {
		t.Fatalf("Stats: %v", err)
	}
	if h.Total() != 100 || h.Min() != 0 || h.Max() != 9 {
		t.Fatalf("histogram summary: total=%d min=%d max=%d", h.Total(), h.Min(), h.Max())
	}
	// Cached until an update invalidates it.
	h2, _ := ix.Stats(db.Client)
	if h2 != h {
		t.Fatal("stats rebuilt without invalidation")
	}
	db.Insert(nil, e, itemValues(100, 99, "y"))
	h3, _ := ix.Stats(db.Client)
	if h3 == h || h3.Max() != 99 {
		t.Fatalf("stats stale after insert: max=%d", h3.Max())
	}
}
