package engine

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/object"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// Dynamic class evolution and object versioning: the §4.4 features whose
// bookkeeping O2 pays for in every Handle ("a pointer to some structure
// representing the version to which the object belongs", "some information
// about the schema update history of the object class"). Both are
// implemented so their costs — lazy upgrades, relocation storms, version
// snapshots — are measurable in the same simulated units as everything
// else.

// EvolveClass appends an attribute to the extent's class with a default
// for pre-existing objects. Nothing is rewritten: old records answer reads
// of the new attribute with the default until they are upgraded.
func (db *Session) EvolveClass(e *Extent, a object.Attr, def object.Value) error {
	if err := db.mutable(); err != nil {
		return err
	}
	return e.Class.AddAttr(a, def)
}

// UpgradeObject re-encodes the object at rid at its class's current epoch.
// The record grows, so this can relocate it — schema evolution has the
// same storm mechanics as §3.2's late indexing.
func (db *Session) UpgradeObject(tx *txn.Txn, e *Extent, rid storage.Rid) (upgraded, relocated bool, err error) {
	if err := db.mutable(); err != nil {
		return false, false, err
	}
	rec, err := storage.Get(db.Client, rid)
	if err != nil {
		return false, false, err
	}
	out, changed, err := object.UpgradeRecord(e.Class, rec)
	if err != nil {
		return false, false, err
	}
	if !changed {
		return false, false, nil
	}
	if tx != nil {
		if err := tx.NoteUpdate(len(out)); err != nil {
			return false, false, err
		}
	}
	relocated, err = e.File.Update(db.Client, rid, out)
	return true, relocated, err
}

// UpgradeExtent upgrades every object of the extent, returning how many
// records changed and how many the growth relocated.
func (db *Session) UpgradeExtent(tx *txn.Txn, e *Extent) (upgraded, relocated int, err error) {
	if err := db.mutable(); err != nil {
		return 0, 0, err
	}
	type pending struct{ rid storage.Rid }
	var stale []pending
	err = e.File.Scan(db.Client, func(rid storage.Rid, rec []byte) (bool, error) {
		if !db.Classes.Belongs(object.ClassID(rec), e.Class) {
			return true, nil
		}
		if object.RecordEpoch(rec) != e.Class.Epoch() {
			stale = append(stale, pending{rid})
		}
		return true, nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, p := range stale {
		up, rel, err := db.UpgradeObject(tx, e, p.rid)
		if err != nil {
			return upgraded, relocated, err
		}
		if up {
			upgraded++
		}
		if rel {
			relocated++
		}
	}
	return upgraded, relocated, nil
}

// Version storage: snapshots and chain entries live in separate files so a
// chain scan never confuses a coincidentally entry-sized snapshot record
// for an entry.
const (
	versionChainFile = "_verchain"
	versionSnapFile  = "_versnaps"
)

// versionEntryLen is a chain entry: object rid + version number + snapshot
// rid.
const versionEntryLen = storage.EncodedRidLen + 4 + storage.EncodedRidLen

// VersionInfo describes one saved version of an object.
type VersionInfo struct {
	Number   uint32
	Snapshot storage.Rid
}

func (db *Session) versionFile(name string) (*storage.File, error) {
	f, err := db.Store.File(name)
	if err == nil {
		return f, nil
	}
	return db.Store.CreateFile(name)
}

// CreateVersion snapshots the current state of the object at rid and
// returns the new version number (1 for the first snapshot). The live
// record keeps evolving in place; snapshots are immutable full records
// readable with the usual codec.
func (db *Session) CreateVersion(tx *txn.Txn, e *Extent, rid storage.Rid) (uint32, error) {
	if err := db.mutable(); err != nil {
		return 0, err
	}
	rec, err := storage.Get(db.Client, rid)
	if err != nil {
		return 0, err
	}
	snaps, err := db.versionFile(versionSnapFile)
	if err != nil {
		return 0, err
	}
	chain, err := db.versionFile(versionChainFile)
	if err != nil {
		return 0, err
	}
	snapshot := make([]byte, len(rec))
	copy(snapshot, rec)
	snapRid, err := snaps.Append(db.Client, snapshot)
	if err != nil {
		return 0, err
	}
	// Bump the live record's version counter (header bytes 4..8).
	n := binary.LittleEndian.Uint32(rec[4:8]) + 1
	binary.LittleEndian.PutUint32(rec[4:8], n)
	if err := db.Client.Write(rid.Page); err != nil {
		return 0, err
	}
	// Chain entry.
	entry := rid.Encode(nil)
	var num [4]byte
	binary.LittleEndian.PutUint32(num[:], n)
	entry = append(entry, num[:]...)
	entry = snapRid.Encode(entry)
	if _, err := chain.Append(db.Client, entry); err != nil {
		return 0, err
	}
	if tx != nil {
		if err := tx.NoteUpdate(len(entry) + len(snapshot)); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// Versions lists the saved versions of the object at rid, oldest first.
func (db *Session) Versions(rid storage.Rid) ([]VersionInfo, error) {
	f, err := db.Store.File(versionChainFile)
	if err != nil {
		return nil, nil // no versions ever created
	}
	var out []VersionInfo
	err = f.Scan(db.Client, func(_ storage.Rid, rec []byte) (bool, error) {
		owner, err := storage.DecodeRid(rec)
		if err != nil {
			return false, err
		}
		if owner != rid {
			return true, nil
		}
		snap, err := storage.DecodeRid(rec[storage.EncodedRidLen+4:])
		if err != nil {
			return false, err
		}
		out = append(out, VersionInfo{
			Number:   binary.LittleEndian.Uint32(rec[storage.EncodedRidLen : storage.EncodedRidLen+4]),
			Snapshot: snap,
		})
		return true, nil
	})
	return out, err
}

// ReadVersionAttr reads one attribute from a saved snapshot.
func (db *Session) ReadVersionAttr(e *Extent, v VersionInfo, attr string) (object.Value, error) {
	i := e.Class.AttrIndex(attr)
	if i < 0 {
		return object.Value{}, fmt.Errorf("%w attribute %s.%s", ErrUnknown, e.Class.Name, attr)
	}
	rec, err := storage.Get(db.Client, v.Snapshot)
	if err != nil {
		return object.Value{}, err
	}
	return object.DecodeAttr(e.Class, rec, i)
}
