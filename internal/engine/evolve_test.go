package engine

import (
	"errors"
	"testing"

	"treebench/internal/object"
	"treebench/internal/storage"
)

func TestEvolveClassLazyDefaults(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	var rids []storage.Rid
	for i := 0; i < 100; i++ {
		rid, err := db.Insert(nil, e, itemValues(int64(i), int64(i), "old"))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	// Evolve: add a rating with default 5.
	if err := db.EvolveClass(e, object.Attr{Name: "rating", Kind: object.KindInt}, object.IntValue(5)); err != nil {
		t.Fatal(err)
	}
	if e.Class.Epoch() != 1 {
		t.Fatalf("epoch = %d", e.Class.Epoch())
	}
	// Old records answer reads with the default, lazily.
	rec, _ := storage.Get(db.Client, rids[0])
	v, err := object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("rating"))
	if err != nil || v.Int != 5 {
		t.Fatalf("default read: %v (%v)", v, err)
	}
	// Old attributes still decode from old records.
	v, err = object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("score"))
	if err != nil || v.Int != 0 {
		t.Fatalf("old attr after evolution: %v (%v)", v, err)
	}
	// Writing the new attribute into a stale record is refused.
	err = object.EncodeAttrInPlace(e.Class, rec, e.Class.AttrIndex("rating"), object.IntValue(9))
	if !errors.Is(err, object.ErrStaleRecord) {
		t.Fatalf("stale write: %v", err)
	}

	// New inserts carry the new attribute physically.
	newRid, err := db.Insert(nil, e, append(itemValues(101, 101, "new"), object.IntValue(7)))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = storage.Get(db.Client, newRid)
	if object.RecordEpoch(rec) != 1 {
		t.Fatalf("new record epoch = %d", object.RecordEpoch(rec))
	}
	v, _ = object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("rating"))
	if v.Int != 7 {
		t.Fatalf("new record rating = %d", v.Int)
	}
}

func TestEvolveDuplicateAndBadDefault(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	if err := db.EvolveClass(e, object.Attr{Name: "score", Kind: object.KindInt}, object.IntValue(0)); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if err := db.EvolveClass(e, object.Attr{Name: "tag", Kind: object.KindString, StrLen: 8}, object.IntValue(0)); err == nil {
		t.Fatal("mismatched default accepted")
	}
}

func TestUpgradeObjectAndExtent(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	for i := 0; i < 500; i++ {
		db.Insert(nil, e, itemValues(int64(i), int64(i), "x"))
	}
	db.EvolveClass(e, object.Attr{Name: "rating", Kind: object.KindInt}, object.IntValue(5))
	db.EvolveClass(e, object.Attr{Name: "notes", Kind: object.KindString, StrLen: 32}, object.StringValue("n/a"))

	upgraded, relocated, err := db.UpgradeExtent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	if upgraded != 500 {
		t.Fatalf("upgraded %d, want 500", upgraded)
	}
	// Each record grew by 36 bytes; the page reserve (and the space each
	// departing record frees for its neighbours) absorbs some, but a
	// large fraction relocates — evolution's relocation storm.
	if relocated < 150 {
		t.Fatalf("only %d relocations", relocated)
	}
	// Everything is now writable at the new epoch and reads real values.
	count := 0
	err = e.File.Scan(db.Client, func(rid storage.Rid, rec []byte) (bool, error) {
		if object.ClassID(rec) != e.Class.ID {
			return true, nil
		}
		if object.RecordEpoch(rec) != e.Class.Epoch() {
			return false, errors.New("stale record survived UpgradeExtent")
		}
		v, err := object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("notes"))
		if err != nil || v.Str != "n/a" {
			return false, errors.New("upgraded default wrong")
		}
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("scan saw %d records", count)
	}
	// Idempotent.
	upgraded, _, err = db.UpgradeExtent(nil, e)
	if err != nil || upgraded != 0 {
		t.Fatalf("second upgrade: %d (%v)", upgraded, err)
	}
}

func TestUpgradePreservesIndexMembership(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	ix, _, err := db.CreateIndex(e, "score", false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Insert(nil, e, itemValues(int64(i), int64(i), "x"))
	}
	db.EvolveClass(e, object.Attr{Name: "rating", Kind: object.KindInt}, object.IntValue(1))
	if _, _, err := db.UpgradeExtent(nil, e); err != nil {
		t.Fatal(err)
	}
	// The index still resolves through the forwarding stubs, and the
	// upgraded records still carry their membership.
	rids, err := ix.Backend.Lookup(db.Client, 123)
	if err != nil || len(rids) != 1 {
		t.Fatalf("lookup after upgrade: %v %v", rids, err)
	}
	rec, err := storage.Get(db.Client, rids[0])
	if err != nil {
		t.Fatal(err)
	}
	refs := object.IndexRefs(rec)
	if len(refs) != 1 || refs[0] != ix.Backend.ID() {
		t.Fatalf("membership lost: %v", refs)
	}
	v, _ := object.DecodeAttr(e.Class, rec, e.Class.AttrIndex("score"))
	if v.Int != 123 {
		t.Fatalf("score = %d", v.Int)
	}
}

func TestVersioning(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	rid, _ := db.Insert(nil, e, itemValues(1, 10, "v1"))

	// No versions yet.
	vs, err := db.Versions(rid)
	if err != nil || len(vs) != 0 {
		t.Fatalf("fresh object versions: %v (%v)", vs, err)
	}

	// Snapshot, mutate, snapshot, mutate.
	n, err := db.CreateVersion(nil, e, rid)
	if err != nil || n != 1 {
		t.Fatalf("first version: %d (%v)", n, err)
	}
	if err := db.UpdateAttr(nil, e, rid, "label", object.StringValue("v2")); err != nil {
		t.Fatal(err)
	}
	n, err = db.CreateVersion(nil, e, rid)
	if err != nil || n != 2 {
		t.Fatalf("second version: %d (%v)", n, err)
	}
	if err := db.UpdateAttr(nil, e, rid, "label", object.StringValue("v3")); err != nil {
		t.Fatal(err)
	}

	vs, err = db.Versions(rid)
	if err != nil || len(vs) != 2 {
		t.Fatalf("versions: %v (%v)", vs, err)
	}
	for i, want := range []string{"v1", "v2"} {
		if vs[i].Number != uint32(i+1) {
			t.Fatalf("version %d numbered %d", i, vs[i].Number)
		}
		v, err := db.ReadVersionAttr(e, vs[i], "label")
		if err != nil || v.Str != want {
			t.Fatalf("version %d label = %v (%v), want %q", i+1, v, err, want)
		}
	}
	// The live object carries the latest state.
	h, _ := db.Handles.Get(rid)
	v, _ := db.Handles.AttrByName(h, "label")
	if v.Str != "v3" {
		t.Fatalf("live label = %q", v.Str)
	}
	db.Handles.Unref(h)

	// Versions of another object do not leak in.
	rid2, _ := db.Insert(nil, e, itemValues(2, 20, "other"))
	if _, err := db.CreateVersion(nil, e, rid2); err != nil {
		t.Fatal(err)
	}
	vs, _ = db.Versions(rid)
	if len(vs) != 2 {
		t.Fatalf("cross-object leak: %v", vs)
	}
	if _, err := db.ReadVersionAttr(e, vs[0], "nope"); err == nil {
		t.Fatal("bad attr accepted")
	}
}

func TestVersionSurvivesEvolution(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	rid, _ := db.Insert(nil, e, itemValues(1, 10, "before"))
	if _, err := db.CreateVersion(nil, e, rid); err != nil {
		t.Fatal(err)
	}
	db.EvolveClass(e, object.Attr{Name: "rating", Kind: object.KindInt}, object.IntValue(5))
	vs, _ := db.Versions(rid)
	// The snapshot predates the attribute: it reads the default.
	v, err := db.ReadVersionAttr(e, vs[0], "rating")
	if err != nil || v.Int != 5 {
		t.Fatalf("snapshot rating = %v (%v)", v, err)
	}
	v, err = db.ReadVersionAttr(e, vs[0], "label")
	if err != nil || v.Str != "before" {
		t.Fatalf("snapshot label = %v (%v)", v, err)
	}
}

func TestReadVersionAttrBadVersion(t *testing.T) {
	db := newDB(t)
	e, _ := db.CreateExtent("Items", itemClass(), "items")
	bad := VersionInfo{Number: 1, Snapshot: storage.Rid{Page: 999, Slot: 0}}
	if _, err := db.ReadVersionAttr(e, bad, "score"); err == nil {
		t.Fatal("dangling snapshot accepted")
	}
}
