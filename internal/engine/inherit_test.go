package engine

import (
	"testing"

	"treebench/internal/object"
	"treebench/internal/storage"
)

func TestSubclassLayoutAndRegistry(t *testing.T) {
	base := object.NewClass("Shape", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "area", Kind: object.KindInt},
	})
	circle, err := object.NewSubclass("Circle", base, []object.Attr{
		{Name: "radius", Kind: object.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !circle.IsSubclassOf(base) || base.IsSubclassOf(circle) {
		t.Fatal("subclass relation broken")
	}
	if circle.Parent() != base || len(base.Subclasses()) != 1 {
		t.Fatal("links broken")
	}
	// Redeclared attribute and evolved parent are rejected.
	if _, err := object.NewSubclass("Bad", base, []object.Attr{{Name: "area", Kind: object.KindInt}}); err == nil {
		t.Fatal("redeclaration accepted")
	}
	if err := base.AddAttr(object.Attr{Name: "color", Kind: object.KindInt}, object.IntValue(0)); err == nil {
		t.Fatal("evolving a class with subclasses accepted")
	}
	evolved := object.NewClass("Evolved", nil)
	if err := evolved.AddAttr(object.Attr{Name: "x", Kind: object.KindInt}, object.IntValue(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := object.NewSubclass("Sub", evolved, nil); err == nil {
		t.Fatal("deriving from an evolved class accepted")
	}
	if _, err := object.NewSubclass("Orphan", nil, nil); err == nil {
		t.Fatal("nil parent accepted")
	}
}

func TestPolymorphicExtent(t *testing.T) {
	db := newDB(t)
	base := object.NewClass("Shape", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "area", Kind: object.KindInt},
	})
	circle, _ := object.NewSubclass("Circle", base, []object.Attr{
		{Name: "radius", Kind: object.KindInt},
	})
	shapes, err := db.CreateExtent("Shapes", base, "shapes")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.CreateIndex(shapes, "area", false); err != nil {
		t.Fatal(err)
	}
	// Mixed population: plain shapes and circles through one extent.
	var circleRid storage.Rid
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			if _, err := db.Insert(nil, shapes, []object.Value{
				object.IntValue(int64(i)), object.IntValue(int64(i * 10)),
			}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		rid, err := db.InsertAs(nil, shapes, circle, []object.Value{
			object.IntValue(int64(i)), object.IntValue(int64(i * 10)), object.IntValue(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		circleRid = rid
	}
	if shapes.Count != 100 {
		t.Fatalf("Count = %d", shapes.Count)
	}
	// The area index covers both kinds.
	ix := db.IndexOn("Shapes", "area")
	if rids, _ := ix.Backend.Lookup(db.Client, 510); len(rids) != 1 {
		t.Fatal("subclass object missing from the extent index")
	}
	// A full scan over the extent sees every instance (the selection
	// operators share this Belongs-based filter)...
	seen := 0
	err = shapes.File.Scan(db.Client, func(_ storage.Rid, rec []byte) (bool, error) {
		if db.Classes.Belongs(object.ClassID(rec), base) {
			seen++
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Fatalf("polymorphic scan saw %d rows", seen)
	}
	// ...and base-class decoding works on subclass records (prefix
	// layout), while the exact type is preserved for subclass reads.
	rec, err := storage.Get(db.Client, circleRid)
	if err != nil {
		t.Fatal(err)
	}
	if db.Classes.ByID(object.ClassID(rec)) != circle {
		t.Fatal("exact type lost")
	}
	v, err := object.DecodeAttr(base, rec, base.AttrIndex("area"))
	if err != nil || v.Int != 990 {
		t.Fatalf("base-class decode of subclass record: %v (%v)", v, err)
	}
	v, err = object.DecodeAttr(circle, rec, circle.AttrIndex("radius"))
	if err != nil || v.Int != 99 {
		t.Fatalf("subclass decode: %v (%v)", v, err)
	}
	// Inserting an unrelated class through the extent is rejected.
	other := object.NewClass("Other", []object.Attr{{Name: "x", Kind: object.KindInt}})
	if _, err := db.InsertAs(nil, shapes, other, []object.Value{object.IntValue(1)}); err == nil {
		t.Fatal("foreign class accepted")
	}
}

func TestSubclassHandleAccess(t *testing.T) {
	db := newDB(t)
	base := object.NewClass("Animal", []object.Attr{
		{Name: "legs", Kind: object.KindInt},
	})
	dog, _ := object.NewSubclass("Dog", base, []object.Attr{
		{Name: "name", Kind: object.KindString, StrLen: 16},
	})
	animals, _ := db.CreateExtent("Animals", base, "animals")
	rid, err := db.InsertAs(nil, animals, dog, []object.Value{
		object.IntValue(4), object.StringValue("Rex"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The handle resolves the exact type, so subclass attributes are
	// reachable through it.
	h, err := db.Handles.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Handles.Unref(h)
	if h.Class() != dog {
		t.Fatalf("handle class = %s", h.Class().Name)
	}
	v, err := db.Handles.AttrByName(h, "name")
	if err != nil || v.Str != "Rex" {
		t.Fatalf("name = %v (%v)", v, err)
	}
	v, err = db.Handles.AttrByName(h, "legs")
	if err != nil || v.Int != 4 {
		t.Fatalf("legs = %v (%v)", v, err)
	}
}
