package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"treebench/internal/cache"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/txn"
)

// DefaultQueryChunks is the fan-out every partitionable operator decomposes
// its work into. It is a property of the *query plan*, never of the machine:
// chunk boundaries (and therefore every chunk's private meter readings) are a
// pure function of the data, so the merged accounting is byte-identical
// whether one goroutine services all eight chunks or eight service one each.
// The worker count (QueryJobs) only decides how many chunks run at once.
const DefaultQueryChunks = 8

// MinChunkWork is the minimum estimated work (items scanned, weighted by
// their per-item fan-out) a chunk must carry. Chunking a scan costs a few
// page faults per chunk — a private B-tree descent, re-faulted boundary
// pages — so tiny scans run as one chunk (the exact legacy sequential path)
// and only scans big enough to amortize the overhead fan out. Like the
// fan-out itself, the threshold is compared against data-derived quantities
// only, never worker count, so chunk decomposition stays deterministic.
const MinChunkWork = 4096

// ChunksForWork returns the chunk fan-out for a scan of the given estimated
// work units: one chunk per MinChunkWork, clamped to [1, DefaultQueryChunks].
func ChunksForWork(units int64) int {
	n := units / MinChunkWork
	if n < 1 {
		return 1
	}
	if n > DefaultQueryChunks {
		return DefaultQueryChunks
	}
	return int(n)
}

// DefaultQueryJobs returns the default intra-query worker count:
// min(NumCPU, 4). Query parallelism composes multiplicatively with the
// experiment scheduler's -j workers, so its default is deliberately lower
// than the scheduler's min(NumCPU, 8).
func DefaultQueryJobs() int {
	n := runtime.NumCPU()
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetQueryJobs sets how many goroutines service a query's chunks (n < 1
// selects the default). It changes wall-clock time only: chunk decomposition
// and per-chunk metering are independent of the worker count.
func (db *Session) SetQueryJobs(n int) {
	if n < 1 {
		n = 0
	}
	db.queryJobs = n
}

// QueryJobs returns the effective intra-query worker count.
func (db *Session) QueryJobs() int {
	if db.queryJobs < 1 {
		return DefaultQueryJobs()
	}
	return db.queryJobs
}

// DefaultBatch is the default vectorized-execution batch size: big enough
// to amortize per-batch costs (one meter merge, one dispatch) down to
// noise, small enough that a batch's value columns stay cache-resident.
const DefaultBatch = 1024

// SetBatch sets the vectorized-execution batch size (n < 1 selects the
// default; 1 runs the legacy one-object-at-a-time operators, kept as the
// differential-testing oracle). Like SetQueryJobs it changes wall-clock
// time only: simulated counters, tables, and meters are byte-identical at
// every batch size.
func (db *Session) SetBatch(n int) {
	if n < 1 {
		n = 0
	}
	db.batch = n
}

// Batch returns the effective vectorized-execution batch size.
func (db *Session) Batch() int {
	if db.batch < 1 {
		return DefaultBatch
	}
	return db.batch
}

// PageRange is one contiguous run of a file's pages, [From, To) in file
// order: the unit of a partitioned scan.
type PageRange struct {
	From, To int
}

// Partition splits the extent's file into at most n contiguous page ranges
// of near-equal size. The split depends only on n and the file's page count
// — never on worker count or CPU — so chunked accounting is deterministic.
// At least one range is returned (possibly empty, for an empty file), and
// the ranges cover every page exactly once.
func (e *Extent) Partition(n int) []PageRange {
	total := e.File.NumPages()
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if n < 1 {
		return []PageRange{{}}
	}
	out := make([]PageRange, n)
	for i := 0; i < n; i++ {
		out[i] = PageRange{From: total * i / n, To: total * (i + 1) / n}
	}
	return out
}

// ReadFork returns a read-only execution context over the same database:
// shared catalog (classes, extents, indexes, roots, relationships) and
// shared pages, private meter, caches, handle table and transaction state.
// It is the fork-per-worker read path of chunked execution — each chunk
// charges its private meter, and the results merge deterministically.
func (db *Session) ReadFork() *Session {
	meter := sim.NewMeter(db.Meter.Model)
	meter.SetSlimHandles(db.Meter.SlimHandles())
	srv, cli := cache.Hierarchy(db.Store.Disk, meter, db.Machine)
	return &Session{
		Store:         db.Store,
		Meter:         meter,
		Machine:       db.Machine,
		Server:        srv,
		Client:        cli,
		Classes:       db.Classes,
		Handles:       object.NewTable(meter, cli, db.Classes),
		Txns:          txn.NewManager(meter, cli, db.Txns.Mode()),
		extents:       db.extents,
		indexes:       db.indexes,
		nextIdx:       db.nextIdx,
		roots:         db.roots,
		relationships: db.relationships,
		batch:         db.batch,
		indexBackend:  db.indexBackend,
		readOnly:      true,
	}
}

// chunkFork returns the session's persistent execution context for chunk i,
// creating it on first use. Chunk i always runs on fork i, so a fork's cache
// state is a deterministic function of the session's own query history —
// warm-mode sequences stay byte-identical at any worker count. ColdRestart
// drops the forks along with the caches they hold.
func (db *Session) chunkFork(i int) *Session {
	for len(db.chunkForks) <= i {
		db.chunkForks = append(db.chunkForks, nil)
	}
	if db.chunkForks[i] == nil {
		db.chunkForks[i] = db.ReadFork()
	}
	return db.chunkForks[i]
}

// ShardChunks returns the chunk-index range [lo, hi) that shard s of N owns
// in an n-chunk decomposition: the same floor arithmetic Extent.Partition
// applies to pages, applied to chunk-index space. Ownership is therefore a
// pure function of (n, s, N) — contiguous blocks, never node-count-mod
// placement — so a shard-order concatenation of per-shard blocks is exactly
// the chunk-index order a single node merges in. Out-of-range or degenerate
// shard configurations own everything.
func ShardChunks(n, s, N int) (lo, hi int) {
	if N <= 1 || s < 0 || s >= N {
		return 0, n
	}
	return n * s / N, n * (s + 1) / N
}

// SetShard installs the session's chunk-ownership mask for distributed
// execution: shard s of N owns the ShardChunks block of every chunk
// decomposition. (0, 0) or (0, 1) clears the mask (the single-node default).
// The mask must only be used on cold runs: owned chunks still execute on
// their canonical fork indices, but a masked session never executes the
// other chunks, so warm cross-query fork state would diverge from the
// single-node session's.
func (db *Session) SetShard(s, N int) {
	if N <= 1 {
		s, N = 0, 0
	}
	db.shardIdx, db.shardCnt = s, N
}

// Shard returns the session's chunk-ownership mask (shard, shards);
// shards <= 1 means unmasked.
func (db *Session) Shard() (int, int) { return db.shardIdx, db.shardCnt }

// ownedChunks returns the session's owned block of an n-chunk decomposition.
func (db *Session) ownedChunks(n int) (lo, hi int) {
	return ShardChunks(n, db.shardIdx, db.shardCnt)
}

// RunChunks executes fn once per owned chunk over up to QueryJobs goroutines
// and merges the chunks' private meters into db.Meter in chunk-index order.
// An unmasked session (the default) owns every chunk; a session masked with
// SetShard executes and charges only its ShardChunks block, and chunks
// outside it do not run at all — their work, rows and charges belong to the
// shards that own them.
//
// With n == 1 fn runs directly on db itself — the degenerate case is the
// legacy sequential path, bit for bit (masked sessions run it only when they
// own chunk 0). With n > 1 each owned chunk runs on its persistent read-fork
// (private meter and caches, shared pages), so nothing about scheduling can
// leak into the accounting; a chunk's fork index stays canonical under a
// mask, so per-chunk charges are identical to the single-node run's.
// Chunks are claimed from an atomic counter in index order; completion order
// is irrelevant because the merge walks the owned forks in index order.
//
// A session whose disk cannot serve concurrent readers (a copy-on-write
// mutable fork faults base pages into a private overlay map) runs its chunks
// on one goroutine — same chunks, same forks, same numbers, no races.
//
// On error, the error of the lowest-indexed failed chunk is returned, so the
// reported failure is deterministic too.
func (db *Session) RunChunks(n int, fn func(w *Session, chunk int) error) error {
	return db.runChunks(n, false, fn)
}

// RunChunksAll is RunChunks for operators whose chunks have side effects
// every shard needs (a partitioned hash-join build: every participant must
// materialize the full table before probing its owned probe chunks). Every
// chunk executes on every session, but a masked session merges only its
// owned chunks' meters — unowned chunks run on throwaway forks whose charges
// are discarded, so the work happens everywhere and is charged exactly once
// across the cluster (build-side broadcast). Unmasked sessions behave
// exactly like RunChunks.
func (db *Session) RunChunksAll(n int, fn func(w *Session, chunk int) error) error {
	return db.runChunks(n, true, fn)
}

func (db *Session) runChunks(n int, all bool, fn func(w *Session, chunk int) error) error {
	lo, hi := db.ownedChunks(n)
	if n <= 1 {
		if lo < hi {
			return fn(db, 0) // owner: the exact sequential path
		}
		if !all {
			return nil
		}
		// Side effects without charges: run on a throwaway fork and drop
		// its meter.
		return fn(db.ReadFork(), 0)
	}
	workers := db.QueryJobs()
	if !db.Store.Disk.ConcurrentReads() {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	readAhead := db.Client.ReadAheadBatch()
	slim := db.Meter.SlimHandles()
	forks := make([]*Session, n)
	for i := range forks {
		if i < lo || i >= hi {
			if !all {
				continue // unowned and side-effect-free: does not run
			}
			// Unowned but required for its side effects: a throwaway fork
			// whose meter is never merged.
			f := db.ReadFork()
			f.Client.SetReadAhead(readAhead)
			forks[i] = f
			continue
		}
		f := db.chunkFork(i)
		f.Meter.Reset()
		f.Meter.SetSlimHandles(slim)
		f.Client.SetReadAhead(readAhead)
		f.batch = db.batch
		forks[i] = f
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := range forks {
			if forks[i] != nil {
				errs[i] = fn(forks[i], i)
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					if forks[i] != nil {
						errs[i] = fn(forks[i], i)
					}
				}
			}()
		}
		wg.Wait()
	}
	meters := make([]*sim.Meter, 0, hi-lo)
	for i := lo; i < hi; i++ {
		meters = append(meters, forks[i].Meter)
	}
	db.Meter.Merge(meters...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
