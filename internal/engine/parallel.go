package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"treebench/internal/cache"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/txn"
)

// DefaultQueryChunks is the fan-out every partitionable operator decomposes
// its work into. It is a property of the *query plan*, never of the machine:
// chunk boundaries (and therefore every chunk's private meter readings) are a
// pure function of the data, so the merged accounting is byte-identical
// whether one goroutine services all eight chunks or eight service one each.
// The worker count (QueryJobs) only decides how many chunks run at once.
const DefaultQueryChunks = 8

// MinChunkWork is the minimum estimated work (items scanned, weighted by
// their per-item fan-out) a chunk must carry. Chunking a scan costs a few
// page faults per chunk — a private B-tree descent, re-faulted boundary
// pages — so tiny scans run as one chunk (the exact legacy sequential path)
// and only scans big enough to amortize the overhead fan out. Like the
// fan-out itself, the threshold is compared against data-derived quantities
// only, never worker count, so chunk decomposition stays deterministic.
const MinChunkWork = 4096

// ChunksForWork returns the chunk fan-out for a scan of the given estimated
// work units: one chunk per MinChunkWork, clamped to [1, DefaultQueryChunks].
func ChunksForWork(units int64) int {
	n := units / MinChunkWork
	if n < 1 {
		return 1
	}
	if n > DefaultQueryChunks {
		return DefaultQueryChunks
	}
	return int(n)
}

// DefaultQueryJobs returns the default intra-query worker count:
// min(NumCPU, 4). Query parallelism composes multiplicatively with the
// experiment scheduler's -j workers, so its default is deliberately lower
// than the scheduler's min(NumCPU, 8).
func DefaultQueryJobs() int {
	n := runtime.NumCPU()
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetQueryJobs sets how many goroutines service a query's chunks (n < 1
// selects the default). It changes wall-clock time only: chunk decomposition
// and per-chunk metering are independent of the worker count.
func (db *Session) SetQueryJobs(n int) {
	if n < 1 {
		n = 0
	}
	db.queryJobs = n
}

// QueryJobs returns the effective intra-query worker count.
func (db *Session) QueryJobs() int {
	if db.queryJobs < 1 {
		return DefaultQueryJobs()
	}
	return db.queryJobs
}

// DefaultBatch is the default vectorized-execution batch size: big enough
// to amortize per-batch costs (one meter merge, one dispatch) down to
// noise, small enough that a batch's value columns stay cache-resident.
const DefaultBatch = 1024

// SetBatch sets the vectorized-execution batch size (n < 1 selects the
// default; 1 runs the legacy one-object-at-a-time operators, kept as the
// differential-testing oracle). Like SetQueryJobs it changes wall-clock
// time only: simulated counters, tables, and meters are byte-identical at
// every batch size.
func (db *Session) SetBatch(n int) {
	if n < 1 {
		n = 0
	}
	db.batch = n
}

// Batch returns the effective vectorized-execution batch size.
func (db *Session) Batch() int {
	if db.batch < 1 {
		return DefaultBatch
	}
	return db.batch
}

// PageRange is one contiguous run of a file's pages, [From, To) in file
// order: the unit of a partitioned scan.
type PageRange struct {
	From, To int
}

// Partition splits the extent's file into at most n contiguous page ranges
// of near-equal size. The split depends only on n and the file's page count
// — never on worker count or CPU — so chunked accounting is deterministic.
// At least one range is returned (possibly empty, for an empty file), and
// the ranges cover every page exactly once.
func (e *Extent) Partition(n int) []PageRange {
	total := e.File.NumPages()
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if n < 1 {
		return []PageRange{{}}
	}
	out := make([]PageRange, n)
	for i := 0; i < n; i++ {
		out[i] = PageRange{From: total * i / n, To: total * (i + 1) / n}
	}
	return out
}

// ReadFork returns a read-only execution context over the same database:
// shared catalog (classes, extents, indexes, roots, relationships) and
// shared pages, private meter, caches, handle table and transaction state.
// It is the fork-per-worker read path of chunked execution — each chunk
// charges its private meter, and the results merge deterministically.
func (db *Session) ReadFork() *Session {
	meter := sim.NewMeter(db.Meter.Model)
	meter.SetSlimHandles(db.Meter.SlimHandles())
	srv, cli := cache.Hierarchy(db.Store.Disk, meter, db.Machine)
	return &Session{
		Store:         db.Store,
		Meter:         meter,
		Machine:       db.Machine,
		Server:        srv,
		Client:        cli,
		Classes:       db.Classes,
		Handles:       object.NewTable(meter, cli, db.Classes),
		Txns:          txn.NewManager(meter, cli, db.Txns.Mode()),
		extents:       db.extents,
		indexes:       db.indexes,
		nextIdx:       db.nextIdx,
		roots:         db.roots,
		relationships: db.relationships,
		batch:         db.batch,
		readOnly:      true,
	}
}

// chunkFork returns the session's persistent execution context for chunk i,
// creating it on first use. Chunk i always runs on fork i, so a fork's cache
// state is a deterministic function of the session's own query history —
// warm-mode sequences stay byte-identical at any worker count. ColdRestart
// drops the forks along with the caches they hold.
func (db *Session) chunkFork(i int) *Session {
	for len(db.chunkForks) <= i {
		db.chunkForks = append(db.chunkForks, nil)
	}
	if db.chunkForks[i] == nil {
		db.chunkForks[i] = db.ReadFork()
	}
	return db.chunkForks[i]
}

// RunChunks executes fn once per chunk over up to QueryJobs goroutines and
// merges the chunks' private meters into db.Meter in chunk-index order.
//
// With n == 1 fn runs directly on db itself — the degenerate case is the
// legacy sequential path, bit for bit. With n > 1 each chunk runs on its
// persistent read-fork (private meter and caches, shared pages), so nothing
// about scheduling can leak into the accounting. Chunks are claimed from an
// atomic counter in index order; completion order is irrelevant because the
// merge walks forks[0..n-1].
//
// A session whose disk cannot serve concurrent readers (a copy-on-write
// mutable fork faults base pages into a private overlay map) runs its chunks
// on one goroutine — same chunks, same forks, same numbers, no races.
//
// On error, the error of the lowest-indexed failed chunk is returned, so the
// reported failure is deterministic too.
func (db *Session) RunChunks(n int, fn func(w *Session, chunk int) error) error {
	if n <= 1 {
		return fn(db, 0)
	}
	workers := db.QueryJobs()
	if !db.Store.Disk.ConcurrentReads() {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	readAhead := db.Client.ReadAheadBatch()
	slim := db.Meter.SlimHandles()
	forks := make([]*Session, n)
	for i := range forks {
		f := db.chunkFork(i)
		f.Meter.Reset()
		f.Meter.SetSlimHandles(slim)
		f.Client.SetReadAhead(readAhead)
		f.batch = db.batch
		forks[i] = f
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := range forks {
			errs[i] = fn(forks[i], i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					errs[i] = fn(forks[i], i)
				}
			}()
		}
		wg.Wait()
	}
	meters := make([]*sim.Meter, n)
	for i, f := range forks {
		meters[i] = f.Meter
	}
	db.Meter.Merge(meters...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
