package engine

import (
	"fmt"

	"treebench/internal/collection"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/storage"
)

// Persistence by reachability (§4.4: O2 offers "persistence by
// attachement", which is why every object carries a persistence flag the
// Handle duplicates). Named roots anchor the database; a sweep marks every
// object reachable from them through references and collections, and the
// collector removes the rest — maintaining their indexes through the
// header membership lists, exactly the §4.4 mechanism ("How will the
// system know which index to update unless each patient carries that
// information?").

// SetRoot registers (or moves) a named persistence root.
func (db *Session) SetRoot(name string, rid storage.Rid) {
	if db.roots == nil {
		db.roots = make(map[string]storage.Rid)
	}
	db.roots[name] = rid
}

// RemoveRoot drops a named root. Objects only it reached become garbage at
// the next sweep.
func (db *Session) RemoveRoot(name string) {
	delete(db.roots, name)
}

// Roots returns the named roots.
func (db *Session) Roots() map[string]storage.Rid {
	out := make(map[string]storage.Rid, len(db.roots))
	for k, v := range db.roots {
		out[k] = v
	}
	return out
}

// SweepReport summarizes a reachability sweep / collection.
type SweepReport struct {
	Reachable int
	Garbage   int
	// Collected is how many garbage objects were deleted (0 for a
	// mark-only sweep).
	Collected int
	// IndexEntriesRemoved counts index maintenance performed through the
	// objects' header membership lists.
	IndexEntriesRemoved int
}

// MarkReachable walks the object graph from the named roots and returns
// the set of reachable rids. Traversal reads records through the cache and
// charges handle costs per visited object, like the real system's sweep
// would.
func (db *Session) markReachable() (map[storage.Rid]bool, error) {
	seen := make(map[storage.Rid]bool)
	var frontier []storage.Rid
	for _, rid := range db.roots {
		if !rid.IsNil() && !seen[rid] {
			seen[rid] = true
			frontier = append(frontier, rid)
		}
	}
	for len(frontier) > 0 {
		rid := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		rec, err := storage.Get(db.Client, rid)
		if err != nil {
			return nil, fmt.Errorf("engine: sweep at %s: %w", rid, err)
		}
		db.Meter.HandleGet()
		cls := db.Classes.ByID(object.ClassID(rec))
		if cls == nil {
			db.Meter.HandleUnref()
			continue
		}
		enqueue := func(r storage.Rid) {
			if !r.IsNil() && !seen[r] {
				seen[r] = true
				frontier = append(frontier, r)
			}
		}
		for i, a := range cls.Attrs {
			switch a.Kind {
			case object.KindRef:
				v, err := object.DecodeAttr(cls, rec, i)
				if err != nil {
					return nil, err
				}
				enqueue(v.Ref)
			case object.KindSet:
				v, err := object.DecodeAttr(cls, rec, i)
				if err != nil {
					return nil, err
				}
				if v.Ref.IsNil() {
					continue
				}
				if err := collection.Scan(db.Client, v.Ref, func(m storage.Rid) (bool, error) {
					enqueue(m)
					return true, nil
				}); err != nil {
					return nil, err
				}
			}
		}
		db.Meter.HandleUnref()
	}
	return seen, nil
}

// SweepReachability marks reachable objects and reports how much of each
// extent would be garbage, without deleting anything.
func (db *Session) SweepReachability() (SweepReport, error) {
	seen, err := db.markReachable()
	if err != nil {
		return SweepReport{}, err
	}
	rep := SweepReport{Reachable: len(seen)}
	for _, name := range db.Extents() {
		e, err := db.Extent(name)
		if err != nil {
			return rep, err
		}
		err = e.File.Scan(db.Client, func(rid storage.Rid, rec []byte) (bool, error) {
			if !db.Classes.Belongs(object.ClassID(rec), e.Class) {
				return true, nil
			}
			if !seen[rid] {
				rep.Garbage++
			}
			return true, nil
		})
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// CollectGarbage deletes every object unreachable from the roots,
// maintaining indexes via the objects' header membership lists and
// updating extent counts.
func (db *Session) CollectGarbage() (SweepReport, error) {
	seen, err := db.markReachable()
	if err != nil {
		return SweepReport{}, err
	}
	rep := SweepReport{Reachable: len(seen)}
	for _, name := range db.Extents() {
		e, err := db.Extent(name)
		if err != nil {
			return rep, err
		}
		var doomed []storage.Rid
		err = e.File.Scan(db.Client, func(rid storage.Rid, rec []byte) (bool, error) {
			if !db.Classes.Belongs(object.ClassID(rec), e.Class) {
				return true, nil
			}
			if !seen[rid] {
				doomed = append(doomed, rid)
			}
			return true, nil
		})
		if err != nil {
			return rep, err
		}
		for _, rid := range doomed {
			removed, err := db.deleteObject(e, rid)
			if err != nil {
				return rep, err
			}
			rep.IndexEntriesRemoved += removed
			rep.Collected++
			e.Count--
		}
		rep.Garbage += len(doomed)
	}
	return rep, nil
}

// deleteObject removes one object: its index entries (found through the
// header), then the record itself.
func (db *Session) deleteObject(e *Extent, rid storage.Rid) (indexEntries int, err error) {
	rec, err := storage.Get(db.Client, rid)
	if err != nil {
		return 0, err
	}
	for _, id := range object.IndexRefs(rec) {
		ix := db.indexes[id]
		if ix == nil {
			continue
		}
		ai := e.Class.AttrIndex(ix.Attr)
		if ai < 0 {
			continue
		}
		v, err := object.DecodeAttr(e.Class, rec, ai)
		if err != nil {
			return indexEntries, err
		}
		ok, err := ix.Backend.Delete(db.Client, index.Entry{Key: keyOf(v), Rid: rid})
		if err != nil {
			return indexEntries, err
		}
		if ok {
			indexEntries++
		}
	}
	return indexEntries, storage.Delete(db.Client, rid)
}
