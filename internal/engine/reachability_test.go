package engine

import (
	"testing"

	"treebench/internal/collection"
	"treebench/internal/object"
	"treebench/internal/storage"
)

// reachEnv builds a two-class graph: folders with a set of files, plus
// some files referenced by nothing.
func reachEnv(t *testing.T) (*Database, *Extent, *Extent, []storage.Rid, []storage.Rid) {
	t.Helper()
	db := newDB(t)
	fileCls := object.NewClass("File", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "size", Kind: object.KindInt},
	})
	folderCls := object.NewClass("Folder", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "entries", Kind: object.KindSet},
	})
	files, err := db.CreateExtent("Files", fileCls, "files")
	if err != nil {
		t.Fatal(err)
	}
	folders, err := db.CreateExtent("Folders", folderCls, "folders")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.CreateIndex(files, "size", false); err != nil {
		t.Fatal(err)
	}

	var fileRids []storage.Rid
	for i := 0; i < 30; i++ {
		rid, err := db.Insert(nil, files, []object.Value{
			object.IntValue(int64(i)), object.IntValue(int64(i * 10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		fileRids = append(fileRids, rid)
	}
	// Folder 0 holds files 0..9, folder 1 holds files 10..19; files
	// 20..29 are attached to nothing.
	var folderRids []storage.Rid
	for f := 0; f < 2; f++ {
		head, err := collection.Create(db.Client, folders.File, fileRids[f*10:(f+1)*10])
		if err != nil {
			t.Fatal(err)
		}
		rid, err := db.Insert(nil, folders, []object.Value{
			object.IntValue(int64(f)), object.SetValue(head),
		})
		if err != nil {
			t.Fatal(err)
		}
		folderRids = append(folderRids, rid)
	}
	return db, files, folders, fileRids, folderRids
}

func TestSweepReachability(t *testing.T) {
	db, _, _, _, folderRids := reachEnv(t)
	db.SetRoot("root0", folderRids[0])
	db.SetRoot("root1", folderRids[1])
	rep, err := db.SweepReachability()
	if err != nil {
		t.Fatal(err)
	}
	// 2 folders + 20 files reachable; 10 files garbage.
	if rep.Reachable != 22 {
		t.Fatalf("reachable = %d, want 22", rep.Reachable)
	}
	if rep.Garbage != 10 {
		t.Fatalf("garbage = %d, want 10", rep.Garbage)
	}
	if rep.Collected != 0 {
		t.Fatal("mark-only sweep collected")
	}
	// Dropping a root grows the garbage.
	db.RemoveRoot("root1")
	rep, err = db.SweepReachability()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reachable != 11 || rep.Garbage != 21 {
		t.Fatalf("after root removal: %+v", rep)
	}
	if len(db.Roots()) != 1 {
		t.Fatalf("roots: %v", db.Roots())
	}
}

func TestCollectGarbageMaintainsIndexes(t *testing.T) {
	db, files, folders, fileRids, folderRids := reachEnv(t)
	db.SetRoot("root0", folderRids[0])
	db.SetRoot("root1", folderRids[1])

	rep, err := db.CollectGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collected != 10 {
		t.Fatalf("collected = %d, want 10", rep.Collected)
	}
	if rep.IndexEntriesRemoved != 10 {
		t.Fatalf("index entries removed = %d, want 10", rep.IndexEntriesRemoved)
	}
	if files.Count != 20 || folders.Count != 2 {
		t.Fatalf("counts after GC: files=%d folders=%d", files.Count, folders.Count)
	}
	// Collected records are gone...
	if _, err := storage.Get(db.Client, fileRids[25]); err == nil {
		t.Fatal("garbage file still readable")
	}
	// ...and their index entries too: file 25 had size 250.
	ix := db.IndexOn("Files", "size")
	if rids, _ := ix.Backend.Lookup(db.Client, 250); len(rids) != 0 {
		t.Fatalf("stale index entry: %v", rids)
	}
	// Survivors intact, index consistent.
	if rids, _ := ix.Backend.Lookup(db.Client, 150); len(rids) != 1 || rids[0] != fileRids[15] {
		t.Fatal("survivor lost")
	}
	if err := ix.Backend.Validate(db.Client); err != nil {
		t.Fatal(err)
	}
	// A second collection finds nothing.
	rep, err = db.CollectGarbage()
	if err != nil || rep.Collected != 0 {
		t.Fatalf("second GC: %+v (%v)", rep, err)
	}
}

func TestSweepWithNoRoots(t *testing.T) {
	db, files, folders, _, _ := reachEnv(t)
	rep, err := db.SweepReachability()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reachable != 0 || rep.Garbage != files.Count+folders.Count {
		t.Fatalf("rootless sweep: %+v", rep)
	}
}

func TestSweepHandlesCycles(t *testing.T) {
	// Two objects referencing each other must not loop the sweep.
	db := newDB(t)
	cls := object.NewClass("Node", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "next", Kind: object.KindRef},
	})
	nodes, _ := db.CreateExtent("Nodes", cls, "nodes")
	a, _ := db.Insert(nil, nodes, []object.Value{object.IntValue(1), object.RefValue(storage.NilRid)})
	b, _ := db.Insert(nil, nodes, []object.Value{object.IntValue(2), object.RefValue(a)})
	if err := db.UpdateAttr(nil, nodes, a, "next", object.RefValue(b)); err != nil {
		t.Fatal(err)
	}
	db.SetRoot("cycle", a)
	rep, err := db.SweepReachability()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reachable != 2 || rep.Garbage != 0 {
		t.Fatalf("cycle sweep: %+v", rep)
	}
}
