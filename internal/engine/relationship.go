package engine

import (
	"fmt"

	"treebench/internal/collection"
	"treebench/internal/object"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// ODMG relationships: the paper's schema declares `clients: set(Patient)`
// against `primary_care_provider: Provider` — a 1-n relationship whose two
// sides the ODMG binding keeps consistent automatically ("O2 implements
// the full ODMG data model"). A defined relationship makes SetParent
// maintain the back reference, both collections, and any index on the
// reference attribute in one operation.

// Relationship binds a parent set attribute to its inverse child
// reference.
type Relationship struct {
	Parent  *Extent
	SetAttr string
	Child   *Extent
	RefAttr string

	setIdx int
	refIdx int
}

// DefineRelationship declares the 1-n relationship between
// parent.setAttr and child.refAttr.
func (db *Session) DefineRelationship(parent *Extent, setAttr string, child *Extent, refAttr string) (*Relationship, error) {
	if err := db.mutable(); err != nil {
		return nil, err
	}
	si := parent.Class.AttrIndex(setAttr)
	if si < 0 || parent.Class.Attrs[si].Kind != object.KindSet {
		return nil, fmt.Errorf("engine: %s.%s is not a set attribute", parent.Class.Name, setAttr)
	}
	ri := child.Class.AttrIndex(refAttr)
	if ri < 0 || child.Class.Attrs[ri].Kind != object.KindRef {
		return nil, fmt.Errorf("engine: %s.%s is not a reference attribute", child.Class.Name, refAttr)
	}
	rel := &Relationship{
		Parent: parent, SetAttr: setAttr, Child: child, RefAttr: refAttr,
		setIdx: si, refIdx: ri,
	}
	db.relationships = append(db.relationships, rel)
	return rel, nil
}

// Relationships returns the session's declared relationships, in
// definition order.
func (db *Session) Relationships() []*Relationship { return db.relationships }

// setHead reads a parent's collection head, creating an empty collection
// in the parent's file if the attribute is still nil.
func (db *Session) setHead(rel *Relationship, parentRid storage.Rid) (storage.Rid, error) {
	rec, err := storage.Get(db.Client, parentRid)
	if err != nil {
		return storage.Rid{}, err
	}
	v, err := object.DecodeAttr(rel.Parent.Class, rec, rel.setIdx)
	if err != nil {
		return storage.Rid{}, err
	}
	if !v.Ref.IsNil() {
		return v.Ref, nil
	}
	head, err := collection.Create(db.Client, rel.Parent.File, nil)
	if err != nil {
		return storage.Rid{}, err
	}
	if err := object.EncodeAttrInPlace(rel.Parent.Class, rec, rel.setIdx, object.SetValue(head)); err != nil {
		return storage.Rid{}, err
	}
	return head, db.Client.Write(parentRid.Page)
}

// SetParent moves the child to a new parent (NilRid detaches it),
// maintaining both relationship sides and any index on the reference
// attribute. It is the engine's version of §4.4's retire-a-doctor update
// done *correctly* — the clients sets never go stale.
func (rel *Relationship) SetParent(db *Session, tx *txn.Txn, childRid, newParent storage.Rid) error {
	if err := db.mutable(); err != nil {
		return err
	}
	rec, err := storage.Get(db.Client, childRid)
	if err != nil {
		return err
	}
	old, err := object.DecodeAttr(rel.Child.Class, rec, rel.refIdx)
	if err != nil {
		return err
	}
	if old.Ref == newParent {
		return nil
	}
	// Detach from the old parent's set.
	if !old.Ref.IsNil() {
		head, err := rel.headOf(db, old.Ref)
		if err != nil {
			return err
		}
		if !head.IsNil() {
			if _, err := collection.Remove(db.Client, rel.Parent.File, head, childRid); err != nil {
				return err
			}
		}
	}
	// Flip the reference (UpdateAttr maintains any index on it).
	if err := db.UpdateAttr(tx, rel.Child, childRid, rel.RefAttr, object.RefValue(newParent)); err != nil {
		return err
	}
	// Attach to the new parent's set.
	if !newParent.IsNil() {
		head, err := db.setHead(rel, newParent)
		if err != nil {
			return err
		}
		if err := collection.Add(db.Client, rel.Parent.File, head, childRid); err != nil {
			return err
		}
	}
	if tx != nil {
		if err := tx.NoteUpdate(len(rec)); err != nil {
			return err
		}
	}
	return nil
}

// headOf reads a parent's set head without creating one.
func (rel *Relationship) headOf(db *Session, parentRid storage.Rid) (storage.Rid, error) {
	rec, err := storage.Get(db.Client, parentRid)
	if err != nil {
		return storage.Rid{}, err
	}
	v, err := object.DecodeAttr(rel.Parent.Class, rec, rel.setIdx)
	if err != nil {
		return storage.Rid{}, err
	}
	return v.Ref, nil
}

// Children lists the child rids of a parent through the relationship.
func (rel *Relationship) Children(db *Session, parentRid storage.Rid) ([]storage.Rid, error) {
	head, err := rel.headOf(db, parentRid)
	if err != nil || head.IsNil() {
		return nil, err
	}
	return collection.Elems(db.Client, head)
}

// VerifyConsistency checks both relationship sides agree: every child's
// reference matches exactly one membership, and every set member points
// back. It is diagnostic support for tests and the shell.
func (rel *Relationship) VerifyConsistency(db *Session) error {
	// Relocated children are scanned at their new position but stored in
	// sets (and referenced everywhere else) by their original rid; map
	// relocation targets back to the stable identity first.
	origin := make(map[storage.Rid]storage.Rid)
	if err := rel.Child.File.ScanForwards(db.Client, func(stub, target storage.Rid) (bool, error) {
		origin[target] = stub
		return true, nil
	}); err != nil {
		return err
	}
	canon := func(rid storage.Rid) storage.Rid {
		if orig, ok := origin[rid]; ok {
			return orig
		}
		return rid
	}
	// Forward: each parent's members point back at it.
	memberships := make(map[storage.Rid]storage.Rid)
	err := rel.Parent.File.Scan(db.Client, func(prid storage.Rid, rec []byte) (bool, error) {
		if !db.Classes.Belongs(object.ClassID(rec), rel.Parent.Class) {
			return true, nil
		}
		v, err := object.DecodeAttr(rel.Parent.Class, rec, rel.setIdx)
		if err != nil {
			return false, err
		}
		if v.Ref.IsNil() {
			return true, nil
		}
		return true, collection.Scan(db.Client, v.Ref, func(m storage.Rid) (bool, error) {
			if owner, dup := memberships[m]; dup {
				return false, fmt.Errorf("engine: child %s in two sets (%s and %s)", m, owner, prid)
			}
			memberships[m] = prid
			mrec, err := storage.Get(db.Client, m)
			if err != nil {
				return false, err
			}
			back, err := object.DecodeAttr(rel.Child.Class, mrec, rel.refIdx)
			if err != nil {
				return false, err
			}
			if back.Ref != prid {
				return false, fmt.Errorf("engine: child %s in %s's set but references %s", m, prid, back.Ref)
			}
			return true, nil
		})
	})
	if err != nil {
		return err
	}
	// Backward: each referencing child is a member.
	return rel.Child.File.Scan(db.Client, func(crid storage.Rid, rec []byte) (bool, error) {
		if !db.Classes.Belongs(object.ClassID(rec), rel.Child.Class) {
			return true, nil
		}
		v, err := object.DecodeAttr(rel.Child.Class, rec, rel.refIdx)
		if err != nil {
			return false, err
		}
		if v.Ref.IsNil() {
			return true, nil
		}
		if crid = canon(crid); memberships[crid] != v.Ref {
			return false, fmt.Errorf("engine: child %s references %s but is not in its set", crid, v.Ref)
		}
		return true, nil
	})
}
