package engine

import (
	"testing"

	"treebench/internal/object"
	"treebench/internal/storage"
)

// relEnv builds teams with players (1-n) plus the relationship binding.
func relEnv(t *testing.T) (*Database, *Relationship, []storage.Rid, []storage.Rid) {
	t.Helper()
	db := newDB(t)
	teamCls := object.NewClass("Team", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "players", Kind: object.KindSet},
	})
	playerCls := object.NewClass("Player", []object.Attr{
		{Name: "id", Kind: object.KindInt},
		{Name: "team", Kind: object.KindRef},
	})
	teams, _ := db.CreateExtent("Teams", teamCls, "teams")
	players, _ := db.CreateExtent("Players", playerCls, "players")
	// Index players by team: exercised by every SetParent.
	if _, _, err := db.CreateIndex(players, "team", false); err != nil {
		t.Fatal(err)
	}
	rel, err := db.DefineRelationship(teams, "players", players, "team")
	if err != nil {
		t.Fatal(err)
	}
	var teamRids, playerRids []storage.Rid
	for i := 0; i < 3; i++ {
		rid, _ := db.Insert(nil, teams, []object.Value{
			object.IntValue(int64(i)), object.SetValue(storage.NilRid),
		})
		teamRids = append(teamRids, rid)
	}
	for i := 0; i < 30; i++ {
		rid, _ := db.Insert(nil, players, []object.Value{
			object.IntValue(int64(i)), object.RefValue(storage.NilRid),
		})
		playerRids = append(playerRids, rid)
	}
	return db, rel, teamRids, playerRids
}

func TestDefineRelationshipValidation(t *testing.T) {
	db, rel, _, _ := relEnv(t)
	_ = rel
	teams, _ := db.Extent("Teams")
	players, _ := db.Extent("Players")
	if _, err := db.DefineRelationship(teams, "id", players, "team"); err == nil {
		t.Fatal("non-set parent attribute accepted")
	}
	if _, err := db.DefineRelationship(teams, "players", players, "id"); err == nil {
		t.Fatal("non-ref child attribute accepted")
	}
}

func TestSetParentMaintainsBothSides(t *testing.T) {
	db, rel, teams, players := relEnv(t)
	// Assign players round-robin.
	for i, p := range players {
		if err := rel.SetParent(db, nil, p, teams[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rel.VerifyConsistency(db); err != nil {
		t.Fatal(err)
	}
	for i, team := range teams {
		kids, err := rel.Children(db, team)
		if err != nil || len(kids) != 10 {
			t.Fatalf("team %d has %d players (%v)", i, len(kids), err)
		}
	}
	// Transfer a player: both sets and the ref index must follow.
	if err := rel.SetParent(db, nil, players[0], teams[1]); err != nil {
		t.Fatal(err)
	}
	if err := rel.VerifyConsistency(db); err != nil {
		t.Fatal(err)
	}
	kids0, _ := rel.Children(db, teams[0])
	kids1, _ := rel.Children(db, teams[1])
	if len(kids0) != 9 || len(kids1) != 11 {
		t.Fatalf("after transfer: %d and %d", len(kids0), len(kids1))
	}
	ix := db.IndexOn("Players", "team")
	if rids, _ := ix.Backend.Lookup(db.Client, RefKey(teams[1])); len(rids) != 11 {
		t.Fatalf("ref index sees %d players on team 1", len(rids))
	}
	// Detach entirely.
	if err := rel.SetParent(db, nil, players[0], storage.NilRid); err != nil {
		t.Fatal(err)
	}
	if err := rel.VerifyConsistency(db); err != nil {
		t.Fatal(err)
	}
	kids1, _ = rel.Children(db, teams[1])
	if len(kids1) != 10 {
		t.Fatalf("detach left %d players", len(kids1))
	}
	// No-op reassignment.
	if err := rel.SetParent(db, nil, players[1], teams[1]); err != nil {
		t.Fatal(err)
	}
	if err := rel.SetParent(db, nil, players[1], teams[1]); err != nil {
		t.Fatal(err)
	}
	if err := rel.VerifyConsistency(db); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyConsistencyDetectsStaleSets(t *testing.T) {
	db, rel, teams, players := relEnv(t)
	for _, p := range players {
		if err := rel.SetParent(db, nil, p, teams[0]); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one side: flip a player's ref without fixing the set.
	if err := db.UpdateAttr(nil, rel.Child, players[5], "team", object.RefValue(teams[2])); err != nil {
		t.Fatal(err)
	}
	if err := rel.VerifyConsistency(db); err == nil {
		t.Fatal("stale relationship not detected")
	}
}
