package engine

import (
	"treebench/internal/cache"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// Snapshot is the immutable, shareable half of a database: the frozen page
// image (data, collections, index nodes) plus the catalog that describes
// it — classes, extents, indexes, roots, relationships, and any primed
// histograms. It is what the generator produces; everything a session pays
// to *use* the database (caches, meter, handles, transactions) lives in
// the Sessions forked from it.
//
// A Snapshot is safe for concurrent use: Fork and ForkMutable only read
// it, and nothing mutates it after Freeze except PrimeStats (which callers
// run once, before sharing).
type Snapshot struct {
	base    *storage.Base
	store   *storage.Store
	machine sim.Machine
	model   sim.CostModel
	mode    txn.Mode

	classes      *object.Registry
	extents      map[string]*Extent
	indexes      map[uint32]*Index
	nextIdx      uint32
	roots        map[string]storage.Rid
	rels         []*Relationship
	indexBackend string

	// Chain lineage (see chain.go): position in the MVCC version chain,
	// the version committed over, and the commit's physical footprint.
	// All zero for a plain frozen snapshot that was never committed.
	version    uint64
	parent     *Snapshot
	deltaPages int
	walOff     int64
}

// Freeze seals the session's database into an immutable Snapshot. The
// session itself becomes read-only — it keeps answering queries over the
// now-shared pages, but every mutating operation fails with
// ErrReadOnlySession from here on. Freezing never primes histograms or
// touches the caches, so a session forked from the snapshot is
// byte-identical to the builder after a ColdRestart.
func (db *Session) Freeze() (*Snapshot, error) {
	base, err := db.Store.Freeze()
	if err != nil {
		return nil, err
	}
	db.readOnly = true
	return &Snapshot{
		base:         base,
		store:        db.Store,
		machine:      db.Machine,
		model:        db.Meter.Model,
		mode:         db.Txns.Mode(),
		classes:      db.Classes,
		extents:      db.extents,
		indexes:      db.indexes,
		nextIdx:      db.nextIdx,
		roots:        db.roots,
		rels:         db.relationships,
		indexBackend: db.IndexBackend(),
	}, nil
}

// IndexBackend reports the backend kind the snapshot's indexes use.
func (sn *Snapshot) IndexBackend() string {
	for _, ix := range sn.indexes {
		return ix.Backend.Kind()
	}
	return sn.indexBackend
}

// BackendCounters sums the per-backend counters over the snapshot's
// indexes. Clone resets counters, so a chain head's totals are exactly
// the activity of the wave that published it — the server's commit path
// records them as that commit's backend delta.
func (sn *Snapshot) BackendCounters() index.BackendCounters {
	var c index.BackendCounters
	for _, ix := range sn.indexes {
		c.Add(ix.Backend.Counters())
	}
	return c
}

// Pages returns the number of frozen pages shared by all forks.
func (sn *Snapshot) Pages() int { return sn.base.NumPages() }

// Bytes returns the physical size of the shared page image.
func (sn *Snapshot) Bytes() int64 { return sn.base.Bytes() }

// Fork returns a read-only session over the snapshot: fresh caches, meter,
// handle table and transaction state, sharing the frozen pages physically
// (zero copies). Forking costs O(catalog) — files, extents, index
// descriptors — never O(data). A fresh fork is semantically a ColdRestart
// of the builder: its first query reports exactly the numbers the builder
// would.
func (sn *Snapshot) Fork() *Session { return sn.fork(true) }

// ForkMutable returns a writable session over the snapshot. Reads share
// the frozen pages until first touch, then copy them into the session's
// private overlay (copy-on-write); appends and index builds allocate
// private pages whose ids continue past the base, so a mutable fork
// behaves exactly like a private deep copy of the database — without
// paying for one. The class graph is deep-copied too, since schema
// evolution mutates classes in place.
func (sn *Snapshot) ForkMutable() *Session { return sn.fork(false) }

func (sn *Snapshot) fork(readOnly bool) *Session {
	var disk *storage.Disk
	if readOnly {
		disk = sn.base.Fork()
	} else {
		disk = sn.base.ForkMutable()
	}
	store := sn.store.Fork(disk)
	meter := sim.NewMeter(sn.model)
	srv, cli := cache.Hierarchy(disk, meter, sn.machine)

	classes := sn.classes
	var remap func(*object.Class) *object.Class
	if !readOnly {
		classes, remap = sn.classes.Clone()
	}
	db := &Session{
		Store:        store,
		Meter:        meter,
		Machine:      sn.machine,
		Server:       srv,
		Client:       cli,
		Classes:      classes,
		Handles:      object.NewTable(meter, cli, classes),
		Txns:         txn.NewManager(meter, cli, sn.mode),
		extents:      make(map[string]*Extent, len(sn.extents)),
		indexes:      make(map[uint32]*Index, len(sn.indexes)),
		nextIdx:      sn.nextIdx,
		readOnly:     readOnly,
		indexBackend: sn.indexBackend,
	}
	for name, e := range sn.extents {
		cls := e.Class
		if remap != nil {
			cls = remap(cls)
		}
		f, err := store.File(e.File.Name)
		if err != nil {
			// The catalog referenced the file at freeze time; a forked
			// store clones every file, so this cannot happen.
			panic("engine: fork lost file " + e.File.Name)
		}
		db.extents[name] = &Extent{
			Name:              e.Name,
			Class:             cls,
			File:              f,
			IndexedAtCreation: e.IndexedAtCreation,
			Count:             e.Count,
		}
	}
	// Clone indexes through each extent's own slice so a mutable fork
	// maintains them in the same deterministic order the builder did (the
	// snapshot's id-keyed map would randomize it).
	for name, e := range sn.extents {
		ne := db.extents[name]
		for _, ix := range e.indexes {
			nix := &Index{
				Backend:   ix.Backend.Clone(),
				Extent:    ne,
				Attr:      ix.Attr,
				attrIdx:   ix.attrIdx,
				Clustered: ix.Clustered,
				stats:     ix.stats, // histograms are immutable once built
			}
			ne.indexes = append(ne.indexes, nix)
			db.indexes[nix.Backend.ID()] = nix
		}
	}
	if len(sn.roots) > 0 {
		db.roots = make(map[string]storage.Rid, len(sn.roots))
		for k, v := range sn.roots {
			db.roots[k] = v
		}
	}
	for _, rel := range sn.rels {
		db.relationships = append(db.relationships, &Relationship{
			Parent:  db.extents[rel.Parent.Name],
			SetAttr: rel.SetAttr,
			Child:   db.extents[rel.Child.Name],
			RefAttr: rel.RefAttr,
			setIdx:  rel.setIdx,
			refIdx:  rel.refIdx,
		})
	}
	return db
}

// PrimeStats builds every index's equi-depth histogram on a throwaway fork
// and installs the results in the snapshot, so sessions forked afterwards
// inherit planner statistics instead of each paying the lazy ANALYZE scan.
// Call it once, before the snapshot is shared. It never changes what a
// session reports: histogram priming already happens (per session) in
// session.New, followed by a ColdRestart that discards its cost.
func (sn *Snapshot) PrimeStats() error {
	f := sn.fork(true)
	for name, e := range sn.extents {
		fe := f.extents[name]
		for i, ix := range e.indexes {
			h, err := fe.indexes[i].Stats(f.Client)
			if err != nil {
				return err
			}
			ix.stats = h
		}
	}
	return nil
}
