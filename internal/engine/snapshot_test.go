package engine

import (
	"errors"
	"testing"

	"treebench/internal/object"
	"treebench/internal/storage"
)

// buildSnapshot makes a small database — one extent, n items, an index on
// score — and freezes it.
func buildSnapshot(t *testing.T, n int) (*Snapshot, []storage.Rid) {
	t.Helper()
	db := newDB(t)
	e, err := db.CreateExtent("Items", itemClass(), "items")
	if err != nil {
		t.Fatal(err)
	}
	rids := make([]storage.Rid, n)
	for i := 0; i < n; i++ {
		rids[i], err = db.Insert(nil, e, itemValues(int64(i), int64(i%7), "x"))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.CreateIndex(e, "score", false); err != nil {
		t.Fatal(err)
	}
	sn, err := db.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return sn, rids
}

// TestReadOnlySessionGuards drives every mutating entry point against a
// read-only fork: each must fail with ErrReadOnlySession before touching
// any shared buffer.
func TestReadOnlySessionGuards(t *testing.T) {
	sn, rids := buildSnapshot(t, 10)
	db := sn.Fork()
	if !db.ReadOnly() {
		t.Fatal("fork not read-only")
	}
	e, err := db.Extent("Items")
	if err != nil {
		t.Fatal(err)
	}
	check := func(op string, err error) {
		t.Helper()
		if !errors.Is(err, ErrReadOnlySession) {
			t.Fatalf("%s on read-only session = %v, want ErrReadOnlySession", op, err)
		}
	}
	_, err = db.CreateExtent("More", itemClass(), "more")
	check("CreateExtent", err)
	_, err = db.Insert(nil, e, itemValues(99, 1, "y"))
	check("Insert", err)
	_, _, err = db.CreateIndex(e, "id", false)
	check("CreateIndex", err)
	check("UpdateAttr", db.UpdateAttr(nil, e, rids[0], "score", object.IntValue(5)))
	check("EvolveClass", db.EvolveClass(e, object.Attr{Name: "z", Kind: object.KindInt}, object.IntValue(0)))
	_, _, err = db.UpgradeObject(nil, e, rids[0])
	check("UpgradeObject", err)
	_, _, err = db.UpgradeExtent(nil, e)
	check("UpgradeExtent", err)
	_, err = db.CreateVersion(nil, e, rids[0])
	check("CreateVersion", err)
	_, err = db.DefineRelationship(e, "score", e, "id")
	check("DefineRelationship", err)
}

// TestForkEqualsColdRestart is the byte-identity property: a fresh fork's
// reads report exactly the counters the frozen builder reports after a
// ColdRestart — sharing pages must not change any simulated number.
func TestForkEqualsColdRestart(t *testing.T) {
	sn, rids := buildSnapshot(t, 200)
	builder := sn.Fork() // stands in for the builder: same frozen pages
	fork := sn.Fork()

	readAll := func(db *Session) {
		t.Helper()
		db.ColdRestart()
		for _, rid := range rids {
			if _, err := db.Handles.Get(rid); err != nil {
				t.Fatal(err)
			}
		}
	}
	readAll(builder)
	readAll(fork)
	if builder.Meter.N != fork.Meter.N {
		t.Fatalf("fork counters diverge from builder:\n%+v\nvs\n%+v", builder.Meter.N, fork.Meter.N)
	}
	if builder.Meter.Elapsed() != fork.Meter.Elapsed() {
		t.Fatalf("fork elapsed %v, builder %v", fork.Meter.Elapsed(), builder.Meter.Elapsed())
	}
	if builder.Meter.Elapsed() == 0 {
		t.Fatal("reads cost nothing — the comparison is vacuous")
	}
}

// TestMutableForkIsolation mutates a COW fork and checks nothing leaks
// into the snapshot or into read-only siblings.
func TestMutableForkIsolation(t *testing.T) {
	sn, rids := buildSnapshot(t, 50)
	basePages := sn.Pages()

	m := sn.ForkMutable()
	if m.ReadOnly() {
		t.Fatal("mutable fork claims read-only")
	}
	me, err := m.Extent("Items")
	if err != nil {
		t.Fatal(err)
	}
	// Update an indexed attribute (exercises COW on data and index pages)
	// and insert a new object (exercises allocation past the base).
	if err := m.UpdateAttr(nil, me, rids[0], "score", object.IntValue(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(nil, me, itemValues(999, 999, "new")); err != nil {
		t.Fatal(err)
	}
	if me.Count != 51 {
		t.Fatalf("fork extent count = %d, want 51", me.Count)
	}
	// Schema evolution stays private too: the class graph was deep-copied.
	if err := m.EvolveClass(me, object.Attr{Name: "extra", Kind: object.KindInt}, object.IntValue(7)); err != nil {
		t.Fatal(err)
	}

	r := sn.Fork()
	re, err := r.Extent("Items")
	if err != nil {
		t.Fatal(err)
	}
	if re.Count != 50 {
		t.Fatalf("snapshot extent count changed to %d", re.Count)
	}
	if re.Class.AttrIndex("extra") >= 0 {
		t.Fatal("schema evolution leaked into the shared class graph")
	}
	h, err := r.Handles.Get(rids[0])
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Handles.AttrByName(h, "score")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int == 1000 {
		t.Fatal("fork's UpdateAttr leaked into the shared pages")
	}
	// The fork's index sees the update; the sibling's does not.
	mix := m.IndexOn("Items", "score")
	rix := r.IndexOn("Items", "score")
	if mix == nil || rix == nil {
		t.Fatal("index lost in fork")
	}
	mhits, err := mix.Backend.Lookup(m.Client, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(mhits) != 1 {
		t.Fatalf("fork index lookup(1000) = %d hits, want 1", len(mhits))
	}
	rhits, err := rix.Backend.Lookup(r.Client, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rhits) != 0 {
		t.Fatalf("sibling index lookup(1000) = %d hits, want 0", len(rhits))
	}
	if sn.Pages() != basePages {
		t.Fatalf("snapshot grew from %d to %d pages", basePages, sn.Pages())
	}
}
