package engine

import (
	"fmt"
	"sort"

	"treebench/internal/backend"
	"treebench/internal/histogram"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// Serializable snapshot state: everything an engine.Snapshot holds beyond
// the raw page image, exported as plain data so internal/persist can write
// it to disk and rebuild a bit-identical snapshot without reaching into
// engine internals. Load(Save(snap)) must fork sessions whose every
// reported number matches the original's — that invariant is what keeps
// the split honest.

// IndexState describes one index of an extent. Backend is the full
// pluggable-backend descriptor; Tree repeats its B+-tree half so the
// positionally aligned trees section (and every pre-backend consumer of
// it) stays well-formed — for an LSM it is a synthesized placeholder.
// A zero Backend.Kind means "btree from Tree" for states built by older
// code paths.
type IndexState struct {
	Backend   index.BackendState
	Tree      index.TreeState
	Attr      string
	Clustered bool
	// Stats carries the primed equi-depth histogram (nil when the
	// snapshot was saved unprimed).
	Stats []histogram.BucketState
}

// ExtentState describes one extent and its indexes, in maintenance order.
type ExtentState struct {
	Name              string
	Class             string
	File              string
	IndexedAtCreation bool
	Count             int
	Indexes           []IndexState
}

// RootState is one named root.
type RootState struct {
	Name string
	Rid  storage.Rid
}

// RelationshipState describes one declared 1-n relationship.
type RelationshipState struct {
	Parent  string
	SetAttr string
	Child   string
	RefAttr string
}

// SnapshotState is the full serializable catalog of a Snapshot. The page
// image (storage.Base) travels separately — it is the bulk of a snapshot
// and is streamed, not held in a struct.
type SnapshotState struct {
	Machine sim.Machine
	Model   sim.CostModel
	Mode    txn.Mode

	Files   []storage.FileState
	Classes *object.RegistryState
	// Extents is sorted by name; each extent's index order is the
	// builder's maintenance order.
	Extents []ExtentState
	NextIdx uint32
	Roots   []RootState
	Rels    []RelationshipState
}

// Base exposes the frozen page image so internal/persist can stream it to
// disk. Callers must treat it as read-only.
func (sn *Snapshot) Base() *storage.Base { return sn.base }

// State exports the snapshot's catalog in a canonical order (extents and
// roots sorted by name), so saving the same snapshot twice produces
// byte-identical files.
func (sn *Snapshot) State() *SnapshotState {
	st := &SnapshotState{
		Machine: sn.machine,
		Model:   sn.model,
		Mode:    sn.mode,
		Files:   sn.store.State(),
		Classes: sn.classes.State(),
		NextIdx: sn.nextIdx,
	}
	names := make([]string, 0, len(sn.extents))
	for name := range sn.extents {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := sn.extents[name]
		es := ExtentState{
			Name:              e.Name,
			Class:             e.Class.Name,
			File:              e.File.Name,
			IndexedAtCreation: e.IndexedAtCreation,
			Count:             e.Count,
		}
		for _, ix := range e.indexes {
			bst := ix.Backend.State()
			es.Indexes = append(es.Indexes, IndexState{
				Backend:   bst,
				Tree:      bst.Tree,
				Attr:      ix.Attr,
				Clustered: ix.Clustered,
				Stats:     ix.stats.State(),
			})
		}
		st.Extents = append(st.Extents, es)
	}
	rootNames := make([]string, 0, len(sn.roots))
	for name := range sn.roots {
		rootNames = append(rootNames, name)
	}
	sort.Strings(rootNames)
	for _, name := range rootNames {
		st.Roots = append(st.Roots, RootState{Name: name, Rid: sn.roots[name]})
	}
	for _, rel := range sn.rels {
		st.Rels = append(st.Rels, RelationshipState{
			Parent:  rel.Parent.Name,
			SetAttr: rel.SetAttr,
			Child:   rel.Child.Name,
			RefAttr: rel.RefAttr,
		})
	}
	return st
}

// RestoreSnapshot rebuilds a Snapshot over a restored page image. The
// state is validated against itself and the image — dangling class, file,
// attribute or page references fail with an error, never a panic — since
// it may come from an untrusted snapshot file.
func RestoreSnapshot(base *storage.Base, st *SnapshotState) (*Snapshot, error) {
	if st.Classes == nil {
		return nil, fmt.Errorf("engine: snapshot state has no class registry")
	}
	if st.Mode != txn.Standard && st.Mode != txn.NoTransaction {
		return nil, fmt.Errorf("engine: unknown transaction mode %d", st.Mode)
	}
	classes, err := object.RestoreRegistry(st.Classes)
	if err != nil {
		return nil, err
	}
	store, err := storage.RestoreStore(base.Fork(), st.Files)
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{
		base:    base,
		store:   store,
		machine: st.Machine,
		model:   st.Model,
		mode:    st.Mode,
		classes: classes,
		extents: make(map[string]*Extent, len(st.Extents)),
		indexes: make(map[uint32]*Index, len(st.Extents)),
		nextIdx: st.NextIdx,
	}
	for _, es := range st.Extents {
		if _, dup := sn.extents[es.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate extent %q in snapshot state", ErrUnknown, es.Name)
		}
		cls := classes.ByName(es.Class)
		if cls == nil {
			return nil, fmt.Errorf("%w class %q for extent %q", ErrUnknown, es.Class, es.Name)
		}
		f, err := store.File(es.File)
		if err != nil {
			return nil, err
		}
		e := &Extent{
			Name:              es.Name,
			Class:             cls,
			File:              f,
			IndexedAtCreation: es.IndexedAtCreation,
			Count:             es.Count,
		}
		for _, is := range es.Indexes {
			bst := is.Backend
			if bst.Kind == "" {
				// State written before (or without) the backends
				// section: the tree descriptor is the whole story.
				bst = index.BackendState{Kind: backend.KindBTree, Tree: is.Tree, Meta: storage.InvalidPage}
			}
			be, err := backend.Restore(bst, base.NumPages())
			if err != nil {
				return nil, err
			}
			ai := cls.AttrIndex(is.Attr)
			if ai < 0 {
				return nil, fmt.Errorf("%w attribute %s.%s for index %s", ErrUnknown, cls.Name, is.Attr, be.Name())
			}
			stats, err := histogram.Restore(is.Stats)
			if err != nil {
				return nil, err
			}
			ix := &Index{Backend: be, Extent: e, Attr: is.Attr, attrIdx: ai, Clustered: is.Clustered, stats: stats}
			if _, dup := sn.indexes[be.ID()]; dup {
				return nil, fmt.Errorf("engine: duplicate index id %d in snapshot state", be.ID())
			}
			e.indexes = append(e.indexes, ix)
			sn.indexes[be.ID()] = ix
			if sn.indexBackend == "" {
				sn.indexBackend = be.Kind()
			}
		}
		sn.extents[es.Name] = e
	}
	if len(st.Roots) > 0 {
		sn.roots = make(map[string]storage.Rid, len(st.Roots))
		for _, r := range st.Roots {
			sn.roots[r.Name] = r.Rid
		}
	}
	for _, rs := range st.Rels {
		parent, ok := sn.extents[rs.Parent]
		if !ok {
			return nil, fmt.Errorf("%w extent %q in relationship", ErrUnknown, rs.Parent)
		}
		child, ok := sn.extents[rs.Child]
		if !ok {
			return nil, fmt.Errorf("%w extent %q in relationship", ErrUnknown, rs.Child)
		}
		si := parent.Class.AttrIndex(rs.SetAttr)
		if si < 0 || parent.Class.Attrs[si].Kind != object.KindSet {
			return nil, fmt.Errorf("engine: %s.%s is not a set attribute", parent.Class.Name, rs.SetAttr)
		}
		ri := child.Class.AttrIndex(rs.RefAttr)
		if ri < 0 || child.Class.Attrs[ri].Kind != object.KindRef {
			return nil, fmt.Errorf("engine: %s.%s is not a reference attribute", child.Class.Name, rs.RefAttr)
		}
		sn.rels = append(sn.rels, &Relationship{
			Parent: parent, SetAttr: rs.SetAttr, Child: child, RefAttr: rs.RefAttr,
			setIdx: si, refIdx: ri,
		})
	}
	return sn, nil
}
