package histogram

import "testing"

func BenchmarkBuild(b *testing.B) {
	base := make([]int64, 100000)
	for i := range base {
		base[i] = int64(i * 2654435761 % 1000000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := make([]int64, len(base))
		copy(keys, base)
		if Build(keys, 64) == nil {
			b.Fatal("nil histogram")
		}
	}
}

func BenchmarkSelectivity(b *testing.B) {
	keys := make([]int64, 100000)
	for i := range keys {
		keys[i] = int64(i)
	}
	h := Build(keys, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Selectivity(int64(i%50000), int64(i%50000+10000)) < 0 {
			b.Fatal("negative")
		}
	}
}
