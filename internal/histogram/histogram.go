// Package histogram implements equi-depth histograms over integer keys —
// the statistics the paper set out to identify ("Our first task was to
// find out what statistics the system should maintain and how to
// incorporate them into a cost model", §2). The planner uses them for
// selectivity estimation where a uniform min/max assumption would be wrong.
package histogram

import (
	"fmt"
	"sort"
	"strings"
)

// bucket summarizes the keys in [lo, hi). Buckets are anchored at actual
// key values (hi is one past the bucket's largest key), so gaps between
// buckets estimate to zero instead of being smeared over.
type bucket struct {
	lo, hi int64
	count  int64
}

// Histogram is an equi-depth histogram: bucket boundaries chosen so each
// bucket holds (about) the same number of keys, never splitting a run of
// duplicates. Within a bucket, keys are assumed uniform.
type Histogram struct {
	buckets []bucket
	total   int64
}

// Build constructs a histogram with up to buckets buckets from keys. The
// slice is sorted in place. An empty input yields a well-defined empty
// histogram — zero buckets, zero total, zero Min/Max — not nil, so
// callers may chain accessors without a guard.
func Build(keys []int64, buckets int) *Histogram {
	if len(keys) == 0 {
		return &Histogram{}
	}
	if buckets < 1 {
		buckets = 1
	}
	if buckets > len(keys) {
		buckets = len(keys)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	h := &Histogram{total: int64(len(keys))}
	per := len(keys) / buckets
	if per < 1 {
		per = 1
	}
	start := 0
	for start < len(keys) {
		end := start + per
		if end >= len(keys) {
			end = len(keys)
		} else {
			// Never split a run of duplicates across buckets.
			for end < len(keys) && keys[end] == keys[end-1] {
				end++
			}
		}
		h.buckets = append(h.buckets, bucket{
			lo:    keys[start],
			hi:    keys[end-1] + 1,
			count: int64(end - start),
		})
		start = end
	}
	return h
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int {
	if h == nil {
		return 0
	}
	return len(h.buckets)
}

// Total returns the number of keys summarized.
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Min and Max return the key range covered; zero when the histogram is
// nil or summarizes no keys.
func (h *Histogram) Min() int64 {
	if h == nil || len(h.buckets) == 0 {
		return 0
	}
	return h.buckets[0].lo
}

func (h *Histogram) Max() int64 {
	if h == nil || len(h.buckets) == 0 {
		return 0
	}
	return h.buckets[len(h.buckets)-1].hi - 1
}

// EstimateRange estimates how many keys fall in [lo, hi), interpolating
// uniformly within partially covered buckets.
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if h == nil || hi <= lo {
		return 0
	}
	var est float64
	for _, b := range h.buckets {
		l, r := maxi(lo, b.lo), mini(hi, b.hi)
		if r <= l {
			continue
		}
		est += float64(b.count) * float64(r-l) / float64(b.hi-b.lo)
	}
	return est
}

// Selectivity estimates the fraction of keys in [lo, hi).
func (h *Histogram) Selectivity(lo, hi int64) float64 {
	if h == nil || h.total == 0 {
		return 0
	}
	s := h.EstimateRange(lo, hi) / float64(h.total)
	if s > 1 {
		return 1
	}
	return s
}

// String renders the buckets for diagnostics; empty for a nil or empty
// histogram.
func (h *Histogram) String() string {
	if h == nil {
		return ""
	}
	var sb strings.Builder
	for i, b := range h.buckets {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "[%d,%d):%d", b.lo, b.hi, b.count)
	}
	return sb.String()
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
