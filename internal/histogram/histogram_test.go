package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformKeys(t *testing.T) {
	keys := make([]int64, 10000)
	for i := range keys {
		keys[i] = int64(i)
	}
	h := Build(keys, 32)
	if h.Total() != 10000 || h.Min() != 0 || h.Max() != 9999 {
		t.Fatalf("summary: total=%d min=%d max=%d", h.Total(), h.Min(), h.Max())
	}
	if got := h.Selectivity(0, 1000); math.Abs(got-0.1) > 0.02 {
		t.Fatalf("sel[0,1000) = %v, want ≈0.1", got)
	}
	if got := h.Selectivity(0, 10000); math.Abs(got-1) > 1e-9 {
		t.Fatalf("full-range sel = %v", got)
	}
	if got := h.Selectivity(20000, 30000); got != 0 {
		t.Fatalf("out-of-range sel = %v", got)
	}
}

func TestSkewedKeysBeatUniformAssumption(t *testing.T) {
	// 90% of keys are tiny (0..99), 10% spread to 1e6. The uniform
	// min/max assumption estimates sel[0,100) ≈ 0.0001; the histogram
	// must see ≈0.9.
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 20000)
	for i := range keys {
		if i%10 != 0 {
			keys[i] = int64(rng.Intn(100))
		} else {
			keys[i] = int64(rng.Intn(1_000_000))
		}
	}
	h := Build(keys, 64)
	got := h.Selectivity(0, 100)
	if got < 0.85 || got > 0.95 {
		t.Fatalf("skewed sel[0,100) = %v, want ≈0.9", got)
	}
	uniform := 100.0 / float64(h.Max()-h.Min()+1)
	if got < uniform*100 {
		t.Fatalf("histogram (%v) not far from uniform estimate (%v)", got, uniform)
	}
}

func TestDuplicateRunsNotSplit(t *testing.T) {
	// 5000 copies of one key plus a few others: every bucket boundary
	// must be a real key value, so the big run stays estimable.
	keys := make([]int64, 0, 5010)
	for i := 0; i < 5000; i++ {
		keys = append(keys, 42)
	}
	for i := 0; i < 10; i++ {
		keys = append(keys, int64(100+i))
	}
	h := Build(keys, 16)
	if got := h.EstimateRange(42, 43); math.Abs(got-5000) > 1 {
		t.Fatalf("point estimate of the run = %v, want 5000", got)
	}
	if got := h.EstimateRange(100, 110); math.Abs(got-10) > 1 {
		t.Fatalf("tail estimate = %v, want 10", got)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if h0 := Build(nil, 8); h0 == nil || h0.Buckets() != 0 {
		t.Fatalf("empty input should give an empty histogram, got %v", h0)
	}
	var nilH *Histogram
	if nilH.Selectivity(0, 10) != 0 || nilH.EstimateRange(0, 10) != 0 {
		t.Fatal("nil histogram estimates must be 0")
	}
	h := Build([]int64{7}, 8)
	if h.Buckets() != 1 || h.Total() != 1 {
		t.Fatalf("single key: %d buckets, total %d", h.Buckets(), h.Total())
	}
	if got := h.EstimateRange(7, 8); got != 1 {
		t.Fatalf("single-key estimate = %v", got)
	}
	if h.Selectivity(8, 8) != 0 {
		t.Fatal("empty range")
	}
	if h.String() == "" {
		t.Fatal("String empty")
	}
}

// Property: full-range estimates equal the total, and estimates are
// monotone in the range.
func TestEstimateProperties(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%2000) + 1
		keys := make([]int64, size)
		for i := range keys {
			keys[i] = int64(rng.Intn(5000)) - 2500
		}
		h := Build(keys, 24)
		full := h.EstimateRange(h.Min(), h.Max()+1)
		if math.Abs(full-float64(size)) > 1e-6 {
			return false
		}
		// Monotonicity over nested ranges.
		lo, hi := int64(-1000), int64(1000)
		inner := h.EstimateRange(lo+100, hi-100)
		outer := h.EstimateRange(lo, hi)
		return inner <= outer+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndNilHistogram(t *testing.T) {
	// An empty key slice must yield a usable empty histogram, not a nil
	// whose accessors panic.
	h := Build(nil, 8)
	if h == nil {
		t.Fatal("Build(nil) returned nil, want empty histogram")
	}
	if h.Buckets() != 0 || h.Total() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: buckets=%d total=%d min=%d max=%d",
			h.Buckets(), h.Total(), h.Min(), h.Max())
	}
	if s := h.String(); s != "" {
		t.Fatalf("empty histogram String() = %q", s)
	}
	if got := h.EstimateRange(0, 100); got != 0 {
		t.Fatalf("empty EstimateRange = %v", got)
	}
	if got := h.Selectivity(0, 100); got != 0 {
		t.Fatalf("empty Selectivity = %v", got)
	}
	if h2 := Build([]int64{}, 0); h2 == nil || h2.Buckets() != 0 {
		t.Fatalf("Build(empty, 0) = %v", h2)
	}

	// Accessors are defined on a nil receiver too — old callers that kept
	// the nil-means-absent convention must not crash.
	var hn *Histogram
	if hn.Buckets() != 0 || hn.Total() != 0 || hn.Min() != 0 || hn.Max() != 0 {
		t.Fatal("nil receiver accessors not zero")
	}
	if hn.String() != "" || hn.EstimateRange(0, 10) != 0 || hn.Selectivity(0, 10) != 0 {
		t.Fatal("nil receiver estimators not zero")
	}
}

func TestSingleKeyHistogram(t *testing.T) {
	h := Build([]int64{42}, 8)
	if h.Buckets() != 1 || h.Total() != 1 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("single-key: buckets=%d total=%d min=%d max=%d",
			h.Buckets(), h.Total(), h.Min(), h.Max())
	}
	if got := h.Selectivity(42, 43); math.Abs(got-1) > 1e-9 {
		t.Fatalf("sel[42,43) = %v, want 1", got)
	}
}
