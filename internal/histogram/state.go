package histogram

import "fmt"

// BucketState is the serializable form of one equi-depth bucket.
type BucketState struct {
	Lo, Hi int64
	Count  int64
}

// State exports the histogram's buckets for persistence. A nil histogram
// exports nil.
func (h *Histogram) State() []BucketState {
	if h == nil {
		return nil
	}
	out := make([]BucketState, len(h.buckets))
	for i, b := range h.buckets {
		out[i] = BucketState{Lo: b.lo, Hi: b.hi, Count: b.count}
	}
	return out
}

// Restore rebuilds a histogram from exported buckets (nil in, nil out).
// The state is validated — inverted or negative buckets fail with an
// error — so a corrupt snapshot cannot smuggle in NaN selectivities.
func Restore(buckets []BucketState) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, nil
	}
	h := &Histogram{buckets: make([]bucket, len(buckets))}
	for i, b := range buckets {
		if b.Hi <= b.Lo {
			return nil, fmt.Errorf("histogram: bucket %d inverted [%d,%d)", i, b.Lo, b.Hi)
		}
		if b.Count < 0 {
			return nil, fmt.Errorf("histogram: bucket %d has negative count %d", i, b.Count)
		}
		if i > 0 && b.Lo < buckets[i-1].Hi {
			return nil, fmt.Errorf("histogram: bucket %d overlaps its predecessor", i)
		}
		h.buckets[i] = bucket{lo: b.Lo, hi: b.Hi, count: b.Count}
		h.total += b.Count
	}
	return h, nil
}
