package index

import (
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// Backend is the pluggable index contract: everything the engine, the
// selection access paths, the joins and the planner need from an index
// structure, with every page touched through the storage.Pager passed per
// call. One Backend instance is shared read-only across a session's chunk
// forks (engine.ReadFork shares the catalog), so read methods must be safe
// for concurrent use when each caller brings its own pager; mutations
// (Insert, Delete) happen only on a session's primary pager, never
// concurrently with reads of the same fork.
//
// Cost accounting is page-granular and flows through the pager: page reads
// and writes are charged by the cache hierarchy the pager wraps, and
// CPU-level events (key comparisons, bloom probes) are charged to the
// pager's meter via the CostSource hook. A Backend never holds a meter of
// its own — the same instance serves many forks with private meters.
//
// Scan and ScanBatched deliver entries in ascending (key, rid) order for
// the half-open key range lo ≤ key < hi, whatever the physical layout:
// that shared order is what makes query tables byte-identical across
// backends. ScanBatched must also deliver each batch before any page read
// that the batch's consumer could observe out of order — the leaf-boundary
// flush rule of the B+-tree, generalized (see DESIGN.md).
type Backend interface {
	// Kind names the registered implementation ("btree", "disk", "lsm").
	Kind() string
	// ID is the engine-assigned index id (what object headers reference).
	ID() uint32
	// Name is the "Extent.attr" display name.
	Name() string
	// Len is the number of live entries.
	Len() int
	// Pages is the number of pages the structure occupies.
	Pages() int
	// Height is the number of levels (tiers + memtable for an LSM).
	Height() int

	Scan(p storage.Pager, lo, hi int64, fn func(Entry) (bool, error)) error
	ScanBatched(p storage.Pager, lo, hi int64, capacity int, fn func([]Entry) (bool, error)) error
	Lookup(p storage.Pager, key int64) ([]storage.Rid, error)
	Insert(p storage.Pager, e Entry) error
	Delete(p storage.Pager, e Entry) (bool, error)
	MinKey(p storage.Pager) (int64, bool, error)
	MaxKey(p storage.Pager) (int64, bool, error)
	Validate(p storage.Pager) error

	// Clone returns an independent descriptor for a forked session. Pages
	// live on the fork's disk and are shared (or copied on write) there;
	// Clone copies only bookkeeping, so read forks stay zero-copy. Any
	// mutable in-memory component (an LSM memtable) must go copy-on-write.
	Clone() Backend

	// Counters snapshots the per-backend counters. They accumulate across
	// every fork sharing this instance (reads from chunk forks included),
	// so implementations keep them atomically.
	Counters() BackendCounters

	// State returns the serializable descriptor for persistence.
	State() BackendState
}

// CostSource is implemented by pagers that expose their session meter
// (cache.Client does). Backends assert it per call to charge CPU-level
// events — comparisons, bloom probes — to whichever fork is driving them;
// a bare storage.Disk satisfies Pager without it, and then only page I/O
// is accounted.
type CostSource interface {
	Costs() *sim.Meter
}

// MeterOf returns p's meter when p can charge CPU events, else nil. The
// nil-check idiom at call sites keeps backends usable over a raw Disk.
func MeterOf(p storage.Pager) *sim.Meter {
	if cs, ok := p.(CostSource); ok {
		return cs.Costs()
	}
	return nil
}

// BackendCounters is a snapshot of the per-backend event counters the
// wire Stats and the ablation experiment surface. All five are zero for
// the in-memory B+-tree oracle except PagesWritten.
type BackendCounters struct {
	// BloomHits counts bloom probes that passed (the SSTable had to be
	// searched); BloomMisses counts probes that proved absence — each miss
	// is an SSTable read skipped, charged as a probe, not a read.
	BloomHits   int64
	BloomMisses int64
	// SSTablesRead counts SSTables actually searched by point lookups.
	SSTablesRead int64
	// Compactions counts size-tiered merges; their I/O bills to the
	// pager (and so the wave) that triggered them.
	Compactions int64
	// PagesWritten counts page writes issued by the structure itself
	// (node writes, flushes, compaction output).
	PagesWritten int64
}

// Add accumulates o into c (commutative, for canonical-order merges).
func (c *BackendCounters) Add(o BackendCounters) {
	c.BloomHits += o.BloomHits
	c.BloomMisses += o.BloomMisses
	c.SSTablesRead += o.SSTablesRead
	c.Compactions += o.Compactions
	c.PagesWritten += o.PagesWritten
}

// BackendState is the serializable descriptor of any backend: the kind
// tag plus the union of per-kind state. It lives in this package (not
// internal/backend) so the Backend interface can name it without an
// import cycle; the backend package's Restore rebuilds the right
// implementation from it.
type BackendState struct {
	Kind string
	// Tree carries the node bookkeeping for the "btree" and "disk" kinds.
	Tree TreeState
	// Meta is the "disk" kind's metadata page (InvalidPage otherwise).
	Meta storage.PageID
	// LSM carries the "lsm" kind's state; nil for the B+-tree kinds.
	LSM *LSMState
}

// LSMState is the serializable half of an LSM backend: identity, the
// unflushed memtable, and every live SSTable's descriptor. SSTable pages
// themselves persist with the snapshot's page image.
type LSMState struct {
	ID   uint32
	Name string
	Len  int // live entries net of tombstones
	Seq  uint32
	Mem  []MemEntryState
	Tabs []SSTableState
}

// MemEntryState is one memtable entry: a (key, rid) pair plus its
// tombstone flag.
type MemEntryState struct {
	Key  int64
	Rid  storage.Rid
	Tomb bool
}

// SSTableState describes one immutable sorted run: its pages (contiguous
// from Start — flushes and compactions allocate with nothing interleaved),
// the key range, the per-page fence keys for binary search, and the bloom
// filter bits. Fences and bloom are persisted rather than rebuilt so a
// loaded snapshot charges no I/O before its first query.
type SSTableState struct {
	Seq    uint32
	Tier   int
	Start  storage.PageID
	Pages  int
	Count  int
	MinKey int64
	MaxKey int64
	Fences []int64
	Bloom  []uint64
}
