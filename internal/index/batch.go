package index

import "treebench/internal/storage"

// ScanBatched visits entries with lo ≤ key < hi in key order, delivering
// them in slices of at most capacity entries. It performs exactly the page
// reads Scan performs, in the same order: a sub-batch never spans a leaf
// boundary, so every delivery happens while the leaf that produced it is
// the most recently read page — batched consumers rely on that to keep
// their record-fetch traffic identical to the scalar path. The slice passed
// to fn is reused between calls; fn returning false stops the scan.
func (t *Tree) ScanBatched(p storage.Pager, lo, hi int64, capacity int, fn func([]Entry) (bool, error)) error {
	if lo >= hi {
		return nil
	}
	if capacity < 1 {
		capacity = 1
	}
	id, buf, err := t.findLeaf(p, lo)
	if err != nil {
		return err
	}
	batch := make([]Entry, 0, capacity)
	for {
		n := nodeCount(buf)
		for i := 0; i < n; i++ {
			e := leafEntry(buf, i)
			if e.Key < lo {
				continue
			}
			if e.Key >= hi {
				return flushEntries(batch, fn)
			}
			batch = append(batch, e)
			if len(batch) >= capacity {
				ok, err := fn(batch)
				if err != nil || !ok {
					return err
				}
				batch = batch[:0]
			}
		}
		// Leaf boundary: deliver what this leaf produced before the next
		// leaf read replaces the current page at the cache front.
		if len(batch) > 0 {
			ok, err := fn(batch)
			if err != nil || !ok {
				return err
			}
			batch = batch[:0]
		}
		next := nextLeaf(buf)
		if next == storage.InvalidPage {
			return nil
		}
		id = next
		buf, err = p.Read(id)
		if err != nil {
			return err
		}
	}
}

func flushEntries(batch []Entry, fn func([]Entry) (bool, error)) error {
	if len(batch) == 0 {
		return nil
	}
	_, err := fn(batch)
	return err
}
