package index

import (
	"testing"

	"treebench/internal/storage"
)

func benchTree(b *testing.B, n int) (*Tree, *storage.Store) {
	b.Helper()
	s := storage.NewStore(0)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Rid: ridFor(i)}
	}
	tr, err := Build(s.Disk, 1, "bench", entries)
	if err != nil {
		b.Fatal(err)
	}
	return tr, s
}

func BenchmarkTreeInsert(b *testing.B) {
	s := storage.NewStore(0)
	tr, _ := New(s.Disk, 1, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(s.Disk, Entry{Key: int64(i * 2654435761 % 1000000), Rid: ridFor(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeLookup(b *testing.B) {
	tr, s := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Lookup(s.Disk, int64(i%100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeRangeScan(b *testing.B) {
	tr, s := benchTree(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Scan(s.Disk, 0, 10000, func(Entry) (bool, error) { n++; return true, nil })
		if n != 10000 {
			b.Fatal(n)
		}
	}
}
