// Package index implements B+-tree indexes over integer keys, storing
// object Rids in the leaves ("both indexes are clustered and store only
// object identifiers in their leaves (i.e., no object properties)", §5).
//
// Index pages live on the same disk as data and are read through the same
// cache hierarchy, so an index scan pays I/O for the index structure itself
// — the effect §4.2 observes when an unclustered index reads more pages
// than a full scan. Whether an index is "clustered" is emergent: an index
// whose key order matches the collection's physical order (upin, mrn in
// class clustering) returns Rids sequentially; one on a random key (num)
// returns them scattered.
package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"treebench/internal/storage"
)

// Node layout. Index pages are raw (not slotted):
//
//	0      kind     byte (0 = leaf, 1 = internal)
//	1..3   count    uint16
//	4..8   next     PageID (leaves: right sibling; internal: unused)
//	8..16  reserved
//	16..   entries
//
// Leaf entry: key int64 + Rid = 16 bytes ⇒ 255 per leaf.
// Internal entry: key int64 + child PageID = 12 bytes, preceded by one
// leftmost child PageID at offset 16 ⇒ 255 separators.
const (
	nodeHeaderLen = 16
	leafEntryLen  = 8 + storage.EncodedRidLen
	innerEntryLen = 8 + 4

	// LeafFanout and InnerFanout are exported for the planners' cost
	// arithmetic.
	LeafFanout  = (storage.PageSize - nodeHeaderLen) / leafEntryLen
	InnerFanout = (storage.PageSize - nodeHeaderLen - 4) / innerEntryLen
)

// ErrEmpty is returned when operating on an index with no root.
var ErrEmpty = errors.New("index: empty")

// Entry is one (key, rid) pair.
type Entry struct {
	Key int64
	Rid storage.Rid
}

// Tree is a B+-tree rooted at a page. The zero Tree is invalid; use New or
// Build.
type Tree struct {
	ID   uint32
	Name string

	root   storage.PageID
	height int
	pages  int // page count, for reporting
	n      int // entry count
}

// New creates an empty tree (a single empty leaf).
func New(p storage.Pager, id uint32, name string) (*Tree, error) {
	rootID, buf, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	initNode(buf, true)
	if err := p.Write(rootID); err != nil {
		return nil, err
	}
	return &Tree{ID: id, Name: name, root: rootID, height: 1, pages: 1}, nil
}

// Root returns the root page id.
func (t *Tree) Root() storage.PageID { return t.root }

// Clone returns an independent copy of the tree's in-memory descriptor for
// a forked session. The node pages themselves live on the session's disk
// and are shared (or copied on write) there; only the root/size bookkeeping
// needs to be private per fork.
func (t *Tree) Clone() *Tree {
	c := *t
	return &c
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.n }

// Pages returns the number of pages the tree occupies.
func (t *Tree) Pages() int { return t.pages }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

func initNode(buf []byte, leaf bool) {
	for i := 0; i < nodeHeaderLen; i++ {
		buf[i] = 0
	}
	if leaf {
		buf[0] = 0
	} else {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[4:8], uint32(storage.InvalidPage))
}

func isLeaf(buf []byte) bool     { return buf[0] == 0 }
func nodeCount(buf []byte) int   { return int(binary.LittleEndian.Uint16(buf[1:3])) }
func setCount(buf []byte, n int) { binary.LittleEndian.PutUint16(buf[1:3], uint16(n)) }
func nextLeaf(buf []byte) storage.PageID {
	return storage.PageID(binary.LittleEndian.Uint32(buf[4:8]))
}
func setNextLeaf(buf []byte, id storage.PageID) {
	binary.LittleEndian.PutUint32(buf[4:8], uint32(id))
}

func leafEntry(buf []byte, i int) Entry {
	off := nodeHeaderLen + i*leafEntryLen
	key := int64(binary.LittleEndian.Uint64(buf[off : off+8]))
	rid, _ := storage.DecodeRid(buf[off+8:])
	return Entry{Key: key, Rid: rid}
}

func setLeafEntry(buf []byte, i int, e Entry) {
	off := nodeHeaderLen + i*leafEntryLen
	binary.LittleEndian.PutUint64(buf[off:off+8], uint64(e.Key))
	e.Rid.Encode(buf[off+8 : off+8 : off+8+storage.EncodedRidLen])
}

// Internal node accessors. child(0) sits at offset 16; separator i and
// child(i+1) follow.
func innerChild(buf []byte, i int) storage.PageID {
	if i == 0 {
		return storage.PageID(binary.LittleEndian.Uint32(buf[nodeHeaderLen : nodeHeaderLen+4]))
	}
	off := nodeHeaderLen + 4 + (i-1)*innerEntryLen + 8
	return storage.PageID(binary.LittleEndian.Uint32(buf[off : off+4]))
}

func innerKey(buf []byte, i int) int64 {
	off := nodeHeaderLen + 4 + i*innerEntryLen
	return int64(binary.LittleEndian.Uint64(buf[off : off+8]))
}

func setInnerChild0(buf []byte, id storage.PageID) {
	binary.LittleEndian.PutUint32(buf[nodeHeaderLen:nodeHeaderLen+4], uint32(id))
}

func setInnerEntry(buf []byte, i int, key int64, child storage.PageID) {
	off := nodeHeaderLen + 4 + i*innerEntryLen
	binary.LittleEndian.PutUint64(buf[off:off+8], uint64(key))
	binary.LittleEndian.PutUint32(buf[off+8:off+12], uint32(child))
}

// Build bulk-loads a tree from entries (not necessarily sorted; they are
// sorted here). This is the "create the index once the collection is
// populated" path.
func Build(p storage.Pager, id uint32, name string, entries []Entry) (*Tree, error) {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key != sorted[j].Key {
			return sorted[i].Key < sorted[j].Key
		}
		return sorted[i].Rid.Less(sorted[j].Rid)
	})
	t := &Tree{ID: id, Name: name}

	// Fill leaves to ~90% so later inserts do not split immediately.
	perLeaf := LeafFanout * 9 / 10
	if perLeaf < 1 {
		perLeaf = 1
	}
	type levelNode struct {
		first int64
		page  storage.PageID
	}
	var leaves []levelNode
	var prevLeafBuf []byte
	for lo := 0; lo == 0 || lo < len(sorted); lo += perLeaf {
		hi := lo + perLeaf
		if hi > len(sorted) {
			hi = len(sorted)
		}
		id, buf, err := p.Alloc()
		if err != nil {
			return nil, err
		}
		initNode(buf, true)
		for i, e := range sorted[lo:hi] {
			setLeafEntry(buf, i, e)
		}
		setCount(buf, hi-lo)
		if prevLeafBuf != nil {
			setNextLeaf(prevLeafBuf, id)
		}
		if err := p.Write(id); err != nil {
			return nil, err
		}
		first := int64(0)
		if hi > lo {
			first = sorted[lo].Key
		}
		leaves = append(leaves, levelNode{first: first, page: id})
		prevLeafBuf = buf
		t.pages++
		if len(sorted) == 0 {
			break
		}
	}
	t.n = len(sorted)
	t.height = 1

	// Build internal levels bottom-up.
	level := leaves
	perInner := InnerFanout * 9 / 10
	if perInner < 2 {
		perInner = 2
	}
	for len(level) > 1 {
		var upper []levelNode
		for lo := 0; lo < len(level); lo += perInner {
			hi := lo + perInner
			if hi > len(level) {
				hi = len(level)
			}
			id, buf, err := p.Alloc()
			if err != nil {
				return nil, err
			}
			initNode(buf, false)
			group := level[lo:hi]
			setInnerChild0(buf, group[0].page)
			for i := 1; i < len(group); i++ {
				setInnerEntry(buf, i-1, group[i].first, group[i].page)
			}
			setCount(buf, len(group)-1)
			if err := p.Write(id); err != nil {
				return nil, err
			}
			upper = append(upper, levelNode{first: group[0].first, page: id})
			t.pages++
		}
		level = upper
		t.height++
	}
	t.root = level[0].page
	return t, nil
}

// findLeaf descends to the leftmost leaf that may contain key. Duplicate
// runs may straddle a split, leaving entries equal to a separator on its
// left side, so at an equal separator the descent goes left; the leaf chain
// covers the rest.
func (t *Tree) findLeaf(p storage.Pager, key int64) (storage.PageID, []byte, error) {
	id := t.root
	for {
		buf, err := p.Read(id)
		if err != nil {
			return 0, nil, err
		}
		if isLeaf(buf) {
			return id, buf, nil
		}
		n := nodeCount(buf)
		// Find first separator ≥ key; descend into the child before it.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if innerKey(buf, mid) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		id = innerChild(buf, lo)
	}
}

// Scan visits entries with lo ≤ key < hi in key order. fn returning false
// stops the scan.
func (t *Tree) Scan(p storage.Pager, lo, hi int64, fn func(Entry) (bool, error)) error {
	if lo >= hi {
		return nil
	}
	id, buf, err := t.findLeaf(p, lo)
	if err != nil {
		return err
	}
	for {
		n := nodeCount(buf)
		for i := 0; i < n; i++ {
			e := leafEntry(buf, i)
			if e.Key < lo {
				continue
			}
			if e.Key >= hi {
				return nil
			}
			ok, err := fn(e)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		next := nextLeaf(buf)
		if next == storage.InvalidPage {
			return nil
		}
		id = next
		buf, err = p.Read(id)
		if err != nil {
			return err
		}
	}
}

// Lookup returns the rids stored under key.
func (t *Tree) Lookup(p storage.Pager, key int64) ([]storage.Rid, error) {
	var out []storage.Rid
	err := t.Scan(p, key, key+1, func(e Entry) (bool, error) {
		out = append(out, e.Rid)
		return true, nil
	})
	return out, err
}

// Insert adds one entry, splitting nodes as needed. Duplicate keys are
// allowed (indexes on non-unique attributes).
func (t *Tree) Insert(p storage.Pager, e Entry) error {
	if t.root == storage.InvalidPage {
		return ErrEmpty
	}
	promoted, newChild, err := t.insertInto(p, t.root, e)
	if err != nil {
		return err
	}
	if newChild != storage.InvalidPage {
		// Root split: grow the tree by one level.
		id, buf, err := p.Alloc()
		if err != nil {
			return err
		}
		initNode(buf, false)
		setInnerChild0(buf, t.root)
		setInnerEntry(buf, 0, promoted, newChild)
		setCount(buf, 1)
		if err := p.Write(id); err != nil {
			return err
		}
		t.root = id
		t.height++
		t.pages++
	}
	t.n++
	return nil
}

// insertInto inserts e under node id. If the node splits, it returns the
// promoted key and the new right sibling's page id; otherwise newChild is
// InvalidPage.
func (t *Tree) insertInto(p storage.Pager, id storage.PageID, e Entry) (promoted int64, newChild storage.PageID, err error) {
	buf, err := p.Read(id)
	if err != nil {
		return 0, storage.InvalidPage, err
	}
	if isLeaf(buf) {
		return t.insertLeaf(p, id, buf, e)
	}
	n := nodeCount(buf)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(buf, mid) <= e.Key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	childPromoted, childNew, err := t.insertInto(p, innerChild(buf, lo), e)
	if err != nil || childNew == storage.InvalidPage {
		return 0, storage.InvalidPage, err
	}
	// Insert (childPromoted, childNew) after position lo-1.
	if n < InnerFanout {
		for i := n; i > lo; i-- {
			k := innerKey(buf, i-1)
			c := innerChild(buf, i)
			setInnerEntry(buf, i, k, c)
		}
		setInnerEntry(buf, lo, childPromoted, childNew)
		setCount(buf, n+1)
		return 0, storage.InvalidPage, p.Write(id)
	}
	// Split the internal node.
	type ic struct {
		key   int64
		child storage.PageID
	}
	entries := make([]ic, 0, n+1)
	for i := 0; i < n; i++ {
		entries = append(entries, ic{innerKey(buf, i), innerChild(buf, i+1)})
	}
	entries = append(entries[:lo], append([]ic{{childPromoted, childNew}}, entries[lo:]...)...)
	mid := len(entries) / 2
	up := entries[mid]

	rightID, rightBuf, err := p.Alloc()
	if err != nil {
		return 0, storage.InvalidPage, err
	}
	initNode(rightBuf, false)
	setInnerChild0(rightBuf, up.child)
	for i, en := range entries[mid+1:] {
		setInnerEntry(rightBuf, i, en.key, en.child)
	}
	setCount(rightBuf, len(entries)-mid-1)
	for i, en := range entries[:mid] {
		setInnerEntry(buf, i, en.key, en.child)
	}
	setCount(buf, mid)
	t.pages++
	if err := p.Write(id); err != nil {
		return 0, storage.InvalidPage, err
	}
	return up.key, rightID, p.Write(rightID)
}

func (t *Tree) insertLeaf(p storage.Pager, id storage.PageID, buf []byte, e Entry) (int64, storage.PageID, error) {
	n := nodeCount(buf)
	// Position by key (stable after equal keys).
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafEntry(buf, mid).Key <= e.Key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if n < LeafFanout {
		for i := n; i > lo; i-- {
			setLeafEntry(buf, i, leafEntry(buf, i-1))
		}
		setLeafEntry(buf, lo, e)
		setCount(buf, n+1)
		return 0, storage.InvalidPage, p.Write(id)
	}
	// Split the leaf.
	entries := make([]Entry, 0, n+1)
	for i := 0; i < n; i++ {
		entries = append(entries, leafEntry(buf, i))
	}
	entries = append(entries[:lo], append([]Entry{e}, entries[lo:]...)...)
	mid := len(entries) / 2

	rightID, rightBuf, err := p.Alloc()
	if err != nil {
		return 0, storage.InvalidPage, err
	}
	initNode(rightBuf, true)
	for i, en := range entries[mid:] {
		setLeafEntry(rightBuf, i, en)
	}
	setCount(rightBuf, len(entries)-mid)
	setNextLeaf(rightBuf, nextLeaf(buf))
	for i, en := range entries[:mid] {
		setLeafEntry(buf, i, en)
	}
	setCount(buf, mid)
	setNextLeaf(buf, rightID)
	t.pages++
	if err := p.Write(id); err != nil {
		return 0, storage.InvalidPage, err
	}
	return entries[mid].Key, rightID, p.Write(rightID)
}

// MinKey returns the smallest key (ok=false if the tree is empty). It
// descends the leftmost spine, paying index-page reads like any access.
func (t *Tree) MinKey(p storage.Pager) (key int64, ok bool, err error) {
	id := t.root
	for {
		buf, err := p.Read(id)
		if err != nil {
			return 0, false, err
		}
		if isLeaf(buf) {
			// The leftmost leaf may be empty after deletions; follow the
			// chain.
			for nodeCount(buf) == 0 {
				next := nextLeaf(buf)
				if next == storage.InvalidPage {
					return 0, false, nil
				}
				buf, err = p.Read(next)
				if err != nil {
					return 0, false, err
				}
			}
			return leafEntry(buf, 0).Key, true, nil
		}
		id = innerChild(buf, 0)
	}
}

// MaxKey returns the largest key (ok=false if the tree is empty).
func (t *Tree) MaxKey(p storage.Pager) (key int64, ok bool, err error) {
	id := t.root
	for {
		buf, err := p.Read(id)
		if err != nil {
			return 0, false, err
		}
		if isLeaf(buf) {
			n := nodeCount(buf)
			if n == 0 {
				return 0, false, nil
			}
			return leafEntry(buf, n-1).Key, true, nil
		}
		id = innerChild(buf, nodeCount(buf))
	}
}

// Delete removes one entry matching (key, rid). It uses lazy deletion (no
// merging); index shrinkage is not a workload the paper exercises.
func (t *Tree) Delete(p storage.Pager, e Entry) (bool, error) {
	id, buf, err := t.findLeaf(p, e.Key)
	if err != nil {
		return false, err
	}
	for {
		n := nodeCount(buf)
		for i := 0; i < n; i++ {
			en := leafEntry(buf, i)
			if en.Key > e.Key {
				return false, nil
			}
			if en.Key == e.Key && en.Rid == e.Rid {
				for j := i; j < n-1; j++ {
					setLeafEntry(buf, j, leafEntry(buf, j+1))
				}
				setCount(buf, n-1)
				t.n--
				return true, p.Write(id)
			}
		}
		next := nextLeaf(buf)
		if next == storage.InvalidPage {
			return false, nil
		}
		id = next
		buf, err = p.Read(id)
		if err != nil {
			return false, err
		}
	}
}

// Validate walks the tree checking structural invariants: key ordering
// within and across leaves, separator consistency, and entry count. The
// separator invariant is the duplicate-tolerant one: keys left of a
// separator s satisfy key ≤ s, keys right of it satisfy key ≥ s. It is
// test/diagnostic support.
func (t *Tree) Validate(p storage.Pager) error {
	count := 0
	var last *int64
	var walk func(id storage.PageID, lo, hi *int64) error
	walk = func(id storage.PageID, lo, hi *int64) error {
		buf, err := p.Read(id)
		if err != nil {
			return err
		}
		if isLeaf(buf) {
			n := nodeCount(buf)
			for i := 0; i < n; i++ {
				k := leafEntry(buf, i).Key
				if lo != nil && k < *lo {
					return fmt.Errorf("index: key %d below separator %d", k, *lo)
				}
				if hi != nil && k > *hi {
					return fmt.Errorf("index: key %d above separator %d", k, *hi)
				}
				if last != nil && k < *last {
					return fmt.Errorf("index: keys out of order: %d after %d", k, *last)
				}
				kk := k
				last = &kk
				count++
			}
			return nil
		}
		n := nodeCount(buf)
		for i := 0; i <= n; i++ {
			var clo, chi *int64
			if i == 0 {
				clo = lo
			} else {
				k := innerKey(buf, i-1)
				clo = &k
			}
			if i == n {
				chi = hi
			} else {
				k := innerKey(buf, i)
				chi = &k
			}
			if err := walk(innerChild(buf, i), clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("index: tree holds %d entries, counter says %d", count, t.n)
	}
	return nil
}
