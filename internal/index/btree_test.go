package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treebench/internal/cache"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

func ridFor(i int) storage.Rid {
	return storage.Rid{Page: storage.PageID(i / 50), Slot: uint16(i % 50)}
}

func collect(t *testing.T, tr *Tree, p storage.Pager, lo, hi int64) []Entry {
	t.Helper()
	var out []Entry
	if err := tr.Scan(p, lo, hi, func(e Entry) (bool, error) {
		out = append(out, e)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBuildAndScan(t *testing.T) {
	s := storage.NewStore(0)
	entries := make([]Entry, 10000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Rid: ridFor(i)}
	}
	// Shuffle: Build must sort.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })

	tr, err := Build(s.Disk, 1, "idx", entries)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(s.Disk); err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr, s.Disk, 0, 10000)
	if len(got) != 10000 {
		t.Fatalf("full scan returned %d", len(got))
	}
	for i, e := range got {
		if e.Key != int64(i) || e.Rid != ridFor(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	// Range scan.
	got = collect(t, tr, s.Disk, 100, 200)
	if len(got) != 100 || got[0].Key != 100 || got[99].Key != 199 {
		t.Fatalf("range scan: %d entries, first %d", len(got), got[0].Key)
	}
	// Tree must be shallow: 10k entries at 229/leaf ≈ 44 leaves, 2 levels.
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2", tr.Height())
	}
}

func TestBuildEmptyAndInsert(t *testing.T) {
	s := storage.NewStore(0)
	tr, err := Build(s.Disk, 1, "idx", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, tr, s.Disk, -1<<62, 1<<62); len(got) != 0 {
		t.Fatalf("empty tree scan: %d entries", len(got))
	}
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(s.Disk, Entry{Key: int64(i * 7 % 1000), Rid: ridFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(s.Disk); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSplitsGrowTree(t *testing.T) {
	s := storage.NewStore(0)
	tr, _ := New(s.Disk, 1, "idx")
	const n = 60000 // forces at least 3 levels through repeated splits
	for i := 0; i < n; i++ {
		if err := tr.Insert(s.Disk, Entry{Key: int64(i), Rid: ridFor(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d after %d sequential inserts", tr.Height(), n)
	}
	if err := tr.Validate(s.Disk); err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr, s.Disk, 0, n)
	if len(got) != n {
		t.Fatalf("scan returned %d, want %d", len(got), n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	s := storage.NewStore(0)
	tr, _ := New(s.Disk, 1, "idx")
	// 500 objects share key 42 (a provider with many patients of one mrn
	// bucket — duplicates must all be retrievable).
	for i := 0; i < 500; i++ {
		tr.Insert(s.Disk, Entry{Key: 42, Rid: ridFor(i)})
	}
	tr.Insert(s.Disk, Entry{Key: 41, Rid: ridFor(9999)})
	tr.Insert(s.Disk, Entry{Key: 43, Rid: ridFor(9998)})
	rids, err := tr.Lookup(s.Disk, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 500 {
		t.Fatalf("Lookup(42) = %d rids, want 500", len(rids))
	}
	if err := tr.Validate(s.Disk); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	s := storage.NewStore(0)
	tr, _ := New(s.Disk, 1, "idx")
	for i := 0; i < 100; i++ {
		tr.Insert(s.Disk, Entry{Key: int64(i), Rid: ridFor(i)})
	}
	ok, err := tr.Delete(s.Disk, Entry{Key: 50, Rid: ridFor(50)})
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	ok, _ = tr.Delete(s.Disk, Entry{Key: 50, Rid: ridFor(50)})
	if ok {
		t.Fatal("double delete succeeded")
	}
	// Deleting a key that exists under a different rid fails.
	ok, _ = tr.Delete(s.Disk, Entry{Key: 51, Rid: ridFor(9999)})
	if ok {
		t.Fatal("deleted wrong rid")
	}
	if rids, _ := tr.Lookup(s.Disk, 50); len(rids) != 0 {
		t.Fatal("key 50 still present")
	}
	if tr.Len() != 99 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(s.Disk); err != nil {
		t.Fatal(err)
	}
}

func TestScanEarlyStopAndEmptyRange(t *testing.T) {
	s := storage.NewStore(0)
	entries := make([]Entry, 1000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Rid: ridFor(i)}
	}
	tr, _ := Build(s.Disk, 1, "idx", entries)
	count := 0
	tr.Scan(s.Disk, 0, 1000, func(Entry) (bool, error) { count++; return count < 10, nil })
	if count != 10 {
		t.Fatalf("early stop at %d", count)
	}
	if got := collect(t, tr, s.Disk, 500, 500); len(got) != 0 {
		t.Fatal("empty range returned entries")
	}
	if got := collect(t, tr, s.Disk, 2000, 3000); len(got) != 0 {
		t.Fatal("out-of-range scan returned entries")
	}
}

// TestIndexScanPaysIO verifies the §4.2 observation: scanning through an
// index charges I/O for the index pages themselves.
func TestIndexScanPaysIO(t *testing.T) {
	disk := storage.NewDisk(0)
	meter := sim.NewMeter(sim.DefaultCostModel())
	srv := cache.NewServer(disk, meter, 64*storage.PageSize)
	cli := cache.NewClient(srv, meter, 64*storage.PageSize)

	entries := make([]Entry, 20000)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), Rid: ridFor(i)}
	}
	tr, err := Build(cli, 1, "idx", entries)
	if err != nil {
		t.Fatal(err)
	}
	cli.Shutdown()
	meter.Reset()
	got := collect(t, tr, cli, 0, 20000)
	if len(got) != 20000 {
		t.Fatalf("scan = %d", len(got))
	}
	// ≈88 leaves at 90% of 255/leaf, plus the root.
	if meter.N.DiskReads < 85 || meter.N.DiskReads > 100 {
		t.Fatalf("cold index scan read %d pages, want ≈89", meter.N.DiskReads)
	}
}

// Property: Build + random Inserts agree with a shadow model over random
// key multisets.
func TestTreeMatchesShadowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := storage.NewStore(0)
		n := 200 + rng.Intn(800)
		built := make([]Entry, n)
		shadow := map[int64]int{}
		for i := range built {
			k := int64(rng.Intn(100)) // many duplicates
			built[i] = Entry{Key: k, Rid: ridFor(i)}
			shadow[k]++
		}
		tr, err := Build(s.Disk, 1, "p", built)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			k := int64(rng.Intn(100))
			if err := tr.Insert(s.Disk, Entry{Key: k, Rid: ridFor(10000 + i)}); err != nil {
				return false
			}
			shadow[k]++
		}
		if tr.Validate(s.Disk) != nil {
			return false
		}
		got := map[int64]int{}
		tr.Scan(s.Disk, -1, 200, func(e Entry) (bool, error) {
			got[e.Key]++
			return true, nil
		})
		if len(got) != len(shadow) {
			return false
		}
		for k, v := range shadow {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
