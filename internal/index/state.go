package index

import (
	"fmt"

	"treebench/internal/storage"
)

// TreeState is the serializable descriptor of a B+-tree. The node pages
// themselves live in the snapshot's page image; only the root/size
// bookkeeping needs to travel alongside it.
type TreeState struct {
	ID     uint32
	Name   string
	Root   storage.PageID
	Height int
	Pages  int
	Len    int
}

// State exports the tree's descriptor.
func (t *Tree) State() TreeState {
	return TreeState{ID: t.ID, Name: t.Name, Root: t.root, Height: t.height, Pages: t.pages, Len: t.n}
}

// Restore rebuilds a tree descriptor over an existing page image. numPages
// is the image size, used to reject a root beyond it; deeper structural
// checks are Validate's job (and the page image's checksum's).
func Restore(st TreeState, numPages int) (*Tree, error) {
	if int(st.Root) >= numPages {
		return nil, fmt.Errorf("index: %s root page %d beyond image (%d pages)", st.Name, st.Root, numPages)
	}
	if st.Height < 1 || st.Pages < 1 || st.Len < 0 {
		return nil, fmt.Errorf("index: %s has impossible shape (height %d, %d pages, %d entries)",
			st.Name, st.Height, st.Pages, st.Len)
	}
	return &Tree{ID: st.ID, Name: st.Name, root: st.Root, height: st.Height, pages: st.Pages, n: st.Len}, nil
}

// FromState rebuilds a tree descriptor without bounds validation, for
// callers that already trust the source — the disk backend decoding the
// metadata page it wrote itself. Restore remains the entry point for
// untrusted snapshot state.
func FromState(st TreeState) *Tree {
	return &Tree{ID: st.ID, Name: st.Name, root: st.Root, height: st.Height, pages: st.Pages, n: st.Len}
}
