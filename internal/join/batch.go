// Vectorized variants of the chunked join strategies: index scans deliver
// leaf-sized entry batches, record fetches go through run-reusing
// object.Fetchers, and the per-object CPU charges accumulate into one
// sim.BatchCharges delta merged per batch. The hash-region traffic
// (Grow/RandomWrite/RandomRead) stays per entry, in entry order, inside the
// batch loops — a region's swap arithmetic depends on its size at each call,
// so batching may not reorder it — which keeps every simulated number
// byte-identical to the scalar loops at any batch size.
//
// NOJOIN and VNOJOIN keep their scalar loops: NOJOIN is deliberately
// sequential (see runNOJOIN), and both navigate record-at-a-time through
// the shared handle table whose cache-hit profile is the experiment.
package join

import (
	"treebench/internal/collection"
	"treebench/internal/engine"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// runNLBatched is runNL over provider entry batches and client rid batches.
// Provider fetches always re-read (collection chunks and patient pages
// intervene between providers); patient fetches reuse page runs within one
// collection chunk's delivery — under composition clustering that is where
// almost all of NL's per-object pager work collapses.
func runNLBatched(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	k1 := q.K1
	res := &Result{}
	fanout := int64(1)
	if env.NumParents > 0 && env.NumChildren > env.NumParents {
		fanout = int64(env.NumChildren / env.NumParents)
	}
	bsize := db.Batch()
	ranges := chunkScan(1, q.K2, fanout)
	parts := make([]*Result, len(ranges))
	err = db.RunChunks(len(ranges), func(w *engine.Session, c int) error {
		part := &Result{}
		parts[c] = part
		pf := w.Handles.Fetcher() // providers
		cf := w.Handles.Fetcher() // patients
		return upinIdx.Backend.ScanBatched(w.Client, ranges[c].Lo, ranges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			var ch sim.BatchCharges
			for _, e := range entries {
				pf.Invalidate() // chunk/patient reads intervened
				prec, pcls, err := pf.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				if _, err := object.DecodeAttr(pcls, prec, ai.provName); err != nil {
					return false, err
				}
				clientsV, err := object.DecodeAttr(pcls, prec, ai.provClients)
				if err != nil {
					return false, err
				}
				ch.AttrGets += 2
				err = collection.ScanBatched(w.Client, clientsV.Ref, bsize, func(prids []storage.Rid) (bool, error) {
					cf.Invalidate() // the chunk's record read intervened
					for _, prid := range prids {
						rec, cls, err := cf.Fetch(prid)
						if err != nil {
							return false, err
						}
						ch.HandleGets++
						mrnV, err := object.DecodeAttr(cls, rec, ai.patMrn)
						if err != nil {
							return false, err
						}
						ch.AttrGets++
						ch.Compares++
						if mrnV.Int < k1 {
							if _, err := object.DecodeAttr(cls, rec, ai.patAge); err != nil {
								return false, err
							}
							ch.AttrGets++
							ch.ResultAppends++
							part.Tuples++
						}
						ch.HandleUnrefs++
					}
					return true, nil
				})
				if err != nil {
					return false, err
				}
				ch.HandleUnrefs++ // the provider
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	sumTuples(res, parts)
	return res, err
}

// runPHJBatched is runPHJ over entry batches: build and probe each fetch
// records through a fetcher (invalidated at every delivery — a leaf read
// may have intervened) and merge one delta per batch; the region traffic
// stays per entry.
func runPHJBatched(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	bsize := db.Batch()

	buildRanges := chunkScan(1, q.K2, 1)
	nb := len(buildRanges)
	buildBudget := db.Machine.HashBudget / int64(nb)
	tables := make([]map[storage.Rid]providerInfo, nb)
	sizes := make([]int64, nb)
	// Build-side broadcast under a shard mask; see the scalar PHJ build.
	err = db.RunChunksAll(nb, func(w *engine.Session, c int) error {
		region := sim.NewRegion(w.Meter, buildBudget)
		table := make(map[storage.Rid]providerInfo)
		tables[c] = table
		f := w.Handles.Fetcher()
		err := upinIdx.Backend.ScanBatched(w.Client, buildRanges[c].Lo, buildRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				nameV, err := object.DecodeAttr(cls, rec, ai.provName)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				ch.AttrGets++
				ch.HandleUnrefs++
				ch.HashInserts++
				region.Grow(parentEntryBytes)
				region.RandomWrite()
				table[e.Rid] = providerInfo{name: nameV.Str}
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
		sizes[c] = region.Size()
		return err
	})
	if err != nil {
		return nil, err
	}
	var totalSize int64
	for _, s := range sizes {
		totalSize += s
	}
	res.HashTableBytes = totalSize
	res.Swapped = totalSize > db.Machine.HashBudget
	table := tables[0]
	for _, t := range tables[1:] {
		for rid, info := range t {
			table[rid] = info
		}
	}

	probeRanges := chunkScan(1, q.K1, 1)
	parts := make([]*Result, len(probeRanges))
	err = db.RunChunks(len(probeRanges), func(w *engine.Session, c int) error {
		part := &Result{}
		parts[c] = part
		region := sim.NewRegion(w.Meter, db.Machine.HashBudget)
		region.Grow(totalSize)
		f := w.Handles.Fetcher()
		return mrnIdx.Backend.ScanBatched(w.Client, probeRanges[c].Lo, probeRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				pcpV, err := object.DecodeAttr(cls, rec, ai.patPcp)
				if err != nil {
					return false, err
				}
				ch.AttrGets++
				ch.HashProbes++
				region.RandomRead()
				if _, ok := table[pcpV.Ref]; ok {
					if _, err := object.DecodeAttr(cls, rec, ai.patAge); err != nil {
						return false, err
					}
					ch.AttrGets++
					ch.ResultAppends++
					part.Tuples++
				}
				ch.HandleUnrefs++
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	sumTuples(res, parts)
	return res, err
}

// runCHJBatched is runCHJ over entry batches, with the same shape: batched
// record fetch and CPU accounting, per-entry region traffic, and the
// empty-group probe shortcut that skips the provider fetch entirely.
func runCHJBatched(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	bsize := db.Batch()

	buildRanges := chunkScan(1, q.K1, 1)
	nb := len(buildRanges)
	buildBudget := db.Machine.HashBudget / int64(nb)
	tables := make([]map[storage.Rid][]int64, nb)
	// Build-side broadcast under a shard mask; see the scalar PHJ build.
	err = db.RunChunksAll(nb, func(w *engine.Session, c int) error {
		region := sim.NewRegion(w.Meter, buildBudget)
		table := make(map[storage.Rid][]int64)
		tables[c] = table
		f := w.Handles.Fetcher()
		return mrnIdx.Backend.ScanBatched(w.Client, buildRanges[c].Lo, buildRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				pcpV, err := object.DecodeAttr(cls, rec, ai.patPcp)
				if err != nil {
					return false, err
				}
				ageV, err := object.DecodeAttr(cls, rec, ai.patAge)
				if err != nil {
					return false, err
				}
				ch.AttrGets += 2
				ch.HashInserts++
				group, ok := table[pcpV.Ref]
				if !ok {
					region.Grow(groupEntryBytes)
				}
				region.Grow(childEntryBytes)
				region.RandomWrite()
				table[pcpV.Ref] = append(group, ageV.Int)
				ch.HandleUnrefs++
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	table := tables[0]
	for _, t := range tables[1:] {
		for rid, ages := range t {
			table[rid] = append(table[rid], ages...)
		}
	}
	var children int64
	for _, ages := range table {
		children += int64(len(ages))
	}
	totalSize := int64(len(table))*groupEntryBytes + children*childEntryBytes
	res.HashTableBytes = totalSize
	res.Swapped = totalSize > db.Machine.HashBudget

	probeRanges := chunkScan(1, q.K2, 1)
	parts := make([]*Result, len(probeRanges))
	err = db.RunChunks(len(probeRanges), func(w *engine.Session, c int) error {
		part := &Result{}
		parts[c] = part
		region := sim.NewRegion(w.Meter, db.Machine.HashBudget)
		region.Grow(totalSize)
		f := w.Handles.Fetcher()
		return upinIdx.Backend.ScanBatched(w.Client, probeRanges[c].Lo, probeRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				ch.HashProbes++
				region.RandomRead()
				group := table[e.Rid]
				if len(group) == 0 {
					continue
				}
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				if _, err := object.DecodeAttr(cls, rec, ai.provName); err != nil {
					return false, err
				}
				ch.AttrGets++
				for range group {
					region.RandomRead()
					ch.ResultAppends++
					part.Tuples++
				}
				ch.HandleUnrefs++
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	sumTuples(res, parts)
	return res, err
}

// runSMJBatched forms the two sort runs from entry batches and hands them
// to the scalar pipeline's sequential tail (sort, spill, merge) unchanged.
func runSMJBatched(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	bsize := db.Batch()

	provRanges := chunkScan(1, q.K2, 1)
	provParts := make([][]provTuple, len(provRanges))
	err = db.RunChunks(len(provRanges), func(w *engine.Session, c int) error {
		f := w.Handles.Fetcher()
		return upinIdx.Backend.ScanBatched(w.Client, provRanges[c].Lo, provRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				nameV, err := object.DecodeAttr(cls, rec, ai.provName)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				ch.AttrGets++
				ch.HandleUnrefs++
				provParts[c] = append(provParts[c], provTuple{e.Rid, nameV.Str})
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var provRun []provTuple
	for _, p := range provParts {
		provRun = append(provRun, p...)
	}

	patRanges := chunkScan(1, q.K1, 1)
	patParts := make([][]patTuple, len(patRanges))
	err = db.RunChunks(len(patRanges), func(w *engine.Session, c int) error {
		f := w.Handles.Fetcher()
		return mrnIdx.Backend.ScanBatched(w.Client, patRanges[c].Lo, patRanges[c].Hi, bsize, func(entries []index.Entry) (bool, error) {
			f.Invalidate()
			var ch sim.BatchCharges
			for _, e := range entries {
				rec, cls, err := f.Fetch(e.Rid)
				if err != nil {
					return false, err
				}
				pcpV, err := object.DecodeAttr(cls, rec, ai.patPcp)
				if err != nil {
					return false, err
				}
				ageV, err := object.DecodeAttr(cls, rec, ai.patAge)
				if err != nil {
					return false, err
				}
				ch.HandleGets++
				ch.AttrGets += 2
				ch.HandleUnrefs++
				patParts[c] = append(patParts[c], patTuple{pcpV.Ref, ageV.Int})
			}
			w.Meter.ChargeBatch(ch)
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var patRun []patTuple
	for _, p := range patParts {
		patRun = append(patRun, p...)
	}

	smjMerge(db, res, provRun, patRun)
	return res, nil
}
