package join

import (
	"testing"

	"treebench/internal/derby"
)

// TestBatchedJoinsMatchScalar pins the vectorization invariant on every
// join algorithm: running with any batch size must reproduce the scalar
// run's tuples, simulated elapsed time, Figure 3 counters, hash-table
// accounting and swap verdict exactly. Algorithms without a batched path
// (NOJOIN, VNOJOIN, HHJ) ride along as a no-regression check.
func TestBatchedJoinsMatchScalar(t *testing.T) {
	env, _ := envFor(t, 40, 8, derby.ClassCluster)
	algos := append(Algorithms(), SMJ, VNOJOIN, HHJ)
	for _, sel := range [][2]int{{10, 10}, {90, 90}} {
		q := env.BySelectivity(sel[0], sel[1])
		for _, algo := range algos {
			env.DB.SetBatch(1)
			env.DB.ColdRestart()
			want, err := Run(env, algo, q)
			if err != nil {
				t.Fatalf("%s %+v scalar: %v", algo, q, err)
			}
			for _, batch := range []int{7, 1024} {
				env.DB.SetBatch(batch)
				env.DB.ColdRestart()
				got, err := Run(env, algo, q)
				if err != nil {
					t.Fatalf("%s %+v batch=%d: %v", algo, q, batch, err)
				}
				if got.Tuples != want.Tuples {
					t.Errorf("%s %+v batch=%d: %d tuples, want %d", algo, q, batch, got.Tuples, want.Tuples)
				}
				if got.Elapsed != want.Elapsed {
					t.Errorf("%s %+v batch=%d: elapsed %v, want %v", algo, q, batch, got.Elapsed, want.Elapsed)
				}
				if got.Counters != want.Counters {
					t.Errorf("%s %+v batch=%d: counters diverged\n got %+v\nwant %+v", algo, q, batch, got.Counters, want.Counters)
				}
				if got.HashTableBytes != want.HashTableBytes {
					t.Errorf("%s %+v batch=%d: table %d bytes, want %d", algo, q, batch, got.HashTableBytes, want.HashTableBytes)
				}
				if got.Swapped != want.Swapped {
					t.Errorf("%s %+v batch=%d: swapped %v, want %v", algo, q, batch, got.Swapped, want.Swapped)
				}
			}
		}
	}
	env.DB.SetBatch(0)
}
