package join

import "treebench/internal/derby"

// EnvForDerby wires a generated Derby dataset into the paper's §5 tree
// query environment: providers over patients, keys upin/mrn, projection
// f(p,pa) = [p.name, pa.age].
func EnvForDerby(d *derby.Dataset) *Env {
	return &Env{
		DB:            d.DB,
		Parent:        d.Providers,
		Child:         d.Patients,
		Composition:   d.Clustering == derby.CompositionCluster,
		SetAttr:       "clients",
		ParentRefAttr: "primary_care_provider",
		ParentKeyAttr: "upin",
		ChildKeyAttr:  "mrn",
		ParentProj:    "name",
		ChildProj:     "age",
		ChildFKAttr:   "random_integer",
		NumParents:    d.NumProviders,
		NumChildren:   d.NumPatients,
	}
}
