package join

import (
	"treebench/internal/index"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// runHHJ is the hybrid-hash variant of PHJ that the paper points at twice
// ("the second point indicates the need for hybrid hashing, which we did
// not test"; "We did not consider hybrid hashing [17] to optimize this").
//
// When the parent table would exceed the memory budget, both inputs are
// partitioned by a hash of the provider identifier. Partition 0 stays in
// memory (the hybrid part); the rest spill to temporary files with
// sequential I/O and are joined partition by partition. The win over PHJ is
// structural: the random swap faults PHJ suffers become sequential
// spill writes and reads.
func runHHJ(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	meter := db.Meter
	k1, k2 := q.K1, q.K2
	res := &Result{}

	// Plan: how many partitions do we need so each parent sub-table fits
	// comfortably (80% of budget, leaving room for probe-side working
	// space)?
	selParents := q.K2 - 1
	if selParents > int64(env.NumParents) {
		selParents = int64(env.NumParents)
	}
	tableBytes := selParents * parentEntryBytes
	budget := db.Machine.HashBudget * 8 / 10
	if budget < 1 {
		budget = 1
	}
	parts := int((tableBytes + budget - 1) / budget)
	if parts < 1 {
		parts = 1
	}
	res.SpillPartitions = parts

	// On-disk tuple widths for the spill files.
	const provTupleBytes = 8 + 16 // rid + name
	const patTupleBytes = 8 + 4   // pcp rid + age

	partOf := func(r storage.Rid) int {
		if parts == 1 {
			return 0
		}
		h := uint64(r.Page)*0x9E3779B1 + uint64(r.Slot)*0x85EBCA77
		return int(h % uint64(parts))
	}

	type provTuple struct {
		rid  storage.Rid
		name string
	}
	type patTuple struct {
		pcp storage.Rid
		age int64
	}

	// spill charges sequential temp-file I/O per page of tuples.
	spillWriter := func(tupleBytes int) func(n int) {
		var bytes int64
		return func(n int) {
			bytes += int64(n) * int64(tupleBytes)
			for bytes >= storage.PageSize {
				bytes -= storage.PageSize
				meter.DiskWrite()
			}
		}
	}
	spillReader := func(tupleBytes int, tuples int) {
		pages := (int64(tuples)*int64(tupleBytes) + storage.PageSize - 1) / storage.PageSize
		for i := int64(0); i < pages; i++ {
			meter.DiskRead()
		}
	}

	// Build phase: partition the selected providers. Partition 0 builds
	// its table in memory immediately.
	table0 := make(map[storage.Rid]providerInfo)
	region0 := sim.NewRegion(meter, db.Machine.HashBudget)
	provParts := make([][]provTuple, parts)
	provSpill := spillWriter(provTupleBytes)
	err = upinIdx.Backend.Scan(db.Client, 1, k2, func(e index.Entry) (bool, error) {
		ph, err := db.Handles.Get(e.Rid)
		if err != nil {
			return false, err
		}
		nameV, err := db.Handles.Attr(ph, ai.provName)
		if err != nil {
			db.Handles.Unref(ph)
			return false, err
		}
		db.Handles.Unref(ph)
		p := partOf(e.Rid)
		if p == 0 {
			meter.HashInsert()
			region0.Grow(parentEntryBytes)
			region0.RandomWrite()
			table0[e.Rid] = providerInfo{name: nameV.Str}
		} else {
			provParts[p] = append(provParts[p], provTuple{e.Rid, nameV.Str})
			provSpill(1)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	res.HashTableBytes = region0.Size()
	res.Swapped = region0.Swapping()

	// Probe phase: scan selected patients; partition-0 patients probe
	// immediately, the rest spill.
	patParts := make([][]patTuple, parts)
	patSpill := spillWriter(patTupleBytes)
	err = mrnIdx.Backend.Scan(db.Client, 1, k1, func(e index.Entry) (bool, error) {
		pa, err := db.Handles.Get(e.Rid)
		if err != nil {
			return false, err
		}
		defer db.Handles.Unref(pa)
		pcpV, err := db.Handles.Attr(pa, ai.patPcp)
		if err != nil {
			return false, err
		}
		p := partOf(pcpV.Ref)
		if p == 0 {
			meter.HashProbe()
			region0.RandomRead()
			if info, ok := table0[pcpV.Ref]; ok {
				ageV, err := db.Handles.Attr(pa, ai.patAge)
				if err != nil {
					return false, err
				}
				emit(meter, res, info.name, ageV.Int)
			}
			return true, nil
		}
		ageV, err := db.Handles.Attr(pa, ai.patAge)
		if err != nil {
			return false, err
		}
		patParts[p] = append(patParts[p], patTuple{pcpV.Ref, ageV.Int})
		patSpill(1)
		return true, nil
	})
	if err != nil {
		return nil, err
	}

	// Join the spilled partitions one by one; each sub-table fits.
	for p := 1; p < parts; p++ {
		spillReader(provTupleBytes, len(provParts[p]))
		table := make(map[storage.Rid]providerInfo, len(provParts[p]))
		for _, t := range provParts[p] {
			meter.HashInsert()
			table[t.rid] = providerInfo{name: t.name}
		}
		if sz := int64(len(provParts[p])) * parentEntryBytes; sz > res.HashTableBytes {
			res.HashTableBytes = sz
		}
		spillReader(patTupleBytes, len(patParts[p]))
		for _, t := range patParts[p] {
			meter.HashProbe()
			if info, ok := table[t.pcp]; ok {
				emit(meter, res, info.name, t.age)
			}
		}
	}
	return res, nil
}
