// Package join implements the four evaluation strategies of §5.1 for the
// paper's tree query
//
//	select f(p,pa)
//	from p in Providers, pa in p.clients
//	where pa.mrn < k1 and p.upin < k2
//
// with f(p,pa) = [p.name, pa.age]: NL (parent-to-child navigation), NOJOIN
// (child-to-parent navigation), PHJ (hash the parents), CHJ (hash the
// children — the pointer-based join of Shekita & Carey, modified to scan
// the outer sequentially), plus HHJ, the hybrid-hash variant the paper
// calls for but did not test.
//
// All I/O and CPU costs emerge from the layers below: index scans page in
// index leaves, navigation faults on the cache according to the physical
// clustering, handles charge their §4 management cost, and hash tables
// larger than the machine's memory budget swap via sim.Region.
package join

import (
	"fmt"
	"time"

	"treebench/internal/collection"
	"treebench/internal/engine"
	"treebench/internal/index"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// Algorithm names one evaluation strategy.
type Algorithm string

// The §5.1 algorithms, plus the hybrid-hash extension.
const (
	NL     Algorithm = "NL"
	NOJOIN Algorithm = "NOJOIN"
	PHJ    Algorithm = "PHJ"
	CHJ    Algorithm = "CHJ"
	HHJ    Algorithm = "HHJ"
	// SMJ is the sort-merge pointer join the paper tried and dropped
	// (§5.1); kept so that decision is reproducible.
	SMJ Algorithm = "SMJ"
	// VNOJOIN is the value-based counterpart of NOJOIN: children resolve
	// their parents through the parent key index instead of a physical
	// pointer — the alternative [14] measured pointer joins against.
	VNOJOIN Algorithm = "VNOJOIN"
)

// Algorithms lists the paper's four strategies in its reporting order.
func Algorithms() []Algorithm { return []Algorithm{PHJ, CHJ, NOJOIN, NL} }

// Hash-table memory accounting, matching the paper's Figure 10 arithmetic:
// 64 bytes per parent entry (rid, provider information, bucket overhead)
// and, for the children table, 64 bytes per group plus 8 bytes per child
// payload (its age and list linkage).
const (
	parentEntryBytes = 64
	groupEntryBytes  = 64
	childEntryBytes  = 8
)

// Env describes the 1-n hierarchy a tree query runs over. The attribute
// names parameterize the algorithms so any parent/child schema works; the
// Derby defaults are the paper's providers and patients.
type Env struct {
	DB     *engine.Database
	Parent *engine.Extent // the 1 side (providers)
	Child  *engine.Extent // the n side (patients)

	// SetAttr is the parent's collection of children ("clients");
	// ParentRefAttr is the child's back reference ("primary_care_provider").
	SetAttr       string
	ParentRefAttr string
	// ParentKeyAttr and ChildKeyAttr carry the selection predicates and
	// must be indexed ("upin", "mrn").
	ParentKeyAttr string
	ChildKeyAttr  string
	// ParentProj and ChildProj are the f(p,pa) components ("name", "age").
	ParentProj string
	ChildProj  string
	// ChildFKAttr is the child's value-based foreign key — an attribute
	// equal to the parent's key ("random_integer" = provider's upin).
	// Only the value-based VNOJOIN uses it.
	ChildFKAttr string

	NumParents  int
	NumChildren int

	// Composition hints that children are physically clustered with
	// their parents (Figure 2's right organization). The executor never
	// reads it — access patterns emerge from the data — but the
	// cost-based planner uses it to predict navigation cost.
	Composition bool
}

// Query bounds the two selections: child.key < K1 and parent.key < K2.
// SelChildren/SelParents carry the selectivity labels (percent) when the
// query was built from selectivities; they are reporting metadata only.
type Query struct {
	K1, K2                  int64
	SelChildren, SelParents int
}

// BySelectivity builds the §5 query keeping selChildren% of children and
// selParents% of parents — exact, because the Derby keys are dense 1..N.
func (env *Env) BySelectivity(selChildren, selParents int) Query {
	return Query{
		K1:          int64(env.NumChildren*selChildren/100) + 1,
		K2:          int64(env.NumParents*selParents/100) + 1,
		SelChildren: selChildren,
		SelParents:  selParents,
	}
}

// Tuple is one f(p,pa) result.
type Tuple struct {
	ProviderName string
	PatientAge   int64
}

// Result reports one algorithm run.
type Result struct {
	Algorithm Algorithm
	Query     Query
	Tuples    int
	Elapsed   time.Duration
	Counters  sim.Counters

	// HashTableBytes is the peak hash-table size (0 for navigation).
	HashTableBytes int64
	// Swapped reports whether the table exceeded the memory budget.
	Swapped bool
	// SpillPartitions is HHJ's partition count (1 = in-memory).
	SpillPartitions int
}

// Run evaluates the tree query with the given algorithm on a cold system
// (the caller is responsible for ColdRestart; Run asserts the meter starts
// at zero to keep measurements honest).
func Run(env *Env, algo Algorithm, q Query) (*Result, error) {
	if env.DB.Meter.Elapsed() != 0 {
		return nil, fmt.Errorf("join: meter not reset; call ColdRestart before Run")
	}
	if q.K1 < 0 || q.K2 < 0 {
		return nil, fmt.Errorf("join: bad key bounds %+v", q)
	}
	var (
		res *Result
		err error
	)
	switch algo {
	case NL:
		res, err = runNL(env, q)
	case NOJOIN:
		res, err = runNOJOIN(env, q)
	case PHJ:
		res, err = runPHJ(env, q)
	case CHJ:
		res, err = runCHJ(env, q)
	case HHJ:
		res, err = runHHJ(env, q)
	case SMJ:
		res, err = runSMJ(env, q)
	case VNOJOIN:
		res, err = runVNOJOIN(env, q)
	default:
		return nil, fmt.Errorf("join: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	res.Algorithm = algo
	res.Query = q
	res.Elapsed = env.DB.Meter.Elapsed()
	res.Counters = env.DB.Meter.Snapshot()
	return res, nil
}

// attrIndexes caches the attribute positions the query touches.
type attrIndexes struct {
	provName, provUpin, provClients int
	patMrn, patAge, patPcp          int
}

func attrs(env *Env) (attrIndexes, error) {
	pc, tc := env.Parent.Class, env.Child.Class
	ai := attrIndexes{
		provName:    pc.AttrIndex(env.ParentProj),
		provUpin:    pc.AttrIndex(env.ParentKeyAttr),
		provClients: pc.AttrIndex(env.SetAttr),
		patMrn:      tc.AttrIndex(env.ChildKeyAttr),
		patAge:      tc.AttrIndex(env.ChildProj),
		patPcp:      tc.AttrIndex(env.ParentRefAttr),
	}
	for _, spec := range []struct {
		idx  int
		name string
	}{
		{ai.provName, env.ParentProj}, {ai.provUpin, env.ParentKeyAttr},
		{ai.provClients, env.SetAttr}, {ai.patMrn, env.ChildKeyAttr},
		{ai.patAge, env.ChildProj}, {ai.patPcp, env.ParentRefAttr},
	} {
		if spec.idx < 0 {
			return ai, fmt.Errorf("join: env names unknown attribute %q", spec.name)
		}
	}
	return ai, nil
}

func indexOrErr(env *Env, extent, attr string) (*engine.Index, error) {
	ix := env.DB.IndexOn(extent, attr)
	if ix == nil {
		return nil, fmt.Errorf("join: no index on %s.%s", extent, attr)
	}
	return ix, nil
}

// runNL is parent-to-child navigation:
//
//	For all providers p whose upin < k2        /* index scan */
//	  For all clients pa of p                  /* navigation */
//	    if pa.mrn < k1 add f(p,pa) to the result
//
// Only the provider index is usable; patients are reached through the
// clients sets, randomly under class/random clustering and sequentially
// under composition clustering.
//
// Parallelism: the provider key range is chunked; each chunk navigates its
// providers' whole client sets, so every (p, pa) pair belongs to exactly one
// chunk.
func runNL(env *Env, q Query) (*Result, error) {
	if env.DB.Batch() > 1 {
		return runNLBatched(env, q)
	}
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	k1 := q.K1
	res := &Result{}
	fanout := int64(1)
	if env.NumParents > 0 && env.NumChildren > env.NumParents {
		fanout = int64(env.NumChildren / env.NumParents)
	}
	ranges := chunkScan(1, q.K2, fanout)
	parts := make([]*Result, len(ranges))
	err = db.RunChunks(len(ranges), func(w *engine.Session, c int) error {
		meter := w.Meter
		part := &Result{}
		parts[c] = part
		return upinIdx.Backend.Scan(w.Client, ranges[c].Lo, ranges[c].Hi, func(e index.Entry) (bool, error) {
			ph, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(ph)
			nameV, err := w.Handles.Attr(ph, ai.provName)
			if err != nil {
				return false, err
			}
			clientsV, err := w.Handles.Attr(ph, ai.provClients)
			if err != nil {
				return false, err
			}
			return true, collection.Scan(w.Client, clientsV.Ref, func(prid storage.Rid) (bool, error) {
				pa, err := w.Handles.Get(prid)
				if err != nil {
					return false, err
				}
				defer w.Handles.Unref(pa)
				mrnV, err := w.Handles.Attr(pa, ai.patMrn)
				if err != nil {
					return false, err
				}
				meter.Compare()
				if mrnV.Int < k1 {
					ageV, err := w.Handles.Attr(pa, ai.patAge)
					if err != nil {
						return false, err
					}
					emit(meter, part, nameV.Str, ageV.Int)
				}
				return true, nil
			})
		})
	})
	sumTuples(res, parts)
	return res, err
}

// runNOJOIN is child-to-parent navigation:
//
//	For all patients whose mrn < k1            /* index scan */
//	  get the patient primary care provider p  /* navigation */
//	  if p.upin < k2 add f(p,pa) to the result
//
// The index rides on the large collection, but the upin condition may be
// tested up to 3 (resp. 1000) times per provider.
//
// NOJOIN stays sequential deliberately. Its cost profile is dominated by
// re-referencing the small provider set from every child — the client cache
// turns all but the first deref of each provider page into hits. Chunking
// would give each chunk a private cold cache and re-fault that working set
// once per chunk, inflating the simulated cost several-fold and distorting
// the paper's NOJOIN-vs-alternatives comparisons. The chunked operators
// (NL, PHJ, CHJ, SMJ) partition work whose pages each chunk touches mostly
// disjointly, where the duplication is a few boundary pages and B-tree
// descents.
func runNOJOIN(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	meter := db.Meter
	k1, k2 := q.K1, q.K2
	res := &Result{}
	err = mrnIdx.Backend.Scan(db.Client, 1, k1, func(e index.Entry) (bool, error) {
		pa, err := db.Handles.Get(e.Rid)
		if err != nil {
			return false, err
		}
		defer db.Handles.Unref(pa)
		pcpV, err := db.Handles.Attr(pa, ai.patPcp)
		if err != nil {
			return false, err
		}
		ph, err := db.Handles.Get(pcpV.Ref)
		if err != nil {
			return false, err
		}
		defer db.Handles.Unref(ph)
		upinV, err := db.Handles.Attr(ph, ai.provUpin)
		if err != nil {
			return false, err
		}
		meter.Compare()
		if upinV.Int < k2 {
			nameV, err := db.Handles.Attr(ph, ai.provName)
			if err != nil {
				return false, err
			}
			ageV, err := db.Handles.Attr(pa, ai.patAge)
			if err != nil {
				return false, err
			}
			emit(meter, res, nameV.Str, ageV.Int)
		}
		return true, nil
	})
	return res, err
}

func emit(meter *sim.Meter, res *Result, name string, age int64) {
	meter.ResultAppend()
	res.Tuples++
}

// providerInfo is what the parent table stores: "the elements needed to
// construct f(p,pa)" (§5), here the provider's name.
type providerInfo struct {
	name string
}

// runPHJ hashes the parents and joins:
//
//	hash all providers whose upin < k2 by their identifiers  /* index scan */
//	For all patients whose mrn < k1                          /* index scan */
//	  get the provider information by probing the hash table
//	  add f(p,pa) to the result
//
// Parallelism: the build partitions the provider key range, each chunk
// hashing its subrange into a private table charged against its share of the
// memory budget (keys are uniform, so a chunk outgrows its share exactly
// when the whole table outgrows the budget). The partitions then merge into
// one read-only table and the probe fans out over patient key chunks with no
// merge step — each probe chunk's region is preset to the full table size so
// its resident fraction matches the sequential probe.
func runPHJ(env *Env, q Query) (*Result, error) {
	if env.DB.Batch() > 1 {
		return runPHJBatched(env, q)
	}
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Build: index scan over providers in upin (physical) order; the hash
	// function scatters the writes across the table.
	buildRanges := chunkScan(1, q.K2, 1)
	nb := len(buildRanges)
	buildBudget := db.Machine.HashBudget / int64(nb)
	tables := make([]map[storage.Rid]providerInfo, nb)
	sizes := make([]int64, nb)
	// RunChunksAll, not RunChunks: the probe side needs the whole table, so
	// under a shard mask every participant builds every chunk (build-side
	// broadcast) while only the owned chunks' charges are merged.
	err = db.RunChunksAll(nb, func(w *engine.Session, c int) error {
		meter := w.Meter
		region := sim.NewRegion(meter, buildBudget)
		table := make(map[storage.Rid]providerInfo)
		tables[c] = table
		err := upinIdx.Backend.Scan(w.Client, buildRanges[c].Lo, buildRanges[c].Hi, func(e index.Entry) (bool, error) {
			ph, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			nameV, err := w.Handles.Attr(ph, ai.provName)
			if err != nil {
				w.Handles.Unref(ph)
				return false, err
			}
			w.Handles.Unref(ph)
			meter.HashInsert()
			region.Grow(parentEntryBytes)
			region.RandomWrite()
			table[e.Rid] = providerInfo{name: nameV.Str}
			return true, nil
		})
		sizes[c] = region.Size()
		return err
	})
	if err != nil {
		return nil, err
	}
	var totalSize int64
	for _, s := range sizes {
		totalSize += s
	}
	// Reported with whole-table semantics: the sum of the partitions is the
	// one table the sequential build would have grown.
	res.HashTableBytes = totalSize
	res.Swapped = totalSize > db.Machine.HashBudget
	table := tables[0]
	for _, t := range tables[1:] {
		for rid, info := range t {
			table[rid] = info
		}
	}

	// Probe: sequential scan of selected patients, random probes. The merged
	// table is read-only from here; chunks share it freely.
	probeRanges := chunkScan(1, q.K1, 1)
	parts := make([]*Result, len(probeRanges))
	err = db.RunChunks(len(probeRanges), func(w *engine.Session, c int) error {
		meter := w.Meter
		part := &Result{}
		parts[c] = part
		region := sim.NewRegion(meter, db.Machine.HashBudget)
		region.Grow(totalSize)
		return mrnIdx.Backend.Scan(w.Client, probeRanges[c].Lo, probeRanges[c].Hi, func(e index.Entry) (bool, error) {
			pa, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(pa)
			pcpV, err := w.Handles.Attr(pa, ai.patPcp)
			if err != nil {
				return false, err
			}
			meter.HashProbe()
			region.RandomRead()
			info, ok := table[pcpV.Ref]
			if ok {
				ageV, err := w.Handles.Attr(pa, ai.patAge)
				if err != nil {
					return false, err
				}
				emit(meter, part, info.name, ageV.Int)
			}
			return true, nil
		})
	})
	sumTuples(res, parts)
	return res, err
}

// runCHJ hashes the children and joins — the §5.1 variation of the
// pointer-based join that scans the provider collection sequentially
// instead of in hash order:
//
//	hash all patients whose mrn < k1 by their primary care provider
//	For all providers whose upin < k2                        /* index scan */
//	  get the corresponding patient information in the hash table
//	  add f(p,pa) to the result
//
// Parallelism mirrors runPHJ with the roles reversed: the build partitions
// the patient key range into private group tables (each charged against its
// share of the memory budget; a provider whose patients span chunks costs
// one group entry per chunk it appears in), the partitions merge by
// concatenating each provider's ages in chunk order — which is mrn order,
// exactly what the sequential build produces — and the probe fans out over
// provider key chunks against the merged read-only table.
func runCHJ(env *Env, q Query) (*Result, error) {
	if env.DB.Batch() > 1 {
		return runCHJBatched(env, q)
	}
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Build: one group entry per provider present, one child entry per
	// selected patient; the groups' chunks scatter as patients arrive in
	// mrn (not provider) order.
	buildRanges := chunkScan(1, q.K1, 1)
	nb := len(buildRanges)
	buildBudget := db.Machine.HashBudget / int64(nb)
	tables := make([]map[storage.Rid][]int64, nb)
	// Build-side broadcast under a shard mask; see the PHJ build above.
	err = db.RunChunksAll(nb, func(w *engine.Session, c int) error {
		meter := w.Meter
		region := sim.NewRegion(meter, buildBudget)
		table := make(map[storage.Rid][]int64) // provider rid → patient ages
		tables[c] = table
		err := mrnIdx.Backend.Scan(w.Client, buildRanges[c].Lo, buildRanges[c].Hi, func(e index.Entry) (bool, error) {
			pa, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(pa)
			pcpV, err := w.Handles.Attr(pa, ai.patPcp)
			if err != nil {
				return false, err
			}
			ageV, err := w.Handles.Attr(pa, ai.patAge)
			if err != nil {
				return false, err
			}
			meter.HashInsert()
			group, ok := table[pcpV.Ref]
			if !ok {
				region.Grow(groupEntryBytes)
			}
			region.Grow(childEntryBytes)
			region.RandomWrite()
			table[pcpV.Ref] = append(group, ageV.Int)
			return true, nil
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	table := tables[0]
	for _, t := range tables[1:] {
		for rid, ages := range t {
			table[rid] = append(table[rid], ages...)
		}
	}
	// Report with whole-table semantics: one group entry per distinct
	// provider, as the sequential build would have grown it. The per-chunk
	// regions above over-count a group entry for each extra chunk a
	// provider's patients span; that duplication stays inside the chunks'
	// swap-fault arithmetic and out of the reported size.
	var children int64
	for _, ages := range table {
		children += int64(len(ages))
	}
	totalSize := int64(len(table))*groupEntryBytes + children*childEntryBytes
	res.HashTableBytes = totalSize
	res.Swapped = totalSize > db.Machine.HashBudget

	// Probe: sequential scan of selected providers; each group's chunks
	// are scattered across the (possibly swapped) table.
	probeRanges := chunkScan(1, q.K2, 1)
	parts := make([]*Result, len(probeRanges))
	err = db.RunChunks(len(probeRanges), func(w *engine.Session, c int) error {
		meter := w.Meter
		part := &Result{}
		parts[c] = part
		region := sim.NewRegion(meter, db.Machine.HashBudget)
		region.Grow(totalSize)
		return upinIdx.Backend.Scan(w.Client, probeRanges[c].Lo, probeRanges[c].Hi, func(e index.Entry) (bool, error) {
			meter.HashProbe()
			region.RandomRead()
			group := table[e.Rid]
			if len(group) == 0 {
				return true, nil
			}
			ph, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(ph)
			nameV, err := w.Handles.Attr(ph, ai.provName)
			if err != nil {
				return false, err
			}
			for _, age := range group {
				region.RandomRead()
				emit(meter, part, nameV.Str, age)
			}
			return true, nil
		})
	})
	sumTuples(res, parts)
	return res, err
}
