package join

import (
	"testing"

	"treebench/internal/derby"
	"treebench/internal/object"
	"treebench/internal/storage"
)

// envFor builds a small Derby database and wraps it as a join Env.
func envFor(t *testing.T, providers, avgPatients int, cl derby.Clustering) (*Env, *derby.Dataset) {
	t.Helper()
	d, err := derby.Generate(derby.DefaultConfig(providers, avgPatients, cl))
	if err != nil {
		t.Fatal(err)
	}
	return EnvForDerby(d), d
}

// expectedTuples brute-forces the query result size from the raw records.
func expectedTuples(t *testing.T, d *derby.Dataset, q Query, env *Env) int {
	t.Helper()
	k1, k2 := q.K1, q.K2
	pcls, tcls := d.Providers.Class, d.Patients.Class
	upinIdx := pcls.AttrIndex("upin")
	mrnIdx := tcls.AttrIndex("mrn")
	pcpIdx := tcls.AttrIndex("primary_care_provider")
	count := 0
	for _, prid := range d.PatientRids {
		rec, err := storage.Get(d.DB.Client, prid)
		if err != nil {
			t.Fatal(err)
		}
		mrn, _ := object.DecodeAttr(tcls, rec, mrnIdx)
		if mrn.Int >= k1 {
			continue
		}
		pcp, _ := object.DecodeAttr(tcls, rec, pcpIdx)
		provRec, err := storage.Get(d.DB.Client, pcp.Ref)
		if err != nil {
			t.Fatal(err)
		}
		upin, _ := object.DecodeAttr(pcls, provRec, upinIdx)
		if upin.Int < k2 {
			count++
		}
	}
	return count
}

func TestAllAlgorithmsAgree(t *testing.T) {
	for _, cl := range []derby.Clustering{derby.ClassCluster, derby.RandomOrg, derby.CompositionCluster} {
		env, d := envFor(t, 40, 5, cl)
		for _, sel := range [][2]int{{10, 10}, {10, 90}, {90, 10}, {90, 90}, {50, 50}} {
			q := env.BySelectivity(sel[0], sel[1])
			env.DB.ColdRestart()
			want := expectedTuples(t, d, q, env)
			for _, algo := range append(Algorithms(), HHJ) {
				env.DB.ColdRestart()
				res, err := Run(env, algo, q)
				if err != nil {
					t.Fatalf("%v %s %+v: %v", cl, algo, q, err)
				}
				if res.Tuples != want {
					t.Fatalf("%v %s %+v: %d tuples, want %d", cl, algo, q, res.Tuples, want)
				}
				if res.Elapsed <= 0 {
					t.Fatalf("%v %s: no elapsed time", cl, algo)
				}
			}
		}
	}
}

func TestRunRequiresColdMeter(t *testing.T) {
	env, _ := envFor(t, 10, 3, derby.ClassCluster)
	env.DB.ColdRestart()
	if _, err := Run(env, PHJ, env.BySelectivity(10, 10)); err != nil {
		t.Fatal(err)
	}
	// Meter now non-zero: a second Run without restart must refuse.
	if _, err := Run(env, PHJ, env.BySelectivity(10, 10)); err == nil {
		t.Fatal("Run accepted a warm meter")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	env, _ := envFor(t, 10, 3, derby.ClassCluster)
	env.DB.ColdRestart()
	if _, err := Run(env, Algorithm("ZIGZAG"), env.BySelectivity(10, 10)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(env, PHJ, Query{K1: -1, K2: 10}); err == nil {
		t.Fatal("negative key bound accepted")
	}
}

func TestHashTableSizesMatchFigure10Formulas(t *testing.T) {
	env, _ := envFor(t, 100, 10, derby.ClassCluster) // 100 providers, 1000 patients
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	phj, err := Run(env, PHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	// PHJ: 64 bytes × selected providers.
	selProv := int64(env.NumParents * q.SelParents / 100)
	if want := selProv * parentEntryBytes; phj.HashTableBytes != want {
		t.Fatalf("PHJ table = %d bytes, want %d", phj.HashTableBytes, want)
	}
	env.DB.ColdRestart()
	chj, err := Run(env, CHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	// CHJ: 64 bytes per provider group present + 8 per selected patient.
	selPat := int64(env.NumChildren * q.SelChildren / 100)
	min := selPat * childEntryBytes
	max := min + int64(env.NumParents)*groupEntryBytes
	if chj.HashTableBytes < min+groupEntryBytes || chj.HashTableBytes > max {
		t.Fatalf("CHJ table = %d bytes, want in (%d, %d]", chj.HashTableBytes, min, max)
	}
	if chj.HashTableBytes <= phj.HashTableBytes {
		t.Fatal("CHJ table not larger than PHJ's despite 10× more entries")
	}
}

func TestNavigationUsesNoHashTable(t *testing.T) {
	env, _ := envFor(t, 20, 5, derby.ClassCluster)
	for _, algo := range []Algorithm{NL, NOJOIN} {
		env.DB.ColdRestart()
		res, err := Run(env, algo, env.BySelectivity(50, 50))
		if err != nil {
			t.Fatal(err)
		}
		if res.HashTableBytes != 0 || res.Swapped {
			t.Fatalf("%s reported a hash table", algo)
		}
		if res.Counters.HashInserts != 0 || res.Counters.HashProbes != 0 {
			t.Fatalf("%s charged hash operations", algo)
		}
	}
}

func TestSwapChargedWhenTableExceedsBudget(t *testing.T) {
	env, _ := envFor(t, 200, 20, derby.ClassCluster) // 4000 patients
	// Shrink the budget so CHJ's table (≈200×64 + 3600×8 ≈ 41.6 KB at 90%)
	// swaps.
	env.DB.Machine.HashBudget = 16 << 10
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	res, err := Run(env, CHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Fatalf("table of %d bytes did not swap against %d budget", res.HashTableBytes, env.DB.Machine.HashBudget)
	}
	if res.Counters.SwapReads == 0 && res.Counters.SwapWrites == 0 {
		t.Fatal("swapping charged no swap I/O")
	}
	// Same query with a big budget is faster.
	env.DB.Machine.HashBudget = 20 << 20
	env.DB.ColdRestart()
	fast, err := Run(env, CHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Elapsed >= res.Elapsed {
		t.Fatalf("in-memory CHJ (%v) not faster than swapped (%v)", fast.Elapsed, res.Elapsed)
	}
}

func TestHHJBeatsPHJWhenSwapping(t *testing.T) {
	env, _ := envFor(t, 2000, 2, derby.ClassCluster)
	env.DB.Machine.HashBudget = 32 << 10 // PHJ table at 90% = 1800×64 = 115 KB ⇒ swaps
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	phj, err := Run(env, PHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if !phj.Swapped {
		t.Skip("PHJ did not swap at this scale; shrink budget")
	}
	env.DB.ColdRestart()
	hhj, err := Run(env, HHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if hhj.SpillPartitions < 2 {
		t.Fatalf("HHJ did not partition (parts=%d)", hhj.SpillPartitions)
	}
	if hhj.Tuples != phj.Tuples {
		t.Fatalf("HHJ %d tuples vs PHJ %d", hhj.Tuples, phj.Tuples)
	}
	if hhj.Elapsed >= phj.Elapsed {
		t.Fatalf("HHJ (%v) not faster than swapped PHJ (%v)", hhj.Elapsed, phj.Elapsed)
	}
}

func TestHHJDegeneratesToPHJInMemory(t *testing.T) {
	env, _ := envFor(t, 50, 4, derby.ClassCluster)
	q := env.BySelectivity(50, 50)
	env.DB.ColdRestart()
	hhj, err := Run(env, HHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if hhj.SpillPartitions != 1 {
		t.Fatalf("in-memory HHJ used %d partitions", hhj.SpillPartitions)
	}
	if hhj.Counters.DiskWrites != 0 {
		t.Fatal("in-memory HHJ spilled")
	}
}

// TestCompositionFavorsNavigation reproduces the §5.3 headline in
// miniature: under composition clustering NL wins; under class clustering
// with a large patient selectivity it does not.
func TestCompositionFavorsNavigation(t *testing.T) {
	comp, _ := envFor(t, 100, 50, derby.CompositionCluster)
	q := comp.BySelectivity(10, 10)
	times := map[Algorithm]float64{}
	for _, algo := range Algorithms() {
		comp.DB.ColdRestart()
		res, err := Run(comp, algo, q)
		if err != nil {
			t.Fatal(err)
		}
		times[algo] = res.Elapsed.Seconds()
	}
	if times[NL] >= times[PHJ] || times[NL] >= times[CHJ] {
		t.Fatalf("composition clustering: NL=%.2f not fastest (PHJ=%.2f CHJ=%.2f NOJOIN=%.2f)",
			times[NL], times[PHJ], times[CHJ], times[NOJOIN])
	}

	class, _ := envFor(t, 100, 50, derby.ClassCluster)
	ctimes := map[Algorithm]float64{}
	for _, algo := range Algorithms() {
		class.DB.ColdRestart()
		res, err := Run(class, algo, q)
		if err != nil {
			t.Fatal(err)
		}
		ctimes[algo] = res.Elapsed.Seconds()
	}
	if ctimes[NL] <= ctimes[PHJ] {
		t.Fatalf("class clustering: NL=%.2f beat PHJ=%.2f (random navigation should lose)",
			ctimes[NL], ctimes[PHJ])
	}
}

func TestSMJAgreesWithHashJoins(t *testing.T) {
	for _, cl := range []derby.Clustering{derby.ClassCluster, derby.CompositionCluster} {
		env, d := envFor(t, 40, 5, cl)
		for _, sel := range [][2]int{{10, 10}, {90, 90}, {50, 50}} {
			q := env.BySelectivity(sel[0], sel[1])
			env.DB.ColdRestart()
			want := expectedTuples(t, d, q, env)
			env.DB.ColdRestart()
			res, err := Run(env, SMJ, q)
			if err != nil {
				t.Fatalf("%v SMJ %+v: %v", cl, sel, err)
			}
			if res.Tuples != want {
				t.Fatalf("%v SMJ %+v: %d tuples, want %d", cl, sel, res.Tuples, want)
			}
		}
	}
}

// TestSMJLosesToHashInMemory reproduces the reason the paper dropped
// sort-based algorithms: with both runs in memory, the sort work makes SMJ
// strictly slower than the best hash join.
func TestSMJLosesToHashInMemory(t *testing.T) {
	env, _ := envFor(t, 100, 20, derby.ClassCluster)
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	phj, err := Run(env, PHJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if phj.Swapped {
		t.Skip("unexpected swap at this scale")
	}
	env.DB.ColdRestart()
	smj, err := Run(env, SMJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if smj.Elapsed <= phj.Elapsed {
		t.Fatalf("in-memory SMJ (%v) not slower than PHJ (%v)", smj.Elapsed, phj.Elapsed)
	}
}

func TestSMJExternalSortCharged(t *testing.T) {
	env, _ := envFor(t, 100, 20, derby.ClassCluster)
	env.DB.Machine.HashBudget = 4 << 10 // 4KB: both runs spill
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	res, err := Run(env, SMJ, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Swapped {
		t.Fatal("external sort not flagged")
	}
	if res.Counters.DiskWrites == 0 {
		t.Fatal("external sort charged no spill I/O")
	}
	if want := SMJMemory(int64(env.NumParents)*90/100, int64(env.NumChildren)*90/100); res.HashTableBytes != want {
		t.Fatalf("run bytes = %d, want %d", res.HashTableBytes, want)
	}
}

func TestVNOJOINAgreesWithPointerJoin(t *testing.T) {
	env, d := envFor(t, 100, 20, derby.ClassCluster)
	for _, sel := range [][2]int{{10, 10}, {90, 90}, {50, 50}} {
		q := env.BySelectivity(sel[0], sel[1])
		env.DB.ColdRestart()
		want := expectedTuples(t, d, q, env)
		env.DB.ColdRestart()
		vres, err := Run(env, VNOJOIN, q)
		if err != nil {
			t.Fatal(err)
		}
		if vres.Tuples != want {
			t.Fatalf("VNOJOIN %v tuples %d, want %d", sel, vres.Tuples, want)
		}
	}
}

func TestVNOJOINCrossover(t *testing.T) {
	// The pointer-vs-value trade (the [14] comparison the paper builds
	// on): when every parent must be resolved anyway (sel prov 90%), the
	// value join's per-child index descents are pure overhead and the
	// pointer join wins; when the key-value predicate is selective, the
	// value join filters before resolving and skips parent fetches.
	env, _ := envFor(t, 2000, 3, derby.ClassCluster)
	q := env.BySelectivity(90, 90)
	env.DB.ColdRestart()
	p90, err := Run(env, NOJOIN, q)
	if err != nil {
		t.Fatal(err)
	}
	env.DB.ColdRestart()
	v90, err := Run(env, VNOJOIN, q)
	if err != nil {
		t.Fatal(err)
	}
	if v90.Elapsed < p90.Elapsed {
		t.Fatalf("at (90,90) value join (%v) beat pointer join (%v)", v90.Elapsed, p90.Elapsed)
	}
	q = env.BySelectivity(90, 10)
	env.DB.ColdRestart()
	p10, err := Run(env, NOJOIN, q)
	if err != nil {
		t.Fatal(err)
	}
	env.DB.ColdRestart()
	v10, err := Run(env, VNOJOIN, q)
	if err != nil {
		t.Fatal(err)
	}
	if v10.Elapsed >= p10.Elapsed {
		t.Fatalf("at (90,10) value join (%v) did not beat pointer join (%v)", v10.Elapsed, p10.Elapsed)
	}
}

func TestVNOJOINRequiresForeignKey(t *testing.T) {
	env, _ := envFor(t, 10, 3, derby.ClassCluster)
	env.ChildFKAttr = ""
	env.DB.ColdRestart()
	if _, err := Run(env, VNOJOIN, env.BySelectivity(10, 10)); err == nil {
		t.Fatal("missing foreign key accepted")
	}
}

// TestHandleDisciplineDuringRuns pins the §4.3 premise "there should not
// be swapping during the execution of any of the two given algorithms":
// every operator unreferences promptly, so the handle table never holds
// more than a couple of live representatives and ends every run empty.
func TestHandleDisciplineDuringRuns(t *testing.T) {
	env, _ := envFor(t, 50, 10, derby.ClassCluster)
	for _, algo := range append(Algorithms(), HHJ, SMJ, VNOJOIN) {
		env.DB.ColdRestart()
		if _, err := Run(env, algo, env.BySelectivity(50, 50)); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if live := env.DB.Handles.Live(); live != 0 {
			t.Fatalf("%s leaked %d handles", algo, live)
		}
		// The §4.4 structure is 60 bytes; holding at most a parent and a
		// child at once bounds the table at ~2 handles.
		if max := env.DB.Handles.MaxBytes(); max > 3*60 {
			t.Fatalf("%s kept %d bytes of handles live", algo, max)
		}
	}
}
