package join

import "treebench/internal/engine"

// Chunked execution support. Every parallelized driver decomposes its index
// scans into contiguous key subranges with chunkKeyRanges and runs them
// through engine.Session.RunChunks. Chunk boundaries depend only on the
// query's key bounds and the fixed engine.DefaultQueryChunks fan-out — never
// on the worker count — so each chunk's private meter readings, and their
// chunk-order merge, are identical at any parallelism level.

// keyRange is one half-open key interval [Lo, Hi) of a chunked index scan.
type keyRange struct{ Lo, Hi int64 }

// chunkKeyRanges splits [lo, hi) into at most n contiguous subranges of
// near-equal width, in ascending key order. A span smaller than n collapses
// to one range per key; an empty or inverted span yields the single range
// [lo, hi) so the degenerate case takes the direct (unforked) path through
// RunChunks.
func chunkKeyRanges(lo, hi int64, n int) []keyRange {
	span := hi - lo
	if span < int64(n) {
		n = int(span)
	}
	if n < 1 {
		return []keyRange{{lo, hi}}
	}
	out := make([]keyRange, n)
	for i := range out {
		out[i] = keyRange{lo + span*int64(i)/int64(n), lo + span*int64(i+1)/int64(n)}
	}
	return out
}

// chunkScan decomposes the index scan [lo, hi) for chunked execution.
// weight is the estimated work per key (1 for a plain scan step; NL passes
// its fan-out, since each parent key navigates a whole client set): scans
// too small to amortize the per-chunk overhead collapse to a single range,
// which RunChunks executes directly on the session — the exact sequential
// path.
func chunkScan(lo, hi, weight int64) []keyRange {
	if weight < 1 {
		weight = 1
	}
	return chunkKeyRanges(lo, hi, engine.ChunksForWork((hi-lo)*weight))
}

// sumTuples folds the chunks' partial results into res in chunk-index order.
func sumTuples(res *Result, parts []*Result) {
	for _, p := range parts {
		if p != nil {
			res.Tuples += p.Tuples
		}
	}
}
