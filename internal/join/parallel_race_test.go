package join

import (
	"sync"
	"testing"

	"treebench/internal/derby"
)

// TestParallelJoinRaceSharedSnapshot stacks both concurrency layers over
// one frozen page image (run with -race): eight sessions fork from the
// same snapshot and run concurrently, half executing the chunked
// eight-worker PHJ and half the deliberately sequential NOJOIN. Every
// run's tuples, simulated elapsed time, and counters must match a solo
// run of the same algorithm on its own fork.
func TestParallelJoinRaceSharedSnapshot(t *testing.T) {
	d, err := derby.Generate(derby.DefaultConfig(100, 100, derby.ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := d.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	runOnFork := func(algo Algorithm) (*Result, error) {
		f := sn.Fork()
		f.DB.SetQueryJobs(8)
		env := EnvForDerby(f)
		env.DB.ColdRestart()
		return Run(env, algo, env.BySelectivity(90, 90))
	}

	want := map[Algorithm]*Result{}
	for _, algo := range []Algorithm{PHJ, NOJOIN} {
		res, err := runOnFork(algo)
		if err != nil {
			t.Fatalf("solo %s: %v", algo, err)
		}
		want[algo] = res
	}

	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		algo := PHJ
		if i%2 == 1 {
			algo = NOJOIN
		}
		wg.Add(1)
		go func(i int, algo Algorithm) {
			defer wg.Done()
			res, err := runOnFork(algo)
			if err != nil {
				t.Errorf("session %d %s: %v", i, algo, err)
				return
			}
			w := want[algo]
			if res.Tuples != w.Tuples || res.Elapsed != w.Elapsed || res.Counters != w.Counters {
				t.Errorf("session %d %s: diverged from solo run\n got %d tuples %v %+v\nwant %d tuples %v %+v",
					i, algo, res.Tuples, res.Elapsed, res.Counters, w.Tuples, w.Elapsed, w.Counters)
			}
		}(i, algo)
	}
	wg.Wait()
}
