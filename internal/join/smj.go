package join

import (
	"sort"

	"treebench/internal/engine"
	"treebench/internal/index"
	"treebench/internal/storage"
)

// The (provider-id, payload) sort-run tuples and their accounted widths.
const (
	provTupleBytes = 8 + 16 // rid + name
	patTupleBytes  = 8 + 4  // pcp rid + age
)

type provTuple struct {
	rid  storage.Rid
	name string
}

type patTuple struct {
	pcp storage.Rid
	age int64
}

// runSMJ is the sort-based pointer join the paper tried first and dropped:
// "We started testing sort-based algorithms but they proved to be worse
// than hash-based ones and we dropped them" (§5.1). It is implemented here
// so that claim is reproducible (experiment A1): both inputs are reduced to
// (provider-id, payload) tuples, sorted on the provider id, and merged.
//
// A run larger than the memory budget pays an external-sort pass: its
// tuples are written out and read back once, sequentially (charged as
// temp-file I/O), before merging.
func runSMJ(env *Env, q Query) (*Result, error) {
	if env.DB.Batch() > 1 {
		return runSMJBatched(env, q)
	}
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	k1, k2 := q.K1, q.K2
	res := &Result{}

	// Build the provider run: the key range is chunked, and concatenating
	// the chunks' partial runs in chunk order reproduces the sequential
	// scan's key order exactly (the sort below re-orders on rid anyway).
	provRanges := chunkScan(1, k2, 1)
	provParts := make([][]provTuple, len(provRanges))
	err = db.RunChunks(len(provRanges), func(w *engine.Session, c int) error {
		return upinIdx.Backend.Scan(w.Client, provRanges[c].Lo, provRanges[c].Hi, func(e index.Entry) (bool, error) {
			ph, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			nameV, err := w.Handles.Attr(ph, ai.provName)
			w.Handles.Unref(ph)
			if err != nil {
				return false, err
			}
			provParts[c] = append(provParts[c], provTuple{e.Rid, nameV.Str})
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var provRun []provTuple
	for _, p := range provParts {
		provRun = append(provRun, p...)
	}

	// Build the patient run, chunked the same way.
	patRanges := chunkScan(1, k1, 1)
	patParts := make([][]patTuple, len(patRanges))
	err = db.RunChunks(len(patRanges), func(w *engine.Session, c int) error {
		return mrnIdx.Backend.Scan(w.Client, patRanges[c].Lo, patRanges[c].Hi, func(e index.Entry) (bool, error) {
			pa, err := w.Handles.Get(e.Rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(pa)
			pcpV, err := w.Handles.Attr(pa, ai.patPcp)
			if err != nil {
				return false, err
			}
			ageV, err := w.Handles.Attr(pa, ai.patAge)
			if err != nil {
				return false, err
			}
			patParts[c] = append(patParts[c], patTuple{pcpV.Ref, ageV.Int})
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var patRun []patTuple
	for _, p := range patParts {
		patRun = append(patRun, p...)
	}

	smjMerge(db, res, provRun, patRun)
	return res, nil
}

// smjMerge is the single sequential tail of the SMJ pipeline — sort, spill
// and merge — charged to the session meter after the chunk meters merged
// into it. It is shared verbatim by the scalar and batched run formations.
func smjMerge(db *engine.Database, res *Result, provRun []provTuple, patRun []patTuple) {
	meter := db.Meter

	// spillPass charges one external-sort pass (write + read back) for a
	// run of n tuples when it exceeds the budget.
	spillPass := func(n int, tupleBytes int) bool {
		bytes := int64(n) * int64(tupleBytes)
		if bytes <= db.Machine.HashBudget {
			return false
		}
		pages := (bytes + storage.PageSize - 1) / storage.PageSize
		for i := int64(0); i < pages; i++ {
			meter.DiskWrite()
		}
		for i := int64(0); i < pages; i++ {
			meter.DiskRead()
		}
		return true
	}

	// Sort both runs on the provider id. Sorting charges n·log n compares
	// plus the external pass when a run outgrows memory.
	meter.Sort(int64(len(provRun)))
	spilledProv := spillPass(len(provRun), provTupleBytes)
	sort.Slice(provRun, func(i, j int) bool { return provRun[i].rid.Less(provRun[j].rid) })
	meter.Sort(int64(len(patRun)))
	spilledPat := spillPass(len(patRun), patTupleBytes)
	sort.Slice(patRun, func(i, j int) bool { return patRun[i].pcp.Less(patRun[j].pcp) })
	res.Swapped = spilledProv || spilledPat
	res.HashTableBytes = int64(len(provRun))*provTupleBytes + int64(len(patRun))*patTupleBytes

	// Merge. Providers are unique on rid; patients may repeat one.
	pi := 0
	for _, pt := range patRun {
		for pi < len(provRun) && provRun[pi].rid.Less(pt.pcp) {
			meter.Compare()
			pi++
		}
		meter.Compare()
		if pi < len(provRun) && provRun[pi].rid == pt.pcp {
			emit(meter, res, provRun[pi].name, pt.age)
		}
	}
}

// SMJMemory reports the bytes the two sort runs occupy for the given
// selected cardinalities (planning support and tests).
func SMJMemory(selParents, selChildren int64) int64 {
	return selParents*(8+16) + selChildren*(8+4)
}
