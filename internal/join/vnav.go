package join

import (
	"treebench/internal/index"
)

// runVNOJOIN is the value-based counterpart of NOJOIN, implemented to
// reproduce the result the paper builds on ("In [14, 4], the authors
// compare pointer-based against value-based algorithms and favors the
// former. In this paper, we build on these results."): instead of
// dereferencing the child's physical parent pointer, each child carries a
// foreign-key *value* (the Derby schema's random_integer equals its
// provider's upin) that must be resolved through the parent's key index —
// a B+-tree descent per child where the pointer join pays a single page
// access.
//
//	For all patients whose mrn < k1                 /* index scan */
//	  look up the provider with upin = pa.random_integer  /* index descent */
//	  if p.upin < k2 add f(p,pa) to the result
func runVNOJOIN(env *Env, q Query) (*Result, error) {
	db := env.DB
	ai, err := attrs(env)
	if err != nil {
		return nil, err
	}
	mrnIdx, err := indexOrErr(env, env.Child.Name, env.ChildKeyAttr)
	if err != nil {
		return nil, err
	}
	upinIdx, err := indexOrErr(env, env.Parent.Name, env.ParentKeyAttr)
	if err != nil {
		return nil, err
	}
	fkIdx := env.Child.Class.AttrIndex(env.ChildFKAttr)
	if fkIdx < 0 {
		return nil, errNoForeignKey(env)
	}
	meter := db.Meter
	k1, k2 := q.K1, q.K2
	res := &Result{}
	err = mrnIdx.Backend.Scan(db.Client, 1, k1, func(e index.Entry) (bool, error) {
		pa, err := db.Handles.Get(e.Rid)
		if err != nil {
			return false, err
		}
		defer db.Handles.Unref(pa)
		fkV, err := db.Handles.Attr(pa, fkIdx)
		if err != nil {
			return false, err
		}
		// The value-based resolution: descend the parent key index.
		meter.Compare()
		if fkV.Int >= k2 {
			return true, nil // the key value IS the predicate attribute
		}
		rids, err := upinIdx.Backend.Lookup(db.Client, fkV.Int)
		if err != nil {
			return false, err
		}
		for _, prid := range rids {
			ph, err := db.Handles.Get(prid)
			if err != nil {
				return false, err
			}
			nameV, err := db.Handles.Attr(ph, ai.provName)
			if err != nil {
				db.Handles.Unref(ph)
				return false, err
			}
			db.Handles.Unref(ph)
			ageV, err := db.Handles.Attr(pa, ai.patAge)
			if err != nil {
				return false, err
			}
			emit(meter, res, nameV.Str, ageV.Int)
		}
		return true, nil
	})
	return res, err
}

func errNoForeignKey(env *Env) error {
	return errFK{attr: env.ChildFKAttr, class: env.Child.Class.Name}
}

type errFK struct{ attr, class string }

func (e errFK) Error() string {
	return "join: VNOJOIN needs a foreign-key value attribute; class " + e.class + " has no attribute \"" + e.attr + "\""
}
