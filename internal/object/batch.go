package object

import (
	"fmt"

	"treebench/internal/storage"
)

// Batch is the carrier of the vectorized execution core: fixed-capacity,
// column-oriented slices over one run of scanned objects. Operators fill
// Rids/Recs/Classes while scanning, evaluate predicates into the Sel
// validity vector, and extract projected attributes into Cols — then merge
// one sim.BatchCharges delta covering the whole batch. The carrier never
// touches the shared handle table: batches are private to one scan chunk,
// so the "one structure per object in memory" discipline the table enforces
// is irrelevant to them (each object appears in exactly one batch).
type Batch struct {
	Rids    []storage.Rid
	Recs    [][]byte
	Classes []*Class
	// Sel is the validity selection vector, parallel to Rids: Sel[i]
	// reports that row i survived the batch's predicates.
	Sel []bool
	// Cols holds the extracted attribute value columns, parallel to Rids;
	// only rows with Sel[i] set carry meaningful values.
	Cols [][]Value

	cap int
}

// NewBatch returns a batch of the given capacity (records per batch).
func NewBatch(capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	return &Batch{
		Rids:    make([]storage.Rid, 0, capacity),
		Recs:    make([][]byte, 0, capacity),
		Classes: make([]*Class, 0, capacity),
		cap:     capacity,
	}
}

// Len returns the number of buffered rows.
func (b *Batch) Len() int { return len(b.Rids) }

// Full reports whether the batch reached its capacity.
func (b *Batch) Full() bool { return len(b.Rids) >= b.cap }

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() {
	b.Rids = b.Rids[:0]
	b.Recs = b.Recs[:0]
	b.Classes = b.Classes[:0]
	b.Sel = b.Sel[:0]
	b.Cols = b.Cols[:0]
}

// Append buffers one scanned row. Record buffers are sub-slices of page
// buffers and stay valid across cache eviction, so holding them for the
// batch's lifetime is safe (the scalar path pins them in handles the same
// way).
func (b *Batch) Append(rid storage.Rid, rec []byte, cls *Class) {
	b.Rids = append(b.Rids, rid)
	b.Recs = append(b.Recs, rec)
	b.Classes = append(b.Classes, cls)
}

// SetCols sizes Sel and n value columns to the batch's current length,
// reusing backing arrays where possible.
func (b *Batch) SetCols(n int) {
	rows := b.Len()
	if cap(b.Sel) < rows {
		b.Sel = make([]bool, rows)
	} else {
		b.Sel = b.Sel[:rows]
		for i := range b.Sel {
			b.Sel[i] = false
		}
	}
	for len(b.Cols) < n {
		b.Cols = append(b.Cols, nil)
	}
	b.Cols = b.Cols[:n]
	for j := range b.Cols {
		if cap(b.Cols[j]) < rows {
			b.Cols[j] = make([]Value, rows)
		} else {
			b.Cols[j] = b.Cols[j][:rows]
		}
	}
}

// Fetcher is the bulk record-materialization path of the vectorized
// operators (§4.4's bulk allocation, taken to its logical end): it reads
// records through the table's pager with exactly the page traffic the
// scalar Table.Get path generates, but materializes no shared handles.
//
// Run reuse: consecutive fetches from one page skip the redundant pager
// read. The skipped read is a guaranteed client-cache hit on the LRU front
// (the page was the last one read, and nothing moved since), so charging
// the hit counter and reusing the held buffer is byte-identical to
// performing it — hits are counter-only and moving the front entry to the
// front changes nothing. Callers MUST call Invalidate after any pager
// activity outside this fetcher (a prefetch, an index-leaf or collection
// chunk read): invalidating is always exact — the next fetch then performs
// the real read, just like the scalar path — while reusing across foreign
// reads would not be.
type Fetcher struct {
	t        *Table
	lastPage storage.PageID
	lastBuf  []byte
	ok       bool
}

// Fetcher returns a bulk record reader over the table's pager.
func (t *Table) Fetcher() *Fetcher { return &Fetcher{t: t} }

// Invalidate forgets the held page, forcing the next fetch to read.
func (f *Fetcher) Invalidate() { f.ok = false; f.lastBuf = nil }

// pageGet returns the record at (page, slot), reusing the held buffer for
// a repeat of the last fetched page and reading through the pager
// otherwise.
func (f *Fetcher) pageGet(page storage.PageID, slot uint16) (rec []byte, forwarded bool, err error) {
	if f.ok && page == f.lastPage {
		f.t.meter.ClientHit() // the skipped re-read, an LRU-front hit
	} else {
		buf, err := f.t.pager.Read(page)
		if err != nil {
			f.Invalidate()
			return nil, false, err
		}
		f.lastPage, f.lastBuf, f.ok = page, buf, true
	}
	return storage.LoadPage(f.lastBuf).Get(slot)
}

// record mirrors storage.Get, including the single-hop forwarding rule and
// its error texts, over the run-reusing page reader.
func (f *Fetcher) record(rid storage.Rid) ([]byte, error) {
	if rid.IsNil() {
		return nil, fmt.Errorf("%w: nil rid", storage.ErrNoRecord)
	}
	rec, forwarded, err := f.pageGet(rid.Page, rid.Slot)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", rid, err)
	}
	if !forwarded {
		return rec, nil
	}
	target, err := storage.DecodeRid(rec)
	if err != nil {
		return nil, err
	}
	rec, forwarded, err = f.pageGet(target.Page, target.Slot)
	if err != nil {
		return nil, fmt.Errorf("%s→%s: %w", rid, target, err)
	}
	if forwarded {
		return nil, fmt.Errorf("storage: double forwarding at %s", rid)
	}
	return rec, nil
}

// Fetch returns the record and class at rid. Page traffic is charged
// through the pager (or the hit shortcut above); the caller accounts the
// per-object HandleGet/HandleUnref pair in its batch delta.
func (f *Fetcher) Fetch(rid storage.Rid) ([]byte, *Class, error) {
	rec, err := f.record(rid)
	if err != nil {
		return nil, nil, err
	}
	cls := f.t.classes.ByID(ClassID(rec))
	if cls == nil {
		return nil, nil, fmt.Errorf("object: record at %s has unknown class %d", rid, ClassID(rec))
	}
	return rec, cls, nil
}
