package object

import (
	"testing"

	"treebench/internal/storage"
)

func benchClass() *Class {
	return NewClass("Bench", []Attr{
		{Name: "name", Kind: KindString, StrLen: 16},
		{Name: "a", Kind: KindInt},
		{Name: "b", Kind: KindInt},
		{Name: "ref", Kind: KindRef},
	})
}

func benchValues() []Value {
	return []Value{
		StringValue("bench-object"), IntValue(42), IntValue(7),
		RefValue(storage.Rid{Page: 3, Slot: 1}),
	}
}

func BenchmarkEncode(b *testing.B) {
	c := benchClass()
	vals := benchValues()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(c, vals, DefaultIndexSlots); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeAttr(b *testing.B) {
	c := benchClass()
	rec, _ := Encode(c, benchValues(), DefaultIndexSlots)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAttr(c, rec, i%len(c.Attrs)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleGetUnref(b *testing.B) {
	reg := NewRegistry()
	c := benchClass()
	reg.Register(c)
	store := storage.NewStore(0)
	f, _ := store.CreateFile("bench")
	rec, _ := Encode(c, benchValues(), 0)
	rid, _ := f.Append(store.Disk, rec)
	tbl := NewTable(newTestMeter(), store.Disk, reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := tbl.Get(rid)
		if err != nil {
			b.Fatal(err)
		}
		tbl.Unref(h)
	}
}
