package object

import (
	"fmt"
	"sort"
)

// Attr describes one attribute of a class.
type Attr struct {
	Name string
	Kind Kind
	// StrLen is the inline width of a KindString attribute; ignored for
	// other kinds. The Derby schema uses 16 everywhere.
	StrLen int
}

// size returns the encoded width of the attribute.
func (a Attr) size() int {
	switch a.Kind {
	case KindInt:
		return 4
	case KindChar:
		return 1
	case KindString:
		return a.StrLen
	case KindRef, KindSet:
		return 8
	default:
		panic(fmt.Sprintf("object: unknown kind %v", a.Kind))
	}
}

// Class is an object type: a named, ordered list of attributes with a
// computed fixed layout (Derby objects are fixed-size tuples; variable
// parts — large sets — are out-of-line).
type Class struct {
	ID    uint16
	Name  string
	Attrs []Attr

	offsets []int // attribute offsets relative to the end of the header
	width   int   // total attribute bytes
	byName  map[string]int

	// Evolution state: epochAttrs[e] is the attribute count at epoch e
	// (nil until the first AddAttr); defaults holds one default per
	// attribute added by evolution.
	epochAttrs []int
	defaults   []Value

	// Inheritance: the direct superclass and known subclasses.
	parent     *Class
	subclasses []*Class
}

// NewClass builds a class with the given attributes. IDs are assigned by
// the Registry.
func NewClass(name string, attrs []Attr) *Class {
	c := &Class{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	off := 0
	for i, a := range attrs {
		if _, dup := c.byName[a.Name]; dup {
			panic(fmt.Sprintf("object: class %s has duplicate attribute %q", name, a.Name))
		}
		c.byName[a.Name] = i
		c.offsets = append(c.offsets, off)
		off += a.size()
	}
	c.width = off
	return c
}

// AttrIndex returns the position of the named attribute, or -1.
func (c *Class) AttrIndex(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	return -1
}

// Width returns the fixed attribute-data width in bytes (header excluded).
func (c *Class) Width() int { return c.width }

// Registry maps class IDs to classes for record decoding.
type Registry struct {
	byID   map[uint16]*Class
	byName map[string]*Class
	nextID uint16
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint16]*Class), byName: make(map[string]*Class), nextID: 1}
}

// Register assigns an ID to the class and records it. Registering two
// classes with one name fails.
func (r *Registry) Register(c *Class) error {
	if _, ok := r.byName[c.Name]; ok {
		return fmt.Errorf("object: class %q already registered", c.Name)
	}
	c.ID = r.nextID
	r.nextID++
	r.byID[c.ID] = c
	r.byName[c.Name] = c
	return nil
}

// ByID returns the class with the given ID, or nil.
func (r *Registry) ByID(id uint16) *Class { return r.byID[id] }

// ByName returns the class with the given name, or nil.
func (r *Registry) ByName(name string) *Class { return r.byName[name] }

// Names returns registered class names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the registry and its whole class graph (inheritance
// links included) for a mutable forked session, which may evolve classes in
// place. It returns the copy and a remap function translating any class
// pointer from the original graph to its clone (nil maps to nil). IDs,
// layouts and the next-ID counter are preserved exactly.
func (r *Registry) Clone() (*Registry, func(*Class) *Class) {
	memo := make(map[*Class]*Class, len(r.byID))
	var cloneClass func(c *Class) *Class
	cloneClass = func(c *Class) *Class {
		if c == nil {
			return nil
		}
		if cc, ok := memo[c]; ok {
			return cc
		}
		cc := &Class{
			ID:     c.ID,
			Name:   c.Name,
			Attrs:  append([]Attr(nil), c.Attrs...),
			width:  c.width,
			byName: make(map[string]int, len(c.byName)),
		}
		// Insert before recursing: parent and subclasses form cycles.
		memo[c] = cc
		cc.offsets = append([]int(nil), c.offsets...)
		for k, v := range c.byName {
			cc.byName[k] = v
		}
		cc.epochAttrs = append([]int(nil), c.epochAttrs...)
		cc.defaults = append([]Value(nil), c.defaults...)
		cc.parent = cloneClass(c.parent)
		for _, sub := range c.subclasses {
			cc.subclasses = append(cc.subclasses, cloneClass(sub))
		}
		return cc
	}
	nr := &Registry{
		byID:   make(map[uint16]*Class, len(r.byID)),
		byName: make(map[string]*Class, len(r.byName)),
		nextID: r.nextID,
	}
	for id, c := range r.byID {
		nr.byID[id] = cloneClass(c)
	}
	for name, c := range r.byName {
		nr.byName[name] = cloneClass(c)
	}
	return nr, func(c *Class) *Class {
		if c == nil {
			return nil
		}
		return cloneClass(c)
	}
}
