package object

import (
	"fmt"
	"sort"
)

// Attr describes one attribute of a class.
type Attr struct {
	Name string
	Kind Kind
	// StrLen is the inline width of a KindString attribute; ignored for
	// other kinds. The Derby schema uses 16 everywhere.
	StrLen int
}

// size returns the encoded width of the attribute.
func (a Attr) size() int {
	switch a.Kind {
	case KindInt:
		return 4
	case KindChar:
		return 1
	case KindString:
		return a.StrLen
	case KindRef, KindSet:
		return 8
	default:
		panic(fmt.Sprintf("object: unknown kind %v", a.Kind))
	}
}

// Class is an object type: a named, ordered list of attributes with a
// computed fixed layout (Derby objects are fixed-size tuples; variable
// parts — large sets — are out-of-line).
type Class struct {
	ID    uint16
	Name  string
	Attrs []Attr

	offsets []int // attribute offsets relative to the end of the header
	width   int   // total attribute bytes
	byName  map[string]int

	// Evolution state: epochAttrs[e] is the attribute count at epoch e
	// (nil until the first AddAttr); defaults holds one default per
	// attribute added by evolution.
	epochAttrs []int
	defaults   []Value

	// Inheritance: the direct superclass and known subclasses.
	parent     *Class
	subclasses []*Class
}

// NewClass builds a class with the given attributes. IDs are assigned by
// the Registry.
func NewClass(name string, attrs []Attr) *Class {
	c := &Class{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	off := 0
	for i, a := range attrs {
		if _, dup := c.byName[a.Name]; dup {
			panic(fmt.Sprintf("object: class %s has duplicate attribute %q", name, a.Name))
		}
		c.byName[a.Name] = i
		c.offsets = append(c.offsets, off)
		off += a.size()
	}
	c.width = off
	return c
}

// AttrIndex returns the position of the named attribute, or -1.
func (c *Class) AttrIndex(name string) int {
	if i, ok := c.byName[name]; ok {
		return i
	}
	return -1
}

// Width returns the fixed attribute-data width in bytes (header excluded).
func (c *Class) Width() int { return c.width }

// Registry maps class IDs to classes for record decoding.
type Registry struct {
	byID   map[uint16]*Class
	byName map[string]*Class
	nextID uint16
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[uint16]*Class), byName: make(map[string]*Class), nextID: 1}
}

// Register assigns an ID to the class and records it. Registering two
// classes with one name fails.
func (r *Registry) Register(c *Class) error {
	if _, ok := r.byName[c.Name]; ok {
		return fmt.Errorf("object: class %q already registered", c.Name)
	}
	c.ID = r.nextID
	r.nextID++
	r.byID[c.ID] = c
	r.byName[c.Name] = c
	return nil
}

// ByID returns the class with the given ID, or nil.
func (r *Registry) ByID(id uint16) *Class { return r.byID[id] }

// ByName returns the class with the given name, or nil.
func (r *Registry) ByName(name string) *Class { return r.byName[name] }

// Names returns registered class names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
