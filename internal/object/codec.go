package object

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/storage"
)

// Record header layout (§4.4 lists what O2 keeps per object; the on-disk
// half of it is this header):
//
//	0..2    classID     uint16
//	2       flags       uint8
//	3       indexCount  uint8   indexes this object currently belongs to
//	4..8    version     uint32
//	8..12   schemaEpoch uint32  schema-update history marker
//	12..14  indexCap    uint16  index slots allocated in this header
//	14..16  reserved
//	16..    indexCap × uint32 index ids
//	then    fixed-width attribute data (see Class layout)
//
// An object created while its collection is indexed gets DefaultIndexSlots
// slots (§3.2: "a header allowing to store information about 8 indexes");
// an object created unindexed gets none, and attaching the first index later
// forces the record to grow — the relocation storm the paper fell into.
const (
	baseHeaderLen = 16
	indexSlotLen  = 4

	// DefaultIndexSlots is the index capacity given to objects that are
	// born into an indexed collection.
	DefaultIndexSlots = 8
)

// Header flag bits.
const (
	FlagPersistent = 1 << 0
	FlagDeleted    = 1 << 1
)

// HeaderLen returns the header size for a given index capacity.
func HeaderLen(indexCap int) int { return baseHeaderLen + indexCap*indexSlotLen }

// EncodedLen returns the record size of an object of class c with the given
// index capacity.
func EncodedLen(c *Class, indexCap int) int { return HeaderLen(indexCap) + c.Width() }

// Encode serializes an object. values must match c.Attrs. indexCap is the
// number of index slots to allocate in the header.
func Encode(c *Class, values []Value, indexCap int) ([]byte, error) {
	if len(values) != len(c.Attrs) {
		return nil, fmt.Errorf("object: class %s has %d attributes, got %d values", c.Name, len(c.Attrs), len(values))
	}
	rec := make([]byte, EncodedLen(c, indexCap))
	binary.LittleEndian.PutUint16(rec[0:2], c.ID)
	rec[2] = FlagPersistent
	setRecordEpoch(rec, c.Epoch())
	binary.LittleEndian.PutUint16(rec[12:14], uint16(indexCap))
	base := HeaderLen(indexCap)
	for i, v := range values {
		a := c.Attrs[i]
		if v.Kind != a.Kind {
			return nil, fmt.Errorf("object: %s.%s is %v, got %v", c.Name, a.Name, a.Kind, v.Kind)
		}
		off := base + c.offsets[i]
		switch a.Kind {
		case KindInt:
			binary.LittleEndian.PutUint32(rec[off:off+4], uint32(int32(v.Int)))
		case KindChar:
			rec[off] = byte(v.Int)
		case KindString:
			if len(v.Str) > a.StrLen {
				return nil, fmt.Errorf("object: %s.%s: string %q exceeds width %d", c.Name, a.Name, v.Str, a.StrLen)
			}
			copy(rec[off:off+a.StrLen], v.Str)
		case KindRef, KindSet:
			v.Ref.Encode(rec[off : off : off+storage.EncodedRidLen])
		}
	}
	return rec, nil
}

// ClassID reads the class id from a record without decoding the rest.
func ClassID(rec []byte) uint16 { return binary.LittleEndian.Uint16(rec[0:2]) }

// headerLenOf reads the actual header length of a record.
func headerLenOf(rec []byte) int {
	cap := int(binary.LittleEndian.Uint16(rec[12:14]))
	return HeaderLen(cap)
}

// DecodeAttr extracts attribute i of class c from rec without touching the
// others — the engine's get_att.
func DecodeAttr(c *Class, rec []byte, i int) (Value, error) {
	if i < 0 || i >= len(c.Attrs) {
		return Value{}, fmt.Errorf("object: class %s has no attribute %d", c.Name, i)
	}
	a := c.Attrs[i]
	if !carriesAttr(c, rec, i) {
		// The record predates this attribute (dynamic class evolution):
		// read its registered default.
		def, ok := c.defaultFor(i)
		if !ok {
			return Value{}, fmt.Errorf("object: record predates %s.%s and no default exists", c.Name, a.Name)
		}
		return def, nil
	}
	off := headerLenOf(rec) + c.offsets[i]
	if off+a.size() > len(rec) {
		return Value{}, fmt.Errorf("object: record too short for %s.%s", c.Name, a.Name)
	}
	switch a.Kind {
	case KindInt:
		return IntValue(int64(int32(binary.LittleEndian.Uint32(rec[off : off+4])))), nil
	case KindChar:
		return CharValue(rec[off]), nil
	case KindString:
		b := rec[off : off+a.StrLen]
		end := len(b)
		for end > 0 && b[end-1] == 0 {
			end--
		}
		return StringValue(string(b[:end])), nil
	case KindRef:
		r, err := storage.DecodeRid(rec[off:])
		if err != nil {
			return Value{}, err
		}
		return RefValue(r), nil
	case KindSet:
		r, err := storage.DecodeRid(rec[off:])
		if err != nil {
			return Value{}, err
		}
		return SetValue(r), nil
	default:
		return Value{}, fmt.Errorf("object: unknown kind %v", a.Kind)
	}
}

// EncodeAttrInPlace overwrites attribute i inside rec. The record size does
// not change (all Derby attributes are fixed-width).
func EncodeAttrInPlace(c *Class, rec []byte, i int, v Value) error {
	a := c.Attrs[i]
	if v.Kind != a.Kind {
		return fmt.Errorf("object: %s.%s is %v, got %v", c.Name, a.Name, a.Kind, v.Kind)
	}
	if !carriesAttr(c, rec, i) {
		return fmt.Errorf("%w (%s.%s)", ErrStaleRecord, c.Name, a.Name)
	}
	off := headerLenOf(rec) + c.offsets[i]
	if off+a.size() > len(rec) {
		return fmt.Errorf("object: record too short for %s.%s", c.Name, a.Name)
	}
	switch a.Kind {
	case KindInt:
		binary.LittleEndian.PutUint32(rec[off:off+4], uint32(int32(v.Int)))
	case KindChar:
		rec[off] = byte(v.Int)
	case KindString:
		if len(v.Str) > a.StrLen {
			return fmt.Errorf("object: string %q exceeds width %d", v.Str, a.StrLen)
		}
		for j := 0; j < a.StrLen; j++ {
			rec[off+j] = 0
		}
		copy(rec[off:], v.Str)
	case KindRef, KindSet:
		v.Ref.Encode(rec[off : off : off+storage.EncodedRidLen])
	}
	return nil
}

// IndexRefs returns the index ids recorded in the object header.
func IndexRefs(rec []byte) []uint32 {
	count := int(rec[3])
	out := make([]uint32, 0, count)
	for i := 0; i < count; i++ {
		off := baseHeaderLen + i*indexSlotLen
		out = append(out, binary.LittleEndian.Uint32(rec[off:off+4]))
	}
	return out
}

// AddIndexRef records membership in index id. If the header has a free
// slot, rec is updated in place and returned with grown=false. Otherwise a
// new, larger record is returned (grown=true) and the caller must rewrite
// it through File.Update — which may relocate the object (§3.2).
func AddIndexRef(rec []byte, id uint32) (out []byte, grown bool, err error) {
	capSlots := int(binary.LittleEndian.Uint16(rec[12:14]))
	count := int(rec[3])
	for i := 0; i < count; i++ {
		off := baseHeaderLen + i*indexSlotLen
		if binary.LittleEndian.Uint32(rec[off:off+4]) == id {
			return rec, false, nil // already a member
		}
	}
	if count < capSlots {
		off := baseHeaderLen + count*indexSlotLen
		binary.LittleEndian.PutUint32(rec[off:off+4], id)
		rec[3] = byte(count + 1)
		return rec, false, nil
	}
	if count >= 255 {
		return nil, false, fmt.Errorf("object: index membership overflow")
	}
	// Grow the header by DefaultIndexSlots more slots.
	newCap := capSlots + DefaultIndexSlots
	grownRec := make([]byte, len(rec)+DefaultIndexSlots*indexSlotLen)
	copy(grownRec[:baseHeaderLen], rec[:baseHeaderLen])
	copy(grownRec[baseHeaderLen:], rec[baseHeaderLen:baseHeaderLen+capSlots*indexSlotLen])
	copy(grownRec[HeaderLen(newCap):], rec[HeaderLen(capSlots):])
	binary.LittleEndian.PutUint16(grownRec[12:14], uint16(newCap))
	off := baseHeaderLen + count*indexSlotLen
	binary.LittleEndian.PutUint32(grownRec[off:off+4], id)
	grownRec[3] = byte(count + 1)
	return grownRec, true, nil
}

// RemoveIndexRef removes membership in index id, in place.
func RemoveIndexRef(rec []byte, id uint32) bool {
	count := int(rec[3])
	for i := 0; i < count; i++ {
		off := baseHeaderLen + i*indexSlotLen
		if binary.LittleEndian.Uint32(rec[off:off+4]) == id {
			last := baseHeaderLen + (count-1)*indexSlotLen
			copy(rec[off:off+4], rec[last:last+4])
			rec[3] = byte(count - 1)
			return true
		}
	}
	return false
}
