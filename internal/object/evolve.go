package object

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Dynamic class evolution (§4.4 lists it among the features that force O2
// to keep per-object system information: "Some information about the
// schema update history of the object class"). Attributes are appended to
// a class, never removed or retyped; each addition bumps the class epoch.
// Records remember the epoch they were written at (header bytes 8..12), so
// a reader can tell which attributes a record physically carries: reads of
// newer attributes return the registered default, and writes require the
// record to be upgraded — re-encoded at the current epoch, which grows it
// and may relocate it (the same mechanics as §3.2's index storm).

// ErrStaleRecord is returned when writing an attribute a record's epoch
// does not carry yet.
var ErrStaleRecord = errors.New("object: record predates attribute; upgrade it first")

// Epoch returns the class epoch: the number of schema updates applied.
func (c *Class) Epoch() uint32 { return uint32(len(c.epochAttrs)) }

// attrsAt returns how many attributes the class had at the given epoch.
func (c *Class) attrsAt(epoch uint32) int {
	if len(c.epochAttrs) == 0 || epoch >= uint32(len(c.epochAttrs)) {
		return len(c.Attrs)
	}
	return c.epochAttrs[epoch]
}

// AddAttr appends an attribute with a default value for records written
// before the change, and bumps the class epoch. Classes with subclasses
// cannot evolve: a parent-side append would collide with the subclasses'
// own attributes, whose layouts start where the parent's ends.
func (c *Class) AddAttr(a Attr, def Value) error {
	if c.hasSubclasses() {
		return fmt.Errorf("object: cannot evolve class %s: it has subclasses", c.Name)
	}
	if _, dup := c.byName[a.Name]; dup {
		return fmt.Errorf("object: class %s already has attribute %q", c.Name, a.Name)
	}
	if def.Kind != a.Kind {
		return fmt.Errorf("object: default for %s.%s is %v, want %v", c.Name, a.Name, def.Kind, a.Kind)
	}
	if c.epochAttrs == nil {
		c.epochAttrs = []int{len(c.Attrs)}
	} else {
		c.epochAttrs = append(c.epochAttrs, len(c.Attrs))
	}
	c.byName[a.Name] = len(c.Attrs)
	c.offsets = append(c.offsets, c.width)
	c.width += a.size()
	c.Attrs = append(c.Attrs, a)
	c.defaults = append(c.defaults, def)
	return nil
}

// defaultFor returns the default value of attribute i (attributes added by
// evolution have one; originals do not need one).
func (c *Class) defaultFor(i int) (Value, bool) {
	base := len(c.Attrs) - len(c.defaults)
	if i < base {
		return Value{}, false
	}
	return c.defaults[i-base], true
}

// RecordEpoch reads the schema epoch a record was written at.
func RecordEpoch(rec []byte) uint32 { return binary.LittleEndian.Uint32(rec[8:12]) }

func setRecordEpoch(rec []byte, epoch uint32) {
	binary.LittleEndian.PutUint32(rec[8:12], epoch)
}

// carriesAttr reports whether the record physically contains attribute i.
func carriesAttr(c *Class, rec []byte, i int) bool {
	return i < c.attrsAt(RecordEpoch(rec))
}

// UpgradeRecord re-encodes rec at the class's current epoch, appending
// defaults for the attributes it predates. It returns the new record and
// whether anything changed.
func UpgradeRecord(c *Class, rec []byte) ([]byte, bool, error) {
	epoch := RecordEpoch(rec)
	if c.attrsAt(epoch) == len(c.Attrs) {
		return rec, false, nil
	}
	values := make([]Value, len(c.Attrs))
	for i := range c.Attrs {
		if carriesAttr(c, rec, i) {
			v, err := DecodeAttr(c, rec, i)
			if err != nil {
				return nil, false, err
			}
			values[i] = v
		} else {
			def, ok := c.defaultFor(i)
			if !ok {
				return nil, false, fmt.Errorf("object: no default for %s.%s", c.Name, c.Attrs[i].Name)
			}
			values[i] = def
		}
	}
	capSlots := int(binary.LittleEndian.Uint16(rec[12:14]))
	out, err := Encode(c, values, capSlots)
	if err != nil {
		return nil, false, err
	}
	// Preserve header bookkeeping: flags, index membership.
	out[2] = rec[2]
	out[3] = rec[3]
	copy(out[baseHeaderLen:HeaderLen(capSlots)], rec[baseHeaderLen:HeaderLen(capSlots)])
	return out, true, nil
}
