package object

import (
	"errors"
	"testing"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

func evolveClass(t *testing.T) *Class {
	t.Helper()
	return NewClass("Thing", []Attr{
		{Name: "a", Kind: KindInt},
		{Name: "b", Kind: KindString, StrLen: 8},
	})
}

func TestAddAttrAndEpochs(t *testing.T) {
	c := evolveClass(t)
	if c.Epoch() != 0 {
		t.Fatalf("fresh epoch %d", c.Epoch())
	}
	rec0, err := Encode(c, []Value{IntValue(1), StringValue("x")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttr(Attr{Name: "c", Kind: KindInt}, IntValue(7)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttr(Attr{Name: "d", Kind: KindChar}, CharValue('z')); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 2 || c.Width() != 4+8+4+1 {
		t.Fatalf("epoch %d width %d", c.Epoch(), c.Width())
	}
	// Epoch-0 record: old attrs readable, new ones default.
	if v, err := DecodeAttr(c, rec0, c.AttrIndex("a")); err != nil || v.Int != 1 {
		t.Fatalf("a: %v %v", v, err)
	}
	if v, err := DecodeAttr(c, rec0, c.AttrIndex("c")); err != nil || v.Int != 7 {
		t.Fatalf("c default: %v %v", v, err)
	}
	if v, err := DecodeAttr(c, rec0, c.AttrIndex("d")); err != nil || byte(v.Int) != 'z' {
		t.Fatalf("d default: %v %v", v, err)
	}
	// Writing a missing attribute is refused until upgrade.
	if err := EncodeAttrInPlace(c, rec0, c.AttrIndex("c"), IntValue(9)); !errors.Is(err, ErrStaleRecord) {
		t.Fatalf("stale write: %v", err)
	}
	// Upgrade fills defaults and preserves old values.
	up, changed, err := UpgradeRecord(c, rec0)
	if err != nil || !changed {
		t.Fatalf("upgrade: changed=%v err=%v", changed, err)
	}
	if RecordEpoch(up) != 2 {
		t.Fatalf("upgraded epoch %d", RecordEpoch(up))
	}
	for name, want := range map[string]int64{"a": 1, "c": 7} {
		v, err := DecodeAttr(c, up, c.AttrIndex(name))
		if err != nil || v.Int != want {
			t.Fatalf("%s after upgrade: %v %v", name, v, err)
		}
	}
	if v, _ := DecodeAttr(c, up, c.AttrIndex("b")); v.Str != "x" {
		t.Fatalf("b after upgrade: %v", v)
	}
	// Idempotent on current-epoch records.
	if _, changed, err := UpgradeRecord(c, up); err != nil || changed {
		t.Fatalf("second upgrade: changed=%v err=%v", changed, err)
	}
	// Writable now.
	if err := EncodeAttrInPlace(c, up, c.AttrIndex("c"), IntValue(9)); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradePreservesHeaderBookkeeping(t *testing.T) {
	c := evolveClass(t)
	rec, _ := Encode(c, []Value{IntValue(1), StringValue("y")}, DefaultIndexSlots)
	var err error
	rec, _, err = AddIndexRef(rec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttr(Attr{Name: "c", Kind: KindInt}, IntValue(0)); err != nil {
		t.Fatal(err)
	}
	up, _, err := UpgradeRecord(c, rec)
	if err != nil {
		t.Fatal(err)
	}
	refs := IndexRefs(up)
	if len(refs) != 1 || refs[0] != 42 {
		t.Fatalf("index refs lost: %v", refs)
	}
}

func TestAddAttrValidation(t *testing.T) {
	c := evolveClass(t)
	if err := c.AddAttr(Attr{Name: "a", Kind: KindInt}, IntValue(0)); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := c.AddAttr(Attr{Name: "e", Kind: KindInt}, StringValue("no")); err == nil {
		t.Fatal("mismatched default accepted")
	}
}

func TestSubclassEncodingInPackage(t *testing.T) {
	base := NewClass("Base", []Attr{{Name: "x", Kind: KindInt}})
	sub, err := NewSubclass("Sub", base, []Attr{{Name: "y", Kind: KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register(base); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(sub); err != nil {
		t.Fatal(err)
	}
	rec, err := Encode(sub, []Value{IntValue(5), IntValue(6)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prefix decode through the base class.
	if v, err := DecodeAttr(base, rec, 0); err != nil || v.Int != 5 {
		t.Fatalf("prefix decode: %v %v", v, err)
	}
	if !reg.Belongs(ClassID(rec), base) || !reg.Belongs(ClassID(rec), sub) {
		t.Fatal("Belongs broken")
	}
	if reg.Belongs(9999, base) {
		t.Fatal("unknown class belongs")
	}
	other := NewClass("Other", nil)
	reg.Register(other)
	if reg.Belongs(other.ID, base) {
		t.Fatal("unrelated class belongs")
	}
}

func TestHandleAccessors(t *testing.T) {
	reg := NewRegistry()
	c := NewClass("T", []Attr{{Name: "x", Kind: KindInt}})
	reg.Register(c)
	store := storage.NewStore(0)
	f, _ := store.CreateFile("t")
	rec, _ := Encode(c, []Value{IntValue(3)}, DefaultIndexSlots)
	rec, _, _ = AddIndexRef(rec, 11)
	rid, _ := f.Append(store.Disk, rec)
	tbl := NewTable(newTestMeter(), store.Disk, reg)
	if tbl.Pager() != storage.Pager(store.Disk) || tbl.Classes() != reg || tbl.Meter() == nil {
		t.Fatal("accessors broken")
	}
	h, err := tbl.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.Unref(h)
	if got := h.Indexes(); len(got) != 1 || got[0] != 11 {
		t.Fatalf("handle Indexes: %v", got)
	}
}

func TestSetValueString(t *testing.T) {
	v := SetValue(storage.Rid{Page: 2, Slot: 1})
	if v.Kind != KindSet || v.String() != "set@2.1" {
		t.Fatalf("SetValue: %v %q", v.Kind, v.String())
	}
	if RefValue(storage.NilRid).String() != "@nil" {
		t.Fatal("nil ref string")
	}
}

// newTestMeter builds a meter for in-package handle tests.
func newTestMeter() *sim.Meter { return sim.NewMeter(sim.DefaultCostModel()) }
