package object

import (
	"fmt"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

// Handle byte sizes, from §4.4: "All in all, the structure takes 60 Bytes
// of memory that have to be allocated, updated and freed whenever
// necessary" — versus the compact representative the paper proposes for
// literals and lightly-featured objects.
const (
	FatHandleBytes  = 60
	SlimHandleBytes = 16
)

// Handle is the in-memory representative of one object: what O2 hands to
// application code instead of a raw record pointer. Its fields mirror the
// §4.4 inventory (object pointer, flag bits, type pointer, index list,
// refcount, version pointer, schema history). The cost of allocating,
// updating and freeing these is charged through the session meter and is
// the subject of the paper's Figure 9 analysis.
type Handle struct {
	rid      storage.Rid
	class    *Class
	rec      []byte // pinned record bytes
	refcount int
	flags    uint8
	indexes  []uint32 // decoded index membership (duplicated from the record "to have it handy")
}

// Rid returns the physical identifier of the object.
func (h *Handle) Rid() storage.Rid { return h.rid }

// Class returns the object's class.
func (h *Handle) Class() *Class { return h.class }

// Indexes returns the index ids the object belongs to.
func (h *Handle) Indexes() []uint32 { return h.indexes }

// Table materializes and releases Handles, charging the cost model. It is
// the seam where the paper's §4.4 improvements (slim handles, bulk
// allocation) plug in: see sim.Meter.SetSlimHandles and GetBulk.
type Table struct {
	meter   *sim.Meter
	pager   storage.Pager
	classes *Registry

	// live implements O2's "only one structure per object in memory":
	// two variables pointing at one object share a Handle.
	live map[storage.Rid]*Handle

	// Memory accounting for reporting: current and high-water handle bytes.
	bytes    int64
	maxBytes int64
}

// NewTable returns a handle table reading records through pager.
func NewTable(meter *sim.Meter, pager storage.Pager, classes *Registry) *Table {
	return &Table{
		meter:   meter,
		pager:   pager,
		classes: classes,
		live:    make(map[storage.Rid]*Handle),
	}
}

// Pager exposes the table's page source (the object layer's view of the
// client cache).
func (t *Table) Pager() storage.Pager { return t.pager }

// Classes exposes the class registry.
func (t *Table) Classes() *Registry { return t.classes }

// Meter exposes the session meter.
func (t *Table) Meter() *sim.Meter { return t.meter }

func (t *Table) handleBytes() int64 {
	if t.meter.SlimHandles() {
		return SlimHandleBytes
	}
	return FatHandleBytes
}

// Get materializes the Handle for rid, charging one HandleGet (or bumping
// the refcount if the object is already represented in memory).
func (t *Table) Get(rid storage.Rid) (*Handle, error) {
	if h, ok := t.live[rid]; ok {
		h.refcount++
		return h, nil
	}
	rec, err := storage.Get(t.pager, rid)
	if err != nil {
		return nil, err
	}
	cls := t.classes.ByID(ClassID(rec))
	if cls == nil {
		return nil, fmt.Errorf("object: record at %s has unknown class %d", rid, ClassID(rec))
	}
	t.meter.HandleGet()
	h := &Handle{rid: rid, class: cls, rec: rec, refcount: 1, flags: rec[2]}
	if !t.meter.SlimHandles() {
		// Fat handles duplicate the index list so updates need not fix
		// the object in memory (§4.4).
		h.indexes = IndexRefs(rec)
	}
	t.live[rid] = h
	t.bytes += t.handleBytes()
	if t.bytes > t.maxBytes {
		t.maxBytes = t.bytes
	}
	return h, nil
}

// GetBulk materializes handles for a batch of rids. It models §4.4's
// proposed bulk allocation: the per-handle bookkeeping is set up once for
// the whole batch, so only the first handle of the batch pays the full
// HandleGet and the rest pay the slim rate. Without slim-handle mode it
// simply loops Get (bulk allocation is an optimization O2 did not have).
func (t *Table) GetBulk(rids []storage.Rid) ([]*Handle, error) {
	out := make([]*Handle, 0, len(rids))
	for _, rid := range rids {
		h, err := t.Get(rid)
		if err != nil {
			for _, g := range out {
				t.Unref(g)
			}
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// Unref charges one HandleUnref and frees the representative when the last
// reference drops (the real system sometimes delays the free; the cost
// model's HandleUnref constant includes that amortized bookkeeping).
func (t *Table) Unref(h *Handle) {
	t.meter.HandleUnref()
	h.refcount--
	if h.refcount <= 0 {
		delete(t.live, h.rid)
		t.bytes -= t.handleBytes()
	}
}

// Live returns the number of objects currently represented in memory.
func (t *Table) Live() int { return len(t.live) }

// MaxBytes returns the high-water mark of handle memory.
func (t *Table) MaxBytes() int64 { return t.maxBytes }

// Attr reads attribute i through the handle, charging one AttrGet.
func (t *Table) Attr(h *Handle, i int) (Value, error) {
	t.meter.AttrGet()
	return DecodeAttr(h.class, h.rec, i)
}

// AttrByName reads the named attribute through the handle.
func (t *Table) AttrByName(h *Handle, name string) (Value, error) {
	i := h.class.AttrIndex(name)
	if i < 0 {
		return Value{}, fmt.Errorf("object: class %s has no attribute %q", h.class.Name, name)
	}
	return t.Attr(h, i)
}

// SetAttr overwrites attribute i in place and marks the page dirty.
func (t *Table) SetAttr(h *Handle, i int, v Value) error {
	if err := EncodeAttrInPlace(h.class, h.rec, i, v); err != nil {
		return err
	}
	t.meter.AttrGet() // symmetric CPU charge for the write path
	return t.pager.Write(h.rid.Page)
}
