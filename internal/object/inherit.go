package object

import "fmt"

// Inheritance: §4.4 lists the object's "exact type (because of
// inheritance)" among the facts every Handle must carry. A subclass
// extends its parent's attribute list, so a subclass record's layout is a
// strict prefix-extension of the parent's: any record can be decoded
// through any ancestor class, and extents are polymorphic.

// NewSubclass builds a class deriving from parent with extra own
// attributes appended after the inherited ones.
func NewSubclass(name string, parent *Class, own []Attr) (*Class, error) {
	if parent == nil {
		return nil, fmt.Errorf("object: subclass %s needs a parent", name)
	}
	if parent.Epoch() != 0 {
		return nil, fmt.Errorf("object: cannot derive from evolved class %s", parent.Name)
	}
	attrs := make([]Attr, 0, len(parent.Attrs)+len(own))
	attrs = append(attrs, parent.Attrs...)
	for _, a := range own {
		if parent.AttrIndex(a.Name) >= 0 {
			return nil, fmt.Errorf("object: subclass %s redeclares %s.%s", name, parent.Name, a.Name)
		}
		attrs = append(attrs, a)
	}
	c := NewClass(name, attrs)
	c.parent = parent
	parent.subclasses = append(parent.subclasses, c)
	return c, nil
}

// Parent returns the direct superclass, or nil.
func (c *Class) Parent() *Class { return c.parent }

// IsSubclassOf reports whether c is ancestor or derives from it.
func (c *Class) IsSubclassOf(ancestor *Class) bool {
	for x := c; x != nil; x = x.parent {
		if x == ancestor {
			return true
		}
	}
	return false
}

// Subclasses returns the direct subclasses.
func (c *Class) Subclasses() []*Class { return c.subclasses }

// hasSubclasses reports whether any class derives from c (transitively it
// is enough to check direct children: deriving requires a registered
// child).
func (c *Class) hasSubclasses() bool { return len(c.subclasses) > 0 }

// Belongs reports whether a record of class id is an instance of cls
// (exactly or via inheritance), resolving through the registry.
func (r *Registry) Belongs(id uint16, cls *Class) bool {
	rec := r.ByID(id)
	return rec != nil && rec.IsSubclassOf(cls)
}
