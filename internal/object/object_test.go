package object

import (
	"testing"
	"testing/quick"

	"treebench/internal/sim"
	"treebench/internal/storage"
)

func patientClass(t *testing.T) (*Registry, *Class) {
	t.Helper()
	reg := NewRegistry()
	c := NewClass("Patient", []Attr{
		{Name: "name", Kind: KindString, StrLen: 16},
		{Name: "mrn", Kind: KindInt},
		{Name: "age", Kind: KindInt},
		{Name: "sex", Kind: KindChar},
		{Name: "random_integer", Kind: KindInt},
		{Name: "num", Kind: KindInt},
		{Name: "primary_care_provider", Kind: KindRef},
	})
	if err := reg.Register(c); err != nil {
		t.Fatal(err)
	}
	return reg, c
}

func patientValues(name string, mrn, age int64, sex byte, ri, num int64, pcp storage.Rid) []Value {
	return []Value{
		StringValue(name), IntValue(mrn), IntValue(age), CharValue(sex),
		IntValue(ri), IntValue(num), RefValue(pcp),
	}
}

func TestClassLayout(t *testing.T) {
	_, c := patientClass(t)
	// 16 + 4 + 4 + 1 + 4 + 4 + 8 = 41 bytes of attribute data.
	if c.Width() != 41 {
		t.Fatalf("Patient width = %d, want 41", c.Width())
	}
	// Unindexed patient ≈ 57 bytes: the paper's "about 60 bytes".
	if got := EncodedLen(c, 0); got != 57 {
		t.Fatalf("unindexed patient = %d bytes, want 57", got)
	}
	// Indexed patients carry the 8-slot area.
	if got := EncodedLen(c, DefaultIndexSlots); got != 89 {
		t.Fatalf("indexed patient = %d bytes, want 89", got)
	}
	if c.AttrIndex("num") != 5 || c.AttrIndex("nope") != -1 {
		t.Fatal("AttrIndex broken")
	}
}

func TestProviderSizeMatchesPaper(t *testing.T) {
	c := NewClass("Provider", []Attr{
		{Name: "name", Kind: KindString, StrLen: 16},
		{Name: "upin", Kind: KindInt},
		{Name: "address", Kind: KindString, StrLen: 16},
		{Name: "specialty", Kind: KindString, StrLen: 16},
		{Name: "office", Kind: KindString, StrLen: 16},
		{Name: "clients", Kind: KindSet},
	})
	// §2: "each object of Class Provider is about 120 bytes (4 bytes per
	// integer, 8 per address or object identifier plus some system
	// overhead)". Indexed: 48 header + 76 data = 124.
	if got := EncodedLen(c, DefaultIndexSlots); got < 110 || got > 130 {
		t.Fatalf("indexed provider = %d bytes, want ≈120", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, c := patientClass(t)
	pcp := storage.Rid{Page: 7, Slot: 3}
	rec, err := Encode(c, patientValues("Obelix", 42, 30, 'M', 99, 1234, pcp), DefaultIndexSlots)
	if err != nil {
		t.Fatal(err)
	}
	if ClassID(rec) != c.ID {
		t.Fatalf("class id = %d, want %d", ClassID(rec), c.ID)
	}
	checks := []struct {
		attr string
		want Value
	}{
		{"name", StringValue("Obelix")},
		{"mrn", IntValue(42)},
		{"age", IntValue(30)},
		{"sex", CharValue('M')},
		{"random_integer", IntValue(99)},
		{"num", IntValue(1234)},
		{"primary_care_provider", RefValue(pcp)},
	}
	for _, ck := range checks {
		got, err := DecodeAttr(c, rec, c.AttrIndex(ck.attr))
		if err != nil {
			t.Fatalf("%s: %v", ck.attr, err)
		}
		if got != ck.want {
			t.Fatalf("%s = %v, want %v", ck.attr, got, ck.want)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	_, c := patientClass(t)
	if _, err := Encode(c, []Value{IntValue(1)}, 0); err == nil {
		t.Fatal("wrong arity accepted")
	}
	vals := patientValues("x", 1, 2, 'F', 3, 4, storage.NilRid)
	vals[0] = IntValue(9) // name must be a string
	if _, err := Encode(c, vals, 0); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	vals = patientValues("this string is way too long for sixteen", 1, 2, 'F', 3, 4, storage.NilRid)
	if _, err := Encode(c, vals, 0); err == nil {
		t.Fatal("oversized string accepted")
	}
}

func TestEncodeAttrInPlace(t *testing.T) {
	_, c := patientClass(t)
	rec, _ := Encode(c, patientValues("Tintin", 1, 2, 'M', 3, 4, storage.NilRid), 0)
	if err := EncodeAttrInPlace(c, rec, c.AttrIndex("age"), IntValue(77)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeAttrInPlace(c, rec, c.AttrIndex("name"), StringValue("Milou")); err != nil {
		t.Fatal(err)
	}
	v, _ := DecodeAttr(c, rec, c.AttrIndex("age"))
	if v.Int != 77 {
		t.Fatalf("age = %d", v.Int)
	}
	v, _ = DecodeAttr(c, rec, c.AttrIndex("name"))
	if v.Str != "Milou" {
		t.Fatalf("name = %q (old value must be fully cleared)", v.Str)
	}
}

func TestIndexRefLifecycle(t *testing.T) {
	_, c := patientClass(t)
	rec, _ := Encode(c, patientValues("p", 1, 2, 'M', 3, 4, storage.NilRid), DefaultIndexSlots)
	baseLen := len(rec)
	// Fill all 8 slots without growth.
	for id := uint32(1); id <= 8; id++ {
		var grown bool
		var err error
		rec, grown, err = AddIndexRef(rec, id)
		if err != nil || grown {
			t.Fatalf("slot %d: grown=%v err=%v", id, grown, err)
		}
	}
	if len(rec) != baseLen {
		t.Fatal("record grew while slots were free")
	}
	// Re-adding an id is a no-op.
	rec2, grown, err := AddIndexRef(rec, 5)
	if err != nil || grown || len(rec2) != baseLen {
		t.Fatalf("duplicate add: grown=%v err=%v", grown, err)
	}
	// A ninth index forces header growth ("it can be extended if required").
	rec, grown, err = AddIndexRef(rec, 9)
	if err != nil || !grown {
		t.Fatalf("ninth index: grown=%v err=%v", grown, err)
	}
	got := IndexRefs(rec)
	if len(got) != 9 || got[8] != 9 {
		t.Fatalf("IndexRefs = %v", got)
	}
	// Attributes must survive the header growth.
	v, err := DecodeAttr(c, rec, c.AttrIndex("num"))
	if err != nil || v.Int != 4 {
		t.Fatalf("num after growth = %v (%v)", v, err)
	}
	if !RemoveIndexRef(rec, 3) {
		t.Fatal("remove failed")
	}
	if RemoveIndexRef(rec, 3) {
		t.Fatal("double remove succeeded")
	}
	if len(IndexRefs(rec)) != 8 {
		t.Fatalf("after remove: %v", IndexRefs(rec))
	}
}

func TestUnindexedObjectGrowsOnFirstIndex(t *testing.T) {
	_, c := patientClass(t)
	rec, _ := Encode(c, patientValues("p", 1, 2, 'M', 3, 4, storage.NilRid), 0)
	rec2, grown, err := AddIndexRef(rec, 1)
	if err != nil || !grown {
		t.Fatalf("first index on unindexed object: grown=%v err=%v", grown, err)
	}
	if len(rec2) != len(rec)+DefaultIndexSlots*indexSlotLen {
		t.Fatalf("grew by %d, want %d", len(rec2)-len(rec), DefaultIndexSlots*indexSlotLen)
	}
}

func TestRegistry(t *testing.T) {
	reg, c := patientClass(t)
	if reg.ByID(c.ID) != c || reg.ByName("Patient") != c {
		t.Fatal("lookup broken")
	}
	if err := reg.Register(NewClass("Patient", nil)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	reg.Register(NewClass("Provider", nil))
	names := reg.Names()
	if len(names) != 2 || names[0] != "Patient" || names[1] != "Provider" {
		t.Fatalf("Names = %v", names)
	}
}

func newHandleEnv(t *testing.T) (*Table, *storage.Store, *storage.File, *Class, *sim.Meter) {
	t.Helper()
	reg, c := patientClass(t)
	store := storage.NewStore(0)
	f, err := store.CreateFile("Patients")
	if err != nil {
		t.Fatal(err)
	}
	meter := sim.NewMeter(sim.DefaultCostModel())
	tbl := NewTable(meter, store.Disk, reg)
	return tbl, store, f, c, meter
}

func TestHandleGetAttrUnref(t *testing.T) {
	tbl, store, f, c, meter := newHandleEnv(t)
	rec, _ := Encode(c, patientValues("Daisy", 10, 25, 'F', 1, 2, storage.NilRid), 0)
	rid, err := f.Append(store.Disk, rec)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tbl.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if h.Class() != c || h.Rid() != rid {
		t.Fatal("handle identity broken")
	}
	v, err := tbl.AttrByName(h, "name")
	if err != nil || v.Str != "Daisy" {
		t.Fatalf("name = %v (%v)", v, err)
	}
	tbl.Unref(h)
	if tbl.Live() != 0 {
		t.Fatalf("Live = %d after unref", tbl.Live())
	}
	if meter.N.HandleGets != 1 || meter.N.HandleUnrefs != 1 || meter.N.AttrGets != 1 {
		t.Fatalf("counters: %+v", meter.N)
	}
	want := meter.Model.HandleGet + meter.Model.HandleUnref + meter.Model.AttrGet
	if meter.Elapsed() != want {
		t.Fatalf("elapsed = %v, want %v", meter.Elapsed(), want)
	}
}

func TestHandleSharing(t *testing.T) {
	tbl, store, f, c, meter := newHandleEnv(t)
	rec, _ := Encode(c, patientValues("x", 1, 2, 'M', 3, 4, storage.NilRid), 0)
	rid, _ := f.Append(store.Disk, rec)
	h1, _ := tbl.Get(rid)
	h2, _ := tbl.Get(rid)
	if h1 != h2 {
		t.Fatal("two variables pointing at one object must share a Handle (§4.4)")
	}
	// The second Get is a refcount bump, not an allocation.
	if meter.N.HandleGets != 1 {
		t.Fatalf("HandleGets = %d, want 1", meter.N.HandleGets)
	}
	tbl.Unref(h1)
	if tbl.Live() != 1 {
		t.Fatal("handle freed while still referenced")
	}
	tbl.Unref(h2)
	if tbl.Live() != 0 {
		t.Fatal("handle leaked")
	}
}

func TestHandleMemoryAccounting(t *testing.T) {
	tbl, store, f, c, _ := newHandleEnv(t)
	var handles []*Handle
	for i := 0; i < 10; i++ {
		rec, _ := Encode(c, patientValues("x", int64(i), 2, 'M', 3, 4, storage.NilRid), 0)
		rid, _ := f.Append(store.Disk, rec)
		h, err := tbl.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if got := tbl.MaxBytes(); got != 10*FatHandleBytes {
		t.Fatalf("MaxBytes = %d, want %d", got, 10*FatHandleBytes)
	}
	for _, h := range handles {
		tbl.Unref(h)
	}
	if tbl.Live() != 0 {
		t.Fatal("leaked handles")
	}
}

func TestSlimHandlesCheaper(t *testing.T) {
	tbl, store, f, c, meter := newHandleEnv(t)
	rec, _ := Encode(c, patientValues("x", 1, 2, 'M', 3, 4, storage.NilRid), 0)
	rid, _ := f.Append(store.Disk, rec)

	h, _ := tbl.Get(rid)
	tbl.Unref(h)
	fat := meter.Elapsed()

	meter.Reset()
	meter.SetSlimHandles(true)
	h, _ = tbl.Get(rid)
	tbl.Unref(h)
	slim := meter.Elapsed()
	if slim >= fat {
		t.Fatalf("slim get+unref (%v) not cheaper than fat (%v)", slim, fat)
	}
}

func TestSetAttr(t *testing.T) {
	tbl, store, f, c, _ := newHandleEnv(t)
	rec, _ := Encode(c, patientValues("x", 1, 2, 'M', 3, 4, storage.NilRid), 0)
	rid, _ := f.Append(store.Disk, rec)
	h, _ := tbl.Get(rid)
	target := storage.Rid{Page: 3, Slot: 1}
	if err := tbl.SetAttr(h, c.AttrIndex("primary_care_provider"), RefValue(target)); err != nil {
		t.Fatal(err)
	}
	tbl.Unref(h)
	// Re-read from storage.
	h2, _ := tbl.Get(rid)
	v, _ := tbl.AttrByName(h2, "primary_care_provider")
	if v.Ref != target {
		t.Fatalf("pcp = %v, want %v", v.Ref, target)
	}
	tbl.Unref(h2)
}

func TestGetBulk(t *testing.T) {
	tbl, store, f, c, _ := newHandleEnv(t)
	var rids []storage.Rid
	for i := 0; i < 5; i++ {
		rec, _ := Encode(c, patientValues("x", int64(i), 2, 'M', 3, 4, storage.NilRid), 0)
		rid, _ := f.Append(store.Disk, rec)
		rids = append(rids, rid)
	}
	hs, err := tbl.GetBulk(rids)
	if err != nil || len(hs) != 5 {
		t.Fatalf("GetBulk: %v", err)
	}
	for _, h := range hs {
		tbl.Unref(h)
	}
	// Bulk with a bad rid cleans up after itself.
	bad := append(append([]storage.Rid{}, rids...), storage.Rid{Page: 9999, Slot: 0})
	if _, err := tbl.GetBulk(bad); err == nil {
		t.Fatal("bad rid accepted")
	}
	if tbl.Live() != 0 {
		t.Fatalf("GetBulk leak: %d live", tbl.Live())
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"7":       IntValue(7),
		`'M'`:     {},
		`"hello"`: StringValue("hello"),
	}
	_ = cases
	if IntValue(7).String() != "7" {
		t.Fatal("int string")
	}
	if StringValue("hi").String() != `"hi"` {
		t.Fatal("str string")
	}
	if got := CharValue('M').String(); got != `'M'` {
		t.Fatalf("char string: %s", got)
	}
	if KindSet.String() != "set" || Kind(99).String() == "" {
		t.Fatal("kind strings")
	}
}

// Property: encode→decode round-trips arbitrary int/string attribute values.
func TestCodecRoundTripProperty(t *testing.T) {
	_, c := patientClass(t)
	f := func(mrn, age int32, num int32, nameSeed uint8) bool {
		name := string(rune('a'+nameSeed%26)) + "patient"
		vals := patientValues(name, int64(mrn), int64(age), 'F', 0, int64(num), storage.NilRid)
		rec, err := Encode(c, vals, DefaultIndexSlots)
		if err != nil {
			return false
		}
		for i := range vals {
			got, err := DecodeAttr(c, rec, i)
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
