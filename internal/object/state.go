package object

import (
	"fmt"
	"sort"
)

// Serializable class-graph state. Class IDs are baked into every record
// header on disk, so a restored Registry must reproduce IDs, layouts,
// inheritance links and evolution epochs exactly — a persisted snapshot's
// page image is only decodable through an identical catalog.

// ClassState is the serializable description of one class.
type ClassState struct {
	ID   uint16
	Name string
	// Parent names the direct superclass ("" for a root class).
	Parent string
	// Attrs is the full attribute list, inherited attributes included.
	Attrs []Attr
	// OrigAttrs is the attribute count at creation; attributes beyond it
	// were appended by AddAttr (one evolution epoch each), with matching
	// entries in Defaults.
	OrigAttrs int
	Defaults  []Value
}

// RegistryState is the serializable description of a Registry.
type RegistryState struct {
	NextID uint16
	// Classes is sorted by ID (the registration order).
	Classes []ClassState
}

// State exports the registry's whole class graph.
func (r *Registry) State() *RegistryState {
	st := &RegistryState{NextID: r.nextID}
	ids := make([]int, 0, len(r.byID))
	for id := range r.byID {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := r.byID[uint16(id)]
		cs := ClassState{
			ID:        c.ID,
			Name:      c.Name,
			Attrs:     append([]Attr(nil), c.Attrs...),
			OrigAttrs: len(c.Attrs) - len(c.defaults),
			Defaults:  append([]Value(nil), c.defaults...),
		}
		if c.parent != nil {
			cs.Parent = c.parent.Name
		}
		st.Classes = append(st.Classes, cs)
	}
	return st
}

// validKind reports whether k is a known attribute kind (a corrupt state
// must not reach Attr.size, which panics on unknown kinds).
func validKind(k Kind) bool { return k <= KindSet }

// maxAttrWidth bounds one attribute's inline width when restoring a class
// from untrusted state: no record fits a 4 KB page anyway.
const maxAttrWidth = 4096

// validate rejects a ClassState that NewClass or AddAttr would panic on or
// silently mis-layout.
func (cs *ClassState) validate() error {
	if cs.Name == "" {
		return fmt.Errorf("object: class %d has no name", cs.ID)
	}
	if cs.OrigAttrs < 0 || cs.OrigAttrs > len(cs.Attrs) {
		return fmt.Errorf("object: class %s: original attribute count %d out of range (%d attrs)",
			cs.Name, cs.OrigAttrs, len(cs.Attrs))
	}
	if len(cs.Defaults) != len(cs.Attrs)-cs.OrigAttrs {
		return fmt.Errorf("object: class %s: %d defaults for %d evolved attributes",
			cs.Name, len(cs.Defaults), len(cs.Attrs)-cs.OrigAttrs)
	}
	seen := make(map[string]bool, len(cs.Attrs))
	for _, a := range cs.Attrs {
		if a.Name == "" {
			return fmt.Errorf("object: class %s has an unnamed attribute", cs.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("object: class %s has duplicate attribute %q", cs.Name, a.Name)
		}
		seen[a.Name] = true
		if !validKind(a.Kind) {
			return fmt.Errorf("object: class %s: attribute %s has unknown kind %d", cs.Name, a.Name, a.Kind)
		}
		if a.Kind == KindString && (a.StrLen < 0 || a.StrLen > maxAttrWidth) {
			return fmt.Errorf("object: class %s: attribute %s string width %d out of range", cs.Name, a.Name, a.StrLen)
		}
	}
	return nil
}

// RestoreRegistry rebuilds a registry from its exported state, reproducing
// IDs, layouts, inheritance and evolution epochs exactly. The state is
// validated, not trusted: dangling parents, duplicate ids or names, and
// malformed attribute lists fail with an error, never a panic.
func RestoreRegistry(st *RegistryState) (*Registry, error) {
	r := &Registry{
		byID:   make(map[uint16]*Class, len(st.Classes)),
		byName: make(map[string]*Class, len(st.Classes)),
		nextID: st.NextID,
	}
	byName := make(map[string]*ClassState, len(st.Classes))
	for i := range st.Classes {
		cs := &st.Classes[i]
		if err := cs.validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[cs.Name]; dup {
			return nil, fmt.Errorf("object: duplicate class %q in state", cs.Name)
		}
		byName[cs.Name] = cs
	}

	// Build parents before children (a subclass's layout extends its
	// parent's). The visited set breaks parent cycles in corrupt input.
	building := make(map[string]bool)
	var build func(cs *ClassState) (*Class, error)
	build = func(cs *ClassState) (*Class, error) {
		if c := r.byName[cs.Name]; c != nil {
			return c, nil
		}
		if building[cs.Name] {
			return nil, fmt.Errorf("object: class %s is its own ancestor", cs.Name)
		}
		building[cs.Name] = true
		defer delete(building, cs.Name)

		var c *Class
		if cs.Parent == "" {
			c = NewClass(cs.Name, append([]Attr(nil), cs.Attrs[:cs.OrigAttrs]...))
		} else {
			ps, ok := byName[cs.Parent]
			if !ok {
				return nil, fmt.Errorf("object: class %s derives from unknown class %q", cs.Name, cs.Parent)
			}
			parent, err := build(ps)
			if err != nil {
				return nil, err
			}
			if cs.OrigAttrs < len(parent.Attrs) {
				return nil, fmt.Errorf("object: subclass %s has %d attributes, fewer than parent %s's %d",
					cs.Name, cs.OrigAttrs, parent.Name, len(parent.Attrs))
			}
			for i, a := range cs.Attrs[:len(parent.Attrs)] {
				if a != parent.Attrs[i] {
					return nil, fmt.Errorf("object: subclass %s does not extend parent %s's layout", cs.Name, parent.Name)
				}
			}
			var err2 error
			c, err2 = NewSubclass(cs.Name, parent, append([]Attr(nil), cs.Attrs[len(parent.Attrs):cs.OrigAttrs]...))
			if err2 != nil {
				return nil, err2
			}
		}
		// Replay evolution: each appended attribute is one epoch.
		for i := cs.OrigAttrs; i < len(cs.Attrs); i++ {
			if err := c.AddAttr(cs.Attrs[i], cs.Defaults[i-cs.OrigAttrs]); err != nil {
				return nil, err
			}
		}
		if _, dup := r.byID[cs.ID]; dup {
			return nil, fmt.Errorf("object: duplicate class id %d in state", cs.ID)
		}
		c.ID = cs.ID
		r.byID[c.ID] = c
		r.byName[c.Name] = c
		return c, nil
	}
	for i := range st.Classes {
		if _, err := build(&st.Classes[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}
