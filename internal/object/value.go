// Package object implements the ODMG-style object layer: classes and
// attribute layouts, the record codec (including the growable index-slot
// header of §3.2), and Handles — the in-memory object representatives whose
// management cost is the subject of the paper's §4.
package object

import (
	"fmt"

	"treebench/internal/storage"
)

// Kind enumerates attribute types. The Derby schema needs exactly these.
type Kind uint8

const (
	// KindInt is a 4-byte signed integer.
	KindInt Kind = iota
	// KindChar is a single byte (the Patient.sex attribute).
	KindChar
	// KindString is a fixed-width inline string, zero-padded. The paper
	// sizes Derby strings at 16 characters and counts them inside the
	// object, so they are inline rather than out-of-line records.
	KindString
	// KindRef is an 8-byte physical reference (Rid) to another object.
	KindRef
	// KindSet is an 8-byte reference to a collection record (see package
	// collection): small sets live as separate records in the owner's
	// file, sets over a page in a separate file.
	KindSet
)

// String returns the OQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "integer"
	case KindChar:
		return "char"
	case KindString:
		return "string"
	case KindRef:
		return "ref"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one attribute value. Exactly one of the payload fields is
// meaningful, per Kind.
type Value struct {
	Kind Kind
	Int  int64       // KindInt, KindChar
	Str  string      // KindString
	Ref  storage.Rid // KindRef, KindSet
}

// IntValue returns an integer Value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// CharValue returns a char Value.
func CharValue(c byte) Value { return Value{Kind: KindChar, Int: int64(c)} }

// StringValue returns a string Value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// RefValue returns a reference Value.
func RefValue(r storage.Rid) Value { return Value{Kind: KindRef, Ref: r} }

// SetValue returns a collection-reference Value.
func SetValue(r storage.Rid) Value { return Value{Kind: KindSet, Ref: r} }

// String renders the value for debugging and the OQL shell.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindChar:
		return fmt.Sprintf("%q", byte(v.Int))
	case KindString:
		return fmt.Sprintf("%q", v.Str)
	case KindRef:
		return v.Ref.String()
	case KindSet:
		return "set" + v.Ref.String()
	default:
		return "?"
	}
}
