package oql

import (
	"fmt"
	"strings"

	"treebench/internal/selection"
)

// Aggregate names an aggregation function applied to a projection.
type Aggregate string

// The supported aggregates (empty means a plain projection).
const (
	AggNone  Aggregate = ""
	AggCount Aggregate = "count"
	AggSum   Aggregate = "sum"
	AggMin   Aggregate = "min"
	AggMax   Aggregate = "max"
	AggAvg   Aggregate = "avg"
)

// Projection is one select-list item: a path, optionally wrapped in an
// aggregate.
type Projection struct {
	Agg  Aggregate
	Path Path
}

func (p Projection) String() string {
	if p.Agg == AggNone {
		return p.Path.String()
	}
	return string(p.Agg) + "(" + p.Path.String() + ")"
}

// Path is a variable plus attribute steps: `pa.age` or just `pa`.
type Path struct {
	Var   string
	Attrs []string
}

func (p Path) String() string {
	if len(p.Attrs) == 0 {
		return p.Var
	}
	return p.Var + "." + strings.Join(p.Attrs, ".")
}

// Binding is one `var in source` clause. Exactly one of Extent or
// (ParentVar, ParentAttr) is set: `p in Providers` or `pa in p.clients`.
type Binding struct {
	Var        string
	Extent     string
	ParentVar  string
	ParentAttr string
}

func (b Binding) String() string {
	if b.Extent != "" {
		return fmt.Sprintf("%s in %s", b.Var, b.Extent)
	}
	return fmt.Sprintf("%s in %s.%s", b.Var, b.ParentVar, b.ParentAttr)
}

// Comparison is one conjunct `path op literal` (or the mirrored literal op
// path, normalized during parsing).
type Comparison struct {
	Path Path
	Op   selection.Op
	K    int64
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %d", c.Path, c.Op, c.K)
}

// OrderSpec is an `order by path [asc|desc]` clause.
type OrderSpec struct {
	Path Path
	Desc bool
}

func (o OrderSpec) String() string {
	s := "order by " + o.Path.String()
	if o.Desc {
		s += " desc"
	}
	return s
}

// Query is the parsed AST.
type Query struct {
	CountStar   bool
	Projections []Projection
	Bindings    []Binding
	Where       []Comparison
	OrderBy     *OrderSpec
}

// HasAggregates reports whether any projection is an aggregate.
func (q *Query) HasAggregates() bool {
	for _, p := range q.Projections {
		if p.Agg != AggNone {
			return true
		}
	}
	return false
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.CountStar {
		b.WriteString("count(*)")
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
	}
	b.WriteString(" from ")
	for i, bd := range q.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(bd.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" where ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
	}
	if q.OrderBy != nil {
		b.WriteString(" ")
		b.WriteString(q.OrderBy.String())
	}
	return b.String()
}
