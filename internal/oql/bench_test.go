package oql

import (
	"testing"

	"treebench/internal/derby"
)

const benchQuery = `select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 10000 and p.upin < 50`

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlan(b *testing.B) {
	d, err := derby.Generate(derby.DefaultConfig(50, 20, derby.ClassCluster))
	if err != nil {
		b.Fatal(err)
	}
	pl := &Planner{DB: d.DB, Strategy: CostBased}
	ast, err := Parse(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Plan(ast); err != nil {
			b.Fatal(err)
		}
	}
}
