package oql

import (
	"fmt"
	"sort"
	"time"

	"treebench/internal/join"
	"treebench/internal/object"
	"treebench/internal/selection"
	"treebench/internal/sim"
)

// Attribute kinds the analyzer tests against.
const (
	refKind  = object.KindRef
	intKind  = object.KindInt
	charKind = object.KindChar
)

// AggResult is one computed aggregate.
type AggResult struct {
	Label string
	Value float64
}

// SampleLimit caps how many result rows the executor materializes for
// display; the row count and costs always cover the full result.
const SampleLimit = 10000

// Row is one materialized result row (projected values in select-list
// order, hidden order-by projections stripped).
type Row []object.Value

// Result is the outcome of executing a plan.
type Result struct {
	Plan     *Plan
	Rows     int
	Elapsed  time.Duration
	Counters sim.Counters

	// Selection and Join carry the operator-level reports when relevant.
	Selection *selection.Result
	Join      *join.Result

	// Aggregates holds computed aggregate values, in projection order.
	Aggregates []AggResult

	// Sample holds up to SampleLimit materialized rows (in order-by order
	// when the plan sorts). SampleTruncated reports that more rows
	// matched than were kept.
	Sample          []Row
	SampleTruncated bool

	// AggStates holds mergeable aggregate states instead of Aggregates
	// when the plan ran through ExecutePartial: an avg cannot be merged
	// from finals, so shards ship {n, sum, min, max} and the coordinator
	// finalizes after MergeAggPartials.
	AggStates []AggPartial
}

// Execute runs the plan on the planner's database. The caller decides the
// cache temperature (call db.ColdRestart() first for the paper's cold
// methodology).
func (pl *Planner) Execute(p *Plan) (*Result, error) {
	return pl.execute(p, false)
}

// ExecutePartial runs the plan as one shard's slice of a distributed query:
// the database's shard mask (engine.SetShard) decides which chunks execute
// and charge. Global post-processing is left to the coordinator — the
// order-by sort (and its Meter.Sort charge, which covers ALL matching rows
// and so must be applied exactly once, over the merged total), the hidden
// order-column strip, and aggregate finalization (AggStates carries the
// mergeable states in place of Aggregates). Samples keep hidden order
// columns so the coordinator can sort the concatenation.
func (pl *Planner) ExecutePartial(p *Plan) (*Result, error) {
	return pl.execute(p, true)
}

func (pl *Planner) execute(p *Plan, partial bool) (*Result, error) {
	switch p.Kind {
	case PlanSelection:
		req := selection.Request{
			Extent:   p.Extent,
			Where:    p.Where,
			Filters:  p.Filters,
			Projects: p.Projects,
		}
		// Per-chunk accumulators: a full scan may fan out over the extent's
		// ScanChunks page ranges, so every chunk folds into private state and
		// the states merge in chunk-index order afterwards — which reproduces
		// the sequential scan's file order exactly. Index scans deliver every
		// row as chunk 0.
		nc := len(selection.ScanChunks(p.Extent))
		var aggChunks [][]*aggState
		var sampleChunks [][]Row
		truncChunks := make([]bool, nc)
		switch {
		case hasAgg(p.Aggregates):
			aggChunks = make([][]*aggState, nc)
			for c := range aggChunks {
				states := make([]*aggState, len(p.Aggregates))
				for i, a := range p.Aggregates {
					states[i] = &aggState{agg: a, label: string(a) + "(" + p.Projects[i] + ")"}
				}
				aggChunks[c] = states
			}
			req.OnRowChunk = func(chunk int, vals []object.Value) error {
				for i, st := range aggChunks[chunk] {
					st.add(vals[i].Int)
				}
				return nil
			}
			// Vectorized delivery: fold each batch column-at-a-time into
			// the chunk's states — same rows, same order, one call per
			// batch instead of one per row.
			req.OnBatch = func(chunk int, cols [][]object.Value, n int) error {
				for i, st := range aggChunks[chunk] {
					col := cols[i]
					for r := 0; r < n; r++ {
						st.add(col[r].Int)
					}
				}
				return nil
			}
		case len(p.Projects) > 0:
			sampleChunks = make([][]Row, nc)
			req.OnRowChunk = func(chunk int, vals []object.Value) error {
				if len(sampleChunks[chunk]) < SampleLimit {
					row := make(Row, len(vals))
					copy(row, vals)
					sampleChunks[chunk] = append(sampleChunks[chunk], row)
				} else {
					truncChunks[chunk] = true
				}
				return nil
			}
			// Vectorized delivery: append a batch's rows (transposed from
			// its value columns) up to the per-chunk cap in one call.
			req.OnBatch = func(chunk int, cols [][]object.Value, n int) error {
				for r := 0; r < n; r++ {
					if len(sampleChunks[chunk]) >= SampleLimit {
						truncChunks[chunk] = true
						return nil
					}
					row := make(Row, len(cols))
					for j := range cols {
						row[j] = cols[j][r]
					}
					sampleChunks[chunk] = append(sampleChunks[chunk], row)
				}
				return nil
			}
		}
		sres, err := selection.Run(pl.DB, req, p.Access)
		if err != nil {
			return nil, err
		}
		var aggs []*aggState
		if aggChunks != nil {
			aggs = aggChunks[0]
			for _, states := range aggChunks[1:] {
				for i, st := range states {
					aggs[i].merge(st)
				}
			}
		}
		var sample []Row
		truncated := false
		for c, part := range sampleChunks {
			// Every chunk keeps its first SampleLimit rows, which is a
			// superset of its contribution to the global first SampleLimit,
			// so the concatenation's prefix matches the sequential sample.
			sample = append(sample, part...)
			truncated = truncated || truncChunks[c]
		}
		if len(sample) > SampleLimit {
			sample = sample[:SampleLimit]
			truncated = true
		}
		res := &Result{
			Plan: p, Rows: sres.Rows,
			Elapsed: sres.Elapsed, Counters: sres.Counters,
			Selection: sres,
		}
		for _, st := range aggs {
			if partial {
				res.AggStates = append(res.AggStates, st.partial())
			} else {
				res.Aggregates = append(res.Aggregates, st.result())
			}
		}
		if p.OrderAttr != "" && !partial {
			// Sorting the result is charged over ALL matching rows, as
			// the system would; the sample is what we can show.
			pl.DB.Meter.Sort(int64(sres.Rows))
			idx := p.OrderIdx
			sort.SliceStable(sample, func(i, j int) bool {
				if p.OrderDesc {
					return sample[i][idx].Int > sample[j][idx].Int
				}
				return sample[i][idx].Int < sample[j][idx].Int
			})
			if p.orderHidden {
				for i := range sample {
					sample[i] = sample[i][:len(sample[i])-1]
				}
			}
			res.Elapsed = pl.DB.Meter.Elapsed()
			res.Counters = pl.DB.Meter.Snapshot()
		}
		res.Sample = sample
		res.SampleTruncated = truncated
		return res, nil
	case PlanTreeJoin:
		jres, err := join.Run(p.Env, p.Algorithm, p.JoinQuery)
		if err != nil {
			return nil, err
		}
		return &Result{
			Plan: p, Rows: jres.Tuples,
			Elapsed: jres.Elapsed, Counters: jres.Counters,
			Join: jres,
		}, nil
	default:
		return nil, fmt.Errorf("oql: unknown plan kind %d", p.Kind)
	}
}

// Query parses, plans and executes OQL text in one call, going through the
// plan cache when the planner has one.
func (pl *Planner) Query(src string) (*Result, error) {
	plan, err := pl.PlanSource(src)
	if err != nil {
		return nil, err
	}
	return pl.Execute(plan)
}

func hasAgg(aggs []Aggregate) bool {
	for _, a := range aggs {
		if a != AggNone {
			return true
		}
	}
	return false
}

// aggState folds one aggregate over the matching rows.
type aggState struct {
	agg   Aggregate
	label string
	n     int64
	sum   int64
	min   int64
	max   int64
}

func (s *aggState) add(v int64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// merge folds another chunk's state for the same aggregate into s. All five
// aggregates are commutative, but merging in chunk-index order keeps even
// intermediate states deterministic.
func (s *aggState) merge(o *aggState) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}

func (s *aggState) partial() AggPartial {
	return AggPartial{Agg: s.agg, Label: s.label, N: s.n, Sum: s.sum, Min: s.min, Max: s.max}
}

func (s *aggState) result() AggResult { return s.partial().Finalize() }

// AggPartial is one aggregate's mergeable intermediate state: everything a
// coordinator needs to combine per-shard slices of count/sum/min/max/avg
// without losing information (an avg, in particular, cannot be merged from
// finalized values).
type AggPartial struct {
	Agg   Aggregate
	Label string
	N     int64
	Sum   int64
	Min   int64
	Max   int64
}

// Finalize computes the aggregate's value from the accumulated state.
func (p AggPartial) Finalize() AggResult {
	out := AggResult{Label: p.Label}
	switch p.Agg {
	case AggCount:
		out.Value = float64(p.N)
	case AggSum:
		out.Value = float64(p.Sum)
	case AggMin:
		if p.N > 0 {
			out.Value = float64(p.Min)
		}
	case AggMax:
		if p.N > 0 {
			out.Value = float64(p.Max)
		}
	case AggAvg:
		if p.N > 0 {
			out.Value = float64(p.Sum) / float64(p.N)
		}
	}
	return out
}

// MergeAggPartials folds src into dst index-by-index (the slices must come
// from the same plan, so they line up). Merging is commutative, but callers
// fold shards in shard-index order — the same discipline chunk merges follow
// — so intermediate states are deterministic too.
func MergeAggPartials(dst, src []AggPartial) []AggPartial {
	for i := range dst {
		if i >= len(src) || src[i].N == 0 {
			continue
		}
		o := src[i]
		if dst[i].N == 0 || o.Min < dst[i].Min {
			dst[i].Min = o.Min
		}
		if dst[i].N == 0 || o.Max > dst[i].Max {
			dst[i].Max = o.Max
		}
		dst[i].N += o.N
		dst[i].Sum += o.Sum
	}
	return dst
}
