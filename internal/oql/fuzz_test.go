package oql

import "testing"

// FuzzParse drives the OQL parser with arbitrary input: it must either
// return an error or an AST that survives a String→Parse round trip —
// never panic. Run with `go test -fuzz FuzzParse ./internal/oql`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 50",
		"select count(*) from pa in Patients",
		"select sum(pa.age), min(pa.age) from pa in Patients where pa.num >= 7 order by pa.age desc",
		"select a.b from a in B where 10 <= a.b order by a.c",
		"select x from y in Z",
		"",
		"select",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must round trip.
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok, but its rendering %q fails: %v", src, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("rendering unstable: %q → %q", rendered, q2.String())
		}
	})
}
