package oql

import (
	"testing"

	"treebench/internal/engine"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/txn"
)

// engineDB builds a bare engine database for planner unit tests.
func engineDB(t *testing.T) *engine.Database {
	t.Helper()
	return engine.New(sim.DefaultMachine(), sim.DefaultCostModel(), txn.NoTransaction)
}

// objectClass is a one-int-attribute class for statistics tests.
func objectClass() *object.Class {
	return object.NewClass("Skew", []object.Attr{{Name: "v", Kind: object.KindInt}})
}
