// Package oql implements the OQL subset the paper benchmarks: selections
// over extents and the two-variable hierarchical query of §5
//
//	select p.name, pa.age
//	from p in Providers, pa in p.clients
//	where pa.mrn < k1 and p.upin < k2
//
// with a lexer, parser, semantic analysis against the database schema, an
// optimizer offering the old heuristic strategy and the cost-based strategy
// the paper set out to build, and an executor that delegates to the
// selection and join operator packages.
package oql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokString
	tokPunct // ( ) , . *
	tokOp    // < <= > >= = !=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "in": true,
	"and": true, "count": true, "as": true,
	"sum": true, "min": true, "max": true, "avg": true,
	"order": true, "by": true, "asc": true, "desc": true,
}

// lex splits the query text into tokens. Keywords are case-insensitive, as
// in OQL.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("oql: stray '!' at offset %d", i)
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokInt, src[i:j], i})
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(src) && src[j] != quote {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("oql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, src[i+1 : j], i})
			i = j + 1
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= '0' && src[j] <= '9' ||
				unicode.IsLetter(rune(src[j]))) {
				j++
			}
			word := src[i:j]
			if keywords[strings.ToLower(word)] {
				toks = append(toks, token{tokKeyword, strings.ToLower(word), i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("oql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
