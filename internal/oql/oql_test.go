package oql

import (
	"strings"
	"testing"

	"treebench/internal/derby"
	"treebench/internal/join"
	"treebench/internal/object"
	"treebench/internal/selection"
)

func planner(t *testing.T, providers, avgPatients int, cl derby.Clustering, s Strategy) (*Planner, *derby.Dataset) {
	t.Helper()
	d, err := derby.Generate(derby.DefaultConfig(providers, avgPatients, cl))
	if err != nil {
		t.Fatal(err)
	}
	return &Planner{DB: d.DB, Strategy: s}, d
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`select p.name from p in Providers where p.upin <= 42 and p.upin != 7`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[0].kind != tokKeyword || toks[0].text != "select" {
		t.Fatalf("first token %v", toks[0])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF")
	}
	for _, bad := range []string{"a ! b", `select "unterminated`, "a § b"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lex(%q) accepted", bad)
		}
	}
}

func TestParseTreeQuery(t *testing.T) {
	q, err := Parse(`select p.name, pa.age
		from p in Providers, pa in p.clients
		where pa.mrn < 100 and p.upin < 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Bindings) != 2 || q.Bindings[1].ParentVar != "p" || q.Bindings[1].ParentAttr != "clients" {
		t.Fatalf("bindings: %+v", q.Bindings)
	}
	if len(q.Where) != 2 || q.Where[0].Path.String() != "pa.mrn" || q.Where[0].K != 100 {
		t.Fatalf("where: %+v", q.Where)
	}
	// Round trip through String and Parse again.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip: %q vs %q", q2.String(), q.String())
	}
}

func TestParseMirroredLiteral(t *testing.T) {
	q, err := Parse(`select p.upin from p in Providers where 100 > p.upin`)
	if err != nil {
		t.Fatal(err)
	}
	c := q.Where[0]
	if c.Op != selection.Lt || c.K != 100 {
		t.Fatalf("mirrored comparison: %+v", c)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`select count(*) from pa in Patients where pa.num > 10`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.CountStar || len(q.Projections) != 0 {
		t.Fatalf("count(*): %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from p in P",
		"select p.x from p",
		"select p.x from p in",
		"select p.x from p in A where",
		"select p.x from p in A where p.y <",
		"select p.x from p in A where p.y < 3 and",
		"select p.x from p in A.b.c",
		"select count(* from p in A",
		"select p.x from p in A trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("Parse(%q) accepted", src)
		}
	}
}

func TestSelectionQueryExecutes(t *testing.T) {
	pl, d := planner(t, 20, 50, derby.ClassCluster, CostBased)
	n := d.NumPatients
	pl.DB.ColdRestart()
	res, err := pl.Query(`select pa.age from pa in Patients where pa.mrn < 101`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 100 {
		t.Fatalf("rows = %d, want 100", res.Rows)
	}
	if res.Plan.Kind != PlanSelection || res.Selection == nil {
		t.Fatal("wrong plan kind")
	}
	// count(*) with conjunction.
	pl.DB.ColdRestart()
	res, err = pl.Query(`select count(*) from pa in Patients where pa.mrn < 101 and pa.sex = 70`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 50 { // mrn 1..100, even j ⇒ 'F'(70) for odd mrn... half
		t.Fatalf("conjunctive count = %d, want 50", res.Rows)
	}
	_ = n
}

func TestCostBasedPicksIndexAtLowSelectivity(t *testing.T) {
	pl, d := planner(t, 20, 100, derby.ClassCluster, CostBased)
	// 1% selectivity through the unclustered num index: any index access
	// must win the cost race against the full scan. (At this toy scale
	// the sorted and unsorted variants tie — nothing re-reads — so the
	// specific variant is not asserted; the 90% small-cache test below
	// pins the sorted-vs-unsorted decision where it matters.)
	k := int64(d.NumPatients - d.NumPatients/100)
	pl.DB.ColdRestart()
	ast, err := Parse("select pa.age from pa in Patients where pa.num > " + itoa(k))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access == selection.FullScan {
		t.Fatalf("cost-based chose the full scan at 1%% selectivity\n%s", plan.Explain())
	}
	if len(plan.Estimates) != 3 {
		t.Fatalf("estimates: %+v", plan.Estimates)
	}
}

func TestHeuristicUsesUnsortedIndex(t *testing.T) {
	pl, d := planner(t, 20, 100, derby.ClassCluster, Heuristic)
	k := int64(d.NumPatients / 10) // 90% selectivity: the index is a trap
	pl.DB.ColdRestart()
	ast, _ := Parse("select pa.age from pa in Patients where pa.num > " + itoa(k))
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != selection.IndexScan {
		t.Fatalf("heuristic chose %s", plan.Access)
	}
}

func TestCostBasedAvoidsIndexTrapAtHighSelectivity(t *testing.T) {
	// Small caches make the unclustered index pessimal at 90%; the
	// cost-based strategy must not choose the plain index scan.
	cfg := derby.DefaultConfig(20, 200, derby.ClassCluster)
	cfg.Machine.ClientCache = 16 << 12
	cfg.Machine.ServerCache = 8 << 12
	d, err := derby.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := &Planner{DB: d.DB, Strategy: CostBased}
	k := int64(d.NumPatients / 10)
	d.DB.ColdRestart()
	ast, _ := Parse("select pa.age from pa in Patients where pa.num > " + itoa(k))
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access == selection.IndexScan {
		t.Fatalf("cost-based fell into the unsorted-index trap\n%s", plan.Explain())
	}
}

func TestTreeQueryExecutesAllStrategies(t *testing.T) {
	pl, d := planner(t, 50, 5, derby.ClassCluster, CostBased)
	k1 := d.NumPatients/2 + 1
	k2 := d.NumProviders/2 + 1
	src := "select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < " +
		itoa(int64(k1)) + " and p.upin < " + itoa(int64(k2))

	pl.DB.ColdRestart()
	res, err := pl.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Kind != PlanTreeJoin || res.Join == nil {
		t.Fatal("wrong plan kind")
	}
	want := res.Rows

	// The heuristic strategy picks NL; same rows, different cost.
	pl.Strategy = Heuristic
	pl.DB.ColdRestart()
	hres, err := pl.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Plan.Algorithm != join.NL {
		t.Fatalf("heuristic picked %s", hres.Plan.Algorithm)
	}
	if hres.Rows != want {
		t.Fatalf("strategies disagree: %d vs %d rows", hres.Rows, want)
	}
}

func TestCostBasedPlansMatchMeasuredWinnerOnComposition(t *testing.T) {
	// Composition clustering: the measured §5.3 winner is NL; the cost
	// model must predict it.
	pl, d := planner(t, 100, 20, derby.CompositionCluster, CostBased)
	k1 := d.NumPatients/10 + 1
	k2 := d.NumProviders/10 + 1
	src := "select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < " +
		itoa(int64(k1)) + " and p.upin < " + itoa(int64(k2))
	ast, _ := Parse(src)
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != join.NL {
		t.Fatalf("cost model predicted %s under composition clustering\n%s",
			plan.Algorithm, plan.Explain())
	}
}

func TestTreeQueryWithoutPredicates(t *testing.T) {
	pl, d := planner(t, 30, 3, derby.ClassCluster, CostBased)
	pl.DB.ColdRestart()
	res, err := pl.Query(`select count(*) from p in Providers, pa in p.clients`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != d.NumPatients {
		t.Fatalf("unqualified tree join: %d rows, want %d", res.Rows, d.NumPatients)
	}
}

func TestPlanValidationErrors(t *testing.T) {
	pl, _ := planner(t, 10, 3, derby.ClassCluster, CostBased)
	bad := []string{
		`select x.a from x in Nowhere`,
		`select p.bogus from p in Providers`,
		`select p.name from p in Providers where q.upin < 3`,
		`select p.name, pa.age from p in Providers, pa in p.bogus`,
		`select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn > 3`,
		`select p.name from p in Providers, pa in p.clients`,
		`select p.name, p.upin from p in Providers, pa in p.clients`,
		`select a.x from a in Providers, b in Providers, c in Providers`,
		`select p.name from p in Providers where p.upin < 3 and p.upin < 4 and q.z = 1`,
	}
	for _, src := range bad {
		ast, err := Parse(src)
		if err != nil {
			continue // some are syntax-level
		}
		if _, err := pl.Plan(ast); err == nil {
			t.Fatalf("Plan(%q) accepted", src)
		}
	}
}

func TestExplainMentionsAlternatives(t *testing.T) {
	pl, _ := planner(t, 20, 5, derby.ClassCluster, CostBased)
	ast, _ := Parse(`select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 10 and p.upin < 10`)
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain()
	for _, alg := range []string{"PHJ", "CHJ", "NOJOIN", "NL", "cost-based"} {
		if !strings.Contains(out, alg) {
			t.Fatalf("Explain missing %s:\n%s", alg, out)
		}
	}
}

func TestEnableHHJWidensSearchSpace(t *testing.T) {
	pl, _ := planner(t, 20, 5, derby.ClassCluster, CostBased)
	pl.EnableHHJ = true
	ast, _ := Parse(`select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 10 and p.upin < 10`)
	plan, err := pl.Plan(ast)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Estimates) != 5 {
		t.Fatalf("estimates with HHJ: %+v", plan.Estimates)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestAggregates(t *testing.T) {
	pl, d := planner(t, 20, 50, derby.ClassCluster, CostBased)
	n := int64(d.NumPatients)
	// mrn is dense 1..N: sum/min/max/avg over mrn < 101 are exact.
	pl.DB.ColdRestart()
	res, err := pl.Query(`select sum(pa.mrn), min(pa.mrn), max(pa.mrn), avg(pa.mrn), count(pa.mrn)
		from pa in Patients where pa.mrn < 101`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 100 {
		t.Fatalf("rows = %d", res.Rows)
	}
	if len(res.Aggregates) != 5 {
		t.Fatalf("aggregates: %v", res.Aggregates)
	}
	want := []struct {
		label string
		value float64
	}{
		{"sum(mrn)", 5050},
		{"min(mrn)", 1},
		{"max(mrn)", 100},
		{"avg(mrn)", 50.5},
		{"count(mrn)", 100},
	}
	for i, w := range want {
		got := res.Aggregates[i]
		if got.Label != w.label || got.Value != w.value {
			t.Fatalf("agg %d = %+v, want %+v", i, got, w)
		}
	}
	_ = n
}

func TestAggregateOverEmptySelection(t *testing.T) {
	pl, _ := planner(t, 10, 5, derby.ClassCluster, CostBased)
	pl.DB.ColdRestart()
	res, err := pl.Query(`select min(pa.age), avg(pa.age) from pa in Patients where pa.mrn < 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 {
		t.Fatalf("rows = %d", res.Rows)
	}
	for _, a := range res.Aggregates {
		if a.Value != 0 {
			t.Fatalf("empty aggregate %+v", a)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	pl, _ := planner(t, 10, 5, derby.ClassCluster, CostBased)
	bad := []string{
		`select sum(pa.age), pa.name from pa in Patients`,                                  // mixed
		`select sum(pa.name) from pa in Patients`,                                          // non-integer
		`select sum(p.upin), pa.age from p in Providers, pa in p.clients where pa.mrn < 5`, // tree agg
	}
	for _, src := range bad {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := pl.Plan(ast); err == nil {
			t.Fatalf("Plan(%q) accepted", src)
		}
	}
	// Aggregate round-trips through String.
	q, err := Parse(`select sum(pa.age) from pa in Patients`)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != `select sum(pa.age) from pa in Patients` {
		t.Fatalf("String: %q", q.String())
	}
	if _, err := Parse(`select sum(pa.age from pa in Patients`); err == nil {
		t.Fatal("unclosed aggregate accepted")
	}
}

// TestHistogramSelectivityOnSkewedData verifies the planner's statistics
// answer the paper's "what statistics should the system maintain": on a
// skewed key distribution the equi-depth histogram estimate is accurate
// where a uniform min/max assumption is off by orders of magnitude.
func TestHistogramSelectivityOnSkewedData(t *testing.T) {
	db := engineDB(t)
	cls := objectClass()
	ext, err := db.CreateExtent("Skewed", cls, "skewed")
	if err != nil {
		t.Fatal(err)
	}
	ix, _, err := db.CreateIndex(ext, "v", false)
	if err != nil {
		t.Fatal(err)
	}
	// 90% of keys in [0,100), 10% spread to 1e6.
	for i := 0; i < 5000; i++ {
		v := int64(i % 100)
		if i%10 == 0 {
			v = int64(i) * 200
		}
		if _, err := db.Insert(nil, ext, []object.Value{object.IntValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	pl := &Planner{DB: db, Strategy: CostBased}
	got := pl.estimateSelectivity(ix, selection.Pred{Attr: "v", Op: selection.Lt, K: 100})
	if got < 0.80 || got > 0.95 {
		t.Fatalf("histogram selectivity = %v, want ≈0.9", got)
	}
	// And the uniform assumption would have said ~0.0001.
	if uniform := 100.0 / 1e6; got < uniform*100 {
		t.Fatalf("estimate %v indistinguishable from uniform %v", got, uniform)
	}
}

func TestOrderBy(t *testing.T) {
	pl, _ := planner(t, 20, 50, derby.ClassCluster, CostBased)
	pl.DB.ColdRestart()
	res, err := pl.Query(`select pa.name, pa.age from pa in Patients where pa.mrn < 51 order by pa.age desc`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 50 || len(res.Sample) != 50 {
		t.Fatalf("rows=%d sample=%d", res.Rows, len(res.Sample))
	}
	for i := 1; i < len(res.Sample); i++ {
		if res.Sample[i][1].Int > res.Sample[i-1][1].Int {
			t.Fatalf("sample not descending at %d: %v > %v", i, res.Sample[i][1].Int, res.Sample[i-1][1].Int)
		}
	}
	// Ascending, with the order attribute NOT projected (hidden).
	pl.DB.ColdRestart()
	res, err = pl.Query(`select pa.name from pa in Patients where pa.mrn < 51 order by pa.age`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != 50 || len(res.Sample[0]) != 1 {
		t.Fatalf("hidden order column leaked: %v", res.Sample[0])
	}
	if res.Sample[0][0].Kind != object.KindString {
		t.Fatalf("sample cell kind: %v", res.Sample[0][0].Kind)
	}
	// The sort is charged.
	if res.Counters.SortedElems == 0 {
		t.Fatal("order by charged no sort")
	}
	// Round trip the clause.
	q, err := Parse(`select pa.name from pa in Patients where pa.mrn < 5 order by pa.age desc`)
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy == nil || !q.OrderBy.Desc {
		t.Fatalf("OrderBy: %+v", q.OrderBy)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
}

func TestOrderByValidation(t *testing.T) {
	pl, _ := planner(t, 10, 5, derby.ClassCluster, CostBased)
	for _, src := range []string{
		`select sum(pa.age) from pa in Patients order by pa.age`,
		`select count(*) from pa in Patients order by pa.age`,
		`select pa.name from pa in Patients order by pa.name`,
		`select pa.name from pa in Patients order by pa.bogus`,
		`select p.name, pa.age from p in Providers, pa in p.clients order by pa.age`,
	} {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := pl.Plan(ast); err == nil {
			t.Fatalf("Plan(%q) accepted", src)
		}
	}
	if _, err := Parse(`select a.b from a in B order pa.age`); err == nil {
		t.Fatal("missing 'by' accepted")
	}
}

func TestSampleRows(t *testing.T) {
	pl, _ := planner(t, 20, 50, derby.ClassCluster, CostBased)
	pl.DB.ColdRestart()
	res, err := pl.Query(`select pa.mrn, pa.sex from pa in Patients where pa.mrn < 11`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sample) != 10 || res.SampleTruncated {
		t.Fatalf("sample: %d truncated=%v", len(res.Sample), res.SampleTruncated)
	}
	seen := map[int64]bool{}
	for _, row := range res.Sample {
		if len(row) != 2 || row[0].Kind != object.KindInt || row[1].Kind != object.KindChar {
			t.Fatalf("row shape: %v", row)
		}
		seen[row[0].Int] = true
	}
	if len(seen) != 10 {
		t.Fatalf("mrn values: %v", seen)
	}
	// count(*) produces no sample.
	pl.DB.ColdRestart()
	res, _ = pl.Query(`select count(*) from pa in Patients where pa.mrn < 11`)
	if len(res.Sample) != 0 {
		t.Fatal("count(*) produced a sample")
	}
}
