package oql

import (
	"fmt"
	"strconv"

	"treebench/internal/selection"
)

// Parse turns OQL text into an AST. It reports the first syntax error with
// its offset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %s", p.peek())
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{
			tokIdent: "identifier", tokInt: "integer", tokOp: "operator",
		}[kind]
	}
	return token{}, p.errf("expected %s, found %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("oql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	q := &Query{}
	// count(*) is a dedicated form; count(path) is an ordinary aggregate
	// projection, so look two tokens ahead before committing.
	if p.at(tokKeyword, "count") && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" &&
		p.toks[p.i+2].kind == tokPunct && p.toks[p.i+2].text == "*" {
		p.next()
		p.next()
		p.next()
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		q.CountStar = true
	} else {
		for {
			proj, err := p.parseProjection()
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, proj)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, b)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "where") {
		for {
			c, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.accept(tokKeyword, "and") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "order") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		spec := &OrderSpec{Path: path}
		if p.accept(tokKeyword, "desc") {
			spec.Desc = true
		} else {
			p.accept(tokKeyword, "asc")
		}
		q.OrderBy = spec
	}
	return q, nil
}

// parseProjection parses `path` or `agg(path)`.
func (p *parser) parseProjection() (Projection, error) {
	for _, agg := range []Aggregate{AggSum, AggMin, AggMax, AggAvg, AggCount} {
		if !p.at(tokKeyword, string(agg)) {
			continue
		}
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return Projection{}, err
		}
		path, err := p.parsePath()
		if err != nil {
			return Projection{}, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return Projection{}, err
		}
		return Projection{Agg: agg, Path: path}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return Projection{}, err
	}
	return Projection{Path: path}, nil
}

func (p *parser) parsePath() (Path, error) {
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return Path{}, err
	}
	path := Path{Var: id.text}
	for p.accept(tokPunct, ".") {
		attr, err := p.expect(tokIdent, "")
		if err != nil {
			return Path{}, err
		}
		path.Attrs = append(path.Attrs, attr.text)
	}
	return path, nil
}

func (p *parser) parseBinding() (Binding, error) {
	v, err := p.expect(tokIdent, "")
	if err != nil {
		return Binding{}, err
	}
	if _, err := p.expect(tokKeyword, "in"); err != nil {
		return Binding{}, err
	}
	src, err := p.parsePath()
	if err != nil {
		return Binding{}, err
	}
	b := Binding{Var: v.text}
	switch len(src.Attrs) {
	case 0:
		b.Extent = src.Var
	case 1:
		b.ParentVar = src.Var
		b.ParentAttr = src.Attrs[0]
	default:
		return Binding{}, p.errf("binding source %s: only one navigation step is supported", src)
	}
	return b, nil
}

func (p *parser) parseComparison() (Comparison, error) {
	// Either `path op literal` or `literal op path`.
	if p.at(tokInt, "") {
		lit, _ := p.expect(tokInt, "")
		op, err := p.expect(tokOp, "")
		if err != nil {
			return Comparison{}, err
		}
		path, err := p.parsePath()
		if err != nil {
			return Comparison{}, err
		}
		k, err := strconv.ParseInt(lit.text, 10, 64)
		if err != nil {
			return Comparison{}, p.errf("bad integer %q", lit.text)
		}
		return Comparison{Path: path, Op: mirror(selection.Op(op.text)), K: k}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return Comparison{}, err
	}
	op, err := p.expect(tokOp, "")
	if err != nil {
		return Comparison{}, err
	}
	lit, err := p.expect(tokInt, "")
	if err != nil {
		return Comparison{}, err
	}
	k, err := strconv.ParseInt(lit.text, 10, 64)
	if err != nil {
		return Comparison{}, p.errf("bad integer %q", lit.text)
	}
	return Comparison{Path: path, Op: selection.Op(op.text), K: k}, nil
}

// mirror flips an operator for `literal op path` → `path op' literal`.
func mirror(op selection.Op) selection.Op {
	switch op {
	case selection.Lt:
		return selection.Gt
	case selection.Le:
		return selection.Ge
	case selection.Gt:
		return selection.Lt
	case selection.Ge:
		return selection.Le
	default:
		return op // = and != are symmetric
	}
}
