package oql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"treebench/internal/engine"
	"treebench/internal/index"
	"treebench/internal/join"
	"treebench/internal/selection"
	"treebench/internal/storage"
)

// Strategy selects the optimizer's search strategy.
type Strategy int

const (
	// Heuristic caricatures the legacy O2 optimizer (§2): use an index
	// when one exists — without sorting its Rids — and prefer navigation
	// down the hierarchy. "As expected, this implies that 'best' is
	// sometimes rather bad."
	Heuristic Strategy = iota
	// CostBased estimates each alternative with the calibrated cost
	// model — the strategy the paper set out to build — and picks the
	// cheapest.
	CostBased
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Heuristic:
		return "heuristic"
	case CostBased:
		return "cost-based"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// PlanKind distinguishes the two query shapes the subset supports.
type PlanKind int

const (
	// PlanSelection is a single-extent selection.
	PlanSelection PlanKind = iota
	// PlanTreeJoin is the §5 two-variable hierarchical query.
	PlanTreeJoin
)

// Estimate is one costed alternative considered by the planner.
type Estimate struct {
	Choice  string
	Seconds float64
}

// Plan is an executable plan plus the alternatives that were considered.
type Plan struct {
	Kind     PlanKind
	Query    *Query
	Strategy Strategy

	// Selection plans.
	Extent     *engine.Extent
	Access     selection.Access
	Where      selection.Pred
	Filters    []selection.Pred
	Projects   []string
	Aggregates []Aggregate // parallel to Projects; empty entries = plain
	CountOnly  bool
	// OrderAttr (with OrderDesc) asks the executor to sort the result;
	// OrderIdx is its position within Projects (appended as a hidden
	// projection if the query did not project it).
	OrderAttr   string
	OrderDesc   bool
	OrderIdx    int
	orderHidden bool

	// Tree-join plans.
	Env       *join.Env
	Algorithm join.Algorithm
	JoinQuery join.Query

	Estimates []Estimate
}

// OrderHidden reports whether the order-by column was appended as a hidden
// projection (not asked for by the query) and so must be stripped from
// sorted rows — by the executor locally, or by a coordinator after it sorts
// the merged partial samples.
func (p *Plan) OrderHidden() bool { return p.orderHidden }

// Explain renders the plan and its costed alternatives.
func (p *Plan) Explain() string {
	var b strings.Builder
	switch p.Kind {
	case PlanSelection:
		fmt.Fprintf(&b, "selection on %s via %s", p.Extent.Name, p.Access)
		if !p.Where.IsAlways() {
			fmt.Fprintf(&b, " where %s %s %d", p.Where.Attr, p.Where.Op, p.Where.K)
		}
	case PlanTreeJoin:
		fmt.Fprintf(&b, "tree join %s over %s (k1=%d, k2=%d) via %s",
			p.Env.Parent.Name, p.Env.Child.Name, p.JoinQuery.K1, p.JoinQuery.K2, p.Algorithm)
	}
	if p.OrderAttr != "" {
		fmt.Fprintf(&b, " order by %s", p.OrderAttr)
		if p.OrderDesc {
			b.WriteString(" desc")
		}
	}
	fmt.Fprintf(&b, " [%s]", p.Strategy)
	for _, e := range p.Estimates {
		fmt.Fprintf(&b, "\n  est %-12s %10.2fs", e.Choice, e.Seconds)
	}
	return b.String()
}

// Planner resolves and optimizes parsed queries against one database.
type Planner struct {
	DB       *engine.Database
	Strategy Strategy
	// EnableHHJ adds the hybrid-hash extension to the cost-based search
	// space (off by default: the paper's O2 did not have it).
	EnableHHJ bool
	// Cache, when set, memoizes compiled plans by query source (see
	// PlanSource). Plans depend on the database's statistics, so a cache
	// must not outlive or be shared across databases.
	Cache *PlanCache
}

// Plan analyzes and optimizes q.
func (pl *Planner) Plan(q *Query) (*Plan, error) {
	switch len(q.Bindings) {
	case 1:
		return pl.planSelection(q)
	case 2:
		return pl.planTreeJoin(q)
	default:
		return nil, fmt.Errorf("oql: %d bindings unsupported (1 or 2)", len(q.Bindings))
	}
}

// resolveVar maps binding variables to extents.
type scope map[string]*engine.Extent

func (pl *Planner) buildScope(q *Query) (scope, error) {
	sc := scope{}
	for _, b := range q.Bindings {
		if _, dup := sc[b.Var]; dup {
			return nil, fmt.Errorf("oql: duplicate variable %q", b.Var)
		}
		if b.Extent != "" {
			e, err := pl.DB.Extent(b.Extent)
			if err != nil {
				return nil, fmt.Errorf("oql: unknown extent %q", b.Extent)
			}
			sc[b.Var] = e
			continue
		}
		parent, ok := sc[b.ParentVar]
		if !ok {
			return nil, fmt.Errorf("oql: binding %s references unknown variable %q", b, b.ParentVar)
		}
		ai := parent.Class.AttrIndex(b.ParentAttr)
		if ai < 0 {
			return nil, fmt.Errorf("oql: class %s has no attribute %q", parent.Class.Name, b.ParentAttr)
		}
		// The child extent is found through the set attribute's target;
		// in this engine the Derby clients set always targets the other
		// extent of the 1-n pair. Resolve it as "the extent whose class
		// holds a ref back" — or simply the only other extent-bound class
		// with a KindRef attribute. We search registered extents for one
		// whose class is not the parent's.
		child, err := pl.childExtentFor(parent, b.ParentAttr)
		if err != nil {
			return nil, err
		}
		sc[b.Var] = child
	}
	return sc, nil
}

// childExtentFor locates the extent the parent's set attribute points
// into, by sampling the first parent object's collection (a real system
// would read this from the schema's typed relationships; our object model
// keeps set element types implicit, so the planner peeks at the data).
func (pl *Planner) childExtentFor(parent *engine.Extent, setAttr string) (*engine.Extent, error) {
	for _, name := range pl.DB.Extents() {
		e, err := pl.DB.Extent(name)
		if err != nil {
			return nil, err
		}
		if e == parent {
			continue
		}
		for _, a := range e.Class.Attrs {
			if a.Kind == refKind {
				return e, nil
			}
		}
	}
	return nil, fmt.Errorf("oql: cannot resolve element extent of %s.%s", parent.Class.Name, setAttr)
}

func (pl *Planner) planSelection(q *Query) (*Plan, error) {
	sc, err := pl.buildScope(q)
	if err != nil {
		return nil, err
	}
	b := q.Bindings[0]
	if b.Extent == "" {
		return nil, fmt.Errorf("oql: single binding must range over an extent")
	}
	ext := sc[b.Var]
	plan := &Plan{Kind: PlanSelection, Query: q, Strategy: pl.Strategy, Extent: ext, CountOnly: q.CountStar}

	// Projections: attributes of the single variable, optionally wrapped
	// in aggregates. Aggregates and plain projections cannot mix (there is
	// no grouping in this subset).
	if !q.CountStar {
		if q.HasAggregates() {
			for _, proj := range q.Projections {
				if proj.Agg == AggNone {
					return nil, fmt.Errorf("oql: cannot mix aggregates and plain projections")
				}
			}
		}
		for _, proj := range q.Projections {
			if proj.Path.Var != b.Var || len(proj.Path.Attrs) != 1 {
				return nil, fmt.Errorf("oql: projection %s must be a single attribute of %s", proj, b.Var)
			}
			ai := ext.Class.AttrIndex(proj.Path.Attrs[0])
			if ai < 0 {
				return nil, fmt.Errorf("oql: class %s has no attribute %q", ext.Class.Name, proj.Path.Attrs[0])
			}
			if proj.Agg != AggNone && proj.Agg != AggCount {
				if k := ext.Class.Attrs[ai].Kind; k != intKind && k != charKind {
					return nil, fmt.Errorf("oql: %s over non-integer attribute %s", proj.Agg, proj.Path)
				}
			}
			plan.Projects = append(plan.Projects, proj.Path.Attrs[0])
			plan.Aggregates = append(plan.Aggregates, proj.Agg)
		}
	}

	// Predicates: all must bind the variable; pick the best indexed one
	// as the access predicate.
	var preds []selection.Pred
	for _, c := range q.Where {
		if c.Path.Var != b.Var || len(c.Path.Attrs) != 1 {
			return nil, fmt.Errorf("oql: predicate %s must test one attribute of %s", c, b.Var)
		}
		preds = append(preds, selection.Pred{Attr: c.Path.Attrs[0], Op: c.Op, K: c.K})
	}
	// Order by: selections only, never under aggregation.
	if q.OrderBy != nil {
		if q.CountStar || q.HasAggregates() {
			return nil, fmt.Errorf("oql: order by cannot combine with aggregates")
		}
		ob := q.OrderBy
		if ob.Path.Var != b.Var || len(ob.Path.Attrs) != 1 {
			return nil, fmt.Errorf("oql: order by %s must name one attribute of %s", ob.Path, b.Var)
		}
		ai := ext.Class.AttrIndex(ob.Path.Attrs[0])
		if ai < 0 {
			return nil, fmt.Errorf("oql: class %s has no attribute %q", ext.Class.Name, ob.Path.Attrs[0])
		}
		if k := ext.Class.Attrs[ai].Kind; k != intKind && k != charKind {
			return nil, fmt.Errorf("oql: order by non-integer attribute %s", ob.Path)
		}
		plan.OrderAttr = ob.Path.Attrs[0]
		plan.OrderDesc = ob.Desc
		plan.OrderIdx = -1
		for i, a := range plan.Projects {
			if a == plan.OrderAttr {
				plan.OrderIdx = i
			}
		}
		if plan.OrderIdx < 0 {
			plan.OrderIdx = len(plan.Projects)
			plan.Projects = append(plan.Projects, plan.OrderAttr)
			plan.Aggregates = append(plan.Aggregates, AggNone)
			plan.orderHidden = true
		}
	}

	bestIdx := -1
	bestSel := math.MaxFloat64
	for i, pr := range preds {
		ix := pl.DB.IndexOn(ext.Name, pr.Attr)
		if ix == nil {
			continue
		}
		if _, _, ok := pr.KeyRange(); !ok {
			continue
		}
		sel := pl.estimateSelectivity(ix, pr)
		if sel < bestSel {
			bestSel = sel
			bestIdx = i
		}
	}
	for i, pr := range preds {
		if i == bestIdx {
			plan.Where = pr
		} else {
			plan.Filters = append(plan.Filters, pr)
		}
	}

	// Cost the alternatives.
	rows := float64(ext.Count)
	for _, pr := range preds {
		rows *= pl.predSelectivity(ext, pr)
	}
	full := pl.costFullScan(ext, rows)
	plan.Estimates = append(plan.Estimates, Estimate{string(selection.FullScan), full})
	if bestIdx >= 0 {
		matched := float64(ext.Count) * bestSel
		unsorted := pl.costIndexScan(ext, matched, rows, false)
		sorted := pl.costIndexScan(ext, matched, rows, true)
		plan.Estimates = append(plan.Estimates,
			Estimate{string(selection.IndexScan), unsorted},
			Estimate{string(selection.SortedIndexScan), sorted})
	}

	switch {
	case bestIdx < 0:
		plan.Access = selection.FullScan
	case pl.Strategy == Heuristic:
		// The legacy behavior: an index always looks attractive, and
		// nobody sorts the Rids.
		plan.Access = selection.IndexScan
	default:
		plan.Access = cheapest(plan.Estimates)
	}
	return plan, nil
}

func cheapest(ests []Estimate) selection.Access {
	// Ties go to the later alternative: the list orders plans from naive
	// to robust (scan, unsorted index, sorted index), and at equal
	// estimated cost the robust one never loses.
	best := ests[0]
	for _, e := range ests[1:] {
		if e.Seconds <= best.Seconds {
			best = e
		}
	}
	return selection.Access(best.Choice)
}

func (pl *Planner) planTreeJoin(q *Query) (*Plan, error) {
	sc, err := pl.buildScope(q)
	if err != nil {
		return nil, err
	}
	pb, cb := q.Bindings[0], q.Bindings[1]
	if pb.Extent == "" || cb.ParentVar != pb.Var {
		return nil, fmt.Errorf("oql: tree query must bind `%s in <Extent>, %s in %s.<set>`", pb.Var, cb.Var, pb.Var)
	}
	parent, child := sc[pb.Var], sc[cb.Var]

	env := &join.Env{
		DB:          pl.DB,
		Parent:      parent,
		Child:       child,
		SetAttr:     cb.ParentAttr,
		NumParents:  parent.Count,
		NumChildren: child.Count,
	}
	// Locate the child's back reference.
	for _, a := range child.Class.Attrs {
		if a.Kind == refKind {
			env.ParentRefAttr = a.Name
			break
		}
	}
	if env.ParentRefAttr == "" {
		return nil, fmt.Errorf("oql: class %s has no reference back to %s", child.Class.Name, parent.Class.Name)
	}
	env.Composition = parent.File == child.File && !childKeyLooksClustered(pl.DB, child)

	// Predicates: at most one `var.attr < k` per variable.
	k1 := int64(env.NumChildren) + 1
	k2 := int64(env.NumParents) + 1
	for _, c := range q.Where {
		if len(c.Path.Attrs) != 1 {
			return nil, fmt.Errorf("oql: predicate %s must test one attribute", c)
		}
		k := c.K
		switch c.Op {
		case selection.Lt:
		case selection.Le:
			k++
		default:
			return nil, fmt.Errorf("oql: tree queries support only < or <= predicates, got %s", c)
		}
		switch c.Path.Var {
		case pb.Var:
			env.ParentKeyAttr = c.Path.Attrs[0]
			k2 = k
		case cb.Var:
			env.ChildKeyAttr = c.Path.Attrs[0]
			k1 = k
		default:
			return nil, fmt.Errorf("oql: predicate %s binds unknown variable", c)
		}
	}
	// Unqualified sides still need an index to drive the scan: default to
	// the clustered key indexes.
	if env.ParentKeyAttr == "" {
		env.ParentKeyAttr, err = pl.defaultKeyAttr(parent)
		if err != nil {
			return nil, err
		}
	}
	if env.ChildKeyAttr == "" {
		env.ChildKeyAttr, err = pl.defaultKeyAttr(child)
		if err != nil {
			return nil, err
		}
	}

	// Projections: one attribute of each variable (or count(*)).
	if q.CountStar {
		env.ParentProj = env.ParentKeyAttr
		env.ChildProj = env.ChildKeyAttr
	} else {
		if q.HasAggregates() {
			return nil, fmt.Errorf("oql: aggregates are not supported over tree queries (use count(*))")
		}
		if q.OrderBy != nil {
			return nil, fmt.Errorf("oql: order by is not supported over tree queries")
		}
		if len(q.Projections) != 2 {
			return nil, fmt.Errorf("oql: tree queries project exactly one attribute per variable (f(p,pa))")
		}
		for _, proj := range q.Projections {
			if len(proj.Path.Attrs) != 1 {
				return nil, fmt.Errorf("oql: projection %s must be a single attribute", proj)
			}
			switch proj.Path.Var {
			case pb.Var:
				env.ParentProj = proj.Path.Attrs[0]
			case cb.Var:
				env.ChildProj = proj.Path.Attrs[0]
			default:
				return nil, fmt.Errorf("oql: projection %s binds unknown variable", proj)
			}
		}
		if env.ParentProj == "" || env.ChildProj == "" {
			return nil, fmt.Errorf("oql: tree queries project one attribute of each variable")
		}
	}

	jq := join.Query{K1: k1, K2: k2}
	plan := &Plan{
		Kind: PlanTreeJoin, Query: q, Strategy: pl.Strategy,
		Env: env, JoinQuery: jq,
	}
	plan.Estimates = pl.costTreeJoin(env, jq)
	if pl.Strategy == Heuristic {
		// Navigation bias of the legacy optimizer.
		plan.Algorithm = join.NL
	} else {
		best := plan.Estimates[0]
		for _, e := range plan.Estimates[1:] {
			if e.Seconds < best.Seconds {
				best = e
			}
		}
		plan.Algorithm = join.Algorithm(best.Choice)
	}
	return plan, nil
}

// defaultKeyAttr picks an indexed attribute to drive an unqualified scan.
func (pl *Planner) defaultKeyAttr(e *engine.Extent) (string, error) {
	for _, ix := range e.Indexes() {
		if ix.Clustered {
			return ix.Attr, nil
		}
	}
	if ixs := e.Indexes(); len(ixs) > 0 {
		return ixs[0].Attr, nil
	}
	return "", fmt.Errorf("oql: extent %s has no index to drive the scan", e.Name)
}

func childKeyLooksClustered(db *engine.Database, child *engine.Extent) bool {
	for _, ix := range child.Indexes() {
		if ix.Clustered {
			return true
		}
	}
	return false
}

// ---- Cost model -----------------------------------------------------------
//
// The estimator the paper wanted to elicit: per-alternative analytic costs
// in the units of the sim.CostModel, driven by page counts, cache geometry,
// uniform-key selectivity estimates, and the hash-memory budget.

func (pl *Planner) estimateSelectivity(ix *engine.Index, pr selection.Pred) float64 {
	lo, hi, ok := pr.KeyRange()
	if !ok {
		return 1
	}
	// Equi-depth histogram statistics, built lazily (the "what statistics
	// should the system maintain" answer); fall back to a uniform min/max
	// model if they cannot be built.
	if h, err := ix.Stats(pl.DB.Client); err == nil && h != nil {
		return h.Selectivity(lo, hi)
	}
	minK, okMin, err := ix.Backend.MinKey(pl.DB.Client)
	if err != nil || !okMin {
		return 1
	}
	maxK, okMax, err := ix.Backend.MaxKey(pl.DB.Client)
	if err != nil || !okMax || maxK <= minK {
		return 1
	}
	if lo < minK {
		lo = minK
	}
	if hi > maxK+1 {
		hi = maxK + 1
	}
	if hi <= lo {
		return 0
	}
	return float64(hi-lo) / float64(maxK-minK+1)
}

// predSelectivity estimates any predicate: indexed ones via key stats,
// others with the classic 1/3 default.
func (pl *Planner) predSelectivity(e *engine.Extent, pr selection.Pred) float64 {
	if ix := pl.DB.IndexOn(e.Name, pr.Attr); ix != nil {
		return pl.estimateSelectivity(ix, pr)
	}
	if pr.Op == selection.Eq {
		return 1 / math.Max(float64(e.Count), 1)
	}
	return 1.0 / 3
}

func (pl *Planner) pagesOf(e *engine.Extent) float64 { return float64(e.File.NumPages()) }

func (pl *Planner) cachePages() float64 {
	return float64(pl.DB.Machine.ClientCache / storage.PageSize)
}

func (pl *Planner) sec(d time.Duration) float64 { return d.Seconds() }

// randomFetchPages estimates page reads for n random object fetches over a
// file of p pages with a cache of c pages: the distinct pages touched when
// the file fits the cache, and the steady-state miss stream otherwise.
func randomFetchPages(n, p, c float64) float64 {
	if p <= 0 || n <= 0 {
		return 0
	}
	distinct := p * (1 - math.Exp(-n/p))
	if p <= c {
		return distinct
	}
	miss := n * (1 - c/p)
	return math.Max(distinct*(1-c/p), miss)
}

func leafPages(n float64) float64 {
	return n/(float64(index.LeafFanout)*0.9) + 2
}

// costFullScan estimates the standard scan (Figure 8 left).
func (pl *Planner) costFullScan(e *engine.Extent, rows float64) float64 {
	m := pl.DB.Meter.Model
	n := float64(e.Count)
	io := pl.pagesOf(e) * pl.sec(m.PageRead)
	cpu := n * pl.sec(m.ScanNext+m.HandleGet+m.HandleUnref+m.AttrGet+m.Compare)
	return io + cpu + rows*pl.sec(m.ResultAppend)
}

// costIndexScan estimates the (un)sorted index scan fetching `matched`
// objects of which `rows` survive residual filters.
func (pl *Planner) costIndexScan(e *engine.Extent, matched, rows float64, sorted bool) float64 {
	m := pl.DB.Meter.Model
	p := pl.pagesOf(e)
	io := leafPages(matched) * pl.sec(m.PageRead)
	if sorted {
		distinct := p * (1 - math.Exp(-matched/p))
		io += distinct * pl.sec(m.PageRead)
		if matched > 1 {
			io += matched * math.Log2(matched) * pl.sec(m.SortPerCompare)
		}
	} else {
		io += randomFetchPages(matched, p, pl.cachePages()) * pl.sec(m.PageRead)
	}
	cpu := matched * pl.sec(m.HandleGet+m.HandleUnref+2*m.AttrGet)
	return io + cpu + rows*pl.sec(m.ResultAppend)
}

// costTreeJoin estimates every §5.1 algorithm for the query.
func (pl *Planner) costTreeJoin(env *join.Env, q join.Query) []Estimate {
	m := pl.DB.Meter.Model
	np, nc := float64(env.NumParents), float64(env.NumChildren)
	selP := math.Min(1, math.Max(0, float64(q.K2-1)/math.Max(np, 1)))
	selC := math.Min(1, math.Max(0, float64(q.K1-1)/math.Max(nc, 1)))
	avg := nc / math.Max(np, 1)
	pp := pl.pagesOf(env.Parent)
	pc := pl.pagesOf(env.Child)
	cache := pl.cachePages()
	tuples := selP * selC * nc
	page := pl.sec(m.PageRead)
	handle := pl.sec(m.HandleGet + m.HandleUnref)
	result := tuples * pl.sec(m.ResultAppend)
	budget := float64(pl.DB.Machine.HashBudget)

	parentClustered := false
	if ix := pl.DB.IndexOn(env.Parent.Name, env.ParentKeyAttr); ix != nil {
		parentClustered = ix.Clustered
	}
	childClustered := false
	if ix := pl.DB.IndexOn(env.Child.Name, env.ChildKeyAttr); ix != nil {
		childClustered = ix.Clustered
	}
	// fetch estimates reading a selected fraction of an extent, either
	// streaming pages in order or faulting randomly. Which one applies
	// depends on the access site, not just the index:
	//   - parents in parent-key order are sequential under class AND
	//     composition clustering (the clustered file is in upin order);
	//   - children in child-key order are sequential only when the child
	//     key index is clustered (class clustering);
	//   - children navigated from their parents are sequential only under
	//     composition clustering.
	fetch := func(sel, n, p float64, sequential bool) float64 {
		if sequential {
			return sel * p * page
		}
		return randomFetchPages(sel*n, p, cache) * page
	}
	parentSeq := parentClustered || env.Composition
	childSeq := childClustered

	// NL: parent index scan + parent fetch + navigate to every child of
	// every selected parent (streams under composition, faults otherwise).
	nl := leafPages(selP*np)*page + fetch(selP, np, pp, parentSeq)
	if env.Composition {
		nl += selP * pc * page // children stream in with their parents
	} else {
		nl += randomFetchPages(selP*nc, pc, cache) * page
	}
	nl += selP*np*handle + selP*nc*(handle+pl.sec(2*m.AttrGet+m.Compare)) + result

	// NOJOIN: child index scan + child fetch + navigate to each child's
	// parent.
	nj := leafPages(selC*nc)*page + fetch(selC, nc, pc, childSeq)
	if env.Composition {
		// The parent shares pages with its children: no extra I/O.
	} else {
		nj += randomFetchPages(selC*nc, pp, cache) * page
	}
	nj += selC*nc*(2*handle+pl.sec(3*m.AttrGet+m.Compare)) + result

	// Hash joins: both index scans + both fetches + table costs.
	base := leafPages(selP*np)*page + fetch(selP, np, pp, parentSeq) +
		leafPages(selC*nc)*page + fetch(selC, nc, pc, childSeq) +
		selP*np*handle + selC*nc*handle + result

	swapFrac := func(size float64) float64 {
		if size <= budget {
			return 0
		}
		return (size - budget) / size
	}
	phjTable := selP * np * 64
	fr := swapFrac(phjTable)
	phj := base + selP*np*pl.sec(m.HashInsert) + selC*nc*pl.sec(m.HashProbe) +
		fr*(selP*np*pl.sec(m.SwapWrite)+selC*nc*pl.sec(m.SwapRead))

	groups := np * (1 - math.Pow(1-selC, math.Max(avg, 0.001)))
	chjTable := groups*64 + selC*nc*8
	fr = swapFrac(chjTable)
	chj := base + selC*nc*pl.sec(m.HashInsert) + selP*np*pl.sec(m.HashProbe) +
		fr*(selC*nc*pl.sec(m.SwapWrite)+(selP*np+selP*selC*nc)*pl.sec(m.SwapRead))

	ests := []Estimate{
		{string(join.PHJ), phj},
		{string(join.CHJ), chj},
		{string(join.NOJOIN), nj},
		{string(join.NL), nl},
	}
	if pl.EnableHHJ {
		hhj := base + selP*np*pl.sec(m.HashInsert) + selC*nc*pl.sec(m.HashProbe)
		if phjTable > budget*0.8 {
			spillFrac := 1 - budget*0.8/phjTable
			spillPages := (selP*np*24 + selC*nc*12) * spillFrac / float64(storage.PageSize)
			hhj += spillPages * pl.sec(m.PageWrite+m.PageRead)
		}
		ests = append(ests, Estimate{string(join.HHJ), hhj})
	}
	sort.SliceStable(ests, func(i, j int) bool { return ests[i].Seconds < ests[j].Seconds })
	return ests
}
