package oql

import (
	"sync"

	"treebench/internal/cache"
)

// DefaultPlanCacheSize is the plan-cache capacity sessions use unless
// configured otherwise: generously larger than any workload in the
// experiment suite, so repeated statements always hit.
const DefaultPlanCacheSize = 256

// planKey identifies a cached plan: the exact query source plus the
// optimizer configuration that shaped it. A planner with a different
// strategy (or search space) must not reuse another's plan.
type planKey struct {
	src      string
	strategy Strategy
	hhj      bool
}

// PlanCache is an LRU of compiled plans keyed by query source text. Plans
// are immutable once built (Execute only reads them), so one cached plan
// can serve any number of executions against the database it was planned
// for. The cache is safe for concurrent use: a daemon's sessions may share
// one per-database cache.
//
// Planning is pure CPU outside the simulated cost model — the statistics
// it reads are primed and cached — so a hit changes no simulated number;
// it only skips re-parsing and re-costing. Hit and miss counts are
// reported so servers can expose the rate (wire.Stats).
type PlanCache struct {
	mu     sync.Mutex
	lru    *cache.LRU[planKey, *Plan]
	hits   int64
	misses int64
}

// NewPlanCache returns a plan cache holding at most capacity plans
// (capacity < 1 selects DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{lru: cache.NewLRU[planKey, *Plan](capacity)}
}

func (pc *PlanCache) get(k planKey) (*Plan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	p, ok := pc.lru.Get(k)
	if ok {
		pc.hits++
	} else {
		pc.misses++
	}
	return p, ok
}

func (pc *PlanCache) put(k planKey, p *Plan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.lru.Put(k, p)
}

// Stats reports the lifetime hit and miss counts.
func (pc *PlanCache) Stats() (hits, misses int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.hits, pc.misses
}

// Len reports the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

// PlanSource parses and plans OQL text, consulting the planner's plan
// cache when one is attached.
func (pl *Planner) PlanSource(src string) (*Plan, error) {
	var k planKey
	if pl.Cache != nil {
		k = planKey{src: src, strategy: pl.Strategy, hhj: pl.EnableHHJ}
		if p, ok := pl.Cache.get(k); ok {
			return p, nil
		}
	}
	ast, err := Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := pl.Plan(ast)
	if err != nil {
		return nil, err
	}
	if pl.Cache != nil {
		pl.Cache.put(k, plan)
	}
	return plan, nil
}
