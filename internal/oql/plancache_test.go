package oql

import (
	"testing"

	"treebench/internal/derby"
)

// TestPlanCacheHitsSkipReplanning checks the hot path: the second
// PlanSource of the same text returns the identical *Plan without
// reparsing, hit/miss counters advance, and executing a cached plan
// yields the same rendered numbers as a fresh one.
func TestPlanCacheHitsSkipReplanning(t *testing.T) {
	pl, _ := planner(t, 20, 20, derby.ClassCluster, CostBased)
	pl.Cache = NewPlanCache(4)
	const src = "select count(*) from pa in Patients where pa.mrn < 100"

	p1, err := pl.PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pl.PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second PlanSource did not return the cached plan")
	}
	if h, m := pl.Cache.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", h, m)
	}

	pl.DB.ColdRestart()
	r1, err := pl.Execute(p1)
	if err != nil {
		t.Fatal(err)
	}
	pl.DB.ColdRestart()
	r2, err := pl.Execute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows != r2.Rows || r1.Elapsed != r2.Elapsed || r1.Counters != r2.Counters {
		t.Fatalf("cached plan executed differently: %+v vs %+v", r1, r2)
	}
}

// TestPlanCacheKeyIncludesStrategy ensures a strategy or HHJ toggle never
// serves a plan chosen under different optimizer settings.
func TestPlanCacheKeyIncludesStrategy(t *testing.T) {
	pl, _ := planner(t, 20, 20, derby.ClassCluster, CostBased)
	pl.Cache = NewPlanCache(4)
	const src = "select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 10"

	p1, err := pl.PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	pl.Strategy = Heuristic
	p2, err := pl.PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("strategy switch returned the cost-based cached plan")
	}
	if h, m := pl.Cache.Stats(); h != 0 || m != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 0/2", h, m)
	}
	// Back to cost-based: both entries live side by side.
	pl.Strategy = CostBased
	p3, err := pl.PlanSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("cost-based plan evicted by strategy-switched entry")
	}
}

// TestPlanCacheEvictsLRU pins the capacity contract: the least recently
// used query's plan leaves first.
func TestPlanCacheEvictsLRU(t *testing.T) {
	pl, _ := planner(t, 20, 20, derby.ClassCluster, CostBased)
	pl.Cache = NewPlanCache(2)
	queries := []string{
		"select count(*) from pa in Patients where pa.mrn < 10",
		"select count(*) from pa in Patients where pa.mrn < 20",
		"select count(*) from pa in Patients where pa.mrn < 30",
	}
	for _, q := range queries[:2] {
		if _, err := pl.PlanSource(q); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the first so the second becomes LRU, then overflow.
	if _, err := pl.PlanSource(queries[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.PlanSource(queries[2]); err != nil {
		t.Fatal(err)
	}
	if pl.Cache.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2", pl.Cache.Len())
	}
	h0, _ := pl.Cache.Stats()
	if _, err := pl.PlanSource(queries[0]); err != nil {
		t.Fatal(err)
	}
	if h, _ := pl.Cache.Stats(); h != h0+1 {
		t.Fatal("recently touched plan was evicted")
	}
	_, m0 := pl.Cache.Stats()
	if _, err := pl.PlanSource(queries[1]); err != nil {
		t.Fatal(err)
	}
	if _, m := pl.Cache.Stats(); m != m0+1 {
		t.Fatal("LRU plan survived past capacity")
	}
}
