package oql

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treebench/internal/selection"
)

// randomQuery builds a random but syntactically valid AST.
func randomQuery(rng *rand.Rand) *Query {
	ident := func() string {
		names := []string{"p", "pa", "x", "Providers", "Patients", "upin", "mrn", "age", "name", "num"}
		return names[rng.Intn(len(names))]
	}
	path := func(variable string) Path {
		return Path{Var: variable, Attrs: []string{ident()}}
	}
	q := &Query{}
	vars := []string{"a", "b"}
	// Bindings: one extent binding, maybe a child binding.
	q.Bindings = append(q.Bindings, Binding{Var: vars[0], Extent: ident()})
	twoVars := rng.Intn(2) == 0
	if twoVars {
		q.Bindings = append(q.Bindings, Binding{Var: vars[1], ParentVar: vars[0], ParentAttr: ident()})
	}
	// Projections: count(*) or 1..3 paths, possibly aggregated.
	switch rng.Intn(3) {
	case 0:
		q.CountStar = true
	default:
		n := 1 + rng.Intn(3)
		aggs := []Aggregate{AggNone, AggSum, AggMin, AggMax, AggAvg, AggCount}
		for i := 0; i < n; i++ {
			proj := Projection{Path: path(vars[rng.Intn(len(q.Bindings))])}
			if rng.Intn(3) == 0 {
				proj.Agg = aggs[rng.Intn(len(aggs))]
			}
			q.Projections = append(q.Projections, proj)
		}
	}
	// Predicates.
	ops := []selection.Op{selection.Lt, selection.Le, selection.Gt, selection.Ge, selection.Eq, selection.Ne}
	for i := rng.Intn(3); i > 0; i-- {
		q.Where = append(q.Where, Comparison{
			Path: path(vars[rng.Intn(len(q.Bindings))]),
			Op:   ops[rng.Intn(len(ops))],
			K:    int64(rng.Intn(100000)),
		})
	}
	if rng.Intn(3) == 0 {
		q.OrderBy = &OrderSpec{Path: path(vars[0]), Desc: rng.Intn(2) == 0}
	}
	return q
}

// TestQueryStringParseRoundTrip: any AST the builders can produce survives
// String → Parse structurally intact.
func TestQueryStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomQuery(rng)
		src := q.String()
		q2, err := Parse(src)
		if err != nil {
			t.Logf("Parse(%q): %v", src, err)
			return false
		}
		if !reflect.DeepEqual(q, q2) {
			t.Logf("round trip changed %q:\n%#v\nvs\n%#v", src, q, q2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanics: arbitrary byte soup must produce an error or an
// AST, never a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// A few handcrafted near-misses.
	for _, src := range []string{
		"select sum( from x in Y",
		"select count(*) from x in Y where 1 < 2",
		"select a.b from a in B where a.b < 99999999999999999999",
		"select a.b, from a in B",
		"SELECT A.B FROM A IN C WHERE A.B >= 0",
	} {
		_, _ = Parse(src)
	}
}
