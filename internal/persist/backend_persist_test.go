package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treebench/internal/derby"
)

// lsmSnapshot builds a snapshot whose indexes run on the LSM backend with
// real structure behind them: enough update waves to flush memtables into
// SSTables, so the backends section carries table descriptors, fences and
// bloom filters — not just an empty memtable.
func lsmSnapshot(t *testing.T) *derby.Snapshot {
	t.Helper()
	cfg := derby.DefaultConfig(20, 20, derby.ClassCluster)
	cfg.IndexBackend = "lsm"
	d, err := derby.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	spec := derby.DefaultWaveSpec()
	for wave := uint64(0); wave < 48; wave++ {
		if _, err := derby.ApplyWave(d, wave, spec); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
	}
	snap, err := d.Freeze()
	if err != nil {
		t.Fatalf("freeze: %v", err)
	}
	return snap
}

// TestLSMSnapshotRoundTrip saves an LSM-backed snapshot (SSTables, bloom
// filters, tombstones and all), loads it back, and requires the loaded
// copy to render every query byte-identically — and to still be an LSM.
func TestLSMSnapshotRoundTrip(t *testing.T) {
	snap := lsmSnapshot(t)
	if got := snap.Engine.IndexBackend(); got != "lsm" {
		t.Fatalf("frozen snapshot backend = %q, want lsm", got)
	}
	path := filepath.Join(t.TempDir(), "lsm.tbsp")
	if err := Save(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	m, err := Inspect(path)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if m.Backend != "lsm" {
		t.Fatalf("manifest backend = %q, want lsm", m.Backend)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := loaded.Engine.IndexBackend(); got != "lsm" {
		t.Fatalf("loaded snapshot backend = %q, want lsm", got)
	}
	for _, warm := range []bool{false, true} {
		want := render(t, snap, warm)
		got := render(t, loaded, warm)
		if want != got {
			t.Errorf("warm=%v: loaded LSM snapshot renders differently\n--- original\n%s--- loaded\n%s", warm, want, got)
		}
	}
}

// TestLSMBackendsSectionCorruption flips a byte inside the backends
// section of a saved LSM snapshot and requires Load to fail with the
// typed ErrChecksum naming the section — a damaged bloom filter or table
// descriptor must never load as a quietly wrong index.
func TestLSMBackendsSectionCorruption(t *testing.T) {
	snap := lsmSnapshot(t)
	path := filepath.Join(t.TempDir(), "lsm.tbsp")
	if err := Save(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	sec, ok := readTestTable(t, raw)["backends"]
	if !ok {
		t.Fatal("saved LSM snapshot has no backends section")
	}
	if sec[1] == 0 {
		t.Fatal("backends section is empty for an LSM snapshot")
	}
	raw[sec[0]+sec[1]/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("loading a corrupted backends section succeeded")
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("error is not ErrChecksum: %v", err)
	}
	if !strings.Contains(err.Error(), "backends") {
		t.Fatalf("error does not name the backends section: %v", err)
	}
}
