package persist

import (
	"os"
	"path/filepath"
	"testing"

	"treebench/internal/derby"
)

// The benchmark pair below answers the question the snapshot store
// exists for: what does a warm boot of the paper's 2000×1000 Derby
// database cost against generating it from scratch? Run both via
// `make bench-snap`; EXPERIMENTS.md records the observed ratio.

func benchConfig() derby.Config {
	return derby.DefaultConfig(2000, 1000, derby.ClassCluster)
}

func BenchmarkSnapshotGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := derby.Generate(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Freeze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	dir, err := os.MkdirTemp("", "tbsp-bench-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "derby.tbsp")
	d, err := derby.Generate(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	if err := Save(path, snap); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSave sizes the one-time cost of writing the cache
// entry the loads above amortize.
func BenchmarkSnapshotSave(b *testing.B) {
	d, err := derby.Generate(benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := d.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "tbsp-bench-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(filepath.Join(dir, "derby.tbsp"), snap); err != nil {
			b.Fatal(err)
		}
	}
}
