package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"treebench/internal/backend"
	"treebench/internal/derby"
)

// DefaultDir returns the snapshot cache directory: $TREEBENCH_SNAPSHOT_DIR
// if set, else <user cache dir>/treebench. It does not create the
// directory; Open does.
func DefaultDir() (string, error) {
	if dir := os.Getenv("TREEBENCH_SNAPSHOT_DIR"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("persist: no cache directory: %w", err)
	}
	return filepath.Join(base, "treebench"), nil
}

// KeyFor returns the content address of the snapshot a Config generates:
// a SHA-256 over a canonical rendering of every generation parameter plus
// the on-disk format version. Two configs that would generate the same
// database hash alike; any parameter that changes the database — scale,
// clustering, seed, cost model, loading discipline — changes the key, and
// a format bump invalidates every old entry at once.
func KeyFor(cfg derby.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tbsp-v%d\n", FormatVersion)
	fmt.Fprintf(&b, "providers=%d\n", cfg.Providers)
	fmt.Fprintf(&b, "avgPatients=%d\n", cfg.AvgPatients)
	fmt.Fprintf(&b, "clustering=%d\n", cfg.Clustering)
	fmt.Fprintf(&b, "seed=%d\n", cfg.Seed)
	fmt.Fprintf(&b, "machine=%d,%d,%d,%d\n",
		cfg.Machine.RAM, cfg.Machine.ServerCache, cfg.Machine.ClientCache, cfg.Machine.HashBudget)
	b.WriteString("model=")
	model := cfg.Model
	for i, f := range modelFields(&model) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int64(*f))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "txnMode=%d\n", cfg.TxnMode)
	fmt.Fprintf(&b, "createBudget=%d\n", cfg.CreateBudget)
	fmt.Fprintf(&b, "indexBeforeLoad=%t\n", cfg.IndexBeforeLoad)
	fmt.Fprintf(&b, "skipNumIndex=%t\n", cfg.SkipNumIndex)
	fmt.Fprintf(&b, "indexBackend=%s\n", backend.Normalize(cfg.IndexBackend))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Outcome reports where GetOrGenerate got its snapshot.
type Outcome struct {
	// Source is "cache" for a file hit, "generated" for a fresh build.
	Source string
	// Path is the snapshot file backing (or now caching) the result.
	Path string
}

// Cache is a content-addressed snapshot store: one file per generation
// parameter set, named by KeyFor. Concurrent and repeated requests for
// the same key share one result (generation is singleflighted and then
// memoized in memory), so a parameter set is generated at most once per
// process — and, with a warm directory, at most once ever.
type Cache struct {
	dir string

	mu    sync.Mutex
	calls map[string]*cacheCall

	generations atomic.Int64
}

type cacheCall struct {
	done chan struct{}
	snap *derby.Snapshot
	out  Outcome
	err  error
}

// Open returns a Cache over dir, creating it if needed. An empty dir
// selects DefaultDir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		var err error
		if dir, err = DefaultDir(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir, calls: make(map[string]*cacheCall)}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// PathFor returns the file a Config's snapshot lives at (existing or not).
func (c *Cache) PathFor(cfg derby.Config) string {
	return filepath.Join(c.dir, KeyFor(cfg)+".tbsp")
}

// Generations counts fresh dataset generations this Cache has performed —
// the number GetOrGenerate could not serve from disk or memory. A warm
// second boot must leave it unchanged; tests assert exactly that.
func (c *Cache) Generations() int64 { return c.generations.Load() }

// GetOrGenerate returns the snapshot for cfg: from the in-process memo if
// this key was already resolved, from disk if a valid cache file exists,
// else by generating, freezing and saving it. Snapshots are cached
// unprimed (saved straight after Freeze, before any PrimeStats), so a
// loaded snapshot is byte-identical to a freshly generated one; consumers
// that want primed histograms prime their copy after loading.
func (c *Cache) GetOrGenerate(cfg derby.Config) (*derby.Snapshot, Outcome, error) {
	key := KeyFor(cfg)
	c.mu.Lock()
	if call, ok := c.calls[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.snap, call.out, call.err
	}
	call := &cacheCall{done: make(chan struct{})}
	c.calls[key] = call
	c.mu.Unlock()

	call.snap, call.out, call.err = c.resolve(cfg, key)
	if call.err != nil {
		// Leave failures retryable: the next request re-resolves.
		c.mu.Lock()
		delete(c.calls, key)
		c.mu.Unlock()
	}
	close(call.done)
	return call.snap, call.out, call.err
}

func (c *Cache) resolve(cfg derby.Config, key string) (*derby.Snapshot, Outcome, error) {
	path := filepath.Join(c.dir, key+".tbsp")
	if snap, err := Load(path); err == nil {
		return snap, Outcome{Source: "cache", Path: path}, nil
	}
	// Missing or unreadable (a corrupt entry regenerates and is
	// overwritten — the content address guarantees the replacement is
	// what the file should have been).
	ds, err := derby.Generate(cfg)
	if err != nil {
		return nil, Outcome{}, err
	}
	snap, err := ds.Freeze()
	if err != nil {
		return nil, Outcome{}, err
	}
	c.generations.Add(1)
	if err := Save(path, snap); err != nil {
		return nil, Outcome{}, fmt.Errorf("persist: caching snapshot: %w", err)
	}
	return snap, Outcome{Source: "generated", Path: path}, nil
}
