package persist

import (
	"os"
	"sync"
	"testing"

	"treebench/internal/derby"
)

func TestCacheGetOrGenerate(t *testing.T) {
	dir := t.TempDir()
	cfg := derby.DefaultConfig(20, 20, derby.ClassCluster)

	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, out, err := c1.GetOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != "generated" || c1.Generations() != 1 {
		t.Fatalf("cold cache: source %q, %d generations", out.Source, c1.Generations())
	}
	if _, err := os.Stat(out.Path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Same process, same key: memoized, still one generation.
	snap2, out2, err := c1.GetOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != snap || c1.Generations() != 1 {
		t.Fatalf("second call regenerated (%d generations)", c1.Generations())
	}
	_ = out2

	// Fresh Cache over the same dir (a second boot): served from disk,
	// zero generations.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap3, out3, err := c2.GetOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out3.Source != "cache" {
		t.Fatalf("warm boot source = %q", out3.Source)
	}
	if c2.Generations() != 0 {
		t.Fatalf("warm boot performed %d generations, want 0", c2.Generations())
	}
	if snap3.Engine.Pages() != snap.Engine.Pages() {
		t.Fatalf("cached snapshot has %d pages, original %d", snap3.Engine.Pages(), snap.Engine.Pages())
	}
}

// TestCacheSingleflight hammers one key from many goroutines; exactly one
// generation may happen.
func TestCacheSingleflight(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := derby.DefaultConfig(20, 20, derby.ClassCluster)
	var wg sync.WaitGroup
	snaps := make([]*derby.Snapshot, 8)
	for i := range snaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, _, err := c.GetOrGenerate(cfg)
			if err != nil {
				t.Error(err)
			}
			snaps[i] = snap
		}(i)
	}
	wg.Wait()
	if c.Generations() != 1 {
		t.Fatalf("%d generations for one key", c.Generations())
	}
	for i, s := range snaps {
		if s != snaps[0] {
			t.Fatalf("goroutine %d got a different snapshot", i)
		}
	}
}

// TestCacheCorruptEntryRegenerates: a damaged cache file is regenerated
// and overwritten, not served or fatal.
func TestCacheCorruptEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	cfg := derby.DefaultConfig(20, 20, derby.ClassCluster)
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := c1.GetOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(out.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, out2, err := c2.GetOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Source != "generated" || c2.Generations() != 1 {
		t.Fatalf("corrupt entry: source %q, %d generations", out2.Source, c2.Generations())
	}
	if _, err := Verify(out2.Path); err != nil {
		t.Fatalf("regenerated entry still corrupt: %v", err)
	}
}

func TestDefaultDirEnvOverride(t *testing.T) {
	t.Setenv("TREEBENCH_SNAPSHOT_DIR", "/tmp/tb-test-snapdir")
	dir, err := DefaultDir()
	if err != nil {
		t.Fatal(err)
	}
	if dir != "/tmp/tb-test-snapdir" {
		t.Fatalf("DefaultDir = %q", dir)
	}
}
