package persist

import (
	"fmt"
	"sort"
	"sync"

	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/storage"
	"treebench/internal/wal"
)

// ChainStore is the durable write path: one base snapshot file, one WAL,
// and the live MVCC chain between them. Opening replays the WAL tail
// over the base (torn tails are truncated, records the base already
// folded in are skipped), Update appends one deterministic wave as the
// next version, and Compact folds the chain back into a fresh base file
// and resets the log.
//
// Durability protocol per commit, serialized under applyMu:
//
//	fork head → apply wave → publish delta → enqueue WAL record →
//	stamp lineage → append to chain
//
// Wait happens outside the lock, so concurrent writers pile into the
// log's group commit: N commits, one fsync. The wave applied at version
// v is always wave v — a pure function of (spec, v) — so the head state
// after N commits is byte-identical no matter how many writers raced,
// how the log batched, or whether a crash forced replay.
type ChainStore struct {
	snapPath string
	spec     derby.WaveSpec

	chain *engine.Chain
	log   *wal.Log

	// applyMu serializes fork-apply-publish-enqueue-append; it is never
	// held across an fsync.
	applyMu sync.Mutex

	// book is the derby bookkeeping template (scale, rid maps, load
	// report) — identical across versions, rebound per snapshot.
	book *derby.Snapshot

	mu          sync.Mutex
	baseVersion uint64 // version folded into the base snapshot file
	commits     uint64 // commits performed by this process
	compactions int
}

// ChainStats is a point-in-time report of the store.
type ChainStats struct {
	HeadVersion uint64
	BaseVersion uint64 // version of the on-disk base snapshot
	Versions    int    // live (un-GC'd) chain length
	Commits     uint64 // commits by this process (replayed ones excluded)
	Compactions int
	Wal         wal.Stats
	WalTail     int64
}

// OpenChainStore opens the base snapshot at snapPath and replays the WAL
// at walPath over it. The returned Recovery says how many commits were
// replayed and whether a torn tail was truncated. A fresh store is made
// by Save-ing a frozen snapshot to snapPath first; the WAL is created on
// demand.
func OpenChainStore(snapPath, walPath string, spec derby.WaveSpec) (*ChainStore, *wal.Recovery, error) {
	root, handle, err := loadPath(snapPath)
	if err != nil {
		return nil, nil, err
	}
	chain := engine.NewChain(root.Engine)
	cur := root
	// Track the WAL-replay page set for the pool warm-up below: base
	// pages folded-in records touched (they live in the base file and
	// will be read hot) versus base pages replayed records shadow (their
	// content is served by the in-memory delta chain, so warming the
	// stale base copy would be wasted I/O).
	folded := make(map[storage.PageID]struct{})
	shadowed := make(map[storage.PageID]struct{})
	log, rec, err := wal.Open(walPath, func(off int64, payload []byte) error {
		r, err := DecodeCommit(payload)
		if err != nil {
			return err
		}
		if r.Version <= cur.Engine.Version() {
			// Already folded into the base by a compaction that crashed
			// before it could reset the log.
			for _, id := range r.OverlayIDs {
				folded[id] = struct{}{}
			}
			return nil
		}
		if r.Version != cur.Engine.Version()+1 {
			return fmt.Errorf("%w: commit v%d follows v%d in the log",
				ErrFormat, r.Version, cur.Engine.Version())
		}
		next, err := r.Apply(cur, off)
		if err != nil {
			return err
		}
		if err := chain.Append(next.Engine); err != nil {
			return err
		}
		for _, id := range r.OverlayIDs {
			shadowed[id] = struct{}{}
		}
		cur = next
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Warm the buffer pool with the recently written working set: the
	// pages the WAL says the latest waves touched are the pages the next
	// waves (and the queries behind them) will touch first. Asynchronous
	// and advisory — boot latency is unaffected.
	if handle != nil {
		warm := make([]int, 0, len(folded))
		for id := range folded {
			if _, sh := shadowed[id]; !sh && int(id) < handle.NumPages() {
				warm = append(warm, int(id))
			}
		}
		sort.Ints(warm)
		handle.Warm(warm)
	}
	return &ChainStore{
		snapPath:    snapPath,
		spec:        spec,
		chain:       chain,
		log:         log,
		book:        root,
		baseVersion: root.Engine.Version(),
	}, rec, nil
}

// Spec returns the store's wave spec.
func (s *ChainStore) Spec() derby.WaveSpec { return s.spec }

// Chain exposes the live version chain (for stats and tooling).
func (s *ChainStore) Chain() *engine.Chain { return s.chain }

// Head returns the current head bound to the derby bookkeeping. The
// returned snapshot is immutable and safe to fork from any goroutine;
// it is not pinned — a long-lived reader should Pin instead.
func (s *ChainStore) Head() *derby.Snapshot {
	return s.book.WithEngine(s.chain.Head())
}

// Pin returns the current head and keeps its version alive until Unpin —
// the MVCC reader contract: nothing a writer commits can reach a pinned
// version's pages.
func (s *ChainStore) Pin() *derby.Snapshot {
	return s.book.WithEngine(s.chain.Pin())
}

// Unpin releases a snapshot returned by Pin.
func (s *ChainStore) Unpin(snap *derby.Snapshot) { s.chain.Unpin(snap.Engine) }

// Update commits the next update wave: fork the head, apply wave
// (head.version+1), publish the delta, log it, and install the result as
// the new head. It returns once the commit record is durable (fsynced,
// possibly sharing the sync with concurrent commits). The returned
// snapshot is the newly committed version.
func (s *ChainStore) Update() (*derby.WaveReport, *derby.Snapshot, error) {
	s.applyMu.Lock()
	parent := s.chain.Head()
	version := parent.Version() + 1
	d := s.book.WithEngine(parent).ForkMutable()
	rep, err := derby.ApplyWave(d, version, s.spec)
	if err != nil {
		s.applyMu.Unlock()
		return nil, nil, err
	}
	sn, delta, err := d.DB.Publish()
	if err != nil {
		s.applyMu.Unlock()
		return nil, nil, err
	}
	payload := EncodeCommit(version, version, delta, s.book.WithEngine(sn).State())
	p, err := s.log.Enqueue(payload)
	if err != nil {
		s.applyMu.Unlock()
		return nil, nil, err
	}
	sn.SetLineage(version, delta.Pages(), p.Off)
	if err := s.chain.Append(sn); err != nil {
		s.applyMu.Unlock()
		return nil, nil, err
	}
	s.applyMu.Unlock()

	s.mu.Lock()
	s.commits++
	s.mu.Unlock()
	if err := p.Wait(); err != nil {
		return rep, nil, err
	}
	return rep, s.book.WithEngine(sn), nil
}

// Compact folds the current head into a fresh base snapshot file (saved
// atomically over snapPath), swaps the head's delta chain for the flat
// reloaded image, and resets the WAL. Readers pinned on old versions
// keep them; a crash between the save and the reset is safe — replay
// skips records the new base already contains. Returns the compacted
// version.
func (s *ChainStore) Compact() (uint64, error) {
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	head := s.chain.Head()
	s.mu.Lock()
	base := s.baseVersion
	s.mu.Unlock()
	if head.Version() == base {
		return base, nil
	}
	if err := Save(s.snapPath, s.book.WithEngine(head)); err != nil {
		return 0, err
	}
	loaded, err := Load(s.snapPath)
	if err != nil {
		return 0, err
	}
	if err := s.chain.ReplaceHead(loaded.Engine); err != nil {
		return 0, err
	}
	// Commits already durable are folded into the base; drain any batch
	// in flight, then checkpoint the log. applyMu keeps new enqueues out.
	s.log.Sync()
	if err := s.log.Reset(); err != nil {
		return 0, err
	}
	s.chain.GC()
	s.mu.Lock()
	s.baseVersion = head.Version()
	s.compactions++
	s.mu.Unlock()
	return head.Version(), nil
}

// GC drops unpinned, non-head versions and returns how many were
// dropped.
func (s *ChainStore) GC() int { return s.chain.GC() }

// Stats reports the store's counters.
func (s *ChainStore) Stats() ChainStats {
	s.mu.Lock()
	base, commits, compactions := s.baseVersion, s.commits, s.compactions
	s.mu.Unlock()
	return ChainStats{
		HeadVersion: s.chain.Head().Version(),
		BaseVersion: base,
		Versions:    s.chain.Len(),
		Commits:     commits,
		Compactions: compactions,
		Wal:         s.log.Stats(),
		WalTail:     s.log.Tail(),
	}
}

// Wal exposes the store's log (for stats and the smoke tooling).
func (s *ChainStore) Wal() *wal.Log { return s.log }

// Close flushes and closes the WAL. The in-memory chain stays readable.
func (s *ChainStore) Close() error { return s.log.Close() }

// PageEqual reports whether two snapshots' page images are byte-
// identical — the determinism check the smoke script and tests run
// after crash recovery.
func PageEqual(a, b *derby.Snapshot) (bool, string, error) {
	ba, bb := a.Engine.Base(), b.Engine.Base()
	if ba.NumPages() != bb.NumPages() {
		return false, fmt.Sprintf("page counts differ: %d vs %d", ba.NumPages(), bb.NumPages()), nil
	}
	for i := 0; i < ba.NumPages(); i++ {
		pa, err := ba.Page(storage.PageID(i))
		if err != nil {
			return false, "", err
		}
		pb, err := bb.Page(storage.PageID(i))
		if err != nil {
			return false, "", err
		}
		if string(pa) != string(pb) {
			return false, fmt.Sprintf("page %d differs", i), nil
		}
	}
	return true, "", nil
}
