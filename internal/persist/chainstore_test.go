package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"treebench/internal/derby"
	"treebench/internal/wal"
)

// newChainFixture generates a small dataset, saves it as a chain base,
// and returns the store paths plus the in-memory root snapshot.
func newChainFixture(t *testing.T) (snapPath, walPath string, root *derby.Snapshot) {
	t.Helper()
	dir := t.TempDir()
	ds, err := derby.Generate(derby.DefaultConfig(40, 15, derby.ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	root, err = ds.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	snapPath = filepath.Join(dir, "base.tbsp")
	walPath = filepath.Join(dir, "base.wal")
	if err := Save(snapPath, root); err != nil {
		t.Fatal(err)
	}
	return snapPath, walPath, root
}

// referenceHead replays n waves in memory (no WAL, no files) and returns
// the head — the oracle every durable path must match byte for byte.
func referenceHead(t *testing.T, root *derby.Snapshot, spec derby.WaveSpec, n uint64) *derby.Snapshot {
	t.Helper()
	cur := root
	for w := uint64(1); w <= n; w++ {
		d := cur.ForkMutable()
		if _, err := derby.ApplyWave(d, w, spec); err != nil {
			t.Fatalf("reference wave %d: %v", w, err)
		}
		es, _, err := d.DB.Publish()
		if err != nil {
			t.Fatalf("reference publish %d: %v", w, err)
		}
		cur = cur.WithEngine(es)
	}
	return cur
}

func mustPageEqual(t *testing.T, a, b *derby.Snapshot, what string) {
	t.Helper()
	eq, why, err := PageEqual(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("%s: %s", what, why)
	}
}

// TestCommitRecordRoundTrip: Encode∘Decode∘Apply reproduces the exact
// version the commit published.
func TestCommitRecordRoundTrip(t *testing.T) {
	_, _, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()

	// Wave 4 is a growth wave under the default spec: its relocations
	// append pages, so the record carries both overlay and appended pages.
	d := root.ForkMutable()
	if _, err := derby.ApplyWave(d, 4, spec); err != nil {
		t.Fatal(err)
	}
	es, delta, err := d.DB.Publish()
	if err != nil {
		t.Fatal(err)
	}
	committed := root.WithEngine(es)

	payload := EncodeCommit(1, 4, delta, committed.State())
	rec, err := DecodeCommit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 1 || rec.Wave != 4 {
		t.Fatalf("decoded version/wave = %d/%d", rec.Version, rec.Wave)
	}
	if rec.ParentPages != root.Engine.Base().NumPages() {
		t.Fatalf("parent pages = %d, want %d", rec.ParentPages, root.Engine.Base().NumPages())
	}
	if len(rec.OverlayIDs) == 0 || len(rec.AppendedPages) == 0 {
		t.Fatalf("empty delta in record: %d overlay, %d appended", len(rec.OverlayIDs), len(rec.AppendedPages))
	}
	applied, err := rec.Apply(root, 99)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Engine.Version() != 1 || applied.Engine.WalOff() != 99 {
		t.Fatalf("applied lineage = v%d off %d", applied.Engine.Version(), applied.Engine.WalOff())
	}
	mustPageEqual(t, applied, committed, "applied record vs published commit")

	// Corrupt payloads parse as errors, never panics.
	if _, err := DecodeCommit(payload[:len(payload)/2]); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated record: got %v, want ErrFormat", err)
	}
	if _, err := DecodeCommit(nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("empty record: got %v, want ErrFormat", err)
	}
	// Apply against the wrong parent is rejected.
	if _, err := rec.Apply(committed, 0); !errors.Is(err, ErrFormat) {
		t.Fatalf("apply on wrong parent: got %v, want ErrFormat", err)
	}
}

// TestChainStoreRecovery: commit through the store, reopen from disk,
// and the recovered head is byte-identical to both the pre-crash head
// and an independent in-memory replay.
func TestChainStoreRecovery(t *testing.T) {
	snapPath, walPath, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()
	const waves = 5

	s, rec, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 {
		t.Fatalf("fresh store replayed %d records", rec.Records)
	}
	for i := 0; i < waves; i++ {
		if _, _, err := s.Update(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	before := s.Head()
	st := s.Stats()
	if st.HeadVersion != waves || st.Commits != waves {
		t.Fatalf("stats after %d updates: %+v", waves, st)
	}
	if st.Wal.Records != waves || st.Wal.Syncs == 0 {
		t.Fatalf("wal stats: %+v", st.Wal)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: replay rebuilds the same head.
	s2, rec2, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Records != waves || rec2.Torn != nil {
		t.Fatalf("recovery = %+v", rec2)
	}
	after := s2.Head()
	if after.Engine.Version() != waves {
		t.Fatalf("recovered head is v%d", after.Engine.Version())
	}
	mustPageEqual(t, after, before, "recovered head vs pre-crash head")
	mustPageEqual(t, after, referenceHead(t, root, spec, waves), "recovered head vs in-memory replay")
}

// TestChainStoreTornTail: a crash mid-append loses at most the torn
// record; recovery truncates it, reports it, and the store continues
// deterministically — the rewritten wave produces the same bytes the
// torn one would have.
func TestChainStoreTornTail(t *testing.T) {
	snapPath, walPath, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()

	s, _, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
	}
	tail := s.Wal().Tail()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: keep its header and half its payload.
	lastOff := prevRecordOff(t, walPath)
	if err := os.Truncate(walPath, lastOff+(tail-lastOff)/2); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Torn == nil {
		t.Fatal("torn tail not reported")
	}
	if !errors.Is(rec2.Torn, wal.ErrTorn) {
		t.Fatalf("torn error is %v", rec2.Torn)
	}
	if rec2.Records != 2 {
		t.Fatalf("replayed %d records after tear, want 2", rec2.Records)
	}
	if got := s2.Head().Engine.Version(); got != 2 {
		t.Fatalf("head after tear is v%d, want 2", got)
	}
	// Re-run the lost wave: same version, same bytes as the full run.
	if _, _, err := s2.Update(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	mustPageEqual(t, s2.Head(), referenceHead(t, root, spec, 3), "head after torn-tail replay + rewrite")
}

// prevRecordOff finds the offset of the last record in the log by
// re-scanning it (test helper; the log is small).
func prevRecordOff(t *testing.T, walPath string) int64 {
	t.Helper()
	var last int64 = wal.HeaderLen
	l, _, err := wal.Open(walPath, func(off int64, payload []byte) error {
		last = off
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return last
}

// TestChainStoreCompaction: compacting mid-chain folds the head into a
// fresh base and resets the log; the store keeps committing, survives a
// reboot, and ends byte-identical to a never-compacted replay.
func TestChainStoreCompaction(t *testing.T) {
	snapPath, walPath, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()

	s, _, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("compacted at v%d, want 3", v)
	}
	if tail := s.Wal().Tail(); tail != wal.HeaderLen {
		t.Fatalf("wal not reset: tail %d", tail)
	}
	m, err := Inspect(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.Version != 3 {
		t.Fatalf("base lineage = %+v, want version 3", m.Chain)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.HeadVersion != 5 || st.BaseVersion != 3 || st.Compactions != 1 {
		t.Fatalf("stats after compaction: %+v", st)
	}
	mustPageEqual(t, s.Head(), referenceHead(t, root, spec, 5), "compacted chain vs straight replay")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot over the compacted base: only the two post-compaction
	// commits replay.
	s2, rec2, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Records != 2 {
		t.Fatalf("replayed %d records over compacted base, want 2", rec2.Records)
	}
	if got := s2.Head().Engine.Version(); got != 5 {
		t.Fatalf("rebooted head is v%d, want 5", got)
	}
	mustPageEqual(t, s2.Head(), referenceHead(t, root, spec, 5), "reboot after compaction vs straight replay")
}

// TestChainStoreCompactionCrash: a crash between the base save and the
// log reset leaves both the new base AND the full log; replay must skip
// the already-folded records instead of double-applying them.
func TestChainStoreCompactionCrash(t *testing.T) {
	snapPath, walPath, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()

	s, _, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := s.Update(); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash: save the head as the new base, but "die" before
	// Reset — the log still holds all four records.
	if err := Save(snapPath, s.Head()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec2.Records != 4 {
		t.Fatalf("scanned %d records, want 4", rec2.Records)
	}
	if got := s2.Head().Engine.Version(); got != 4 {
		t.Fatalf("head is v%d, want 4 (records must be skipped, not re-applied)", got)
	}
	if _, _, err := s2.Update(); err != nil {
		t.Fatal(err)
	}
	mustPageEqual(t, s2.Head(), referenceHead(t, root, spec, 5), "post-crash-compaction head vs straight replay")
}

// TestChainStoreConcurrentWriters: many goroutines commit concurrently;
// the serialized wave protocol makes the result identical to a single
// writer, and the group commit shares fsyncs between them.
func TestChainStoreConcurrentWriters(t *testing.T) {
	snapPath, walPath, root := newChainFixture(t)
	spec := derby.DefaultWaveSpec()

	s, _, err := OpenChainStore(snapPath, walPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, each = 4, 3
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			for i := 0; i < each; i++ {
				if _, _, err := s.Update(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	const total = writers * each
	if got := s.Head().Engine.Version(); got != total {
		t.Fatalf("head is v%d after %d commits", got, total)
	}
	st := s.Stats()
	if st.Wal.Records != total {
		t.Fatalf("wal holds %d records, want %d", st.Wal.Records, total)
	}
	if st.Wal.Syncs > st.Wal.Records {
		t.Fatalf("more syncs (%d) than records (%d)", st.Wal.Syncs, st.Wal.Records)
	}
	mustPageEqual(t, s.Head(), referenceHead(t, root, spec, total), "racing writers vs single-writer replay")
}
