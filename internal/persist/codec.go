package persist

import (
	"encoding/binary"
	"fmt"

	"treebench/internal/storage"
)

// enc is an append-only payload encoder, mirroring the wire protocol's:
// big-endian integers, strings as u32 length + bytes.
type enc struct {
	b []byte
}

func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) rid(r storage.Rid) {
	e.u32(uint32(r.Page))
	e.u16(r.Slot)
}

// dec decodes a section payload. The first failed read latches err and
// turns every later read into a zero value, so decode functions read a
// whole section and check finish once. All errors wrap ErrFormat: a
// truncated or over-long payload inside a CRC-valid section means the
// writer and reader disagree about the format, not that the disk lied.
type dec struct {
	b       []byte
	off     int
	section string
	err     error
}

func newDec(b []byte, section string) *dec { return &dec{b: b, section: section} }

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s in %s section at offset %d",
			ErrFormat, what, d.section, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) || d.off+n < d.off {
		d.fail(what)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8() byte {
	s := d.take(1, "u8")
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u16() uint16 {
	s := d.take(2, "u16")
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint16(s)
}

func (d *dec) u32() uint32 {
	s := d.take(4, "u32")
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint32(s)
}

func (d *dec) u64() uint64 {
	s := d.take(8, "u64")
	if s == nil {
		return 0
	}
	return binary.BigEndian.Uint64(s)
}

func (d *dec) i64() int64 { return int64(d.u64()) }

// boolv accepts only the canonical encodings 0 and 1, so decode∘encode is
// the identity on every accepted payload.
func (d *dec) boolv() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool")
		return false
	}
}

func (d *dec) str() string {
	n := d.u32()
	s := d.take(int(n), "string")
	return string(s)
}

func (d *dec) rid() storage.Rid {
	page := d.u32()
	slot := d.u16()
	return storage.Rid{Page: storage.PageID(page), Slot: slot}
}

// count reads a u32 element count and validates it against the bytes
// left, given a per-element lower bound, so a corrupt count cannot drive
// a huge allocation.
func (d *dec) count(minElem int, what string) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || minElem < 1 || n > (len(d.b)-d.off)/minElem {
		d.fail(what + " count")
		return 0
	}
	return n
}

// finish returns the latched error, also rejecting trailing garbage.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes in %s section",
			ErrFormat, len(d.b)-d.off, d.section)
	}
	return nil
}
