//go:build linux

package persist

import (
	"io"
	"os"
	"sync"
	"syscall"
	"unsafe"

	"treebench/internal/storage"
)

// O_DIRECT transfers must be aligned — file offset, length, and the
// user buffer all on a logical-block boundary. 4096 satisfies every
// filesystem in practice (512 is the historical minimum; modern NVMe
// and virtio devices want 4096 anyway).
const directAlign = 4096

// openDirect opens path read-only with O_DIRECT and verifies a probe
// read succeeds — some filesystems (tmpfs) accept the flag at open and
// only fail at read time.
func openDirect(path string) (*os.File, error) {
	fd, err := syscall.Open(path, syscall.O_RDONLY|syscall.O_DIRECT|syscall.O_CLOEXEC, 0)
	if err != nil {
		return nil, err
	}
	f := os.NewFile(uintptr(fd), path)
	sb := getDirectScratch(directAlign)
	_, err = f.ReadAt(sb.aligned[:directAlign], 0)
	directScratch.Put(sb)
	if err != nil && err != io.EOF {
		f.Close()
		return nil, err
	}
	return f, nil
}

// directScratchBuf over-allocates so a directAlign-aligned window can be
// sliced out of raw; aligned is that window.
type directScratchBuf struct {
	raw     []byte
	aligned []byte
}

var directScratch sync.Pool

func getDirectScratch(n int) *directScratchBuf {
	if v := directScratch.Get(); v != nil {
		if sb := v.(*directScratchBuf); len(sb.aligned) >= n {
			return sb
		}
	}
	raw := make([]byte, n+directAlign)
	off := int(directAlign - uintptr(unsafe.Pointer(&raw[0]))%directAlign)
	if off == directAlign {
		off = 0
	}
	return &directScratchBuf{raw: raw, aligned: raw[off : off+n]}
}

// directRead serves an arbitrary [off, off+len(dst)) span from the
// O_DIRECT fd: widen the span to directAlign boundaries, read into an
// aligned scratch, copy the requested range out. The extra copy is
// ~0.2µs/page — noise against the ~50µs device latency that direct I/O
// exists to expose. The aligned span may extend past EOF; a short read
// that still covers the requested range is success.
func (s *fileSource) directRead(dst []byte, off int64) error {
	lo := off &^ (directAlign - 1)
	hi := (off + int64(len(dst)) + directAlign - 1) &^ (directAlign - 1)
	need := int(hi - lo)
	sb := getDirectScratch(need)
	defer directScratch.Put(sb)
	buf := sb.aligned[:need]
	n, err := s.f.ReadAt(buf, lo)
	if err != nil && !(err == io.EOF && int64(n) >= off-lo+int64(len(dst))) {
		return err
	}
	copy(dst, buf[off-lo:])
	return nil
}

// directReadVec is the vectored-read analogue: one aligned read of the
// whole contiguous span, then one copy per destination frame. preadv
// itself is off the table under O_DIRECT — the pool's frames are
// ordinary heap slices with no alignment guarantee.
func (s *fileSource) directReadVec(lo int, bufs [][]byte) error {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	off := s.firstOff + int64(lo)*storage.PageSize
	alo := off &^ (directAlign - 1)
	ahi := (off + int64(total) + directAlign - 1) &^ (directAlign - 1)
	need := int(ahi - alo)
	sb := getDirectScratch(need)
	defer directScratch.Put(sb)
	buf := sb.aligned[:need]
	n, err := s.f.ReadAt(buf, alo)
	if err != nil && !(err == io.EOF && int64(n) >= off-alo+int64(total)) {
		return err
	}
	src := buf[off-alo:]
	for _, b := range bufs {
		copy(b, src[:len(b)])
		src = src[len(b):]
	}
	return nil
}
