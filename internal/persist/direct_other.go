//go:build !linux

package persist

import (
	"errors"
	"os"
)

// Direct I/O is a Linux-only measurement aid; elsewhere Load quietly
// keeps the buffered handle and these are never reached with
// fileSource.direct set.
var errDirectUnsupported = errors.New("persist: direct I/O unsupported on this platform")

func openDirect(path string) (*os.File, error) {
	return nil, errDirectUnsupported
}

func (s *fileSource) directRead(dst []byte, off int64) error {
	return errDirectUnsupported
}
