// Package persist serializes frozen derby snapshots to a versioned
// on-disk format and loads them back bit-identically. A snapshot file is
// one self-describing blob:
//
//	header        magic u32 ("TBSP") | version u32 | sectionCount u32 | reserved u32
//	section table sectionCount × (id u32 | offset u64 | length u64 | crc u32)
//	payloads      section bodies at their table offsets, in table order
//
// Every integer is big-endian (the wire protocol's convention). Each
// section carries its own CRC-32C; Load and Verify check all of them
// before trusting a byte, and a mismatch fails with a typed error naming
// the section — corruption is a diagnosis, never a panic. The page image
// is the bulk of a file, so Load verifies it streaming and then serves
// pages lazily through a page-granular reader beneath the copy-on-write
// overlay: a warm boot pays for the catalog, not the dataset.
//
// Saves are deterministic — no timestamps, canonical catalog order — so
// saving the same snapshot twice produces byte-identical files, which is
// what makes the content-addressed Cache sound.
package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic identifies a treebench snapshot file ("TBSP").
const Magic uint32 = 0x54425350

// FormatVersion is the current on-disk format version. Bump it on ANY
// change to the header, section table, or a section's encoding; old
// readers reject newer files with ErrVersion rather than misparse them,
// and the cache keys on it so stale files are regenerated, not misread.
// v2 added the lineage section (MVCC chain provenance); v3 added the
// backends section (pluggable index backend descriptors).
const FormatVersion uint32 = 3

// Section identifiers. The table may list them in any order; each id may
// appear at most once, and all of them are required.
const (
	// SectionMeta: simulated machine, cost model, transaction mode, and
	// the engine's index-id cursor.
	SectionMeta uint32 = 1
	// SectionPages: the frozen page image — u32 pageCount, u32
	// capacityPages, then pageCount raw 4 KB pages.
	SectionPages uint32 = 2
	// SectionCatalog: the heap-file catalog (names, page lists, append
	// cursors) in creation order.
	SectionCatalog uint32 = 3
	// SectionRegistry: the class graph with IDs, layouts, inheritance
	// and evolution epochs.
	SectionRegistry uint32 = 4
	// SectionExtents: extents with their per-index attribute metadata,
	// plus named roots and declared relationships.
	SectionExtents uint32 = 5
	// SectionTrees: B+-tree descriptors, one per index, in extent order.
	SectionTrees uint32 = 6
	// SectionHistograms: primed equi-depth histograms, aligned with
	// SectionTrees (empty markers when the snapshot was saved unprimed).
	SectionHistograms uint32 = 7
	// SectionDerby: derby generation bookkeeping — scale, clustering,
	// rid maps, and the load report.
	SectionDerby uint32 = 8
	// SectionLineage: the snapshot's position in its MVCC chain — version,
	// parent version, delta page count and WAL offset of the commit that
	// produced it (all zero for a freshly generated root).
	SectionLineage uint32 = 9
	// SectionBackends: the pluggable-backend descriptor of every index,
	// aligned with SectionTrees — kind tag plus the kind-specific state
	// (metadata page for the on-disk B+-tree; memtable, SSTable fences
	// and bloom filters for the LSM).
	SectionBackends uint32 = 10
)

// sectionName renders a section id for error messages and manifests.
func sectionName(id uint32) string {
	switch id {
	case SectionMeta:
		return "meta"
	case SectionPages:
		return "pages"
	case SectionCatalog:
		return "catalog"
	case SectionRegistry:
		return "registry"
	case SectionExtents:
		return "extents"
	case SectionTrees:
		return "trees"
	case SectionHistograms:
		return "histograms"
	case SectionDerby:
		return "derby"
	case SectionLineage:
		return "lineage"
	case SectionBackends:
		return "backends"
	default:
		return fmt.Sprintf("section-%d", id)
	}
}

// requiredSections lists every section a well-formed file must contain.
var requiredSections = []uint32{
	SectionMeta, SectionPages, SectionCatalog, SectionRegistry,
	SectionExtents, SectionTrees, SectionHistograms, SectionDerby,
	SectionLineage, SectionBackends,
}

// Header and table-entry sizes in bytes.
const (
	headerLen       = 16
	tableEntryLen   = 24
	maxSections     = 64      // sanity bound on sectionCount
	maxCatalogBytes = 1 << 30 // sanity bound on a non-page section's length
)

// crcTable is the Castagnoli polynomial table (CRC-32C, the checksum used
// by iSCSI and ext4 — hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFormat reports a file that is not a treebench snapshot (bad magic,
// malformed header or section table, or undecodable section payload).
var ErrFormat = errors.New("persist: malformed snapshot file")

// ErrVersion reports a snapshot written by an incompatible format version.
var ErrVersion = errors.New("persist: unsupported snapshot format version")

// ErrChecksum reports a section whose stored CRC-32C does not match its
// bytes. Match it with errors.Is; the concrete *ChecksumError names the
// section.
var ErrChecksum = errors.New("persist: checksum mismatch")

// ChecksumError is the concrete error for a corrupt section.
type ChecksumError struct {
	Section string // section name, e.g. "registry"
	Want    uint32 // CRC recorded in the section table
	Got     uint32 // CRC of the bytes actually read
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("persist: %s section checksum mismatch (file %08x, computed %08x)",
		e.Section, e.Want, e.Got)
}

func (e *ChecksumError) Unwrap() error { return ErrChecksum }

// sectionEntry is one row of the section table.
type sectionEntry struct {
	id     uint32
	offset uint64
	length uint64
	crc    uint32
}
