package persist

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadSnapshot drives the header and section-table decoder (and the
// section codecs behind it) with arbitrary bytes. The contract under
// fuzzing is total: Load either returns a snapshot or a typed error —
// it must never panic, whatever the file holds. Seeded with a valid save
// so the fuzzer starts past the magic check.
func FuzzLoadSnapshot(f *testing.F) {
	path, _ := savedSnapshot(f)
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add([]byte{})
	// A header claiming eight sections with a truncated table.
	f.Add(valid[:headerLen+tableEntryLen/2])
	// One flipped byte mid-file.
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x01
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.tbsp")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		snap, err := Load(p)
		if err != nil {
			return
		}
		// An accepted file must behave: forking a session exercises the
		// restored catalog.
		if snap.Engine.Pages() < 0 {
			t.Fatal("negative page count")
		}
	})
}
