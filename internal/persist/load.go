package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"treebench/internal/bufpool"
	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/storage"
)

// fileSource streams pages out of a snapshot file on demand. It is both
// the storage.PageSource a legacy lazy Base faults through and the
// bufpool.RangeSource the shared buffer pool prefetches from: one page
// per positioned read on the demand path, a whole readahead window per
// positioned read on the prefetch path. The file handle lives as long as
// the snapshot (the OS reclaims it at exit; snapshots have no close
// protocol, matching every other shareable object in the system).
type fileSource struct {
	f        *os.File
	firstOff int64 // offset of the first raw page
	numPages int
	direct   bool // f was opened O_DIRECT; reads stage through aligned scratch
}

// DirectIOEnvVar, when set to 1/true, makes Load open the snapshot's
// page source with O_DIRECT (Linux; silently ignored where unsupported,
// e.g. other platforms or tmpfs). Reads then bypass the OS page cache —
// every buffer-pool miss is a true device read. This is a measurement
// mode: scripts/bench_cache.sh uses it so "cold" means cold storage,
// not cold pool over a warm page cache.
const DirectIOEnvVar = "TREEBENCH_DIRECT_IO"

func directIORequested() bool {
	v := os.Getenv(DirectIOEnvVar)
	return v == "1" || v == "true" || v == "yes"
}

// DirectIOSupported reports whether path accepts O_DIRECT reads on this
// platform and filesystem. Benchmark drivers use it to report whether a
// requested direct-I/O run actually measured the device — gates that
// assume cold storage are meaningless over a warm OS page cache.
func DirectIOSupported(path string) bool {
	f, err := openDirect(path)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

func (s *fileSource) ReadPage(i int, dst []byte) error {
	if i < 0 || i >= s.numPages {
		return fmt.Errorf("persist: page %d out of range (%d pages)", i, s.numPages)
	}
	off := s.firstOff + int64(i)*storage.PageSize
	var err error
	if s.direct {
		err = s.directRead(dst, off)
	} else {
		_, err = s.f.ReadAt(dst, off)
	}
	if err != nil {
		return fmt.Errorf("persist: reading page %d: %w", i, err)
	}
	return nil
}

// ReadPageRange implements bufpool.RangeSource: one positioned read
// covering len(dst)/PageSize consecutive pages starting at lo.
func (s *fileSource) ReadPageRange(lo int, dst []byte) error {
	n := len(dst) / storage.PageSize
	if lo < 0 || n < 1 || lo+n > s.numPages {
		return fmt.Errorf("persist: page range [%d,%d) out of range (%d pages)", lo, lo+n, s.numPages)
	}
	off := s.firstOff + int64(lo)*storage.PageSize
	var err error
	if s.direct {
		err = s.directRead(dst[:n*storage.PageSize], off)
	} else {
		_, err = s.f.ReadAt(dst[:n*storage.PageSize], off)
	}
	if err != nil {
		return fmt.Errorf("persist: reading pages [%d,%d): %w", lo, lo+n, err)
	}
	return nil
}

// Load opens a snapshot file, verifies every section checksum, and
// rebuilds the derby snapshot over a lazily-backed page image. The
// catalog is decoded eagerly (it is small); data pages stay on disk until
// a session first touches them, which is what makes a warm boot O(catalog)
// instead of O(dataset). The pages section's CRC is verified streaming —
// nothing is retained — so even the integrity pass costs no memory.
//
// A failure is always a typed error: ErrFormat, ErrVersion, or a
// *ChecksumError naming the corrupt section. Load never panics on a
// malformed file.
func Load(path string) (*derby.Snapshot, error) {
	snap, _, err := loadPath(path)
	return snap, err
}

// loadPath is Load plus the snapshot's buffer-pool handle (nil when the
// pool is disabled) — ChainStore boot uses the handle to warm the pool
// with the WAL-replay page set.
func loadPath(path string) (*derby.Snapshot, *bufpool.Handle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	snap, h, err := load(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return snap, h, nil
}

func load(f *os.File) (*derby.Snapshot, *bufpool.Handle, error) {
	table, _, err := readTable(f)
	if err != nil {
		return nil, nil, err
	}
	byID := make(map[uint32]sectionEntry, len(table))
	for _, e := range table {
		byID[e.id] = e
	}

	// Integrity first: verify every checksum before decoding a byte, the
	// pages section streaming. Catalog sections are retained for decode.
	bodies := make(map[uint32][]byte, len(table))
	var pagesEntry sectionEntry
	for _, e := range table {
		if e.id == SectionPages {
			pagesEntry = e
			if err := crcStream(f, e); err != nil {
				return nil, nil, err
			}
			continue
		}
		body, err := readSection(f, e)
		if err != nil {
			return nil, nil, err
		}
		bodies[e.id] = body
	}

	// Pages section header: page count and capacity.
	if pagesEntry.length < 8 {
		return nil, nil, fmt.Errorf("%w: pages section too short (%d bytes)", ErrFormat, pagesEntry.length)
	}
	var ph [8]byte
	if _, err := f.ReadAt(ph[:], int64(pagesEntry.offset)); err != nil {
		return nil, nil, err
	}
	numPages := int(binary.BigEndian.Uint32(ph[0:4]))
	capPages := int(binary.BigEndian.Uint32(ph[4:8]))
	if uint64(numPages)*storage.PageSize+8 != pagesEntry.length {
		return nil, nil, fmt.Errorf("%w: pages section is %d bytes for %d pages",
			ErrFormat, pagesEntry.length, numPages)
	}
	if capPages != 0 && capPages < numPages {
		return nil, nil, fmt.Errorf("%w: capacity %d pages below image size %d",
			ErrFormat, capPages, numPages)
	}

	// Decode the catalog sections into one state tree.
	est := &engine.SnapshotState{}
	if err := decodeMeta(bodies[SectionMeta], est); err != nil {
		return nil, nil, err
	}
	if est.Files, err = decodeCatalog(bodies[SectionCatalog]); err != nil {
		return nil, nil, err
	}
	if est.Classes, err = decodeRegistry(bodies[SectionRegistry]); err != nil {
		return nil, nil, err
	}
	if err := decodeExtents(bodies[SectionExtents], est); err != nil {
		return nil, nil, err
	}
	if err := decodeTrees(bodies[SectionTrees], est); err != nil {
		return nil, nil, err
	}
	if err := decodeHistograms(bodies[SectionHistograms], est); err != nil {
		return nil, nil, err
	}
	if err := decodeBackends(bodies[SectionBackends], est); err != nil {
		return nil, nil, err
	}
	dst, err := decodeDerby(bodies[SectionDerby])
	if err != nil {
		return nil, nil, err
	}
	dst.Engine = est
	ln, err := decodeLineage(bodies[SectionLineage])
	if err != nil {
		return nil, nil, err
	}

	// Page image: route reads through the process-wide buffer pool when
	// it is enabled (bounded residency, shared frames, readahead); fall
	// back to the legacy unbounded per-base cells otherwise.
	src := &fileSource{
		f:        f,
		firstOff: int64(pagesEntry.offset) + 8,
		numPages: numPages,
	}
	if directIORequested() {
		// Reopen just the page source O_DIRECT (catalog and checksums were
		// already read buffered above). Failure — unsupported platform or
		// filesystem — quietly keeps the buffered handle.
		if df, derr := openDirect(f.Name()); derr == nil {
			src.f = df
			src.direct = true
		}
	}
	capBytes := int64(capPages) * storage.PageSize
	var base *storage.Base
	var h *bufpool.Handle
	if p := bufpool.Active(); p != nil && p.PageSize() == storage.PageSize {
		h = p.Register(src, numPages)
		base = storage.NewCachedBase(numPages, capBytes, h)
	} else {
		base = storage.NewLazyBase(numPages, capBytes, src)
	}
	snap, err := derby.RestoreSnapshot(base, dst)
	if err != nil {
		return nil, nil, err
	}
	snap.Engine.SetLineage(ln.Version, ln.DeltaPages, ln.WalOff)
	return snap, h, nil
}

// SectionInfo describes one section for manifests and the snap tool.
type SectionInfo struct {
	Name   string
	Length uint64
	CRC    uint32
}

// Manifest summarizes a snapshot file without loading it.
type Manifest struct {
	Path     string
	Version  uint32
	Pages    int
	Sections []SectionInfo

	// Derby provenance (decoded from the derby section).
	Providers  int
	Patients   int
	Clustering string

	// Backend is the index-backend kind ("btree", "disk", "lsm"), from the
	// backends section's leading tag.
	Backend string

	// Chain provenance (decoded from the lineage section): which MVCC
	// version this file is, what it was committed over, and where in the
	// WAL its commit record lives. All zero for a freshly generated root.
	Chain Lineage
}

// Inspect reads a snapshot file's header, table, and the small provenance
// sections (derby, lineage, backends). Only those sections' checksums are
// verified — Inspect is the cheap query behind `treebench-snap ls`;
// Verify is the thorough one.
func Inspect(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return inspect(f, path, false)
}

// Verify checks every section checksum (the page image streaming) and
// returns the manifest. It is the integrity half of Load without the
// rebuild — what `treebench-snap verify` and the smoke script run.
func Verify(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return inspect(f, path, true)
}

func inspect(f *os.File, path string, verifyAll bool) (*Manifest, error) {
	table, version, err := readTable(f)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Path: path, Version: version}
	for _, e := range table {
		m.Sections = append(m.Sections, SectionInfo{
			Name:   sectionName(e.id),
			Length: e.length,
			CRC:    e.crc,
		})
		switch e.id {
		case SectionPages:
			if verifyAll {
				if err := crcStream(f, e); err != nil {
					return nil, err
				}
			}
			if e.length >= 8 {
				var ph [8]byte
				if _, err := f.ReadAt(ph[:], int64(e.offset)); err != nil {
					return nil, err
				}
				m.Pages = int(binary.BigEndian.Uint32(ph[0:4]))
			}
		case SectionDerby:
			body, err := readSection(f, e)
			if err != nil {
				return nil, err
			}
			dst, err := decodeDerby(body)
			if err != nil {
				return nil, err
			}
			m.Providers = dst.NumProviders
			m.Patients = dst.NumPatients
			m.Clustering = dst.Clustering.String()
		case SectionLineage:
			body, err := readSection(f, e)
			if err != nil {
				return nil, err
			}
			if m.Chain, err = decodeLineage(body); err != nil {
				return nil, err
			}
		case SectionBackends:
			body, err := readSection(f, e)
			if err != nil {
				return nil, err
			}
			if m.Backend, err = backendKindOf(body); err != nil {
				return nil, err
			}
		default:
			if verifyAll {
				if _, err := readSection(f, e); err != nil {
					return nil, err
				}
			}
		}
	}
	return m, nil
}

// readTable parses and validates the header and section table: magic,
// version, section count, per-entry bounds against the file size, no
// duplicate ids, and every required section present.
func readTable(f *os.File) ([]sectionEntry, uint32, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if got := binary.BigEndian.Uint32(hdr[0:4]); got != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic %08x", ErrFormat, got)
	}
	version := binary.BigEndian.Uint32(hdr[4:8])
	if version != FormatVersion {
		return nil, 0, fmt.Errorf("%w: file is v%d, this build reads v%d",
			ErrVersion, version, FormatVersion)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n == 0 || n > maxSections {
		return nil, 0, fmt.Errorf("%w: %d sections", ErrFormat, n)
	}
	raw := make([]byte, int(n)*tableEntryLen)
	if _, err := f.ReadAt(raw, headerLen); err != nil {
		return nil, 0, fmt.Errorf("%w: truncated section table", ErrFormat)
	}
	payloadStart := uint64(headerLen + len(raw))
	table := make([]sectionEntry, n)
	seen := make(map[uint32]bool, n)
	for i := range table {
		b := raw[i*tableEntryLen:]
		e := sectionEntry{
			id:     binary.BigEndian.Uint32(b[0:4]),
			offset: binary.BigEndian.Uint64(b[4:12]),
			length: binary.BigEndian.Uint64(b[12:20]),
			crc:    binary.BigEndian.Uint32(b[20:24]),
		}
		if seen[e.id] {
			return nil, 0, fmt.Errorf("%w: duplicate %s section", ErrFormat, sectionName(e.id))
		}
		seen[e.id] = true
		if e.offset < payloadStart || e.offset+e.length < e.offset || e.offset+e.length > uint64(size) {
			return nil, 0, fmt.Errorf("%w: %s section [%d,+%d) outside file (%d bytes)",
				ErrFormat, sectionName(e.id), e.offset, e.length, size)
		}
		if e.id != SectionPages && e.length > maxCatalogBytes {
			return nil, 0, fmt.Errorf("%w: %s section implausibly large (%d bytes)",
				ErrFormat, sectionName(e.id), e.length)
		}
		table[i] = e
	}
	for _, id := range requiredSections {
		if !seen[id] {
			return nil, 0, fmt.Errorf("%w: missing %s section", ErrFormat, sectionName(id))
		}
	}
	return table, version, nil
}

// readSection reads a section fully and checks its CRC.
func readSection(f *os.File, e sectionEntry) ([]byte, error) {
	body := make([]byte, e.length)
	if _, err := f.ReadAt(body, int64(e.offset)); err != nil {
		return nil, fmt.Errorf("%w: reading %s section: %v", ErrFormat, sectionName(e.id), err)
	}
	if got := crc32.Checksum(body, crcTable); got != e.crc {
		return nil, &ChecksumError{Section: sectionName(e.id), Want: e.crc, Got: got}
	}
	return body, nil
}

// crcStream checks a section's CRC in fixed-size chunks without retaining
// the payload — the pages section can be gigabytes.
func crcStream(f *os.File, e sectionEntry) error {
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, io.NewSectionReader(f, int64(e.offset), int64(e.length))); err != nil {
		return fmt.Errorf("%w: reading %s section: %v", ErrFormat, sectionName(e.id), err)
	}
	if got := h.Sum32(); got != e.crc {
		return &ChecksumError{Section: sectionName(e.id), Want: e.crc, Got: got}
	}
	return nil
}
