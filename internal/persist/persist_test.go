package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"treebench/internal/derby"
	"treebench/internal/session"
	"treebench/internal/sim"
)

// testSnapshot generates and freezes a small Derby database once per test
// binary; tests fork it or re-save it, never mutate it.
func testSnapshot(t testing.TB) *derby.Snapshot {
	t.Helper()
	testSnapOnce.once.Do(func() {
		d, err := derby.Generate(derby.DefaultConfig(20, 20, derby.ClassCluster))
		if err == nil {
			testSnapOnce.snap, err = d.Freeze()
		}
		testSnapOnce.err = err
	})
	if testSnapOnce.err != nil {
		t.Fatalf("generate: %v", testSnapOnce.err)
	}
	return testSnapOnce.snap
}

var testSnapOnce struct {
	once sync.Once
	snap *derby.Snapshot
	err  error
}

func savedSnapshot(t testing.TB) (string, *derby.Snapshot) {
	t.Helper()
	snap := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "snap.tbsp")
	if err := Save(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	return path, snap
}

func TestSaveDeterministic(t *testing.T) {
	path, snap := savedSnapshot(t)
	path2 := filepath.Join(t.TempDir(), "again.tbsp")
	if err := Save(path2, snap); err != nil {
		t.Fatalf("second save: %v", err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if !bytes.Equal(a, b) {
		t.Fatal("saving the same snapshot twice produced different bytes")
	}
}

// TestRoundTripByteIdentical is the tentpole invariant in its strongest
// form: Save(Load(Save(snap))) must equal Save(snap) byte for byte. Every
// field the format carries — catalog, registry, trees, rid maps, load
// report — would break this if it round-tripped lossily.
func TestRoundTripByteIdentical(t *testing.T) {
	path, _ := savedSnapshot(t)
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	path2 := filepath.Join(t.TempDir(), "resaved.tbsp")
	if err := Save(path2, loaded); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if !bytes.Equal(a, b) {
		t.Fatal("re-saving a loaded snapshot produced different bytes")
	}
}

// render runs one statement sequence on a fresh session over the snapshot
// and returns the full rendered output, cold then warm — the oqlsh and
// `oqlsh -warm` views a user would diff.
func render(t *testing.T, snap *derby.Snapshot, warm bool) string {
	t.Helper()
	stmts := []string{
		"select pa.mrn, pa.age from pa in Patients where pa.mrn < 40",
		"select count(*) from pa in Patients",
		"select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 10",
		"select sum(pa.mrn) from pa in Patients where pa.mrn < 60",
	}
	s := session.New(snap.Fork().DB)
	s.Cold = !warm
	var buf bytes.Buffer
	for _, stmt := range stmts {
		res, err := s.Execute(stmt)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		session.WriteResult(&buf, session.ToWire(res, 10), 10)
	}
	return buf.String()
}

// TestRoundTripQueryIdentity pins the user-visible half of the invariant:
// cold and warm query sequences over a loaded snapshot render exactly the
// bytes the original produces, simulated costs included.
func TestRoundTripQueryIdentity(t *testing.T) {
	path, snap := savedSnapshot(t)
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, warm := range []bool{false, true} {
		want := render(t, snap, warm)
		got := render(t, loaded, warm)
		if want != got {
			t.Errorf("warm=%v: loaded snapshot renders differently\n--- original\n%s--- loaded\n%s", warm, want, got)
		}
	}
}

// readTestTable parses the header and section table straight off the file
// bytes, independent of the package's own reader.
func readTestTable(t *testing.T, raw []byte) map[string][2]uint64 {
	t.Helper()
	if len(raw) < headerLen {
		t.Fatal("file shorter than header")
	}
	n := int(binary.BigEndian.Uint32(raw[8:12]))
	sections := make(map[string][2]uint64, n)
	for i := 0; i < n; i++ {
		b := raw[headerLen+i*tableEntryLen:]
		id := binary.BigEndian.Uint32(b[0:4])
		off := binary.BigEndian.Uint64(b[4:12])
		length := binary.BigEndian.Uint64(b[12:20])
		sections[sectionName(id)] = [2]uint64{off, length}
	}
	return sections
}

// TestCorruptionPerSection flips one byte in every section's payload and
// asserts Load reports ErrChecksum naming that section — never a panic,
// never a silent success.
func TestCorruptionPerSection(t *testing.T) {
	path, _ := savedSnapshot(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, span := range readTestTable(t, raw) {
		t.Run(name, func(t *testing.T) {
			off, length := span[0], span[1]
			if length == 0 {
				t.Skipf("%s section empty at this scale", name)
			}
			mut := append([]byte(nil), raw...)
			mut[off+length/2] ^= 0x40
			p := filepath.Join(t.TempDir(), "corrupt.tbsp")
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(p)
			if !errors.Is(err, ErrChecksum) {
				t.Fatalf("corrupt %s section: got %v, want ErrChecksum", name, err)
			}
			var ce *ChecksumError
			if !errors.As(err, &ce) || ce.Section != name {
				t.Fatalf("corrupt %s section: error names %q", name, err)
			}
			if _, err := Verify(p); !errors.Is(err, ErrChecksum) {
				t.Fatalf("Verify on corrupt %s section: got %v, want ErrChecksum", name, err)
			}
		})
	}
}

func TestBadHeader(t *testing.T) {
	path, _ := savedSnapshot(t)
	raw, _ := os.ReadFile(path)

	cases := map[string]func([]byte){
		"magic":     func(b []byte) { b[0] ^= 0xFF },
		"version":   func(b []byte) { binary.BigEndian.PutUint32(b[4:8], FormatVersion+1) },
		"sections":  func(b []byte) { binary.BigEndian.PutUint32(b[8:12], maxSections+1) },
		"truncated": nil,
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			mut := append([]byte(nil), raw...)
			if mutate == nil {
				mut = mut[:headerLen/2]
			} else {
				mutate(mut)
			}
			p := filepath.Join(t.TempDir(), name+".tbsp")
			os.WriteFile(p, mut, 0o644)
			_, err := Load(p)
			if err == nil {
				t.Fatal("load accepted a mangled header")
			}
			if name == "version" && !errors.Is(err, ErrVersion) {
				t.Fatalf("got %v, want ErrVersion", err)
			}
			if name != "version" && !errors.Is(err, ErrFormat) {
				t.Fatalf("got %v, want ErrFormat", err)
			}
		})
	}
}

func TestVerifyAndInspect(t *testing.T) {
	path, snap := savedSnapshot(t)
	m, err := Verify(path)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(m.Sections) != len(requiredSections) {
		t.Fatalf("manifest lists %d sections, want %d", len(m.Sections), len(requiredSections))
	}
	if m.Pages != snap.Engine.Pages() {
		t.Errorf("manifest pages = %d, snapshot has %d", m.Pages, snap.Engine.Pages())
	}
	im, err := Inspect(path)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if im.Providers != 20 || im.Patients != 400 || im.Clustering != "class" {
		t.Errorf("inspect provenance = %d/%d/%s", im.Providers, im.Patients, im.Clustering)
	}
	if im.Version != FormatVersion {
		t.Errorf("inspect version = %d", im.Version)
	}
}

// TestFieldListsCoverStructs pins modelFields and counterFields to the
// struct definitions: adding a field to sim.CostModel or sim.Counters
// without extending the codec (and bumping FormatVersion) fails here
// instead of silently dropping data.
func TestFieldListsCoverStructs(t *testing.T) {
	var m sim.CostModel
	if got, want := len(modelFields(&m)), reflect.TypeOf(m).NumField(); got != want {
		t.Errorf("modelFields covers %d of %d CostModel fields", got, want)
	}
	var c sim.Counters
	if got, want := len(counterFields(&c)), reflect.TypeOf(c).NumField(); got != want {
		t.Errorf("counterFields covers %d of %d Counters fields", got, want)
	}
}

func TestKeyFor(t *testing.T) {
	base := derby.DefaultConfig(20, 20, derby.ClassCluster)
	if KeyFor(base) != KeyFor(base) {
		t.Fatal("KeyFor is not deterministic")
	}
	if len(KeyFor(base)) != 64 {
		t.Fatalf("key %q is not a sha256 hex", KeyFor(base))
	}
	variants := map[string]derby.Config{}
	for name, mutate := range map[string]func(*derby.Config){
		"providers":  func(c *derby.Config) { c.Providers++ },
		"avg":        func(c *derby.Config) { c.AvgPatients++ },
		"clustering": func(c *derby.Config) { c.Clustering = derby.RandomOrg },
		"seed":       func(c *derby.Config) { c.Seed++ },
		"machine":    func(c *derby.Config) { c.Machine.ClientCache++ },
		"model":      func(c *derby.Config) { c.Model.PageRead++ },
		"txn":        func(c *derby.Config) { c.TxnMode = 1 - c.TxnMode },
		"index":      func(c *derby.Config) { c.IndexBeforeLoad = !c.IndexBeforeLoad },
	} {
		cfg := base
		mutate(&cfg)
		variants[name] = cfg
	}
	seen := map[string]string{KeyFor(base): "base"}
	for name, cfg := range variants {
		k := KeyFor(cfg)
		if prev, dup := seen[k]; dup {
			t.Errorf("configs %s and %s collide", name, prev)
		}
		seen[k] = name
	}
}

func TestChecksumErrorMessage(t *testing.T) {
	err := &ChecksumError{Section: "registry", Want: 1, Got: 2}
	if !strings.Contains(err.Error(), "registry") {
		t.Fatalf("error %q does not name the section", err)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Fatal("ChecksumError does not wrap ErrChecksum")
	}
}
