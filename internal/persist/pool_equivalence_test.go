package persist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"treebench/internal/bufpool"
	"treebench/internal/derby"
	"treebench/internal/session"
)

// bigSnapshot generates (once per test binary) a database large enough
// that a 1 MB pool — 256 frames — cannot hold its page image, so loads
// under that pool run with continuous eviction pressure.
func bigSnapshot(t testing.TB) *derby.Snapshot {
	t.Helper()
	bigSnapOnce.once.Do(func() {
		d, err := derby.Generate(derby.DefaultConfig(100, 100, derby.ClassCluster))
		if err == nil {
			bigSnapOnce.snap, err = d.Freeze()
		}
		bigSnapOnce.err = err
	})
	if bigSnapOnce.err != nil {
		t.Fatalf("generate: %v", bigSnapOnce.err)
	}
	return bigSnapOnce.snap
}

var bigSnapOnce struct {
	once sync.Once
	snap *derby.Snapshot
	err  error
}

// poolEquivStatements exercise every path the pool sits under: extent
// scans (aggregate and sample rows), index range scans, a sorted index
// scan, and the tree join.
var poolEquivStatements = []string{
	"select count(*) from pa in Patients",
	"select pa.mrn, pa.age from pa in Patients where pa.mrn < 40",
	"select sum(pa.mrn) from pa in Patients where pa.mrn < 2000",
	"select pa.name, pa.age from pa in Patients where pa.mrn < 51 order by pa.age desc",
	"select p.name, pa.age from p in Providers, pa in p.clients where pa.mrn < 100 and p.upin < 10",
}

// renderPooled forks a session over snap at the given worker count and
// batch size and returns the concatenated rendered results — plans,
// rows, aggregates, and simulated meters included.
func renderPooled(t *testing.T, snap *derby.Snapshot, jobs, batch int) string {
	t.Helper()
	f := snap.Fork()
	f.DB.SetQueryJobs(jobs)
	f.DB.SetBatch(batch)
	s := session.New(f.DB)
	var buf bytes.Buffer
	for _, stmt := range poolEquivStatements {
		res, err := s.Execute(stmt)
		if err != nil {
			t.Fatalf("qj=%d batch=%d %q: %v", jobs, batch, stmt, err)
		}
		session.WriteResult(&buf, session.ToWire(res, 10), 10)
	}
	return buf.String()
}

// TestPoolConfigEquivalence pins the pool's central invariant: the buffer
// pool is a residency optimization and nothing else. Rendered output —
// simulated meters and tables — must be byte-identical across every
// -bufpool-mb × -readahead × -qj × -batch combination and both index
// backends, from the legacy no-pool mode through a 1 MB pool evicting on
// every scan. Run under -race this also exercises fault/prefetch/evict
// interleavings at the parallel worker counts.
func TestPoolConfigEquivalence(t *testing.T) {
	defer bufpool.Setup(bufpool.DefaultCapacityMB, bufpool.DefaultReadahead)

	snaps := map[string]*derby.Snapshot{"btree": bigSnapshot(t)}
	if !testing.Short() {
		snaps["lsm"] = lsmSnapshot(t)
	}
	for backend, snap := range snaps {
		path := filepath.Join(t.TempDir(), backend+".tbsp")
		if err := Save(path, snap); err != nil {
			t.Fatalf("save %s: %v", backend, err)
		}

		// Baseline: pool disabled (legacy unbounded per-base cells),
		// scalar single-worker execution.
		bufpool.Setup(0, 0)
		base, err := Load(path)
		if err != nil {
			t.Fatalf("load %s baseline: %v", backend, err)
		}
		want := renderPooled(t, base, 1, 1)
		if want == "" {
			t.Fatal("baseline render empty")
		}

		sawEviction := false
		for _, cfg := range [][2]int{{1, 0}, {1, 32}, {256, 0}, {256, 32}} {
			poolMB, ra := cfg[0], cfg[1]
			bufpool.Setup(poolMB, ra)
			snapP, err := Load(path)
			if err != nil {
				t.Fatalf("load %s pool=%dMB ra=%d: %v", backend, poolMB, ra, err)
			}
			for _, jobs := range []int{1, 8} {
				for _, batch := range []int{1, 1024} {
					got := renderPooled(t, snapP, jobs, batch)
					if got != want {
						t.Errorf("%s pool=%dMB ra=%d qj=%d batch=%d: output diverged from no-pool baseline\n%s",
							backend, poolMB, ra, jobs, batch, firstMismatch(got, want))
					}
				}
			}
			if st := bufpool.Active().Stats(); st.Evictions > 0 {
				sawEviction = true
			}
		}
		if backend == "btree" && !sawEviction {
			t.Error("no config ran under eviction pressure; grow the test snapshot or shrink the small pool")
		}
	}
}

// TestPoolSharedConcurrentSessions runs eight sessions with a mixed
// workload — half scanning, half doing point lookups — over ONE shared
// 1 MB pool under heavy eviction, and requires every session to render
// exactly the single-session baseline. With -race this is the pool's
// concurrency proof: faults, prefetches, evictions and pin/unpin from
// eight goroutines on shared frames, with byte-identity as the oracle.
func TestPoolSharedConcurrentSessions(t *testing.T) {
	defer bufpool.Setup(bufpool.DefaultCapacityMB, bufpool.DefaultReadahead)

	snap := bigSnapshot(t)
	path := filepath.Join(t.TempDir(), "shared.tbsp")
	if err := Save(path, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	bufpool.Setup(1, 32)
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	scan := []string{
		"select count(*) from pa in Patients",
		"select sum(pa.mrn) from pa in Patients where pa.mrn < 2000",
	}
	point := []string{
		"select pa.age from pa in Patients where pa.mrn = 4321",
		"select pa.name from pa in Patients where pa.mrn = 17",
	}
	render1 := func(stmts []string) string {
		s := session.New(loaded.Fork().DB)
		var buf bytes.Buffer
		for _, stmt := range stmts {
			res, err := s.Execute(stmt)
			if err != nil {
				t.Fatalf("%q: %v", stmt, err)
			}
			session.WriteResult(&buf, session.ToWire(res, 10), 10)
		}
		return buf.String()
	}
	wantScan, wantPoint := render1(scan), render1(point)

	const sessions = 8
	const iters = 3
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stmts, want := scan, wantScan
			if i%2 == 1 {
				stmts, want = point, wantPoint
			}
			for it := 0; it < iters; it++ {
				s := session.New(loaded.Fork().DB)
				var buf bytes.Buffer
				for _, stmt := range stmts {
					res, err := s.Execute(stmt)
					if err != nil {
						errs[i] = fmt.Errorf("iter %d %q: %w", it, stmt, err)
						return
					}
					session.WriteResult(&buf, session.ToWire(res, 10), 10)
				}
				if got := buf.String(); got != want {
					errs[i] = fmt.Errorf("iter %d: output diverged under shared pool\n%s",
						it, firstMismatch(got, want))
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	st := bufpool.Active().Stats()
	if st.Evictions == 0 {
		t.Error("shared-pool test ran without eviction pressure")
	}
	if st.Hits == 0 {
		t.Error("eight sessions over one pool recorded zero hits — sharing is not happening")
	}
}

// firstMismatch locates the first differing line between two renders,
// with a little context — whole outputs are too big to dump.
func firstMismatch(got, want string) string {
	g, w := bytes.Split([]byte(got), []byte("\n")), bytes.Split([]byte(want), []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
