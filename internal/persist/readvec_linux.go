//go:build linux

package persist

import (
	"fmt"
	"syscall"
	"unsafe"

	"treebench/internal/storage"
)

// ReadPageVec implements bufpool.VectorSource: one preadv(2) scatters
// len(bufs) consecutive pages starting at lo into the caller's separate
// buffers. The buffer pool uses it to read a whole readahead window
// directly into page frames — a single system call and no staging copy,
// which is what makes readahead pay off even when the file is already
// in the OS page cache (the win is syscall and memmove amortization,
// not disk latency). On other platforms the method simply doesn't
// exist and the pool falls back to ReadPageRange.
func (s *fileSource) ReadPageVec(lo int, bufs [][]byte) error {
	if lo < 0 || lo+len(bufs) > s.numPages {
		return fmt.Errorf("persist: page range [%d,%d) out of range (%d pages)",
			lo, lo+len(bufs), s.numPages)
	}
	if len(bufs) == 0 {
		return nil
	}
	if s.direct {
		return s.directReadVec(lo, bufs)
	}
	sc, err := s.f.SyscallConn()
	if err != nil {
		return err
	}
	iov := make([]syscall.Iovec, len(bufs))
	for i, b := range bufs {
		if len(b) == 0 {
			return fmt.Errorf("persist: preadv: empty buffer at index %d", i)
		}
		iov[i].Base = &b[0]
		iov[i].SetLen(len(b))
	}
	off := s.firstOff + int64(lo)*storage.PageSize
	var rerr error
	cerr := sc.Read(func(fd uintptr) bool {
		for len(iov) > 0 {
			offLo, offHi := offsetSplit(off)
			n, _, errno := syscall.Syscall6(syscall.SYS_PREADV, fd,
				uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)), offLo, offHi, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				rerr = errno
				return true
			}
			if n == 0 {
				rerr = fmt.Errorf("unexpected EOF")
				return true
			}
			off += int64(n)
			// Advance the iovec list past the n bytes just read (short
			// reads are legal; resume at the partial buffer).
			for n > 0 && len(iov) > 0 {
				l := uintptr(iov[0].Len)
				if n >= l {
					n -= l
					iov = iov[1:]
					continue
				}
				iov[0].Base = (*byte)(unsafe.Add(unsafe.Pointer(iov[0].Base), n))
				iov[0].SetLen(int(l - n))
				n = 0
			}
		}
		return true
	})
	if cerr != nil {
		return cerr
	}
	if rerr != nil {
		return fmt.Errorf("persist: preadv pages [%d,%d): %w", lo, lo+len(bufs), rerr)
	}
	return nil
}

// offsetSplit splits a file offset into the two unsigned-long halves
// preadv's raw syscall interface wants: the full offset in the low word
// on 64-bit platforms, a 32/32 split on 32-bit ones.
func offsetSplit(off int64) (lo, hi uintptr) {
	if unsafe.Sizeof(uintptr(0)) == 8 {
		return uintptr(off), 0
	}
	return uintptr(uint32(off)), uintptr(uint64(off) >> 32)
}
