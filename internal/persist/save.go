package persist

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"treebench/internal/derby"
	"treebench/internal/storage"
)

// Save writes the snapshot to path atomically: the file is assembled in a
// temporary sibling and renamed into place, so a crash mid-save leaves
// either the old file or none — never a torn one. Saving the same
// snapshot twice produces byte-identical files (no timestamps, canonical
// catalog order); the Cache's content addressing depends on it.
func Save(path string, snap *derby.Snapshot) (err error) {
	st := snap.State()
	base := snap.Engine.Base()

	// Encode every catalog section up front; only the page image is
	// streamed. The catalog is O(classes + files + indexes) — a few KB
	// even at the 1:3 million-patient scale.
	var meta, catalog, registry, extents, trees, histograms, dby, lineage, backends enc
	encodeMeta(&meta, st.Engine)
	encodeCatalog(&catalog, st.Engine.Files)
	encodeRegistry(&registry, st.Engine.Classes)
	encodeExtents(&extents, st.Engine)
	encodeTrees(&trees, st.Engine)
	encodeHistograms(&histograms, st.Engine)
	encodeDerby(&dby, st)
	encodeLineage(&lineage, snap.Engine)
	encodeBackends(&backends, st.Engine)

	numPages := base.NumPages()
	capPages := base.CapacityBytes() / storage.PageSize
	pagesLen := uint64(8 + numPages*storage.PageSize)

	sections := []struct {
		id   uint32
		body []byte // nil for the streamed pages section
		len  uint64
	}{
		{SectionMeta, meta.b, uint64(len(meta.b))},
		{SectionPages, nil, pagesLen},
		{SectionCatalog, catalog.b, uint64(len(catalog.b))},
		{SectionRegistry, registry.b, uint64(len(registry.b))},
		{SectionExtents, extents.b, uint64(len(extents.b))},
		{SectionTrees, trees.b, uint64(len(trees.b))},
		{SectionHistograms, histograms.b, uint64(len(histograms.b))},
		{SectionDerby, dby.b, uint64(len(dby.b))},
		{SectionLineage, lineage.b, uint64(len(lineage.b))},
		{SectionBackends, backends.b, uint64(len(backends.b))},
	}

	// All lengths are known, so the whole table is computable before a
	// byte of payload is written — no seek-backs, one forward pass.
	var hdr enc
	hdr.u32(Magic)
	hdr.u32(FormatVersion)
	hdr.u32(uint32(len(sections)))
	hdr.u32(0) // reserved
	offset := uint64(headerLen + len(sections)*tableEntryLen)
	table := make([]sectionEntry, len(sections))
	for i, s := range sections {
		table[i] = sectionEntry{id: s.id, offset: offset, length: s.len}
		offset += s.len
	}
	for i, s := range sections {
		if s.body != nil {
			table[i].crc = crc32.Checksum(s.body, crcTable)
			continue
		}
		// Pages section: CRC over the streamed payload (header + raw
		// pages), computed in the same order it will be written.
		h := crc32.New(crcTable)
		var ph enc
		ph.u32(uint32(numPages))
		ph.u32(uint32(capPages))
		h.Write(ph.b)
		for p := 0; p < numPages; p++ {
			pg, err := base.Page(storage.PageID(p))
			if err != nil {
				return fmt.Errorf("persist: reading page %d: %w", p, err)
			}
			h.Write(pg)
		}
		table[i].crc = h.Sum32()
	}
	for _, t := range table {
		hdr.u32(t.id)
		hdr.u64(t.offset)
		hdr.u64(t.length)
		hdr.u32(t.crc)
	}

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tbsp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := bufio.NewWriterSize(tmp, 1<<20)
	if _, err = w.Write(hdr.b); err != nil {
		return err
	}
	for _, s := range sections {
		if s.body != nil {
			if _, err = w.Write(s.body); err != nil {
				return err
			}
			continue
		}
		var ph enc
		ph.u32(uint32(numPages))
		ph.u32(uint32(capPages))
		if _, err = w.Write(ph.b); err != nil {
			return err
		}
		for p := 0; p < numPages; p++ {
			pg, perr := base.Page(storage.PageID(p))
			if perr != nil {
				err = perr
				return err
			}
			if _, err = w.Write(pg); err != nil {
				return err
			}
		}
	}
	if err = w.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
