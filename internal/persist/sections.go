package persist

import (
	"fmt"
	"time"

	"treebench/internal/backend"
	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/histogram"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
	"treebench/internal/txn"
)

// timeDuration keeps the field-list helpers readable.
type timeDuration = time.Duration

// Section payload codecs. Each encodeX must round-trip exactly through
// its decodeX: the Cache's soundness rests on Save being deterministic
// and Load(Save(snap)) reproducing snap bit-for-bit. The catalog is split
// across sections so corruption localizes — a flipped byte in the
// histograms section names "histograms", not "snapshot".
//
// The trees and histograms sections are positionally aligned with the
// extents section: entry i describes the i-th index in extent-major
// order. Load cross-checks the counts.

// --- meta ---

func encodeMeta(e *enc, st *engine.SnapshotState) {
	e.i64(st.Machine.RAM)
	e.i64(st.Machine.ServerCache)
	e.i64(st.Machine.ClientCache)
	e.i64(st.Machine.HashBudget)
	m := &st.Model
	for _, d := range modelFields(m) {
		e.i64(int64(*d))
	}
	e.u8(byte(st.Mode))
	e.u32(st.NextIdx)
}

func decodeMeta(b []byte, st *engine.SnapshotState) error {
	d := newDec(b, "meta")
	st.Machine = sim.Machine{
		RAM:         d.i64(),
		ServerCache: d.i64(),
		ClientCache: d.i64(),
		HashBudget:  d.i64(),
	}
	for _, f := range modelFields(&st.Model) {
		*f = timeDuration(d.i64())
	}
	st.Mode = txn.Mode(d.u8())
	st.NextIdx = d.u32()
	return d.finish()
}

// modelFields enumerates every CostModel field in declaration order. A
// new field must be added here AND FormatVersion bumped, or saves would
// silently drop it — TestMetaCoversCostModel pins the count.
func modelFields(m *sim.CostModel) []*timeDuration {
	return []*timeDuration{
		&m.PageRead, &m.PageWrite, &m.RPC,
		&m.ScanNext, &m.HandleGet, &m.HandleUnref,
		&m.SlimScanNext, &m.SlimHandleGet, &m.SlimHandleUnref,
		&m.AttrGet, &m.Compare, &m.HashInsert, &m.HashProbe,
		&m.ResultAppend, &m.SlimResultAppend, &m.SortPerCompare,
		&m.SwapRead, &m.SwapWrite, &m.LogWrite, &m.Lock,
	}
}

// --- catalog ---

func encodeCatalog(e *enc, files []storage.FileState) {
	e.u32(uint32(len(files)))
	for _, f := range files {
		e.str(f.Name)
		e.u32(uint32(f.AppendPage))
		e.u32(uint32(len(f.Pages)))
		for _, id := range f.Pages {
			e.u32(uint32(id))
		}
	}
}

func decodeCatalog(b []byte) ([]storage.FileState, error) {
	d := newDec(b, "catalog")
	n := d.count(9, "file")
	files := make([]storage.FileState, 0, n)
	for i := 0; i < n; i++ {
		f := storage.FileState{
			Name:       d.str(),
			AppendPage: int(d.u32()),
		}
		np := d.count(4, "page list")
		f.Pages = make([]storage.PageID, np)
		for j := range f.Pages {
			f.Pages[j] = storage.PageID(d.u32())
		}
		files = append(files, f)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return files, nil
}

// --- registry ---

func encodeRegistry(e *enc, st *object.RegistryState) {
	e.u16(st.NextID)
	e.u32(uint32(len(st.Classes)))
	for _, c := range st.Classes {
		e.u16(c.ID)
		e.str(c.Name)
		e.str(c.Parent)
		e.u32(uint32(c.OrigAttrs))
		e.u32(uint32(len(c.Attrs)))
		for _, a := range c.Attrs {
			e.str(a.Name)
			e.u8(byte(a.Kind))
			e.u32(uint32(a.StrLen))
		}
		e.u32(uint32(len(c.Defaults)))
		for _, v := range c.Defaults {
			encodeValue(e, v)
		}
	}
}

func decodeRegistry(b []byte) (*object.RegistryState, error) {
	d := newDec(b, "registry")
	st := &object.RegistryState{NextID: d.u16()}
	n := d.count(15, "class")
	for i := 0; i < n; i++ {
		c := object.ClassState{
			ID:     d.u16(),
			Name:   d.str(),
			Parent: d.str(),
		}
		c.OrigAttrs = int(d.u32())
		na := d.count(9, "attr")
		c.Attrs = make([]object.Attr, na)
		for j := range c.Attrs {
			c.Attrs[j] = object.Attr{
				Name:   d.str(),
				Kind:   object.Kind(d.u8()),
				StrLen: int(d.u32()),
			}
		}
		nd := d.count(1, "default")
		c.Defaults = make([]object.Value, nd)
		for j := range c.Defaults {
			c.Defaults[j] = decodeValue(d)
		}
		st.Classes = append(st.Classes, c)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return st, nil
}

func encodeValue(e *enc, v object.Value) {
	e.u8(byte(v.Kind))
	switch v.Kind {
	case object.KindInt, object.KindChar:
		e.i64(v.Int)
	case object.KindString:
		e.str(v.Str)
	case object.KindRef, object.KindSet:
		e.rid(v.Ref)
	}
}

func decodeValue(d *dec) object.Value {
	v := object.Value{Kind: object.Kind(d.u8())}
	switch v.Kind {
	case object.KindInt, object.KindChar:
		v.Int = d.i64()
	case object.KindString:
		v.Str = d.str()
	case object.KindRef, object.KindSet:
		v.Ref = d.rid()
	default:
		d.fail("value kind")
	}
	return v
}

// --- extents (plus roots and relationships) ---

func encodeExtents(e *enc, st *engine.SnapshotState) {
	e.u32(uint32(len(st.Extents)))
	for _, ex := range st.Extents {
		e.str(ex.Name)
		e.str(ex.Class)
		e.str(ex.File)
		e.bool(ex.IndexedAtCreation)
		e.i64(int64(ex.Count))
		e.u32(uint32(len(ex.Indexes)))
		for _, ix := range ex.Indexes {
			e.str(ix.Attr)
			e.bool(ix.Clustered)
		}
	}
	e.u32(uint32(len(st.Roots)))
	for _, r := range st.Roots {
		e.str(r.Name)
		e.rid(r.Rid)
	}
	e.u32(uint32(len(st.Rels)))
	for _, r := range st.Rels {
		e.str(r.Parent)
		e.str(r.SetAttr)
		e.str(r.Child)
		e.str(r.RefAttr)
	}
}

func decodeExtents(b []byte, st *engine.SnapshotState) error {
	d := newDec(b, "extents")
	n := d.count(26, "extent")
	for i := 0; i < n; i++ {
		ex := engine.ExtentState{
			Name:              d.str(),
			Class:             d.str(),
			File:              d.str(),
			IndexedAtCreation: d.boolv(),
			Count:             int(d.i64()),
		}
		ni := d.count(5, "index")
		for j := 0; j < ni; j++ {
			ex.Indexes = append(ex.Indexes, engine.IndexState{
				Attr:      d.str(),
				Clustered: d.boolv(),
			})
		}
		st.Extents = append(st.Extents, ex)
	}
	nr := d.count(10, "root")
	for i := 0; i < nr; i++ {
		st.Roots = append(st.Roots, engine.RootState{Name: d.str(), Rid: d.rid()})
	}
	nl := d.count(16, "relationship")
	for i := 0; i < nl; i++ {
		st.Rels = append(st.Rels, engine.RelationshipState{
			Parent:  d.str(),
			SetAttr: d.str(),
			Child:   d.str(),
			RefAttr: d.str(),
		})
	}
	return d.finish()
}

// --- trees ---

func encodeTrees(e *enc, st *engine.SnapshotState) {
	var trees []index.TreeState
	for _, ex := range st.Extents {
		for _, ix := range ex.Indexes {
			trees = append(trees, ix.Tree)
		}
	}
	e.u32(uint32(len(trees)))
	for _, t := range trees {
		e.u32(t.ID)
		e.str(t.Name)
		e.u32(uint32(t.Root))
		e.i64(int64(t.Height))
		e.i64(int64(t.Pages))
		e.i64(int64(t.Len))
	}
}

func decodeTrees(b []byte, st *engine.SnapshotState) error {
	d := newDec(b, "trees")
	n := d.count(36, "tree")
	trees := make([]index.TreeState, n)
	for i := range trees {
		trees[i] = index.TreeState{
			ID:     d.u32(),
			Name:   d.str(),
			Root:   storage.PageID(d.u32()),
			Height: int(d.i64()),
			Pages:  int(d.i64()),
			Len:    int(d.i64()),
		}
	}
	if err := d.finish(); err != nil {
		return err
	}
	return placeIndexes(st, len(trees), "trees", func(ix *engine.IndexState, i int) {
		ix.Tree = trees[i]
	})
}

// --- histograms ---

func encodeHistograms(e *enc, st *engine.SnapshotState) {
	var stats [][]histogram.BucketState
	for _, ex := range st.Extents {
		for _, ix := range ex.Indexes {
			stats = append(stats, ix.Stats)
		}
	}
	e.u32(uint32(len(stats)))
	for _, s := range stats {
		e.u32(uint32(len(s)))
		for _, b := range s {
			e.i64(b.Lo)
			e.i64(b.Hi)
			e.i64(b.Count)
		}
	}
}

func decodeHistograms(b []byte, st *engine.SnapshotState) error {
	d := newDec(b, "histograms")
	n := d.count(4, "histogram")
	stats := make([][]histogram.BucketState, n)
	for i := range stats {
		nb := d.count(24, "bucket")
		if nb == 0 {
			continue
		}
		stats[i] = make([]histogram.BucketState, nb)
		for j := range stats[i] {
			stats[i][j] = histogram.BucketState{Lo: d.i64(), Hi: d.i64(), Count: d.i64()}
		}
	}
	if err := d.finish(); err != nil {
		return err
	}
	return placeIndexes(st, len(stats), "histograms", func(ix *engine.IndexState, i int) {
		ix.Stats = stats[i]
	})
}

// placeIndexes walks the extents' indexes in extent-major order and calls
// fill with each one's flat position, after checking the aligned section
// has exactly one entry per index.
func placeIndexes(st *engine.SnapshotState, have int, section string, fill func(*engine.IndexState, int)) error {
	total := 0
	for _, ex := range st.Extents {
		total += len(ex.Indexes)
	}
	if have != total {
		return fmt.Errorf("%w: %s section has %d entries for %d indexes",
			ErrFormat, section, have, total)
	}
	i := 0
	for e := range st.Extents {
		for j := range st.Extents[e].Indexes {
			fill(&st.Extents[e].Indexes[j], i)
			i++
		}
	}
	return nil
}

// --- backends ---

// encodeBackends writes the pluggable-backend descriptor of every index,
// aligned with the trees section (extent-major order). A leading kind tag
// (the first index's kind — engines keep it uniform) lets Inspect report
// the backend column without decoding the whole section.
func encodeBackends(e *enc, st *engine.SnapshotState) {
	var bks []index.BackendState
	for _, ex := range st.Extents {
		for _, ix := range ex.Indexes {
			bks = append(bks, ix.Backend)
		}
	}
	kind := ""
	if len(bks) > 0 {
		kind = bks[0].Kind
	}
	e.str(kind)
	e.u32(uint32(len(bks)))
	for _, b := range bks {
		e.str(b.Kind)
		e.u32(b.Tree.ID)
		e.str(b.Tree.Name)
		e.u32(uint32(b.Tree.Root))
		e.i64(int64(b.Tree.Height))
		e.i64(int64(b.Tree.Pages))
		e.i64(int64(b.Tree.Len))
		e.u32(uint32(b.Meta))
		e.bool(b.LSM != nil)
		if l := b.LSM; l != nil {
			e.u32(l.ID)
			e.str(l.Name)
			e.i64(int64(l.Len))
			e.u32(l.Seq)
			e.u32(uint32(len(l.Mem)))
			for _, m := range l.Mem {
				e.i64(m.Key)
				e.rid(m.Rid)
				e.bool(m.Tomb)
			}
			e.u32(uint32(len(l.Tabs)))
			for _, t := range l.Tabs {
				e.u32(t.Seq)
				e.i64(int64(t.Tier))
				e.u32(uint32(t.Start))
				e.i64(int64(t.Pages))
				e.i64(int64(t.Count))
				e.i64(t.MinKey)
				e.i64(t.MaxKey)
				e.u32(uint32(len(t.Fences)))
				for _, f := range t.Fences {
					e.i64(f)
				}
				e.u32(uint32(len(t.Bloom)))
				for _, w := range t.Bloom {
					e.u64(w)
				}
			}
		}
	}
}

// decodeBackendEntry reads one BackendState (the per-index body of the
// backends section). Shared by decodeBackends and the WAL commit codec.
func decodeBackendEntry(d *dec) index.BackendState {
	b := index.BackendState{
		Kind: d.str(),
		Tree: index.TreeState{
			ID:     d.u32(),
			Name:   d.str(),
			Root:   storage.PageID(d.u32()),
			Height: int(d.i64()),
			Pages:  int(d.i64()),
			Len:    int(d.i64()),
		},
		Meta: storage.PageID(d.u32()),
	}
	if d.boolv() {
		l := &index.LSMState{
			ID:   d.u32(),
			Name: d.str(),
			Len:  int(d.i64()),
			Seq:  d.u32(),
		}
		nm := d.count(15, "memtable entry")
		for i := 0; i < nm; i++ {
			l.Mem = append(l.Mem, index.MemEntryState{
				Key:  d.i64(),
				Rid:  d.rid(),
				Tomb: d.boolv(),
			})
		}
		nt := d.count(56, "sstable")
		for i := 0; i < nt; i++ {
			t := index.SSTableState{
				Seq:    d.u32(),
				Tier:   int(d.i64()),
				Start:  storage.PageID(d.u32()),
				Pages:  int(d.i64()),
				Count:  int(d.i64()),
				MinKey: d.i64(),
				MaxKey: d.i64(),
			}
			nf := d.count(8, "fence")
			for j := 0; j < nf; j++ {
				t.Fences = append(t.Fences, d.i64())
			}
			nw := d.count(8, "bloom word")
			for j := 0; j < nw; j++ {
				t.Bloom = append(t.Bloom, d.u64())
			}
			l.Tabs = append(l.Tabs, t)
		}
		b.LSM = l
	}
	return b
}

func decodeBackends(b []byte, st *engine.SnapshotState) error {
	d := newDec(b, "backends")
	d.str() // leading uniform kind tag, for cheap inspection only
	n := d.count(49, "backend")
	bks := make([]index.BackendState, n)
	for i := range bks {
		bks[i] = decodeBackendEntry(d)
	}
	if err := d.finish(); err != nil {
		return err
	}
	return placeIndexes(st, len(bks), "backends", func(ix *engine.IndexState, i int) {
		ix.Backend = bks[i]
	})
}

// backendKindOf reads the backends section's leading kind tag without
// decoding the entries — the cheap path Inspect's backend column uses.
// An empty tag (a snapshot with no indexes) reports the default kind.
func backendKindOf(b []byte) (string, error) {
	d := newDec(b, "backends")
	kind := d.str()
	if d.err != nil {
		return "", d.err
	}
	if kind == "" {
		kind = backend.DefaultKind
	}
	return kind, nil
}

// --- derby ---

func encodeDerby(e *enc, st *derby.SnapshotState) {
	e.i64(int64(st.NumProviders))
	e.i64(int64(st.NumPatients))
	e.u8(byte(st.Clustering))
	e.u32(uint32(len(st.ProviderRids)))
	for _, r := range st.ProviderRids {
		e.rid(r)
	}
	e.u32(uint32(len(st.PatientRids)))
	for _, r := range st.PatientRids {
		e.rid(r)
	}
	e.i64(int64(st.Load.Elapsed))
	e.i64(int64(st.Load.Commits))
	e.i64(int64(st.Load.Relocations))
	for _, c := range counterFields(&st.Load.Counters) {
		e.i64(*c)
	}
}

func decodeDerby(b []byte) (*derby.SnapshotState, error) {
	d := newDec(b, "derby")
	st := &derby.SnapshotState{
		NumProviders: int(d.i64()),
		NumPatients:  int(d.i64()),
		Clustering:   derby.Clustering(d.u8()),
	}
	np := d.count(6, "provider rid")
	st.ProviderRids = make([]storage.Rid, np)
	for i := range st.ProviderRids {
		st.ProviderRids[i] = d.rid()
	}
	nt := d.count(6, "patient rid")
	st.PatientRids = make([]storage.Rid, nt)
	for i := range st.PatientRids {
		st.PatientRids[i] = d.rid()
	}
	st.Load.Elapsed = timeDuration(d.i64())
	st.Load.Commits = int(d.i64())
	st.Load.Relocations = int(d.i64())
	for _, c := range counterFields(&st.Load.Counters) {
		*c = d.i64()
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return st, nil
}

// --- lineage ---

// Lineage is a snapshot's position in its MVCC chain, as recorded in the
// lineage section: all zero for a freshly generated root, stamped by the
// chain store for every committed or compacted version.
type Lineage struct {
	Version    uint64
	Parent     uint64
	DeltaPages int   // pages the version's commit shipped (0 for root/compacted)
	WalOff     int64 // offset of the commit record in the WAL
}

func encodeLineage(e *enc, sn *engine.Snapshot) {
	e.u64(sn.Version())
	e.u64(sn.ParentVersion())
	e.u32(uint32(sn.DeltaPages()))
	e.i64(sn.WalOff())
}

func decodeLineage(b []byte) (Lineage, error) {
	d := newDec(b, "lineage")
	ln := Lineage{
		Version:    d.u64(),
		Parent:     d.u64(),
		DeltaPages: int(d.u32()),
		WalOff:     d.i64(),
	}
	if err := d.finish(); err != nil {
		return Lineage{}, err
	}
	return ln, nil
}

// counterFields enumerates every sim.Counters field in declaration order;
// like modelFields, additions require a FormatVersion bump.
func counterFields(c *sim.Counters) []*int64 {
	return []*int64{
		&c.DiskReads, &c.DiskWrites, &c.RPCs, &c.RPCBytes,
		&c.ServerHits, &c.ServerToClient, &c.ClientHits, &c.ClientFaults,
		&c.LogPages, &c.Locks,
		&c.ScanNexts, &c.HandleGets, &c.HandleUnrefs, &c.AttrGets,
		&c.Compares, &c.HashInserts, &c.HashProbes, &c.ResultAppends,
		&c.SortedElems, &c.SwapReads, &c.SwapWrites,
	}
}
