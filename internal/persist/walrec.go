package persist

import (
	"fmt"

	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/storage"
)

// WAL commit records. A commit ships everything needed to rebuild the
// version it created over its parent: the copy-on-write delta (overlaid
// and appended pages) plus the full post-commit catalog. The catalog is
// O(classes + files + indexes) — a few KB — so carrying it whole keeps
// replay a pure RestoreSnapshot instead of a catalog-patching protocol,
// and reuses the snapshot file's section codecs byte for byte.
//
// Payload layout (big-endian, inside one wal record whose length and
// CRC-32C the log itself frames):
//
//	u64 version | u64 wave | u32 parentPages
//	u32 overlayCount, overlayCount × (u32 pageID + 4 KB page)
//	u32 appendedCount, appendedCount × 4 KB page
//	8 × (u32 len + body): meta, catalog, registry, extents, trees,
//	                      histograms, derby, backends — the snapshot-file
//	                      sections

// CommitRecord is one decoded WAL commit.
type CommitRecord struct {
	Version     uint64
	Wave        uint64
	ParentPages int // page count of the parent base, checked before Apply

	OverlayIDs    []storage.PageID
	OverlayPages  [][]byte // aligned with OverlayIDs
	AppendedPages [][]byte

	State *derby.SnapshotState
}

// EncodeCommit serializes a commit: the published delta plus the new
// version's catalog state.
func EncodeCommit(version, wave uint64, delta *storage.Delta, st *derby.SnapshotState) []byte {
	var e enc
	e.u64(version)
	e.u64(wave)
	e.u32(uint32(delta.Parent().NumPages()))
	ids := delta.OverlayIDs()
	e.u32(uint32(len(ids)))
	for _, id := range ids {
		e.u32(uint32(id))
		e.b = append(e.b, delta.OverlayPage(id)...)
	}
	app := delta.Appended()
	e.u32(uint32(len(app)))
	for _, pg := range app {
		e.b = append(e.b, pg...)
	}
	sub := func(fill func(*enc)) {
		var t enc
		fill(&t)
		e.u32(uint32(len(t.b)))
		e.b = append(e.b, t.b...)
	}
	sub(func(t *enc) { encodeMeta(t, st.Engine) })
	sub(func(t *enc) { encodeCatalog(t, st.Engine.Files) })
	sub(func(t *enc) { encodeRegistry(t, st.Engine.Classes) })
	sub(func(t *enc) { encodeExtents(t, st.Engine) })
	sub(func(t *enc) { encodeTrees(t, st.Engine) })
	sub(func(t *enc) { encodeHistograms(t, st.Engine) })
	sub(func(t *enc) { encodeDerby(t, st) })
	sub(func(t *enc) { encodeBackends(t, st.Engine) })
	return e.b
}

// DecodeCommit parses a commit payload. Failures are typed ErrFormat
// errors, never panics — the payload passed the log's CRC, so a parse
// failure means writer/reader disagreement, not disk corruption.
func DecodeCommit(b []byte) (*CommitRecord, error) {
	d := newDec(b, "commit")
	r := &CommitRecord{
		Version:     d.u64(),
		Wave:        d.u64(),
		ParentPages: int(d.u32()),
	}
	no := d.count(4+storage.PageSize, "overlay page")
	r.OverlayIDs = make([]storage.PageID, 0, no)
	r.OverlayPages = make([][]byte, 0, no)
	for i := 0; i < no; i++ {
		r.OverlayIDs = append(r.OverlayIDs, storage.PageID(d.u32()))
		r.OverlayPages = append(r.OverlayPages, d.take(storage.PageSize, "overlay page"))
	}
	na := d.count(storage.PageSize, "appended page")
	r.AppendedPages = make([][]byte, 0, na)
	for i := 0; i < na; i++ {
		r.AppendedPages = append(r.AppendedPages, d.take(storage.PageSize, "appended page"))
	}
	sub := func(what string) []byte {
		n := d.u32()
		return d.take(int(n), what)
	}
	est := &engine.SnapshotState{}
	if err := decodeMeta(sub("meta"), est); err != nil {
		return nil, err
	}
	var err error
	if est.Files, err = decodeCatalog(sub("catalog")); err != nil {
		return nil, err
	}
	if est.Classes, err = decodeRegistry(sub("registry")); err != nil {
		return nil, err
	}
	if err := decodeExtents(sub("extents"), est); err != nil {
		return nil, err
	}
	if err := decodeTrees(sub("trees"), est); err != nil {
		return nil, err
	}
	if err := decodeHistograms(sub("histograms"), est); err != nil {
		return nil, err
	}
	dst, err := decodeDerby(sub("derby"))
	if err != nil {
		return nil, err
	}
	if err := decodeBackends(sub("backends"), est); err != nil {
		return nil, err
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	dst.Engine = est
	r.State = dst
	return r, nil
}

// Apply rebuilds the version a commit record describes over its parent
// snapshot: the record's pages become a storage.Delta layered on the
// parent's base, and the record's catalog is restored over the resulting
// DeltaBase. The returned snapshot has its lineage stamped (walOff is
// the record's offset in the log) and shares every untouched page with
// the parent.
func (r *CommitRecord) Apply(parent *derby.Snapshot, walOff int64) (*derby.Snapshot, error) {
	base := parent.Engine.Base()
	if base.NumPages() != r.ParentPages {
		return nil, fmt.Errorf("%w: commit v%d expects a %d-page parent, have %d pages",
			ErrFormat, r.Version, r.ParentPages, base.NumPages())
	}
	overlay := make(map[storage.PageID][]byte, len(r.OverlayIDs))
	for i, id := range r.OverlayIDs {
		overlay[id] = r.OverlayPages[i]
	}
	delta, err := storage.NewDelta(base, overlay, r.AppendedPages)
	if err != nil {
		return nil, err
	}
	snap, err := derby.RestoreSnapshot(storage.NewDeltaBase(delta), r.State)
	if err != nil {
		return nil, err
	}
	snap.Engine.SetLineage(r.Version, delta.Pages(), walOff)
	return snap, nil
}
