// Vectorized access paths: the same three §4.2 operators, restructured
// around batches of records instead of one handle at a time. Each batch
// evaluates predicates into a selection vector, extracts projected
// attributes into value columns, and merges ONE accumulated sim delta where
// the scalar loop charged per object — so the simulated counters, tables,
// and meters are byte-identical to the scalar path at every batch size,
// while the wall-clock constant per object (handle churn, interface
// dispatch, one meter call per charge) is amortized across the batch.
package selection

import (
	"sort"

	"treebench/internal/engine"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// evalBatch runs the predicate and projection phases over one filled batch:
// Sel[i] is set for surviving rows, Cols holds the projected value columns
// compacted to the selected rows (in selection order), and every AttrGet /
// Compare / ResultAppend the scalar match+project pair would have charged is
// accumulated into ch. It returns the number of selected rows.
func evalBatch(b *object.Batch, req Request, whereIdx int, filterIdxs, projIdxs []int, ch *sim.BatchCharges) (int, error) {
	n := b.Len()
	b.SetCols(len(projIdxs))
	selected := 0
	for i := 0; i < n; i++ {
		cls, rec := b.Classes[i], b.Recs[i]
		// Predicates short-circuit exactly like the scalar match():
		// one AttrGet+Compare per predicate actually evaluated.
		if whereIdx >= 0 {
			v, err := object.DecodeAttr(cls, rec, whereIdx)
			if err != nil {
				return 0, err
			}
			ch.AttrGets++
			ch.Compares++
			if !req.Where.Eval(v.Int) {
				continue
			}
		}
		ok := true
		for fi, f := range req.Filters {
			v, err := object.DecodeAttr(cls, rec, filterIdxs[fi])
			if err != nil {
				return 0, err
			}
			ch.AttrGets++
			ch.Compares++
			if !f.Eval(v.Int) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		b.Sel[i] = true
		for j, pi := range projIdxs {
			v, err := object.DecodeAttr(cls, rec, pi)
			if err != nil {
				return 0, err
			}
			ch.AttrGets++
			b.Cols[j][selected] = v
		}
		selected++
	}
	if len(projIdxs) > 0 {
		ch.ResultAppends += int64(selected)
	}
	for j := range b.Cols {
		b.Cols[j] = b.Cols[j][:selected]
	}
	return selected, nil
}

// deliverBatch hands a batch's selected rows to the request's callback:
// whole columns through OnBatch when set, otherwise row by row through the
// scalar callbacks (vals rebuilt per row, as project() builds them).
func deliverBatch(b *object.Batch, req Request, nProj, selected, chunk int) error {
	if selected == 0 {
		return nil
	}
	if req.OnBatch != nil {
		return req.OnBatch(chunk, b.Cols, selected)
	}
	if req.OnRowChunk == nil && req.OnRow == nil {
		return nil
	}
	vals := make([]object.Value, nProj)
	for i := 0; i < selected; i++ {
		for j := 0; j < nProj; j++ {
			vals[j] = b.Cols[j][i]
		}
		if req.OnRowChunk != nil {
			if err := req.OnRowChunk(chunk, vals); err != nil {
				return err
			}
		} else if err := req.OnRow(vals); err != nil {
			return err
		}
	}
	return nil
}

// runFullScanBatched is the vectorized Figure 8 left column. Member records
// are captured straight from the scan callback (record buffers outlive
// their page's cache residency), so the batch performs zero page re-reads;
// the scalar loop's per-object handle materialization re-read the page it
// was already holding — a guaranteed client-cache hit — which the batch
// accounts as ClientHits in its merged delta. Per member object the charge
// multiset is identical to the scalar path: ScanNext, the re-read hit,
// HandleGet, short-circuited AttrGet+Compare per predicate, AttrGet per
// projection plus ResultAppend for matches, HandleUnref.
func runFullScanBatched(db *engine.Database, req Request, whereIdx int, filterIdxs, projIdxs []int, ranges []engine.PageRange) (*Result, error) {
	res := &Result{Access: FullScan}
	rows := make([]int, len(ranges))
	bsize := db.Batch()
	err := db.RunChunks(len(ranges), func(w *engine.Session, c int) error {
		b := object.NewBatch(bsize)
		flush := func() error {
			n := b.Len()
			if n == 0 {
				return nil
			}
			ch := sim.BatchCharges{
				ScanNexts:    int64(n),
				ClientHits:   int64(n),
				HandleGets:   int64(n),
				HandleUnrefs: int64(n),
			}
			selected, err := evalBatch(b, req, whereIdx, filterIdxs, projIdxs, &ch)
			if err != nil {
				return err
			}
			w.Meter.ChargeBatch(ch)
			rows[c] += selected
			err = deliverBatch(b, req, len(projIdxs), selected, c)
			b.Reset()
			return err
		}
		err := req.Extent.File.ScanRange(w.Client, ranges[c].From, ranges[c].To, func(rid storage.Rid, rec []byte) (bool, error) {
			id := object.ClassID(rec)
			if !w.Classes.Belongs(id, req.Extent.Class) {
				return true, nil // shared file: other classes' objects
			}
			b.Append(rid, rec, w.Classes.ByID(id))
			if b.Full() {
				return true, flush()
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		return flush()
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		res.Rows += r
	}
	res.Elapsed = db.Meter.Elapsed()
	res.Counters = db.Meter.Snapshot()
	return res, nil
}

// runIndexScanBatched is the vectorized Figure 8 right column. The rid
// gather, the optional sort, and the sorted variant's position-driven
// prefetch schedule are byte-identical to the scalar loop; record fetches
// go through an object.Fetcher whose page-run reuse charges the same
// client-cache hits the scalar per-object reads produced, and the fetcher
// is invalidated whenever a prefetch touches the pager in between.
func runIndexScanBatched(db *engine.Database, req Request, filterIdxs, projIdxs []int, sorted bool, res *Result, rids []storage.Rid) (*Result, error) {
	if sorted {
		db.Meter.Sort(int64(len(rids)))
		sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
		res.SortedRids = len(rids)
	}
	var pf storage.Prefetcher
	batch := 1
	if sorted {
		if p, ok := storage.Pager(db.Client).(storage.Prefetcher); ok && p.ReadAheadBatch() > 1 {
			pf = p
			batch = p.ReadAheadBatch()
		}
	}
	var pages []storage.PageID
	if pf != nil {
		for _, rid := range rids {
			if len(pages) == 0 || pages[len(pages)-1] != rid.Page {
				pages = append(pages, rid.Page)
			}
		}
	}

	bsize := db.Batch()
	b := object.NewBatch(bsize)
	f := db.Handles.Fetcher()
	flush := func() error {
		n := b.Len()
		if n == 0 {
			return nil
		}
		ch := sim.BatchCharges{HandleGets: int64(n), HandleUnrefs: int64(n)}
		// The index already enforced Where (whereIdx -1): only the
		// filters run per fetched record, as in the scalar loop.
		selected, err := evalBatch(b, req, -1, filterIdxs, projIdxs, &ch)
		if err != nil {
			return err
		}
		db.Meter.ChargeBatch(ch)
		res.Rows += selected
		err = deliverBatch(b, req, len(projIdxs), selected, 0)
		b.Reset()
		return err
	}
	pageIdx, nextPrefetch := 0, 0
	for _, rid := range rids {
		if pf != nil {
			for pageIdx < len(pages) && pages[pageIdx] != rid.Page {
				pageIdx++
			}
			if pageIdx >= nextPrefetch {
				hi := pageIdx + batch
				if hi > len(pages) {
					hi = len(pages)
				}
				pf.Prefetch(pages[pageIdx:hi])
				nextPrefetch = hi
				// The prefetch read pages through the pager: the held
				// page is no longer the last one read.
				f.Invalidate()
			}
		}
		rec, cls, err := f.Fetch(rid)
		if err != nil {
			return nil, err
		}
		b.Append(rid, rec, cls)
		if b.Full() {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	res.Elapsed = db.Meter.Elapsed()
	res.Counters = db.Meter.Snapshot()
	return res, nil
}
