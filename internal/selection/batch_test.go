package selection

import (
	"testing"
)

// TestSequentialBulkScanCostIdentical pins satellite invariant: the bulk
// (batched) path through the *sequential* full-scan loop — one chunk, one
// worker — must charge exactly what the one-handle-at-a-time loop charged:
// same Figure 3 counters, same simulated elapsed time, same rows. The
// batched scan materializes whole record batches from the extent pages and
// merges one amortized charge per batch, which only reorders additions.
func TestSequentialBulkScanCostIdentical(t *testing.T) {
	d, db := dataset(t)
	db.SetQueryJobs(1) // sequential: the full scan runs as a single chunk
	n := d.NumPatients
	for _, pct := range []int{1, 50, 90} {
		k := int64(n - n*pct/100)
		req := Request{Extent: d.Patients, Where: Pred{Attr: "num", Op: Gt, K: k}, Projects: []string{"age"}}
		for _, access := range []Access{FullScan, IndexScan, SortedIndexScan} {
			db.SetBatch(1)
			db.ColdRestart()
			want, err := Run(db, req, access)
			if err != nil {
				t.Fatalf("%s scalar: %v", access, err)
			}
			db.SetBatch(1024)
			db.ColdRestart()
			got, err := Run(db, req, access)
			if err != nil {
				t.Fatalf("%s batched: %v", access, err)
			}
			if got.Rows != want.Rows {
				t.Errorf("%s at %d%%: %d rows batched, %d scalar", access, pct, got.Rows, want.Rows)
			}
			if got.Elapsed != want.Elapsed {
				t.Errorf("%s at %d%%: elapsed %v batched, %v scalar", access, pct, got.Elapsed, want.Elapsed)
			}
			if got.Counters != want.Counters {
				t.Errorf("%s at %d%%: counters diverged\n got %+v\nwant %+v", access, pct, got.Counters, want.Counters)
			}
			if got.SortedRids != want.SortedRids {
				t.Errorf("%s at %d%%: sorted %d batched, %d scalar", access, pct, got.SortedRids, want.SortedRids)
			}
		}
	}
	db.SetBatch(0)
	db.SetQueryJobs(0)
}
