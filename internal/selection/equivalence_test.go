package selection

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"treebench/internal/backend"
	"treebench/internal/derby"
	"treebench/internal/object"
	"treebench/internal/sim"
)

// TestBackendEquivalence pins the backend half of the repo's determinism
// invariant: the index and sorted-index selection access paths must
// render byte-identical result rows under every index backend, at every
// qj × batch combination — backends move the cost accounting, never the
// answer. Within one backend, the simulated meter totals must also be
// byte-identical across the qj × batch matrix (the pre-existing
// invariant, restated per backend).
func TestBackendEquivalence(t *testing.T) {
	accesses := []Access{IndexScan, SortedIndexScan}
	permilles := []int{50, 600}
	wantRows := map[string]string{} // access/selectivity → rendered rows, global across backends

	for _, kind := range backend.Kinds() {
		cfg := derby.DefaultConfig(40, 60, derby.ClassCluster)
		cfg.IndexBackend = kind
		d, err := derby.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: generate: %v", kind, err)
		}
		sn, err := d.Freeze()
		if err != nil {
			t.Fatalf("%s: freeze: %v", kind, err)
		}
		wantCounters := map[string]sim.Counters{} // per backend, across qj × batch
		for _, qj := range []int{1, 8} {
			for _, batch := range []int{1, 1024} {
				f := sn.Fork()
				f.DB.SetQueryJobs(qj)
				f.DB.SetBatch(batch)
				for _, access := range accesses {
					for _, permille := range permilles {
						key := fmt.Sprintf("%s/%d", access, permille)
						label := fmt.Sprintf("%s qj=%d batch=%d %s", kind, qj, batch, key)
						f.DB.ColdRestart()
						k := int64(d.NumPatients) - int64(d.NumPatients)*int64(permille)/1000
						chunks := map[int]*strings.Builder{}
						res, err := Run(f.DB, Request{
							Extent:   f.Patients,
							Where:    Pred{Attr: "num", Op: Gt, K: k},
							Projects: []string{"age", "mrn"},
							OnRowChunk: func(chunk int, vals []object.Value) error {
								b := chunks[chunk]
								if b == nil {
									b = &strings.Builder{}
									chunks[chunk] = b
								}
								fmt.Fprintf(b, "%v\n", vals)
								return nil
							},
						}, access)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						var ids []int
						for c := range chunks {
							ids = append(ids, c)
						}
						sort.Ints(ids)
						var rows strings.Builder
						fmt.Fprintf(&rows, "rows=%d\n", res.Rows)
						for _, c := range ids {
							rows.WriteString(chunks[c].String())
						}
						if want, ok := wantRows[key]; !ok {
							wantRows[key] = rows.String()
						} else if rows.String() != want {
							t.Errorf("%s: rendered rows differ from the %s reference", label, backend.DefaultKind)
						}
						if want, ok := wantCounters[key]; !ok {
							wantCounters[key] = res.Counters
						} else if !reflect.DeepEqual(res.Counters, want) {
							t.Errorf("%s: meter counters differ across the qj×batch matrix\n got %+v\nwant %+v",
								label, res.Counters, want)
						}
					}
				}
			}
		}
	}
}
