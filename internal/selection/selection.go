// Package selection implements the three access paths of the §4.2
// experiments (Figure 8): the standard full scan, the plain (unsorted)
// index scan whose random fetches can read a page many times, and the
// sorted index scan that sorts the matching Rids into physical order before
// fetching — the optimization that "exceeded our expectations by far".
package selection

import (
	"fmt"
	"sort"
	"time"

	"treebench/internal/engine"
	"treebench/internal/index"
	"treebench/internal/object"
	"treebench/internal/sim"
	"treebench/internal/storage"
)

// Access names one access path.
type Access string

// The §4.2 access paths.
const (
	FullScan        Access = "scan"
	IndexScan       Access = "index"
	SortedIndexScan Access = "index+sort"
)

// Op is a comparison operator.
type Op string

// Comparison operators over integer attributes.
const (
	Lt Op = "<"
	Le Op = "<="
	Gt Op = ">"
	Ge Op = ">="
	Eq Op = "="
	Ne Op = "!="
)

// Pred is a predicate `attr op k` over an integer attribute.
type Pred struct {
	Attr string
	Op   Op
	K    int64
}

// Eval applies the predicate to a value.
func (p Pred) Eval(v int64) bool {
	switch p.Op {
	case Lt:
		return v < p.K
	case Le:
		return v <= p.K
	case Gt:
		return v > p.K
	case Ge:
		return v >= p.K
	case Eq:
		return v == p.K
	case Ne:
		return v != p.K
	default:
		return false
	}
}

// Always is the empty predicate, true for every object (an unqualified
// scan). Only FullScan accepts it.
var Always = Pred{}

// IsAlways reports whether the predicate is the empty always-true one.
func (p Pred) IsAlways() bool { return p == Always }

// KeyRange converts the predicate to a [lo, hi) index range.
func (p Pred) KeyRange() (lo, hi int64, ok bool) {
	const (
		minKey = -1 << 62
		maxKey = 1 << 62
	)
	switch p.Op {
	case Lt:
		return minKey, p.K, true
	case Le:
		return minKey, p.K + 1, true
	case Gt:
		return p.K + 1, maxKey, true
	case Ge:
		return p.K, maxKey, true
	case Eq:
		return p.K, p.K + 1, true
	default:
		return 0, 0, false
	}
}

// Request is one selection query: project attributes of the extent's
// objects matching the predicates. Where drives the access path (it is the
// indexable predicate); Filters are evaluated on each fetched object.
// An empty Projects counts matches without building a result.
type Request struct {
	Extent   *engine.Extent
	Where    Pred
	Filters  []Pred
	Projects []string
	// OnRow, when set, receives the projected values of every matching
	// object (the executor's hook for aggregation). A request with only
	// OnRow runs full scans sequentially, so rows arrive in file order.
	OnRow func(vals []object.Value) error
	// OnRowChunk is the parallel-aware row callback: rows arrive tagged
	// with the scan chunk that produced them (chunks cover the file in
	// order, so concatenating per-chunk buffers in chunk-index order
	// reproduces the sequential row order). It may be called from multiple
	// goroutines, one per chunk; keep state per chunk. When set, it
	// replaces OnRow and full scans may fan out over ScanChunks(extent)
	// page ranges.
	OnRowChunk func(chunk int, vals []object.Value) error
	// OnBatch is the vectorized row callback: cols[j][0:n] are the
	// projected value columns of one batch's n selected rows, in row
	// order within the batch (batches within one chunk arrive in scan
	// order, so chunk-order concatenation still reproduces the
	// sequential row order). Like OnRowChunk it may run concurrently,
	// one goroutine per chunk, and the columns are reused after it
	// returns. Set it alongside OnRowChunk/OnRow: the batched operators
	// prefer it, the scalar oracle (batch size 1) ignores it.
	OnBatch func(chunk int, cols [][]object.Value, n int) error
}

// ScanChunks returns the page-range decomposition a parallel full scan of
// the extent uses: a pure function of the extent's size, so per-chunk
// accounting is identical at any worker count. Executors size their
// per-chunk state from its length; a single range means the scan runs
// sequentially.
func ScanChunks(e *engine.Extent) []engine.PageRange {
	return e.Partition(engine.ChunksForWork(int64(e.Count)))
}

// Result reports one run.
type Result struct {
	Access   Access
	Rows     int
	Elapsed  time.Duration
	Counters sim.Counters
	// SortedRids is the number of Rids sorted (SortedIndexScan only).
	SortedRids int
}

// Run evaluates the selection with the given access path on the session's
// current (typically cold) caches.
func Run(db *engine.Database, req Request, access Access) (*Result, error) {
	cls := req.Extent.Class
	whereIdx := -1
	if !req.Where.IsAlways() {
		whereIdx = cls.AttrIndex(req.Where.Attr)
		if whereIdx < 0 {
			return nil, fmt.Errorf("selection: no attribute %s.%s", cls.Name, req.Where.Attr)
		}
	}
	filterIdxs := make([]int, len(req.Filters))
	for i, f := range req.Filters {
		filterIdxs[i] = cls.AttrIndex(f.Attr)
		if filterIdxs[i] < 0 {
			return nil, fmt.Errorf("selection: no attribute %s.%s", cls.Name, f.Attr)
		}
	}
	projIdxs := make([]int, len(req.Projects))
	for i, a := range req.Projects {
		projIdxs[i] = cls.AttrIndex(a)
		if projIdxs[i] < 0 {
			return nil, fmt.Errorf("selection: no attribute %s.%s", cls.Name, a)
		}
	}
	switch access {
	case FullScan:
		return runFullScan(db, req, whereIdx, filterIdxs, projIdxs)
	case IndexScan, SortedIndexScan:
		if req.Where.IsAlways() {
			return nil, fmt.Errorf("selection: index scan needs a predicate")
		}
		return runIndexScan(db, req, whereIdx, filterIdxs, projIdxs, access == SortedIndexScan)
	default:
		return nil, fmt.Errorf("selection: unknown access path %q", access)
	}
}

// match evaluates the where (if any) and filter predicates against a handle.
func match(db *engine.Database, h *object.Handle, req Request, whereIdx int, filterIdxs []int) (bool, error) {
	if whereIdx >= 0 {
		v, err := db.Handles.Attr(h, whereIdx)
		if err != nil {
			return false, err
		}
		db.Meter.Compare()
		if !req.Where.Eval(v.Int) {
			return false, nil
		}
	}
	for i, f := range req.Filters {
		v, err := db.Handles.Attr(h, filterIdxs[i])
		if err != nil {
			return false, err
		}
		db.Meter.Compare()
		if !f.Eval(v.Int) {
			return false, nil
		}
	}
	return true, nil
}

// project reads the projected attributes, charges the result append, and
// hands the values to the row callback if one is set. chunk identifies the
// scan chunk that produced the row (0 on every sequential path).
func project(db *engine.Database, h *object.Handle, req Request, projIdxs []int, chunk int) error {
	want := req.OnRowChunk != nil || req.OnRow != nil
	var vals []object.Value
	if want {
		vals = make([]object.Value, 0, len(projIdxs))
	}
	for _, pi := range projIdxs {
		v, err := db.Handles.Attr(h, pi)
		if err != nil {
			return err
		}
		if want {
			vals = append(vals, v)
		}
	}
	if len(projIdxs) > 0 {
		db.Meter.ResultAppend()
	}
	if req.OnRowChunk != nil {
		return req.OnRowChunk(chunk, vals)
	}
	if req.OnRow != nil {
		return req.OnRow(vals)
	}
	return nil
}

// runFullScan is Figure 8's left column:
//
//	open scan on Patients
//	for each Rid r returned by the scan
//	  get Handle h
//	  if get_att(h, num) > k add get_att(h, age) to the result
//	  unreference h
//
// The scan creates and unreferences a Handle for every object in the
// collection — the §4.3 cost the sorted index scan avoids.
//
// With a chunk-aware row callback (or none at all) the scan fans out over
// the ScanChunks page ranges; a request carrying only the order-sensitive
// OnRow runs the whole file as one chunk.
func runFullScan(db *engine.Database, req Request, whereIdx int, filterIdxs, projIdxs []int) (*Result, error) {
	ranges := ScanChunks(req.Extent)
	if len(ranges) > 1 && req.OnRow != nil && req.OnRowChunk == nil {
		ranges = []engine.PageRange{{From: 0, To: req.Extent.File.NumPages()}}
	}
	if db.Batch() > 1 {
		return runFullScanBatched(db, req, whereIdx, filterIdxs, projIdxs, ranges)
	}
	res := &Result{Access: FullScan}
	rows := make([]int, len(ranges))
	err := db.RunChunks(len(ranges), func(w *engine.Session, c int) error {
		return req.Extent.File.ScanRange(w.Client, ranges[c].From, ranges[c].To, func(rid storage.Rid, rec []byte) (bool, error) {
			if !w.Classes.Belongs(object.ClassID(rec), req.Extent.Class) {
				return true, nil // shared file: other classes' objects
			}
			w.Meter.ScanNext()
			h, err := w.Handles.Get(rid)
			if err != nil {
				return false, err
			}
			defer w.Handles.Unref(h)
			ok, err := match(w, h, req, whereIdx, filterIdxs)
			if err != nil {
				return false, err
			}
			if ok {
				if err := project(w, h, req, projIdxs, c); err != nil {
					return false, err
				}
				rows[c]++
			}
			return true, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		res.Rows += r
	}
	res.Elapsed = db.Meter.Elapsed()
	res.Counters = db.Meter.Snapshot()
	return res, nil
}

// runIndexScan is Figure 8's right column, with and without the
// preliminary sort of the Rids returned by the index:
//
//	open index scan on (Patients, num > k)
//	for each Rid r returned by the index scan add r to Table T
//	sort T on Rids                              /* sorted variant only */
//	for each r in T
//	  get Handle h; add get_att(h, age) to the result; unreference h
//
// Handles are created only for the selected elements.
func runIndexScan(db *engine.Database, req Request, whereIdx int, filterIdxs, projIdxs []int, sorted bool) (*Result, error) {
	ix := db.IndexOn(req.Extent.Name, req.Where.Attr)
	if ix == nil {
		return nil, fmt.Errorf("selection: no index on %s.%s", req.Extent.Name, req.Where.Attr)
	}
	lo, hi, ok := req.Where.KeyRange()
	if !ok {
		return nil, fmt.Errorf("selection: operator %q not indexable", req.Where.Op)
	}
	access := IndexScan
	if sorted {
		access = SortedIndexScan
	}
	res := &Result{Access: access}

	var rids []storage.Rid
	err := ix.Backend.Scan(db.Client, lo, hi, func(e index.Entry) (bool, error) {
		rids = append(rids, e.Rid)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if db.Batch() > 1 {
		return runIndexScanBatched(db, req, filterIdxs, projIdxs, sorted, res, rids)
	}
	if sorted {
		db.Meter.Sort(int64(len(rids)))
		sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
		res.SortedRids = len(rids)
	}
	// With sorted Rids the upcoming pages are known ahead of time: batch
	// their fetches into fewer RPCs when the pager supports it.
	var pf storage.Prefetcher
	batch := 1
	if sorted {
		if p, ok := storage.Pager(db.Client).(storage.Prefetcher); ok && p.ReadAheadBatch() > 1 {
			pf = p
			batch = p.ReadAheadBatch()
		}
	}
	var pages []storage.PageID
	if pf != nil {
		for _, rid := range rids {
			if len(pages) == 0 || pages[len(pages)-1] != rid.Page {
				pages = append(pages, rid.Page)
			}
		}
	}
	pageIdx, nextPrefetch := 0, 0
	for _, rid := range rids {
		if pf != nil {
			for pageIdx < len(pages) && pages[pageIdx] != rid.Page {
				pageIdx++
			}
			if pageIdx >= nextPrefetch {
				hi := pageIdx + batch
				if hi > len(pages) {
					hi = len(pages)
				}
				pf.Prefetch(pages[pageIdx:hi])
				nextPrefetch = hi
			}
		}
		h, err := db.Handles.Get(rid)
		if err != nil {
			return nil, err
		}
		ok := true
		if len(req.Filters) > 0 {
			ok, err = matchFilters(db, h, req, filterIdxs)
			if err != nil {
				db.Handles.Unref(h)
				return nil, err
			}
		}
		if ok {
			if err := project(db, h, req, projIdxs, 0); err != nil {
				db.Handles.Unref(h)
				return nil, err
			}
			res.Rows++
		}
		db.Handles.Unref(h)
	}
	res.Elapsed = db.Meter.Elapsed()
	res.Counters = db.Meter.Snapshot()
	return res, nil
}

// matchFilters evaluates only the filter predicates (the index already
// enforced Where).
func matchFilters(db *engine.Database, h *object.Handle, req Request, filterIdxs []int) (bool, error) {
	for i, f := range req.Filters {
		v, err := db.Handles.Attr(h, filterIdxs[i])
		if err != nil {
			return false, err
		}
		db.Meter.Compare()
		if !f.Eval(v.Int) {
			return false, nil
		}
	}
	return true, nil
}
