package selection

import (
	"errors"
	"testing"

	"treebench/internal/derby"
	"treebench/internal/engine"
	"treebench/internal/object"
)

func dataset(t *testing.T) (*derby.Dataset, *engine.Database) {
	t.Helper()
	d, err := derby.Generate(derby.DefaultConfig(20, 100, derby.ClassCluster))
	if err != nil {
		t.Fatal(err)
	}
	return d, d.DB
}

func TestAccessPathsAgreeOnRows(t *testing.T) {
	d, db := dataset(t)
	n := d.NumPatients
	for _, pct := range []int{1, 10, 50, 90} {
		// num > k keeps pct% of patients (num is a dense permutation).
		k := int64(n - n*pct/100)
		req := Request{Extent: d.Patients, Where: Pred{Attr: "num", Op: Gt, K: k}, Projects: []string{"age"}}
		want := n * pct / 100
		for _, access := range []Access{FullScan, IndexScan, SortedIndexScan} {
			db.ColdRestart()
			res, err := Run(db, req, access)
			if err != nil {
				t.Fatalf("%s: %v", access, err)
			}
			if res.Rows != want {
				t.Fatalf("%s at %d%%: %d rows, want %d", access, pct, res.Rows, want)
			}
		}
	}
}

func TestPredicateOperators(t *testing.T) {
	d, db := dataset(t)
	n := d.NumPatients
	cases := []struct {
		p    Pred
		want int
	}{
		{Pred{"mrn", Lt, 101}, 100},
		{Pred{"mrn", Le, 100}, 100},
		{Pred{"mrn", Gt, int64(n - 50)}, 50},
		{Pred{"mrn", Ge, int64(n - 49)}, 50},
		{Pred{"mrn", Eq, 7}, 1},
	}
	for _, c := range cases {
		for _, access := range []Access{FullScan, IndexScan, SortedIndexScan} {
			db.ColdRestart()
			res, err := Run(db, Request{Extent: d.Patients, Where: c.p}, access)
			if err != nil {
				t.Fatalf("%v %s: %v", c.p, access, err)
			}
			if res.Rows != c.want {
				t.Fatalf("%v via %s: %d rows, want %d", c.p, access, res.Rows, c.want)
			}
		}
	}
}

// TestFullScanCostIsSelectivityIndependent reproduces §4.2: "when no index
// is used, the number of I/Os for performing a selection does not depend on
// the selectivity".
func TestFullScanCostIsSelectivityIndependent(t *testing.T) {
	d, db := dataset(t)
	n := d.NumPatients
	var ios []int64
	for _, pct := range []int{1, 90} {
		k := int64(n - n*pct/100)
		db.ColdRestart()
		res, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "num", Op: Gt, K: k}, Projects: []string{"age"}}, FullScan)
		if err != nil {
			t.Fatal(err)
		}
		ios = append(ios, res.Counters.DiskReads)
	}
	if ios[0] != ios[1] {
		t.Fatalf("full-scan I/O depends on selectivity: %d vs %d", ios[0], ios[1])
	}
}

// TestFullScanChargesHandlesForWholeCollection checks the Figure 9 account:
// the standard scan gets and unrefs one Handle per object in the
// collection, the index scans only for the selected elements.
func TestFullScanChargesHandlesForWholeCollection(t *testing.T) {
	d, db := dataset(t)
	n := d.NumPatients
	pct := 10
	k := int64(n - n*pct/100)
	req := Request{Extent: d.Patients, Where: Pred{Attr: "num", Op: Gt, K: k}, Projects: []string{"age"}}

	db.ColdRestart()
	full, err := Run(db, req, FullScan)
	if err != nil {
		t.Fatal(err)
	}
	if full.Counters.HandleGets != int64(n) {
		t.Fatalf("full scan got %d handles, want %d", full.Counters.HandleGets, n)
	}
	db.ColdRestart()
	sorted, err := Run(db, req, SortedIndexScan)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * pct / 100); sorted.Counters.HandleGets != want {
		t.Fatalf("sorted index scan got %d handles, want %d", sorted.Counters.HandleGets, want)
	}
	if sorted.SortedRids != n*pct/100 {
		t.Fatalf("SortedRids = %d", sorted.SortedRids)
	}
}

// TestUnclusteredIndexReadsMorePagesAtHighSelectivity reproduces the §4.2
// threshold: past a few percent selectivity the unsorted scan over the
// unclustered num index reads more pages than the full scan ("many pages
// are read more than once"), while the sorted variant never does.
func TestUnclusteredIndexReadsMorePagesAtHighSelectivity(t *testing.T) {
	// A patient file much larger than the client cache is needed for
	// re-reads; shrink the caches instead of growing the data.
	cfg := derby.DefaultConfig(20, 200, derby.ClassCluster)
	cfg.Machine.ClientCache = 16 << 12 // 16 pages
	cfg.Machine.ServerCache = 8 << 12
	d, err := derby.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := d.DB
	n := d.NumPatients
	k := int64(n - n*90/100) // 90% selectivity
	req := Request{Extent: d.Patients, Where: Pred{Attr: "num", Op: Gt, K: k}, Projects: []string{"age"}}

	db.ColdRestart()
	full, err := Run(db, req, FullScan)
	if err != nil {
		t.Fatal(err)
	}
	db.ColdRestart()
	unsorted, err := Run(db, req, IndexScan)
	if err != nil {
		t.Fatal(err)
	}
	db.ColdRestart()
	sorted, err := Run(db, req, SortedIndexScan)
	if err != nil {
		t.Fatal(err)
	}
	if unsorted.Counters.DiskReads <= full.Counters.DiskReads {
		t.Fatalf("unsorted index scan read %d pages vs full scan %d; expected more",
			unsorted.Counters.DiskReads, full.Counters.DiskReads)
	}
	if sorted.Counters.DiskReads >= unsorted.Counters.DiskReads {
		t.Fatalf("sorted index scan read %d pages vs unsorted %d; expected fewer",
			sorted.Counters.DiskReads, unsorted.Counters.DiskReads)
	}
	// And the headline of Figure 7: even at 90% selectivity the sorted
	// index scan beats the full scan (handle savings dominate).
	if sorted.Elapsed >= full.Elapsed {
		t.Fatalf("sorted index scan (%v) not faster than full scan (%v) at 90%%",
			sorted.Elapsed, full.Elapsed)
	}
}

func TestRunValidation(t *testing.T) {
	d, db := dataset(t)
	db.ColdRestart()
	if _, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "nope", Op: Lt, K: 1}}, FullScan); err == nil {
		t.Fatal("bad where attribute accepted")
	}
	if _, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "mrn", Op: Lt, K: 1}, Projects: []string{"nope"}}, FullScan); err == nil {
		t.Fatal("bad projection accepted")
	}
	if _, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "age", Op: Lt, K: 1}}, IndexScan); err == nil {
		t.Fatal("index scan without index accepted")
	}
	if _, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "mrn", Op: Lt, K: 1}}, Access("warp")); err == nil {
		t.Fatal("unknown access path accepted")
	}
	if _, err := Run(db, Request{Extent: d.Patients, Where: Pred{Attr: "mrn", Op: Op("~"), K: 1}}, IndexScan); err == nil {
		t.Fatal("non-indexable operator accepted")
	}
}

func TestPredEvalAndRange(t *testing.T) {
	if !(Pred{Attr: "x", Op: Lt, K: 5}).Eval(4) || (Pred{Attr: "x", Op: Lt, K: 5}).Eval(5) {
		t.Fatal("Lt")
	}
	if !(Pred{Attr: "x", Op: Ge, K: 5}).Eval(5) {
		t.Fatal("Ge")
	}
	if (Pred{Attr: "x", Op: Op("!")}).Eval(1) {
		t.Fatal("unknown op must be false")
	}
	if _, _, ok := (Pred{Op: Op("!")}).KeyRange(); ok {
		t.Fatal("unknown op has a range")
	}
	lo, hi, ok := (Pred{Op: Eq, K: 9}).KeyRange()
	if !ok || lo != 9 || hi != 10 {
		t.Fatalf("Eq range [%d,%d)", lo, hi)
	}
}

func TestFiltersOnBothAccessPaths(t *testing.T) {
	d, db := dataset(t)
	// Access via mrn, filter residually on sex and age.
	req := Request{
		Extent: d.Patients,
		Where:  Pred{Attr: "mrn", Op: Lt, K: 201},
		Filters: []Pred{
			{Attr: "sex", Op: Eq, K: 'M'},
			{Attr: "age", Op: Lt, K: 50},
		},
		Projects: []string{"name", "age"},
	}
	// Patients j: mrn=j+1, sex M when j even, age=j%100.
	// mrn<201 ⇒ j in 0..199; even j ⇒ 100; of those, age=j%100<50 ⇒ j%100 in
	// {0,2,...,48} ⇒ 25 per hundred ⇒ 50.
	want := 50
	var results []int
	for _, access := range []Access{FullScan, IndexScan, SortedIndexScan} {
		db.ColdRestart()
		res, err := Run(db, req, access)
		if err != nil {
			t.Fatalf("%s: %v", access, err)
		}
		results = append(results, res.Rows)
		if res.Rows != want {
			t.Fatalf("%s: %d rows, want %d", access, res.Rows, want)
		}
	}
	_ = results
}

func TestUnqualifiedFullScan(t *testing.T) {
	d, db := dataset(t)
	db.ColdRestart()
	res, err := Run(db, Request{Extent: d.Patients, Where: Always}, FullScan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != d.NumPatients {
		t.Fatalf("rows = %d, want %d", res.Rows, d.NumPatients)
	}
	// Index scans refuse an empty predicate.
	if _, err := Run(db, Request{Extent: d.Patients, Where: Always}, IndexScan); err == nil {
		t.Fatal("index scan without predicate accepted")
	}
	// Bad filter attribute rejected.
	if _, err := Run(db, Request{
		Extent: d.Patients, Where: Always,
		Filters: []Pred{{Attr: "nope", Op: Eq, K: 1}},
	}, FullScan); err == nil {
		t.Fatal("bad filter attribute accepted")
	}
}

func TestOnRowReceivesValues(t *testing.T) {
	d, db := dataset(t)
	db.ColdRestart()
	var got []int64
	req := Request{
		Extent:   d.Patients,
		Where:    Pred{Attr: "mrn", Op: Lt, K: 6},
		Projects: []string{"mrn"},
		OnRow: func(vals []object.Value) error {
			got = append(got, vals[0].Int)
			return nil
		},
	}
	if _, err := Run(db, req, SortedIndexScan); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("OnRow saw %d rows", len(got))
	}
	// OnRow errors propagate.
	req.OnRow = func([]object.Value) error { return errStop }
	db.ColdRestart()
	if _, err := Run(db, req, FullScan); err == nil {
		t.Fatal("OnRow error swallowed")
	}
}

var errStop = errors.New("stop")
