package server

import (
	"errors"
	"path/filepath"
	"testing"

	"treebench/internal/client"
	"treebench/internal/derby"
	"treebench/internal/persist"
	"treebench/internal/wire"
)

// startChainServer saves a small database as a chain base, opens a
// ChainStore over it, and serves in store (writable) mode.
func startChainServer(t *testing.T) (*Server, string, *persist.ChainStore) {
	t.Helper()
	dir := t.TempDir()
	ds, err := derby.Generate(testDBConfig())
	if err != nil {
		t.Fatal(err)
	}
	root, err := ds.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "base.tbsp")
	if err := persist.Save(snapPath, root); err != nil {
		t.Fatal(err)
	}
	store, _, err := persist.OpenChainStore(snapPath, filepath.Join(dir, "base.wal"), derby.DefaultWaveSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv, addr := startServer(t, func(cfg *Config) {
		cfg.Generate = nil
		cfg.Store = store
	}, nil)
	return srv, addr, store
}

// TestCommitOverWire drives the full write path through the protocol:
// commits advance the chain head version by version, the results carry
// lineage, stats surface the chain and WAL counters, and a query after a
// commit runs against the new head.
func TestCommitOverWire(t *testing.T) {
	_, addr, store := startChainServer(t)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for want := uint64(1); want <= 3; want++ {
		cr, err := c.Commit()
		if err != nil {
			t.Fatalf("commit %d: %v", want, err)
		}
		if cr.Version != want || cr.Wave != want {
			t.Fatalf("commit %d: version=%d wave=%d", want, cr.Version, cr.Wave)
		}
		if cr.Reassigned == 0 || cr.Scalars == 0 {
			t.Fatalf("commit %d did nothing: %+v", want, cr)
		}
		if cr.DeltaPages <= 0 || cr.WalOff < 0 {
			t.Fatalf("commit %d lineage: %+v", want, cr)
		}
	}
	if head := store.Head(); head.Engine.Version() != 3 {
		t.Fatalf("head version = %d, want 3", head.Engine.Version())
	}

	// A query after the commits must run against the committed head, and
	// the database must still verify.
	if _, err := c.Query(testStmt, client.QueryOptions{}); err != nil {
		t.Fatalf("query after commit: %v", err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.HeadVersion != 3 || st.Commits != 3 {
		t.Fatalf("stats head=%d commits=%d, want 3/3", st.HeadVersion, st.Commits)
	}
	if st.WalRecords != 3 || st.WalSyncs == 0 || st.WalTail == 0 {
		t.Fatalf("stats wal: %+v", st)
	}
	if st.SnapshotSource != "chain" {
		t.Fatalf("snapshot source = %q, want chain", st.SnapshotSource)
	}
}

// TestCommitMatchesLocalReplay checks the wire path is just transport:
// after N remote commits the server's head is byte-identical to N waves
// replayed in memory against the same base.
func TestCommitMatchesLocalReplay(t *testing.T) {
	_, addr, store := startChainServer(t)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const waves = 4 // includes the wave-4 schema-growth relocation storm
	for i := 0; i < waves; i++ {
		if _, err := c.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	ds, err := derby.Generate(testDBConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ds.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	spec := derby.DefaultWaveSpec()
	for w := uint64(1); w <= waves; w++ {
		d := ref.ForkMutable()
		if _, err := derby.ApplyWave(d, w, spec); err != nil {
			t.Fatal(err)
		}
		es, _, err := d.DB.Publish()
		if err != nil {
			t.Fatal(err)
		}
		ref = ref.WithEngine(es)
	}
	eq, why, err := persist.PageEqual(store.Head(), ref)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("remote head diverged from local replay: %s", why)
	}
}

// TestCommitReadOnlyServer checks a store-less server rejects commits
// with CodeReadOnly and keeps the session alive for queries.
func TestCommitReadOnlyServer(t *testing.T) {
	_, addr := startServer(t, nil, nil)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Commit()
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeReadOnly {
		t.Fatalf("commit on read-only server: %v", err)
	}
	if _, err := c.Query(testStmt, client.QueryOptions{}); err != nil {
		t.Fatalf("query after rejected commit: %v", err)
	}
}
